// Tracing surface: protocol event types (argoobs::Ev / TraceEvent), the
// TraceConfig toggle (ClusterConfig::trace), and the exporters installed
// via Cluster::trace_sink():
//
//   cfg.trace.enabled = true;
//   argo::Cluster cluster(cfg);
//   cluster.trace_sink(argoobs::make_chrome_trace_sink("trace.json"));
//   cluster.run(...);
//   cluster.flush_trace();   // also flushed by the destructor
//
// Binary traces (make_binary_trace_sink) are queried offline with
// scripts/trace_query; the schema is documented in docs/TRACING.md.
#pragma once

#include "obs/export.hpp"
#include "obs/trace.hpp"
