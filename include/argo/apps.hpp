// Workload surface: the paper's application kernels (Fig. 13 suite plus
// the priority-queue lock benchmark).
#pragma once

#include "apps/blackscholes.hpp"
#include "apps/cg.hpp"
#include "apps/ep.hpp"
#include "apps/lu.hpp"
#include "apps/mm.hpp"
#include "apps/nbody.hpp"
#include "apps/pqueue.hpp"
