// Statistics surface: argo::ClusterStats (the immutable aggregated
// snapshot returned by Cluster::stats()), the underlying per-subsystem
// stat structs, and the LatencyHist/MetricsRegistry primitives.
#pragma once

#include "core/cluster.hpp"
#include "core/stats.hpp"
#include "obs/metrics.hpp"
