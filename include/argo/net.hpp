// Interconnect surface: NetConfig (latencies, pipeline depth, retry
// policy), the simulated Interconnect itself, and fault injection.
#pragma once

#include "net/faults.hpp"
#include "net/interconnect.hpp"
#include "net/netconfig.hpp"
