// Synchronization surface: the DSM locks built on Argo (global MCS, HQD
// delegation, cohort, mutex, flag) and the node-local lock family.
#pragma once

#include "sync/dsm_locks.hpp"
#include "sync/local_locks.hpp"
#include "sync/qd_lock.hpp"
