// Baseline-system surface: the traditional active DSM, the MPI library
// model, and the PGAS runtime the paper compares against.
#pragma once

#include "baseline/active_dsm.hpp"
#include "baseline/mpi.hpp"
#include "baseline/pgas.hpp"
