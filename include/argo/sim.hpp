// Simulator surface: the virtual-time engine, fiber synchronization
// primitives, deterministic PRNG, and the Time literals.
#pragma once

#include "sim/engine.hpp"
#include "sim/par.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"
