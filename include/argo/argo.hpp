// Argo public API umbrella: the cluster, its configuration, the thread
// execution context, and the page-classification policy types.
//
// This is the only header an Argo application needs:
//
//   #include "argo/argo.hpp"
//   argo::ClusterConfig cfg;
//   argo::Cluster cluster(cfg);
//   auto data = cluster.alloc<double>(1 << 20);
//   cluster.run([&](argo::Thread& self) { ... });
//   argo::ClusterStats s = cluster.stats();
//
// Reporting goes through Cluster::stats() (argo/stats.hpp) and tracing
// through Cluster::trace_sink() (argo/trace.hpp). The src/ layout behind
// these headers is internal and may change; examples, benches and
// downstream code include only argo/*.hpp (enforced by scripts/check.sh).
//
// Access API: Thread::load/store (elementwise), load_bulk/store_bulk
// (copy-out), and load_span/store_span (zero-copy views of up to one page
// that amortize a single soft-TLB translation across a whole inner loop —
// see the usage rules on the declarations in Thread).
#pragma once

#include "core/cluster.hpp"
#include "core/config.hpp"
#include "core/policy.hpp"
