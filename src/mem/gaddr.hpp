// Typed handles into the global (cluster-wide) address space.
//
// A gptr<T> is an offset into the shared virtual address space that Argo
// sets up across all nodes (§3 of the paper: "allocating the same range of
// virtual addresses using mmap"). In the original system a gptr is a real
// pointer and loads/stores trap via mprotect; in this reproduction access
// goes through the explicit Thread::load/store API, which enters the same
// protocol path a fault handler would.
#pragma once

#include <cstddef>
#include <cstdint>

namespace argomem {

/// Size of a DSM page (the paper uses the 4 KiB virtual-memory page).
inline constexpr std::size_t kPageSize = 4096;

/// Raw byte offset in the global address space.
using GAddr = std::uint64_t;

/// Invalid / null global address.
inline constexpr GAddr kNullGAddr = ~static_cast<GAddr>(0);

/// Page number containing a global address.
inline constexpr std::uint64_t page_of(GAddr a) { return a / kPageSize; }

/// Byte offset of a global address within its page.
inline constexpr std::size_t page_offset(GAddr a) { return a % kPageSize; }

/// Typed global pointer: behaves like a random-access pointer over GAddr.
template <typename T>
class gptr {
 public:
  using value_type = T;

  constexpr gptr() = default;
  constexpr explicit gptr(GAddr raw) : raw_(raw) {}

  constexpr GAddr raw() const { return raw_; }
  constexpr bool null() const { return raw_ == kNullGAddr; }
  constexpr explicit operator bool() const { return !null(); }

  constexpr gptr operator+(std::ptrdiff_t i) const {
    return gptr(raw_ + static_cast<GAddr>(i * static_cast<std::ptrdiff_t>(sizeof(T))));
  }
  constexpr gptr operator-(std::ptrdiff_t i) const { return *this + (-i); }
  gptr& operator+=(std::ptrdiff_t i) { return *this = *this + i, *this; }
  gptr& operator++() { return *this += 1; }
  constexpr gptr<T> at(std::size_t i) const {
    return *this + static_cast<std::ptrdiff_t>(i);
  }

  constexpr bool operator==(const gptr&) const = default;

  /// Reinterpret as a pointer to another element type (offset preserved).
  template <typename U>
  constexpr gptr<U> cast() const {
    return gptr<U>(raw_);
  }

 private:
  GAddr raw_ = kNullGAddr;
};

}  // namespace argomem
