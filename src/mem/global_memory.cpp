#include "mem/global_memory.hpp"

#include <cassert>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>

namespace argomem {

GlobalMemory::GlobalMemory(int nodes, std::size_t total_bytes,
                           HomeMapping mapping)
    : nodes_(nodes), mapping_(mapping) {
  assert(nodes > 0);
  // Round so every node serves the same whole number of pages.
  std::uint64_t pages =
      (total_bytes + kPageSize - 1) / kPageSize;
  std::uint64_t per_node =
      (pages + static_cast<std::uint64_t>(nodes) - 1) /
      static_cast<std::uint64_t>(nodes);
  if (per_node == 0) per_node = 1;
  pages_per_node_ = per_node;
  size_ = per_node * static_cast<std::uint64_t>(nodes) * kPageSize;
  bytes_.reset(static_cast<std::byte*>(std::calloc(size_, 1)));
  if (!bytes_) throw std::bad_alloc();
}

std::uint64_t GlobalMemory::kth_top_page_of(int node, std::uint64_t k) const {
  if (mapping_ == HomeMapping::Blocked) {
    const std::uint64_t top =
        (static_cast<std::uint64_t>(node) + 1) * pages_per_node_ - 1;
    return top - k;
  }
  // Interleaved: pages congruent to node modulo nodes_, from the top.
  const std::uint64_t total = pages();
  const std::uint64_t top =
      ((total - 1 - static_cast<std::uint64_t>(node)) /
       static_cast<std::uint64_t>(nodes_)) *
          static_cast<std::uint64_t>(nodes_) +
      static_cast<std::uint64_t>(node);
  return top - k * static_cast<std::uint64_t>(nodes_);
}

GAddr GlobalMemory::alloc_on_node(int node, std::size_t n, std::size_t align) {
  assert(node >= 0 && node < nodes_);
  assert(n <= kPageSize && "node-homed allocations are per-page");
  if (arenas_.empty()) arenas_.resize(static_cast<std::size_t>(nodes_));
  NodeArena& a = arenas_[static_cast<std::size_t>(node)];
  std::size_t off = (a.cur_off + align - 1) & ~(align - 1);
  if (!a.has_page || off + n > kPageSize) {
    if (a.pages_taken >= pages_per_node_)
      throw std::runtime_error(
          "node " + std::to_string(node) + " sync arena exhausted: requested " +
          std::to_string(n) + " bytes but all " +
          std::to_string(pages_per_node_) +
          " node-homed pages are taken (raise ClusterConfig::global_mem_bytes)");
    a.cur_page = kth_top_page_of(node, a.pages_taken++) * kPageSize;
    a.cur_off = 0;
    a.has_page = true;
    off = 0;
  }
  a.cur_off = off + n;
  assert(home_of(a.cur_page + off) == node);
  return a.cur_page + off;
}

GAddr GlobalMemory::alloc_bytes(std::size_t n, std::size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0 && "alignment must be a power of two");
  std::size_t base = (brk_ + align - 1) & ~(align - 1);
  if (n > size() || base > size() - n) {
    const std::size_t remaining = base <= size() ? size() - base : 0;
    throw std::runtime_error(
        "global memory exhausted: requested " + std::to_string(n) +
        " bytes, " + std::to_string(remaining) + " of " +
        std::to_string(size()) +
        " remaining (raise ClusterConfig::global_mem_bytes)");
  }
  brk_ = base + n;
  return static_cast<GAddr>(base);
}

}  // namespace argomem
