// Page-buffer pooling for the protocol hot paths.
//
// Carina's write path allocates a 4 KiB twin on every write-allocate, a
// 4 KiB checkpoint per naive-P/S sync, and a line buffer per cache-line
// slot; the seed implementation paid a zero-initializing heap allocation
// (make_unique<std::byte[]>) plus a free for each. BufferPool keeps
// released buffers on per-size free lists so steady-state protocol
// traffic recycles the same blocks with no allocator round trips and no
// redundant zeroing (every consumer fully overwrites the buffer before
// reading it).
//
// Pooling is a *host*-side optimization only: it charges no virtual time
// and hands back deterministic buffer contents, so simulated behaviour is
// bit-identical with pooling on or off. ARGO_SLOW_PATHS (sim/slowpath.hpp)
// restores the allocate/free-per-use behaviour for A/B comparison.
//
// Single-threaded by design (the cooperative simulator runs one fiber at a
// time); acquire/release never yield, so fibers cannot interleave inside
// the pool.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/slowpath.hpp"

namespace argomem {

class BufferPool;

/// RAII handle to a pool-backed byte buffer. Behaves like
/// unique_ptr<std::byte[]> (get/bool/reset), but reset() returns the
/// buffer to its pool's free list instead of freeing it. The underlying
/// heap block is stable for the lifetime of the handle — moving the handle
/// (e.g. across an unordered_map rehash) never moves the bytes.
class PageBuf {
 public:
  PageBuf() = default;
  PageBuf(PageBuf&& o) noexcept
      : pool_(std::exchange(o.pool_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        buf_(std::move(o.buf_)) {}
  PageBuf& operator=(PageBuf&& o) noexcept {
    if (this != &o) {
      reset();
      pool_ = std::exchange(o.pool_, nullptr);
      size_ = std::exchange(o.size_, 0);
      buf_ = std::move(o.buf_);
    }
    return *this;
  }
  PageBuf(const PageBuf&) = delete;
  PageBuf& operator=(const PageBuf&) = delete;
  ~PageBuf() { reset(); }

  explicit operator bool() const { return buf_ != nullptr; }
  std::byte* get() const { return buf_.get(); }
  std::size_t size() const { return size_; }

  /// Return the buffer to the pool (or free it under ARGO_SLOW_PATHS /
  /// after the pool is gone). The handle becomes empty.
  inline void reset();

 private:
  friend class BufferPool;
  PageBuf(BufferPool* pool, std::size_t size,
          std::unique_ptr<std::byte[]> buf)
      : pool_(pool), size_(size), buf_(std::move(buf)) {}

  BufferPool* pool_ = nullptr;
  std::size_t size_ = 0;
  std::unique_ptr<std::byte[]> buf_;
};

/// Free lists of fixed-size byte buffers, one list per distinct size
/// (Carina uses exactly two: kPageSize for twins/checkpoints and
/// pages_per_line * kPageSize for line buffers, so lookup is a two-entry
/// linear scan). The pool must outlive every PageBuf it issued — declare
/// it before the members that hold its buffers.
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Hand out a buffer of exactly `size` bytes: recycled from the free
  /// list when available, freshly allocated (zeroed, matching the seed's
  /// make_unique behaviour) otherwise. Under ARGO_SLOW_PATHS every call
  /// allocates fresh.
  PageBuf acquire(std::size_t size) {
    assert(size > 0);
    if (!argosim::slow_paths()) {
      auto& free = class_of(size).free;
      if (!free.empty()) {
        std::unique_ptr<std::byte[]> buf = std::move(free.back());
        free.pop_back();
        ++reuses_;
        return PageBuf(this, size, std::move(buf));
      }
    }
    ++allocations_;
    return PageBuf(this, size, std::make_unique<std::byte[]>(size));
  }

  /// Buffers allocated fresh / served from a free list. Reuse dominating
  /// allocation is the point; tests assert on the ratio.
  std::uint64_t allocations() const { return allocations_; }
  std::uint64_t reuses() const { return reuses_; }

  /// Buffers currently parked on free lists.
  std::size_t pooled_buffers() const {
    std::size_t n = 0;
    for (const auto& c : classes_) n += c.free.size();
    return n;
  }

 private:
  friend class PageBuf;

  struct SizeClass {
    std::size_t size = 0;
    std::vector<std::unique_ptr<std::byte[]>> free;
  };

  SizeClass& class_of(std::size_t size) {
    for (auto& c : classes_)
      if (c.size == size) return c;
    classes_.push_back(SizeClass{size, {}});
    return classes_.back();
  }

  void release(std::size_t size, std::unique_ptr<std::byte[]> buf) {
    if (argosim::slow_paths()) return;  // buf frees on scope exit
    class_of(size).free.push_back(std::move(buf));
  }

  std::vector<SizeClass> classes_;
  std::uint64_t allocations_ = 0;
  std::uint64_t reuses_ = 0;
};

inline void PageBuf::reset() {
  if (buf_ && pool_) pool_->release(size_, std::move(buf_));
  buf_.reset();
  pool_ = nullptr;
  size_ = 0;
}

}  // namespace argomem
