// The global (cluster-wide) address space and its home mapping.
//
// Argo sets up one shared virtual address range spanning all nodes; every
// page has a *home node* that holds its authoritative copy (§3). The paper's
// prototype distributes the range so "node0 serves the lower addresses ...
// and nodeN-1 serves the higher addresses" (blocked distribution); an
// interleaved mapping is provided as an alternative since the paper calls
// data distribution orthogonal future work.
//
// In the simulator all home memory lives in one flat buffer; the home
// mapping determines *which node's NIC/latency budget* an access is charged
// to, not where the bytes physically live.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "mem/gaddr.hpp"

namespace argomem {

enum class HomeMapping {
  Blocked,      ///< contiguous 1/N-th of the space per node (paper default)
  Interleaved,  ///< page p homed on node p % N
};

class GlobalMemory {
 public:
  /// Creates a global space of `total_bytes` (rounded up to whole pages per
  /// node) distributed over `nodes` homes.
  GlobalMemory(int nodes, std::size_t total_bytes,
               HomeMapping mapping = HomeMapping::Blocked);

  int nodes() const { return nodes_; }
  std::size_t size() const { return size_; }
  std::uint64_t pages() const { return size() / kPageSize; }
  std::uint64_t pages_per_node() const { return pages_per_node_; }
  HomeMapping mapping() const { return mapping_; }

  /// Home node of a page, after any crash-recovery redirects.
  int home_of_page(std::uint64_t page) const {
    int h;
    if (mapping_ == HomeMapping::Blocked) {
      std::uint64_t b = page / pages_per_node_;
      h = static_cast<int>(b >= static_cast<std::uint64_t>(nodes_)
                               ? nodes_ - 1
                               : b);
    } else {
      h = static_cast<int>(page % static_cast<std::uint64_t>(nodes_));
    }
    if (any_redirect_) {
      const int r = redirect_[static_cast<std::size_t>(h)];
      if (r >= 0) return r;
    }
    return h;
  }

  /// Install a node-level home redirect: pages originally homed on `from`
  /// are served (and charged) by `to` from now on. The bytes never move —
  /// the home buffer is one flat allocation — so re-homing is purely a
  /// routing/accounting change. Chains collapse: a later redirect of `to`
  /// retargets existing entries, keeping lookups O(1). Fault-free runs
  /// never take the redirect branch (any_redirect_ stays false).
  void set_home_redirect(int from, int to) {
    if (redirect_.empty()) redirect_.assign(static_cast<std::size_t>(nodes_), -1);
    redirect_[static_cast<std::size_t>(from)] = to;
    for (auto& r : redirect_)
      if (r == from) r = to;
    any_redirect_ = true;
  }

  /// Current redirect target of `node` (-1 = none). Tests/validation.
  int home_redirect(int node) const {
    return redirect_.empty() ? -1 : redirect_[static_cast<std::size_t>(node)];
  }

  int home_of(GAddr a) const { return home_of_page(page_of(a)); }

  /// Pointer to the authoritative (home) copy of a global address.
  std::byte* home_ptr(GAddr a) { return bytes_.get() + a; }
  const std::byte* home_ptr(GAddr a) const { return bytes_.get() + a; }

  /// Typed pointer into the home copy.
  template <typename T>
  T* home_ptr(gptr<T> p) {
    return reinterpret_cast<T*>(home_ptr(p.raw()));
  }

  // --- Allocation (collective-free bump allocator; no free()) ------------

  /// Allocate `n` bytes with the given alignment. Throws std::runtime_error
  /// (naming the requested and remaining byte counts) when the global
  /// space is exhausted.
  GAddr alloc_bytes(std::size_t n, std::size_t align = 64);

  /// Allocate an array of `count` Ts. Arrays of a page or more are
  /// page-aligned so distinct allocations never false-share a page.
  template <typename T>
  gptr<T> alloc(std::size_t count) {
    const std::size_t n = count * sizeof(T);
    const std::size_t align =
        n >= kPageSize ? kPageSize : std::max<std::size_t>(alignof(T), 8);
    return gptr<T>(alloc_bytes(n, align));
  }

  /// Bytes handed out so far.
  std::size_t allocated() const { return brk_; }

  /// Allocate `n` bytes guaranteed to be homed on `node` (synchronization
  /// objects — lock words, MCS queue nodes — want their spin flags in
  /// local memory). Carved from that node's pages at the top of the
  /// address space, growing downward, away from the main allocator.
  GAddr alloc_on_node(int node, std::size_t n, std::size_t align = 64);

  /// Typed node-homed allocation.
  template <typename T>
  gptr<T> alloc_on_node(int node, std::size_t count) {
    return gptr<T>(alloc_on_node(
        node, count * sizeof(T), std::max<std::size_t>(alignof(T), 8)));
  }

 private:
  struct NodeArena {
    std::uint64_t pages_taken = 0;  // from the top of this node's share
    GAddr cur_page = 0;             // current partially-filled page base
    std::size_t cur_off = 0;        // bump offset within cur_page
    bool has_page = false;
  };

  /// k-th page (0-based, from the top of the address space) homed on node.
  std::uint64_t kth_top_page_of(int node, std::uint64_t k) const;

  struct FreeDeleter {
    void operator()(std::byte* p) const noexcept { std::free(p); }
  };

  int nodes_;
  HomeMapping mapping_;
  std::uint64_t pages_per_node_;
  // calloc-backed so the (often 64 MB) home buffer is zeroed lazily by the
  // OS instead of memset at construction; behavior-identical to the old
  // zero-filled vector.
  std::unique_ptr<std::byte[], FreeDeleter> bytes_;
  std::size_t size_ = 0;
  std::size_t brk_ = 0;
  std::vector<NodeArena> arenas_;
  std::vector<int> redirect_;  // node-level home failover (crash recovery)
  bool any_redirect_ = false;
};

}  // namespace argomem
