#include "obs/metrics.hpp"

#include <utility>

namespace argoobs {

void MetricsRegistry::add_counter(std::string name, CounterFn read) {
  counters_.push_back({std::move(name), std::move(read)});
}

void MetricsRegistry::add_hist(std::string name, HistFn read) {
  hists_.push_back({std::move(name), std::move(read)});
}

std::vector<CounterSample> MetricsRegistry::sample_counters() const {
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const Counter& c : counters_) out.push_back({c.name, c.read()});
  return out;
}

std::vector<HistSample> MetricsRegistry::sample_hists() const {
  std::vector<HistSample> out;
  out.reserve(hists_.size());
  for (const Hist& h : hists_) out.push_back({h.name, h.read()});
  return out;
}

}  // namespace argoobs
