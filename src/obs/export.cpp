#include "obs/export.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace argoobs {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_uN(const std::vector<std::uint8_t>& in, std::size_t at,
                     int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_binary(const std::vector<TraceEvent>& events,
                                        std::uint64_t dropped) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + events.size() * kBinaryRecordSize);
  out.insert(out.end(), kBinaryMagic, kBinaryMagic + sizeof(kBinaryMagic));
  put_u32(out, kBinaryVersion);
  put_u32(out, kBinaryRecordSize);
  put_u64(out, events.size());
  put_u64(out, dropped);
  for (const TraceEvent& e : events) {
    put_u64(out, e.seq);
    put_u64(out, e.t);
    put_u64(out, e.page);
    put_u64(out, e.arg);
    put_u32(out, e.thread);
    put_u16(out, e.node);
    out.push_back(e.kind);
    out.push_back(e.state);
  }
  return out;
}

std::vector<TraceEvent> decode_binary(const std::vector<std::uint8_t>& bytes,
                                      std::uint64_t* dropped_out) {
  if (bytes.size() < 32 ||
      std::memcmp(bytes.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0)
    throw std::runtime_error("trace: bad magic");
  if (get_uN(bytes, 8, 4) != kBinaryVersion)
    throw std::runtime_error("trace: unsupported version");
  if (get_uN(bytes, 12, 4) != kBinaryRecordSize)
    throw std::runtime_error("trace: unexpected record size");
  const std::uint64_t count = get_uN(bytes, 16, 8);
  if (dropped_out) *dropped_out = get_uN(bytes, 24, 8);
  if (bytes.size() < 32 + count * kBinaryRecordSize)
    throw std::runtime_error("trace: truncated");
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(count));
  std::size_t at = 32;
  for (std::uint64_t i = 0; i < count; ++i, at += kBinaryRecordSize) {
    TraceEvent e;
    e.seq = get_uN(bytes, at + 0, 8);
    e.t = get_uN(bytes, at + 8, 8);
    e.page = get_uN(bytes, at + 16, 8);
    e.arg = get_uN(bytes, at + 24, 8);
    e.thread = static_cast<std::uint32_t>(get_uN(bytes, at + 32, 4));
    e.node = static_cast<std::uint16_t>(get_uN(bytes, at + 36, 2));
    e.kind = bytes[at + 38];
    e.state = bytes[at + 39];
    out.push_back(e);
  }
  return out;
}

std::string encode_chrome_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceEvent& e : events) {
    const Ev kind = static_cast<Ev>(e.kind);
    const char* ph = "i";
    if (kind == Ev::SiFenceBegin || kind == Ev::SdFenceBegin) ph = "B";
    if (kind == Ev::SiFenceEnd || kind == Ev::SdFenceEnd) ph = "E";
    const char* name = to_string(kind);
    if (kind == Ev::SiFenceEnd) name = to_string(Ev::SiFenceBegin);
    if (kind == Ev::SdFenceEnd) name = to_string(Ev::SdFenceBegin);
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,"
                  "\"pid\":%u,\"tid\":%u",
                  name, ph, static_cast<double>(e.t) / 1e3,
                  static_cast<unsigned>(e.node),
                  static_cast<unsigned>(e.thread));
    out += buf;
    // "E" events take no args in the trace_event format.
    if (ph[0] != 'E') {
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"seq\":%llu,\"page\":%llu,\"arg\":%llu,"
                    "\"state\":\"%s\"}",
                    static_cast<unsigned long long>(e.seq),
                    static_cast<unsigned long long>(e.page),
                    static_cast<unsigned long long>(e.arg),
                    state_name(e.state));
      out += buf;
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

namespace {

void write_file(const std::string& path, const void* data, std::size_t len) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  const std::size_t n = len ? std::fwrite(data, 1, len, f) : 0;
  std::fclose(f);
  if (n != len) throw std::runtime_error("trace: short write to " + path);
}

class BinaryFileSink final : public TraceSink {
 public:
  explicit BinaryFileSink(std::string path) : path_(std::move(path)) {}
  void flush(const std::vector<TraceEvent>& events,
             std::uint64_t dropped) override {
    const std::vector<std::uint8_t> bytes = encode_binary(events, dropped);
    write_file(path_, bytes.data(), bytes.size());
  }

 private:
  std::string path_;
};

class ChromeFileSink final : public TraceSink {
 public:
  explicit ChromeFileSink(std::string path) : path_(std::move(path)) {}
  void flush(const std::vector<TraceEvent>& events, std::uint64_t) override {
    const std::string json = encode_chrome_json(events);
    write_file(path_, json.data(), json.size());
  }

 private:
  std::string path_;
};

class CallbackSink final : public TraceSink {
 public:
  using Fn = std::function<void(const std::vector<TraceEvent>&, std::uint64_t)>;
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}
  void flush(const std::vector<TraceEvent>& events,
             std::uint64_t dropped) override {
    fn_(events, dropped);
  }

 private:
  Fn fn_;
};

}  // namespace

std::unique_ptr<TraceSink> make_binary_trace_sink(std::string path) {
  return std::make_unique<BinaryFileSink>(std::move(path));
}

std::unique_ptr<TraceSink> make_chrome_trace_sink(std::string path) {
  return std::make_unique<ChromeFileSink>(std::move(path));
}

std::unique_ptr<TraceSink> make_callback_trace_sink(
    std::function<void(const std::vector<TraceEvent>&, std::uint64_t)> fn) {
  return std::make_unique<CallbackSink>(std::move(fn));
}

}  // namespace argoobs
