#include "obs/trace.hpp"

#include "sim/engine.hpp"

namespace argoobs {

const char* to_string(Ev kind) {
  switch (kind) {
    case Ev::SiFenceBegin: return "si_fence_begin";
    case Ev::SiFenceEnd: return "si_fence_end";
    case Ev::SdFenceBegin: return "sd_fence_begin";
    case Ev::SdFenceEnd: return "sd_fence_end";
    case Ev::LineFill: return "line_fill";
    case Ev::Writeback: return "writeback";
    case Ev::ClassTransition: return "class_transition";
    case Ev::DeferredInval: return "deferred_inval";
    case Ev::Eviction: return "eviction";
    case Ev::LockHandover: return "lock_handover";
    case Ev::PostedRetire: return "posted_retire";
    case Ev::AdaptWbResize: return "adapt_wb_resize";
    case Ev::AdaptDiffMode: return "adapt_diff_mode";
    case Ev::AdaptPrefetch: return "adapt_prefetch";
  }
  return "unknown";
}

const char* state_name(std::uint8_t state) {
  switch (state) {
    case 0: return "P";
    case 1: return "S,NW";
    case 2: return "S,SW";
    case 3: return "S,MW";
    default: return "-";
  }
}

void Tracer::configure(int nodes, const TraceConfig& cfg) {
  enabled_ = cfg.enabled && cfg.ring_capacity > 0;
  // Rounded up to a power of two: the ring index is then a mask, and the
  // rings are sized in full up front, so the enabled emit path is pure
  // straight-line stores — no grow branch, no division.
  capacity_ = 1;
  while (capacity_ < cfg.ring_capacity) capacity_ *= 2;
  seq_ = 0;
  rings_.clear();
  if (enabled_) {
    rings_.resize(static_cast<std::size_t>(nodes));
    for (Ring& r : rings_) r.buf.resize(capacity_);
  }
}

void Tracer::emit_slow(int node, Ev kind, std::uint64_t page,
                       std::uint8_t state, std::uint64_t arg) {
  Ring& ring = rings_[static_cast<std::size_t>(node)];
  TraceEvent& e =
      ring.buf[static_cast<std::size_t>(ring.count) & (capacity_ - 1)];

  // Sharded: every emit site runs on the emitting node's shard, so the
  // ring is single-writer and a ring-local seq suffices. The shared
  // counter would be both a data race and a nondeterminism source (its
  // order depends on worker interleaving); snapshot() reconstructs the
  // global order from (t, node, ring order) instead.
  e.seq = sharded_ ? ring.count : seq_++;
  ++ring.count;
  const argosim::Engine* eng = argosim::Engine::current();
  e.t = eng ? eng->now() : 0;
  const argosim::SimThread* th = argosim::Engine::current_thread();
  e.thread = th ? static_cast<std::uint32_t>(th->id()) : 0;
  e.page = page;
  e.arg = arg;
  e.node = static_cast<std::uint16_t>(node);
  e.kind = static_cast<std::uint8_t>(kind);
  e.state = state;
}

std::vector<TraceEvent> Tracer::node_events(int node) const {
  std::vector<TraceEvent> out;
  if (!enabled_ || static_cast<std::size_t>(node) >= rings_.size()) return out;
  const Ring& ring = rings_[static_cast<std::size_t>(node)];
  // The rings are pre-sized, so the retained-event count comes from
  // `count`, not the buffer size.
  const std::size_t n = static_cast<std::size_t>(
      ring.count < capacity_ ? ring.count : capacity_);
  out.reserve(n);
  // Oldest retained event first: once wrapped, that is the slot just past
  // the most recently written one.
  const std::size_t start =
      ring.count > n ? static_cast<std::size_t>(ring.count) & (capacity_ - 1)
                     : 0;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(ring.buf[(start + i) & (capacity_ - 1)]);
  return out;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  if (!enabled_) return out;
  std::size_t total = 0;
  for (const Ring& r : rings_)
    total += static_cast<std::size_t>(r.count < capacity_ ? r.count
                                                          : capacity_);
  out.reserve(total);
  // K-way merge by seq: each per-node ring is already seq-sorted.
  std::vector<std::vector<TraceEvent>> per;
  per.reserve(rings_.size());
  for (std::size_t n = 0; n < rings_.size(); ++n)
    per.push_back(node_events(static_cast<int>(n)));
  std::vector<std::size_t> idx(per.size(), 0);
  // Merge key: in legacy mode the global seq is the emission order; in
  // sharded mode no global order was ever observed, so rebuild one from
  // (t, node, ring order) — the engine's own tie-break at equal
  // timestamps — and renumber so seqs stay gap-free and deterministic for
  // any worker count.
  const auto before = [this](const TraceEvent& a, const TraceEvent& b) {
    if (!sharded_) return a.seq < b.seq;
    if (a.t != b.t) return a.t < b.t;
    if (a.node != b.node) return a.node < b.node;
    return a.seq < b.seq;  // ring-local order
  };
  while (out.size() < total) {
    std::size_t best = per.size();
    for (std::size_t n = 0; n < per.size(); ++n) {
      if (idx[n] >= per[n].size()) continue;
      if (best == per.size() || before(per[n][idx[n]], per[best][idx[best]]))
        best = n;
    }
    out.push_back(per[best][idx[best]++]);
  }
  if (sharded_)
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i].seq = static_cast<std::uint64_t>(i);
  return out;
}

std::uint64_t Tracer::emitted() const {
  if (!sharded_) return seq_;
  std::uint64_t n = 0;
  for (const Ring& r : rings_) n += r.count;
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t d = 0;
  for (const Ring& r : rings_)
    if (r.count > capacity_) d += r.count - capacity_;
  return d;
}

void Tracer::clear() {
  for (Ring& r : rings_) r.count = 0;
}

}  // namespace argoobs
