// Trace exporters: the compact binary format (schema in docs/TRACING.md,
// readable by scripts/trace_query) and Chrome's trace_event JSON
// (loadable in chrome://tracing / Perfetto).
//
// Both encoders are pure functions over a seq-ordered event vector, so a
// deterministic simulation yields byte-identical files across reruns.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace argoobs {

/// Binary format constants. Layout: 8-byte magic, u32 version, u32 record
/// size, u64 record count, u64 dropped count, then `count` records of
/// {seq u64, t u64, page u64, arg u64, thread u32, node u16, kind u8,
/// state u8}, every field little-endian.
inline constexpr char kBinaryMagic[8] = {'A', 'R', 'G', 'O',
                                         'T', 'R', 'C', '1'};
inline constexpr std::uint32_t kBinaryVersion = 1;
inline constexpr std::uint32_t kBinaryRecordSize = 40;

std::vector<std::uint8_t> encode_binary(const std::vector<TraceEvent>& events,
                                        std::uint64_t dropped);

/// Decode a binary trace (throws std::runtime_error on malformed input).
/// Round-trips encode_binary exactly; `dropped_out` may be null.
std::vector<TraceEvent> decode_binary(const std::vector<std::uint8_t>& bytes,
                                      std::uint64_t* dropped_out = nullptr);

/// Chrome trace_event JSON: fences become "B"/"E" duration pairs, all
/// other kinds instant ("i") events; pid = node, tid = simulated thread,
/// ts = virtual microseconds.
std::string encode_chrome_json(const std::vector<TraceEvent>& events);

/// A trace consumer installed via Cluster::trace_sink(). flush() receives
/// the full seq-ordered snapshot; it may be called more than once.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void flush(const std::vector<TraceEvent>& events,
                     std::uint64_t dropped) = 0;
};

/// Sink writing the binary format to `path` on every flush (truncating).
std::unique_ptr<TraceSink> make_binary_trace_sink(std::string path);

/// Sink writing Chrome trace_event JSON to `path` on every flush.
std::unique_ptr<TraceSink> make_chrome_trace_sink(std::string path);

/// Sink invoking a callback with the snapshot (for tests / custom export).
std::unique_ptr<TraceSink> make_callback_trace_sink(
    std::function<void(const std::vector<TraceEvent>&, std::uint64_t)> fn);

}  // namespace argoobs
