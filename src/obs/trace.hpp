// Protocol event tracing: a per-node ring of fixed-size coherence events
// stamped with virtual time, node, simulated thread, page and page state.
//
// Recording is free in *virtual* time: emit() never calls delay() or
// touches the scheduler, so a traced run's virtual timings are bit-
// identical to an untraced one. When tracing is disabled (the default)
// every emit site reduces to one predicted branch; no ring memory is
// allocated. Because the simulator is cooperative (exactly one fiber runs
// at a time), a plain ring needs no synchronization — emission order *is*
// the global order, captured in the monotonically increasing `seq`.
//
// Event semantics (see docs/TRACING.md for the full schema):
//
//   SiFenceBegin/End   acquire-side fence; End.arg = pages invalidated
//   SdFenceBegin/End   release-side fence; Begin.arg = live write-buffer
//                      entries, End.arg = pages written back by the fence
//   LineFill           one RDMA read of a contiguous run; page = first
//                      page, arg = bytes fetched
//   Writeback          one page flushed home; arg = wire bytes
//   ClassTransition    this node caused P->S / NW->SW / SW->MW on a
//                      directory word; page = directory page, arg = the
//                      updated word, state = the *new* classification
//   DeferredInval      one coalesced notification atomic toward a
//                      displaced owner; arg = destination node
//   Eviction           page displaced by a conflict; arg = was dirty
//   LockHandover       a global MCS lock granted to a successor; page =
//                      the lock's tail-word global address, arg = grantee
//   PostedRetire       a posted verb retired from a send queue; page =
//                      the op id, arg = 1 if it hard-failed
//   AdaptWbResize      adaptive write-buffer sizing decision at a fence
//                      boundary; arg = the new capacity in pages
//   AdaptDiffMode      a page's diff-density classification flipped;
//                      arg = 1 entering full-page mode, 0 back to diffs
//   AdaptPrefetch      a confirmed stride widened a miss; page = the
//                      demand page, arg = pages prefetched
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace argoobs {

/// Event kinds. Stable numeric values: they are part of the binary trace
/// format (docs/TRACING.md); append new kinds, never renumber.
enum class Ev : std::uint8_t {
  SiFenceBegin = 0,
  SiFenceEnd = 1,
  SdFenceBegin = 2,
  SdFenceEnd = 3,
  LineFill = 4,
  Writeback = 5,
  ClassTransition = 6,
  DeferredInval = 7,
  Eviction = 8,
  LockHandover = 9,
  PostedRetire = 10,
  AdaptWbResize = 11,
  AdaptDiffMode = 12,
  AdaptPrefetch = 13,
};

const char* to_string(Ev kind);

/// Page state byte carried by events. Mirrors argocore::PageState's
/// enumerators (static_asserted in carina.cpp); kUnknownState for events
/// that have no page classification (locks, posted ops).
inline constexpr std::uint8_t kUnknownState = 0xff;

/// Printable name for a state byte ("P", "S,NW", "S,SW", "S,MW", "-").
const char* state_name(std::uint8_t state);

/// One fixed-size trace record (40 bytes in the binary format).
struct TraceEvent {
  std::uint64_t seq = 0;     ///< global emission order, gap-free per run
  argosim::Time t = 0;       ///< virtual time (ns)
  std::uint64_t page = 0;    ///< page / dir page / op id / lock address
  std::uint64_t arg = 0;     ///< kind-specific operand (see above)
  std::uint32_t thread = 0;  ///< simulated-thread id (engine fiber id)
  std::uint16_t node = 0;    ///< emitting node
  std::uint8_t kind = 0;     ///< Ev
  std::uint8_t state = kUnknownState;  ///< PageState or kUnknownState
};

/// Runtime tracing toggle, compile-time defaulted to off. With enabled ==
/// false the tracer allocates nothing and every emit is one branch.
struct TraceConfig {
  bool enabled = false;
  /// Per-node ring capacity in events (40 B each), rounded up to the next
  /// power of two so the ring index is a mask. When a ring wraps, the
  /// oldest events are overwritten and counted in dropped().
  std::size_t ring_capacity = 1u << 18;
};

/// Per-node event rings plus the global emission sequence.
class Tracer {
 public:
  Tracer() = default;

  /// Size the per-node rings. Allocates only when cfg.enabled.
  void configure(int nodes, const TraceConfig& cfg);

  /// Switch to sharded-engine emission. Every emit site runs on the
  /// emitting node's shard, so each ring stays single-writer; the only
  /// shared state would be the global `seq_` counter. In sharded mode
  /// events carry a ring-local seq instead, and snapshot() rebuilds the
  /// global order from (t, node, ring order) — a pure function of the
  /// per-shard histories, identical for any worker count.
  void enable_sharded() { sharded_ = true; }
  bool sharded() const { return sharded_; }

  bool enabled() const { return enabled_; }

  /// Record one event. Free of virtual time; a no-op branch when disabled.
  void emit(int node, Ev kind, std::uint64_t page, std::uint8_t state,
            std::uint64_t arg) {
    if (!enabled_) return;
    emit_slow(node, kind, page, state, arg);
  }

  /// All retained events of every node, merged in emission (seq) order.
  std::vector<TraceEvent> snapshot() const;

  /// Retained events of one node, oldest first.
  std::vector<TraceEvent> node_events(int node) const;

  std::uint64_t emitted() const;                   ///< total ever emitted
  std::uint64_t dropped() const;                   ///< overwritten by wraps

  /// Drop all retained events (the sequence keeps counting).
  void clear();

 private:
  void emit_slow(int node, Ev kind, std::uint64_t page, std::uint8_t state,
                 std::uint64_t arg);

  struct Ring {
    std::vector<TraceEvent> buf;  // pre-sized to capacity_ by configure();
                                  // circular once count >= capacity_
    std::uint64_t count = 0;      // total events pushed into this ring
  };

  bool enabled_ = false;
  bool sharded_ = false;
  std::size_t capacity_ = 0;
  std::uint64_t seq_ = 0;  // global order; unused (stays 0) when sharded
  std::vector<Ring> rings_;
};

}  // namespace argoobs
