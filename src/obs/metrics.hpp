// Metrics: the latency histogram primitive and the registry that gives
// every protocol counter/histogram a stable dotted name.
//
// Storage stays where the hot paths already are (CoherenceStats /
// NodeNetStats plain structs, incremented inline); the registry owns the
// *enumeration* — name -> sampling closure — so exporters, Cluster::stats()
// and tools never hard-code struct layouts. Sampling costs no virtual time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace argoobs {

/// Power-of-two histogram of virtual-time durations (ns).
///
/// Bucket layout (pinned by test_obs.cpp):
///   bucket 0        exactly-zero durations (the [2^-1, 2^0) formula range
///                   would be empty; zero gets its own bucket instead)
///   bucket b >= 1   durations in [2^(b-1), 2^b) — so bucket 1 holds only
///                   ns == 1, bucket 2 holds {2, 3}, bucket 3 holds [4, 8)
///   bucket 39       saturating: everything >= 2^38 ns (~275 s)
struct LatencyHist {
  static constexpr int kBuckets = 40;
  std::uint64_t bucket[kBuckets] = {};
  std::uint64_t samples = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  static constexpr int bucket_of(std::uint64_t ns) {
    if (ns == 0) return 0;
    const int width = 64 - __builtin_clzll(ns);  // 2^(width-1) <= ns < 2^width
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive lower edge of a bucket: 0 for bucket 0 (which holds only
  /// exactly-zero durations), 2^(b-1) for bucket b >= 1 — so
  /// bucket_floor_ns(1) == 1, the smallest nonzero duration.
  static constexpr std::uint64_t bucket_floor_ns(int b) {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
  }

  void add(std::uint64_t ns) {
    ++bucket[bucket_of(ns)];
    ++samples;
    total_ns += ns;
    if (ns > max_ns) max_ns = ns;
  }

  double mean_ns() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(total_ns) /
                              static_cast<double>(samples);
  }

  LatencyHist& operator+=(const LatencyHist& o) {
    for (int b = 0; b < kBuckets; ++b) bucket[b] += o.bucket[b];
    samples += o.samples;
    total_ns += o.total_ns;
    if (o.max_ns > max_ns) max_ns = o.max_ns;
    return *this;
  }
};

static_assert(LatencyHist::bucket_of(0) == 0);
static_assert(LatencyHist::bucket_of(1) == 1);
static_assert(LatencyHist::bucket_of(2) == 2);
static_assert(LatencyHist::bucket_of(3) == 2);
static_assert(LatencyHist::bucket_of(4) == 3);
static_assert(LatencyHist::bucket_of(~std::uint64_t{0}) ==
              LatencyHist::kBuckets - 1);
static_assert(LatencyHist::bucket_floor_ns(0) == 0);
static_assert(LatencyHist::bucket_floor_ns(1) == 1);
static_assert(LatencyHist::bucket_floor_ns(2) == 2);
static_assert(LatencyHist::bucket_floor_ns(10) == 512);

/// A sampled counter value.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

/// A sampled histogram (by value — safe to hold past the cluster).
struct HistSample {
  std::string name;
  LatencyHist hist;
};

/// Name -> closure registry over live metric storage. The cluster
/// registers every CoherenceStats / NodeNetStats field at construction;
/// sample() reads them all at any later instant.
class MetricsRegistry {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using HistFn = std::function<LatencyHist()>;

  void add_counter(std::string name, CounterFn read);
  void add_hist(std::string name, HistFn read);

  std::vector<CounterSample> sample_counters() const;
  std::vector<HistSample> sample_hists() const;

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t hist_count() const { return hists_.size(); }

 private:
  struct Counter {
    std::string name;
    CounterFn read;
  };
  struct Hist {
    std::string name;
    HistFn read;
  };
  std::vector<Counter> counters_;
  std::vector<Hist> hists_;
};

}  // namespace argoobs
