// A small message-passing library in the style of MPI, built on the
// simulated interconnect. The paper compares Argo against MPI ports of
// several benchmarks (Fig. 13b/c/d); those ports run on this library.
//
// Ranks map onto simulated threads (ranks_per_node per node, like one MPI
// process per core). Intra-node messages cost a memory copy; inter-node
// messages pay NIC posting + streaming (serialized per node NIC) plus wire
// latency, identical to the budget Argo's RDMA pays. Collectives are
// implemented with real point-to-point messages (dissemination barrier,
// binomial-tree broadcast/reduce), so their cost scales as a real MPI's
// would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/interconnect.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace argompi {

using argonet::Interconnect;
using argosim::Time;

inline constexpr int kAnySource = -1;

class MpiWorld {
 public:
  /// `ranks_per_node` ranks are colocated per simulated node.
  MpiWorld(Interconnect& net, int ranks, int ranks_per_node);

  int size() const { return ranks_; }
  int node_of(int rank) const { return rank / ranks_per_node_; }

  // --- Point-to-point ------------------------------------------------------

  /// Blocking standard-mode send (buffered: returns when the payload has
  /// left this rank, i.e. after posting/streaming costs).
  void send(int src_rank, int dst_rank, int tag, const void* data,
            std::size_t bytes);

  /// Blocking receive matching (src_rank, tag); src may be kAnySource.
  /// Returns the actual source rank. `bytes` is the expected size.
  int recv(int me, int src_rank, int tag, void* data, std::size_t bytes);

  /// True if a matching message could be received without blocking.
  bool probe(int me, int src_rank, int tag);

  // --- Collectives (over all ranks; every rank must participate) ----------

  void barrier(int me);
  void bcast(int me, int root, void* data, std::size_t bytes);
  void reduce_sum(int me, int root, double* data, std::size_t count);
  void allreduce_sum(int me, double* data, std::size_t count);
  void allreduce_sum(int me, std::uint64_t* data, std::size_t count);
  /// Gather `bytes` from every rank into rank-indexed slots at root.
  void gather(int me, int root, const void* send, void* recv_all,
              std::size_t bytes);
  /// Gather to everyone (gather + bcast).
  void allgather(int me, const void* send, void* recv_all, std::size_t bytes);

  /// Messages/bytes sent (from the interconnect plus intra-node traffic).
  std::uint64_t intra_node_msgs() const { return intra_msgs_; }

 private:
  struct Msg {
    int src;
    int tag;
    Time deliver_at;
    std::uint64_t seq;
    std::vector<std::byte> payload;
  };

  struct RankBox {
    std::deque<Msg> queue;  // arrival order; matched by (src, tag)
    argosim::WaitQueue waiters;
  };

  /// Find (and remove) the first deliverable matching message; returns
  /// false if none is matched *and* deliverable yet.
  bool try_match(RankBox& box, int src, int tag, Msg& out, Time* next_time);

  // collective internals (reserved tag space)
  static constexpr int kBarrierTag = -1000;
  static constexpr int kBcastTag = -2000;
  static constexpr int kReduceTag = -3000;
  static constexpr int kGatherTag = -4000;

  template <typename T>
  void reduce_sum_impl(int me, int root, T* data, std::size_t count, int tag);

  Interconnect& net_;
  int ranks_;
  int ranks_per_node_;
  std::vector<std::unique_ptr<RankBox>> boxes_;
  std::uint64_t seq_ = 0;
  std::uint64_t intra_msgs_ = 0;
};

/// A self-contained MPI execution environment: engine + interconnect +
/// world, with a convenience runner spawning one fiber per rank.
struct MpiEnv {
  MpiEnv(int nodes, int ranks_per_node, argonet::NetConfig cfg)
      : net(nodes, cfg), world(net, nodes * ranks_per_node, ranks_per_node) {}

  /// Run `rank_body(world, rank)` on every rank; returns virtual duration.
  Time run(const std::function<void(MpiWorld&, int)>& rank_body) {
    const Time t0 = eng.now();
    for (int r = 0; r < world.size(); ++r)
      eng.spawn("rank" + std::to_string(r),
                [this, r, &rank_body] { rank_body(world, r); });
    eng.run();
    return eng.now() - t0;
  }

  argosim::Engine eng;
  Interconnect net;
  MpiWorld world;
};

}  // namespace argompi
