#include "baseline/active_dsm.hpp"

#include <cassert>
#include <cstring>

namespace argobaseline {

using argonet::Message;

ActiveDsm::ActiveDsm(Config cfg)
    : cfg_(cfg),
      net_(cfg.nodes, cfg.net),
      gmem_(cfg.nodes, cfg.global_mem_bytes) {
  dirs_.resize(gmem_.pages());
  for (int n = 0; n < cfg_.nodes; ++n)
    nodes_.push_back(std::make_unique<NodeState>());
  for (int n = 0; n < cfg_.nodes; ++n)
    node_barriers_.push_back(std::make_unique<argosim::SimBarrier>(
        static_cast<std::size_t>(cfg_.threads_per_node)));
  leader_barrier_ = std::make_unique<argosim::SimBarrier>(
      static_cast<std::size_t>(cfg_.nodes));
  int rounds = 0;
  while ((1 << rounds) < cfg_.nodes) ++rounds;
  barrier_net_cost_ = static_cast<Time>(rounds) *
                      (cfg_.net.msg_latency + cfg_.net.nic_overhead);
}

void ActiveDsm::send_ctrl(int src, int dst, Tag tag, std::uint64_t page,
                          std::vector<std::byte> payload) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.a = page;
  m.payload = std::move(payload);
  net_.send(std::move(m));
}

// ---------------------------------------------------------------------------
// The active agent: one handler fiber per node. It is both the directory
// agent for the node's home pages and the cache agent answering recalls
// and invalidations — each processed message pays handler_dispatch.
// ---------------------------------------------------------------------------

void ActiveDsm::handler_loop(int node) {
  NodeState& ns = *nodes_[static_cast<std::size_t>(node)];
  for (;;) {
    Message m = net_.recv(node);
    argosim::delay(cfg_.net.handler_dispatch);
    ++ns.stats.handler_messages;
    ns.stats.handler_busy += cfg_.net.handler_dispatch;
    switch (m.tag) {
      case kReqR:
      case kReqW:
      case kInvAck:
      case kRecallAck:
        handle_home_request(node, std::move(m));
        break;
      case kRecall:
      case kRecallInv: {
        // We own this page in M; return the data to the home.
        auto it = ns.cache.find(m.a);
        assert(it != ns.cache.end() && it->second.modified);
        std::vector<std::byte> data = it->second.data;
        if (m.tag == kRecall)
          it->second.modified = false;  // downgrade M→S
        else
          ns.cache.erase(it);
        ++ns.stats.recalls;
        send_ctrl(node, m.src, kRecallAck, m.a, std::move(data));
        break;
      }
      case kInv: {
        ns.cache.erase(m.a);
        ++ns.stats.invalidations;
        send_ctrl(node, m.src, kInvAck, m.a);
        break;
      }
      case kDataR:
      case kDataW: {
        CacheEntry& e = ns.cache[m.a];
        e.modified = (m.tag == kDataW);
        e.data = std::move(m.payload);
        auto pit = ns.pending.find(m.a);
        if (pit != ns.pending.end()) pit->second->ev.set();
        break;
      }
      default:
        assert(false && "unknown message tag");
    }
  }
}

void ActiveDsm::grant(int home, std::uint64_t page, PageDir& d) {
  const Message& m = d.cur;
  std::vector<std::byte> data(kPageSize);
  std::memcpy(data.data(), gmem_.home_ptr(page * kPageSize), kPageSize);
  if (m.tag == kReqR) {
    d.sharers |= std::uint32_t{1} << m.src;
    send_ctrl(home, m.src, kDataR, page, std::move(data));
  } else {
    d.owner = m.src;
    d.sharers = 0;
    send_ctrl(home, m.src, kDataW, page, std::move(data));
  }
}

void ActiveDsm::handle_home_request(int node, Message m) {
  const std::uint64_t page = m.a;
  assert(gmem_.home_of_page(page) == node);
  PageDir& d = dir_of(page);
  switch (m.tag) {
    case kReqR:
    case kReqW: {
      if (d.busy) {
        d.waiting.push_back(std::move(m));
        return;
      }
      const int req = m.src;
      if (m.tag == kReqR) {
        if (d.owner != -1 && d.owner != req) {
          d.busy = true;
          d.cur = std::move(m);
          d.pending_acks = 1;
          send_ctrl(node, d.owner, kRecall, page);
          return;
        }
        d.cur = std::move(m);
        grant(node, page, d);
        return;
      }
      // kReqW
      if (d.owner != -1 && d.owner != req) {
        d.busy = true;
        d.cur = std::move(m);
        d.pending_acks = 1;
        send_ctrl(node, d.owner, kRecallInv, page);
        return;
      }
      const std::uint32_t others =
          d.sharers & ~(std::uint32_t{1} << req);
      if (others != 0) {
        d.busy = true;
        d.cur = std::move(m);
        d.pending_acks = __builtin_popcount(others);
        std::uint32_t rest = others;
        while (rest != 0) {
          const int s = __builtin_ctz(rest);
          rest &= rest - 1;
          send_ctrl(node, s, kInv, page);
        }
        return;
      }
      d.cur = std::move(m);
      grant(node, page, d);
      return;
    }
    case kInvAck: {
      assert(d.busy && d.pending_acks > 0);
      if (--d.pending_acks > 0) return;
      d.sharers = 0;
      grant(node, page, d);
      break;  // fall through to unbusy + drain
    }
    case kRecallAck: {
      assert(d.busy && d.pending_acks == 1);
      d.pending_acks = 0;
      std::memcpy(gmem_.home_ptr(page * kPageSize), m.payload.data(),
                  kPageSize);
      if (d.cur.tag == kReqR && d.owner != -1)
        d.sharers |= std::uint32_t{1} << d.owner;  // recalled owner keeps S
      d.owner = -1;
      grant(node, page, d);
      break;
    }
    default:
      assert(false);
      return;
  }
  // Transaction completed: serve queued requests in FIFO order.
  d.busy = false;
  while (!d.waiting.empty() && !d.busy) {
    Message next = std::move(d.waiting.front());
    d.waiting.pop_front();
    handle_home_request(node, std::move(next));
  }
}

// ---------------------------------------------------------------------------
// Thread side
// ---------------------------------------------------------------------------

ActiveDsm::CacheEntry& ActiveDsm::acquire_page(int node, std::uint64_t page,
                                               bool want_write) {
  NodeState& ns = *nodes_[static_cast<std::size_t>(node)];
  for (;;) {
    auto it = ns.cache.find(page);
    if (it != ns.cache.end() && (it->second.modified || !want_write))
      return it->second;
    auto pit = ns.pending.find(page);
    if (pit != ns.pending.end()) {
      auto keepalive = pit->second;  // survives the creator's erase
      keepalive->ev.wait();
      continue;
    }
    auto pf = std::make_shared<PendingFetch>();
    ns.pending.emplace(page, pf);
    if (want_write)
      ++ns.stats.write_misses;
    else
      ++ns.stats.read_misses;
    send_ctrl(node, gmem_.home_of_page(page), want_write ? kReqW : kReqR,
              page);
    pf->ev.wait();
    ns.pending.erase(page);
    // Loop: the handler installed the entry (or a racing invalidation
    // removed it again — then we simply re-request).
  }
}

void ActiveThread::load_bytes(GAddr a, std::byte* out, std::size_t n) {
  while (n > 0) {
    const std::uint64_t page = argomem::page_of(a);
    const std::size_t off = argomem::page_offset(a);
    const std::size_t chunk = std::min(n, kPageSize - off);
    auto& e = dsm_->acquire_page(node_, page, /*want_write=*/false);
    std::memcpy(out, e.data.data() + off, chunk);
    a += chunk;
    out += chunk;
    n -= chunk;
  }
}

void ActiveThread::store_bytes(GAddr a, const std::byte* in, std::size_t n) {
  while (n > 0) {
    const std::uint64_t page = argomem::page_of(a);
    const std::size_t off = argomem::page_offset(a);
    const std::size_t chunk = std::min(n, kPageSize - off);
    auto& e = dsm_->acquire_page(node_, page, /*want_write=*/true);
    std::memcpy(e.data.data() + off, in, chunk);
    a += chunk;
    in += chunk;
    n -= chunk;
  }
}

int ActiveThread::nodes() const { return dsm_->nodes(); }
int ActiveThread::threads_per_node() const { return dsm_->threads_per_node(); }
int ActiveThread::nthreads() const {
  return dsm_->nodes() * dsm_->threads_per_node();
}

void ActiveThread::barrier() {
  auto& nb = *dsm_->node_barriers_[static_cast<std::size_t>(node_)];
  nb.arrive_and_wait();
  if (tid_ == 0 && dsm_->cfg_.nodes > 1) {
    dsm_->leader_barrier_->arrive_and_wait();
    argosim::delay(dsm_->barrier_net_cost_);
  }
  nb.arrive_and_wait();
}

// ---------------------------------------------------------------------------
// ActiveDsm facade
// ---------------------------------------------------------------------------

Time ActiveDsm::run(const std::function<void(ActiveThread&)>& body) {
  if (!handlers_started_) {
    handlers_started_ = true;
    for (int n = 0; n < cfg_.nodes; ++n)
      eng_.spawn("handler" + std::to_string(n), [this, n] { handler_loop(n); },
                 /*daemon=*/true);
  }
  const Time t0 = eng_.now();
  for (int n = 0; n < cfg_.nodes; ++n)
    for (int t = 0; t < cfg_.threads_per_node; ++t) {
      const int gid = n * cfg_.threads_per_node + t;
      eng_.spawn("n" + std::to_string(n) + "t" + std::to_string(t),
                 [this, n, t, gid, &body] {
                   ActiveThread self(this, n, t, gid);
                   body(self);
                 });
    }
  eng_.run();
  return eng_.now() - t0;
}

void ActiveDsm::flush_all_host() {
  for (auto& ns : nodes_)
    for (auto& [page, entry] : ns->cache)
      if (entry.modified)
        std::memcpy(gmem_.home_ptr(page * kPageSize), entry.data.data(),
                    kPageSize);
}

ActiveDsmStats ActiveDsm::stats() const {
  ActiveDsmStats total;
  for (const auto& ns : nodes_) {
    total.handler_messages += ns->stats.handler_messages;
    total.read_misses += ns->stats.read_misses;
    total.write_misses += ns->stats.write_misses;
    total.recalls += ns->stats.recalls;
    total.invalidations += ns->stats.invalidations;
    total.handler_busy += ns->stats.handler_busy;
  }
  return total;
}

}  // namespace argobaseline
