#include "baseline/mpi.hpp"

#include <cassert>
#include <cstring>

namespace argompi {

MpiWorld::MpiWorld(Interconnect& net, int ranks, int ranks_per_node)
    : net_(net), ranks_(ranks), ranks_per_node_(ranks_per_node) {
  assert(ranks >= 1 && ranks_per_node >= 1);
  assert((ranks + ranks_per_node - 1) / ranks_per_node <= net.nodes());
  boxes_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r)
    boxes_.push_back(std::make_unique<RankBox>());
}

void MpiWorld::send(int src_rank, int dst_rank, int tag, const void* data,
                    std::size_t bytes) {
  // Rank mailboxes and the global matching sequence are host-shared across
  // nodes; under the sharded engine a send would write another shard's box.
  if (argosim::Engine* e = argosim::Engine::current())
    e->require_serial("the MPI baseline's shared rank mailboxes");
  const int sn = node_of(src_rank), dn = node_of(dst_rank);
  Time deliver_at;
  if (sn == dn) {
    ++intra_msgs_;
    argosim::delay(net_.config().mem_latency + net_.config().mem_copy(bytes));
    deliver_at = argosim::now();
  } else {
    deliver_at = net_.charge_message(sn, dn, bytes);
  }
  Msg m;
  m.src = src_rank;
  m.tag = tag;
  m.deliver_at = deliver_at;
  m.seq = seq_++;
  m.payload.resize(bytes);
  if (bytes > 0) std::memcpy(m.payload.data(), data, bytes);
  RankBox& box = *boxes_[static_cast<std::size_t>(dst_rank)];
  box.queue.push_back(std::move(m));
  box.waiters.notify_all();
}

bool MpiWorld::try_match(RankBox& box, int src, int tag, Msg& out,
                         Time* next_time) {
  const Time now = argosim::now();
  Time earliest = ~Time{0};
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (it->tag != tag) continue;
    if (src != kAnySource && it->src != src) continue;
    if (it->deliver_at <= now) {
      out = std::move(*it);
      box.queue.erase(it);
      return true;
    }
    if (it->deliver_at < earliest) earliest = it->deliver_at;
    if (src != kAnySource) break;  // per-pair FIFO: earlier one gates us
  }
  *next_time = earliest;
  return false;
}

int MpiWorld::recv(int me, int src_rank, int tag, void* data,
                   std::size_t bytes) {
  RankBox& box = *boxes_[static_cast<std::size_t>(me)];
  for (;;) {
    Msg m;
    Time next = ~Time{0};
    if (try_match(box, src_rank, tag, m, &next)) {
      assert(m.payload.size() == bytes && "size mismatch in MPI recv");
      if (bytes > 0) {
        std::memcpy(data, m.payload.data(), bytes);
        argosim::delay(net_.config().mem_copy(bytes));
      }
      return m.src;
    }
    if (next != ~Time{0})
      box.waiters.wait_until(next);
    else
      box.waiters.wait();
  }
}

bool MpiWorld::probe(int me, int src_rank, int tag) {
  RankBox& box = *boxes_[static_cast<std::size_t>(me)];
  const Time now = argosim::now();
  for (const Msg& m : box.queue) {
    if (m.tag != tag) continue;
    if (src_rank != kAnySource && m.src != src_rank) continue;
    return m.deliver_at <= now;
  }
  return false;
}

void MpiWorld::barrier(int me) {
  // Dissemination barrier: ceil(log2 P) rounds of pairwise messages.
  for (int k = 0, dist = 1; dist < ranks_; ++k, dist <<= 1) {
    const int to = (me + dist) % ranks_;
    const int from = (me - dist % ranks_ + ranks_) % ranks_;
    send(me, to, kBarrierTag - k, nullptr, 0);
    recv(me, from, kBarrierTag - k, nullptr, 0);
  }
}

void MpiWorld::bcast(int me, int root, void* data, std::size_t bytes) {
  if (ranks_ == 1) return;
  const int rel = (me - root + ranks_) % ranks_;
  int mask = 1;
  while (mask < ranks_) {
    if (rel & mask) {
      const int src = (rel - mask + root) % ranks_;
      recv(me, src, kBcastTag, data, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    const int dst_rel = rel + mask;
    if (dst_rel < ranks_ && (rel & (mask - 1)) == 0 && (rel & mask) == 0)
      send(me, (dst_rel + root) % ranks_, kBcastTag, data, bytes);
    mask >>= 1;
  }
}

template <typename T>
void MpiWorld::reduce_sum_impl(int me, int root, T* data, std::size_t count,
                               int tag) {
  // Binomial-tree reduction; non-root buffers are used as scratch.
  const int rel = (me - root + ranks_) % ranks_;
  std::vector<T> tmp(count);
  int mask = 1;
  while (mask < ranks_) {
    if (rel & mask) {
      const int dst = (rel - mask + root) % ranks_;
      send(me, dst, tag, data, count * sizeof(T));
      return;
    }
    const int src_rel = rel + mask;
    if (src_rel < ranks_) {
      const int src = (src_rel + root) % ranks_;
      recv(me, src, tag, tmp.data(), count * sizeof(T));
      for (std::size_t i = 0; i < count; ++i) data[i] += tmp[i];
    }
    mask <<= 1;
  }
}

void MpiWorld::reduce_sum(int me, int root, double* data, std::size_t count) {
  reduce_sum_impl(me, root, data, count, kReduceTag);
}

void MpiWorld::allreduce_sum(int me, double* data, std::size_t count) {
  reduce_sum_impl(me, 0, data, count, kReduceTag - 1);
  bcast(me, 0, data, count * sizeof(double));
}

void MpiWorld::allreduce_sum(int me, std::uint64_t* data, std::size_t count) {
  reduce_sum_impl(me, 0, data, count, kReduceTag - 2);
  bcast(me, 0, data, count * sizeof(std::uint64_t));
}

void MpiWorld::gather(int me, int root, const void* send_buf, void* recv_all,
                      std::size_t bytes) {
  if (me != root) {
    send(me, root, kGatherTag, send_buf, bytes);
    return;
  }
  auto* out = static_cast<std::byte*>(recv_all);
  std::memcpy(out + static_cast<std::size_t>(root) * bytes, send_buf, bytes);
  for (int r = 0; r < ranks_; ++r) {
    if (r == root) continue;
    recv(me, r, kGatherTag, out + static_cast<std::size_t>(r) * bytes, bytes);
  }
}

void MpiWorld::allgather(int me, const void* send_buf, void* recv_all,
                         std::size_t bytes) {
  gather(me, 0, send_buf, recv_all, bytes);
  bcast(me, 0, recv_all, bytes * static_cast<std::size_t>(ranks_));
}

}  // namespace argompi
