// A traditional home-based DSM with *active* directories — the design the
// paper argues against (§1, §3): every coherence action goes through a
// software message handler at the home node, which tracks sharers/owner
// per page, sends invalidations and recalls, and serializes transactions.
//
// The protocol is page-granularity MSI with a blocking home: read misses
// indirect through the home (recalling a modified copy from its owner),
// write misses invalidate every sharer and grant exclusive ownership.
// Every message processed by a handler pays NetConfig::handler_dispatch —
// the latency Argo's handler-free protocol does not have. Under migratory
// sharing (critical sections) pages ping-pong between owners through the
// home, costing 4+ network hops per handoff.
//
// Used by bench/ablation_handlers to quantify what passive coherence buys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/global_memory.hpp"
#include "net/interconnect.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace argobaseline {

using argomem::GAddr;
using argomem::GlobalMemory;
using argomem::gptr;
using argomem::kPageSize;
using argosim::Time;

class ActiveDsm;

/// Execution context for application threads on the active DSM.
class ActiveThread {
 public:
  int node() const { return node_; }
  int tid() const { return tid_; }
  int gid() const { return gid_; }
  int nodes() const;
  int threads_per_node() const;
  int nthreads() const;

  template <typename T>
  T load(gptr<T> p) {
    T v;
    load_bytes(p.raw(), reinterpret_cast<std::byte*>(&v), sizeof(T));
    return v;
  }
  template <typename T>
  void store(gptr<T> p, const T& v) {
    store_bytes(p.raw(), reinterpret_cast<const std::byte*>(&v), sizeof(T));
  }
  template <typename T>
  void load_bulk(gptr<T> src, T* dst, std::size_t count) {
    load_bytes(src.raw(), reinterpret_cast<std::byte*>(dst),
               count * sizeof(T));
  }
  template <typename T>
  void store_bulk(gptr<T> dst, const T* src, std::size_t count) {
    store_bytes(dst.raw(), reinterpret_cast<const std::byte*>(src),
                count * sizeof(T));
  }

  void compute(Time ns) { argosim::delay(ns); }
  /// Barrier (no fences needed: the protocol keeps caches coherent).
  void barrier();

 private:
  friend class ActiveDsm;
  ActiveThread(ActiveDsm* dsm, int node, int tid, int gid)
      : dsm_(dsm), node_(node), tid_(tid), gid_(gid) {}
  void load_bytes(GAddr a, std::byte* out, std::size_t n);
  void store_bytes(GAddr a, const std::byte* in, std::size_t n);

  ActiveDsm* dsm_;
  int node_, tid_, gid_;
};

struct ActiveDsmStats {
  std::uint64_t handler_messages = 0;  ///< messages processed by handlers
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t recalls = 0;
  std::uint64_t invalidations = 0;
  Time handler_busy = 0;               ///< handler dispatch time accumulated
};

class ActiveDsm {
 public:
  struct Config {
    int nodes = 4;
    int threads_per_node = 4;
    std::size_t global_mem_bytes = 64u << 20;
    argonet::NetConfig net;
  };

  explicit ActiveDsm(Config cfg);

  template <typename T>
  gptr<T> alloc(std::size_t count) {
    return gmem_.alloc<T>(count);
  }
  template <typename T>
  T* host_ptr(gptr<T> p) {
    // Host verification requires quiescence: after run() returns, modified
    // pages may still live at their owners; call flush_all_host() first.
    return gmem_.home_ptr(p);
  }

  /// Host-side (free) flush: copy every modified cached page back home.
  void flush_all_host();

  /// Run `body` on every thread; returns elapsed virtual time.
  Time run(const std::function<void(ActiveThread&)>& body);

  ActiveDsmStats stats() const;
  const argonet::NodeNetStats& net_stats(int node) const {
    return net_.stats(node);
  }
  argonet::Interconnect& net() { return net_; }

  int nodes() const { return cfg_.nodes; }
  int threads_per_node() const { return cfg_.threads_per_node; }

 private:
  friend class ActiveThread;

  enum Tag : int {
    kReqR = 1,
    kReqW,
    kRecall,      // owner: downgrade M→S, return data
    kRecallInv,   // owner: invalidate, return data
    kInv,         // sharer: invalidate
    kInvAck,
    kRecallAck,   // carries page data
    kDataR,       // home → requestor, shared grant + data
    kDataW,       // home → requestor, exclusive grant + data
  };

  struct PageDir {
    std::uint32_t sharers = 0;
    int owner = -1;
    bool busy = false;
    argonet::Message cur;               // transaction being served
    int pending_acks = 0;
    std::deque<argonet::Message> waiting;
  };

  struct CacheEntry {
    bool modified = false;
    std::vector<std::byte> data;
  };

  struct PendingFetch {
    argosim::SimEvent ev;
  };

  struct NodeState {
    std::unordered_map<std::uint64_t, CacheEntry> cache;
    // shared_ptr: waiters hold a reference across the creator's erase.
    std::unordered_map<std::uint64_t, std::shared_ptr<PendingFetch>> pending;
    ActiveDsmStats stats;
  };

  void handler_loop(int node);
  void handle_home_request(int node, argonet::Message m);
  void grant(int home, std::uint64_t page, PageDir& dir);
  void send_ctrl(int src, int dst, Tag tag, std::uint64_t page,
                 std::vector<std::byte> payload = {});
  PageDir& dir_of(std::uint64_t page) { return dirs_[page]; }

  /// Thread-side: ensure the page is cached with (at least) the requested
  /// right; returns the cache entry.
  CacheEntry& acquire_page(int node, std::uint64_t page, bool want_write);

  Config cfg_;
  argosim::Engine eng_;
  argonet::Interconnect net_;
  GlobalMemory gmem_;
  std::vector<PageDir> dirs_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::unique_ptr<argosim::SimBarrier>> node_barriers_;
  std::unique_ptr<argosim::SimBarrier> leader_barrier_;
  Time barrier_net_cost_ = 0;
  bool handlers_started_ = false;
};

}  // namespace argobaseline
