// A UPC-style PGAS layer (paper §2.1, §5.5 baselines).
//
// Shared arrays live in the global address space with per-node affinity
// (the home mapping *is* the affinity). There is no caching: accesses with
// local affinity touch memory directly; remote accesses are fine-grained
// RDMA, each paying full network latency — which is exactly the behaviour
// the paper contrasts Argo against. Bulk transfers (the "cast to local
// pointer and memget" idiom UPC programmers are told to use) are provided
// and used by the optimized UPC ports of EP and CG.
#pragma once

#include <cstddef>
#include <cstring>

#include "core/cluster.hpp"

namespace argopgas {

using argo::Cluster;
using argo::Thread;
using argomem::gptr;

template <typename T>
class PgasArray {
 public:
  PgasArray() = default;
  PgasArray(Cluster& cl, std::size_t n) : base_(cl.alloc<T>(n)), n_(n) {}

  std::size_t size() const { return n_; }
  gptr<T> gbase() const { return base_; }

  /// Affinity of element i (its home node).
  int affinity(Thread& t, std::size_t i) const {
    return t.cluster().gmem().home_of(base_.at(i).raw());
  }

  bool is_local(Thread& t, std::size_t i) const {
    return affinity(t, i) == t.node();
  }

  /// Fine-grained shared read: free when local, one RDMA read when remote.
  T get(Thread& t, std::size_t i) const {
    auto& g = t.cluster().gmem();
    auto p = base_.at(i);
    const int home = g.home_of(p.raw());
    if (home == t.node()) return *g.home_ptr(p);
    T v;
    t.cluster().net().read(t.node(), home, g.home_ptr(p), &v, sizeof(T));
    return v;
  }

  /// Fine-grained shared write.
  void put(Thread& t, std::size_t i, const T& v) {
    auto& g = t.cluster().gmem();
    auto p = base_.at(i);
    const int home = g.home_of(p.raw());
    if (home == t.node()) {
      *g.home_ptr(p) = v;
      return;
    }
    t.cluster().net().write(t.node(), home, g.home_ptr(p), &v, sizeof(T));
  }

  /// Bulk get [lo, lo+count) into a private buffer (upc_memget): one RDMA
  /// read per contiguous same-home segment.
  void get_bulk(Thread& t, std::size_t lo, std::size_t count, T* out) const {
    auto& g = t.cluster().gmem();
    std::size_t i = lo;
    while (i < lo + count) {
      const int home = g.home_of(base_.at(i).raw());
      std::size_t end = i + 1;
      while (end < lo + count && g.home_of(base_.at(end).raw()) == home) ++end;
      const std::size_t bytes = (end - i) * sizeof(T);
      if (home == t.node()) {
        std::memcpy(out + (i - lo), g.home_ptr(base_.at(i)), bytes);
        argosim::delay(t.cluster().net().config().mem_copy(bytes));
      } else {
        t.cluster().net().read(t.node(), home, g.home_ptr(base_.at(i)),
                               out + (i - lo), bytes);
      }
      i = end;
    }
  }

  /// Bulk put from a private buffer (upc_memput).
  void put_bulk(Thread& t, std::size_t lo, std::size_t count, const T* in) {
    auto& g = t.cluster().gmem();
    std::size_t i = lo;
    while (i < lo + count) {
      const int home = g.home_of(base_.at(i).raw());
      std::size_t end = i + 1;
      while (end < lo + count && g.home_of(base_.at(end).raw()) == home) ++end;
      const std::size_t bytes = (end - i) * sizeof(T);
      if (home == t.node()) {
        std::memcpy(g.home_ptr(base_.at(i)), in + (i - lo), bytes);
        argosim::delay(t.cluster().net().config().mem_copy(bytes));
      } else {
        t.cluster().net().write(t.node(), home, g.home_ptr(base_.at(i)),
                                in + (i - lo), bytes);
      }
      i = end;
    }
  }

 private:
  gptr<T> base_;
  std::size_t n_ = 0;
};

/// upc_barrier: the same rendezvous cost as Argo's hierarchical barrier
/// (node-local barrier + global dissemination rounds) but with NO
/// coherence fences — PGAS has no caches to flush or invalidate.
inline void pgas_barrier(Thread& t) { t.cluster().rendezvous(t); }

}  // namespace argopgas
