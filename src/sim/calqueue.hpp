// O(1)-amortized calendar run queue for the virtual-time engine.
//
// A binary heap charges O(log n) comparisons per event; with hundreds of
// fibers and per-event costs already trimmed elsewhere, the heap shows up.
// A calendar queue exploits what a discrete-event scheduler knows about
// its keys: they are virtual times, popped in nondecreasing order, with
// most events clustered a few verb latencies past the clock. Events hash
// by time into an array of "day" buckets of width 2^shift ns (the array is
// one "year"; later years share buckets, distinguished by key). Pops walk
// days forward from a low-watermark; pushes append to a bucket — both
// amortized O(1) for the stationary arrival pattern a simulation produces.
//
// Two refinements over the textbook structure keep the worst cases tame:
//
//  * Current-day rung. Instead of min-scanning the head bucket on every
//    pop, the first pop into a day extracts the whole day into a sorted
//    staging vector ("rung") drained by cursor. Same-time mass wakeups —
//    a barrier releasing hundreds of fibers at one instant — cost one
//    O(k log k) sort instead of k O(k) scans, and same-day pushes insert
//    into the rung by binary search, preserving pop order exactly.
//
//  * Deterministic order. Pop order is a pure function of the element
//    multiset under T::operator> (a total order: the engine's (time, seq)
//    and (time, klass, a, b) keys never tie), so bucket geometry, resizes
//    and the rung are invisible to the simulation — the binary heap and
//    the calendar pop identical sequences, which is what the bit-identity
//    suite checks.
//
// The bucket array doubles when occupancy outgrows it (and halves when it
// empties out), re-tuning the day width to the observed inter-event gap;
// resizes are counted and exported as sim.calendar_resizes.
//
// EventQueue<T> is the engine-facing facade: it picks the calendar or the
// seed's binary heap (the reference oracle) once at construction, from
// ARGO_SLOW_PATHS (sim/slowpath.hpp).
//
// T requirements: a `Time when` member and a total-order operator> ("later
// than"), both cheap to evaluate; moves must preserve `when`.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "sim/slowpath.hpp"
#include "sim/time.hpp"

namespace argosim {

template <class T>
class CalQueue {
 public:
  CalQueue() : buckets_(kMinBuckets) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  /// Bucket-array rebuilds performed (growth, shrink, width re-tuning).
  std::uint64_t resizes() const { return resizes_; }

  void push(T e) {
    const Time w = e.when;
    if (rung_end_ != 0 && w < rung_end_) {
      // Lands in the day currently being drained: insert sorted, at or
      // after the drain cursor (everything before it is already popped).
      auto pos = std::lower_bound(rung_.begin() + static_cast<std::ptrdiff_t>(head_),
                                  rung_.end(), e, less);
      rung_.insert(pos, std::move(e));
    } else {
      if (size_ == rung_live() || w < low_) low_ = w;
      buckets_[bucket_of(w)].push_back(std::move(e));
      if (size_ + 1 > buckets_.size() * 2 && buckets_.size() < kMaxBuckets)
        rebuild(buckets_.size() * 2);
    }
    ++size_;
  }

  /// The smallest element under operator>. Valid until the next mutation.
  const T& top() {
    find_min();
    return rung_[head_];
  }

  void pop() {
    find_min();
    ++head_;
    --size_;
    if (size_ * 8 < buckets_.size() && buckets_.size() > kMinBuckets)
      rebuild(buckets_.size() / 2);
  }

  /// Remove every element for which `stale` holds; returns the count.
  template <class Pred>
  std::size_t purge(Pred stale) {
    std::size_t removed = 0;
    auto sweep = [&](std::vector<T>& v, std::size_t from) {
      auto it = std::remove_if(v.begin() + static_cast<std::ptrdiff_t>(from),
                               v.end(), stale);
      removed += static_cast<std::size_t>(v.end() - it);
      v.erase(it, v.end());
    };
    // Drop the rung's already-popped prefix, then filter what remains (the
    // survivors stay sorted, so the cursor just resets to the front).
    rung_.erase(rung_.begin(), rung_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
    sweep(rung_, 0);
    for (auto& b : buckets_) sweep(b, 0);
    size_ -= removed;
    return removed;
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 14;
  static constexpr unsigned kInitShift = 10;  // 1 us days

  static bool less(const T& a, const T& b) { return b > a; }

  std::size_t rung_live() const { return rung_.size() - head_; }

  std::size_t bucket_of(Time w) const {
    return static_cast<std::size_t>(w >> shift_) & (buckets_.size() - 1);
  }

  // First time past day `d`, saturating instead of wrapping.
  std::uint64_t day_end(std::uint64_t d) const {
    if (d + 1 > (std::numeric_limits<std::uint64_t>::max() >> shift_))
      return std::numeric_limits<std::uint64_t>::max();
    return (d + 1) << shift_;
  }

  // Move every element of day `d` from its bucket into the rung.
  void extract_day(std::uint64_t d) {
    std::vector<T>& b = buckets_[static_cast<std::size_t>(d) & (buckets_.size() - 1)];
    for (std::size_t i = 0; i < b.size();) {
      if ((b[i].when >> shift_) == d) {
        rung_.push_back(std::move(b[i]));
        if (i + 1 != b.size()) b[i] = std::move(b.back());
        b.pop_back();
      } else {
        ++i;
      }
    }
  }

  void load_day(std::uint64_t d) {
    extract_day(d);
    std::sort(rung_.begin(), rung_.end(), less);
    rung_end_ = day_end(d);
    low_ = static_cast<Time>(d) << shift_;
  }

  // Ensure rung_[head_] is the global minimum.
  void find_min() {
    assert(size_ > 0);
    if (head_ < rung_.size()) return;  // rung still draining: sorted min
    rung_.clear();
    head_ = 0;
    if (rung_end_ != 0) {
      low_ = rung_end_;  // the loaded day is exhausted
      rung_end_ = 0;
    }
    std::uint64_t day = low_ >> shift_;
    for (std::size_t n = 0; n < buckets_.size(); ++n, ++day) {
      const std::vector<T>& b = buckets_[static_cast<std::size_t>(day) & (buckets_.size() - 1)];
      if (b.empty()) continue;
      bool any = false;
      for (const T& e : b)
        if ((e.when >> shift_) == day) {
          any = true;
          break;
        }
      if (any) {
        load_day(day);
        return;
      }
    }
    // Nothing within one calendar year of the watermark (a long quiet
    // stretch, e.g. only timeout sentinels remain): direct scan for the
    // earliest populated day. O(n), self-correcting via the watermark.
    std::uint64_t best_day = 0;
    bool found = false;
    for (const auto& b : buckets_)
      for (const T& e : b) {
        const std::uint64_t d = e.when >> shift_;
        if (!found || d < best_day) {
          best_day = d;
          found = true;
        }
      }
    assert(found && "size_ > 0 but no bucket element");
    load_day(best_day);
  }

  // Re-tune the day width to the observed inter-event gaps and rehash the
  // buckets. The rung is untouched: its elements stay ahead of the
  // watermark and drain before any bucket is consulted again.
  void rebuild(std::size_t nbuckets) {
    ++resizes_;
    retune_shift();
    std::vector<std::vector<T>> old;
    old.swap(buckets_);
    buckets_.resize(nbuckets);
    for (auto& b : old)
      for (auto& e : b) buckets_[bucket_of(e.when)].push_back(std::move(e));
  }

  void retune_shift() {
    // Sample up to 64 pending times; aim the day width at twice the mean
    // adjacent gap, so a day holds a couple of events.
    Time sample[64];
    std::size_t n = 0;
    for (const auto& b : buckets_) {
      for (const T& e : b) {
        if (n == 64) break;
        sample[n++] = e.when;
      }
      if (n == 64) break;
    }
    if (n < 2) return;
    std::sort(sample, sample + n);
    std::uint64_t span = sample[n - 1] - sample[0];
    if (span == 0) return;
    const std::uint64_t gap = std::max<std::uint64_t>(1, span / (n - 1));
    unsigned s = static_cast<unsigned>(std::bit_width(2 * gap)) - 1;
    shift_ = std::min(s, 40u);
  }

  std::vector<std::vector<T>> buckets_;  // power-of-two count
  std::vector<T> rung_;  // current day, sorted ascending, drained by head_
  std::size_t head_ = 0;
  unsigned shift_ = kInitShift;
  std::size_t size_ = 0;       // rung (live part) + buckets
  Time low_ = 0;               // no bucket element is earlier than this
  std::uint64_t rung_end_ = 0;  // first time past the loaded day; 0 = none
  std::uint64_t resizes_ = 0;
};

/// Engine-facing event queue: the calendar under the host fast paths, the
/// seed's binary heap as the ARGO_SLOW_PATHS reference oracle. The backend
/// is fixed at construction — an Engine's queues live exactly as long as
/// the engine, and the toggle is read at engine construction time.
template <class T>
class EventQueue {
 public:
  EventQueue() : cal_enabled_(!slow_paths()) {}

  bool calendar() const { return cal_enabled_; }
  bool empty() const { return cal_enabled_ ? cal_.empty() : heap_.empty(); }
  std::size_t size() const { return cal_enabled_ ? cal_.size() : heap_.size(); }
  std::uint64_t resizes() const { return cal_enabled_ ? cal_.resizes() : 0; }

  void push(T e) {
    if (cal_enabled_)
      cal_.push(std::move(e));
    else
      heap_.push(std::move(e));
  }

  const T& top() { return cal_enabled_ ? cal_.top() : heap_.top(); }

  void pop() {
    if (cal_enabled_)
      cal_.pop();
    else
      heap_.pop();
  }

  /// Remove every element for which `stale` holds; returns the count.
  template <class Pred>
  std::size_t compact(Pred stale) {
    if (cal_enabled_) return cal_.purge(stale);
    auto& c = heap_.container();
    const std::size_t before = c.size();
    c.erase(std::remove_if(c.begin(), c.end(), stale), c.end());
    std::make_heap(c.begin(), c.end(), std::greater<>{});
    return before - c.size();
  }

 private:
  // The seed implementation: a std::priority_queue exposing its container
  // so compaction can remove stale entries in place and re-heapify.
  struct Heap : std::priority_queue<T, std::vector<T>, std::greater<>> {
    std::vector<T>& container() { return this->c; }
  };

  bool cal_enabled_;
  CalQueue<T> cal_;
  Heap heap_;
};

}  // namespace argosim
