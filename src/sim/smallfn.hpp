// SmallFn: a move-only callable with inline storage, for the engine's and
// interconnect's hot-path closures (Effect bodies, posted-verb effects).
//
// std::function heap-allocates any capture beyond ~16 bytes, and the
// simulator builds several such closures per remote operation — a steady
// malloc/free drumbeat on paths that otherwise touch no allocator. SmallFn
// embeds the callable in the object itself whenever it fits (and is
// nothrow-movable), falling back to the heap only for oversized captures.
// Inline constructions and heap spills are counted process-wide and
// exported as sim.effect_pool_hits / sim.effect_pool_misses, so a capture
// quietly outgrowing its slot shows up in the metrics instead of silently
// reintroducing the allocations.
//
// Only what the engine needs: move construction/assignment, operator(),
// bool conversion. No copies (captures own payload buffers), no target
// type recovery. Moves relocate the inline callable, so T must be
// nothrow-move-constructible to live inline — anything else spills.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace argosim {

namespace smallfn_detail {
inline std::atomic<std::uint64_t> g_inline_hits{0};
inline std::atomic<std::uint64_t> g_heap_spills{0};
}  // namespace smallfn_detail

/// Closures that fit their SmallFn's inline slot (no allocation).
inline std::uint64_t smallfn_inline_hits() {
  return smallfn_detail::g_inline_hits.load(std::memory_order_relaxed);
}
/// Closures that spilled to the heap (capture too large or throwing move).
inline std::uint64_t smallfn_heap_spills() {
  return smallfn_detail::g_heap_spills.load(std::memory_order_relaxed);
}

template <class Sig, std::size_t N = 64>
class SmallFn;

template <class R, class... Args, std::size_t N>
class SmallFn<R(Args...), N> {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT: match std::function's nullptr init

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT: implicit, like std::function
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
      smallfn_detail::g_inline_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
      smallfn_detail::g_heap_spills.fetch_add(1, std::memory_order_relaxed);
    }
  }

  SmallFn(SmallFn&& o) noexcept { take(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      take(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  // move into dst, destroy src
    void (*destroy)(void*);
  };

  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= N && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <class D>
  static constexpr Ops kInlineOps = {
      [](void* p, Args&&... a) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(a)...);
      },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <class D>
  static constexpr Ops kHeapOps = {
      [](void* p, Args&&... a) -> R {
        return (**static_cast<D**>(p))(std::forward<Args>(a)...);
      },
      [](void* dst, void* src) {
        *static_cast<D**>(dst) = *static_cast<D**>(src);
      },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void take(SmallFn& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[N];
  const Ops* ops_ = nullptr;
};

}  // namespace argosim
