// Virtual time for the cluster simulator.
//
// All performance numbers produced by this repository are measured on a
// deterministic virtual clock, counted in nanoseconds. The clock only
// advances when simulated threads explicitly spend time (compute charges,
// network transfers, handler dispatch); pure bookkeeping is free.
#pragma once

#include <cstdint>

namespace argosim {

/// Virtual nanoseconds since the start of the simulation.
using Time = std::uint64_t;

/// Convenience literals for cost-model constants.
constexpr Time operator""_ns(unsigned long long v) { return static_cast<Time>(v); }
constexpr Time operator""_us(unsigned long long v) { return static_cast<Time>(v) * 1000; }
constexpr Time operator""_ms(unsigned long long v) { return static_cast<Time>(v) * 1000000; }

/// Convert a virtual duration to (floating point) microseconds / seconds.
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_s(Time t) { return static_cast<double>(t) / 1e9; }

}  // namespace argosim
