#include "sim/engine.hpp"

#include <ucontext.h>

#include "sim/slowpath.hpp"

#include <cassert>
#include <exception>
#include <sstream>

// AddressSanitizer needs to be told about stack switches, otherwise its
// stack bookkeeping (fake stacks, use-after-return detection) corrupts as
// fibers swap. Each swapcontext call site is bracketed with the
// start/finish pair; the annotations compile away in normal builds.
#if defined(__SANITIZE_ADDRESS__)
#define ARGO_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ARGO_ASAN_FIBERS 1
#endif
#endif
#if defined(ARGO_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace argosim {

namespace {

thread_local Engine* g_engine = nullptr;
thread_local SimThread* g_thread = nullptr;

// The context the scheduler loop runs in. One engine is active per OS thread
// at a time, so a thread_local slot is sufficient.
thread_local ucontext_t g_sched_ctx;

// makecontext() only passes ints; smuggle the SimThread* through two halves.
void pack_ptr(SimThread* t, unsigned& hi, unsigned& lo) {
  auto p = reinterpret_cast<std::uintptr_t>(t);
  hi = static_cast<unsigned>(p >> 32);
  lo = static_cast<unsigned>(p & 0xffffffffu);
}

SimThread* unpack_ptr(unsigned hi, unsigned lo) {
  auto p = (static_cast<std::uintptr_t>(hi) << 32) | lo;
  return reinterpret_cast<SimThread*>(p);
}

#if defined(ARGO_ASAN_FIBERS)
// Bounds of the scheduler's (OS thread's) stack, learned from ASan the
// first time a fiber runs; needed to annotate fiber -> scheduler switches.
thread_local const void* g_sched_stack_bottom = nullptr;
thread_local std::size_t g_sched_stack_size = 0;
#endif

}  // namespace

struct SimThread::Impl {
  ucontext_t ctx{};
  std::unique_ptr<char[]> stack;
  std::size_t stack_size = 0;
  bool started = false;
  std::exception_ptr error;
};

SimThread::SimThread(Engine* eng, std::uint64_t id, std::string name,
                     std::function<void()> body,
                     std::unique_ptr<char[]> stack, std::size_t stack_size,
                     bool daemon)
    : impl_(std::make_unique<Impl>()),
      engine_(eng),
      id_(id),
      name_(std::move(name)),
      body_(std::move(body)),
      daemon_(daemon) {
  impl_->stack_size = stack_size;
  impl_->stack = std::move(stack);
}

SimThread::~SimThread() = default;

Engine::Engine() = default;

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  // Unwind any fibers that are still alive (typically daemon message
  // handlers) so their stacks and captures are destroyed properly.
  for (auto& t : threads_) {
    if (!t->finished_) {
      t->stop_requested_ = true;
      if (t->blocked_) {
        t->blocked_ = false;
        make_runnable(t.get(), now_);
      }
    }
  }
  while (!runq_.empty()) {
    QueueEntry e = runq_.top();
    runq_.pop();
    if (e.thread->finished_ || e.token != e.thread->wake_token_) continue;
    now_ = std::max(now_, e.when);
    try {
      switch_to(e.thread);
    } catch (...) {
      // Destructor must not throw; errors during shutdown are dropped.
    }
  }
}

Engine* Engine::current() { return g_engine; }
SimThread* Engine::current_thread() { return g_thread; }

SimThread* Engine::spawn(std::string name, std::function<void()> body,
                         bool daemon, std::size_t stack_size) {
  std::unique_ptr<char[]> stack;
#if !defined(ARGO_ASAN_FIBERS)
  // Recycle a finished fiber's stack rather than freeing and re-mapping
  // one per spawn. Only default-size stacks are pooled (odd sizes are rare
  // enough not to matter). ASan builds always allocate fresh: its shadow
  // poisoning from a dead fiber's frames may outlive the fiber.
  if (!slow_paths() && stack_size == default_stack_size &&
      !stack_pool_.empty()) {
    stack = std::move(stack_pool_.back());
    stack_pool_.pop_back();
    ++stacks_reused_;
  }
#endif
  if (!stack) stack = std::make_unique<char[]>(stack_size);
  auto t = std::unique_ptr<SimThread>(
      new SimThread(this, next_id_++, std::move(name), std::move(body),
                    std::move(stack), stack_size, daemon));
  SimThread* raw = t.get();
  threads_.push_back(std::move(t));
  ++spawned_;
  if (daemon)
    ++live_daemon_;
  else
    ++live_nondaemon_;
  make_runnable(raw, now_);
  return raw;
}

void Engine::make_runnable(SimThread* t, Time when) {
  assert(!t->finished_);
  // Bumping the wake token invalidates any entry already queued for this
  // thread (e.g. the timeout entry of a timed wait that got notified first).
  runq_.push(QueueEntry{when, next_seq_++, t, ++t->wake_token_});
}

void Engine::fiber_main(unsigned hi, unsigned lo) {
  SimThread* t = unpack_ptr(hi, lo);
#if defined(ARGO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(nullptr, &g_sched_stack_bottom,
                                  &g_sched_stack_size);
#endif
  try {
    if (t->stop_requested_) throw SimStopped{};
    t->body_();
  } catch (const SimStopped&) {
    // clean shutdown of a parked fiber
  } catch (...) {
    t->impl_->error = std::current_exception();
  }
  t->finished_ = true;
  t->body_ = nullptr;
  // Hand control back to the scheduler loop for good.
#if defined(ARGO_ASAN_FIBERS)
  // nullptr fake-stack slot: this fiber is exiting, release its fake stack.
  __sanitizer_start_switch_fiber(nullptr, g_sched_stack_bottom,
                                 g_sched_stack_size);
#endif
  swapcontext(&t->impl_->ctx, &g_sched_ctx);
}

void Engine::switch_to(SimThread* t) {
  Engine* prev_engine = g_engine;
  SimThread* prev_thread = g_thread;
  g_engine = this;
  g_thread = t;
  running_ = t;

  if (!t->impl_->started) {
    t->impl_->started = true;
    getcontext(&t->impl_->ctx);
    t->impl_->ctx.uc_stack.ss_sp = t->impl_->stack.get();
    t->impl_->ctx.uc_stack.ss_size = t->impl_->stack_size;
    t->impl_->ctx.uc_link = &g_sched_ctx;
    unsigned hi, lo;
    pack_ptr(t, hi, lo);
    makecontext(&t->impl_->ctx,
                reinterpret_cast<void (*)()>(&Engine::fiber_main), 2, hi, lo);
  }
#if defined(ARGO_ASAN_FIBERS)
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&fake_stack, t->impl_->stack.get(),
                                 t->impl_->stack_size);
#endif
  swapcontext(&g_sched_ctx, &t->impl_->ctx);
#if defined(ARGO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack, nullptr, nullptr);
#endif

  running_ = nullptr;
  g_engine = prev_engine;
  g_thread = prev_thread;

  if (t->finished_) reap_finished_one(t);
}

void Engine::reap_finished_one(SimThread* t) {
#if !defined(ARGO_ASAN_FIBERS)
  // The fiber has swapped back to the scheduler for good — its stack is
  // dead and can serve the next spawn.
  if (!slow_paths() && t->impl_->stack_size == default_stack_size &&
      t->impl_->stack)
    stack_pool_.push_back(std::move(t->impl_->stack));
#endif
  if (t->daemon_)
    --live_daemon_;
  else
    --live_nondaemon_;
  if (t->impl_->error) {
    std::exception_ptr err = t->impl_->error;
    t->impl_->error = nullptr;
    std::rethrow_exception(err);
  }
}

void Engine::switch_to_scheduler() {
  SimThread* self = g_thread;
  assert(self && "must be called from inside a simulated thread");
#if defined(ARGO_ASAN_FIBERS)
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&fake_stack, g_sched_stack_bottom,
                                 g_sched_stack_size);
#endif
  swapcontext(&self->impl_->ctx, &g_sched_ctx);
#if defined(ARGO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack, &g_sched_stack_bottom,
                                  &g_sched_stack_size);
#endif
  if (self->stop_requested_) throw SimStopped{};
}

void Engine::delay(Time ns) {
  SimThread* self = g_thread;
  assert(self && "delay() outside a simulated thread");
  const Time when = now_ + ns;
  // Same-fiber fast-forward: if no other runnable fiber is due strictly
  // before `when`, the scheduler would pop our own entry next and hand
  // control straight back — so advance the clock in place and keep
  // running, skipping the two swapcontext calls (and their sigprocmask
  // syscalls). Ties go to the queued entry: our entry would carry the
  // larger seq, which preserves the round-robin fairness of yield().
  // A stopping fiber must reach switch_to_scheduler to unwind (SimStopped).
  if (!slow_paths() && !self->stop_requested_) {
    while (!runq_.empty()) {
      const QueueEntry& top = runq_.top();
      if (top.thread->finished_ || top.token != top.thread->wake_token_) {
        runq_.pop();  // stale: the scheduler loop would discard it anyway
        continue;
      }
      break;
    }
    if (runq_.empty() || when < runq_.top().when) {
      // A running fiber never has a live run-queue entry (make_runnable
      // invalidates prior ones and the scheduler consumed the one that
      // resumed us), so skipping the push/pop leaves no state behind.
      now_ = when;
      ++fast_forwards_;
      return;
    }
  }
  make_runnable(self, when);
  switch_to_scheduler();
}

void Engine::kill(SimThread* t) {
  if (t == nullptr || t->finished_) return;
  assert(t != running_ && "a fiber must not kill itself");
  t->stop_requested_ = true;
  // Wake it immediately wherever it is parked (WaitQueue, timed wait, or a
  // future run-queue entry — the token bump invalidates stale entries):
  // switch_to_scheduler() throws SimStopped right after resumption, before
  // any primitive logic can act on the spurious wakeup.
  t->blocked_ = false;
  make_runnable(t, now_);
}

void Engine::run() {
  assert(!in_run_ && "Engine::run() is not reentrant");
  in_run_ = true;
  while (live_nondaemon_ > 0) {
    if (runq_.empty()) {
      std::ostringstream os;
      os << "simulation deadlock at t=" << now_ << "ns; blocked threads:";
      for (auto& t : threads_)
        if (!t->finished_ && t->blocked_) os << ' ' << t->name_;
      in_run_ = false;
      throw SimDeadlock(os.str());
    }
    QueueEntry e = runq_.top();
    runq_.pop();
    if (e.thread->finished_ || e.token != e.thread->wake_token_) continue;
    assert(e.when >= now_);
    now_ = e.when;
    try {
      switch_to(e.thread);
    } catch (...) {
      in_run_ = false;
      throw;
    }
  }
  in_run_ = false;
}

}  // namespace argosim
