#include "sim/engine.hpp"

#include <ucontext.h>

#include "sim/slowpath.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <limits>
#include <sstream>

// AddressSanitizer needs to be told about stack switches, otherwise its
// stack bookkeeping (fake stacks, use-after-return detection) corrupts as
// fibers swap. Each swapcontext call site is bracketed with the
// start/finish pair; the annotations compile away in normal builds.
#if defined(__SANITIZE_ADDRESS__)
#define ARGO_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ARGO_ASAN_FIBERS 1
#endif
#endif
#if defined(ARGO_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer likewise needs to be told about fiber switches: it keeps
// one shadow stack + vector clock per execution context, so every
// swapcontext must be preceded by __tsan_switch_to_fiber or TSan reports
// wild races between fibers that share an OS thread (ARGO_TSAN builds).
#if defined(__SANITIZE_THREAD__)
#define ARGO_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ARGO_TSAN_FIBERS 1
#endif
#endif
#if defined(ARGO_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

#include "sim/fcontext.hpp"

// The hand-rolled assembly switch (sim/fcontext.S) is the fast path on
// supported architectures. Sanitizer builds keep ucontext: ASan and TSan
// track fiber stacks through the annotations bracketing swapcontext, and
// neither understands a stack pointer that moves without them. At runtime
// ARGO_SLOW_PATHS=1 also pins new fibers to ucontext (the seed reference),
// which is how the bit-identity suite gets a syscall-path oracle.
#if defined(ARGO_FCONTEXT_SUPPORTED) && !defined(ARGO_ASAN_FIBERS) && \
    !defined(ARGO_TSAN_FIBERS)
#define ARGO_USE_FCONTEXT 1
#endif

namespace argosim {

namespace {

thread_local Engine* g_engine = nullptr;
thread_local SimThread* g_thread = nullptr;

// The context the scheduler loop runs in. Each host worker owns its own
// scheduler context, so a thread_local slot is sufficient — and static
// shard-to-worker pinning guarantees a fiber only ever swaps with the one
// scheduler context it started against.
thread_local ucontext_t g_sched_ctx;

constexpr std::uint32_t kNoShard = 0xffffffffu;
thread_local std::uint32_t g_shard_idx = kNoShard;

#if defined(ARGO_USE_FCONTEXT)
// The suspended scheduler context while an fcontext fiber runs. Handles
// are one-shot (every jump re-captures the jumper), so both sides refresh
// this slot on each switch. One slot per host worker suffices for the same
// reason as g_sched_ctx: exactly one fiber runs per worker, and shard
// pinning keeps a fiber on the worker it started on.
thread_local fctx_t g_sched_fctx = nullptr;
#endif

inline void cpu_pause() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// makecontext() only passes ints; smuggle the SimThread* through two halves.
void pack_ptr(SimThread* t, unsigned& hi, unsigned& lo) {
  auto p = reinterpret_cast<std::uintptr_t>(t);
  hi = static_cast<unsigned>(p >> 32);
  lo = static_cast<unsigned>(p & 0xffffffffu);
}

SimThread* unpack_ptr(unsigned hi, unsigned lo) {
  auto p = (static_cast<std::uintptr_t>(hi) << 32) | lo;
  return reinterpret_cast<SimThread*>(p);
}

#if defined(ARGO_ASAN_FIBERS)
// Bounds of the scheduler's (OS thread's) stack, learned from ASan the
// first time a fiber runs; needed to annotate fiber -> scheduler switches.
thread_local const void* g_sched_stack_bottom = nullptr;
thread_local std::size_t g_sched_stack_size = 0;
#endif

#if defined(ARGO_TSAN_FIBERS)
// TSan context of the scheduler loop's own execution (one per host
// worker, captured on each scheduler -> fiber switch); fibers switch TSan
// back to it before swapping out. Shard-to-worker pinning guarantees a
// fiber always returns to the same worker's scheduler.
thread_local void* g_tsan_sched_fiber = nullptr;
#endif

}  // namespace

struct SimThread::Impl {
  ucontext_t ctx{};
  std::unique_ptr<char[]> stack;
  std::size_t stack_size = 0;
  bool started = false;
  // fcontext backend (engine fast path): the fiber's suspended context.
  // The backend is fixed at first start — a fiber begun on one switch
  // mechanism must keep using it for life, so flipping ARGO_SLOW_PATHS
  // mid-run only affects fibers started afterwards.
  void* fctx = nullptr;
  bool use_fctx = false;
  std::exception_ptr error;
#if defined(ARGO_TSAN_FIBERS)
  void* tsan_fiber = nullptr;
  ~Impl() {
    if (tsan_fiber != nullptr) __tsan_destroy_fiber(tsan_fiber);
  }
#endif
};

SimThread::SimThread(Engine* eng, std::uint64_t id, std::string name,
                     std::function<void()> body,
                     std::unique_ptr<char[]> stack, std::size_t stack_size,
                     bool daemon)
    : impl_(std::make_unique<Impl>()),
      engine_(eng),
      id_(id),
      name_(std::move(name)),
      body_(std::move(body)),
      daemon_(daemon) {
  impl_->stack_size = stack_size;
  impl_->stack = std::move(stack);
}

SimThread::~SimThread() = default;

Engine::Engine() = default;

Engine::~Engine() { shutdown(); }

Time Engine::now() const {
  if (sharded_ && g_engine == this && g_shard_idx != kNoShard)
    return shards_[g_shard_idx]->clock;
  return now_;
}

std::uint32_t Engine::current_shard() { return g_shard_idx; }

void Engine::enable_sharding(std::uint32_t shards, Time l,
                             std::uint32_t workers) {
  assert(threads_.empty() && "enable_sharding must precede any spawn");
  assert(shards > 0);
  sharded_ = true;
  lookahead_ = l > 0 ? l : 1;
  if (workers < 1) workers = 1;
  workers_ = std::min<std::uint32_t>(workers, shards);
  shards_.clear();
  for (std::uint32_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->clock = now_;
  }
}

void Engine::require_serial(const char* why) const {
  if (!sharded_) return;
  throw std::logic_error(
      std::string("argosim: ") + why +
      " needs same-time cross-shard wakeups and cannot run on the sharded "
      "engine; unset ARGO_THREADS/ARGO_SEQ_ENGINE for this workload");
}

void Engine::shutdown() {
  // Unwind any fibers that are still alive (typically daemon message
  // handlers) so their stacks and captures are destroyed properly.
  for (auto& t : threads_) {
    if (!t->finished_) {
      t->stop_requested_ = true;
      if (t->blocked_) {
        t->blocked_ = false;
        make_runnable(t.get(),
                      sharded_ ? shards_[t->shard_]->clock : now_);
      }
    }
  }
  if (sharded_) {
    window_end_.store(std::numeric_limits<Time>::max(),
                      std::memory_order_relaxed);
    route_outboxes();
    // Drain every shard on the main thread, multiple passes until no
    // progress (a shard can stall on an effect a later shard still holds).
    bool progressed = true;
    bool pending = true;
    while (pending && progressed) {
      pending = false;
      progressed = false;
      for (std::uint32_t i = 0; i < shards_.size(); ++i) {
        g_shard_idx = i;
        if (!shard_step(*shards_[i], std::numeric_limits<Time>::max(),
                        progressed))
          pending = true;
        shards_[i]->error = nullptr;  // errors during shutdown are dropped
      }
      g_shard_idx = kNoShard;
      route_outboxes();
    }
    stop_pool();
    return;
  }
  while (!runq_.empty()) {
    QueueEntry e = runq_.top();
    runq_.pop();
    if (e.thread->finished_ || e.token != e.thread->wake_token_) {
      if (runq_dead_ > 0) --runq_dead_;
      continue;
    }
    e.thread->queued_ = false;
    now_ = std::max(now_, e.when);
    try {
      switch_to(e.thread);
    } catch (...) {
      // Destructor must not throw; errors during shutdown are dropped.
    }
  }
}

Engine* Engine::current() { return g_engine; }
SimThread* Engine::current_thread() { return g_thread; }

SimThread* Engine::spawn(std::string name, std::function<void()> body,
                         bool daemon, std::size_t stack_size) {
  std::uint32_t shard = 0;
  if (sharded_ && g_thread != nullptr && g_thread->engine_ == this)
    shard = g_thread->shard_;  // inherit the spawner's shard
  return spawn_on(shard, std::move(name), std::move(body), daemon,
                  stack_size);
}

SimThread* Engine::spawn_on(std::uint32_t shard, std::string name,
                            std::function<void()> body, bool daemon,
                            std::size_t stack_size) {
  if (sharded_ && in_window_)
    throw std::logic_error(
        "argosim: spawn during a parallel window is not supported; spawn "
        "between runs instead");
  std::unique_ptr<char[]> stack;
#if !defined(ARGO_ASAN_FIBERS)
  // Recycle a finished fiber's stack rather than freeing and re-mapping
  // one per spawn. Only default-size stacks are pooled (odd sizes are rare
  // enough not to matter). ASan builds always allocate fresh: its shadow
  // poisoning from a dead fiber's frames may outlive the fiber. Sharded
  // runs reap on worker threads, so the pool stays off there too.
  if (!slow_paths() && !sharded_ && stack_size == default_stack_size &&
      !stack_pool_.empty()) {
    stack = std::move(stack_pool_.back());
    stack_pool_.pop_back();
    ++stacks_reused_;
  }
#endif
  if (!stack) stack = std::make_unique<char[]>(stack_size);
  auto t = std::unique_ptr<SimThread>(
      new SimThread(this, next_id_++, std::move(name), std::move(body),
                    std::move(stack), stack_size, daemon));
  SimThread* raw = t.get();
  if (sharded_) {
    assert(shard < shards_.size());
    raw->shard_ = shard;
  }
  threads_.push_back(std::move(t));
  ++spawned_;
  if (daemon)
    live_daemon_.fetch_add(1, std::memory_order_relaxed);
  else
    live_nondaemon_.fetch_add(1, std::memory_order_relaxed);
  // Between sharded runs a shard's clock may sit ahead of the committed
  // global clock (daemon events inside the final lookahead window); keep
  // per-shard time monotone by spawning no earlier than the shard clock.
  Time when = now_;
  if (sharded_ && shards_[shard]->clock > when) when = shards_[shard]->clock;
  make_runnable(raw, when);
  return raw;
}

void Engine::push_entry(EventQueue<QueueEntry>& q, std::size_t& dead,
                        QueueEntry e) {
  // A fiber has at most one live entry: pushing a new one stales any
  // previous entry (its token no longer matches).
  if (e.thread->queued_) ++dead;
  e.thread->queued_ = true;
  q.push(e);
  if (dead > q.size() / 2 && q.size() > 64) compact(q, dead);
}

void Engine::compact(EventQueue<QueueEntry>& q, std::size_t& dead) {
  const std::size_t removed = q.compact([](const QueueEntry& e) {
    return e.thread->finished_ || e.token != e.thread->wake_token_;
  });
  runq_purged_.fetch_add(removed, std::memory_order_relaxed);
  dead = 0;
}

void Engine::make_runnable(SimThread* t, Time when) {
  assert(!t->finished_);
  if (sharded_) {
    if (in_window_ && g_shard_idx != t->shard_)
      throw std::logic_error(
          "argosim: same-time cross-shard wakeup of fiber '" + t->name_ +
          "' is not supported by the sharded engine; route it through the "
          "interconnect or run without ARGO_THREADS/ARGO_SEQ_ENGINE");
    Shard& s = *shards_[t->shard_];
    ++s.pushes;
    push_entry(s.runq, s.dead,
               QueueEntry{when, s.next_seq++, t, ++t->wake_token_});
    return;
  }
  // Bumping the wake token invalidates any entry already queued for this
  // thread (e.g. the timeout entry of a timed wait that got notified first).
  ++runq_pushes_;
  push_entry(runq_, runq_dead_,
             QueueEntry{when, next_seq_++, t, ++t->wake_token_});
}

void Engine::fiber_main(unsigned hi, unsigned lo) {
  SimThread* t = unpack_ptr(hi, lo);
#if defined(ARGO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(nullptr, &g_sched_stack_bottom,
                                  &g_sched_stack_size);
#endif
  try {
    if (t->stop_requested_) throw SimStopped{};
    t->body_();
  } catch (const SimStopped&) {
    // clean shutdown of a parked fiber
  } catch (...) {
    t->impl_->error = std::current_exception();
  }
  t->finished_ = true;
  t->body_ = nullptr;
  // Hand control back to the scheduler loop for good.
#if defined(ARGO_ASAN_FIBERS)
  // nullptr fake-stack slot: this fiber is exiting, release its fake stack.
  __sanitizer_start_switch_fiber(nullptr, g_sched_stack_bottom,
                                 g_sched_stack_size);
#endif
#if defined(ARGO_TSAN_FIBERS)
  __tsan_switch_to_fiber(g_tsan_sched_fiber, 0);
#endif
  swapcontext(&t->impl_->ctx, &g_sched_ctx);
}

// fcontext flavor of fiber_main: the first jump into a made context lands
// here with the suspending scheduler as `from`. Exits by jumping to the
// scheduler for good — never returns.
void Engine::fiber_main_fctx(void* from, void* data) {
#if defined(ARGO_USE_FCONTEXT)
  g_sched_fctx = from;
  SimThread* t = static_cast<SimThread*>(data);
  try {
    if (t->stop_requested_) throw SimStopped{};
    t->body_();
  } catch (const SimStopped&) {
    // clean shutdown of a parked fiber
  } catch (...) {
    t->impl_->error = std::current_exception();
  }
  t->finished_ = true;
  t->body_ = nullptr;
  argo_fctx_jump(g_sched_fctx, nullptr);
#else
  (void)from;
  (void)data;
#endif
}

const char* Engine::context_backend() {
#if defined(ARGO_USE_FCONTEXT)
  return slow_paths() ? "ucontext" : "fcontext";
#else
  return "ucontext";
#endif
}

void Engine::switch_to(SimThread* t) {
  Engine* prev_engine = g_engine;
  SimThread* prev_thread = g_thread;
  g_engine = this;
  g_thread = t;
  if (!sharded_) running_ = t;
  if (g_shard_idx != kNoShard)
    ++shards_[g_shard_idx]->switches;
  else
    ++switches_;

  if (!t->impl_->started) {
    t->impl_->started = true;
#if defined(ARGO_USE_FCONTEXT)
    if (!slow_paths()) {
      t->impl_->use_fctx = true;
      t->impl_->fctx =
          argo_fctx_make(t->impl_->stack.get(), t->impl_->stack_size,
                         &Engine::fiber_main_fctx);
    }
#endif
    if (!t->impl_->use_fctx) {
      getcontext(&t->impl_->ctx);
      t->impl_->ctx.uc_stack.ss_sp = t->impl_->stack.get();
      t->impl_->ctx.uc_stack.ss_size = t->impl_->stack_size;
      t->impl_->ctx.uc_link = &g_sched_ctx;
      unsigned hi, lo;
      pack_ptr(t, hi, lo);
      makecontext(&t->impl_->ctx,
                  reinterpret_cast<void (*)()>(&Engine::fiber_main), 2, hi,
                  lo);
    }
  }
#if defined(ARGO_ASAN_FIBERS)
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&fake_stack, t->impl_->stack.get(),
                                 t->impl_->stack_size);
#endif
#if defined(ARGO_TSAN_FIBERS)
  if (t->impl_->tsan_fiber == nullptr)
    t->impl_->tsan_fiber = __tsan_create_fiber(0);
  g_tsan_sched_fiber = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(t->impl_->tsan_fiber, 0);
#endif
#if defined(ARGO_USE_FCONTEXT)
  if (t->impl_->use_fctx) {
    // The jump returns once the fiber suspends (yield or exit); its handle
    // was re-captured by that suspending jump.
    FctxTransfer tr = argo_fctx_jump(t->impl_->fctx, t);
    t->impl_->fctx = tr.fctx;
  } else
#endif
    swapcontext(&g_sched_ctx, &t->impl_->ctx);
#if defined(ARGO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack, nullptr, nullptr);
#endif

  if (!sharded_) running_ = nullptr;
  g_engine = prev_engine;
  g_thread = prev_thread;

  if (t->finished_) reap_finished_one(t);
}

void Engine::reap_finished_one(SimThread* t) {
#if !defined(ARGO_ASAN_FIBERS)
  // The fiber has swapped back to the scheduler for good — its stack is
  // dead and can serve the next spawn (legacy engine only: sharded runs
  // reap on worker threads and the pool is unsynchronized).
  if (!slow_paths() && !sharded_ &&
      t->impl_->stack_size == default_stack_size && t->impl_->stack)
    stack_pool_.push_back(std::move(t->impl_->stack));
#endif
  if (t->daemon_) {
    live_daemon_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    live_nondaemon_.fetch_sub(1, std::memory_order_relaxed);
    if (sharded_) {
      Time fin = shards_[t->shard_]->clock;
      Time cur = finish_max_.load(std::memory_order_relaxed);
      while (fin > cur && !finish_max_.compare_exchange_weak(
                              cur, fin, std::memory_order_relaxed)) {
      }
    }
  }
  if (t->impl_->error) {
    std::exception_ptr err = t->impl_->error;
    t->impl_->error = nullptr;
    std::rethrow_exception(err);
  }
}

void Engine::switch_to_scheduler() {
  SimThread* self = g_thread;
  assert(self && "must be called from inside a simulated thread");
#if defined(ARGO_ASAN_FIBERS)
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&fake_stack, g_sched_stack_bottom,
                                 g_sched_stack_size);
#endif
#if defined(ARGO_TSAN_FIBERS)
  __tsan_switch_to_fiber(g_tsan_sched_fiber, 0);
#endif
#if defined(ARGO_USE_FCONTEXT)
  if (self->impl_->use_fctx) {
    // On resumption the scheduler has just suspended into us again;
    // refresh its handle for the next yield.
    FctxTransfer tr = argo_fctx_jump(g_sched_fctx, nullptr);
    g_sched_fctx = tr.fctx;
  } else
#endif
    swapcontext(&self->impl_->ctx, &g_sched_ctx);
#if defined(ARGO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack, &g_sched_stack_bottom,
                                  &g_sched_stack_size);
#endif
  if (self->stop_requested_) throw SimStopped{};
}

void Engine::delay(Time ns) {
  SimThread* self = g_thread;
  assert(self && "delay() outside a simulated thread");
  if (sharded_) {
    Shard& s = *shards_[self->shard_];
    const Time when = s.clock + ns;
    if (!slow_paths() && !self->stop_requested_) {
      // Same-fiber fast-forward, additionally bounded by the lookahead
      // window: the shard may not run past window_end_ this window, and
      // ties (including a pending effect at `when`) go to the queue.
      Time nxt;
      bool has = next_event_time(s, nxt);
      if ((!has || when < nxt) &&
          when < window_end_.load(std::memory_order_relaxed)) {
        s.clock = when;
        fast_forwards_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    make_runnable(self, when);
    switch_to_scheduler();
    return;
  }
  const Time when = now_ + ns;
  // Same-fiber fast-forward: if no other runnable fiber is due strictly
  // before `when`, the scheduler would pop our own entry next and hand
  // control straight back — so advance the clock in place and keep
  // running, skipping the two swapcontext calls (and their sigprocmask
  // syscalls). Ties go to the queued entry: our entry would carry the
  // larger seq, which preserves the round-robin fairness of yield().
  // A stopping fiber must reach switch_to_scheduler to unwind (SimStopped).
  if (!slow_paths() && !self->stop_requested_) {
    while (!runq_.empty()) {
      const QueueEntry& top = runq_.top();
      if (top.thread->finished_ || top.token != top.thread->wake_token_) {
        if (runq_dead_ > 0) --runq_dead_;
        runq_.pop();  // stale: the scheduler loop would discard it anyway
        continue;
      }
      break;
    }
    if (runq_.empty() || when < runq_.top().when) {
      // A running fiber never has a live run-queue entry (make_runnable
      // invalidates prior ones and the scheduler consumed the one that
      // resumed us), so skipping the push/pop leaves no state behind.
      now_ = when;
      fast_forwards_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  make_runnable(self, when);
  switch_to_scheduler();
}

void Engine::kill(SimThread* t) {
  if (t == nullptr || t->finished_) return;
  assert(t != running_ && "a fiber must not kill itself");
  t->stop_requested_ = true;
  // Wake it immediately wherever it is parked (WaitQueue, timed wait, or a
  // future run-queue entry — the token bump invalidates stale entries):
  // switch_to_scheduler() throws SimStopped right after resumption, before
  // any primitive logic can act on the spurious wakeup.
  t->blocked_ = false;
  make_runnable(t, sharded_ ? shards_[t->shard_]->clock : now_);
}

void Engine::run() {
  if (sharded_) {
    run_sharded();
    return;
  }
  assert(!in_run_ && "Engine::run() is not reentrant");
  in_run_ = true;
  while (live_nondaemon_.load(std::memory_order_relaxed) > 0) {
    if (runq_.empty()) {
      std::ostringstream os;
      os << "simulation deadlock at t=" << now_ << "ns; blocked threads:";
      for (auto& t : threads_)
        if (!t->finished_ && t->blocked_) os << ' ' << t->name_;
      in_run_ = false;
      throw SimDeadlock(os.str());
    }
    QueueEntry e = runq_.top();
    runq_.pop();
    if (e.thread->finished_ || e.token != e.thread->wake_token_) {
      if (runq_dead_ > 0) --runq_dead_;
      continue;
    }
    e.thread->queued_ = false;
    ++runq_pops_;
    assert(e.when >= now_);
    now_ = e.when;
    try {
      switch_to(e.thread);
    } catch (...) {
      in_run_ = false;
      throw;
    }
  }
  in_run_ = false;
}

// --- sharded mode ---------------------------------------------------------

void Engine::route_outboxes() {
  for (auto& sp : shards_) {
    for (auto& [dst, eff] : sp->outbox)
      shards_[dst]->effq.push(std::move(eff));
    sp->outbox.clear();
  }
}

bool Engine::next_event_time(Shard& s, Time& t) {
  while (!s.runq.empty()) {
    const QueueEntry& top = s.runq.top();
    if (top.thread->finished_ || top.token != top.thread->wake_token_) {
      if (s.dead > 0) --s.dead;
      s.runq.pop();
      continue;
    }
    break;
  }
  bool any = false;
  if (!s.runq.empty()) {
    t = s.runq.top().when;
    any = true;
  }
  if (!s.effq.empty() && (!any || s.effq.top().when < t)) {
    t = s.effq.top().when;
    any = true;
  }
  return any;
}

void Engine::post_effect(std::uint32_t dst, Time when, std::uint32_t klass,
                         std::uint64_t a, std::uint64_t b, EffectFn fn) {
  assert(sharded_);
  assert(dst < shards_.size());
  if (in_window_ && g_shard_idx != kNoShard) {
    Shard& cur = *shards_[g_shard_idx];
    // Conservative-lookahead soundness: anything posted during a window
    // must land at least one lookahead past the poster's clock, i.e. in a
    // strictly later window.
    assert(when >= cur.clock + lookahead_);
    cur.outbox.emplace_back(dst, Effect{when, klass, a, b, std::move(fn)});
    return;
  }
  shards_[dst]->effq.push(Effect{when, klass, a, b, std::move(fn)});
}

void Engine::await(const std::shared_ptr<SimRecord>& rec) {
  if (!sharded_) return;  // legacy engine applies effects inline
  SimThread* self = g_thread;
  assert(self && "await() outside a simulated thread");
  while (!rec->ready()) {
    Shard& s = *shards_[self->shard_];
    s.stalled = self;
    s.stall_rec = rec.get();
    switch_to_scheduler();  // worker revisits once the record completes
  }
}

bool Engine::shard_step(Shard& s, Time w1, bool& progressed) {
  if (s.error) return true;
  if (s.stalled != nullptr) {
    if (!s.stall_rec->ready() && !s.stalled->stop_requested_) return false;
    SimThread* f = s.stalled;
    s.stalled = nullptr;
    s.stall_rec = nullptr;
    progressed = true;
    try {
      switch_to(f);
    } catch (...) {
      s.error = std::current_exception();
      return true;
    }
    if (s.stalled != nullptr) return false;
  }
  while (true) {
    Time t;
    if (!next_event_time(s, t) || t >= w1) return true;
    bool run_effect;
    if (s.effq.empty())
      run_effect = false;
    else if (s.runq.empty() ||
             s.runq.top().thread->finished_ ||  // (heads are fresh, but be safe)
             s.runq.top().token != s.runq.top().thread->wake_token_)
      run_effect = true;
    else
      run_effect = s.effq.top().when <= s.runq.top().when;
    progressed = true;
    if (run_effect) {
      Effect e = std::move(const_cast<Effect&>(s.effq.top()));
      s.effq.pop();
      s.clock = e.when;
      Engine* prev = g_engine;
      g_engine = this;
      try {
        e.fn();
      } catch (...) {
        g_engine = prev;
        s.error = std::current_exception();
        return true;
      }
      g_engine = prev;
    } else {
      QueueEntry e = s.runq.top();
      s.runq.pop();
      e.thread->queued_ = false;
      ++s.pops;
      s.clock = e.when;
      try {
        switch_to(e.thread);
      } catch (...) {
        s.error = std::current_exception();
        return true;
      }
      if (s.stalled != nullptr) return false;
    }
  }
}

void Engine::run_window(std::uint32_t w, Time w1) {
  int idle = 0;
  while (true) {
    bool all = true;
    bool progressed = false;
    for (std::uint32_t s = w; s < shards_.size(); s += workers_) {
      g_shard_idx = s;
      if (!shard_step(*shards_[s], w1, progressed)) all = false;
    }
    g_shard_idx = kNoShard;
    if (all) break;
    if (!progressed) {
      if (workers_ == 1)
        throw std::logic_error(
            "argosim: await() stalled on an effect no shard can deliver");
      // Waiting on another worker's shard: spin briefly for the common
      // case where it is running right now, then hand the core back — on
      // an oversubscribed host the worker that can complete the record
      // may be preempted behind this very spin.
      if (++idle < 64)
        cpu_pause();
      else
        std::this_thread::yield();
    } else {
      idle = 0;
    }
  }
}

void Engine::run_sharded() {
  assert(!in_run_ && "Engine::run() is not reentrant");
  in_run_ = true;
  if (workers_ > 1) start_pool();
  std::exception_ptr err;
  while (live_nondaemon_.load(std::memory_order_relaxed) > 0) {
    route_outboxes();
    Time tmin = 0;
    bool any = false;
    for (auto& sp : shards_) {
      Time t;
      if (!next_event_time(*sp, t)) continue;
      if (!any || t < tmin) {
        tmin = t;
        any = true;
      }
    }
    if (!any) {
      Time dl = now_;
      for (auto& sp : shards_) dl = std::max(dl, sp->clock);
      std::ostringstream os;
      os << "simulation deadlock at t=" << dl << "ns; blocked threads:";
      for (auto& t : threads_)
        if (!t->finished_ && t->blocked_) os << ' ' << t->name_;
      in_run_ = false;
      throw SimDeadlock(os.str());
    }
    const Time w1 = tmin > std::numeric_limits<Time>::max() - lookahead_
                        ? std::numeric_limits<Time>::max()
                        : tmin + lookahead_;
    window_end_.store(w1, std::memory_order_relaxed);
    in_window_ = true;
    if (workers_ > 1) {
      done_count_.store(0, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lk(pool_mu_);
        epoch_.fetch_add(1, std::memory_order_release);
      }
      pool_cv_.notify_all();
      run_window(0, w1);
      // Same spin-then-yield as run_window: windows are short, so the
      // stragglers usually finish within the spin, but when the host has
      // fewer cores than workers they need this one to run at all.
      for (int idle = 0;
           done_count_.load(std::memory_order_acquire) < workers_ - 1;) {
        if (++idle < 256)
          cpu_pause();
        else
          std::this_thread::yield();
      }
    } else {
      run_window(0, w1);
    }
    in_window_ = false;
    for (auto& sp : shards_) {
      if (sp->error) {  // lowest shard id wins (deterministic)
        err = sp->error;
        sp->error = nullptr;
        break;
      }
    }
    if (err) break;
  }
  route_outboxes();
  Time f = finish_max_.load(std::memory_order_relaxed);
  if (f > now_) now_ = f;
  in_run_ = false;
  if (err) std::rethrow_exception(err);
}

void Engine::start_pool() {
  if (!pool_.empty()) return;
  for (std::uint32_t w = 1; w < workers_; ++w)
    pool_.emplace_back([this, w] { worker_loop(w); });
}

void Engine::stop_pool() {
  if (pool_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_exit_.store(true, std::memory_order_release);
  }
  pool_cv_.notify_all();
  for (auto& th : pool_) th.join();
  pool_.clear();
  pool_exit_.store(false, std::memory_order_relaxed);
}

void Engine::worker_loop(std::uint32_t w) {
  std::uint64_t last = 0;
  while (true) {
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == last &&
           !pool_exit_.load(std::memory_order_acquire)) {
      if (++spins < 4096) {
        cpu_pause();
      } else {
        std::unique_lock<std::mutex> lk(pool_mu_);
        pool_cv_.wait(lk, [&] {
          return epoch_.load(std::memory_order_acquire) != last ||
                 pool_exit_.load(std::memory_order_acquire);
        });
      }
    }
    if (pool_exit_.load(std::memory_order_acquire)) break;
    last = epoch_.load(std::memory_order_acquire);
    run_window(w, window_end_.load(std::memory_order_relaxed));
    done_count_.fetch_add(1, std::memory_order_release);
  }
}

// --- SimGate ---------------------------------------------------------------

SimGate::SimGate(Engine* eng, std::size_t parties, Time cost)
    : eng_(eng),
      parties_(parties),
      cost_(std::max(cost, eng->lookahead())),
      id_(eng->next_gate_id_++) {
  assert(eng->sharded() && "SimGate is a sharded-engine primitive");
  waiters_.reserve(parties);
}

void SimGate::arrive_and_wait() {
  SimThread* self = Engine::current_thread();
  assert(self != nullptr);
  Engine* eng = eng_;
  const Time t = eng->now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    waiters_.push_back(self);
    if (t > tmax_) tmax_ = t;
    if (++count_ == parties_) {
      // Release time and wake keys depend only on the arrival *times*, not
      // on which arrival the host happens to schedule last — determinism.
      const Time release = tmax_ + cost_;
      for (SimThread* w : waiters_)
        eng->post_effect(w->shard_, release, /*klass=*/0, id_, w->id_,
                         [eng, w, release] {
                           w->blocked_ = false;
                           eng->make_runnable(w, release);
                         });
      count_ = 0;
      tmax_ = 0;
      waiters_.clear();
    }
  }
  self->blocked_ = true;
  eng->switch_to_scheduler();
}

}  // namespace argosim
