// Deterministic virtual-time execution engine.
//
// The engine cooperatively schedules "simulated threads" (fibers) against a
// single virtual clock. Exactly one fiber runs at any moment, so simulated
// code needs no real synchronization; logical concurrency is modeled by the
// interleaving of fibers at explicit scheduling points (delay/yield/wait).
// Scheduling is fully deterministic: the runnable fiber with the smallest
// (wake time, insertion sequence) pair always runs next, so the same program
// produces bit-identical virtual timings and statistics on every run.
//
// This is the substrate that stands in for the paper's physical cluster:
// nodes, cores, NICs and message handlers are all simulated threads whose
// costs are charged through delay().
//
// Sharded mode (enable_sharding) partitions the simulation into per-node
// event shards, each with its own run queue and local clock, advanced in
// conservative lookahead windows [Tmin, Tmin + L): every shard may execute
// its events with when < Tmin + L independently, because any cross-shard
// interaction carries at least the interconnect's minimum verb latency L
// and therefore lands in a strictly later window. Cross-shard side effects
// travel as timestamped Effect closures executed on the destination shard
// in (when, klass, a, b) key order, before any fiber wake at the same time.
// With one worker this is the sequential reference (ARGO_SEQ_ENGINE=1);
// with N workers the same per-shard schedules run concurrently and remain
// bit-identical because no shard ever observes another shard's intra-window
// progress except through Effects (deterministic keys) and completion
// Records (deterministic values).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/calqueue.hpp"
#include "sim/smallfn.hpp"
#include "sim/smallvec.hpp"
#include "sim/time.hpp"

namespace argosim {

class Engine;
class SimGate;

/// Thrown inside blocked fibers when the engine shuts down (e.g. daemon
/// handler threads still waiting on a channel after all workers finished).
struct SimStopped {};

/// Thrown by Engine::run() when no fiber is runnable but non-daemon fibers
/// are still blocked.
class SimDeadlock : public std::runtime_error {
 public:
  explicit SimDeadlock(const std::string& what) : std::runtime_error(what) {}
};

///// Completion record for a cross-shard operation: the destination shard
/// fills value/bytes and calls complete(); the source fiber await()s it.
/// Held by shared_ptr on both sides so a killed fiber can never leave a
/// dangling reference.
struct SimRecord {
  std::uint64_t value = 0;
  std::vector<std::byte> bytes;
  void complete() { done_.store(true, std::memory_order_release); }
  bool ready() const { return done_.load(std::memory_order_acquire); }
  /// Return the record to its freshly-constructed state (`bytes` keeps its
  /// capacity). Only for pool reuse of a record nobody references anymore.
  void reset() {
    value = 0;
    bytes.clear();
    done_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> done_{false};
};

/// Cross-shard effect body. Inline capacity covers every closure the
/// engine and interconnect post (the largest is a posted verb's remote
/// apply — itself a SmallFn — plus its completion record).
using EffectFn = SmallFn<void(), 96>;

/// A simulated thread. Created via Engine::spawn(); users interact with it
/// through the engine's static current()/delay()/now() interface and the
/// primitives in sim/sync.hpp.
class SimThread {
 public:
  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool daemon() const { return daemon_; }
  bool finished() const { return finished_; }
  /// Shard this fiber is pinned to (0 in the legacy engine).
  std::uint32_t shard() const { return shard_; }
  /// True once Engine::kill() (or shutdown) marked this fiber: it will
  /// unwind at its next scheduling point and can no longer make progress.
  bool stop_requested() const { return stop_requested_; }
  ~SimThread();

 private:
  friend class Engine;
  friend class WaitQueue;
  friend class SimGate;
  SimThread(Engine* eng, std::uint64_t id, std::string name,
            std::function<void()> body, std::unique_ptr<char[]> stack,
            std::size_t stack_size, bool daemon);
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  struct Impl;
  std::unique_ptr<Impl> impl_;
  Engine* engine_;
  std::uint64_t id_;
  std::string name_;
  std::function<void()> body_;
  bool daemon_ = false;
  bool finished_ = false;
  bool blocked_ = false;   // parked on a WaitQueue or SimGate
  bool stop_requested_ = false;
  bool queued_ = false;    // a live (token-matching) run-queue entry exists
  std::uint32_t shard_ = 0;
  std::uint64_t wake_token_ = 0;  // invalidates stale run-queue entries
};

/// The virtual-time scheduler.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a simulated thread, runnable at the current virtual time.
  /// May be called from outside the simulation or from a running fiber.
  /// Daemon fibers do not keep run() alive and are stopped (by a SimStopped
  /// throw at their next scheduling point) when every non-daemon finished.
  SimThread* spawn(std::string name, std::function<void()> body,
                   bool daemon = false, std::size_t stack_size = default_stack_size);

  /// Sharded mode: spawn a fiber pinned to the given shard. Must be called
  /// from outside the simulation (between runs); a fiber's whole life runs
  /// on one host worker, which is what makes ucontext/TLS state safe.
  SimThread* spawn_on(std::uint32_t shard, std::string name,
                      std::function<void()> body, bool daemon = false,
                      std::size_t stack_size = default_stack_size);

  /// Run the simulation until all non-daemon fibers have finished.
  /// Throws SimDeadlock if progress is impossible. May be called repeatedly;
  /// virtual time keeps advancing monotonically across calls.
  void run();

  /// Crash-stop a fiber: it unwinds (via SimStopped) at its next scheduling
  /// point instead of continuing its body — destructors run, so held NIC
  /// locks and RAII guards release cleanly. Parked fibers are made runnable
  /// now so the unwind is immediate. Killing a finished fiber is a no-op;
  /// a fiber must not kill itself (return and unwind instead).
  void kill(SimThread* t);

  /// Unwind every fiber that is still alive (typically daemon message
  /// handlers and monitors), running their destructors. The destructor
  /// calls this too, but an owner whose fibers hold locks on sibling
  /// objects must call it explicitly while those siblings still exist —
  /// the Engine member is usually declared (and thus destroyed) in the
  /// wrong order for the implicit unwind to be safe.
  void shutdown();

  /// Current virtual time: the executing shard's local clock in sharded
  /// mode, the global clock otherwise.
  Time now() const;

  /// Number of fibers that have ever been spawned / that are still live.
  std::size_t spawned_count() const { return spawned_; }
  std::size_t live_count() const {
    return live_nondaemon_.load(std::memory_order_relaxed) +
           live_daemon_.load(std::memory_order_relaxed);
  }

  /// The engine owning the currently executing fiber (nullptr outside one).
  static Engine* current();
  /// The currently executing fiber (nullptr outside the simulation).
  static SimThread* current_thread();
  /// Shard index of the executing context (fiber or effect); only
  /// meaningful in sharded mode.
  static std::uint32_t current_shard();

  /// Advance the calling fiber's clock by `ns` virtual nanoseconds.
  /// Other runnable fibers execute in the meantime. When no other fiber is
  /// due strictly before the new wake time, the clock is advanced in place
  /// (same-fiber fast-forward) instead of round-tripping through the
  /// scheduler — observationally identical, but skips two swapcontext
  /// calls (each carrying a sigprocmask syscall). Disabled by
  /// ARGO_SLOW_PATHS (sim/slowpath.hpp). In sharded mode the fast-forward
  /// is additionally bounded by the current lookahead window.
  void delay(Time ns);

  /// Host-path diagnostics: delays absorbed by the same-fiber fast-forward
  /// and fiber stacks recycled from the pool (both 0 under ARGO_SLOW_PATHS).
  std::uint64_t delay_fast_forwards() const {
    return fast_forwards_.load(std::memory_order_relaxed);
  }
  std::uint64_t stacks_reused() const { return stacks_reused_; }
  /// Stale (wake_token-invalidated) run-queue entries removed by heap
  /// compaction instead of being popped one by one.
  std::uint64_t runq_purged() const {
    return runq_purged_.load(std::memory_order_relaxed);
  }
  /// Scheduler-to-fiber context switches performed (each implies a matching
  /// fiber-to-scheduler switch; same-fiber fast-forwards skip both).
  std::uint64_t context_switches() const {
    std::uint64_t n = switches_;
    for (const auto& s : shards_) n += s->switches;
    return n;
  }
  /// Run-queue traffic: live entries pushed / popped across every queue
  /// (legacy plus per-shard), stale pops excluded.
  std::uint64_t runq_pushes() const {
    std::uint64_t n = runq_pushes_;
    for (const auto& s : shards_) n += s->pushes;
    return n;
  }
  std::uint64_t runq_pops() const {
    std::uint64_t n = runq_pops_;
    for (const auto& s : shards_) n += s->pops;
    return n;
  }
  /// Calendar-queue bucket-array rebuilds, summed over every queue
  /// (0 on the heap reference path).
  std::uint64_t calendar_resizes() const {
    std::uint64_t n = runq_.resizes();
    for (const auto& s : shards_) n += s->runq.resizes() + s->effq.resizes();
    return n;
  }
  /// Fiber-switch backend the engine would use for the next fiber started:
  /// "fcontext" (hand-rolled assembly switch, sim/fcontext.S) on supported
  /// architectures under the fast paths, "ucontext" under sanitizers,
  /// ARGO_SLOW_PATHS, or unsupported architectures.
  static const char* context_backend();

  /// Reschedule the calling fiber at the current time, after every other
  /// fiber already runnable at this time (round-robin fairness point).
  void yield() { delay(0); }

  // --- sharded mode ------------------------------------------------------

  /// Partition the simulation into `shards` per-node event shards advanced
  /// by `workers` host threads (1 = the sequential reference) under
  /// conservative lookahead `l` (the interconnect's minimum verb latency).
  /// Must be called before any fiber is spawned.
  void enable_sharding(std::uint32_t shards, Time l, std::uint32_t workers);
  bool sharded() const { return sharded_; }
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t worker_count() const { return workers_; }
  /// The lookahead bound L (minimum cross-shard latency).
  Time lookahead() const { return lookahead_; }

  /// Queue a closure to execute on shard `dst` at virtual time `when`,
  /// ordered among same-time effects by (klass, a, b) and before any fiber
  /// wake at the same time. `when` must be at least one lookahead past the
  /// current window start (any ≥-L-latency cross-shard interaction
  /// satisfies this by construction).
  void post_effect(std::uint32_t dst, Time when, std::uint32_t klass,
                   std::uint64_t a, std::uint64_t b, EffectFn fn);

  /// Block the calling fiber (without advancing virtual time) until the
  /// record is complete. In sharded mode the fiber's whole shard parks and
  /// its worker revisits it; the effect filling the record executes at the
  /// same virtual time on another shard within the same window, so the wait
  /// is always bounded. No-op when the record is already complete.
  void await(const std::shared_ptr<SimRecord>& rec);

  /// Features that need same-time cross-shard wakeups (SimEvent-style
  /// delegation, membership monitors) cannot run on the sharded engine:
  /// throws std::logic_error naming `why` when sharding is enabled.
  void require_serial(const char* why) const;

 private:
  friend class SimThread;
  friend class WaitQueue;
  friend class SimGate;

  static constexpr std::size_t default_stack_size = 256 * 1024;

  struct QueueEntry {
    Time when;
    std::uint64_t seq;
    SimThread* thread;
    std::uint64_t token;
    bool operator>(const QueueEntry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  struct Effect {
    Time when;
    std::uint32_t klass;
    std::uint64_t a, b;
    EffectFn fn;
    bool operator>(const Effect& o) const {
      if (when != o.when) return when > o.when;
      if (klass != o.klass) return klass > o.klass;
      if (a != o.a) return a > o.a;
      return b > o.b;
    }
  };

  struct Shard {
    EventQueue<QueueEntry> runq;
    EventQueue<Effect> effq;
    // Effects posted by fibers of this shard during the current window,
    // routed to their destination shards by the main thread at the next
    // window boundary (single-writer during the window, so no lock).
    // Inline storage: a window rarely accumulates more than a few.
    SmallVec<std::pair<std::uint32_t, Effect>, 8> outbox;
    Time clock = 0;
    std::uint64_t next_seq = 0;
    std::size_t dead = 0;  // stale runq entries awaiting compaction
    // Scheduler diagnostics, single-writer (the shard's worker); summed by
    // the Engine accessors between windows.
    std::uint64_t switches = 0;
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    SimThread* stalled = nullptr;     // fiber parked in await()
    const SimRecord* stall_rec = nullptr;
    std::exception_ptr error;
    alignas(64) char pad_[64] = {};
  };

  static void fiber_main(unsigned hi, unsigned lo);
  static void fiber_main_fctx(void* from, void* data);
  void make_runnable(SimThread* t, Time when);
  void push_entry(EventQueue<QueueEntry>& q, std::size_t& dead, QueueEntry e);
  void compact(EventQueue<QueueEntry>& q, std::size_t& dead);
  void switch_to(SimThread* t);
  void switch_to_scheduler();  // called from inside a fiber
  void reap_finished_one(SimThread* t);

  // sharded internals
  void run_sharded();
  void run_window(std::uint32_t worker, Time w1);
  // Execute shard events below w1; returns true when the shard is done for
  // the window (false = stalled on another shard's effect). Sets
  // `progressed` when anything ran.
  bool shard_step(Shard& s, Time w1, bool& progressed);
  void route_outboxes();
  bool next_event_time(Shard& s, Time& t);  // pops stale heads
  void start_pool();
  void stop_pool();
  void worker_loop(std::uint32_t w);

  EventQueue<QueueEntry> runq_;
  std::size_t runq_dead_ = 0;
  std::vector<std::unique_ptr<SimThread>> threads_;
  // Recycled default-size fiber stacks: a finished fiber's stack is reused
  // by the next spawn instead of being freed and re-mapped. Disabled under
  // ASan (fake-stack bookkeeping assumes fresh stacks) and ARGO_SLOW_PATHS.
  std::vector<std::unique_ptr<char[]>> stack_pool_;
  std::atomic<std::uint64_t> fast_forwards_{0};
  std::uint64_t stacks_reused_ = 0;
  std::atomic<std::uint64_t> runq_purged_{0};
  std::uint64_t switches_ = 0;     // legacy-engine context switches
  std::uint64_t runq_pushes_ = 0;  // legacy-engine live pushes/pops
  std::uint64_t runq_pops_ = 0;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 0;
  std::size_t spawned_ = 0;
  std::atomic<std::size_t> live_nondaemon_{0};
  std::atomic<std::size_t> live_daemon_{0};
  SimThread* running_ = nullptr;
  bool in_run_ = false;

  // sharded state
  bool sharded_ = false;
  std::uint32_t workers_ = 1;
  Time lookahead_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<Time> window_end_{0};
  std::atomic<Time> finish_max_{0};  // latest non-daemon finish time
  bool in_window_ = false;
  std::uint64_t next_gate_id_ = 0;
  // persistent worker pool (workers 1..workers_-1; the main thread acts as
  // worker 0). Spin-then-sleep epoch barrier: windows are microseconds
  // apart, so workers spin briefly before falling back to the condvar.
  std::vector<std::thread> pool_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> done_count_{0};
  std::atomic<bool> pool_exit_{false};
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
};

/// A global barrier for the sharded engine: arrivers park; the last arriver
/// computes the release time R = max(arrival times) + cost (cost is clamped
/// to at least the lookahead L) and posts one wake Effect per waiter, keyed
/// (R, 0, gate id, fiber id) — deterministic regardless of which arrival
/// happens to be last on the host. Mirrors the legacy
/// SimBarrier::arrive_and_wait() + delay(cost) rendezvous timing.
class SimGate {
 public:
  SimGate(Engine* eng, std::size_t parties, Time cost);
  void arrive_and_wait();

 private:
  Engine* eng_;
  std::size_t parties_;
  Time cost_;
  std::uint64_t id_;
  std::mutex mu_;
  std::size_t count_ = 0;
  Time tmax_ = 0;
  std::vector<SimThread*> waiters_;
};

/// Free-function shorthands, valid inside a simulated thread.
inline Time now() { return Engine::current()->now(); }
inline void delay(Time ns) { Engine::current()->delay(ns); }
inline void yield() { Engine::current()->yield(); }

}  // namespace argosim
