// Deterministic virtual-time execution engine.
//
// The engine cooperatively schedules "simulated threads" (fibers) against a
// single virtual clock. Exactly one fiber runs at any moment, so simulated
// code needs no real synchronization; logical concurrency is modeled by the
// interleaving of fibers at explicit scheduling points (delay/yield/wait).
// Scheduling is fully deterministic: the runnable fiber with the smallest
// (wake time, insertion sequence) pair always runs next, so the same program
// produces bit-identical virtual timings and statistics on every run.
//
// This is the substrate that stands in for the paper's physical cluster:
// nodes, cores, NICs and message handlers are all simulated threads whose
// costs are charged through delay().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace argosim {

class Engine;

/// Thrown inside blocked fibers when the engine shuts down (e.g. daemon
/// handler threads still waiting on a channel after all workers finished).
struct SimStopped {};

/// Thrown by Engine::run() when no fiber is runnable but non-daemon fibers
/// are still blocked.
class SimDeadlock : public std::runtime_error {
 public:
  explicit SimDeadlock(const std::string& what) : std::runtime_error(what) {}
};

/// A simulated thread. Created via Engine::spawn(); users interact with it
/// through the engine's static current()/delay()/now() interface and the
/// primitives in sim/sync.hpp.
class SimThread {
 public:
  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool daemon() const { return daemon_; }
  bool finished() const { return finished_; }
  /// True once Engine::kill() (or shutdown) marked this fiber: it will
  /// unwind at its next scheduling point and can no longer make progress.
  bool stop_requested() const { return stop_requested_; }
  ~SimThread();

 private:
  friend class Engine;
  friend class WaitQueue;
  SimThread(Engine* eng, std::uint64_t id, std::string name,
            std::function<void()> body, std::unique_ptr<char[]> stack,
            std::size_t stack_size, bool daemon);
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  struct Impl;
  std::unique_ptr<Impl> impl_;
  Engine* engine_;
  std::uint64_t id_;
  std::string name_;
  std::function<void()> body_;
  bool daemon_ = false;
  bool finished_ = false;
  bool blocked_ = false;   // parked on a WaitQueue
  bool stop_requested_ = false;
  std::uint64_t wake_token_ = 0;  // invalidates stale run-queue entries
};

/// The virtual-time scheduler.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a simulated thread, runnable at the current virtual time.
  /// May be called from outside the simulation or from a running fiber.
  /// Daemon fibers do not keep run() alive and are stopped (by a SimStopped
  /// throw at their next scheduling point) when every non-daemon finished.
  SimThread* spawn(std::string name, std::function<void()> body,
                   bool daemon = false, std::size_t stack_size = default_stack_size);

  /// Run the simulation until all non-daemon fibers have finished.
  /// Throws SimDeadlock if progress is impossible. May be called repeatedly;
  /// virtual time keeps advancing monotonically across calls.
  void run();

  /// Crash-stop a fiber: it unwinds (via SimStopped) at its next scheduling
  /// point instead of continuing its body — destructors run, so held NIC
  /// locks and RAII guards release cleanly. Parked fibers are made runnable
  /// now so the unwind is immediate. Killing a finished fiber is a no-op;
  /// a fiber must not kill itself (return and unwind instead).
  void kill(SimThread* t);

  /// Unwind every fiber that is still alive (typically daemon message
  /// handlers and monitors), running their destructors. The destructor
  /// calls this too, but an owner whose fibers hold locks on sibling
  /// objects must call it explicitly while those siblings still exist —
  /// the Engine member is usually declared (and thus destroyed) in the
  /// wrong order for the implicit unwind to be safe.
  void shutdown();

  /// Current virtual time.
  Time now() const { return now_; }

  /// Number of fibers that have ever been spawned / that are still live.
  std::size_t spawned_count() const { return spawned_; }
  std::size_t live_count() const { return live_nondaemon_ + live_daemon_; }

  /// The engine owning the currently executing fiber (nullptr outside one).
  static Engine* current();
  /// The currently executing fiber (nullptr outside the simulation).
  static SimThread* current_thread();

  /// Advance the calling fiber's clock by `ns` virtual nanoseconds.
  /// Other runnable fibers execute in the meantime. When no other fiber is
  /// due strictly before the new wake time, the clock is advanced in place
  /// (same-fiber fast-forward) instead of round-tripping through the
  /// scheduler — observationally identical, but skips two swapcontext
  /// calls (each carrying a sigprocmask syscall). Disabled by
  /// ARGO_SLOW_PATHS (sim/slowpath.hpp).
  void delay(Time ns);

  /// Host-path diagnostics: delays absorbed by the same-fiber fast-forward
  /// and fiber stacks recycled from the pool (both 0 under ARGO_SLOW_PATHS).
  std::uint64_t delay_fast_forwards() const { return fast_forwards_; }
  std::uint64_t stacks_reused() const { return stacks_reused_; }

  /// Reschedule the calling fiber at the current time, after every other
  /// fiber already runnable at this time (round-robin fairness point).
  void yield() { delay(0); }

 private:
  friend class SimThread;
  friend class WaitQueue;

  static constexpr std::size_t default_stack_size = 256 * 1024;

  struct QueueEntry {
    Time when;
    std::uint64_t seq;
    SimThread* thread;
    std::uint64_t token;
    bool operator>(const QueueEntry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  static void fiber_main(unsigned hi, unsigned lo);
  void make_runnable(SimThread* t, Time when);
  void switch_to(SimThread* t);
  void switch_to_scheduler();  // called from inside a fiber
  void reap_finished_one(SimThread* t);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> runq_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  // Recycled default-size fiber stacks: a finished fiber's stack is reused
  // by the next spawn instead of being freed and re-mapped. Disabled under
  // ASan (fake-stack bookkeeping assumes fresh stacks) and ARGO_SLOW_PATHS.
  std::vector<std::unique_ptr<char[]>> stack_pool_;
  std::uint64_t fast_forwards_ = 0;
  std::uint64_t stacks_reused_ = 0;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 0;
  std::size_t spawned_ = 0;
  std::size_t live_nondaemon_ = 0;
  std::size_t live_daemon_ = 0;
  SimThread* running_ = nullptr;
  bool in_run_ = false;
};

/// Free-function shorthands, valid inside a simulated thread.
inline Time now() { return Engine::current()->now(); }
inline void delay(Time ns) { Engine::current()->delay(ns); }
inline void yield() { Engine::current()->yield(); }

}  // namespace argosim
