// ARGO_SLOW_PATHS: a process-wide debug toggle that disables every
// host-side fast path (word-wise diff scanning, page-buffer pooling, the
// scheduler's same-fiber fast-forward, fiber stack recycling, and the
// per-thread soft-TLB hit path — src/core/tlb.hpp) and falls back to the
// straightforward reference implementations.
//
// The toggle exists to make the repo's central performance invariant
// checkable: host optimizations must never change *simulated* behaviour.
// Virtual times, statistics and ARGOTRC1 traces must be bit-identical with
// the toggle on and off — the determinism suites run both and compare
// (tests/test_hostperf.cpp), and scripts/bench_host.sh measures the two
// modes to quantify what the fast paths buy in wall-clock time.
//
// Initialized once from the ARGO_SLOW_PATHS environment variable (any
// value but "0"/"" enables it); tests flip it programmatically between
// runs. Never toggle while a simulation is executing — mixed-mode runs are
// still *correct* (every fast path is behaviour-preserving in isolation)
// but the A/B comparison would be meaningless.
#pragma once

#include <cstdlib>

namespace argosim {

namespace detail {
inline bool g_slow_paths = [] {
  const char* e = std::getenv("ARGO_SLOW_PATHS");
  return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
}();
}  // namespace detail

/// True when the reference (slow) host paths are selected.
inline bool slow_paths() { return detail::g_slow_paths; }

/// Select the reference paths (true) or the fast paths (false).
inline void set_slow_paths(bool v) { detail::g_slow_paths = v; }

}  // namespace argosim
