// Hand-rolled fiber context switch (fcontext-style ABI).
//
// swapcontext() saves and restores the signal mask on every switch — two
// sigprocmask syscalls per round trip, ~370 ns on current hosts — although
// fibers in this engine never touch signal state. These routines switch
// only what the System V / AAPCS64 calling conventions require a callee to
// preserve (callee-saved GPRs, the stack pointer, and the FP control state
// on x86-64), which makes a round trip a couple dozen instructions with no
// kernel involvement.
//
// A context handle is the stack pointer of the suspended context's saved
// register frame; there is no separate context object. Jumping into a
// handle consumes it and yields a fresh handle for the context that was
// suspended by the jump — contexts are relinked on every switch, which is
// what lets one scheduler slot serve every fiber on a host thread.
//
// The engine only uses these under the host fast paths: sanitizer builds
// (ARGO_SANITIZE / ARGO_TSAN) and ARGO_SLOW_PATHS=1 keep the ucontext
// reference implementation, whose switches ASan/TSan know how to annotate
// (see engine.cpp). Unsupported architectures compile the engine without
// this header's symbols and always take ucontext.
#pragma once

#include <cstddef>

#if defined(__x86_64__) || defined(__aarch64__)
#define ARGO_FCONTEXT_SUPPORTED 1
#endif

namespace argosim {

#if defined(ARGO_FCONTEXT_SUPPORTED)

/// A suspended context: the stack pointer of its saved register frame.
using fctx_t = void*;

extern "C" {

/// What a resumed context receives: the context that jumped to it (already
/// suspended and re-capturable) and the jumper's data word. Two pointers,
/// so the System V/AAPCS64 ABIs return it in registers.
struct FctxTransfer {
  fctx_t fctx;
  void* data;
};

/// Suspend the calling context and resume `to`. Returns when some context
/// jumps back here; the result carries the handle of the context that
/// performed that jump plus its data word. `to` is consumed — a handle is
/// one-shot and its successor is whatever later jumps deliver.
FctxTransfer argo_fctx_jump(fctx_t to, void* data);

/// Build an initial context on [stack_base, stack_base + size). The first
/// jump into the returned handle runs `entry(from, data)` on that stack,
/// where `from` is the jumping context and `data` the jump's data word.
/// `entry` must never return: it exits by jumping to another context.
fctx_t argo_fctx_make(void* stack_base, std::size_t size,
                      void (*entry)(fctx_t from, void* data));
}

#endif  // ARGO_FCONTEXT_SUPPORTED

}  // namespace argosim
