// Cooperative synchronization primitives for simulated threads.
//
// These primitives order fibers in *virtual* time but are themselves free of
// cost: they model the semantics of blocking, not its price. Cost models
// (cacheline transfers, futex wakeups, network hops) are charged explicitly
// by the higher-level lock/interconnect code that uses them.
//
// All waits are FIFO and deterministic.
#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace argosim {

/// FIFO parking lot for fibers. The building block for every other primitive.
///
/// Storage is a plain vector with a consumed-prefix cursor instead of a
/// deque: a never-used queue owns no heap block at all (NodeCache holds one
/// WaitQueue per cache line, and almost all of them never park anyone), and
/// popping is a cursor bump. The vector resets to empty whenever the live
/// region drains, so it never grows past the high-water mark of concurrent
/// waiters. FIFO order and determinism are unchanged.
class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;
  // Movable so that containers of wait-queue-bearing structs can resize;
  // moving with parked waiters is a logic error.
  WaitQueue(WaitQueue&& o) noexcept
      : waiters_(std::move(o.waiters_)), head_(o.head_) {
    o.head_ = 0;
  }
  WaitQueue& operator=(WaitQueue&& o) noexcept {
    assert(waiters() == 0 && o.waiters() == 0);
    waiters_ = std::move(o.waiters_);
    head_ = o.head_;
    o.head_ = 0;
    return *this;
  }

  /// Park the calling fiber until a notify releases it.
  void wait() {
    Engine* eng = Engine::current();
    SimThread* self = Engine::current_thread();
    assert(eng && self && "WaitQueue::wait outside simulation");
    self->blocked_ = true;
    waiters_.push_back(self);
    eng->switch_to_scheduler();
  }

  /// Park the calling fiber until notified or until the virtual deadline.
  /// Returns true if notified, false on timeout.
  bool wait_until(Time deadline) {
    Engine* eng = Engine::current();
    SimThread* self = Engine::current_thread();
    assert(eng && self && "WaitQueue::wait_until outside simulation");
    self->blocked_ = true;
    waiters_.push_back(self);
    eng->make_runnable(self, deadline);  // timeout path
    eng->switch_to_scheduler();
    if (self->blocked_) {  // timeout fired before any notify reached us
      self->blocked_ = false;
      // Erase only within the live region [head_, end): slots before head_
      // are already-consumed garbage and may alias `self` from an earlier
      // park; touching them would corrupt the cursor accounting.
      for (std::size_t i = head_; i < waiters_.size(); ++i) {
        if (waiters_[i] == self) {
          waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      if (head_ == waiters_.size()) reset();
      return false;
    }
    return true;
  }

  /// Like wait_until, with a relative timeout.
  bool wait_for(Time timeout) {
    return wait_until(Engine::current()->now() + timeout);
  }

  /// Wake the oldest waiter (runnable at the current virtual time).
  /// Returns the number of fibers woken (0 or 1).
  std::size_t notify_one() {
    Engine* eng = Engine::current();
    assert(eng && "WaitQueue::notify_one outside simulation");
    while (head_ < waiters_.size()) {
      SimThread* t = waiters_[head_++];
      if (head_ == waiters_.size()) reset();
      if (t->finished_) continue;  // unwound during shutdown
      t->blocked_ = false;
      eng->make_runnable(t, eng->now());
      return 1;
    }
    return 0;
  }

  /// Wake every waiter. Returns the number of fibers woken.
  std::size_t notify_all() {
    std::size_t n = 0;
    while (waiters() > 0) n += notify_one();
    return n;
  }

  std::size_t waiters() const { return waiters_.size() - head_; }

 private:
  void reset() {
    waiters_.clear();
    head_ = 0;
  }

  std::vector<SimThread*> waiters_;
  std::size_t head_ = 0;  // index of the oldest live waiter
};

/// FIFO mutex with direct handoff: unlock passes ownership to the oldest
/// waiter, so acquisition order equals arrival order (deterministic).
class SimMutex {
 public:
  void lock() {
    if (!locked_) {
      locked_ = true;
      owner_ = Engine::current_thread();
      return;
    }
    q_.wait();  // ownership is handed to us by unlock()
    owner_ = Engine::current_thread();
  }

  bool try_lock() {
    if (locked_) return false;
    locked_ = true;
    owner_ = Engine::current_thread();
    return true;
  }

  /// Acquire, giving up after `timeout` virtual ns. Returns true if the
  /// lock was obtained. Handoff semantics make this exact: being notified
  /// IS ownership, so a timeout means no ownership was ever transferred.
  /// The wait is sliced so a holder that crash-stops (Engine::kill) while
  /// we are parked is noticed within kOwnerPoll instead of only at the
  /// deadline: a dead holder can never hand the lock over, so the wait
  /// fails fast rather than riding out the full timeout.
  bool try_lock_for(Time timeout) {
    Engine* eng = Engine::current();
    if (!locked_) {
      locked_ = true;
      owner_ = Engine::current_thread();
      return true;
    }
    const Time deadline = eng->now() + timeout;
    for (;;) {
      // Between slices we are not parked: an unlock in that window found an
      // empty queue and freed the lock instead of handing it to us.
      if (!locked_) {
        locked_ = true;
        owner_ = Engine::current_thread();
        return true;
      }
      if (owner_unwound()) return false;
      const Time now = eng->now();
      if (now >= deadline) return false;
      const Time slice = deadline - now < kOwnerPoll ? deadline - now
                                                     : kOwnerPoll;
      if (q_.wait_until(now + slice)) {
        owner_ = Engine::current_thread();
        return true;
      }
    }
  }

  void unlock() {
    assert(locked_);
    if (q_.notify_one() == 0) {
      locked_ = false;
      owner_ = nullptr;
    }
    // else: stays locked, ownership transferred to the woken fiber (which
    // stamps owner_ when it resumes inside lock()/try_lock_for()).
  }

  bool locked() const { return locked_; }

  /// Dead-holder poll granularity of try_lock_for.
  static constexpr Time kOwnerPoll = 2000;

 private:
  /// True if the recorded holder can never release: it finished or was
  /// crash-stopped while owning the lock. (During a handoff window the
  /// recorded holder is the releaser, which is live — so this only fires
  /// for genuinely orphaned locks.)
  bool owner_unwound() const {
    return owner_ != nullptr && (owner_->finished() || owner_->stop_requested());
  }

  bool locked_ = false;
  SimThread* owner_ = nullptr;  // last fiber to acquire (diagnostics/death)
  WaitQueue q_;
};

/// RAII lock guard for SimMutex.
class SimLockGuard {
 public:
  explicit SimLockGuard(SimMutex& m) : m_(m) { m_.lock(); }
  ~SimLockGuard() { m_.unlock(); }
  SimLockGuard(const SimLockGuard&) = delete;
  SimLockGuard& operator=(const SimLockGuard&) = delete;

 private:
  SimMutex& m_;
};

/// Condition variable over SimMutex. No spurious wakeups.
class SimCondVar {
 public:
  void wait(SimMutex& m) {
    m.unlock();
    q_.wait();
    m.lock();
  }

  template <typename Pred>
  void wait(SimMutex& m, Pred pred) {
    while (!pred()) wait(m);
  }

  void notify_one() { q_.notify_one(); }
  void notify_all() { q_.notify_all(); }

 private:
  WaitQueue q_;
};

/// Classic generation-counted barrier for a fixed party count.
class SimBarrier {
 public:
  explicit SimBarrier(std::size_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    assert(parties_ > 0);
    std::uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      q_.notify_all();
      return;
    }
    while (generation_ == gen) q_.wait();
  }

  std::size_t parties() const { return parties_; }

 private:
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  WaitQueue q_;
};

/// One-shot event: set() releases all current and future waiters.
class SimEvent {
 public:
  void wait() {
    while (!set_) q_.wait();
  }

  /// Wait with a virtual-time deadline; true if the event was set in time.
  bool wait_for(Time timeout) {
    const Time deadline = Engine::current()->now() + timeout;
    while (!set_) {
      if (!q_.wait_until(deadline) && !set_) return false;
    }
    return true;
  }
  void set() {
    set_ = true;
    q_.notify_all();
  }
  bool is_set() const { return set_; }
  void reset() { set_ = false; }

 private:
  bool set_ = false;
  WaitQueue q_;
};

/// Unbounded FIFO channel between fibers.
template <typename T>
class Channel {
 public:
  void send(T v) {
    items_.push_back(std::move(v));
    q_.notify_one();
  }

  T recv() {
    while (items_.empty()) q_.wait();
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  std::deque<T> items_;
  WaitQueue q_;
};

}  // namespace argosim
