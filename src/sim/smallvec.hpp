// SmallVec: a minimal inline-storage vector for the sharded engine's
// per-shard outboxes.
//
// An outbox holds the effects a shard's fibers posted during one window —
// usually zero, occasionally a handful — and is drained at every window
// boundary. A std::vector would heap-allocate on the first post and keep
// that block alive per shard; SmallVec keeps the first N elements in the
// object itself and only spills to the heap under bursts, which it then
// keeps (capacity is sticky across clear(), like vector).
//
// Supports exactly what the outbox needs: emplace_back, range-for,
// size/empty, clear. Move-only elements are fine (Effect holds a SmallFn);
// the container itself is neither copyable nor movable — it lives inside
// a Shard, which never moves.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace argosim {

template <class T, std::size_t N>
class SmallVec {
 public:
  SmallVec() = default;
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;
  ~SmallVec() {
    clear();
    release_heap(heap_);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  template <class... A>
  T& emplace_back(A&&... a) {
    if (size_ == cap_) grow();
    T* p = ::new (static_cast<void*>(data() + size_)) T(std::forward<A>(a)...);
    ++size_;
    return *p;
  }

  /// Destroy all elements; heap capacity (if any) is kept.
  void clear() {
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) d[i].~T();
    size_ = 0;
  }

 private:
  T* data() {
    return heap_ != nullptr ? static_cast<T*>(heap_)
                            : std::launder(reinterpret_cast<T*>(inline_));
  }
  const T* data() const {
    return heap_ != nullptr ? static_cast<const T*>(heap_)
                            : std::launder(reinterpret_cast<const T*>(inline_));
  }

  static void release_heap(void* p) {
    if (p != nullptr)
      ::operator delete(p, std::align_val_t{alignof(T)});
  }

  void grow() {
    const std::size_t ncap = cap_ * 2;
    void* nheap = ::operator new(ncap * sizeof(T), std::align_val_t{alignof(T)});
    T* src = data();
    T* dst = static_cast<T*>(nheap);
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(dst + i)) T(std::move(src[i]));
      src[i].~T();
    }
    release_heap(heap_);
    heap_ = nheap;
    cap_ = ncap;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  void* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace argosim
