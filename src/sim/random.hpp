// Deterministic pseudo-random number generation for simulations and
// workload generators. xoshiro256** seeded via SplitMix64: fast, high
// quality, and — unlike std::default_random_engine / std::uniform_*
// distributions — bit-stable across standard library implementations,
// which keeps test expectations and benchmark workloads reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace argosim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value (xoshiro256**).
  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased
  /// enough for workload generation; exact rejection omitted for speed).
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + next_double() * (hi - lo);
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace argosim
