// ARGO_THREADS / ARGO_SEQ_ENGINE: process-wide engine-mode toggles,
// mirroring ARGO_SLOW_PATHS (sim/slowpath.hpp).
//
// The sharded engine (sim/engine.hpp) partitions the simulation into
// per-node event shards advanced under conservative lookahead windows.
// ARGO_THREADS=N selects the sharded engine with N host workers;
// ARGO_SEQ_ENGINE=1 selects the sharded engine with exactly one worker —
// the sequential reference the parallel runs must be bit-identical to.
// With neither set, the legacy single-queue engine runs (the seed
// behaviour every existing test pins).
//
// Tests flip these programmatically between runs; never toggle while a
// simulation is executing.
#pragma once

#include <cstdlib>

namespace argosim {

namespace detail {
inline int g_engine_threads = [] {
  const char* e = std::getenv("ARGO_THREADS");
  if (e == nullptr || e[0] == '\0') return 0;
  int v = std::atoi(e);
  return v > 0 ? v : 0;
}();
inline bool g_seq_engine = [] {
  const char* e = std::getenv("ARGO_SEQ_ENGINE");
  return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
}();
}  // namespace detail

/// Worker count requested via ARGO_THREADS (0 = not requested).
inline int engine_threads() { return detail::g_engine_threads; }
inline void set_engine_threads(int n) { detail::g_engine_threads = n < 0 ? 0 : n; }

/// True when ARGO_SEQ_ENGINE selects the single-worker sharded reference.
inline bool seq_engine() { return detail::g_seq_engine; }
inline void set_seq_engine(bool v) { detail::g_seq_engine = v; }

/// True when either toggle asks for the sharded engine at all.
inline bool sharded_engine_requested() {
  return detail::g_seq_engine || detail::g_engine_threads > 0;
}

}  // namespace argosim
