#include "core/carina.hpp"

#include <cassert>
#include <cstring>

#include "sim/engine.hpp"

namespace argocore {

using argodir::DirEntry;
using argodir::NodeSet;
using argomem::page_of;
using argomem::page_offset;

const char* to_string(Mode m) {
  switch (m) {
    case Mode::S: return "S";
    case Mode::PSNaive: return "P/S(naive)";
    case Mode::PS: return "P/S";
    case Mode::PS3: return "P/S3";
  }
  return "?";
}

const char* to_string(PageState s) {
  switch (s) {
    case PageState::Private: return "P";
    case PageState::SharedNW: return "S,NW";
    case PageState::SharedSW: return "S,SW";
    case PageState::SharedMW: return "S,MW";
  }
  return "?";
}

// The trace format records PageState as a raw byte (argoobs has no view of
// this enum); pin the encoding the exporters and trace_query document.
static_assert(static_cast<int>(PageState::Private) == 0);
static_assert(static_cast<int>(PageState::SharedNW) == 1);
static_assert(static_cast<int>(PageState::SharedSW) == 2);
static_assert(static_cast<int>(PageState::SharedMW) == 3);

std::uint8_t NodeCache::traced_state(std::uint64_t page) {
  return static_cast<std::uint8_t>(
      classify(dir_.cache_get(node_, dir_page(page)), node_));
}

NodeCache::NodeCache(int node, GlobalMemory& gmem, argonet::Interconnect& net,
                     PyxisDirectory& dir, CacheConfig cfg, AdaptConfig adapt)
    : node_(node),
      gmem_(gmem),
      net_(net),
      dir_(dir),
      cfg_(cfg),
      // Naive P/S checkpoints instead of diffing and keeps private pages
      // dirty across fences — none of the adaptive policies' signals mean
      // what they assume there, so the engine is inert in that mode.
      adapt_(adapt, cfg.write_buffer_pages,
             cfg.classification != Mode::PSNaive) {
  assert(cfg_.cache_lines >= 1);
  assert(cfg_.pages_per_line >= 1);
  assert(cfg_.write_buffer_pages >= 1);
  // Per-line PageSlot vectors are sized lazily when a line first holds a
  // group: a paper-scale cache (16384 lines × 4 pages) would otherwise pay
  // tens of thousands of allocations per node at construction for slots
  // most benchmarks never touch.
  lines_.resize(cfg_.cache_lines);
  occ_bits_.assign((cfg_.cache_lines + 63) / 64, 0);
  if (cfg_.classification == Mode::PSNaive)
    checkpoints_.reserve(checkpoint_reserve());
}

std::size_t NodeCache::checkpoint_reserve() const {
  // Naive P/S checkpoints every page that is dirty at a sync point; the
  // working set of those is bounded by what the cache can hold dirty —
  // the write buffer — with headroom for entries that outlive their buffer
  // residency. Sizing the table up front keeps the measured phase free of
  // rehashing.
  return 2 * cfg_.write_buffer_pages;
}

bool NodeCache::my_reader_bit_set(std::uint64_t page) const {
  return dir_.cache_get(node_, dir_page(page)).is_reader(node_);
}

bool NodeCache::my_writer_bit_set(std::uint64_t page) const {
  return dir_.cache_get(node_, dir_page(page)).is_writer(node_);
}

void NodeCache::lock_line(Line& l) {
  while (l.fetching) l.waiters.wait();
  l.fetching = true;
}

void NodeCache::unlock_line(Line& l) {
  assert(l.fetching);
  l.fetching = false;
  l.waiters.notify_all();
}

// ---------------------------------------------------------------------------
// Access paths
// ---------------------------------------------------------------------------

const std::byte* NodeCache::read_ptr(GAddr a, std::size_t len, SoftTlb* tlb,
                                     StrideTable* st) {
  assert(page_offset(a) + len <= kPageSize && "access must not straddle pages");
  (void)len;
  const std::uint64_t page = page_of(a);
  if (gmem_.home_of_page(page) == node_) {
    // Home pages are served from home memory and never cached (§3).
    ++stats_.home_accesses;
    if (!my_reader_bit_set(page)) register_access(page, /*for_write=*/false);
    // Home translations never go stale semantically (the reader bit is
    // monotonic and home bytes live at a fixed address); the generation
    // stamp just makes them re-validate harmlessly after protocol events.
    if (tlb)
      tlb->insert_read(page, tlb_gen_, gmem_.home_ptr(page * kPageSize),
                       &stats_.home_accesses);
    return gmem_.home_ptr(a);
  }
  const std::uint64_t group = group_of(page);
  Line& l = line_of_group(group);
  // Fast path: resident, valid, and registered. No latch needed — the
  // caller copies the bytes out before any other fiber can run.
  if (l.group == group) {
    PageSlot& s = slot_of(l, page);
    if (s.valid && my_reader_bit_set(page)) {
      if (s.prefetched) {
        s.prefetched = false;  // first demand touch: the prefetch paid off
        ++adapt_.stats().prefetch_useful;
      }
      ++stats_.read_hits;
      if (tlb)
        tlb->insert_read(page, tlb_gen_, page_data(l, page),
                         &stats_.read_hits);
      return page_data(l, page) + page_offset(a);
    }
  }
  ++stats_.read_misses;
  argosim::delay(cfg_.fault_overhead);
  bool prefetched = false;
  for (;;) {
    try {
      ensure_cached(page, /*for_write=*/false);
      // ensure_cached returns without a valid copy in exactly one case: a
      // crash recovery re-homed the page onto *this* node mid-miss (we may
      // have been parked inside it across the recovery). Own-home pages
      // are never cached — re-dispatch for the home fast path.
      if (gmem_.home_of_page(page) == node_) return read_ptr(a, len, tlb);
      if (!prefetched && st != nullptr && adapt_.stride_active()) {
        // Prefetch inside the retry loop, before the pointer leaves: the
        // fills yield, so the demand page must be re-validated afterwards
        // (below) — never between a validation and the returned pointer.
        prefetched = true;
        maybe_prefetch(page, st);
        if (!(l.group == group && slot_of(l, page).valid &&
              my_reader_bit_set(page)))
          continue;
      }
      break;
    } catch (const argonet::NodeFailedError& e) {
      // The page's home (or an owner we had to contact) crash-stopped
      // mid-miss: wait out its recovery, then retry against the successor.
      if (!crash_failover(e)) throw;
      // If *we* are that successor, the page is now our own home: it can
      // never be cached (fills skip own-home pages), so re-dispatch from
      // the top for the home fast path instead of retrying the miss.
      if (gmem_.home_of_page(page) == node_) return read_ptr(a, len, tlb);
    }
  }
  // ensure_cached returned with the page valid + reader bit set; the next
  // slow-path access would be a read hit, so that is the counter a TLB hit
  // must bump. Stamped with the post-fill generation.
  if (tlb)
    tlb->insert_read(page, tlb_gen_, page_data(l, page), &stats_.read_hits);
  return page_data(l, page) + page_offset(a);
}

std::byte* NodeCache::write_ptr(GAddr a, std::size_t len, SoftTlb* tlb,
                                StrideTable* st) {
  assert(page_offset(a) + len <= kPageSize && "access must not straddle pages");
  (void)len;
  const std::uint64_t page = page_of(a);
  if (gmem_.home_of_page(page) == node_) {
    // Home writes go straight to the authoritative copy; only the
    // classification registration matters.
    ++stats_.home_accesses;
    if (!my_writer_bit_set(page)) register_access(page, /*for_write=*/true);
    if (tlb)
      tlb->insert_write(page, tlb_gen_, gmem_.home_ptr(page * kPageSize),
                        &stats_.home_accesses);
    return gmem_.home_ptr(a);
  }
  const std::uint64_t group = group_of(page);
  Line& l = line_of_group(group);
  // Fast path: resident, already dirty (twin exists, queued for SD).
  if (l.group == group) {
    PageSlot& s = slot_of(l, page);
    if (s.valid && s.dirty && my_writer_bit_set(page)) {
      ++stats_.write_hits;
      if (tlb)
        tlb->insert_write(page, tlb_gen_, page_data(l, page),
                          &stats_.write_hits);
      return page_data(l, page) + page_offset(a);
    }
  }
  ++stats_.write_misses;
  argosim::delay(cfg_.fault_overhead);
  bool prefetched = false;
  for (;;) {
    try {
      ensure_cached(page, /*for_write=*/true);
    } catch (const argonet::NodeFailedError& e) {
      if (!crash_failover(e)) throw;
      // If *we* are the successor, the page is now our own home and can
      // never be cached (fills skip own-home pages): re-dispatch from the
      // top for the home fast path instead of retrying the miss forever.
      if (gmem_.home_of_page(page) == node_) return write_ptr(a, len, tlb);
      continue;  // home recovered on a successor; redo the whole miss
    }
    // ensure_cached bails without a copy when a recovery re-homed the page
    // onto this node mid-miss (e.g. while we were parked on the write
    // buffer below): re-dispatch for the home fast path.
    if (gmem_.home_of_page(page) == node_) return write_ptr(a, len, tlb);
    if (!prefetched && st != nullptr && adapt_.stride_active()) {
      // Safe before the latch: the lock_line + re-validation below already
      // handles the line being displaced while the prefetch yielded.
      prefetched = true;
      maybe_prefetch(page, st);
    }
    lock_line(l);
    PageSlot& s = slot_of(l, page);
    if (!(l.group == group && s.valid && my_writer_bit_set(page))) {
      unlock_line(l);
      continue;  // displaced while we were away; retry
    }
    if (s.prefetched) {
      s.prefetched = false;  // first demand touch: the prefetch paid off
      ++adapt_.stats().prefetch_useful;
    }
    if (!s.dirty) {
      // Admission control BEFORE dirtying: when the buffer is full, drain
      // the oldest entry and retry. A store never waits for the global
      // occupancy to fall after its page is admitted — gating on that
      // livelocks as soon as concurrent writers outnumber buffer slots
      // (each drain victim simply re-dirties its page).
      if (wb_live_ >= adapt_.wb_capacity()) {
        unlock_line(l);
        // If nothing was drainable (every live entry is mid-writeback in
        // another fiber), park until one of those writebacks completes and
        // releases its slot. No lost wakeup: drain_oldest's failure path
        // never yields, so the occupancy cannot drop between the re-check
        // and the wait.
        const argosim::Time stall_start = argosim::now();
        try {
          if (!drain_oldest() && wb_live_ >= adapt_.wb_capacity())
            wb_slot_waiters_.wait();
        } catch (const argonet::NodeFailedError& e) {
          if (!crash_failover(e)) throw;
          // drain_oldest pops its victim before writing it back; a crashed
          // home aborts the writeback with the entry out of the queue (but
          // still marked in_wb). Requeue such strays or the slot leaks and
          // every writer parks here forever.
          requeue_stranded_wb();
        }
        // Feed the sizing policy the virtual time this store lost to the
        // full buffer (a no-op, like the admit note below, while inert).
        adapt_.note_drain_stall(argosim::now() - stall_start);
        continue;
      }
      // Write-allocate: twin for later diffing (checkpoint of the fetched
      // content), mark dirty, queue for self-downgrade. The twin copy may
      // let the occupancy transiently overshoot by the number of
      // concurrent writers; that is bounded and harmless.
      s.twin = pool_.acquire(kPageSize);
      std::memcpy(s.twin.get(), page_data(l, page), kPageSize);
      argosim::delay(net_.config().mem_copy(kPageSize));
      if (l.group == group && s.valid && !s.dirty) {
        s.dirty = true;
        if (!s.in_wb) {
          s.in_wb = true;
          write_buffer_.push_back(page);
          ++wb_live_;
          adapt_.note_wb_admit(wb_live_);
        }
      } else {
        unlock_line(l);
        continue;  // displaced during the twin copy; retry
      }
    }
    unlock_line(l);
    // The page is now valid + dirty + write-buffered — exactly the window
    // a write translation may live in. release_wb_slot (writeback, drain,
    // fence) bumps the generation, ending it.
    if (tlb)
      tlb->insert_write(page, tlb_gen_, page_data(l, page),
                        &stats_.write_hits);
    return page_data(l, page) + page_offset(a);
  }
}

void NodeCache::ensure_cached(std::uint64_t page, bool for_write) {
  // Naive P/S keeps the sequential miss path: its heal decisions need the
  // registration's result *before* any data moves, so there is nothing to
  // overlap.
  if (pipelined() && cfg_.classification != Mode::PSNaive) {
    ensure_cached_pipelined(page, for_write);
    return;
  }
  const std::uint64_t group = group_of(page);
  Line& l = line_of_group(group);
  bool registered_this_call = false;
  for (;;) {
    // A crash recovery can re-home the page onto *this* node while we are
    // mid-miss (parked on the latch, the write buffer, or a posted op).
    // Own-home pages are never cached — fills skip them — so this loop can
    // no longer terminate with a valid copy. Bail; the caller re-checks the
    // home and re-dispatches through its home fast path.
    if (gmem_.home_of_page(page) == node_) return;
    // Register first (deposit our ID, learn the maps, trigger transitions
    // and naive-P/S healing) so the subsequent data fetch sees the healed
    // home copy.
    if ((for_write && !my_writer_bit_set(page)) || !my_reader_bit_set(page)) {
      const bool healed = register_access(page, for_write);
      registered_this_call = true;
      if (healed) {
        // A copy prefetched before the heal (as part of a neighbouring
        // page's line fill) predates the healed home content: drop it.
        // (Group check first: an unclaimed line has no slots yet.)
        lock_line(l);
        if (l.group == group) {
          PageSlot& s = slot_of(l, page);
          if (s.valid && !s.dirty) {
            s.valid = false;
            ++tlb_gen_;
          }
        }
        unlock_line(l);
      }
      continue;
    }
    // Naive P/S: about to (re)fetch a page we registered for long ago — a
    // page whose sole writer is another node may be stale at the home (the
    // writer checkpoints instead of downgrading), so heal it from that
    // writer's checkpoint first (§3.4.2). The heal decision must NOT use
    // the cached word: SW→MW transitions only notify the previous single
    // writer, so our cached word can claim "single writer X" long after
    // more writers appeared — healing on that stale claim would rewind the
    // home copy to X's old checkpoint. Re-read the word from the home
    // directory (one more RDMA read naive P/S pays that Carina's private
    // self-downgrade avoids). Skipped if we registered within this miss:
    // registration already healed on fresh information.
    if (cfg_.classification == Mode::PSNaive && !registered_this_call) {
      const DirEntry stale = dir_.cache_get(node_, page);
      const bool resident =
          l.group == group && slot_of(l, page).valid && !l.fetching;
      if (!resident && stale.writer_count() == 1 &&
          stale.single_writer() != node_) {
        ++stats_.dir_ops;
        const DirEntry fresh = dir_.read(node_, page);
        dir_.cache_merge_local(node_, page, fresh);
        if (fresh.writer_count() == 1 && fresh.single_writer() != node_)
          heal_from_checkpoint(fresh.single_writer(), page);
      }
    }
    lock_line(l);
    // Evicts and fills issue network ops that can throw (a crashed home);
    // the latch must release on that path or the line wedges forever.
    try {
      if (l.group != group) {
        evict_line_locked(l);
        l.group = group;
        occupy(group % cfg_.cache_lines);
        if (!l.data) l.data = pool_.acquire(cfg_.pages_per_line * kPageSize);
        if (l.pages.size() != cfg_.pages_per_line)
          l.pages.resize(cfg_.pages_per_line);  // first claim of this slot
        for (auto& s : l.pages) {
          s.valid = false;
          s.dirty = false;
          s.in_wb = false;
          s.prefetched = false;
          s.twin.reset();
        }
        fetch_line_locked(l, group);
        unlock_line(l);
        continue;
      }
      PageSlot& s = slot_of(l, page);
      if (!s.valid) {
        fetch_line_locked(l, group);
        unlock_line(l);
        continue;
      }
    } catch (...) {
      unlock_line(l);
      throw;
    }
    unlock_line(l);
    // Re-validate with no intervening delays.
    if (l.group == group && slot_of(l, page).valid &&
        my_reader_bit_set(page) &&
        (!for_write || my_writer_bit_set(page)))
      return;
  }
}

void NodeCache::ensure_cached_pipelined(std::uint64_t page, bool for_write) {
  const std::uint64_t group = group_of(page);
  Line& l = line_of_group(group);
  for (;;) {
    // Crash recovery may have re-homed the page onto this node mid-miss;
    // own-home pages can never become valid in the cache, so return and
    // let the caller re-dispatch (see ensure_cached).
    if (gmem_.home_of_page(page) == node_) return;
    // Post the directory registration, then run the fill while it is on
    // the wire. The send queue is FIFO, so the home-side fetch_or still
    // precedes the data reads — same ordering as the blocking path, minus
    // the dead time between them.
    argodir::RegTicket reg;
    DirEntry bits;
    std::uint64_t dp = 0;
    if ((for_write && !my_writer_bit_set(page)) || !my_reader_bit_set(page)) {
      dp = dir_page(page);
      bits.add_reader(node_);
      if (for_write) bits.add_writer(node_);
      ++stats_.dir_ops;
      dir_.post_fetch_or(node_, dp, bits, reg);
    }
    lock_line(l);
    try {
      if (l.group != group) {
        evict_line_locked(l);
        l.group = group;
        occupy(group % cfg_.cache_lines);
        if (!l.data) l.data = pool_.acquire(cfg_.pages_per_line * kPageSize);
        if (l.pages.size() != cfg_.pages_per_line)
          l.pages.resize(cfg_.pages_per_line);  // first claim of this slot
        for (auto& s : l.pages) {
          s.valid = false;
          s.dirty = false;
          s.in_wb = false;
          s.prefetched = false;
          s.twin.reset();
        }
        fetch_line_locked(l, group);
      } else if (!slot_of(l, page).valid) {
        fetch_line_locked(l, group);
      }
    } catch (...) {
      unlock_line(l);
      throw;
    }
    unlock_line(l);
    if (reg) {
      const DirEntry prev = dir_.wait_entry(reg);
      apply_registration(page, dp, prev, bits, for_write);
    }
    if (l.group == group && slot_of(l, page).valid && my_reader_bit_set(page) &&
        (!for_write || my_writer_bit_set(page)))
      return;
  }
}

// ---------------------------------------------------------------------------
// Directory registration and classification transitions (§3.4–3.5)
// ---------------------------------------------------------------------------

bool NodeCache::register_access(std::uint64_t page, bool for_write) {
  const std::uint64_t dp = dir_page(page);
  DirEntry bits = DirEntry::reader(node_);
  if (for_write) bits.add_writer(node_);
  ++stats_.dir_ops;
  const DirEntry prev = dir_.fetch_or(node_, dp, bits);
  return apply_registration(page, dp, prev, bits, for_write);
}

bool NodeCache::apply_registration(std::uint64_t page, std::uint64_t dp,
                                   const DirEntry& prev, const DirEntry& bits,
                                   bool for_write) {
  const DirEntry updated = prev | bits;
  dir_.cache_merge_local(node_, dp, updated);

  // Traced transitions carry the updated word covering this node's own
  // map slice — at 32 nodes or fewer that is the whole (single-word)
  // entry, bit-identical to the historical single-uint64_t payload.
  const std::uint64_t traced_word =
      updated.w[static_cast<std::size_t>(DirEntry::word_of(node_))];
  NodeSet notified;

  // Notification fan-out: blocking one at a time at depth 1 (the historical
  // behaviour), collected and posted as one coalesced batch when
  // pipelining — the multi-reader NW→SW case then overlaps its atomics.
  std::vector<argodir::DirNotify> batch;
  auto notify = [&](int dst) {
    // A displaced owner that crash-stopped needs no deferred invalidation;
    // notifying it would only throw. (Un-detected deaths still throw from
    // the merge itself — the caller's failover retry handles those, and
    // the re-run skips the node once it is declared.)
    if (membership_ != nullptr && !membership_->is_live(dst)) return;
    if (pipelined())
      batch.push_back(argodir::DirNotify{dst, dp, updated});
    else
      dir_.cache_merge_remote(node_, dst, dp, updated);
  };

  // P→S: before us, exactly one *other* node had accessed the page. The
  // displaced private owner learns of the transition via one RDMA update
  // of its directory cache (deferred invalidation, §3.4.1).
  if (!prev.is_accessor(node_) && prev.accessor_count() == 1) {
    const int owner = prev.single_accessor();
    ++stats_.transitions_caused;
    trace(argoobs::Ev::ClassTransition, dp,
          static_cast<std::uint8_t>(classify(updated, node_)), traced_word);
    notify(owner);
    notified.set(owner);
  }
  // Naive P/S: if — per the *fresh* word we just fetched — the page has a
  // single writer that is not us, the home copy may lag that writer's last
  // synchronization point; heal it from the writer's checkpoint before
  // using home data. This must happen at registration time: a second
  // writer joining makes the count 2, after which nobody would ever heal
  // the first writer's checkpoint-only bytes into the home copy. Healing
  // is idempotent, so concurrent newcomers may each heal without
  // coordination.
  bool healed = false;
  if (cfg_.classification == Mode::PSNaive && prev.writer_count() == 1 &&
      prev.single_writer() != node_) {
    heal_from_checkpoint(prev.single_writer(), page);
    healed = true;
  }

  if (for_write && !prev.is_writer(node_)) {
    switch (prev.writer_count()) {
      case 0: {
        // NW→SW: every other node caching the page must learn there is now
        // a writer (they can no longer treat it as read-only).
        bool traced = false;
        prev.for_each_reader([&](int r) {
          if (r == node_ || notified.test(r)) return;
          if (!traced) {
            ++stats_.transitions_caused;
            trace(argoobs::Ev::ClassTransition, dp,
                  static_cast<std::uint8_t>(classify(updated, node_)),
                  traced_word);
            traced = true;
          }
          notify(r);
        });
        break;
      }
      case 1: {
        // SW→MW: only the previous single writer needs to know (§3.5) —
        // for everyone else SW-other and MW mean the same thing.
        const int w = prev.single_writer();
        if (w != node_ && !notified.test(w)) {
          ++stats_.transitions_caused;
          trace(argoobs::Ev::ClassTransition, dp,
                static_cast<std::uint8_t>(classify(updated, node_)),
                traced_word);
          notify(w);
        }
        break;
      }
      default:
        break;  // already MW: no action needed
    }
  }
  if (!batch.empty()) dir_.cache_merge_remote_batch(node_, std::move(batch));
  return healed;
}

void NodeCache::heal_from_checkpoint(int owner, std::uint64_t page) {
  assert(peers_ && "naive P/S healing requires peer registration");
  // A crashed owner's checkpoint is gone with it; whatever it never wrote
  // back is lost (the same conservative semantics as lost pages).
  if (membership_ != nullptr && !membership_->is_live(owner)) return;
  NodeCache& oc = *(*peers_)[static_cast<std::size_t>(owner)];
  auto it = oc.checkpoints_.find(page);
  if (it == oc.checkpoints_.end())
    return;  // owner never synced a dirty copy: home already holds all the
             // data DRF entitles us to
  const std::byte* ckpt = it->second.get();  // stable across rehash/refresh
  ++stats_.heals;
  std::byte scratch[kPageSize];
  net_.read(node_, owner, ckpt, scratch, kPageSize);
  const GAddr base = page * kPageSize;
  net_.write(node_, gmem_.home_of_page(page), gmem_.home_ptr(base), scratch,
             kPageSize);
  // A heal rewrites home *content*; translations are pointers, so none can
  // actually dangle — but the event is on the invalidation list (tlb.hpp),
  // and over-bumping costs one extra miss at most.
  ++tlb_gen_;
}

// ---------------------------------------------------------------------------
// Fills, evictions, writebacks
// ---------------------------------------------------------------------------

void NodeCache::fetch_line_locked(Line& l, std::uint64_t group) {
  const std::uint64_t first = group * cfg_.pages_per_line;
  const std::uint64_t last =
      std::min<std::uint64_t>(first + cfg_.pages_per_line, gmem_.pages());
  ++stats_.line_fetches;
  ++tlb_gen_;  // a fill changes residency: conservative, see tlb.hpp
  // Fetch contiguous runs of invalid pages that share a home node with one
  // RDMA read each (own-home pages are never cached; they stay invalid).
  // With pipelining the reads are posted back to back — the runs' wire
  // latencies overlap — and retired together before the pages turn valid.
  // The latch is held throughout, so the slots and line buffer are stable
  // until the posted memcpys have landed.
  struct Fetched {
    std::uint64_t begin, end;
  };
  std::vector<Fetched> posted_runs;
  std::uint64_t p = first;
  while (p < last) {
    PageSlot& s = slot_of(l, p);
    const int home = gmem_.home_of_page(p);
    if (s.valid || home == node_) {
      ++p;
      continue;
    }
    std::uint64_t end = p + 1;
    while (end < last && !slot_of(l, end).valid &&
           gmem_.home_of_page(end) == home)
      ++end;
    const std::size_t bytes = (end - p) * kPageSize;
    stats_.pages_fetched += end - p;
    stats_.bytes_fetched += bytes;
    if (tracer_) trace(argoobs::Ev::LineFill, p, traced_state(p), bytes);
    if (pipelined()) {
      net_.post_read(node_, home, gmem_.home_ptr(p * kPageSize),
                     page_data(l, p), bytes);
      posted_runs.push_back(Fetched{p, end});
    } else {
      net_.read(node_, home, gmem_.home_ptr(p * kPageSize), page_data(l, p),
                bytes);
      for (std::uint64_t q = p; q < end; ++q) {
        PageSlot& qs = slot_of(l, q);
        qs.valid = true;
        qs.dirty = false;
        qs.in_wb = false;
        qs.prefetched = false;
        qs.twin.reset();
      }
    }
    p = end;
  }
  if (!posted_runs.empty()) {
    net_.wait_all(node_);
    for (const Fetched& r : posted_runs)
      for (std::uint64_t q = r.begin; q < r.end; ++q) {
        PageSlot& qs = slot_of(l, q);
        qs.valid = true;
        qs.dirty = false;
        qs.in_wb = false;
        qs.prefetched = false;
        qs.twin.reset();
      }
  }
}

void NodeCache::evict_line_locked(Line& l) {
  if (l.group == kNoGroup) return;
  for (std::size_t i = 0; i < cfg_.pages_per_line; ++i) {
    PageSlot& s = l.pages[i];
    if (!s.valid) continue;
    const std::uint64_t page = l.group * cfg_.pages_per_line + i;
    const bool was_dirty = s.dirty;
    if (s.dirty) {
      writeback_locked(l, page);
      // Keep the naive-P/S checkpoint in sync with what we just flushed so
      // a later heal can never rewind the home copy behind this flush.
      if (cfg_.classification == Mode::PSNaive) refresh_checkpoint(l, page);
    }
    s.valid = false;
    // Bumped adjacent to the residency change, NOT once per eviction: the
    // dirty-page writebacks above yield, and a translation inserted by
    // another fiber during that window must still be revoked here.
    ++tlb_gen_;
    s.twin.reset();
    ++stats_.evictions;
    if (tracer_)
      trace(argoobs::Ev::Eviction, page, traced_state(page),
            was_dirty ? 1 : 0);
  }
  l.group = kNoGroup;
}

void NodeCache::refresh_checkpoint(Line& l, std::uint64_t page) {
  auto& buf = checkpoints_[page];
  if (!buf) buf = pool_.acquire(kPageSize);
  std::memcpy(buf.get(), page_data(l, page), kPageSize);
  argosim::delay(net_.config().mem_copy(kPageSize));
  ++stats_.checkpoints;
  stats_.checkpoint_bytes += kPageSize;
  ++tlb_gen_;  // checkpoint/diff-base refresh is on the invalidation list
  // The diff base must advance to the synchronization point: once this page
  // turns shared, "any further writes must be self-downgraded ... as a diff"
  // (§3.4.2) — a diff of the writes since the last sync, not since the
  // original write-allocate. Otherwise a late downgrade would re-transmit
  // pre-checkpoint bytes and could overwrite writes other nodes made in
  // later, properly synchronized epochs.
  PageSlot& s = slot_of(l, page);
  if (s.dirty) {
    if (!s.twin) s.twin = pool_.acquire(kPageSize);
    std::memcpy(s.twin.get(), page_data(l, page), kPageSize);
  }
}

void NodeCache::release_wb_slot(PageSlot& s) {
  s.dirty = false;
  // The page left the dirty + write-buffered window, so any thread-held
  // write translation for it must die: the next store has to re-twin and
  // re-queue. Covers writeback retire, capacity drains and fence drains.
  ++tlb_gen_;
  if (s.in_wb) {
    s.in_wb = false;
    --wb_live_;
    wb_slot_waiters_.notify_all();
  }
  s.twin.reset();
}

void NodeCache::writeback_locked(Line& l, std::uint64_t page) {
  PageSlot& s = slot_of(l, page);
  assert(s.valid && s.dirty);
  std::byte* cur = page_data(l, page);
  const GAddr base = page * kPageSize;
  std::byte* home = gmem_.home_ptr(base);
  const int home_node = gmem_.home_of_page(page);
  const DirEntry w = dir_.cache_get(node_, dir_page(page));

  const bool sole_writer = w.sole_writer(node_);
  std::size_t wire = 0;
  bool full = !s.twin || (cfg_.sw_diff_suppression && sole_writer);
  if (!full && sole_writer && adapt_.diff_active()) {
    // Density policy (b): when this page's diff history says its diffs are
    // dense, a single full-page write beats the twin scan + run headers.
    // Gated on sole_writer — the same DRF disjointness argument that makes
    // sw_diff_suppression safe; multi-writer pages always diff.
    bool flipped = false;
    if (adapt_.prefer_full_page(page, flipped)) full = true;
    if (flipped)
      trace(argoobs::Ev::AdaptDiffMode, page, traced_state(page),
            full ? 1 : 0);
  }
  if (full) {
    // Whole-page downgrade: no diff scan, more wire bytes (§3.2's
    // bandwidth-for-latency trade). Safe: either nobody else writes this
    // page, or (defensively, missing twin) the values we'd "clobber" are
    // bytes no other node has flushed — DRF guarantees disjointness.
    wire = kPageSize;
    if (pipelined())
      net_.post_write(node_, home_node, home, cur, kPageSize);
    else
      net_.write(node_, home_node, home, cur, kPageSize);
    ++stats_.full_page_writebacks;
  } else {
    // Diff against the twin: scan both copies (charged as local memory
    // traffic), transmit only changed runs, apply them at the home. The
    // scan itself is host work only — the charge covers it whatever the
    // scanner — so the word-wise scanner must (and does, by construction
    // and by property test) emit exactly the reference runs. The scratch
    // vector is stolen from the member for the duration: the gather write
    // yields, and a concurrent writeback on another line must not clobber
    // the runs while this one is mid-flight.
    argosim::delay(net_.config().mem_copy(2 * kPageSize));
    std::vector<DiffRun> runs = std::move(diff_scratch_);
    runs.clear();
    const std::byte* twin = s.twin.get();
    if (argosim::slow_paths())
      diff_runs_reference(cur, twin, kPageSize, runs);
    else
      diff_runs(cur, twin, kPageSize, runs);
    ++stats_.diffs_built;
    if (runs.empty()) {
      // Nothing actually changed; no transmission needed.
      adapt_.note_diff(page, 0);
      diff_scratch_ = std::move(runs);
      release_wb_slot(s);
      return;
    }
    std::vector<argonet::GatherRun> gather;
    gather.reserve(runs.size());
    for (const DiffRun& r : runs) {
      wire += r.len + 8;
      gather.push_back(argonet::GatherRun{home + r.off, cur + r.off, r.len});
    }
    adapt_.note_diff(page, wire);
    if (pipelined()) {
      // One posted scatter-gather writeback for the whole page: the
      // payload is snapshotted at post time, so the diff for the *next*
      // buffer entry is computed while this one is on the wire.
      net_.post_write_gather(node_, home_node, gather, 8);
    } else {
      // Blocking scatter-gather: one wire transfer, runs applied at the
      // home at completion time (on the home's shard when sharded).
      net_.write_gather(node_, home_node, gather, 8);
    }
    diff_scratch_ = std::move(runs);
  }
  release_wb_slot(s);
  ++stats_.writebacks;
  stats_.writeback_bytes += wire;
  if (tracer_) trace(argoobs::Ev::Writeback, page, traced_state(page), wire);
}

void NodeCache::writeback(std::uint64_t page) {
  const std::uint64_t group = group_of(page);
  Line& l = line_of_group(group);
  lock_line(l);
  if (l.group == group) {  // group first: unclaimed lines have no slots
    PageSlot& s = slot_of(l, page);
    if (s.valid && s.dirty) {
      try {
        writeback_locked(l, page);
      } catch (...) {
        unlock_line(l);  // crashed home: release the latch before unwinding
        throw;
      }
    }
  }
  unlock_line(l);
}

bool NodeCache::drain_oldest() {
  const bool naive = cfg_.classification == Mode::PSNaive;
  auto is_live = [&](std::uint64_t page) {
    const std::uint64_t group = group_of(page);
    Line& l = line_of_group(group);
    if (l.group != group) return false;
    const PageSlot& s = slot_of(l, page);
    return s.valid && s.dirty && s.in_wb;
  };
  if (!naive) {
    // FIFO: stale leading entries (already written back or evicted) are
    // popped eagerly so the deque cannot grow without bound.
    while (!write_buffer_.empty()) {
      const std::uint64_t page = write_buffer_.front();
      write_buffer_.pop_front();
      if (!is_live(page)) continue;
      writeback(page);  // latches and re-validates internally
      return true;
    }
    return false;
  }
  // Naive P/S: prefer the oldest non-private entry (private pages are not
  // supposed to downgrade); fall back to a forced flush if all-private.
  // One compacting pass per attempt: stale entries ahead of the selection
  // point are dropped by a single rewrite (the seed erased them one
  // mid-deque erase at a time — O(n) per erase, quadratic per drain);
  // entries behind the selection point are left untouched, exactly like
  // the historical scan, so the buffer contents stay bit-identical.
  for (std::size_t attempt = 0; attempt < 2; ++attempt) {
    const bool allow_private = attempt == 1;
    const std::size_t n = write_buffer_.size();
    bool found = false;
    std::uint64_t sel = 0;
    std::size_t w = 0;
    std::size_t r = 0;
    for (; r < n; ++r) {
      const std::uint64_t page = write_buffer_[r];
      if (!is_live(page)) continue;  // drop stale entries as we scan
      if (!allow_private &&
          dir_.cache_get(node_, dir_page(page)).private_to(node_)) {
        write_buffer_[w++] = page;
        continue;
      }
      found = true;
      sel = page;
      ++r;  // the selected entry leaves the buffer too
      break;
    }
    if (w != r || r != n) {
      for (; r < n; ++r) write_buffer_[w++] = write_buffer_[r];
      write_buffer_.resize(w);
    }
    if (found) {
      const std::uint64_t group = group_of(sel);
      Line& l = line_of_group(group);
      lock_line(l);
      if (l.group == group && slot_of(l, sel).valid && slot_of(l, sel).dirty) {
        try {
          writeback_locked(l, sel);
          refresh_checkpoint(l, sel);
        } catch (...) {
          unlock_line(l);
          throw;
        }
      }
      unlock_line(l);
      return true;
    }
    if (write_buffer_.empty()) return false;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Fences (§3.1)
// ---------------------------------------------------------------------------

void NodeCache::si_fence() {
  for (;;) {
    try {
      si_fence_impl();
      return;
    } catch (const argonet::NodeFailedError& e) {
      // A dirty page's home crashed mid-sweep. Wait out the recovery and
      // re-run the fence against the successor homes; pages already
      // invalidated stay invalidated, so the re-run only finishes the job.
      if (!crash_failover(e)) throw;
    }
  }
}

void NodeCache::sd_fence() {
  for (;;) {
    try {
      sd_fence_impl();
      return;
    } catch (const argonet::NodeFailedError& e) {
      if (!crash_failover(e)) throw;
      // The throwing drain may have popped entries whose writebacks never
      // finished; put every still-dirty in_wb page back in the queue so
      // the re-run (and later capacity drains) can find them.
      requeue_stranded_wb();
    }
  }
}

void NodeCache::requeue_stranded_wb() {
  for (const std::size_t idx : occ_idx_) {
    Line& l = lines_[idx];
    if (l.group == kNoGroup) continue;
    for (std::size_t i = 0; i < l.pages.size(); ++i) {
      const PageSlot& s = l.pages[i];
      if (!(s.valid && s.dirty && s.in_wb)) continue;
      const std::uint64_t page = l.group * cfg_.pages_per_line + i;
      bool queued = false;
      for (const std::uint64_t q : write_buffer_) queued = queued || q == page;
      if (!queued) write_buffer_.push_back(page);
    }
  }
}

void NodeCache::si_fence_impl() {
  ++stats_.si_fences;
  const argosim::Time fence_start = argosim::now();
  const std::uint64_t inval_before = stats_.si_invalidations;
  trace(argoobs::Ev::SiFenceBegin, 0, argoobs::kUnknownState, 0);
  // Snapshot the occupied set into recycled scratch (the sweep yields at
  // latches and writebacks, so occ_idx_ cannot be iterated live). Taken
  // from a free list rather than rebuilt fresh per fence — concurrent
  // sweeps (DSM lock acquires fence from any thread) each take their own.
  std::vector<std::size_t> occ;
  if (!fence_scratch_.empty()) {
    occ = std::move(fence_scratch_.back());
    fence_scratch_.pop_back();
    occ.clear();
  }
  occ.insert(occ.end(), occ_idx_.begin(), occ_idx_.end());
  for (const std::size_t idx : occ) {
    Line& l = lines_[idx];
    if (l.group == kNoGroup) continue;
    lock_line(l);
    if (l.group == kNoGroup) {  // evicted while we waited for the latch
      unlock_line(l);
      continue;
    }
    try {
      for (std::size_t i = 0; i < cfg_.pages_per_line; ++i) {
        PageSlot& s = l.pages[i];
        if (!s.valid) continue;
        const std::uint64_t page = l.group * cfg_.pages_per_line + i;
        const DirEntry w = dir_.cache_get(node_, dir_page(page));
        const bool registered = w.is_reader(node_) || w.is_writer(node_);
        if (registered && !si_required(cfg_.classification, w, node_)) continue;
        if (s.dirty) writeback_locked(l, page);
        s.valid = false;
        // Per-invalidation bump (not once per fence): the writeback above
        // yields, and translations inserted by other fibers mid-sweep for
        // pages this sweep has not reached yet must still be revoked when
        // their turn comes.
        ++tlb_gen_;
        s.twin.reset();
        ++stats_.si_invalidations;
      }
    } catch (...) {
      unlock_line(l);  // crashed home mid-writeback; see si_fence
      throw;
    }
    unlock_line(l);
  }
  fence_scratch_.push_back(std::move(occ));
  // Retire any writebacks this sweep posted (free at pipeline depth 1:
  // the send queue is always empty there).
  net_.wait_all(node_);
  trace(argoobs::Ev::SiFenceEnd, 0, argoobs::kUnknownState,
        stats_.si_invalidations - inval_before);
  stats_.si_fence_ns.add(argosim::now() - fence_start);
  // Fence boundary = phase boundary for the sizing policy. Host work only;
  // charges no virtual time.
  if (const std::size_t cap = adapt_.sample_fence(
          argosim::now(), argosim::now() - fence_start, wb_live_))
    trace(argoobs::Ev::AdaptWbResize, 0, argoobs::kUnknownState, cap);
}

void NodeCache::sd_fence_impl() {
  ++stats_.sd_fences;
  if (cfg_.debug_skip_sd_fence) return;  // chaos knob: leave pages dirty
  const argosim::Time fence_start = argosim::now();
  const std::uint64_t wb_before = stats_.writebacks;
  trace(argoobs::Ev::SdFenceBegin, 0, argoobs::kUnknownState, wb_live_);
  const bool naive = cfg_.classification == Mode::PSNaive;
  // Drain in place: entries must stay visible to concurrent capacity
  // drains (hiding them in a local queue can starve a writer spinning for
  // a free buffer slot, which never yields in the cooperative simulator).
  // Naive P/S keeps its private pages dirty: they go to a side list that
  // is re-attached afterwards.
  std::deque<std::uint64_t> keep;
  std::size_t budget = write_buffer_.size() + wb_live_ + 1;
  while (!write_buffer_.empty() && budget-- > 0) {
    const std::uint64_t page = write_buffer_.front();
    write_buffer_.pop_front();
    const std::uint64_t group = group_of(page);
    Line& l = line_of_group(group);
    lock_line(l);
    PageSlot& s = slot_of(l, page);
    if (!(l.group == group && s.valid && s.dirty && s.in_wb)) {
      unlock_line(l);
      continue;  // stale entry
    }
    try {
      if (naive) {
        const DirEntry w = dir_.cache_get(node_, page);
        if (w.private_to(node_)) {
          // Naive P/S: private pages are not downgraded; instead the node
          // checkpoints them at every synchronization point so a later P→S
          // can be serviced (§3.4.2 "Naive Solution"). The page stays
          // dirty, so the checkpoint is re-taken at every future sync —
          // this is the accumulating overhead Figure 8 charges against
          // naive P/S.
          refresh_checkpoint(l, page);
          keep.push_back(page);  // keep tracking it
        } else {
          writeback_locked(l, page);
          // While we remain the page's sole writer, newcomers heal from
          // our checkpoint — keep it as fresh as what we just flushed.
          if (w.sole_writer(node_)) refresh_checkpoint(l, page);
        }
      } else {
        writeback_locked(l, page);
      }
    } catch (...) {
      unlock_line(l);  // crashed home mid-writeback; see sd_fence
      throw;
    }
    unlock_line(l);
  }
  for (std::uint64_t page : keep) write_buffer_.push_back(page);
  // Re-attached private entries are drainable again: wake writers that
  // parked on a full buffer while the fence had them popped.
  if (!keep.empty()) wb_slot_waiters_.notify_all();
  // Retire the posted writebacks — the whole drain's diffs were computed
  // back to back while earlier pages were on the wire; the fence ends when
  // the last one lands. Free at pipeline depth 1.
  net_.wait_all(node_);
  trace(argoobs::Ev::SdFenceEnd, 0, argoobs::kUnknownState,
        stats_.writebacks - wb_before);
  stats_.sd_fence_ns.add(argosim::now() - fence_start);
  // Fence boundary = phase boundary for the sizing policy. Host work only;
  // charges no virtual time.
  if (const std::size_t cap = adapt_.sample_fence(
          argosim::now(), argosim::now() - fence_start, wb_live_))
    trace(argoobs::Ev::AdaptWbResize, 0, argoobs::kUnknownState, cap);
}

// ---------------------------------------------------------------------------
// Stride prefetch (core/adapt.hpp, policy c)
// ---------------------------------------------------------------------------

void NodeCache::maybe_prefetch(std::uint64_t page, StrideTable* st) {
  const StrideTable::Prediction pred =
      st->note_miss(page, adapt_.config(), adapt_.stats());
  if (pred.degree == 0 || pred.stride == 0) return;
  // Usefulness governor: when most prefetched pages go untouched (short
  // per-thread slices whose streams end right after the stride confirms),
  // the blocking fills are a net loss. Stand down, but re-probe every
  // 32nd suppressed prediction — lazily credited touches of pages already
  // in flight can restore the ratio and turn the policy back on.
  AdaptStats& ast = adapt_.stats();
  if (ast.prefetched_pages >= 16 &&
      ast.prefetch_useful * 2 < ast.prefetched_pages &&
      ++ast.prefetch_suppressed % 32 != 0)
    return;
  ++ast.prefetch_issued;
  const std::uint64_t demand_group = group_of(page);
  const int demand_home = gmem_.home_of_page(page);
  std::size_t fetched = 0;
  for (int k = 1; k <= pred.degree; ++k) {
    const std::int64_t q = static_cast<std::int64_t>(page) +
                           static_cast<std::int64_t>(k) * pred.stride;
    if (q < 0) break;
    const std::uint64_t qp = static_cast<std::uint64_t>(q);
    if (qp >= gmem_.pages()) break;
    // Same-home widening only: the prediction extends the demand fill
    // within one home's segment. Crossing into another home's segment —
    // under the blocked distribution, typically another node's exclusive
    // slice — would register reader bits on pages this node may never
    // touch, flipping them P->S and taxing the real writer's fences.
    if (gmem_.home_of_page(qp) != demand_home) break;
    if (group_of(qp) == demand_group) continue;  // demand fill covers it
    try {
      fetched += try_prefetch_line(qp);
    } catch (const argonet::NodeFailedError& e) {
      // A predicted page's home crashed: a prefetch is the one place that
      // may simply give up — nothing downstream depends on it. Wait out
      // the recovery when the membership service can, then stop.
      if (membership_ != nullptr) crash_failover(e);
      break;
    } catch (const argonet::NetworkError&) {
      break;  // transient wire failure: best effort only
    }
  }
  if (fetched > 0) {
    adapt_.stats().prefetched_pages += fetched;
    trace(argoobs::Ev::AdaptPrefetch, page, argoobs::kUnknownState, fetched);
  }
}

std::size_t NodeCache::try_prefetch_line(std::uint64_t page) {
  const std::uint64_t group = group_of(page);
  Line& l = line_of_group(group);
  // Pollution guard: never displace. A line that is mid-fetch, already
  // holds the page, or holds a *different* group is left alone — the last
  // case also protects the demand line when the predicted group conflicts
  // with it in the direct-mapped array.
  auto blocked = [&] {
    if (l.fetching) return true;
    if (l.group == group) return slot_of(l, page).valid;
    return l.group != kNoGroup;
  };
  if (blocked()) return 0;
  if (!my_reader_bit_set(page)) {
    // The fill needs the reader registration just like a demand miss; the
    // fetch_or yields, so re-check everything it may have changed.
    register_access(page, /*for_write=*/false);
    if (gmem_.home_of_page(page) == node_) return 0;  // re-homed onto us
    if (blocked()) return 0;
  }
  lock_line(l);  // immediate: blocked() just saw fetching == false
  if (l.group != group) {
    l.group = group;
    occupy(group % cfg_.cache_lines);
    if (!l.data) l.data = pool_.acquire(cfg_.pages_per_line * kPageSize);
    if (l.pages.size() != cfg_.pages_per_line)
      l.pages.resize(cfg_.pages_per_line);
    for (auto& s : l.pages) {
      s.valid = false;
      s.dirty = false;
      s.in_wb = false;
      s.prefetched = false;
      s.twin.reset();
    }
  }
  // Snapshot which slots were already valid: only the newly filled ones
  // are this prefetch's doing. (The node-global pages_fetched delta would
  // over-count — the fill yields, and other fibers fetch meanwhile.)
  std::uint64_t pre = 0;
  for (std::size_t i = 0; i < l.pages.size(); ++i)
    if (l.pages[i].valid) pre |= std::uint64_t{1} << i;
  try {
    fetch_line_locked(l, group);
  } catch (...) {
    // A failed fill leaves the claimed line all-invalid — the same state
    // every demand path already handles — but the latch must not wedge.
    unlock_line(l);
    throw;
  }
  std::size_t fetched = 0;
  for (std::size_t i = 0; i < l.pages.size(); ++i) {
    PageSlot& s = l.pages[i];
    if (s.valid && (pre & (std::uint64_t{1} << i)) == 0) {
      s.prefetched = true;  // cleared (and credited) on first demand touch
      ++fetched;
    }
  }
  unlock_line(l);
  return fetched;
}

// ---------------------------------------------------------------------------
// Crash recovery (core/membership.hpp)
// ---------------------------------------------------------------------------

bool NodeCache::crash_failover(const argonet::NodeFailedError& e) {
  if (membership_ == nullptr) return false;
  // Block until the first detector finishes re-homing the dead node's
  // pages; every retried access then routes to the successor. The op that
  // observed the crash was aborted mid-flight (it is retried against the
  // successor), and posted ops the crash aborted are banked in the
  // interconnect — account both.
  membership_->await_recovery(e.dst());
  membership_->note_aborted(net_.take_aborted_posted(node_) + 1);
  return true;
}

const std::byte* NodeCache::host_page_image(std::uint64_t page, bool* dirty) {
  const std::uint64_t group = group_of(page);
  Line& l = line_of_group(group);
  if (l.group != group || l.fetching) return nullptr;
  PageSlot& s = slot_of(l, page);
  if (!s.valid) return nullptr;
  *dirty = s.dirty;
  return page_data(l, page);
}

bool NodeCache::host_drop_page(std::uint64_t page) {
  const std::uint64_t group = group_of(page);
  Line& l = line_of_group(group);
  if (l.group != group || l.fetching) return false;
  PageSlot& s = slot_of(l, page);
  if (!s.valid || s.dirty) return false;  // dirty copies survive (see .hpp)
  s.valid = false;
  s.twin.reset();
  ++tlb_gen_;  // residency changed under the threads' feet
  return true;
}

bool NodeCache::host_adopt_page(std::uint64_t page) {
  const std::uint64_t group = group_of(page);
  Line& l = line_of_group(group);
  if (l.group != group || l.fetching) return false;
  PageSlot& s = slot_of(l, page);
  if (!s.valid) return false;
  if (s.dirty) release_wb_slot(s);  // also wakes writers parked on the buffer
  s.valid = false;
  s.twin.reset();
  ++tlb_gen_;  // residency changed under the threads' feet
  return true;
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void NodeCache::invalidate_all_free() {
  assert(dirty_pages() == 0 &&
         "reset_classification requires a clean cache (barrier first)");
  for (const std::size_t idx : occ_idx_) {
    Line& l = lines_[idx];
    assert(!l.fetching);
    l.group = kNoGroup;
    for (auto& s : l.pages) {
      s.valid = false;
      s.dirty = false;
      s.in_wb = false;
      s.prefetched = false;
      s.twin.reset();
    }
    occ_bits_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }
  occ_idx_.clear();
  ++tlb_gen_;  // every translation any thread holds is now invalid
  write_buffer_.clear();
  wb_live_ = 0;
  // Adaptive runtime state (capacity, density history, phase accumulators)
  // starts over with the cache: the pages it described are gone.
  adapt_.reset_runtime();
  // Shrink: drop the page images AND any oversized bucket table a long
  // initialization phase grew, then re-reserve the steady-state sizing so
  // the measured phase starts rehash-free.
  checkpoints_.clear();
  if (cfg_.classification == Mode::PSNaive) {
    const std::size_t want = checkpoint_reserve();
    if (checkpoints_.bucket_count() >
        2 * want / checkpoints_.max_load_factor()) {
      std::unordered_map<std::uint64_t, argomem::PageBuf>{}.swap(checkpoints_);
      checkpoints_.reserve(want);
    }
  }
}

std::size_t NodeCache::resident_pages() const {
  std::size_t n = 0;
  for (const std::size_t idx : occ_idx_)
    for (const auto& s : lines_[idx].pages) n += s.valid ? 1 : 0;
  return n;
}

std::size_t NodeCache::dirty_pages() const {
  std::size_t n = 0;
  for (const std::size_t idx : occ_idx_)
    for (const auto& s : lines_[idx].pages) n += (s.valid && s.dirty) ? 1 : 0;
  return n;
}

std::vector<NodeCache::CachedPage> NodeCache::cached_pages() const {
  std::vector<CachedPage> out;
  for (const std::size_t idx : occ_idx_) {
    const Line& l = lines_[idx];
    if (l.group == kNoGroup) continue;
    for (std::size_t i = 0; i < l.pages.size(); ++i) {
      const PageSlot& s = l.pages[i];
      if (s.valid)
        out.push_back({l.group * cfg_.pages_per_line + i, s.dirty, s.in_wb});
    }
  }
  return out;
}

}  // namespace argocore
