#include "core/adapt.hpp"

namespace argocore {

AdaptEngine::AdaptEngine(const AdaptConfig& cfg, std::size_t base_wb_pages,
                         bool protocol_supported)
    : cfg_(cfg), base_wb_(base_wb_pages), supported_(protocol_supported) {
  wb_capacity_ = std::clamp(base_wb_, cfg_.wb_min_pages, cfg_.wb_max_pages);
  if (!cfg_.write_buffer) wb_capacity_ = base_wb_;
  history_.push_back(static_cast<std::uint32_t>(wb_capacity_));
}

void AdaptEngine::note_drain_stall(std::uint64_t ns) {
  if (!wb_active()) return;
  phase_stall_ns_ += ns;
  ++phase_drains_;
}

void AdaptEngine::note_wb_admit(std::size_t live_after) {
  if (!wb_active()) return;
  ++phase_admits_;
  phase_peak_ = std::max(phase_peak_, live_after);
}

namespace {
std::size_t pow2_at_least(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

// Hill-climb on the one quantity that folds every trade-off in: the phase
// length itself, measured fence-to-fence in virtual time. Mid-phase
// overflow drains overlap other fibers' compute while the SD fence drain
// serializes behind the barrier, so an oversized buffer is the common
// failure mode — exploration defaults downward and growth needs measured
// admission-stall pressure. Every move is judged against the next phase
// and reverted (with exponential backoff) when it made things slower.
std::size_t AdaptEngine::sample_fence(std::uint64_t now_ns,
                                      std::uint64_t fence_ns,
                                      std::size_t live) {
  if (!wb_active()) return 0;
  // A phase without admissions carries no write-buffer signal (typically
  // the second fence of a barrier). Keep accumulating into the next one.
  if (phase_admits_ == 0) return 0;
  // The stretch before the first acting fence includes allocation and
  // first-touch — not a phase. Start the clock here and decide nothing.
  if (!primed_) {
    primed_ = true;
    phase_stall_ns_ = 0;
    phase_drains_ = 0;
    phase_admits_ = 0;
    phase_peak_ = 0;
    phase_start_ns_ = now_ns;
    return 0;
  }
  const std::uint64_t phase_ns = now_ns - phase_start_ns_;
  const std::uint64_t stall = phase_stall_ns_;
  const std::uint64_t drains = phase_drains_;
  const std::uint64_t admits = phase_admits_;
  const std::size_t peak = phase_peak_;
  phase_stall_ns_ = 0;
  phase_drains_ = 0;
  phase_admits_ = 0;
  phase_peak_ = 0;
  phase_start_ns_ = now_ns;
  const std::size_t old = wb_capacity_;

  // Vetoes age out: the workload that produced the evidence may be gone
  // (LU's early phases want growth its late phases must undo).
  if (grow_veto_ttl_ > 0 && --grow_veto_ttl_ == 0) bad_grow_from_ = 0;
  if (shrink_veto_ttl_ > 0 && --shrink_veto_ttl_ == 0) bad_shrink_from_ = 0;

  // Stall pressure: virtual ns lost to a full buffer per admitted store.
  // Half-weight on the newest phase: an undersized buffer (e.g. after a
  // shrink the judge let through on a quiet phase) must raise pressure
  // within a phase or two, not a dozen.
  ewma_stall_ = (ewma_stall_ + stall / admits) / 2;

  // Judge the move made at the previous acting fence. The baseline is the
  // phase two samples back — the same-parity phase, because apps like LU
  // alternate long and short phases and a consecutive-phase baseline
  // would misjudge every move at a parity boundary, in both directions —
  // scaled by the workload's natural phase-to-phase drift (LU's phases
  // shorten as the trailing matrix shrinks; without drift compensation
  // that downward trend masks the damage of a bad grow). "Worse" means
  // the post-move phase ran >1/64 (~1.6%) over that expectation. A
  // shrink's only harm channel is overflow stalls, so a slower phase with
  // zero stall time is workload noise, not the shrink's fault: keep it.
  // A grow is the mirror image: its only benefit channel is stall relief
  // while its fence cost is certain, so a grow that did not strictly
  // improve the phase is reverted — "no worse" is not good enough when
  // the move has a guaranteed downside.
  // A reverted halve/grow vetoes retrying the same direction from the
  // same capacity — one failed probe per (capacity, direction), not a
  // probe tax every backoff phases; a reverted jump only disables jumping
  // (the cautious halve from the same capacity may still pay off). A move
  // that strictly improved vetoes the opposite direction from the new
  // capacity, so judgment noise can't cycle the capacity back and forth
  // across a boundary one side of which is proven better.
  //
  // The judged score is phase + 3x fence: the fence runs inside the
  // barrier, so its cost lands on the OTHER nodes' next phases, not the
  // mover's own — judged on its own phase alone, a grow whose fence bloat
  // stalls the rest of the cluster still "strictly improves" and gets
  // kept. The weight stands in for the peers made to wait.
  const std::uint64_t score = phase_ns + 3 * fence_ns;
  const std::uint64_t base =
      prev2_phase_ns_ > 0 ? prev2_phase_ns_ : prev_phase_ns_;
  if (!moved_ && prev2_phase_ns_ > 0) {
    const std::uint64_t inst = std::clamp<std::uint64_t>(
        score * 256 / prev2_phase_ns_, 128, 512);
    drift256_ = static_cast<std::uint32_t>((3 * drift256_ + inst) / 4);
  }
  bool reverted = false;
  if (moved_) {
    moved_ = false;
    const std::uint64_t expected = base * drift256_ / 256;
    bool worse;
    if (moved_dir_ > 0) {
      worse = expected > 0 && score + expected / 64 >= expected;
      // A grow's only benefit channel is overflow-stall relief. If the
      // post-grow stall rate did not at least halve, the capacity was not
      // what throttled the phase — whatever sped it up was the workload's
      // own trend, and keeping the grow would bank phantom credit.
      if (!worse && stall / admits * 2 > moved_pre_stall_) worse = true;
    } else {
      worse = expected > 0 && score > expected + expected / 64;
      if (worse && stall == 0) worse = false;
    }
    if (worse) {
      wb_capacity_ = prev_cap_;
      // A second failed probe of the same (capacity, direction) pair after
      // the first veto aged out settles the question for the rest of the
      // run — re-probing a proven boundary every TTL is a steady tax.
      if (moved_dir_ > 0) {
        bad_grow_from_ = prev_cap_;
        grow_veto_ttl_ =
            prev_cap_ == last_grow_veto_cap_ ? kVetoPhases * 64 : kVetoPhases;
        last_grow_veto_cap_ = prev_cap_;
      } else if (moved_was_jump_) {
        jump_blocked_ = true;
      } else {
        bad_shrink_from_ = prev_cap_;
        shrink_veto_ttl_ = prev_cap_ == last_shrink_veto_cap_ ? kVetoPhases * 64
                                                              : kVetoPhases;
        last_shrink_veto_cap_ = prev_cap_;
      }
      dir_ = -moved_dir_;
      hold_ = backoff_;
      backoff_ = std::min(backoff_ * 2, cfg_.wb_revert_backoff);
      prev_phase_ns_ = 0;  // the baseline is stale once we jump back
      prev2_phase_ns_ = 0;
      ++stats_.wb_reverts;
      reverted = true;
    } else {
      if (expected > 0 && score + expected / 64 < expected) {
        if (moved_dir_ < 0) {
          bad_grow_from_ = wb_capacity_;
          grow_veto_ttl_ = kVetoPhases;
        } else {
          bad_shrink_from_ = wb_capacity_;
          shrink_veto_ttl_ = kVetoPhases;
        }
      }
      backoff_ = 1;  // the move held: future reverts start cheap again
      // Settle for one phase after a kept grow: drift only learns on
      // no-move phases, and a chain of back-to-back kept grows would be
      // judged against an ever-staler trend estimate — on workloads whose
      // phases naturally shorten (LU) that credits every grow with the
      // workload's own improvement. Shrinks walk at full speed: their
      // failure mode (overflow stall) is observed directly, not inferred
      // from the trend.
      if (moved_dir_ > 0) hold_ = std::max(hold_, 1);
    }
  }
  if (!reverted) {
    prev2_phase_ns_ = prev_phase_ns_;
    prev_phase_ns_ = score;
  }

  const bool pressure = ewma_stall_ >= cfg_.wb_grow_stall_ns;
  if (pressure && wb_capacity_ != bad_grow_from_) dir_ = +1;

  // Shrinking attacks the fence drain; when this fence cost under ~3% of
  // the phase there is nothing worth probing for (and a probe could only
  // add noise-driven churn).
  const bool fence_matters = fence_ns * 32 >= phase_ns;

  // Moves need a trustworthy baseline to be judged against: a jump can
  // fire after one real phase (its evidence is occupancy, not the phase
  // comparison), but hill-climb steps wait for two (the same-parity
  // baseline). Reverts clear the baselines, so this doubles as a
  // measurement pause after every revert.
  const bool can_jump = prev_phase_ns_ > 0;
  const bool can_climb = prev2_phase_ns_ > 0;

  if (reverted) {
    // fall through to report the restored capacity
  } else if (hold_ > 0) {
    --hold_;
  } else if (dir_ < 0) {
    // Capacity never moves below what is still queued (SI fences don't
    // drain), nor below the configured floor.
    const std::size_t floor_pages =
        std::max(cfg_.wb_min_pages, pow2_at_least(std::max<std::size_t>(live, 1)));
    std::size_t next = wb_capacity_;
    bool jumped = false;
    // Grossly oversized (buffers sized for a different phase, or a sweep
    // starting point far above need): jump straight to 4x the observed
    // occupancy instead of halving once per fence. The jump is a move
    // like any other — a slower, stalling next phase reverts it.
    if (can_jump && !jump_blocked_) {
      const std::size_t target =
          std::clamp(pow2_at_least(4 * std::max(peak, live)), floor_pages,
                     cfg_.wb_max_pages);
      if (target < wb_capacity_ / 2) {
        next = target;
        jumped = true;
      }
    }
    if (!jumped && can_climb) next = std::max(wb_capacity_ / 2, floor_pages);
    if (fence_matters && next < wb_capacity_ && next >= floor_pages &&
        wb_capacity_ != bad_shrink_from_) {
      prev_cap_ = old;
      wb_capacity_ = next;
      moved_ = true;
      moved_dir_ = -1;
      moved_was_jump_ = jumped;
      ++stats_.wb_shrinks;
    } else if (drains > 0 && wb_capacity_ != bad_grow_from_) {
      dir_ = +1;  // at the floor and still overflowing: probe up next fence
    }
  } else {
    if (pressure && can_climb && wb_capacity_ != bad_grow_from_ &&
        wb_capacity_ < cfg_.wb_max_pages) {
      prev_cap_ = old;
      wb_capacity_ = std::min(wb_capacity_ * 2, cfg_.wb_max_pages);
      moved_ = true;
      moved_dir_ = +1;
      moved_was_jump_ = false;
      moved_pre_stall_ = stall / admits;
      ++stats_.wb_grows;
    } else if (!pressure || wb_capacity_ == bad_grow_from_) {
      dir_ = -1;  // nothing (allowed) pushing up: resume downward search
    }
  }

  if (wb_capacity_ == old) return 0;
  if (history_.size() < kHistoryCap)
    history_.push_back(static_cast<std::uint32_t>(wb_capacity_));
  return wb_capacity_;
}

void AdaptEngine::note_diff(std::uint64_t page, std::size_t wire_bytes) {
  if (!diff_active()) return;
  const unsigned frac = static_cast<unsigned>(
      std::min<std::size_t>(255, wire_bytes * 256 / argomem::kPageSize));
  Density& d = density_[page];
  d.ewma = static_cast<std::uint8_t>(d.seen ? (3u * d.ewma + frac) / 4u : frac);
  d.streak = frac >= cfg_.dense_frac256
                 ? static_cast<std::uint8_t>(std::min(255u, d.streak + 1u))
                 : std::uint8_t{0};
  d.seen = true;
}

bool AdaptEngine::prefer_full_page(std::uint64_t page, bool& flipped) {
  flipped = false;
  if (!diff_active()) return false;
  auto it = density_.find(page);
  if (it == density_.end() || !it->second.seen) return false;
  Density& d = it->second;
  // Dense needs both a dense EWMA and a run of consecutive dense diffs:
  // the streak keeps alternating dense/clean pages on the diff path, and
  // the EWMA (knocked below threshold by a single sparse probe) flips a
  // sparsified page back after at most one probe interval.
  const bool dense =
      d.ewma >= cfg_.dense_frac256 && d.streak >= cfg_.dense_streak;
  flipped = dense != d.last_full;  // classification change, not probe noise
  d.last_full = dense;
  if (!dense) return false;
  if (cfg_.density_probe_interval > 0 &&
      ++d.decisions % cfg_.density_probe_interval == 0) {
    // Periodic probe: diff a dense page anyway so the EWMA keeps seeing
    // real wire bytes and can flip back when the page sparsifies.
    ++stats_.density_probes;
    return false;
  }
  ++stats_.full_page_selected;
  return true;
}

void AdaptEngine::reset_runtime() {
  wb_capacity_ = std::clamp(base_wb_, cfg_.wb_min_pages, cfg_.wb_max_pages);
  if (!cfg_.write_buffer) wb_capacity_ = base_wb_;
  phase_stall_ns_ = 0;
  phase_drains_ = 0;
  phase_admits_ = 0;
  phase_peak_ = 0;
  phase_start_ns_ = 0;
  primed_ = false;
  ewma_stall_ = 0;
  prev_phase_ns_ = 0;
  prev2_phase_ns_ = 0;
  drift256_ = 256;
  prev_cap_ = 0;
  moved_ = false;
  moved_was_jump_ = false;
  moved_pre_stall_ = 0;
  moved_dir_ = 0;
  dir_ = -1;
  hold_ = 0;
  backoff_ = 1;
  bad_grow_from_ = 0;
  bad_shrink_from_ = 0;
  grow_veto_ttl_ = 0;
  shrink_veto_ttl_ = 0;
  last_grow_veto_cap_ = 0;
  last_shrink_veto_cap_ = 0;
  jump_blocked_ = false;
  history_.clear();
  history_.push_back(static_cast<std::uint32_t>(wb_capacity_));
  density_.clear();
}

}  // namespace argocore
