// Configuration for Argo's Carina coherence layer and the cluster facade.
#pragma once

#include <cstddef>

#include "core/adapt.hpp"
#include "core/membership.hpp"
#include "mem/global_memory.hpp"
#include "net/faults.hpp"
#include "net/netconfig.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace argocore {

/// Data classification modes (paper Table 1 and §5.1).
enum class Mode {
  S,        ///< no classification: every page self-invalidates/downgrades
  PSNaive,  ///< P/S where private pages are NOT self-downgraded; P→S is
            ///< serviced from per-sync checkpoints (the §5.1 strawman)
  PS,       ///< P/S with private-page self-downgrade (Table 1 "Simple")
  PS3,      ///< full P/S + writer (NW/SW/MW) classification (Argo default)
};

const char* to_string(Mode m);

/// Per-node page cache + write buffer geometry.
struct CacheConfig {
  /// Direct-mapped line slots in the page cache.
  std::size_t cache_lines = 4096;

  /// Consecutive pages fetched per miss ("cache line size", §3.6.2).
  std::size_t pages_per_line = 1;

  /// FIFO write buffer capacity in pages (§3.6.1). When full, the oldest
  /// dirty page is written back to its home.
  std::size_t write_buffer_pages = 512;

  /// Classification mode used to filter self-invalidation.
  Mode classification = Mode::PS3;

  /// Single-writer diff suppression (§3.2 "left for future work",
  /// implemented here as an option): a page whose writer map equals {me}
  /// at downgrade time is written back whole, skipping the diff scan —
  /// trading wire bytes for downgrade latency. Twins are still kept so a
  /// late transition to multiple writers can always fall back to diffing.
  bool sw_diff_suppression = false;

  /// CPU cost of taking a page-cache miss (the original system's SIGSEGV +
  /// fault-handler entry), charged once per miss before the protocol runs.
  argosim::Time fault_overhead = 1500;

  /// Test-only chaos knob: skip the SD fence on barriers/releases so dirty
  /// pages are never downgraded. Deliberately breaks coherence — exists so
  /// the ProtocolValidator's tests can prove a protocol hole is caught.
  bool debug_skip_sd_fence = false;
};

/// Whole-cluster configuration.
struct ClusterConfig {
  int nodes = 4;
  int threads_per_node = 4;

  /// Size of the global (DSM) address space. Like the paper's runs, size it
  /// to fit the workload: the home distribution spreads it over the nodes.
  std::size_t global_mem_bytes = 64u << 20;

  argomem::HomeMapping mapping = argomem::HomeMapping::Blocked;
  CacheConfig cache;
  argonet::NetConfig net;
  argonet::NodeTopology topo;

  /// Deterministic fault injection (net/faults.hpp). Disabled by default;
  /// when disabled the interconnect never consults the injector and all
  /// virtual times match a fault-free build exactly.
  argonet::FaultConfig faults;

  /// Protocol event tracing (obs/trace.hpp). Disabled by default; tracing
  /// never charges virtual time, so enabling it changes no measurements —
  /// and disabling it reduces every emit point to one predicted branch.
  argoobs::TraceConfig trace;

  /// Crash-stop membership / recovery service (core/membership.hpp).
  /// Disabled by default: no heartbeat fibers are spawned, no membership
  /// metrics are registered, and every virtual time matches a build
  /// without the feature exactly.
  MembershipConfig membership;

  /// Adaptive runtime tuning policies (core/adapt.hpp). All disabled by
  /// default: no adapt metrics are registered and every trace/stat/virtual
  /// time matches the fixed-knob behaviour exactly. ARGO_NO_ADAPT=1 forces
  /// the same regardless of these flags.
  AdaptConfig adapt;

  /// Sharded-engine worker count for this cluster (sim/par.hpp):
  ///   0  inherit the process-wide ARGO_THREADS / ARGO_SEQ_ENGINE toggles
  ///      (both unset: the legacy single-queue engine, the seed behaviour)
  ///   1  sharded engine, one worker — the sequential reference
  ///   N  sharded engine, N host workers
  /// ARGO_SEQ_ENGINE=1 overrides any positive value down to one worker.
  /// Features that need same-time cross-shard wakeups (membership,
  /// barrier hooks, op-count crash triggers) fall back to the legacy
  /// engine with a stderr notice.
  int engine_threads = 0;

  /// Throw std::invalid_argument with a descriptive message when the
  /// configuration is unusable — in particular a `nodes` count outside
  /// [1, argodir::max_nodes()], the build-time ceiling of the multi-word
  /// directory encoding. Called by the Cluster constructor; callers that
  /// want to reject bad configs before constructing can call it directly.
  void validate() const;
};

}  // namespace argocore
