#include "core/membership.hpp"

#include <cassert>
#include <cstring>

#include "core/carina.hpp"
#include "dir/pyxis.hpp"
#include "mem/global_memory.hpp"
#include "net/faults.hpp"
#include "net/interconnect.hpp"
#include "sim/engine.hpp"

namespace argocore {

using argosim::Time;

MembershipService::MembershipService(argosim::Engine& eng,
                                     argonet::Interconnect& net,
                                     argomem::GlobalMemory& gmem,
                                     argodir::PyxisDirectory& dir,
                                     MembershipConfig cfg, int nodes)
    : eng_(eng),
      net_(net),
      gmem_(gmem),
      dir_(dir),
      cfg_(cfg),
      nodes_(nodes),
      views_(static_cast<std::size_t>(nodes)),
      detect_time_(static_cast<std::size_t>(nodes), 0),
      workers_(static_cast<std::size_t>(nodes)),
      reaped_(static_cast<std::size_t>(nodes), false) {}

void MembershipService::begin_run(int active_nodes) {
  active_nodes_ = active_nodes;
  if (!cfg_.enabled) return;

  // Liveness persists across runs: a node that crashed in a previous run
  // stays dead (and its fresh worker fibers are reaped at t=run-start).
  argodir::NodeSet alive;
  for (int n = 0; n < active_nodes_; ++n)
    if (is_live(n)) alive.set(n);
  for (int n = 0; n < active_nodes_; ++n) views_[n].live = alive;
  barrier_.configure(active_nodes_);
  for (int n = 0; n < active_nodes_; ++n)
    if (!is_live(n)) barrier_.on_node_departed(n);

  for (auto& w : workers_) w.clear();
  std::fill(reaped_.begin(), reaped_.end(), false);

  // One monitor per live node (daemons_[n]; nullptr for dead nodes) plus
  // the reaper at daemons_[active_nodes_]. Spawn order fixes the tie-break
  // when several monitors tick at the same virtual instant.
  daemons_.assign(static_cast<std::size_t>(active_nodes_) + 1, nullptr);
  for (int n = 0; n < active_nodes_; ++n) {
    if (!is_live(n)) continue;
    daemons_[n] = eng_.spawn("membership-monitor-" + std::to_string(n),
                             [this, n] { monitor_body(n); },
                             /*daemon=*/true);
  }
  daemons_[active_nodes_] =
      eng_.spawn("membership-reaper", [this] { reaper_body(); },
                 /*daemon=*/true);
}

void MembershipService::end_run() {
  if (!cfg_.enabled) return;
  for (argosim::SimThread* d : daemons_) eng_.kill(d);
  daemons_.clear();
  for (auto& w : workers_) w.clear();
}

void MembershipService::note_worker(int node, argosim::SimThread* t) {
  if (!cfg_.enabled) return;
  workers_[static_cast<std::size_t>(node)].push_back(t);
}

void MembershipService::await_recovery(int node) {
  assert(cfg_.enabled);
  while (!recovered_mask_.test(node)) recovery_waiters_.wait();
}

void MembershipService::register_lock(RecoverableLock* l) {
  locks_.push_back(l);
}

void MembershipService::deregister_lock(RecoverableLock* l) {
  for (auto it = locks_.begin(); it != locks_.end(); ++it) {
    if (*it == l) {
      locks_.erase(it);
      return;
    }
  }
}

void MembershipService::monitor_body(int self) {
  std::vector<int> misses(static_cast<std::size_t>(active_nodes_), 0);
  for (;;) {
    argosim::delay(cfg_.heartbeat_interval);
    // Our own crash ends the monitor (the reaper also kills it; whichever
    // scheduling point comes first). Being declared dead by peers cannot
    // happen while we actually answer probes, so no false-positive check.
    if (net_.node_dead(self)) return;
    const View& mine = views_[static_cast<std::size_t>(self)];
    for (int p = 0; p < active_nodes_; ++p) {
      if (p == self) continue;
      // Probe even currently-dead peers: a successful answer from one is
      // how a rejoin (CrashEvent::rejoin_at) is noticed.
      ++stats_.probes;
      if (net_.probe(self, p)) {
        misses[p] = 0;
        if (!mine.is_live(p)) declare_rejoin(self, p);
      } else {
        ++stats_.probe_misses;
        if (++misses[p] >= cfg_.miss_threshold && mine.is_live(p))
          declare_dead(self, p);
      }
    }
    // Lease sweep: once a victim has been *detected* dead for a full lease,
    // force-recover any lock its crash stranded. The swept mask makes the
    // sweep run exactly once per victim, from whichever monitor ticks first
    // past the expiry.
    if (resolved_mask_.any()) {
      const Time now = argosim::now();
      for (int v = 0; v < active_nodes_; ++v) {
        if (!resolved_mask_.test(v) || lock_swept_mask_.test(v)) continue;
        if (now >= detect_time_[static_cast<std::size_t>(v)] + cfg_.lease) {
          lock_swept_mask_.set(v);
          sweep_locks(v);
        }
      }
    }
  }
}

void MembershipService::reaper_body() {
  const argonet::FaultInjector* faults = net_.faults();
  if (faults == nullptr || !faults->has_crashes()) return;
  for (;;) {
    bool pending_unknown = false;  // op-count triggers not yet resolved
    Time next_at = 0;
    const Time now = argosim::now();
    for (int n = 0; n < active_nodes_; ++n) {
      if (reaped_[static_cast<std::size_t>(n)]) continue;
      const Time at = faults->crash_time(n);
      if (at == 0) {
        // No crash scheduled, or an after_ops trigger that hasn't fired.
        // We cannot distinguish the two here; polling is cheap and ends
        // once every schedule entry resolves or the run finishes.
        pending_unknown = true;
        continue;
      }
      if (now >= at) {
        reaped_[static_cast<std::size_t>(n)] = true;
        // Crash-stop every fiber of the node: workers and its monitor.
        // They unwind via SimStopped at their next scheduling point, so
        // RAII state (NIC slots, latched cache lines) releases cleanly.
        for (argosim::SimThread* t : workers_[static_cast<std::size_t>(n)])
          eng_.kill(t);
        if (static_cast<std::size_t>(n) < daemons_.size())
          eng_.kill(daemons_[static_cast<std::size_t>(n)]);
      } else if (next_at == 0 || at < next_at) {
        next_at = at;
      }
    }
    if (next_at == 0 && !pending_unknown) return;  // every crash reaped
    const Time sleep_for =
        next_at != 0 ? next_at - now
                     : (cfg_.reap_poll > 0 ? cfg_.reap_poll : Time{10'000});
    argosim::delay(pending_unknown && sleep_for > cfg_.reap_poll &&
                           cfg_.reap_poll > 0
                       ? cfg_.reap_poll
                       : sleep_for);
  }
}

void MembershipService::declare_dead(int detector, int victim) {
  View& v = views_[static_cast<std::size_t>(detector)];
  v.live.reset(victim);
  ++v.epoch;
  if (v.epoch > epoch_) epoch_ = v.epoch;

  if (resolved_mask_.test(victim)) return;  // someone else detected first
  resolved_mask_.set(victim);
  dead_mask_.set(victim);
  departed_mask_.set(victim);
  const Time now = argosim::now();
  detect_time_[static_cast<std::size_t>(victim)] = now;
  ++stats_.deaths;
  if (const argonet::FaultInjector* f = net_.faults()) {
    const Time crashed_at = f->crash_time(victim);
    if (crashed_at != 0 && now >= crashed_at)
      stats_.detect_ns.add(static_cast<std::uint64_t>(now - crashed_at));
  }

  // The first detector runs the whole recovery pass on its own fiber —
  // deterministic (first in virtual time, spawn order breaking ties) and
  // serialized (resolved_mask_ keeps every later detector out).
  recover(detector, victim);

  recovered_mask_.set(victim);
  ++stats_.recovery_events;
  stats_.recovery_ns.add(static_cast<std::uint64_t>(argosim::now() - now));
  recovery_waiters_.notify_all();
  // Release any collective the victim strands (it can never arrive again).
  barrier_.on_node_departed(victim);
}

void MembershipService::declare_rejoin(int detector, int node) {
  View& v = views_[static_cast<std::size_t>(detector)];
  v.live.set(node);
  ++v.epoch;
  if (v.epoch > epoch_) epoch_ = v.epoch;

  if (!dead_mask_.test(node)) return;  // already re-admitted
  // Rejoin as a *fresh* node: it answers probes and may serve new traffic,
  // but departed_mask_ keeps its old identity out of collectives and lock
  // queues, and its lost home pages stay redirected to the successor.
  dead_mask_.reset(node);
  ++stats_.rejoins;
}

void MembershipService::recover(int detector, int victim) {
  (void)detector;
  // Deterministic successor: the next live node on the ring after the
  // victim. dead_mask_ already contains the victim, so the scan can only
  // pick a survivor; at least one exists or nobody is left to run this.
  int succ = -1;
  for (int i = 1; i <= active_nodes_; ++i) {
    const int c = (victim + i) % active_nodes_;
    if (is_live(c)) {
      succ = c;
      break;
    }
  }
  if (succ < 0) return;  // whole cluster dead; nothing to recover for

  // Dead reader/writer bits to drop from every reconstructed entry —
  // accumulated word-wise, so a death past node 31 scrubs the right word
  // instead of aliasing into the first 32 nodes.
  argodir::DirEntry dead_bits;
  for (int d = 0; d < active_nodes_; ++d)
    if (!is_live(d)) dead_bits.add_reader(d).add_writer(d);

  const auto& netc = net_.config();
  const std::uint64_t pages = gmem_.pages();
  for (std::uint64_t p = 0; p < pages; ++p) {
    // Current home, i.e. after earlier redirects: a victim that inherited
    // pages from a previous death re-homes those too.
    if (gmem_.home_of_page(p) != victim) continue;

    // Harvest the best surviving copy: a dirty copy is the newest by DRF
    // (a racing second writer would be a data race), else any clean copy.
    const std::byte* best = nullptr;
    bool best_dirty = false;
    if (caches_ != nullptr) {
      for (int n = 0; n < active_nodes_ && !best_dirty; ++n) {
        if (!is_live(n) || (*caches_)[static_cast<std::size_t>(n)] == nullptr)
          continue;
        bool dirty = false;
        const std::byte* img = (*caches_)[static_cast<std::size_t>(n)]
                                   ->host_page_image(p, &dirty);
        if (img == nullptr) continue;
        if (best == nullptr || dirty) {
          best = img;
          best_dirty = dirty;
        }
      }
    }

    const argodir::DirEntry home_entry = dir_.host_entry(p);
    if (best != nullptr) {
      // Copy before charging: host_page_image points into a live cache
      // line that another fiber could evict across a delay().
      std::memcpy(gmem_.home_ptr(p * argomem::kPageSize), best,
                  argomem::kPageSize);
      argosim::delay(netc.rdma_latency + netc.net_transfer(argomem::kPageSize));
      ++stats_.pages_recovered;
    } else if (home_entry.any()) {
      // Someone touched the page but no survivor holds a copy: the
      // authoritative data died with its home. Conservatively zero it so
      // readers see defined (if lost) contents, and count it.
      std::memset(gmem_.home_ptr(p * argomem::kPageSize), 0,
                  argomem::kPageSize);
      ++stats_.pages_lost;
    }

    // Rebuild the directory entry from the survivors' caches (their own
    // bits are always present in their own cache), minus dead bits.
    argodir::DirEntry rebuilt;
    for (int n = 0; n < active_nodes_; ++n)
      if (is_live(n)) rebuilt |= dir_.cache_get(n, p);
    for (std::size_t i = 0; i < rebuilt.w.size(); ++i)
      rebuilt.w[i] &= ~dead_bits.w[i];
    if (rebuilt != home_entry) {
      dir_.host_set_entry(p, rebuilt);
      ++stats_.dir_words_rebuilt;
    }

    // Drop survivors' *clean* cached copies: the reconstructed home is now
    // authoritative and a clean copy fetched from the dead home may be
    // staler, so a refetch is the only safe continuation. Dirty copies are
    // kept — under MW classification several survivors may hold disjoint
    // un-written-back diffs, and their later twin-based diff writebacks
    // apply exactly their own words to the reconstructed home. Latched
    // (mid-fetch) lines are skipped — the in-flight op re-resolves. The
    // successor is the exception: its copy — dirty included — just became
    // a copy of its *own* home page (the harvest folded the bytes in), and
    // keeping a dirty one would let a later diff writeback clobber fresher
    // post-recovery home-path stores with pre-crash bytes.
    if (caches_ != nullptr)
      for (int n = 0; n < active_nodes_; ++n) {
        if (!is_live(n) || (*caches_)[static_cast<std::size_t>(n)] == nullptr)
          continue;
        if (n == succ)
          (*caches_)[static_cast<std::size_t>(n)]->host_adopt_page(p);
        else
          (*caches_)[static_cast<std::size_t>(n)]->host_drop_page(p);
      }
  }

  // Retire the victim's reader/writer bits everywhere (pages homed on
  // survivors included): it can never downgrade or be notified again.
  dir_.host_scrub_node(victim);

  // From here on the victim's pages are served — and charged — by the
  // successor. The flat home buffer means no bytes move.
  gmem_.set_home_redirect(victim, succ);
}

void MembershipService::sweep_locks(int victim) {
  for (RecoverableLock* l : locks_)
    if (l->holder_node() == victim && l->recover_after_crash(victim))
      ++stats_.locks_recovered;
}

}  // namespace argocore
