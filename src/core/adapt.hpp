#pragma once
// Adaptive runtime tuning (ROADMAP item 5): deterministic policy engines
// that close the observability loop online. Every input is a virtual-time
// counter or a protocol event already present on the miss/fence/writeback
// paths — never a host clock and never a cache-hit fast path (the soft-TLB
// short-circuits hits, so a hit-path hook would break fast-vs-slow
// bit-identity). Policies only read state owned by their own NodeCache (or
// their own Thread, for the stride table), so decisions are identical for
// any host worker count of the parallel engine.
//
// Three policies, individually gated by ClusterConfig::adapt:
//
//  (a) phase-adaptive write-buffer sizing — a deterministic hill-climber
//      on measured phase time (fence-to-fence virtual time). Mid-phase
//      overflow drains overlap other workers' compute, while fence drains
//      serialize behind the barrier, so the common failure mode is an
//      oversized buffer: exploration defaults downward (halving, with a
//      fast jump to 4x peak occupancy when grossly oversized) and grows
//      only under measured admission-stall pressure. A move that makes the
//      next phase slower is reverted and the direction backed off
//      exponentially. Bounded to [wb_min_pages, wb_max_pages].
//  (b) density-driven diff granularity — a per-page EWMA of diff wire
//      bytes (runs from diff_runs, 8-byte headers included) selects a
//      single full-page write over run-coalesced scatter-gather when the
//      page's diffs are dense. Only consulted when the node is the page's
//      sole writer (same DRF argument as sw_diff_suppression); a periodic
//      probe re-runs the diff so the EWMA can observe sparsification.
//  (c) stride prefetch — a per-thread 2-entry stride table over the page
//      miss stream widens the demand fill with same-home neighbour pages
//      when a stride is confirmed, with round-robin replacement that
//      counts confident-entry evictions as misprediction resets.
//
// Reference mode: ARGO_NO_ADAPT=1 (or set_adapt_forced_off(true)) forces
// every policy inert, reproducing the fixed-knob seed behaviour
// bit-identically; tests/test_adapt.cpp pins this.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "mem/gaddr.hpp"

namespace argocore {

// ---------------------------------------------------------------------------
// Reference-mode toggle, same idiom as argosim::slow_paths(): ARGO_NO_ADAPT
// set (and not "0") disables every adaptive policy regardless of config.

namespace detail {
inline bool g_no_adapt = [] {
  const char* e = std::getenv("ARGO_NO_ADAPT");
  return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
}();
}  // namespace detail

inline bool adapt_forced_off() { return detail::g_no_adapt; }
inline void set_adapt_forced_off(bool v) { detail::g_no_adapt = v; }

// ---------------------------------------------------------------------------

struct AdaptConfig {
  bool write_buffer = false;      // policy (a)
  bool diff_granularity = false;  // policy (b)
  bool stride_prefetch = false;   // policy (c)

  // (a) write-buffer sizing
  std::size_t wb_min_pages = 4;
  std::size_t wb_max_pages = 8192;
  // Per-admission stall EWMA (virtual ns a store loses to a full buffer,
  // averaged over every admission of the phase) past which the climber
  // probes growth instead of exploring downward.
  std::uint64_t wb_grow_stall_ns = 2000;
  // Ceiling of the exponential backoff (in acting phases) after a move is
  // reverted, bounding oscillation cost around a settled optimum.
  int wb_revert_backoff = 8;

  // (b) diff granularity: wire-byte EWMA threshold in 256ths of a page
  // (224/256 = 87.5% — past that the run headers cost more than the
  // bytes a full-page write would resend), the consecutive dense diffs a
  // page must show before full-page mode engages (pages that alternate
  // dense/clean writebacks must keep diffing: a full-page write of an
  // unchanged page ships 4 KiB for nothing), and the probe cadence that
  // keeps sampling real diffs on full-page pages.
  unsigned dense_frac256 = 224;
  unsigned dense_streak = 3;
  unsigned density_probe_interval = 8;

  // (c) stride prefetch. Confidence 6 means a stream must survive six
  // same-stride misses before predictions fire: short streams (a few
  // cache lines per array slice, the common shape at small problem sizes)
  // end before that, so they never trigger the end-of-slice overfetch
  // that would make prefetch a net loss. Long streams — the only place
  // prefetch has real upside — clear the bar within their first few lines.
  int stride_confidence = 6;  // confirmations before predictions fire
  int prefetch_degree = 2;    // pages fetched ahead per prediction

  bool any() const { return write_buffer || diff_granularity || stride_prefetch; }
};

// Decision counters, kept apart from CoherenceStats so the seed's stat
// footprint (and its metric enumeration) is untouched when adapt is off.
struct AdaptStats {
  std::uint64_t wb_grows = 0;
  std::uint64_t wb_shrinks = 0;
  std::uint64_t wb_reverts = 0;  // (a) moves undone by a slower next phase
  std::uint64_t full_page_selected = 0;  // (b) chose full page over diff
  std::uint64_t density_probes = 0;      // (b) dense page re-diffed anyway
  std::uint64_t prefetch_issued = 0;     // (c) predictions acted on
  std::uint64_t prefetched_pages = 0;    // (c) pages actually pulled in
  std::uint64_t prefetch_useful = 0;     // (c) prefetched pages later touched
  std::uint64_t prefetch_suppressed = 0;  // (c) predictions the governor vetoed
  std::uint64_t stride_resets = 0;       // (c) confident entry evicted

  AdaptStats& operator+=(const AdaptStats& o) {
    wb_grows += o.wb_grows;
    wb_shrinks += o.wb_shrinks;
    wb_reverts += o.wb_reverts;
    full_page_selected += o.full_page_selected;
    density_probes += o.density_probes;
    prefetch_issued += o.prefetch_issued;
    prefetched_pages += o.prefetched_pages;
    prefetch_useful += o.prefetch_useful;
    prefetch_suppressed += o.prefetch_suppressed;
    stride_resets += o.stride_resets;
    return *this;
  }
};

// ---------------------------------------------------------------------------
// Per-thread 2-entry stride table over the demand page-miss stream.
// Purely thread-local state updated only on misses, so it is deterministic
// under the parallel engine and invisible to TLB-hit fast paths.

class StrideTable {
 public:
  struct Prediction {
    std::int64_t stride = 0;
    int degree = 0;  // 0 = no prediction
  };

  // Record a demand miss on `page`; returns the prefetch to issue (if any).
  // A confirmed stride predicts `degree` pages ahead; jumps of up to
  // degree+1 strides count as continuations because prefetched pages
  // absorb the intermediate misses.
  Prediction note_miss(std::uint64_t page, const AdaptConfig& cfg,
                       AdaptStats& stats) {
    ++tick_;
    const std::int64_t p = static_cast<std::int64_t>(page);
    for (Entry& e : e_) {
      if (e.last == kNone || e.stride == 0) continue;
      const std::int64_t d = p - static_cast<std::int64_t>(e.last);
      if (d == 0) return {};  // repeat page: no new information
      if (d % e.stride == 0) {
        const std::int64_t k = d / e.stride;
        if (k >= 1 && k <= cfg.prefetch_degree + 1) {
          e.last = page;
          e.conf = std::min(e.conf + 1, 8);
          e.used = tick_;
          if (e.conf >= cfg.stride_confidence)
            return {e.stride, cfg.prefetch_degree};
          return {};
        }
      }
    }
    for (Entry& e : e_) {  // adopt a stride on a candidate entry
      if (e.last == kNone || e.stride != 0) continue;
      const std::int64_t d = p - static_cast<std::int64_t>(e.last);
      if (d == 0) return {};
      e.stride = d;
      e.conf = 1;
      e.last = page;
      e.used = tick_;
      return {};
    }
    Entry* victim = &e_[0];  // allocate over the least-recently-used entry
    for (Entry& e : e_) {
      if (e.last == kNone) {
        victim = &e;
        break;
      }
      if (e.used < victim->used) victim = &e;
    }
    if (victim->last != kNone && victim->conf >= cfg.stride_confidence)
      ++stats.stride_resets;  // misprediction: a live stream got evicted
    *victim = Entry{page, 0, 0, tick_};
    return {};
  }

  void reset() { *this = StrideTable{}; }

 private:
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};
  struct Entry {
    std::uint64_t last = kNone;
    std::int64_t stride = 0;
    int conf = 0;
    std::uint64_t used = 0;
  };
  Entry e_[2];
  std::uint64_t tick_ = 0;
};

// ---------------------------------------------------------------------------
// Per-NodeCache policy engine: write-buffer capacity + diff density.
// (Stride state lives in the threads; the cache only executes predictions.)

class AdaptEngine {
 public:
  AdaptEngine(const AdaptConfig& cfg, std::size_t base_wb_pages,
              bool protocol_supported);

  // Policy activity: config flag AND the protocol supports it (naive P/S
  // checkpoints instead of diffing) AND the reference mode isn't forced.
  bool wb_active() const {
    return cfg_.write_buffer && supported_ && !adapt_forced_off();
  }
  bool diff_active() const {
    return cfg_.diff_granularity && supported_ && !adapt_forced_off();
  }
  bool stride_active() const {
    return cfg_.stride_prefetch && supported_ && !adapt_forced_off();
  }

  const AdaptConfig& config() const { return cfg_; }

  // Current write-buffer page capacity; the seed's fixed knob when the
  // policy is inert.
  std::size_t wb_capacity() const { return wb_active() ? wb_capacity_ : base_wb_; }

  // -- policy (a) hooks (all no-ops while inactive) -------------------------
  void note_drain_stall(std::uint64_t ns);  // virtual ns stalled on a full buffer
  void note_wb_admit(std::size_t live_after);
  // Fence-boundary sampler: `now_ns` is the current virtual time (ends the
  // phase the climber judges), `fence_ns` the duration of the fence that
  // just ran (the capacity-dependent cost shrinking attacks), and `live`
  // the write-buffer entries still queued (capacity never moves below
  // them). Returns the new capacity when it changed, 0 when it held
  // (callers trace the change).
  std::size_t sample_fence(std::uint64_t now_ns, std::uint64_t fence_ns,
                           std::size_t live);

  // -- policy (b) hooks -----------------------------------------------------
  // Record the wire bytes a real diff of `page` produced (0 = clean diff).
  void note_diff(std::uint64_t page, std::size_t wire_bytes);
  // True when the page's diff density history says a full-page write is
  // cheaper. `flipped` reports a mode change vs the page's last decision
  // (for the AdaptDiffMode trace event). Mutates probe counters, so only
  // call when the full-page path is actually eligible.
  bool prefer_full_page(std::uint64_t page, bool& flipped);

  // -- shared ---------------------------------------------------------------
  AdaptStats& stats() { return stats_; }
  const AdaptStats& stats() const { return stats_; }
  void reset_stats() { stats_ = AdaptStats{}; }
  // Full protocol reset (invalidate_all_free): drop phase state, density
  // history, and return the capacity to its configured base.
  void reset_runtime();

  // Capacity trajectory since the last reset (bounded; for bench JSON).
  const std::vector<std::uint32_t>& wb_capacity_history() const {
    return history_;
  }

 private:
  static constexpr std::size_t kHistoryCap = 64;

  AdaptConfig cfg_;
  std::size_t base_wb_;
  bool supported_;

  // (a) phase accumulators + hill-climber state
  std::size_t wb_capacity_;
  std::uint64_t phase_stall_ns_ = 0;
  std::uint64_t phase_drains_ = 0;
  std::uint64_t phase_admits_ = 0;
  std::size_t phase_peak_ = 0;
  std::uint64_t phase_start_ns_ = 0;  // virtual time the current phase began
  bool primed_ = false;               // first acting fence seen (clock valid)
  std::uint64_t ewma_stall_ = 0;      // per-admission stall pressure
  std::uint64_t prev_phase_ns_ = 0;   // last acting phase length (0 = none)
  std::uint64_t prev2_phase_ns_ = 0;  // the one before (alternation guard)
  std::uint32_t drift256_ = 256;      // natural same-parity phase ratio, /256
  std::size_t prev_cap_ = 0;          // capacity to restore on a revert
  bool moved_ = false;                // a move awaits judgment
  bool moved_was_jump_ = false;
  std::uint64_t moved_pre_stall_ = 0;  // stall/admit in the phase before a grow       // the move skipped past cap/2
  int moved_dir_ = 0;                 // direction of the pending move
  int dir_ = -1;                      // exploration direction (-1 = shrink)
  int hold_ = 0;                      // acting phases left in cooldown
  int backoff_ = 1;                   // next cooldown length
  // Direction vetoes: a capacity a grow/shrink must not be retried from,
  // expiring after kVetoPhases acting fences — workloads like LU change
  // regime mid-run (early phases want a bigger buffer, late phases a
  // smaller one), so a veto must not outlive the evidence behind it.
  static constexpr int kVetoPhases = 12;
  std::size_t bad_grow_from_ = 0;
  std::size_t bad_shrink_from_ = 0;
  int grow_veto_ttl_ = 0;
  int shrink_veto_ttl_ = 0;
  std::size_t last_grow_veto_cap_ = 0;    // second strike => long veto
  std::size_t last_shrink_veto_cap_ = 0;
  bool jump_blocked_ = false;         // a jump reverted: halve-only from now on
  std::vector<std::uint32_t> history_;

  // (b) per-page density history
  struct Density {
    std::uint8_t ewma = 0;        // wire bytes in 256ths of a page
    std::uint8_t streak = 0;      // consecutive dense diffs observed
    std::uint16_t decisions = 0;  // full-page-eligible consultations
    bool seen = false;
    bool last_full = false;
  };
  std::unordered_map<std::uint64_t, Density> density_;

  AdaptStats stats_;
};

}  // namespace argocore
