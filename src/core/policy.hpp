// Classification policy: which pages self-invalidate and how dirty pages
// self-downgrade, per mode. This is the executable form of the paper's
// Table 1; bench/table1_classification prints the table directly from these
// functions so documentation can never drift from the implementation.
#pragma once

#include "core/config.hpp"
#include "dir/pyxis.hpp"

namespace argocore {

using argodir::DirEntry;

/// Page classification as inferred by node `me` from a directory entry.
enum class PageState {
  Private,   ///< P: me is the only accessor (so far)
  SharedNW,  ///< S,NW: multiple accessors, no writer
  SharedSW,  ///< S,SW: multiple accessors, exactly one writer
  SharedMW,  ///< S,MW: multiple accessors, multiple writers
};

const char* to_string(PageState s);

inline PageState classify(const DirEntry& w, int me) {
  if (w.private_to(me)) return PageState::Private;
  switch (w.writer_count()) {
    case 0:
      return PageState::SharedNW;
    case 1:
      return PageState::SharedSW;
    default:
      return PageState::SharedMW;
  }
}

/// Must node `me` self-invalidate its cached copy at an SI fence?
inline bool si_required(Mode mode, const DirEntry& w, int me) {
  switch (mode) {
    case Mode::S:
      return true;  // no classification: everything invalidates
    case Mode::PSNaive:
    case Mode::PS:
      return !w.private_to(me);  // only private pages are exempt
    case Mode::PS3: {
      if (w.private_to(me)) return false;          // P
      const int wc = w.writer_count();
      if (wc == 0) return false;                   // S,NW (read-only)
      if (wc == 1 && w.is_writer(me)) return false;  // S,SW and I'm the writer
      return true;  // S,SW (someone else) or S,MW
    }
  }
  return true;
}

/// What happens to a *dirty* page at an SD fence.
enum class SdAction {
  WriteBack,   ///< flush (diff or whole page) to the home node
  Checkpoint,  ///< naive P/S: copy to a local checkpoint, keep dirty
};

inline SdAction sd_action(Mode mode, const DirEntry& w, int me) {
  if (mode == Mode::PSNaive && w.private_to(me)) return SdAction::Checkpoint;
  return SdAction::WriteBack;
}

}  // namespace argocore
