// Carina: Argo's coherence protocol (paper §3).
//
// One NodeCache per node implements the node-side protocol engine:
//
//  * a direct-mapped page cache whose "lines" are runs of consecutive pages
//    fetched with one RDMA read (prefetching, §3.6.2); all threads of a
//    node share it;
//  * self-invalidation (SI) and self-downgrade (SD) fences (§3.1) filtered
//    by the Pyxis classification (§3.4–3.5, src/core/policy.hpp);
//  * a FIFO write buffer bounding SD-fence latency (§3.6.1);
//  * twins + diffs for multiple-writer pages, optional single-writer diff
//    suppression;
//  * the naive P/S checkpointing variant evaluated in §5.1.
//
// Everything here is initiated by the *requesting* node's threads; the home
// side is passive memory. No handler runs anywhere on this path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/adapt.hpp"
#include "core/config.hpp"
#include "core/diff.hpp"
#include "core/policy.hpp"
#include "core/stats.hpp"
#include "core/tlb.hpp"
#include "dir/nodeset.hpp"
#include "dir/pyxis.hpp"
#include "mem/global_memory.hpp"
#include "mem/pool.hpp"
#include "net/interconnect.hpp"
#include "obs/trace.hpp"
#include "sim/sync.hpp"

namespace argocore {

using argodir::PyxisDirectory;
using argomem::GAddr;
using argomem::GlobalMemory;
using argomem::kPageSize;

class NodeCache {
 public:
  NodeCache(int node, GlobalMemory& gmem, argonet::Interconnect& net,
            PyxisDirectory& dir, CacheConfig cfg, AdaptConfig adapt = {});

  int node() const { return node_; }
  const CacheConfig& config() const { return cfg_; }

  /// Readable span [a, a+len) (must not cross a page boundary). Home pages
  /// are served from home memory; remote pages from the page cache,
  /// faulting the line in on a miss. The pointer is valid only until the
  /// next protocol operation — callers copy out immediately. When `tlb` is
  /// non-null the resulting translation is cached there for MMU-analogue
  /// reuse (src/core/tlb.hpp); passing null (the ARGO_SLOW_PATHS seed
  /// behavior) changes nothing observable. When `st` is non-null and the
  /// stride-prefetch policy is active, demand misses feed the thread's
  /// stride table and confirmed strides widen the fill (core/adapt.hpp);
  /// with the policy off the table is never touched.
  const std::byte* read_ptr(GAddr a, std::size_t len, SoftTlb* tlb = nullptr,
                            StrideTable* st = nullptr);

  /// Writable span [a, a+len) (must not cross a page boundary). Remote
  /// pages get write-allocated: twin created, marked dirty, queued in the
  /// write buffer; registration and classification transitions happen here.
  /// A cached write translation stays valid only while the page remains
  /// dirty + write-buffered — every event that ends that (writeback, drain,
  /// fence, checkpoint) bumps the TLB generation. `st` as in read_ptr.
  std::byte* write_ptr(GAddr a, std::size_t len, SoftTlb* tlb = nullptr,
                       StrideTable* st = nullptr);

  /// SI fence: drop every cached page the classification says may be stale
  /// (flushing it first if dirty). Acquire-side of every synchronization.
  void si_fence();

  /// SD fence: make all this node's writes globally visible (drain the
  /// write buffer; checkpoint instead under naive P/S). Release-side of
  /// every synchronization.
  void sd_fence();

  /// Peers, for the naive-P/S P→S healing path (reading a private owner's
  /// checkpoint is an RDMA read of its registered checkpoint region).
  void set_peers(const std::vector<NodeCache*>* peers) { peers_ = peers; }

  /// Crash-recovery wiring (core/membership.hpp). Cluster sets this only
  /// when membership is enabled; null (the default) keeps every access and
  /// fence path byte-identical to the pre-recovery code — the failover
  /// catch blocks rethrow immediately.
  void set_membership(MembershipService* m) { membership_ = m; }

  /// Host-side view of a cached page image, for the crash-recovery
  /// harvest: returns the page bytes (stamping *dirty) when the page is
  /// valid and its line is not mid-mutation, else null. Zero virtual cost;
  /// the recovery pass charges the reconstruction transfer itself.
  const std::byte* host_page_image(std::uint64_t page, bool* dirty);

  /// Crash recovery: drop a *clean* cached copy of `page` — the home copy
  /// rebuilt on the successor is now authoritative, and a clean copy
  /// fetched from the dead home may be staler. Dirty copies are kept: their
  /// eventual twin-based diff writebacks apply exactly this node's own
  /// words to the new home. Latched (mid-fetch/evict) lines are skipped —
  /// the in-flight operation re-resolves against the new home. Returns
  /// true if a copy was dropped.
  bool host_drop_page(std::uint64_t page);

  /// Crash recovery, successor only: drop this node's cached copy of a
  /// page it just inherited as home — dirty included. The harvest already
  /// folded the copy's bytes into the (new) home, own-home pages are never
  /// cached, and a kept dirty copy's later diff writeback would clobber
  /// fresher post-recovery home-path stores with pre-crash bytes. Releases
  /// the write-buffer slot of a dirty copy (waking parked writers); the
  /// stale queue entry is skipped by the drains' liveness check. Returns
  /// true if a copy was dropped.
  bool host_adopt_page(std::uint64_t page);

  /// Drop all cached pages without cost. Only valid when nothing is dirty;
  /// used by Cluster::reset_classification() at the end of initialization.
  void invalidate_all_free();

  const CoherenceStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = CoherenceStats{};
    adapt_.reset_stats();
  }

  /// The adaptive policy engine (core/adapt.hpp) — decision counters,
  /// current write-buffer capacity and its trajectory.
  const AdaptEngine& adapt() const { return adapt_; }

  /// Effective write-buffer page capacity right now: the configured knob
  /// when the sizing policy is inert, the adapted value otherwise.
  std::size_t wb_capacity() const { return adapt_.wb_capacity(); }

  /// Attach a protocol tracer (not owned; may be null). Emits fence,
  /// fill, writeback, transition and eviction events for this node.
  void set_tracer(argoobs::Tracer* tracer) { tracer_ = tracer; }

  /// Pages currently valid in the cache (for tests/diagnostics).
  std::size_t resident_pages() const;
  /// Pages currently dirty.
  std::size_t dirty_pages() const;

  /// Snapshot of every valid cached page, for the ProtocolValidator.
  struct CachedPage {
    std::uint64_t page;
    bool dirty;
    bool in_wb;
  };
  std::vector<CachedPage> cached_pages() const;

  /// Live (non-stale) write-buffer entries; bounded by wb_capacity() —
  /// the configured CacheConfig::write_buffer_pages unless the adaptive
  /// sizing policy has moved it — at all times.
  std::size_t write_buffer_live() const { return wb_live_; }

  /// The node's page-buffer pool (twins, checkpoints, line buffers), for
  /// tests and diagnostics.
  const argomem::BufferPool& buffer_pool() const { return pool_; }

  /// The page whose directory word governs `page` (classification follows
  /// the fetch granularity; see dir_page below). For the validator.
  std::uint64_t dir_key(std::uint64_t page) const { return dir_page(page); }

  /// Current soft-TLB generation. Thread-held translations stamped with an
  /// older value are stale and must re-walk the slow path. Bumped adjacent
  /// to every mutation that can change a page's contents, residency or
  /// write permission (see the ++tlb_gen_ sites in carina.cpp).
  std::uint64_t tlb_generation() const { return tlb_gen_; }

  /// Address of the generation counter, for external invalidation sources
  /// (PyxisDirectory bumps it when a deferred invalidation is merged into
  /// this node's directory cache).
  std::uint64_t* tlb_gen_slot() { return &tlb_gen_; }

  /// Host-only diagnostics: accumulate a retiring thread's TLB hit count.
  /// Deliberately NOT part of CoherenceStats — those must be identical
  /// with the TLB disabled.
  void note_tlb_hits(std::uint64_t n) { tlb_host_hits_ += n; }
  std::uint64_t tlb_host_hits() const { return tlb_host_hits_; }

 private:
  static constexpr std::uint64_t kNoGroup = ~std::uint64_t{0};

  struct PageSlot {
    bool valid = false;
    bool dirty = false;
    bool in_wb = false;  // queued in the write buffer
    bool prefetched = false;  // filled by stride prefetch, not yet touched
    argomem::PageBuf twin;  // pool-backed; reset() recycles the block
  };

  struct Line {
    std::uint64_t group = kNoGroup;
    bool fetching = false;
    argomem::PageBuf data;  // pages_per_line * kPageSize, pool-backed
    std::vector<PageSlot> pages;
    argosim::WaitQueue waiters;
  };

  std::uint64_t group_of(std::uint64_t page) const {
    return page / cfg_.pages_per_line;
  }
  Line& line_of_group(std::uint64_t group) {
    return lines_[group % cfg_.cache_lines];
  }
  std::byte* page_data(Line& l, std::uint64_t page) {
    return l.data.get() + (page % cfg_.pages_per_line) * kPageSize;
  }
  PageSlot& slot_of(Line& l, std::uint64_t page) {
    return l.pages[page % cfg_.pages_per_line];
  }

  /// Classification granularity: like the original system, classification
  /// follows the fetch granularity — one directory word per cache *line*
  /// (keyed by the line's first page), so a line fill costs one directory
  /// atomic, not one per page. Maps become unions over the line's pages,
  /// which only ever makes self-invalidation more conservative, never
  /// unsound. Naive P/S classifies per page (its checkpoints/heals are
  /// per-page).
  std::uint64_t dir_page(std::uint64_t page) const {
    if (cfg_.classification == Mode::PSNaive) return page;
    return page - (page % cfg_.pages_per_line);
  }

  bool my_reader_bit_set(std::uint64_t page) const;
  bool my_writer_bit_set(std::uint64_t page) const;

  /// Per-line latch excluding concurrent mutators (fetch/evict/writeback)
  /// across their virtual-time delays. Read fast paths do not take it.
  void lock_line(Line& l);
  void unlock_line(Line& l);

  /// Fault `page` into the cache (registering first, then fetching its
  /// line). Returns with the page valid and this node registered as reader
  /// (and writer if `for_write`).
  void ensure_cached(std::uint64_t page, bool for_write);

  /// Pipelined miss path (NetConfig::pipeline > 1, non-naive modes): the
  /// directory fetch_or is *posted* before the line fill so the
  /// registration latency overlaps the data reads, which are themselves
  /// posted back to back. The posted send queue keeps home-side ordering
  /// identical to the blocking path (registration precedes the fill).
  void ensure_cached_pipelined(std::uint64_t page, bool for_write);

  /// Register access bits at the home directory and notify displaced
  /// owners/writers of the transitions this causes. Returns true if the
  /// naive-P/S path healed the home copy (the caller must then drop any
  /// copy fetched before the heal).
  bool register_access(std::uint64_t page, bool for_write);

  /// Post-fetch_or half of register_access: merge the updated entry into
  /// our directory cache and fan out the transition notifications `prev`
  /// implies (batched/coalesced when pipelining). Returns true if the
  /// naive-P/S path healed the home copy.
  bool apply_registration(std::uint64_t page, std::uint64_t dp,
                          const argodir::DirEntry& prev,
                          const argodir::DirEntry& bits, bool for_write);

  /// Evict the current contents of `l` (flushing dirty pages). Latch held.
  void evict_line_locked(Line& l);

  /// Fetch every invalid page of `group` into `l`, one RDMA read per
  /// contiguous same-home segment (prefetching). Latch held.
  void fetch_line_locked(Line& l, std::uint64_t group);

  /// Write one dirty cached page back to its home (diff or whole page).
  /// With pipelining the transfer is *posted* (payload snapshotted) and the
  /// slot is released immediately — fences retire the queue with wait_all.
  void writeback_locked(Line& l, std::uint64_t page);
  void writeback(std::uint64_t page);  // latches, re-validates, delegates

  /// Clear a page's dirty/write-buffer state after its writeback has been
  /// issued, waking any writer parked on a full write buffer.
  void release_wb_slot(PageSlot& s);

  bool pipelined() const { return net_.config().pipeline > 1; }

  /// Trace helpers: recording is free of virtual time, so these may be
  /// called anywhere on the protocol paths without perturbing timings.
  void trace(argoobs::Ev kind, std::uint64_t page, std::uint8_t state,
             std::uint64_t arg) {
    if (tracer_) tracer_->emit(node_, kind, page, state, arg);
  }
  /// This node's current classification of `page`, as a trace state byte.
  std::uint8_t traced_state(std::uint64_t page);

  /// Naive P/S: refresh the page's checkpoint from its current contents
  /// (charged local copy). Latch held by caller.
  void refresh_checkpoint(Line& l, std::uint64_t page);

  /// Drain the oldest live write-buffer entry (write-buffer overflow).
  /// Under naive P/S prefers the oldest non-private entry. Returns false
  /// if no entry could be drained.
  bool drain_oldest();

  /// Naive P/S: service a P→S transition from the private owner's
  /// checkpoint (RDMA read from owner + RDMA write to home).
  void heal_from_checkpoint(int owner, std::uint64_t page);

  /// Stride prefetch (policy c): feed the demand miss on `page` into the
  /// thread's stride table and, when a stride is confirmed, pull predicted
  /// lines in ahead of demand. Best-effort: network failures are swallowed
  /// (the demand access does not depend on the prefetch). May yield.
  void maybe_prefetch(std::uint64_t page, StrideTable* st);

  /// Fetch the line holding `page` if that costs no displacement: skips
  /// lines that are mid-fetch, already resident, or occupied by another
  /// group (which also protects the demand line — a conflicting group maps
  /// to the same slot). Returns the number of pages actually fetched.
  std::size_t try_prefetch_line(std::uint64_t page);

  /// Crash failover: wait out the recovery of the dead node an operation
  /// just tripped over, account ops the crash aborted, and report that the
  /// caller should retry. Returns false — callers rethrow — when no
  /// membership service is attached (the feature is disabled).
  bool crash_failover(const argonet::NodeFailedError& e);

  /// Re-queue valid+dirty+in_wb pages missing from the write buffer deque:
  /// an SD fence that threw between popping an entry and finishing its
  /// writeback strands the page, and FIFO drains must be able to find it.
  void requeue_stranded_wb();

  /// Fence bodies; the public si_fence/sd_fence wrap them in the crash
  /// failover retry loop.
  void si_fence_impl();
  void sd_fence_impl();

  /// Bucket sizing for checkpoints_ (naive P/S), derived from CacheConfig.
  std::size_t checkpoint_reserve() const;

  int node_;
  GlobalMemory& gmem_;
  argonet::Interconnect& net_;
  PyxisDirectory& dir_;
  CacheConfig cfg_;
  AdaptEngine adapt_;
  // Backs every twin, checkpoint and line buffer; declared before them so
  // it outlives the PageBufs it issued (members destroy in reverse order).
  argomem::BufferPool pool_;
  std::vector<Line> lines_;
  // Line slots that currently hold a group — fences and stats iterate
  // occ_idx_ (insertion order, which is protocol order and therefore
  // deterministic) instead of scanning every slot of a large cache. The
  // flat bitmap dedupes insertions without hashing.
  std::vector<std::uint64_t> occ_bits_;
  std::vector<std::size_t> occ_idx_;
  std::deque<std::uint64_t> write_buffer_;
  std::size_t wb_live_ = 0;
  // Writers parked on a full write buffer whose every live entry is
  // mid-writeback in another fiber; release_wb_slot wakes them.
  argosim::WaitQueue wb_slot_waiters_;
  // Naive P/S: per-page checkpoint taken at each sync (page image as of the
  // owner's last synchronization point). Heap blocks are stable across
  // rehashes (PageBuf moves the handle, never the bytes).
  std::unordered_map<std::uint64_t, argomem::PageBuf> checkpoints_;
  // Diff-run scratch, stolen/returned around each writeback's scan so the
  // steady state never reallocates. Writebacks on distinct lines can
  // interleave across their wire delays, so the vector is moved out for
  // the duration of a scan rather than used in place.
  std::vector<DiffRun> diff_scratch_;
  // Occupied-set snapshots for SI sweeps. A free list, not a single
  // member: DSM lock acquires run si_fence on arbitrary threads, so two
  // fibers of one node can sweep concurrently.
  std::vector<std::vector<std::size_t>> fence_scratch_;
  const std::vector<NodeCache*>* peers_ = nullptr;
  MembershipService* membership_ = nullptr;  // non-null only when enabled
  argoobs::Tracer* tracer_ = nullptr;
  CoherenceStats stats_;
  // Soft-TLB generation shared by all of this node's threads. Starts at 1
  // so a zero-initialized TlbEntry can never match. Monotonic; wrap is
  // unreachable (2^64 protocol events).
  std::uint64_t tlb_gen_ = 1;
  std::uint64_t tlb_host_hits_ = 0;

  /// Record that line slot `idx` holds a group (idempotent).
  void occupy(std::size_t idx) {
    if (occ_bits_[idx >> 6] & (std::uint64_t{1} << (idx & 63))) return;
    occ_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    occ_idx_.push_back(idx);
  }
};

}  // namespace argocore
