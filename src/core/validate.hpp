// ProtocolValidator: a coherence invariant checker for tests.
//
// The simulator makes protocol state directly inspectable, so instead of
// trusting end-to-end results alone, tests can assert the Carina/Pyxis
// invariants that make those results correct. Two check levels:
//
//  * check(node) — holds at any quiescent instant (no protocol op of that
//    node mid-flight):
//      - every dirty cached page has the node's writer bit set in the
//        *home* directory word (registration happens before the write);
//      - the node's cached directory word for a cached page never claims
//        bits the home word lacks (cache words are ORed from home reads
//        and notifications, so cached ⊆ home between resets);
//      - live write-buffer entries never exceed the configured capacity,
//        and agree with the per-page in_wb flags.
//
//  * check_post_barrier(node) — additionally holds right after a node
//    leader finishes its barrier SI fence:
//      - no cached page is dirty (SD drained the write buffer; naive P/S
//        private pages, which legitimately stay dirty, are exempted);
//      - every surviving cached page is one classification says may be
//        kept (si_required == false on the node's cached word) and has the
//        node registered as reader at home.
//
// attach() installs the checks as the Cluster's barrier hook so every Vela
// barrier in a test run is validated in place; violations are collected as
// strings (not asserted inside the hook) so a test can both EXPECT none on
// healthy configs and EXPECT some when a chaos knob deliberately breaks
// the protocol. Checks cost no virtual time and perform no simulated ops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace argo {
class Cluster;
}

namespace argocore {

class ProtocolValidator {
 public:
  explicit ProtocolValidator(argo::Cluster& cluster) : cluster_(cluster) {}

  /// Install check_post_barrier as the cluster's barrier hook (called by
  /// each node leader after its barrier SI fence).
  void attach();

  /// Run the quiescent-state checks for one node now.
  void check(int node);

  /// Run the stricter post-barrier checks for one node now.
  void check_post_barrier(int node);

  /// All accumulated invariant violations (empty = protocol clean).
  const std::vector<std::string>& violations() const { return violations_; }
  void clear() { violations_.clear(); }

  /// Total checks executed (to prove the hook actually ran).
  std::uint64_t checks_run() const { return checks_run_; }

 private:
  void fail(int node, std::uint64_t page, const std::string& what);
  /// Lowest-numbered node the membership service still believes live
  /// (checks that must run exactly once per instant key off it).
  int first_live_node() const;

  argo::Cluster& cluster_;
  std::vector<std::string> violations_;
  std::uint64_t checks_run_ = 0;
};

}  // namespace argocore
