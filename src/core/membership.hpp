// Crash-stop membership, lease-based recovery, and degraded-mode views.
//
// The paper assumes a fail-stop-free cluster; this service adds the
// machinery to survive crash-stop node failures in the simulator while
// keeping every fault-free run bit-identical to a build without it:
//
//  * Detection is decentralized and replayable: every live node runs a
//    monitor fiber that probes its peers each heartbeat interval over the
//    interconnect (sender-charged, RNG-free — see Interconnect::probe). A
//    peer missing `miss_threshold` consecutive probes is declared dead in
//    that node's *view* {epoch, live set}; views advance independently, so
//    nodes learn of a death at different virtual times, exactly like a
//    real timeout-based failure detector.
//
//  * Recovery runs once, on the fiber of the first detector (deterministic
//    in virtual time): pages homed on the dead node are reconstructed on a
//    deterministic successor from the surviving sharers' cached copies
//    (preferring a dirty copy — it is the newest by DRF — and conservatively
//    zeroing pages nobody holds: "lost"), the dead home's directory words
//    are rebuilt as the OR of the survivors' directory caches, and a home
//    redirect is installed so every later access is charged to the
//    successor. The bytes never move: GlobalMemory's flat buffer makes
//    re-homing a pure routing change.
//
//  * Leases bound how long a dead node can hold a lock: GlobalMcsLock
//    registers itself here; once a holder has been dead for `lease` ns the
//    sweep force-resets the whole queue and bumps the lock's epoch, which
//    live waiters observe and re-acquire.
//
// Everything is gated on MembershipConfig::enabled (no fibers, no probes,
// no metrics otherwise) and draws nothing from the fault-injection RNG
// streams, so chaos seeds replay identically with or without a crash
// schedule attached.
#pragma once

#include <cstdint>
#include <vector>

#include "dir/nodeset.hpp"
#include "obs/metrics.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace argonet {
class Interconnect;
class FaultInjector;
}  // namespace argonet
namespace argomem {
class GlobalMemory;
}
namespace argodir {
class PyxisDirectory;
}

namespace argocore {

class NodeCache;

/// Crash-stop membership / recovery configuration.
struct MembershipConfig {
  /// Master switch. Off: no monitor/reaper fibers are spawned, no probe
  /// traffic is charged, no membership metrics registered — virtual times
  /// match a build without the feature exactly.
  bool enabled = false;

  /// Virtual ns between heartbeat probe rounds of each node's monitor.
  argosim::Time heartbeat_interval = 50'000;

  /// Consecutive missed probes before a peer is declared dead.
  int miss_threshold = 3;

  /// Lock lease: virtual ns after *detection* before a dead holder's locks
  /// are forcibly recovered (whole-queue reset + epoch bump).
  argosim::Time lease = 200'000;

  /// Poll granularity of the reaper fiber for crash triggers whose time is
  /// not known up front ("crash after N ops").
  argosim::Time reap_poll = 10'000;
};

/// One node's membership view. Epochs advance locally: each transition the
/// node itself observes (death it detects or learns of, rejoin it probes)
/// bumps its epoch, so two nodes' views may disagree transiently — the
/// defining property of a timeout-based detector.
struct View {
  std::uint64_t epoch = 0;
  argodir::NodeSet live;  ///< nodes believed live

  bool is_live(int node) const { return live.test(node); }
  int live_count() const { return live.count(); }
};

/// Counters and latency distributions for the recovery machinery. Sampled
/// through the cluster metrics registry as membership.* / recovery.*.
struct RecoveryStats {
  std::uint64_t deaths = 0;           ///< nodes declared dead (first detection)
  std::uint64_t rejoins = 0;          ///< nodes re-admitted after rejoin_at
  std::uint64_t probes = 0;           ///< heartbeat probes issued
  std::uint64_t probe_misses = 0;     ///< probes that found the peer dead
  std::uint64_t recovery_events = 0;  ///< completed recovery passes
  std::uint64_t pages_recovered = 0;  ///< dead-homed pages rebuilt from a copy
  std::uint64_t pages_lost = 0;       ///< dead-homed pages with no copy (zeroed)
  std::uint64_t dir_words_rebuilt = 0;  ///< directory words reconstructed
  std::uint64_t aborted_ops = 0;  ///< ops aborted by a crash (sync ops that
                                  ///< observed the dead peer + banked posted
                                  ///< failures), all retried post-recovery
  std::uint64_t locks_recovered = 0;    ///< lease-expired lock queue resets
  argoobs::LatencyHist detect_ns;       ///< crash → first detection
  argoobs::LatencyHist recovery_ns;     ///< detection → recovery complete
};

/// A distributed lock that can be forcibly recovered when its holder
/// crash-stops. GlobalMcsLock implements this and registers itself.
class RecoverableLock {
 public:
  virtual ~RecoverableLock() = default;
  /// Host-side mirror of the current holder node (-1 = free / in handoff).
  virtual int holder_node() const = 0;
  /// Force-release after `dead_node`'s lease expired. Returns true if the
  /// lock was actually held by the dead node and got reset.
  virtual bool recover_after_crash(int dead_node) = 0;
};

/// Barrier over the *surviving* view: completes as soon as every live
/// participant has arrived — departed nodes are counted as permanently
/// arrived, and a death that strands a round in progress releases it
/// retroactively (on_node_departed). Rejoined nodes do not re-enter
/// collectives: their worker fibers are gone for good.
class ViewBarrier {
 public:
  void configure(int parties) {
    participants_ = argodir::NodeSet::first_n(parties);
    arrived_ = argodir::NodeSet{};
  }

  void arrive_and_wait(int node) {
    const std::uint64_t gen = generation_;
    arrived_.set(node);
    if (try_release()) return;
    while (generation_ == gen) q_.wait();
  }

  /// Called by the recovery path when a node is declared dead: if that
  /// node was the only straggler of the current round, release it.
  void on_node_departed(int node) {
    departed_.set(node);
    try_release();
  }

 private:
  bool try_release() {
    if (((arrived_ | departed_) & participants_) != participants_)
      return false;
    arrived_ = argodir::NodeSet{};
    ++generation_;
    q_.notify_all();
    return true;
  }

  argodir::NodeSet participants_;
  argodir::NodeSet arrived_;
  argodir::NodeSet departed_;  // only ever grows: rejoiners stay out
  std::uint64_t generation_ = 0;
  argosim::WaitQueue q_;
};

/// The epoch/membership service owned by Cluster. See the file comment.
class MembershipService {
 public:
  MembershipService(argosim::Engine& eng, argonet::Interconnect& net,
                    argomem::GlobalMemory& gmem, argodir::PyxisDirectory& dir,
                    MembershipConfig cfg, int nodes);

  bool enabled() const { return cfg_.enabled; }
  const MembershipConfig& config() const { return cfg_; }

  /// Per-node caches, for recovery harvesting (not owned; set by Cluster).
  void set_caches(const std::vector<NodeCache*>* caches) { caches_ = caches; }

  // --- Run lifecycle (called by Cluster::run_subset) ----------------------

  /// Reset views to {epoch 0, all still-live active nodes} and spawn the
  /// monitor and reaper daemon fibers. Death/recovery state persists
  /// across runs: a node that crashed stays crashed.
  void begin_run(int active_nodes);

  /// Kill this run's daemon fibers (they unwind via SimStopped).
  void end_run();

  /// Record a worker fiber spawned on `node`, so the reaper can crash-stop
  /// it when the node's crash trigger fires.
  void note_worker(int node, argosim::SimThread* t);

  // --- Views and liveness -------------------------------------------------

  const View& view(int node) const {
    return views_[static_cast<std::size_t>(node)];
  }
  /// Highest epoch any view has reached (the cluster-wide epoch metric).
  std::uint64_t epoch() const { return epoch_; }
  /// Liveness per the *service's* knowledge (lags the injector by up to
  /// miss_threshold heartbeats — that is the point of a failure detector).
  bool is_live(int node) const { return !dead_mask_.test(node); }
  bool any_dead() const { return dead_mask_.any(); }
  const argodir::NodeSet& dead_set() const { return dead_mask_; }
  /// Nodes that have ever crashed (rejoin does not clear this; collectives
  /// and lock queues never re-admit a rejoined node's old identity).
  const argodir::NodeSet& departed_set() const { return departed_mask_; }
  /// Virtual time `node`'s death was first detected (0 if never declared).
  argosim::Time detect_time(int node) const {
    return detect_time_[static_cast<std::size_t>(node)];
  }
  /// True once `node`'s recovery pass (redirect, page and directory
  /// reconstruction) has completed. The validator keys its epoch-aware
  /// invariants off this: before it, survivor state is legitimately stale.
  bool recovered(int node) const { return recovered_mask_.test(node); }

  /// Block the calling fiber until `node`'s crash has been detected and
  /// its recovery pass (home redirect, page reconstruction) completed.
  /// Returns immediately if that already happened.
  void await_recovery(int node);

  /// The surviving-view barrier Cluster's global rendezvous uses.
  ViewBarrier& barrier() { return barrier_; }

  // --- Lock leases --------------------------------------------------------

  void register_lock(RecoverableLock* l);
  void deregister_lock(RecoverableLock* l);
  /// Global lock-recovery epoch: bumped on every forced queue reset. MCS
  /// waiters snapshot it and abandon their slot when it moves.
  std::uint64_t lock_epoch() const { return lock_epoch_; }
  void bump_lock_epoch() { ++lock_epoch_; }
  /// Registered recoverable locks (for the validator's lease invariant).
  const std::vector<RecoverableLock*>& locks() const { return locks_; }

  // --- Stats --------------------------------------------------------------

  void note_aborted(std::uint64_t n) { stats_.aborted_ops += n; }
  const RecoveryStats& stats() const { return stats_; }

 private:
  void monitor_body(int self);
  void reaper_body();
  /// `detector` observed `victim` missing miss_threshold probes.
  void declare_dead(int detector, int victim);
  /// `detector` got a successful probe from a previously-dead `node`.
  void declare_rejoin(int detector, int node);
  /// The first detector's recovery pass (runs on its monitor fiber).
  void recover(int detector, int victim);
  /// Reset every registered lock still held by `victim` (lease expired).
  void sweep_locks(int victim);

  argosim::Engine& eng_;
  argonet::Interconnect& net_;
  argomem::GlobalMemory& gmem_;
  argodir::PyxisDirectory& dir_;
  MembershipConfig cfg_;
  int nodes_;
  int active_nodes_ = 0;
  const std::vector<NodeCache*>* caches_ = nullptr;

  std::vector<View> views_;
  std::uint64_t epoch_ = 0;
  argodir::NodeSet dead_mask_;       // declared dead, not yet rejoined
  argodir::NodeSet departed_mask_;   // ever declared dead
  argodir::NodeSet resolved_mask_;   // recovery started (first detector won)
  argodir::NodeSet recovered_mask_;  // recovery finished
  argodir::NodeSet lock_swept_mask_;
  std::vector<argosim::Time> detect_time_;
  argosim::WaitQueue recovery_waiters_;
  ViewBarrier barrier_;

  std::vector<RecoverableLock*> locks_;
  std::uint64_t lock_epoch_ = 0;

  std::vector<std::vector<argosim::SimThread*>> workers_;  // [node]
  std::vector<argosim::SimThread*> daemons_;
  std::vector<bool> reaped_;

  RecoveryStats stats_;
};

}  // namespace argocore
