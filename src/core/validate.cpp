#include "core/validate.hpp"

#include "core/carina.hpp"
#include "core/cluster.hpp"
#include "core/policy.hpp"
#include "dir/pyxis.hpp"

namespace argocore {

using argodir::DirEntry;

void ProtocolValidator::attach() {
  cluster_.set_barrier_hook([this](int node) { check_post_barrier(node); });
}

void ProtocolValidator::fail(int node, std::uint64_t page,
                             const std::string& what) {
  violations_.push_back("node " + std::to_string(node) + " page " +
                        std::to_string(page) + ": " + what);
}

void ProtocolValidator::check(int node) {
  ++checks_run_;
  const MembershipService& ms = cluster_.membership();
  const bool degraded = ms.enabled() && ms.any_dead();
  // A dead node's cache is frozen pre-crash state; its invariants stopped
  // being maintained the instant it died. Only live nodes are checked.
  if (ms.enabled() && !ms.is_live(node)) return;
  // Directory bits of departed-and-recovered nodes: scrubbed from every
  // home word, but survivor directory *caches* may retain them until their
  // next SI reset — legitimate staleness the epoch-aware checks mask out.
  DirEntry departed_bits;
  if (degraded) {
    for (int n = 0; n < cluster_.nodes(); ++n)
      if (ms.recovered(n)) departed_bits.add_reader(n).add_writer(n);
  }

  NodeCache& cache = cluster_.node_cache(node);
  argodir::PyxisDirectory& dir = cluster_.dir();

  std::size_t in_wb_flags = 0;
  for (const NodeCache::CachedPage& p : cache.cached_pages()) {
    if (p.in_wb) ++in_wb_flags;
    const std::uint64_t key = cache.dir_key(p.page);
    const DirEntry home = dir.host_entry(key);
    if (p.dirty && !home.is_writer(node))
      fail(node, p.page, "dirty but writer bit not set at home");
    const DirEntry cached = dir.cache_get(node, key);
    for (std::size_t i = 0; i < cached.w.size(); ++i) {
      if ((cached.w[i] & ~home.w[i] & ~departed_bits.w[i]) != 0) {
        fail(node, p.page, "cached directory entry claims bits home lacks");
        break;
      }
    }
    for (std::size_t i = 0; i < home.w.size(); ++i) {
      if ((home.w[i] & departed_bits.w[i]) != 0) {
        fail(node, p.page,
             "home directory entry retains a departed node's bits");
        break;
      }
    }
  }

  // Lease invariant: a lock may stay "held" by a dead node only until its
  // lease expires plus one sweep granule (sweeps run on heartbeat ticks).
  // Emitted once per quiescent instant, by the lowest-numbered live node.
  if (degraded && node == first_live_node()) {
    argosim::Engine* eng = argosim::Engine::current();
    if (eng != nullptr) {
      const MembershipConfig& mc = ms.config();
      for (RecoverableLock* l : ms.locks()) {
        const int h = l->holder_node();
        if (h < 0 || ms.is_live(h)) continue;
        const argosim::Time limit =
            ms.detect_time(h) + mc.lease + 2 * mc.heartbeat_interval;
        if (eng->now() > limit)
          fail(node, 0,
               "lock still held by dead node " + std::to_string(h) +
                   " past its lease");
      }
    }
  }

  // Capacity comes from the cache, not the config: the adaptive sizing
  // policy may have legitimately moved it away from write_buffer_pages.
  if (cache.write_buffer_live() > cache.wb_capacity())
    fail(node, 0,
         "write buffer live count " +
             std::to_string(cache.write_buffer_live()) + " exceeds capacity " +
             std::to_string(cache.wb_capacity()));
  if (in_wb_flags != cache.write_buffer_live())
    fail(node, 0,
         "in_wb flags (" + std::to_string(in_wb_flags) +
             ") disagree with live write-buffer count (" +
             std::to_string(cache.write_buffer_live()) + ")");
}

int ProtocolValidator::first_live_node() const {
  const MembershipService& ms = cluster_.membership();
  for (int n = 0; n < cluster_.nodes(); ++n)
    if (ms.is_live(n)) return n;
  return 0;
}

void ProtocolValidator::check_post_barrier(int node) {
  check(node);
  const MembershipService& ms = cluster_.membership();
  if (ms.enabled() && !ms.is_live(node)) return;
  NodeCache& cache = cluster_.node_cache(node);
  argodir::PyxisDirectory& dir = cluster_.dir();
  const Mode mode = cache.config().classification;

  for (const NodeCache::CachedPage& p : cache.cached_pages()) {
    // The word a node acts on is keyed at classification granularity (the
    // line's first page, except per-page under naive P/S).
    const std::uint64_t key = cache.dir_key(p.page);
    const DirEntry cached = dir.cache_get(node, key);
    if (p.dirty) {
      const bool naive_private =
          mode == Mode::PSNaive && cached.private_to(node);
      if (!naive_private)
        fail(node, p.page, "still dirty after barrier SD+SI");
    }
    if (si_required(mode, cached, node))
      fail(node, p.page, "survived SI fence but classification requires drop");
    if (!dir.host_entry(key).is_reader(node))
      fail(node, p.page, "cached without reader registration at home");
  }
}

}  // namespace argocore
