#include "core/cluster.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "sim/par.hpp"

namespace argocore {

void ClusterConfig::validate() const {
  if (nodes < 1 || nodes > argodir::max_nodes())
    throw std::invalid_argument(
        "ClusterConfig::nodes = " + std::to_string(nodes) +
        " is outside [1, " + std::to_string(argodir::max_nodes()) +
        "]: the directory encodes at most " +
        std::to_string(argodir::max_nodes()) +
        " nodes (ceil(N/32) words of paired reader/writer bits, capped by "
        "the 32-byte extended-atomic operand)");
  if (threads_per_node < 1)
    throw std::invalid_argument(
        "ClusterConfig::threads_per_node = " +
        std::to_string(threads_per_node) + " must be at least 1");
}

}  // namespace argocore

namespace argo {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_((cfg.validate(), cfg)),
      net_(cfg.nodes, cfg.net),
      gmem_(cfg.nodes, cfg.global_mem_bytes, cfg.mapping),
      dir_(gmem_, net_) {
  caches_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n)
    caches_.push_back(std::make_unique<NodeCache>(n, gmem_, net_, dir_,
                                                  cfg_.cache, cfg_.adapt));
  peer_view_.clear();
  for (auto& c : caches_) peer_view_.push_back(c.get());
  for (auto& c : caches_) c->set_peers(&peer_view_);
  net_.enable_faults(cfg_.faults);
  // Membership is always constructed (so accessors work) but caches only
  // get the pointer when the feature is on: a null pointer keeps every
  // Carina path identical to the pre-recovery code.
  membership_ = std::make_unique<argocore::MembershipService>(
      eng_, net_, gmem_, dir_, cfg_.membership, cfg_.nodes);
  membership_->set_caches(&peer_view_);
  for (auto& c : caches_)
    c->set_membership(cfg_.membership.enabled ? membership_.get() : nullptr);
  // Deferred invalidations delivered into a node's directory cache must
  // revoke that node's thread-held soft-TLB translations.
  for (int n = 0; n < cfg_.nodes; ++n)
    dir_.set_gen_slot(n, caches_[static_cast<std::size_t>(n)]->tlb_gen_slot());
  tracer_.configure(cfg_.nodes, cfg_.trace);
  net_.set_tracer(&tracer_);
  dir_.set_tracer(&tracer_);
  for (auto& c : caches_) c->set_tracer(&tracer_);
  register_metrics();
}

Cluster::~Cluster() {
  // Surviving daemon fibers (membership monitors, message handlers) may be
  // parked holding locks on the interconnect; unwind them now, while every
  // member they reference is still alive. eng_ is declared first, so its
  // own destructor would run the unwind *after* net_ and membership_ are
  // gone — a use-after-free for any fiber mid-RPC.
  eng_.shutdown();
  if (!sinks_.empty()) flush_trace();
}

void Cluster::register_metrics() {
  // Every CoherenceStats/NodeNetStats field, registered once under its
  // stable dotted name. The closures read the live per-node storage, so a
  // registry sample is always current.
  auto co = [this](std::uint64_t argocore::CoherenceStats::* field) {
    return [this, field]() {
      std::uint64_t total = 0;
      for (const auto& c : caches_) total += c->stats().*field;
      return total;
    };
  };
  using CS = argocore::CoherenceStats;
  metrics_.add_counter("carina.read_hits", co(&CS::read_hits));
  metrics_.add_counter("carina.read_misses", co(&CS::read_misses));
  metrics_.add_counter("carina.write_hits", co(&CS::write_hits));
  metrics_.add_counter("carina.write_misses", co(&CS::write_misses));
  metrics_.add_counter("carina.home_accesses", co(&CS::home_accesses));
  metrics_.add_counter("carina.line_fetches", co(&CS::line_fetches));
  metrics_.add_counter("carina.pages_fetched", co(&CS::pages_fetched));
  metrics_.add_counter("carina.bytes_fetched", co(&CS::bytes_fetched));
  metrics_.add_counter("carina.writebacks", co(&CS::writebacks));
  metrics_.add_counter("carina.writeback_bytes", co(&CS::writeback_bytes));
  metrics_.add_counter("carina.diffs_built", co(&CS::diffs_built));
  metrics_.add_counter("carina.full_page_writebacks",
                       co(&CS::full_page_writebacks));
  metrics_.add_counter("carina.si_fences", co(&CS::si_fences));
  metrics_.add_counter("carina.sd_fences", co(&CS::sd_fences));
  metrics_.add_counter("carina.si_invalidations", co(&CS::si_invalidations));
  metrics_.add_counter("carina.evictions", co(&CS::evictions));
  metrics_.add_counter("carina.dir_ops", co(&CS::dir_ops));
  metrics_.add_counter("carina.transitions_caused",
                       co(&CS::transitions_caused));
  metrics_.add_counter("carina.checkpoints", co(&CS::checkpoints));
  metrics_.add_counter("carina.checkpoint_bytes", co(&CS::checkpoint_bytes));
  metrics_.add_counter("carina.heals", co(&CS::heals));
  metrics_.add_hist("carina.sd_fence_ns", [this] {
    argoobs::LatencyHist h;
    for (const auto& c : caches_) h += c->stats().sd_fence_ns;
    return h;
  });
  metrics_.add_hist("carina.si_fence_ns", [this] {
    argoobs::LatencyHist h;
    for (const auto& c : caches_) h += c->stats().si_fence_ns;
    return h;
  });

  auto nt = [this](std::uint64_t argonet::NodeNetStats::* field) {
    return [this, field] { return net_.total_stats().*field; };
  };
  using NS = argonet::NodeNetStats;
  metrics_.add_counter("net.rdma_reads", nt(&NS::rdma_reads));
  metrics_.add_counter("net.rdma_writes", nt(&NS::rdma_writes));
  metrics_.add_counter("net.rdma_atomics", nt(&NS::rdma_atomics));
  metrics_.add_counter("net.msgs_sent", nt(&NS::msgs_sent));
  metrics_.add_counter("net.msgs_received", nt(&NS::msgs_received));
  metrics_.add_counter("net.bytes_read", nt(&NS::bytes_read));
  metrics_.add_counter("net.bytes_written", nt(&NS::bytes_written));
  metrics_.add_counter("net.bytes_sent", nt(&NS::bytes_sent));
  metrics_.add_counter("net.nic_busy_ns", nt(&NS::nic_busy));
  metrics_.add_counter("net.faults_injected", nt(&NS::faults_injected));
  metrics_.add_counter("net.retries", nt(&NS::retries));
  metrics_.add_counter("net.backoff_ns", nt(&NS::backoff_time));
  metrics_.add_counter("net.posted_ops", nt(&NS::posted_ops));
  metrics_.add_counter("net.posted_inflight_hwm",
                       nt(&NS::posted_inflight_hwm));

  metrics_.add_counter("trace.emitted", [this] { return tracer_.emitted(); });
  metrics_.add_counter("trace.dropped", [this] { return tracer_.dropped(); });

  // Host-side scheduler diagnostics (sim.*): deterministic for a fixed
  // engine configuration, but NOT part of the cross-engine identity
  // contract — the legacy and sharded schedulers context-switch different
  // amounts, and the slow-path oracle takes none of the fast paths these
  // count. Identity suites compare only non-"sim." counters.
  metrics_.add_counter("sim.context_switches",
                       [this] { return eng_.context_switches(); });
  metrics_.add_counter("sim.runq_pushes", [this] { return eng_.runq_pushes(); });
  metrics_.add_counter("sim.runq_pops", [this] { return eng_.runq_pops(); });
  metrics_.add_counter("sim.runq_purged", [this] { return eng_.runq_purged(); });
  metrics_.add_counter("sim.calendar_resizes",
                       [this] { return eng_.calendar_resizes(); });
  metrics_.add_counter("sim.fast_forwards",
                       [this] { return eng_.delay_fast_forwards(); });
  metrics_.add_counter("sim.stacks_reused",
                       [this] { return eng_.stacks_reused(); });
  // The SmallFn counters are process-wide; report this cluster's share by
  // subtracting the construction-time baseline.
  metrics_.add_counter("sim.effect_pool_hits",
                       [base = argosim::smallfn_inline_hits()] {
                         return argosim::smallfn_inline_hits() - base;
                       });
  metrics_.add_counter("sim.effect_pool_misses",
                       [base = argosim::smallfn_heap_spills()] {
                         return argosim::smallfn_heap_spills() - base;
                       });
  metrics_.add_counter("sim.record_pool_hits",
                       [this] { return net_.record_pool_hits(); });
  metrics_.add_counter("sim.record_pool_misses",
                       [this] { return net_.record_pool_misses(); });

  // Adaptive-tuning metrics exist only when at least one policy is on, so
  // the fixed-knob metric enumeration matches the seed exactly.
  if (cfg_.adapt.any()) {
    auto ad = [this](std::uint64_t argocore::AdaptStats::* field) {
      return [this, field] {
        std::uint64_t total = 0;
        for (const auto& c : caches_) total += c->adapt().stats().*field;
        return total;
      };
    };
    using AS = argocore::AdaptStats;
    metrics_.add_counter("carina.adapt.wb_grows", ad(&AS::wb_grows));
    metrics_.add_counter("carina.adapt.wb_shrinks", ad(&AS::wb_shrinks));
    metrics_.add_counter("carina.adapt.wb_reverts", ad(&AS::wb_reverts));
    metrics_.add_counter("carina.adapt.full_page_selected",
                         ad(&AS::full_page_selected));
    metrics_.add_counter("carina.adapt.density_probes",
                         ad(&AS::density_probes));
    metrics_.add_counter("carina.adapt.prefetch_issued",
                         ad(&AS::prefetch_issued));
    metrics_.add_counter("carina.adapt.prefetched_pages",
                         ad(&AS::prefetched_pages));
    metrics_.add_counter("carina.adapt.prefetch_useful",
                         ad(&AS::prefetch_useful));
    metrics_.add_counter("carina.adapt.prefetch_suppressed",
                         ad(&AS::prefetch_suppressed));
    metrics_.add_counter("carina.adapt.stride_resets", ad(&AS::stride_resets));
    metrics_.add_counter("carina.adapt.wb_capacity", [this] {
      std::uint64_t total = 0;
      for (const auto& c : caches_) total += c->wb_capacity();
      return total;
    });
  }

  // Membership/recovery metrics exist only when the feature is on, so the
  // fault-free metric enumeration matches the seed exactly.
  if (cfg_.membership.enabled) {
    auto ms = [this](std::uint64_t argocore::RecoveryStats::* field) {
      return [this, field] { return membership_->stats().*field; };
    };
    using RS = argocore::RecoveryStats;
    metrics_.add_counter("membership.epoch",
                         [this] { return membership_->epoch(); });
    metrics_.add_counter("membership.live", [this] {
      std::uint64_t live = 0;
      for (int n = 0; n < active_nodes_; ++n)
        if (membership_->is_live(n)) ++live;
      return live;
    });
    metrics_.add_counter("membership.deaths", ms(&RS::deaths));
    metrics_.add_counter("membership.rejoins", ms(&RS::rejoins));
    metrics_.add_counter("membership.probes", ms(&RS::probes));
    metrics_.add_counter("membership.probe_misses", ms(&RS::probe_misses));
    metrics_.add_counter("recovery.events", ms(&RS::recovery_events));
    metrics_.add_counter("recovery.pages_recovered", ms(&RS::pages_recovered));
    metrics_.add_counter("recovery.pages_lost", ms(&RS::pages_lost));
    metrics_.add_counter("recovery.dir_words_rebuilt",
                         ms(&RS::dir_words_rebuilt));
    metrics_.add_counter("recovery.aborted_ops", ms(&RS::aborted_ops));
    metrics_.add_counter("recovery.locks_recovered", ms(&RS::locks_recovered));
    metrics_.add_counter("recovery.stale_msgs_dropped",
                         [this] { return net_.stale_msgs_dropped(); });
    metrics_.add_hist("membership.detect_ns",
                      [this] { return membership_->stats().detect_ns; });
    metrics_.add_hist("recovery.latency_ns",
                      [this] { return membership_->stats().recovery_ns; });
  }
}

void Cluster::reset_classification() {
  for (auto& c : caches_) c->invalidate_all_free();
  dir_.reset_all();
}

Time Cluster::run(const std::function<void(Thread&)>& body) {
  return run_subset(cfg_.nodes, cfg_.threads_per_node, body);
}

void Cluster::maybe_enable_sharding() {
  if (sharding_decided_) return;
  sharding_decided_ = true;
  int workers = cfg_.engine_threads > 0 ? cfg_.engine_threads
                                        : argosim::engine_threads();
  if (argosim::seq_engine()) workers = 1;
  if (workers <= 0) return;  // legacy single-queue engine (the default)

  // Features that need same-time cross-shard wakeups or instant cross-node
  // inspection cannot run under conservative lookahead; keep the legacy
  // engine rather than silently changing their semantics.
  const char* serial_only = nullptr;
  if (cfg_.membership.enabled) {
    serial_only = "membership daemons probe peers at same-time granularity";
  } else if (barrier_hook_) {
    serial_only = "barrier hooks inspect every node's state at one instant";
  } else {
    for (const auto& e : cfg_.faults.crashes) {
      if (e.after_ops > 0) {
        serial_only = "op-count crash triggers resolve across shards";
        break;
      }
    }
  }
  if (serial_only != nullptr) {
    engine_fallback_reason_ = serial_only;
    // Once per process: sweeps and test suites construct hundreds of
    // affected clusters, and a per-construction notice drowns real
    // diagnostics. The per-cluster reason stays queryable via
    // ClusterStats::engine_fallback_reason.
    static std::atomic<bool> notice_printed{false};
    if (!notice_printed.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr, "argo: sharded engine unavailable (%s); %s\n",
                   serial_only, "running on the legacy engine");
    }
    return;
  }

  // Conservative lookahead: every cross-shard effect (RDMA completion or
  // message delivery) is timestamped at least one base verb latency after
  // the instant it is posted.
  const Time lookahead = std::min(cfg_.net.rdma_latency, cfg_.net.msg_latency);
  eng_.enable_sharding(static_cast<std::uint32_t>(cfg_.nodes), lookahead,
                       static_cast<std::uint32_t>(workers));
  tracer_.enable_sharded();
  if (net_.faults_enabled()) net_.faults()->enable_sharded_streams();
}

Time Cluster::run_subset(int use_nodes, int use_threads_per_node,
                         const std::function<void(Thread&)>& body) {
  assert(use_nodes >= 1 && use_nodes <= cfg_.nodes);
  assert(use_threads_per_node >= 1 &&
         use_threads_per_node <= cfg_.threads_per_node);
  active_nodes_ = use_nodes;
  active_tpn_ = use_threads_per_node;
  maybe_enable_sharding();

  node_barriers_.clear();
  for (int n = 0; n < use_nodes; ++n)
    node_barriers_.push_back(std::make_unique<argosim::SimBarrier>(
        static_cast<std::size_t>(use_threads_per_node)));
  // Global rendezvous cost: a dissemination barrier runs ceil(log2 N)
  // message rounds; each round costs one posting plus one wire latency.
  int rounds = 0;
  while ((1 << rounds) < use_nodes) ++rounds;
  barrier_rounds_ = rounds;
  barrier_net_cost_ =
      static_cast<Time>(rounds) * (cfg_.net.msg_latency + cfg_.net.nic_overhead);
  if (eng_.sharded()) {
    // Cross-shard rendezvous point. Fault-free the gate also charges the
    // dissemination cost (release = max arrivals + cost, exactly the
    // legacy barrier + lump-sum delay); with faults the rounds are charged
    // per-link in global_rendezvous, so the gate only synchronizes.
    leader_barrier_.reset();
    leader_gate_ = std::make_unique<argosim::SimGate>(
        &eng_, static_cast<std::size_t>(use_nodes),
        net_.faults_enabled() ? 0 : barrier_net_cost_);
  } else {
    leader_gate_.reset();
    leader_barrier_ = std::make_unique<argosim::SimBarrier>(
        static_cast<std::size_t>(use_nodes));
  }

  // Membership daemons (heartbeat monitors + crash reaper) spawn before
  // the workers so a node already dead from a previous run is reaped at
  // run start, before its fresh workers take their first step.
  membership_->begin_run(use_nodes);

  const Time t0 = eng_.now();
  for (int n = 0; n < use_nodes; ++n) {
    for (int t = 0; t < use_threads_per_node; ++t) {
      const int gid = n * use_threads_per_node + t;
      const int core = t % cfg_.topo.cores;
      std::string name = "n" + std::to_string(n) + "t" + std::to_string(t);
      auto fiber = [this, n, t, gid, core, &body] {
        Thread self(this, n, t, gid, core, caches_[n].get());
        body(self);
      };
      // Sharded: a node's threads live on that node's shard for their
      // whole lifetime (shard = node is the partition the lookahead bound
      // is proved against).
      argosim::SimThread* st =
          eng_.sharded()
              ? eng_.spawn_on(static_cast<std::uint32_t>(n), std::move(name),
                              std::move(fiber))
              : eng_.spawn(std::move(name), std::move(fiber));
      membership_->note_worker(n, st);
    }
  }
  try {
    eng_.run();
  } catch (...) {
    membership_->end_run();
    throw;
  }
  membership_->end_run();
  return eng_.now() - t0;
}

CoherenceStats Cluster::coherence_stats() const {
  CoherenceStats total;
  for (const auto& c : caches_) total += c->stats();
  return total;
}

ClusterStats Cluster::stats() const {
  ClusterStats s;
  s.at = eng_.now();
  s.per_node.reserve(caches_.size());
  s.net_per_node.reserve(caches_.size());
  for (const auto& c : caches_) {
    s.per_node.push_back(c->stats());
    s.coherence += c->stats();
  }
  for (int n = 0; n < cfg_.nodes; ++n) s.net_per_node.push_back(net_.stats(n));
  s.net = net_.total_stats();
  s.counters = metrics_.sample_counters();
  s.hists = metrics_.sample_hists();
  if (engine_fallback_reason_ != nullptr)
    s.engine_fallback_reason = engine_fallback_reason_;
  return s;
}

std::uint64_t ClusterStats::counter(const std::string& name) const {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

argoobs::LatencyHist ClusterStats::hist(const std::string& name) const {
  for (const auto& h : hists)
    if (h.name == name) return h.hist;
  return argoobs::LatencyHist{};
}

Cluster& Cluster::trace_sink(std::unique_ptr<argoobs::TraceSink> sink) {
  assert(sink);
  sinks_.push_back(std::move(sink));
  return *this;
}

void Cluster::flush_trace() {
  if (sinks_.empty()) return;
  const std::vector<argoobs::TraceEvent> events = tracer_.snapshot();
  const std::uint64_t dropped = tracer_.dropped();
  for (auto& s : sinks_) s->flush(events, dropped);
}

void Cluster::reset_stats() {
  for (auto& c : caches_) c->reset_stats();
  net_.reset_stats();
}

void Cluster::rendezvous(Thread& t) {
  auto& nb = *node_barriers_[static_cast<std::size_t>(t.node())];
  nb.arrive_and_wait();
  if (t.tid() == 0) global_rendezvous(t.node());
  nb.arrive_and_wait();
}

void Cluster::global_rendezvous(int node) {
  if (active_nodes_ <= 1) return;
  if (membership_->enabled()) {
    // Surviving-view barrier: completes as soon as every live leader has
    // arrived; a leader that crash-stops mid-round is counted departed by
    // the recovery pass, releasing any stranded round retroactively.
    membership_->barrier().arrive_and_wait(node);
  } else if (leader_gate_) {
    leader_gate_->arrive_and_wait();
    // Fault-free the gate's release time already includes the
    // dissemination cost; with faults fall through to the per-round loop.
    if (!net_.faults_enabled()) return;
  } else {
    leader_barrier_->arrive_and_wait();
  }
  if (!net_.faults_enabled()) {
    // Fault-free: one lump-sum delay (identical to charging each round
    // separately, since virtual delays are additive on one fiber).
    if (barrier_net_cost_ > 0) argosim::delay(barrier_net_cost_);
    return;
  }
  // With faults enabled each dissemination round is a real fallible
  // notification toward that round's partner, retried under RetryPolicy —
  // so a flaky link slows the barrier instead of wedging or corrupting it.
  for (int r = 0; r < barrier_rounds_; ++r) {
    const int partner = (node + (1 << r)) % active_nodes_;
    if (membership_->enabled() && !membership_->is_live(partner))
      continue;  // dead partners participate in nothing
    try {
      net_.barrier_round(node, partner);
    } catch (const argonet::NodeFailedError&) {
      // The partner died but is not yet declared: the rendezvous itself
      // already completed over the arriving view, so the lost notification
      // costs nothing — skip it rather than wait out the detection.
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Thread
// ---------------------------------------------------------------------------

int Thread::nodes() const { return cluster_->active_nodes(); }
int Thread::threads_per_node() const { return cluster_->active_tpn(); }
int Thread::nthreads() const {
  return cluster_->active_nodes() * cluster_->active_tpn();
}

bool Thread::is_home(GAddr a) const {
  return cluster_->gmem().home_of(a) == node_;
}

void Thread::barrier() {
  auto& nb = *cluster_->node_barriers_[static_cast<std::size_t>(node_)];
  nb.arrive_and_wait();
  if (tid_ == 0) {
    // The node leader downgrades the whole node, rendezvouses with the
    // other nodes (no node may re-read before every node has flushed),
    // then self-invalidates for the whole node.
    cache_->sd_fence();
    cluster_->global_rendezvous(node_);
    cache_->si_fence();
    if (cluster_->barrier_hook_) cluster_->barrier_hook_(node_);
  }
  nb.arrive_and_wait();
}

void Thread::load_bytes(GAddr a, std::byte* dst, std::size_t n) {
  argocore::SoftTlb* tlb = tlb_ptr();
  while (n > 0) {
    const std::size_t in_page = kPageSize - argomem::page_offset(a);
    const std::size_t chunk = n < in_page ? n : in_page;
    const std::byte* src = tlb ? tlb->lookup_read(argomem::page_of(a),
                                                  cache_->tlb_generation())
                               : nullptr;
    if (src)
      src += argomem::page_offset(a);
    else
      src = cache_->read_ptr(a, chunk, tlb, &stride_);
    std::memcpy(dst, src, chunk);
    a += chunk;
    dst += chunk;
    n -= chunk;
  }
}

void Thread::store_bytes(GAddr a, const std::byte* src, std::size_t n) {
  argocore::SoftTlb* tlb = tlb_ptr();
  while (n > 0) {
    const std::size_t in_page = kPageSize - argomem::page_offset(a);
    const std::size_t chunk = n < in_page ? n : in_page;
    std::byte* dst = tlb ? tlb->lookup_write(argomem::page_of(a),
                                             cache_->tlb_generation())
                         : nullptr;
    if (dst)
      dst += argomem::page_offset(a);
    else
      dst = cache_->write_ptr(a, chunk, tlb, &stride_);
    std::memcpy(dst, src, chunk);
    a += chunk;
    src += chunk;
    n -= chunk;
  }
}

std::uint64_t Thread::atomic_fetch_add(gptr<std::uint64_t> p,
                                       std::uint64_t v) {
  auto& g = cluster_->gmem();
  return cluster_->net().fetch_add(node_, g.home_of(p.raw()),
                                   g.home_ptr(p), v);
}

std::uint64_t Thread::atomic_fetch_or(gptr<std::uint64_t> p, std::uint64_t v) {
  auto& g = cluster_->gmem();
  return cluster_->net().fetch_or(node_, g.home_of(p.raw()), g.home_ptr(p), v);
}

std::uint64_t Thread::atomic_cas(gptr<std::uint64_t> p, std::uint64_t expected,
                                 std::uint64_t desired) {
  auto& g = cluster_->gmem();
  return cluster_->net().cas(node_, g.home_of(p.raw()), g.home_ptr(p),
                             expected, desired);
}

std::uint64_t Thread::atomic_exchange(gptr<std::uint64_t> p,
                                      std::uint64_t desired) {
  auto& g = cluster_->gmem();
  return cluster_->net().exchange(node_, g.home_of(p.raw()), g.home_ptr(p),
                                  desired);
}

std::uint64_t Thread::atomic_load(gptr<std::uint64_t> p) {
  auto& g = cluster_->gmem();
  std::uint64_t v = 0;
  cluster_->net().read(node_, g.home_of(p.raw()), g.home_ptr(p), &v,
                       sizeof(v));
  return v;
}

void Thread::atomic_store(gptr<std::uint64_t> p, std::uint64_t v) {
  auto& g = cluster_->gmem();
  cluster_->net().write(node_, g.home_of(p.raw()), g.home_ptr(p), &v,
                        sizeof(v));
}

}  // namespace argo
