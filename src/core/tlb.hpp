// Soft-TLB: the MMU analogue for the simulator's explicit access API.
//
// In the original Argo a *cached hit* costs nothing: the page is mapped
// with the right protection, the MMU translates, no handler runs. Only
// misses and permission faults trap into the protocol (paper §4). Our
// Thread::load/store substitution routed every access through the full
// NodeCache::read_ptr/write_ptr path — group hash, line lookup, directory
// cache probe, stats, trace branch — making hits the dominant *host* cost.
//
// SoftTlb restores the MMU cost model. Each Thread keeps two small
// direct-mapped translation arrays (reads and writes) caching
// page → (host pointer, stats counter) mappings. A lookup is a bounds
// check and a pointer add; a hit bumps exactly the CoherenceStats counter
// the slow path would have bumped and returns the same pointer the slow
// path would have returned — nothing else. Hits charge no virtual time
// (slow-path hits charge none either), emit no trace events (hits never
// did), and leave the protocol state untouched, so the fast path is
// observationally invisible. ARGO_SLOW_PATHS=1 bypasses the TLB entirely
// (sim/slowpath.hpp).
//
// Invalidation is generation-based. Every NodeCache keeps one monotonic
// generation counter; TLB entries are stamped with it at insertion and
// match only while it is unchanged. Any protocol event that can change a
// page's contents, residency or write permission — line fill, eviction,
// writeback post/retire, SI/SD fence invalidation, naive-P/S checkpoint
// and heal, a deferred invalidation delivered into our directory cache —
// bumps the generation (see the ++tlb_gen_ sites in carina.cpp and the
// gen-slot hook in dir/pyxis.cpp), so stale entries miss and fall back to
// the slow path. Over-invalidation is always safe: a miss re-runs the
// exact seed path. The analogue of the real system's mprotect() is the
// generation bump: both revoke translations wholesale and let the next
// access re-fault.
//
// Entry rules mirror the slow-path hit conditions they replace:
//  * read entry: page resident + valid + our reader bit set (or homed
//    here + reader bit set). Reader/writer map bits are monotonic between
//    resets (dir/pyxis.hpp), so only residency events — all generation
//    bumps — can end a read translation's validity.
//  * write entry: additionally the page must stay dirty and queued in the
//    write buffer (a store to a clean page must re-twin and re-queue).
//    Writebacks and fences clear dirty state and bump the generation, so
//    a stale write translation can never skip a required write-allocate.
#pragma once

#include <cstddef>
#include <cstdint>

namespace argocore {

/// One cached page translation. `counter` points at the CoherenceStats
/// field a slow-path hit on this page would increment (read_hits,
/// write_hits or home_accesses); `base` is the page's host base pointer.
struct TlbEntry {
  std::uint64_t page = ~std::uint64_t{0};
  std::uint64_t gen = 0;  // matches NodeCache::tlb_generation() when live
  std::byte* base = nullptr;
  std::uint64_t* counter = nullptr;
};

/// Per-thread software TLB: two direct-mapped ways of kEntries slots.
/// Thread objects live on fiber stacks and are private to one fiber, so
/// no synchronization is needed; all threads of a node share the node's
/// generation counter.
class SoftTlb {
 public:
  static constexpr std::size_t kEntries = 64;  // power of two

  /// Translate a read of `page`; returns the page base pointer on a hit
  /// (after bumping the slow path's counter) or nullptr on a miss.
  std::byte* lookup_read(std::uint64_t page, std::uint64_t gen) {
    return lookup(read_, page, gen);
  }

  /// Translate a write of `page` (valid only while the page stays dirty
  /// and write-buffered — insertion sites guarantee that, generation
  /// bumps revoke it).
  std::byte* lookup_write(std::uint64_t page, std::uint64_t gen) {
    return lookup(write_, page, gen);
  }

  void insert_read(std::uint64_t page, std::uint64_t gen, std::byte* base,
                   std::uint64_t* counter) {
    read_[page & (kEntries - 1)] = TlbEntry{page, gen, base, counter};
  }

  void insert_write(std::uint64_t page, std::uint64_t gen, std::byte* base,
                    std::uint64_t* counter) {
    write_[page & (kEntries - 1)] = TlbEntry{page, gen, base, counter};
  }

  /// Drop every entry (tests; generation bumps make this unnecessary in
  /// normal operation).
  void flush() {
    for (auto& e : read_) e = TlbEntry{};
    for (auto& e : write_) e = TlbEntry{};
  }

  /// Host-only diagnostics: hits served by this TLB. Never part of
  /// CoherenceStats (those must be identical with the TLB disabled);
  /// aggregated per node via NodeCache::note_tlb_hits for tests that
  /// assert the fast path actually engages.
  std::uint64_t host_hits = 0;

 private:
  std::byte* lookup(TlbEntry* way, std::uint64_t page, std::uint64_t gen) {
    TlbEntry& e = way[page & (kEntries - 1)];
    if (e.page == page && e.gen == gen) {
      ++*e.counter;  // exactly what the slow-path hit would have done
      ++host_hits;
      return e.base;
    }
    return nullptr;
  }

  TlbEntry read_[kEntries];
  TlbEntry write_[kEntries];
};

}  // namespace argocore
