// Public Argo API: a simulated cluster running the Argo DSM.
//
//   argo::ClusterConfig cfg;
//   cfg.nodes = 4; cfg.threads_per_node = 4;
//   argo::Cluster cluster(cfg);
//   auto data = cluster.alloc<double>(1 << 20);   // global allocation
//   ... initialize via cluster.host_ptr(data) ...
//   cluster.reset_classification();               // end of init (§3.4)
//   argosim::Time t = cluster.run([&](argo::Thread& self) {
//     double v = self.load(data + self.gid());
//     self.store(data + self.gid(), v * 2);
//     self.barrier();
//   });
//
// Thread::load/store are the explicit stand-in for the original system's
// mprotect-trapped accesses: they take exactly the protocol path a fault
// handler would (page-cache lookup → registration → line fetch), and cost
// nothing on hits. See DESIGN.md for this substitution.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "core/carina.hpp"
#include "core/config.hpp"
#include "core/stats.hpp"
#include "core/tlb.hpp"
#include "sim/slowpath.hpp"
#include "dir/pyxis.hpp"
#include "mem/gaddr.hpp"
#include "mem/global_memory.hpp"
#include "net/interconnect.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace argo {

using argocore::CacheConfig;
using argocore::ClusterConfig;
using argocore::CoherenceStats;
using argocore::Mode;
using argocore::NodeCache;
using argomem::GAddr;
using argomem::gptr;
using argomem::kPageSize;
using argosim::Time;

class Cluster;

/// Immutable aggregated statistics snapshot, returned by Cluster::stats().
/// The one sanctioned way for examples/benches/reports to read protocol
/// counters: it survives the cluster and never exposes live storage.
struct ClusterStats {
  Time at = 0;  ///< virtual time the snapshot was taken

  CoherenceStats coherence;   ///< summed over all nodes
  argonet::NodeNetStats net;  ///< summed over all nodes

  std::vector<CoherenceStats> per_node;
  std::vector<argonet::NodeNetStats> net_per_node;

  /// Every registered metric by its stable dotted name ("carina.writebacks",
  /// "net.rdma_reads", ...) — the enumeration exporters should use.
  std::vector<argoobs::CounterSample> counters;
  std::vector<argoobs::HistSample> hists;

  /// Why the cluster fell back to the legacy engine when sharding was
  /// requested (empty when sharding engaged or was never asked for).
  std::string engine_fallback_reason;

  /// Value of one named counter (0 if absent — names are stable, so an
  /// absent name is a typo).
  std::uint64_t counter(const std::string& name) const;
  /// One named histogram (empty if absent).
  argoobs::LatencyHist hist(const std::string& name) const;
};

/// Execution context handed to every simulated application thread.
class Thread {
 public:
  int node() const { return node_; }           ///< node index
  int tid() const { return tid_; }             ///< thread index within node
  int gid() const { return gid_; }             ///< global thread index
  int core() const { return core_; }           ///< core within the node
  int nodes() const;
  int threads_per_node() const;
  int nthreads() const;                        ///< nodes * threads_per_node

  Cluster& cluster() { return *cluster_; }
  NodeCache& cache() { return *cache_; }

  // --- DSM accesses -------------------------------------------------------

  template <typename T>
  T load(gptr<T> p) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    const GAddr a = p.raw();
    const std::size_t off = argomem::page_offset(a);
    if (off + sizeof(T) <= kPageSize) {
      // MMU analogue: a soft-TLB hit is a bounds check + pointer add — the
      // cost model of a protection-mapped page the hardware translates.
      // Misses (and ARGO_SLOW_PATHS=1, where tlb_ptr() is null) take the
      // full protocol walk, which refills the TLB. See src/core/tlb.hpp.
      argocore::SoftTlb* tlb = tlb_ptr();
      if (tlb) {
        if (const std::byte* base = tlb->lookup_read(
                argomem::page_of(a), cache_->tlb_generation())) {
          std::memcpy(&v, base + off, sizeof(T));
          return v;
        }
      }
      std::memcpy(&v, cache_->read_ptr(a, sizeof(T), tlb, &stride_),
                  sizeof(T));
    } else {
      load_bytes(a, reinterpret_cast<std::byte*>(&v), sizeof(T));
    }
    return v;
  }

  template <typename T>
  void store(gptr<T> p, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const GAddr a = p.raw();
    const std::size_t off = argomem::page_offset(a);
    if (off + sizeof(T) <= kPageSize) {
      argocore::SoftTlb* tlb = tlb_ptr();
      if (tlb) {
        if (std::byte* base = tlb->lookup_write(argomem::page_of(a),
                                                cache_->tlb_generation())) {
          std::memcpy(base + off, &v, sizeof(T));
          return;
        }
      }
      std::memcpy(cache_->write_ptr(a, sizeof(T), tlb, &stride_), &v,
                  sizeof(T));
    } else {
      store_bytes(a, reinterpret_cast<const std::byte*>(&v), sizeof(T));
    }
  }

  /// Bulk copies; chunked per page, hitting the same protocol path as
  /// element loads/stores but far cheaper in host time.
  template <typename T>
  void load_bulk(gptr<T> src, T* dst, std::size_t count) {
    load_bytes(src.raw(), reinterpret_cast<std::byte*>(dst),
               count * sizeof(T));
  }
  template <typename T>
  void store_bulk(gptr<T> dst, const T* src, std::size_t count) {
    store_bytes(dst.raw(), reinterpret_cast<const std::byte*>(src),
                count * sizeof(T));
  }

  // --- Span accesses -------------------------------------------------------
  //
  // One translation per page instead of one per element: the span variants
  // resolve `p`'s page once (soft-TLB hit or full protocol walk — the same
  // walk a load/store of the first element would take) and expose the rest
  // of the page directly. Protocol behavior is identical to load_bulk /
  // store_bulk over the same range.
  //
  // Rules of use:
  //  * The span is valid only until this thread's next protocol operation
  //    (any load/store/span/fence/barrier) — copy out or finish iterating
  //    first, and never hold two spans at once: the second translation can
  //    evict the first one's line.
  //  * A store_span's bytes must be fully written by the caller if the page
  //    was not previously written (the span exposes raw page bytes, exactly
  //    like consecutive store()s would).

  /// Read-only view of up to `max_count` elements at `p`, clamped to the
  /// containing page. Never empty for max_count > 0.
  template <typename T>
  std::span<const T> load_span(gptr<T> p, std::size_t max_count) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(kPageSize % sizeof(T) == 0,
                  "span element type must pack evenly into a page");
    const GAddr a = p.raw();
    const std::size_t off = argomem::page_offset(a);
    assert(off % sizeof(T) == 0 && "span base must be element-aligned");
    const std::size_t count =
        std::min(max_count, (kPageSize - off) / sizeof(T));
    if (count == 0) return {};
    argocore::SoftTlb* tlb = tlb_ptr();
    if (tlb) {
      if (const std::byte* base = tlb->lookup_read(
              argomem::page_of(a), cache_->tlb_generation()))
        return {reinterpret_cast<const T*>(base + off), count};
    }
    const std::byte* ptr = cache_->read_ptr(a, count * sizeof(T), tlb,
                                            &stride_);
    return {reinterpret_cast<const T*>(ptr), count};
  }

  /// Writable view of up to `max_count` elements at `p`, clamped to the
  /// containing page. Write-allocates the page exactly like store() does.
  template <typename T>
  std::span<T> store_span(gptr<T> p, std::size_t max_count) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(kPageSize % sizeof(T) == 0,
                  "span element type must pack evenly into a page");
    const GAddr a = p.raw();
    const std::size_t off = argomem::page_offset(a);
    assert(off % sizeof(T) == 0 && "span base must be element-aligned");
    const std::size_t count =
        std::min(max_count, (kPageSize - off) / sizeof(T));
    if (count == 0) return {};
    argocore::SoftTlb* tlb = tlb_ptr();
    if (tlb) {
      if (std::byte* base = tlb->lookup_write(argomem::page_of(a),
                                              cache_->tlb_generation()))
        return {reinterpret_cast<T*>(base + off), count};
    }
    std::byte* ptr = cache_->write_ptr(a, count * sizeof(T), tlb, &stride_);
    return {reinterpret_cast<T*>(ptr), count};
  }

  /// True if `a` is homed on this thread's node (its accesses are local).
  bool is_home(GAddr a) const;

  // --- Time ---------------------------------------------------------------

  /// Charge `ns` of computation to this thread's virtual clock.
  void compute(Time ns) { argosim::delay(ns); }
  Time now() const { return argosim::now(); }

  // --- Synchronization building blocks ------------------------------------

  /// SI fence (acquire side): drop cached pages per classification (§3.1).
  void acquire() { cache_->si_fence(); }
  /// SD fence (release side): make this node's writes globally visible.
  void release() { cache_->sd_fence(); }

  /// Vela hierarchical barrier (§4.1): node-local barrier → node SD →
  /// global rendezvous → node SI → node-local release.
  void barrier();

  // --- Network atomics (for synchronization libraries) --------------------
  //
  // These operate on home memory directly, bypassing the page cache —
  // synchronization "constitutes a data race" (§4) and is implemented with
  // raw RDMA atomics plus explicit SI/SD fences. Never mix them with
  // load/store on the same addresses.

  std::uint64_t atomic_fetch_add(gptr<std::uint64_t> p, std::uint64_t v);
  std::uint64_t atomic_fetch_or(gptr<std::uint64_t> p, std::uint64_t v);
  std::uint64_t atomic_cas(gptr<std::uint64_t> p, std::uint64_t expected,
                           std::uint64_t desired);
  std::uint64_t atomic_exchange(gptr<std::uint64_t> p, std::uint64_t desired);
  std::uint64_t atomic_load(gptr<std::uint64_t> p);
  void atomic_store(gptr<std::uint64_t> p, std::uint64_t v);

 private:
  friend class Cluster;
  Thread(Cluster* cluster, int node, int tid, int gid, int core,
         NodeCache* cache)
      : cluster_(cluster), node_(node), tid_(tid), gid_(gid), core_(core),
        cache_(cache) {}
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  ~Thread() { cache_->note_tlb_hits(tlb_.host_hits); }

  /// The single fast-path gate: null under ARGO_SLOW_PATHS=1, which makes
  /// every access byte-identical to the seed implementation (no lookups,
  /// no fills — read_ptr/write_ptr see a null TLB).
  argocore::SoftTlb* tlb_ptr() {
    return argosim::slow_paths() ? nullptr : &tlb_;
  }

  void load_bytes(GAddr a, std::byte* dst, std::size_t n);
  void store_bytes(GAddr a, const std::byte* src, std::size_t n);

  Cluster* cluster_;
  int node_, tid_, gid_, core_;
  NodeCache* cache_;
  // Per-thread translation cache (~4 KB, lives on the fiber stack with the
  // Thread object).
  argocore::SoftTlb tlb_;
  // Per-thread stride table over this thread's page-miss history
  // (core/adapt.hpp). Always passed down; NodeCache only consults it when
  // the stride-prefetch policy is active. NOT gated on ARGO_SLOW_PATHS:
  // prefetching changes virtual time, so fast and slow host paths must
  // make identical prefetch decisions.
  argocore::StrideTable stride_;
};

/// The simulated Argo cluster: nodes, interconnect, global memory, Pyxis
/// directory, one Carina NodeCache per node, and the virtual-time engine.
class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();  // flushes installed trace sinks

  const ClusterConfig& config() const { return cfg_; }
  int nodes() const { return cfg_.nodes; }
  int threads_per_node() const { return cfg_.threads_per_node; }
  int nthreads() const { return cfg_.nodes * cfg_.threads_per_node; }

  // --- Global memory -------------------------------------------------------

  /// Allocate a global array (host-side; free of virtual time).
  template <typename T>
  gptr<T> alloc(std::size_t count) {
    return gmem_.alloc<T>(count);
  }

  /// Direct host access to the authoritative (home) copy — for workload
  /// initialization before the parallel phase and verification after it.
  template <typename T>
  T* host_ptr(gptr<T> p) {
    return gmem_.home_ptr(p);
  }

  /// Reset reader/writer maps and drop all page caches: the paper's
  /// "initialization writes do not count" adaptation (§3.4). Call between
  /// host-side initialization and run().
  void reset_classification();

  // --- Execution -----------------------------------------------------------

  /// Run `body` on every thread of the cluster; returns the virtual time
  /// the parallel phase took. May be called repeatedly (phases).
  Time run(const std::function<void(Thread&)>& body);

  /// Run `body` only on the first `threads` threads of node 0 (sequential
  /// baselines and single-node scaling points).
  Time run_subset(int use_nodes, int use_threads_per_node,
                  const std::function<void(Thread&)>& body);

  // --- Introspection -------------------------------------------------------

  argosim::Engine& engine() { return eng_; }
  argonet::Interconnect& net() { return net_; }
  argomem::GlobalMemory& gmem() { return gmem_; }
  argodir::PyxisDirectory& dir() { return dir_; }
  NodeCache& node_cache(int node) { return *caches_[node]; }

  /// The crash-stop membership/recovery service (core/membership.hpp).
  /// Always constructed; inert (no fibers, no probes) unless
  /// ClusterConfig::membership.enabled. Exposes per-node views, the
  /// cluster epoch, and per-epoch recovery statistics.
  argocore::MembershipService& membership() { return *membership_; }
  const argocore::MembershipService& membership() const { return *membership_; }

  /// Aggregated immutable statistics snapshot — the public reporting API.
  ClusterStats stats() const;

  CoherenceStats coherence_stats() const;
  argonet::NodeNetStats net_stats() const { return net_.total_stats(); }
  void reset_stats();

  // --- Observability -------------------------------------------------------

  /// The protocol tracer (no-op unless ClusterConfig::trace.enabled).
  argoobs::Tracer& tracer() { return tracer_; }

  /// The metric name registry (every CoherenceStats/NodeNetStats field is
  /// registered under a stable dotted name at construction).
  const argoobs::MetricsRegistry& metrics() const { return metrics_; }

  /// Install a trace exporter; several may be installed. Sinks receive the
  /// merged seq-ordered event snapshot on flush_trace() and once more from
  /// the destructor. Returns *this for chaining.
  Cluster& trace_sink(std::unique_ptr<argoobs::TraceSink> sink);

  /// Push the current trace snapshot through every installed sink.
  void flush_trace();

  Time now() const { return eng_.now(); }

  /// Node/thread counts of the current (or most recent) run_subset call.
  int active_nodes() const { return active_nodes_; }
  int active_tpn() const { return active_tpn_; }

  /// Barrier over all active threads WITHOUT coherence fences: node-local
  /// rendezvous plus the global dissemination cost. Used by runtimes that
  /// have no page caches to maintain (the PGAS baseline).
  void rendezvous(Thread& t);

  /// Install a hook called by each node leader at the end of every Vela
  /// barrier (after its SI fence, before releasing the node's threads),
  /// with the node index. Costs no virtual time. Used by the
  /// ProtocolValidator to check coherence invariants at quiescent points.
  /// A hook inspects every node's state from one node's fiber, so it is a
  /// legacy-engine feature: installing one before the first run keeps the
  /// cluster on the legacy engine; installing one after the sharded engine
  /// has started throws.
  void set_barrier_hook(std::function<void(int)> hook) {
    eng_.require_serial("barrier hooks");
    barrier_hook_ = std::move(hook);
  }

 private:
  friend class Thread;
  void global_rendezvous(int node);  // leader part of the hierarchical barrier
  void maybe_enable_sharding();      // decided once, at the first run
  void register_metrics();

  int active_nodes_ = 1;
  int active_tpn_ = 1;
  bool sharding_decided_ = false;
  /// Why sharding was refused (static string from maybe_enable_sharding;
  /// null when sharded or never requested). Surfaced through stats().
  const char* engine_fallback_reason_ = nullptr;
  ClusterConfig cfg_;
  argosim::Engine eng_;
  argonet::Interconnect net_;
  argomem::GlobalMemory gmem_;
  argodir::PyxisDirectory dir_;
  std::vector<std::unique_ptr<NodeCache>> caches_;
  std::vector<NodeCache*> peer_view_;
  std::unique_ptr<argocore::MembershipService> membership_;
  std::vector<std::unique_ptr<argosim::SimBarrier>> node_barriers_;
  std::unique_ptr<argosim::SimBarrier> leader_barrier_;
  std::unique_ptr<argosim::SimGate> leader_gate_;  // sharded replacement
  Time barrier_net_cost_ = 0;
  int barrier_rounds_ = 0;
  std::function<void(int)> barrier_hook_;
  argoobs::Tracer tracer_;
  argoobs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<argoobs::TraceSink>> sinks_;
};

}  // namespace argo
