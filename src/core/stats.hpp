// Protocol statistics gathered per node by the Carina coherence layer.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace argocore {

/// The histogram primitive lives in the observability layer now; this
/// alias keeps the historical argocore spelling working.
using LatencyHist = argoobs::LatencyHist;

struct CoherenceStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;        ///< stores to already-dirty pages
  std::uint64_t write_misses = 0;      ///< stores needing twin + registration
  std::uint64_t home_accesses = 0;     ///< loads/stores served by home memory

  std::uint64_t line_fetches = 0;      ///< line fills (prefetch included)
  std::uint64_t pages_fetched = 0;
  std::uint64_t bytes_fetched = 0;

  std::uint64_t writebacks = 0;        ///< pages written back (Fig. 10 metric)
  std::uint64_t writeback_bytes = 0;   ///< wire bytes of all writebacks
  std::uint64_t diffs_built = 0;
  std::uint64_t full_page_writebacks = 0;

  std::uint64_t si_fences = 0;
  std::uint64_t sd_fences = 0;
  std::uint64_t si_invalidations = 0;  ///< pages dropped by SI fences
  std::uint64_t evictions = 0;         ///< pages displaced by conflicts

  std::uint64_t dir_ops = 0;           ///< remote directory atomics issued
  std::uint64_t transitions_caused = 0;///< P→S / NW→SW / SW→MW this node caused
  std::uint64_t checkpoints = 0;       ///< naive-P/S checkpoint copies
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t heals = 0;             ///< naive-P/S P→S services from checkpoints

  LatencyHist sd_fence_ns;             ///< per-fence SD drain durations
  LatencyHist si_fence_ns;             ///< per-fence SI sweep durations

  CoherenceStats& operator+=(const CoherenceStats& o) {
    read_hits += o.read_hits;
    read_misses += o.read_misses;
    write_hits += o.write_hits;
    write_misses += o.write_misses;
    home_accesses += o.home_accesses;
    line_fetches += o.line_fetches;
    pages_fetched += o.pages_fetched;
    bytes_fetched += o.bytes_fetched;
    writebacks += o.writebacks;
    writeback_bytes += o.writeback_bytes;
    diffs_built += o.diffs_built;
    full_page_writebacks += o.full_page_writebacks;
    si_fences += o.si_fences;
    sd_fences += o.sd_fences;
    si_invalidations += o.si_invalidations;
    evictions += o.evictions;
    dir_ops += o.dir_ops;
    transitions_caused += o.transitions_caused;
    checkpoints += o.checkpoints;
    checkpoint_bytes += o.checkpoint_bytes;
    heals += o.heals;
    sd_fence_ns += o.sd_fence_ns;
    si_fence_ns += o.si_fence_ns;
    return *this;
  }
};

}  // namespace argocore
