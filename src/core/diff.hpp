// Twin/diff run scanning for multiple-writer writebacks (§3.2).
//
// A self-downgrade transmits only the byte runs that differ between the
// current page and its twin, merging runs separated by short equal
// stretches (one run header costs 8 wire bytes, so gaps under 8 bytes are
// cheaper transmitted inline). The run boundaries are *protocol-visible*:
// they determine the wire bytes charged and hence every downstream virtual
// time, so any faster scanner must emit bit-identical runs.
//
// Two implementations:
//  * diff_runs_reference — the seed's byte-at-a-time scan, kept as the
//    executable specification (and selected by ARGO_SLOW_PATHS);
//  * diff_runs — memcmp prefilter for clean pages plus a uint64-word scan
//    that locates differing bytes eight at a time. A randomized property
//    suite (tests/test_hostperf.cpp) pins the equivalence over adversarial
//    pages: runs at word boundaries, sub-8-byte gaps straddling words,
//    all-equal, all-different, trailing-byte changes.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace argocore {

/// One modified byte run: [off, off + len) differs (modulo merged gaps).
struct DiffRun {
  std::size_t off = 0;
  std::size_t len = 0;
  bool operator==(const DiffRun&) const = default;
};

/// Gaps of up to this many equal bytes are merged into the enclosing run;
/// a run ends once this many consecutive equal bytes follow it. Equals the
/// wire cost of one run header.
inline constexpr std::size_t kDiffMergeGap = 8;

/// Reference scanner: byte-at-a-time, exactly the seed implementation.
/// Appends to `out` (callers clear).
inline void diff_runs_reference(const std::byte* cur, const std::byte* twin,
                                std::size_t n, std::vector<DiffRun>& out) {
  std::size_t i = 0;
  while (i < n) {
    if (cur[i] == twin[i]) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    std::size_t gap = 0;
    while (j < n && gap < kDiffMergeGap) {
      if (cur[j] == twin[j])
        ++gap;
      else
        gap = 0;
      ++j;
    }
    const std::size_t end = j - gap;
    out.push_back(DiffRun{i, end - i});
    i = j;
  }
}

namespace detail {
inline std::uint64_t diff_word(const std::byte* a, const std::byte* b) {
  std::uint64_t wa, wb;  // memcpy loads: alignment-agnostic, folds to movq
  std::memcpy(&wa, a, sizeof(wa));
  std::memcpy(&wb, b, sizeof(wb));
  return wa ^ wb;
}
// Byte index (little-endian) of the first / one-past-last differing byte
// within a nonzero XOR word.
inline std::size_t first_diff_byte(std::uint64_t x) {
  return static_cast<std::size_t>(std::countr_zero(x)) >> 3;
}
inline std::size_t trailing_equal_bytes(std::uint64_t x) {
  return static_cast<std::size_t>(std::countl_zero(x)) >> 3;
}
}  // namespace detail

/// Word-wise scanner: emits exactly the runs of diff_runs_reference (same
/// offsets, same lengths, hence the same wire bytes), locating differing
/// bytes a uint64 at a time behind a whole-buffer memcmp prefilter.
inline void diff_runs(const std::byte* cur, const std::byte* twin,
                      std::size_t n, std::vector<DiffRun>& out) {
  static_assert(std::endian::native == std::endian::little,
                "byte indices are derived from LE lane order");
  if (n == 0 || std::memcmp(cur, twin, n) == 0) return;  // clean page
  constexpr std::size_t W = sizeof(std::uint64_t);
  std::size_t i = 0;
  for (;;) {
    // Skip the equal stretch, a word at a time; land i on a differing byte.
    while (i + W <= n) {
      const std::uint64_t x = detail::diff_word(cur + i, twin + i);
      if (x != 0) {
        i += detail::first_diff_byte(x);
        break;
      }
      i += W;
    }
    while (i < n && cur[i] == twin[i]) ++i;
    if (i >= n) return;
    // Extend the run. Invariant (as in the reference scan): j is the next
    // unexamined byte and `gap` counts the consecutive equal bytes ending
    // just before j; the run ends once gap reaches kDiffMergeGap. Word
    // steps may overshoot gap past the threshold — `j - gap` still lands
    // on the same run end, and the skip phase above absorbs the extra
    // equal bytes before the next run.
    std::size_t j = i + 1;
    std::size_t gap = 0;
    while (j < n && gap < kDiffMergeGap) {
      if (j + W <= n) {
        const std::uint64_t x = detail::diff_word(cur + j, twin + j);
        if (x == 0) {
          gap += W;
          j += W;
          continue;
        }
        const std::size_t lead = detail::first_diff_byte(x);
        if (gap + lead >= kDiffMergeGap) {
          // The equal stretch closes the run before this word's first
          // differing byte; that byte starts the next run.
          gap += lead;
          j += lead;
          break;
        }
        // Run continues through this word: any internal equal stretch is
        // at most W - 2 < kDiffMergeGap bytes, so only the word's trailing
        // equal bytes can extend into a run-ending gap.
        gap = detail::trailing_equal_bytes(x);
        j += W;
        continue;
      }
      if (cur[j] == twin[j])
        ++gap;
      else
        gap = 0;
      ++j;
    }
    out.push_back(DiffRun{i, j - gap - i});
    i = j;
  }
}

}  // namespace argocore
