// NodeSet: a set of node ids sized to the directory's build-time node
// ceiling (kMaxNodes = 128, dir/pyxis.hpp).
//
// Before the multi-word directory, membership masks (dead/departed/
// recovered nodes, barrier arrival maps) were bare uint32_t bitmaps and
// silently capped the cluster at 32 nodes alongside the directory word.
// NodeSet replaces those masks with a two-word bitmap carrying the same
// monotonic-OR update idiom.
#pragma once

#include <array>
#include <cstdint>

namespace argodir {

struct NodeSet {
  // 128 bits: word i covers nodes [64*i, 64*i + 64).
  std::array<std::uint64_t, 2> w{};

  static NodeSet of(int node) {
    NodeSet s;
    s.set(node);
    return s;
  }

  /// The full set {0, ..., n-1} (barrier participant maps).
  static NodeSet first_n(int n) {
    NodeSet s;
    for (int i = 0; i < n; ++i) s.set(i);
    return s;
  }

  void set(int node) { w[word(node)] |= bit(node); }
  void reset(int node) { w[word(node)] &= ~bit(node); }
  bool test(int node) const { return (w[word(node)] & bit(node)) != 0; }

  bool any() const { return (w[0] | w[1]) != 0; }
  bool none() const { return !any(); }
  int count() const {
    return __builtin_popcountll(w[0]) + __builtin_popcountll(w[1]);
  }

  NodeSet& operator|=(const NodeSet& o) {
    w[0] |= o.w[0];
    w[1] |= o.w[1];
    return *this;
  }
  NodeSet& operator&=(const NodeSet& o) {
    w[0] &= o.w[0];
    w[1] &= o.w[1];
    return *this;
  }
  /// Remove `o`'s members from this set.
  NodeSet& operator-=(const NodeSet& o) {
    w[0] &= ~o.w[0];
    w[1] &= ~o.w[1];
    return *this;
  }
  friend NodeSet operator|(NodeSet a, const NodeSet& b) { return a |= b; }
  friend NodeSet operator&(NodeSet a, const NodeSet& b) { return a &= b; }
  friend NodeSet operator-(NodeSet a, const NodeSet& b) { return a -= b; }
  friend bool operator==(const NodeSet& a, const NodeSet& b) {
    return a.w == b.w;
  }
  friend bool operator!=(const NodeSet& a, const NodeSet& b) {
    return !(a == b);
  }

  /// Call `f(node)` for every member, in ascending order.
  template <typename F>
  void for_each(F&& f) const {
    for (int i = 0; i < 2; ++i)
      for (std::uint64_t m = w[i]; m; m &= m - 1)
        f(i * 64 + __builtin_ctzll(m));
  }

 private:
  static constexpr int word(int node) { return node >> 6; }
  static constexpr std::uint64_t bit(int node) {
    return std::uint64_t{1} << (node & 63);
  }
};

}  // namespace argodir
