#include "dir/pyxis.hpp"

#include <algorithm>

namespace argodir {

namespace {

// Under the sharded engine, a displaced owner's TLB generation and
// notification counter belong to that owner's shard: the bump must ride
// inside the fetch_or's remote completion instead of running on the
// notifier's fiber.
inline bool sharded_engine() {
  argosim::Engine* e = argosim::Engine::current();
  return e != nullptr && e->sharded();
}

}  // namespace

PyxisDirectory::PyxisDirectory(GlobalMemory& gmem, argonet::Interconnect& net)
    : gmem_(gmem), net_(net) {
  assert(net.nodes() <= kMaxNodes &&
         "directory entries encode at most kMaxNodes nodes");
  nwords_ = dir_words_for(net.nodes());
  words_.assign(gmem.pages() * static_cast<std::size_t>(nwords_), 0);
  caches_.assign(
      static_cast<std::size_t>(net.nodes()),
      std::vector<std::uint64_t>(
          gmem.pages() * static_cast<std::size_t>(nwords_), 0));
  notify_count_.assign(static_cast<std::size_t>(net.nodes()), 0);
}

DirEntry PyxisDirectory::fetch_or(int src, std::uint64_t page,
                                  const DirEntry& bits) {
  const int home = gmem_.home_of_page(page);
  std::uint64_t* entry = &words_[page * static_cast<std::size_t>(nwords_)];
  DirEntry prev;
  if (nwords_ == 1) {
    // Single-word cluster: exactly the old 8-byte fetch-or fast path.
    prev.w[0] = net_.fetch_or(src, home, entry, bits.w[0]);
  } else {
    net_.fetch_or_span(src, home, entry, bits.w.data(), nwords_,
                       prev.w.data());
  }
  return prev;
}

void PyxisDirectory::post_fetch_or(int src, std::uint64_t page,
                                   const DirEntry& bits, RegTicket& t) {
  const int home = gmem_.home_of_page(page);
  std::uint64_t* entry = &words_[page * static_cast<std::size_t>(nwords_)];
  t.prev.fill(0);
  t.pending = true;
  if (nwords_ == 1) {
    t.multi = false;
    t.h = net_.post_fetch_or(src, home, entry, bits.w[0]);
  } else {
    t.multi = true;
    t.h = net_.post_fetch_or_span(src, home, entry, bits.w.data(), nwords_,
                                  t.prev.data());
  }
}

DirEntry PyxisDirectory::wait_entry(RegTicket& t) {
  assert(t.pending && "wait_entry on an idle ticket");
  const std::uint64_t v = net_.wait(t.h);
  DirEntry prev;
  if (t.multi) {
    prev.w = t.prev;  // filled by the extended atomic before retirement
  } else {
    prev.w[0] = v;
  }
  t.pending = false;
  return prev;
}

DirEntry PyxisDirectory::read(int src, std::uint64_t page) {
  const int home = gmem_.home_of_page(page);
  DirEntry e;
  net_.read(src, home, &words_[page * static_cast<std::size_t>(nwords_)],
            e.w.data(), sizeof(std::uint64_t) * static_cast<std::size_t>(nwords_));
  return e;
}

void PyxisDirectory::reset_all() {
  std::fill(words_.begin(), words_.end(), 0);
  for (auto& c : caches_) std::fill(c.begin(), c.end(), 0);
  // The reset clears every node's own reader/writer bits — the one event
  // that breaks the monotonicity TLB read entries rely on.
  for (std::size_t n = 0; n < gen_slots_.size(); ++n)
    bump_gen(static_cast<int>(n));
}

void PyxisDirectory::host_scrub_node(int victim) {
  const std::uint64_t mask =
      DirEntry::reader_bit(victim) | DirEntry::writer_bit(victim);
  const std::size_t word = static_cast<std::size_t>(DirEntry::word_of(victim));
  for (std::size_t p = 0; p < words_.size() / nwords_; ++p)
    words_[p * static_cast<std::size_t>(nwords_) + word] &= ~mask;
}

void PyxisDirectory::cache_merge_remote(int src, int dst, std::uint64_t page,
                                        const DirEntry& entry) {
  // One small RDMA atomic per touched word into the displaced owner's
  // (registered) directory-cache window. ORs at completion time, so they
  // commute with the owner's own lookups and with racing notifications.
  std::uint64_t* slot = cache_slot(dst, page);
  for (int i = 0; i < nwords_; ++i) {
    const std::uint64_t word = entry.w[static_cast<std::size_t>(i)];
    if (word == 0) continue;
    if (sharded_engine()) {
      net_.fetch_or(src, dst, slot + i, word, [this, dst](std::uint64_t) {
        bump_gen(dst);
        ++notify_count_[static_cast<std::size_t>(dst)];
      });
    } else {
      net_.fetch_or(src, dst, slot + i, word);
      bump_gen(dst);  // deferred invalidation delivered: revoke dst's TLB
      ++notify_count_[static_cast<std::size_t>(dst)];
    }
  }
  if (tracer_)
    tracer_->emit(src, argoobs::Ev::DeferredInval, page,
                  argoobs::kUnknownState, static_cast<std::uint64_t>(dst));
}

void PyxisDirectory::cache_merge_remote_batch(int src,
                                              std::vector<DirNotify> batch) {
  if (batch.empty()) return;
  std::sort(batch.begin(), batch.end(),
            [](const DirNotify& a, const DirNotify& b) {
              return a.dst != b.dst ? a.dst < b.dst : a.page < b.page;
            });
  std::vector<argonet::PostedHandle> posted;
  posted.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size();) {
    DirEntry merged;
    std::size_t j = i;
    while (j < batch.size() && batch[j].dst == batch[i].dst &&
           batch[j].page == batch[i].page) {
      merged |= batch[j].entry;
      ++j;
    }
    const int dst = batch[i].dst;
    std::uint64_t* slot = cache_slot(dst, batch[i].page);
    for (int k = 0; k < nwords_; ++k) {
      const std::uint64_t word = merged.w[static_cast<std::size_t>(k)];
      if (word == 0) continue;
      if (sharded_engine()) {
        posted.push_back(net_.post_fetch_or(
            src, dst, slot + k, word, [this, dst](std::uint64_t) {
              bump_gen(dst);
              ++notify_count_[static_cast<std::size_t>(dst)];
            }));
      } else {
        posted.push_back(net_.post_fetch_or(src, dst, slot + k, word));
        bump_gen(dst);  // deferred invalidation: revoke dst's TLB
        ++notify_count_[static_cast<std::size_t>(dst)];
      }
    }
    if (tracer_)
      tracer_->emit(src, argoobs::Ev::DeferredInval, batch[i].page,
                    argoobs::kUnknownState,
                    static_cast<std::uint64_t>(batch[i].dst));
    i = j;
  }
  for (const argonet::PostedHandle& h : posted) net_.wait(h);
}

}  // namespace argodir
