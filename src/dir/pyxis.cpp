#include "dir/pyxis.hpp"

#include <algorithm>

namespace argodir {

namespace {

// Under the sharded engine, a displaced owner's TLB generation and
// notification counter belong to that owner's shard: the bump must ride
// inside the fetch_or's remote completion instead of running on the
// notifier's fiber.
inline bool sharded_engine() {
  argosim::Engine* e = argosim::Engine::current();
  return e != nullptr && e->sharded();
}

}  // namespace

PyxisDirectory::PyxisDirectory(GlobalMemory& gmem, argonet::Interconnect& net)
    : gmem_(gmem), net_(net) {
  words_.assign(gmem.pages(), 0);
  caches_.assign(static_cast<std::size_t>(net.nodes()),
                 std::vector<std::uint64_t>(gmem.pages(), 0));
  notify_count_.assign(static_cast<std::size_t>(net.nodes()), 0);
  assert(net.nodes() <= kMaxNodes &&
         "directory word encodes at most 32 nodes");
}

DirWord PyxisDirectory::fetch_or(int src, std::uint64_t page,
                                 std::uint64_t bits) {
  const int home = gmem_.home_of_page(page);
  std::uint64_t prev = net_.fetch_or(src, home, &words_[page], bits);
  return DirWord{prev};
}

argonet::PostedHandle PyxisDirectory::post_fetch_or(int src,
                                                    std::uint64_t page,
                                                    std::uint64_t bits) {
  const int home = gmem_.home_of_page(page);
  return net_.post_fetch_or(src, home, &words_[page], bits);
}

DirWord PyxisDirectory::wait_word(argonet::PostedHandle h) {
  return DirWord{net_.wait(h)};
}

DirWord PyxisDirectory::read(int src, std::uint64_t page) {
  const int home = gmem_.home_of_page(page);
  std::uint64_t word = 0;
  net_.read(src, home, &words_[page], &word, sizeof(word));
  return DirWord{word};
}

void PyxisDirectory::reset_all() {
  std::fill(words_.begin(), words_.end(), 0);
  for (auto& c : caches_) std::fill(c.begin(), c.end(), 0);
  // The reset clears every node's own reader/writer bits — the one event
  // that breaks the monotonicity TLB read entries rely on.
  for (std::size_t n = 0; n < gen_slots_.size(); ++n)
    bump_gen(static_cast<int>(n));
}

void PyxisDirectory::cache_merge_remote(int src, int dst, std::uint64_t page,
                                        std::uint64_t word) {
  // One small RDMA atomic into the displaced owner's (registered)
  // directory-cache window. An OR at completion time, so it commutes with
  // the owner's own lookups and with other racing notifications.
  if (sharded_engine()) {
    net_.fetch_or(src, dst, &cache_slot(dst, page), word,
                  [this, dst](std::uint64_t) {
                    bump_gen(dst);
                    ++notify_count_[static_cast<std::size_t>(dst)];
                  });
  } else {
    net_.fetch_or(src, dst, &cache_slot(dst, page), word);
    bump_gen(dst);  // deferred invalidation delivered: revoke dst's TLB
    ++notify_count_[static_cast<std::size_t>(dst)];
  }
  if (tracer_)
    tracer_->emit(src, argoobs::Ev::DeferredInval, page,
                  argoobs::kUnknownState, static_cast<std::uint64_t>(dst));
}

void PyxisDirectory::cache_merge_remote_batch(int src,
                                              std::vector<DirNotify> batch) {
  if (batch.empty()) return;
  std::sort(batch.begin(), batch.end(),
            [](const DirNotify& a, const DirNotify& b) {
              return a.dst != b.dst ? a.dst < b.dst : a.page < b.page;
            });
  std::vector<argonet::PostedHandle> posted;
  posted.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size();) {
    std::uint64_t word = 0;
    std::size_t j = i;
    while (j < batch.size() && batch[j].dst == batch[i].dst &&
           batch[j].page == batch[i].page) {
      word |= batch[j].word;
      ++j;
    }
    const int dst = batch[i].dst;
    if (sharded_engine()) {
      posted.push_back(net_.post_fetch_or(
          src, dst, &cache_slot(dst, batch[i].page), word,
          [this, dst](std::uint64_t) {
            bump_gen(dst);
            ++notify_count_[static_cast<std::size_t>(dst)];
          }));
    } else {
      posted.push_back(net_.post_fetch_or(
          src, dst, &cache_slot(dst, batch[i].page), word));
      bump_gen(dst);  // deferred invalidation: revoke dst's TLB
      ++notify_count_[static_cast<std::size_t>(dst)];
    }
    if (tracer_)
      tracer_->emit(src, argoobs::Ev::DeferredInval, batch[i].page,
                    argoobs::kUnknownState,
                    static_cast<std::uint64_t>(batch[i].dst));
    i = j;
  }
  for (const argonet::PostedHandle& h : posted) net_.wait(h);
}

}  // namespace argodir
