// Pyxis: the passive classification directory (paper §3.3–3.5).
//
// For every page the home node holds a *full map* of readers and writers.
// The directory is pure metadata: it is only ever read and written by RDMA
// issued from requesting nodes — there is no directory agent, no message
// handler, no state machine running at the home. Classification
// (Private/Shared, No-Writer/Single-Writer/Multiple-Writers) is *inferred*
// by the accessing nodes from the maps.
//
// Encoding: each page's entry is ceil(N/32) consecutive 64-bit words. Word
// i covers nodes [32i, 32i+32): within it, bit r (r < 32) = node 32i+r has
// read the page, bit 32+w = node 32i+w has written it. A single extended
// fetch-or spanning the entry therefore registers the caller and returns
// both full maps in one network atomic — the paper's "Fetch&Add [that]
// returns the updated reader and writer full maps". One word (N <= 32)
// uses the plain 8-byte fetch-or; larger clusters (up to kMaxNodes = 128)
// use the masked extended atomic, whose 32-byte operand cap on
// ConnectX-class HCAs sets the build-time ceiling.
//
// Every node also keeps a *directory cache*: a local copy of the entry for
// every page it has ever looked up. Nodes that cause a classification
// transition (P→S, NW→SW, SW→MW) notify the displaced owner by remotely
// writing the updated entry into the owner's directory cache (one RDMA
// atomic per touched word, no handler). The owner observes the change at
// its next fence or miss — the paper's *deferred invalidation*, valid
// under DRF semantics.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "mem/global_memory.hpp"
#include "net/interconnect.hpp"

namespace argodir {

using argomem::GAddr;
using argomem::GlobalMemory;

/// Build-time cluster-size ceiling: kMaxDirWords extended-atomic words of
/// kNodesPerWord paired reader/writer bits each.
inline constexpr int kNodesPerWord = 32;
inline constexpr int kMaxDirWords = argonet::Interconnect::kMaxAtomicSpan;
inline constexpr int kMaxNodes = kNodesPerWord * kMaxDirWords;

/// Public accessor for the ceiling. Code outside src/dir/ must use this
/// (or ClusterConfig::validate()) instead of naming kMaxNodes directly —
/// scripts/check.sh gates on it.
inline constexpr int max_nodes() { return kMaxNodes; }

/// Directory words needed to encode `nodes` reader/writer maps.
inline constexpr int dir_words_for(int nodes) {
  return (nodes + kNodesPerWord - 1) / kNodesPerWord;
}

/// Reader/writer full maps for one page, viewed over the entry's word
/// span. Unused high words are always zero, so every query scans the full
/// kMaxDirWords array unconditionally; with one live word that degenerates
/// to the old single-uint64_t accessors.
struct DirEntry {
  std::array<std::uint64_t, kMaxDirWords> w{};

  static constexpr int word_of(int node) { return node / kNodesPerWord; }
  static constexpr std::uint64_t reader_bit(int node) {
    return std::uint64_t{1} << (node % kNodesPerWord);
  }
  static constexpr std::uint64_t writer_bit(int node) {
    return std::uint64_t{1} << (kNodesPerWord + node % kNodesPerWord);
  }

  static DirEntry reader(int node) { return DirEntry{}.add_reader(node); }
  static DirEntry writer(int node) { return DirEntry{}.add_writer(node); }
  static DirEntry accessor(int node) {
    return DirEntry{}.add_reader(node).add_writer(node);
  }

  /// Per-word 32-bit maps: readers/writers among nodes
  /// [32*word, 32*word + 32).
  std::uint32_t readers(int word = 0) const {
    return static_cast<std::uint32_t>(w[static_cast<std::size_t>(word)]);
  }
  std::uint32_t writers(int word = 0) const {
    return static_cast<std::uint32_t>(w[static_cast<std::size_t>(word)] >>
                                      kNodesPerWord);
  }
  /// Nodes in `word`'s range that have touched the page (read or write).
  std::uint32_t accessors(int word = 0) const {
    return readers(word) | writers(word);
  }

  bool is_reader(int node) const {
    return readers(word_of(node)) >> (node % kNodesPerWord) & 1;
  }
  bool is_writer(int node) const {
    return writers(word_of(node)) >> (node % kNodesPerWord) & 1;
  }
  bool is_accessor(int node) const {
    return accessors(word_of(node)) >> (node % kNodesPerWord) & 1;
  }

  int reader_count() const {
    int c = 0;
    for (int i = 0; i < kMaxDirWords; ++i) c += __builtin_popcount(readers(i));
    return c;
  }
  int writer_count() const {
    int c = 0;
    for (int i = 0; i < kMaxDirWords; ++i) c += __builtin_popcount(writers(i));
    return c;
  }
  int accessor_count() const {
    int c = 0;
    for (int i = 0; i < kMaxDirWords; ++i)
      c += __builtin_popcount(accessors(i));
    return c;
  }

  /// Any bit set in any word.
  bool any() const {
    std::uint64_t acc = 0;
    for (std::uint64_t x : w) acc |= x;
    return acc != 0;
  }

  /// Private: at most one node — `node` — has ever accessed the page.
  bool private_to(int node) const {
    for (int i = 0; i < kMaxDirWords; ++i) {
      std::uint32_t a = accessors(i);
      if (i == word_of(node)) a &= ~(std::uint32_t{1} << (node % kNodesPerWord));
      if (a != 0) return false;
    }
    return true;
  }

  /// `node` has touched the page and nobody else has.
  bool self_only(int node) const {
    return is_accessor(node) && private_to(node);
  }

  /// `node` is the page's one and only writer — checked across every
  /// word, not just node's own (the 32-bit `writers() == 1u << node`
  /// idiom this replaces was wrong past one word).
  bool sole_writer(int node) const {
    for (int i = 0; i < kMaxDirWords; ++i) {
      const std::uint32_t ws = writers(i);
      if (i == word_of(node)) {
        if (ws != std::uint32_t{1} << (node % kNodesPerWord)) return false;
      } else if (ws != 0) {
        return false;
      }
    }
    return true;
  }

  /// Index of the single reader/writer/accessor (precondition: the
  /// respective count is exactly 1).
  int single_reader() const {
    for (int i = 0; i < kMaxDirWords; ++i)
      if (readers(i)) return i * kNodesPerWord + __builtin_ctz(readers(i));
    return -1;
  }
  int single_writer() const {
    for (int i = 0; i < kMaxDirWords; ++i)
      if (writers(i)) return i * kNodesPerWord + __builtin_ctz(writers(i));
    return -1;
  }
  int single_accessor() const {
    for (int i = 0; i < kMaxDirWords; ++i)
      if (accessors(i)) return i * kNodesPerWord + __builtin_ctz(accessors(i));
    return -1;
  }

  DirEntry& add_reader(int node) {
    w[static_cast<std::size_t>(word_of(node))] |= reader_bit(node);
    return *this;
  }
  DirEntry& add_writer(int node) {
    w[static_cast<std::size_t>(word_of(node))] |= writer_bit(node);
    return *this;
  }

  DirEntry& operator|=(const DirEntry& o) {
    for (std::size_t i = 0; i < w.size(); ++i) w[i] |= o.w[i];
    return *this;
  }
  friend DirEntry operator|(DirEntry a, const DirEntry& b) { return a |= b; }
  friend bool operator==(const DirEntry& a, const DirEntry& b) {
    return a.w == b.w;
  }
  friend bool operator!=(const DirEntry& a, const DirEntry& b) {
    return !(a == b);
  }

  /// Call `f(node)` for every reader, in ascending node order.
  template <typename F>
  void for_each_reader(F&& f) const {
    for (int i = 0; i < kMaxDirWords; ++i)
      for (std::uint32_t m = readers(i); m; m &= m - 1)
        f(i * kNodesPerWord + __builtin_ctz(m));
  }
};

// Directory-cache entries start at 0 ("no knowledge"). Because maps are
// monotonic (bits are only ever set between resets), every update — the
// node's own lookups and remote transition notifications alike — is an OR,
// so concurrent updates commute word-wise and no versioning is needed. A
// node with a page in its page cache always has at least its own reader
// bit cached.

/// One pending transition notification: OR `entry` into `dst`'s directory
/// cache slot for `page`. Batches of these are coalesced and posted by
/// cache_merge_remote_batch.
struct DirNotify {
  int dst;
  std::uint64_t page;
  DirEntry entry;
};

/// An in-flight posted registration: the posted handle plus the pre-OR
/// snapshot buffer the extended atomic fills by retirement time. The
/// ticket must stay alive and in place (no moves) between post_fetch_or
/// and wait_entry — the NIC effect holds a pointer into `prev`.
struct RegTicket {
  argonet::PostedHandle h{};
  std::array<std::uint64_t, kMaxDirWords> prev{};
  bool pending = false;
  bool multi = false;

  explicit operator bool() const { return pending; }
};

/// The home-side directory plus each node's directory cache.
class PyxisDirectory {
 public:
  PyxisDirectory(GlobalMemory& gmem, argonet::Interconnect& net);

  /// Attach a protocol tracer (not owned; may be null). Emits DeferredInval
  /// events for transition notifications toward displaced owners.
  void set_tracer(argoobs::Tracer* tracer) { tracer_ = tracer; }

  /// Words per directory entry for this cluster size (1 up to N = 32
  /// nodes — the old single-word layout — through kMaxDirWords at 128).
  int entry_words() const { return nwords_; }

  // --- Home-side directory, accessed only via RDMA ----------------------

  /// Register bits (reader and/or writer) for `page` at its home directory.
  /// Issued by node `src`; returns the entry *before* the OR (the caller
  /// derives the updated maps locally). Charged as one remote atomic: the
  /// plain 8-byte fetch-or at one word, the masked extended atomic above.
  DirEntry fetch_or(int src, std::uint64_t page, const DirEntry& bits);

  /// Posted variant of fetch_or: returns immediately after the NIC charge
  /// so the caller can overlap the registration with the line's data
  /// fetch; redeem the previous entry with wait_entry. At pipeline depth 1
  /// this is exactly fetch_or. The ticket must outlive the op in place.
  void post_fetch_or(int src, std::uint64_t page, const DirEntry& bits,
                     RegTicket& t);

  /// Retire a post_fetch_or and return the entry before the OR.
  DirEntry wait_entry(RegTicket& t);

  /// Read the home directory entry without modifying it (one RDMA read of
  /// entry_words() * 8 bytes).
  DirEntry read(int src, std::uint64_t page);

  /// Host-side (zero-cost) view of a home directory entry, for tests and
  /// benchmark reporting outside the simulation.
  DirEntry host_entry(std::uint64_t page) const {
    return load_entry(&words_[page * static_cast<std::size_t>(nwords_)]);
  }

  /// Zero every map and every directory cache. Models the paper's reset of
  /// reader/writer maps at the end of the (sequential) initialization phase
  /// (§3.4: "initialization writes do not count"). Collective; free.
  void reset_all();

  // --- Crash-recovery host-side mutators ---------------------------------
  // The recovery pass (core/membership.cpp) rebuilds dead-homed directory
  // entries from survivors' caches and scrubs a dead node's bits
  // everywhere. These are host-side (zero virtual cost): the network
  // charges for the reconstruction are accounted once by the recovery pass
  // itself.

  /// Overwrite the home entry of `page` (recovery reconstruction only).
  void host_set_entry(std::uint64_t page, const DirEntry& e) {
    store_entry(&words_[page * static_cast<std::size_t>(nwords_)], e);
  }

  /// Clear `victim`'s reader and writer bits from every home directory
  /// entry — used to retire a dead node's bits cluster-wide. Survivor
  /// caches may transiently keep stale copies of the victim's bits
  /// (in-flight notifications); the validator masks departed nodes
  /// accordingly.
  void host_scrub_node(int victim);

  // --- Per-node directory caches -----------------------------------------

  /// Local lookup in `node`'s directory cache (free: node-local memory).
  /// Returns the zero entry if the node has no knowledge of the page.
  DirEntry cache_get(int node, std::uint64_t page) const {
    return load_entry(&caches_[static_cast<std::size_t>(node)]
                              [page * static_cast<std::size_t>(nwords_)]);
  }

  /// Merge new knowledge into `node`'s own cache (free: node-local).
  void cache_merge_local(int node, std::uint64_t page, const DirEntry& e) {
    std::uint64_t* slot = cache_slot(node, page);
    for (int i = 0; i < nwords_; ++i)
      slot[i] |= e.w[static_cast<std::size_t>(i)];
  }

  /// Remotely merge `entry` into `dst`'s directory cache: the RDMA
  /// notification a transition-causing node uses to tell a displaced
  /// private owner or single writer. Charged as one remote atomic per
  /// *touched* (nonzero) word of the entry, issued by `src`.
  void cache_merge_remote(int src, int dst, std::uint64_t page,
                          const DirEntry& entry);

  /// Pipelined notification fan-out: coalesce entries that target the same
  /// (destination, directory entry) into one merged entry — several pages
  /// of one line share an entry, so a transition touching many of them
  /// needs one OR, not one per page — then post the distinct atomics (one
  /// per touched word) back to back and wait for all of them. Notification
  /// counts reflect the coalesced (actually transmitted) atomics.
  void cache_merge_remote_batch(int src, std::vector<DirNotify> batch);

  /// Number of transition notifications delivered to each node (stats).
  std::uint64_t notifications(int node) const {
    return notify_count_[static_cast<std::size_t>(node)];
  }

  /// Register `node`'s soft-TLB generation counter (see core/tlb.hpp). A
  /// deferred invalidation merged into that node's directory cache bumps
  /// it, so thread-held translations re-validate against the new entry.
  /// (Merges only OR bits in, which cannot clear the owner's own hit
  /// conditions — the bump is conservative, matching the invalidation
  /// event list.) Null slots (tests constructing a bare directory) are
  /// ignored.
  void set_gen_slot(int node, std::uint64_t* slot) {
    if (gen_slots_.size() < static_cast<std::size_t>(node) + 1)
      gen_slots_.resize(static_cast<std::size_t>(node) + 1, nullptr);
    gen_slots_[static_cast<std::size_t>(node)] = slot;
  }

 private:
  void bump_gen(int node) {
    if (static_cast<std::size_t>(node) < gen_slots_.size() &&
        gen_slots_[static_cast<std::size_t>(node)])
      ++*gen_slots_[static_cast<std::size_t>(node)];
  }

  std::uint64_t* cache_slot(int node, std::uint64_t page) {
    return &caches_[static_cast<std::size_t>(node)]
                   [page * static_cast<std::size_t>(nwords_)];
  }

  DirEntry load_entry(const std::uint64_t* p) const {
    DirEntry e;
    for (int i = 0; i < nwords_; ++i) e.w[static_cast<std::size_t>(i)] = p[i];
    return e;
  }
  void store_entry(std::uint64_t* p, const DirEntry& e) {
    for (int i = 0; i < nwords_; ++i) p[i] = e.w[static_cast<std::size_t>(i)];
  }

  GlobalMemory& gmem_;
  argonet::Interconnect& net_;
  argoobs::Tracer* tracer_ = nullptr;
  int nwords_ = 1;                    // words per entry for this cluster
  std::vector<std::uint64_t> words_;  // home dir, nwords_ per page
  std::vector<std::uint64_t> notify_count_;
  std::vector<std::vector<std::uint64_t>> caches_;  // [node][page * nwords_]
  std::vector<std::uint64_t*> gen_slots_;  // per-node soft-TLB generations
};

}  // namespace argodir
