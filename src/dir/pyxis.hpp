// Pyxis: the passive classification directory (paper §3.3–3.5).
//
// For every page the home node holds a *full map* of readers and writers.
// The directory is pure metadata: it is only ever read and written by RDMA
// issued from requesting nodes — there is no directory agent, no message
// handler, no state machine running at the home. Classification
// (Private/Shared, No-Writer/Single-Writer/Multiple-Writers) is *inferred*
// by the accessing nodes from the maps.
//
// Encoding: one 64-bit word per page; bit r (r < 32) = node r has read the
// page, bit 32+w = node w has written it. A single fetch-or therefore
// registers the caller and returns both maps in one network atomic — the
// paper's "Fetch&Add [that] returns the updated reader and writer full
// maps". This caps the cluster at 32 nodes (the paper's own runs beyond 32
// nodes are reproduced at reduced scale; see EXPERIMENTS.md).
//
// Every node also keeps a *directory cache*: a local copy of the word for
// every page it has ever looked up. Nodes that cause a classification
// transition (P→S, NW→SW, SW→MW) notify the displaced owner by remotely
// writing the updated word into the owner's directory cache (one RDMA
// write, no handler). The owner observes the change at its next fence or
// miss — the paper's *deferred invalidation*, valid under DRF semantics.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "mem/global_memory.hpp"
#include "net/interconnect.hpp"

namespace argodir {

using argomem::GAddr;
using argomem::GlobalMemory;

/// Maximum cluster size representable in one directory word.
inline constexpr int kMaxNodes = 32;

/// Reader/writer full maps for one page.
struct DirWord {
  std::uint64_t raw = 0;

  static constexpr std::uint64_t reader_bit(int node) {
    return std::uint64_t{1} << node;
  }
  static constexpr std::uint64_t writer_bit(int node) {
    return std::uint64_t{1} << (32 + node);
  }

  std::uint32_t readers() const { return static_cast<std::uint32_t>(raw); }
  std::uint32_t writers() const { return static_cast<std::uint32_t>(raw >> 32); }

  bool is_reader(int node) const { return readers() >> node & 1; }
  bool is_writer(int node) const { return writers() >> node & 1; }

  int reader_count() const { return __builtin_popcount(readers()); }
  int writer_count() const { return __builtin_popcount(writers()); }

  /// All nodes that have touched the page (read or write).
  std::uint32_t accessors() const { return readers() | writers(); }

  /// Private: at most one node has ever accessed the page.
  bool private_to(int node) const {
    return (accessors() & ~(std::uint32_t{1} << node)) == 0;
  }

  /// Index of the single reader/writer (precondition: count == 1).
  int single_reader() const { return __builtin_ctz(readers()); }
  int single_writer() const { return __builtin_ctz(writers()); }
};

// Directory-cache words start at 0 ("no knowledge"). Because maps are
// monotonic (bits are only ever set between resets), every update — the
// node's own lookups and remote transition notifications alike — is an OR,
// so concurrent updates commute and no versioning is needed. A node with a
// page in its page cache always has at least its own reader bit cached.

/// One pending transition notification: OR `word` into `dst`'s directory
/// cache slot for `page`. Batches of these are coalesced and posted by
/// cache_merge_remote_batch.
struct DirNotify {
  int dst;
  std::uint64_t page;
  std::uint64_t word;
};

/// The home-side directory plus each node's directory cache.
class PyxisDirectory {
 public:
  PyxisDirectory(GlobalMemory& gmem, argonet::Interconnect& net);

  /// Attach a protocol tracer (not owned; may be null). Emits DeferredInval
  /// events for transition notifications toward displaced owners.
  void set_tracer(argoobs::Tracer* tracer) { tracer_ = tracer; }

  // --- Home-side directory, accessed only via RDMA ----------------------

  /// Register bits (reader and/or writer) for `page` at its home directory.
  /// Issued by node `src`; returns the word *before* the OR (the caller
  /// derives the updated maps locally). Charged as one remote atomic.
  DirWord fetch_or(int src, std::uint64_t page, std::uint64_t bits);

  /// Posted variant of fetch_or: returns immediately after the NIC charge
  /// so the caller can overlap the registration with the line's data fetch;
  /// redeem the previous word with wait_word. At pipeline depth 1 this is
  /// exactly fetch_or.
  argonet::PostedHandle post_fetch_or(int src, std::uint64_t page,
                                      std::uint64_t bits);

  /// Retire a post_fetch_or and return the word before the OR.
  DirWord wait_word(argonet::PostedHandle h);

  /// Read the home directory word without modifying it (one RDMA read).
  DirWord read(int src, std::uint64_t page);

  /// Host-side (zero-cost) view of a home directory word, for tests and
  /// benchmark reporting outside the simulation.
  DirWord host_word(std::uint64_t page) const { return DirWord{words_[page]}; }

  /// Zero every map and every directory cache. Models the paper's reset of
  /// reader/writer maps at the end of the (sequential) initialization phase
  /// (§3.4: "initialization writes do not count"). Collective; free.
  void reset_all();

  // --- Crash-recovery host-side mutators ---------------------------------
  // The recovery pass (core/membership.cpp) rebuilds dead-homed directory
  // words from survivors' caches and scrubs a dead node's bits everywhere.
  // These are host-side (zero virtual cost): the network charges for the
  // reconstruction are accounted once by the recovery pass itself.

  /// Overwrite the home word of `page` (recovery reconstruction only).
  void host_set_word(std::uint64_t page, std::uint64_t w) { words_[page] = w; }

  /// Clear `mask` bits from every home directory word — used to retire a
  /// dead node's reader/writer bits cluster-wide. Survivor caches may
  /// transiently keep stale copies of the victim's bits (in-flight
  /// notifications); the validator masks departed nodes accordingly.
  void host_scrub_bits(std::uint64_t mask) {
    for (auto& w : words_) w &= ~mask;
  }

  // --- Per-node directory caches -----------------------------------------

  /// Local lookup in `node`'s directory cache (free: node-local memory).
  /// Returns 0 if the node has no knowledge of the page.
  std::uint64_t cache_get(int node, std::uint64_t page) const {
    return caches_[static_cast<std::size_t>(node)][page];
  }

  /// Merge new knowledge into `node`'s own cache (free: node-local).
  void cache_merge_local(int node, std::uint64_t page, std::uint64_t word) {
    cache_slot(node, page) |= word;
  }

  /// Remotely merge `word` into `dst`'s directory cache: the RDMA write a
  /// transition-causing node uses to notify a displaced private owner or
  /// single writer. Charged as one remote write of 8 bytes issued by `src`.
  void cache_merge_remote(int src, int dst, std::uint64_t page,
                          std::uint64_t word);

  /// Pipelined notification fan-out: coalesce entries that target the same
  /// (destination, directory word) into one remote atomic — several pages
  /// of one line share a word, so a transition touching many of them needs
  /// one OR, not one per page — then post the distinct atomics back to
  /// back and wait for all of them. Notification counts reflect the
  /// coalesced (actually transmitted) atomics.
  void cache_merge_remote_batch(int src, std::vector<DirNotify> batch);

  /// Number of transition notifications delivered to each node (stats).
  std::uint64_t notifications(int node) const {
    return notify_count_[static_cast<std::size_t>(node)];
  }

  /// Register `node`'s soft-TLB generation counter (see core/tlb.hpp). A
  /// deferred invalidation merged into that node's directory cache bumps
  /// it, so thread-held translations re-validate against the new word.
  /// (Merges only OR bits in, which cannot clear the owner's own hit
  /// conditions — the bump is conservative, matching the invalidation
  /// event list.) Null slots (tests constructing a bare directory) are
  /// ignored.
  void set_gen_slot(int node, std::uint64_t* slot) {
    if (gen_slots_.size() < static_cast<std::size_t>(node) + 1)
      gen_slots_.resize(static_cast<std::size_t>(node) + 1, nullptr);
    gen_slots_[static_cast<std::size_t>(node)] = slot;
  }

 private:
  void bump_gen(int node) {
    if (static_cast<std::size_t>(node) < gen_slots_.size() &&
        gen_slots_[static_cast<std::size_t>(node)])
      ++*gen_slots_[static_cast<std::size_t>(node)];
  }

  std::uint64_t& cache_slot(int node, std::uint64_t page) {
    return caches_[static_cast<std::size_t>(node)][page];
  }

  GlobalMemory& gmem_;
  argonet::Interconnect& net_;
  argoobs::Tracer* tracer_ = nullptr;
  std::vector<std::uint64_t> words_;                // home dir, one per page
  std::vector<std::vector<std::uint64_t>> caches_;  // [node][page]
  std::vector<std::uint64_t> notify_count_;
  std::vector<std::uint64_t*> gen_slots_;  // per-node soft-TLB generations
};

}  // namespace argodir
