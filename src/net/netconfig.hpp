// Cost model for the simulated cluster interconnect and memory system.
//
// Defaults follow the paper's own technology-trend data (Figure 1, 2011
// column, 3.4 GHz CPUs): network minimum latency ~1700 cycles (~500 ns at
// 3.4 GHz we keep the paper's conservative ~1.7 us figure for a full
// user-space one-sided completion), network bandwidth ~111 cycles/KB
// (~2.5 GB/s effective for MPI RMA, matching the paper's Figure 7 plateau),
// DRAM latency ~170 cycles (~50 ns). Software message handlers add a
// dispatch cost on every message of an *active* protocol; Argo's passive
// protocol never pays it.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace argonet {

using argosim::Time;

/// Recovery policy for transient remote-op failures (injected by
/// net/faults.hpp, or — in a real deployment — NIC completion timeouts).
/// Every reliable verb retries failed attempts under exponential backoff
/// with jitter until it succeeds, the attempt budget is spent, or the
/// per-op deadline passes; exhaustion throws argonet::NetworkError.
struct RetryPolicy {
  int max_attempts = 10;       ///< total attempts per op (first one included)
  Time backoff_base = 4000;    ///< first backoff delay
  double backoff_mult = 2.0;   ///< exponential growth factor
  Time backoff_max = 1 << 20;  ///< backoff ceiling (~1 ms)
  double backoff_jitter = 0.5; ///< extra uniform [0, frac*backoff] per wait
  Time deadline = 0;           ///< give up when retries exceed this (0=never)
};

struct NetConfig {
  /// Completion latency of a small one-sided RDMA op (read/write/atomic),
  /// initiator-observed, excluding payload streaming time.
  Time rdma_latency = 1700;

  /// One-way delivery latency of a two-sided message, excluding payload.
  Time msg_latency = 1700;

  /// Initiator-side cost of posting any network op (verbs/MPI bookkeeping).
  /// The NIC is held for this long plus the payload streaming time.
  Time nic_overhead = 300;

  /// Network payload streaming rate in bytes per nanosecond (2.5 => 2.5 GB/s).
  double net_bytes_per_ns = 2.5;

  /// Software message-handler dispatch + protocol processing cost, charged
  /// by *active* protocols per received message (poll, decode, act).
  Time handler_dispatch = 1000;

  /// Local DRAM access latency (page-cache fills from local memory, etc.).
  Time mem_latency = 50;

  /// Local memory copy rate in bytes per nanosecond (10 => 10 GB/s).
  double mem_bytes_per_ns = 10.0;

  /// If true (the paper's MPI prototype limitation), only one thread per
  /// node can use the interconnect at a time: ops serialize on a NIC lock.
  bool serialize_nic = true;

  /// Per-node send-queue depth for the posted (asynchronous) verbs. At 1
  /// (the default) a posted op degenerates to the matching blocking verb,
  /// reproducing the paper's serialized-NIC MPI prototype exactly — virtual
  /// times are bit-identical to builds predating the posted API. Depths > 1
  /// model a verbs NIC with a work queue: each posted op still charges its
  /// NIC occupancy (overhead + streaming) serially, but its wire latency
  /// overlaps with other in-flight ops; completions retire in post order.
  int pipeline = 1;

  /// Retry/timeout/backoff machinery for fallible remote ops. Only
  /// consulted when a FaultInjector is attached to the Interconnect.
  RetryPolicy retry;

  /// Payload streaming time over the network.
  Time net_transfer(std::size_t bytes) const {
    return static_cast<Time>(static_cast<double>(bytes) / net_bytes_per_ns);
  }

  /// Local memory copy time.
  Time mem_copy(std::size_t bytes) const {
    return static_cast<Time>(static_cast<double>(bytes) / mem_bytes_per_ns);
  }
};

/// Intra-node (one simulated machine) cost model: the paper's nodes are
/// 2-socket / 4-NUMA-group Opterons; lock algorithms care about where a
/// cacheline and its data live.
struct NodeTopology {
  int cores = 16;             ///< cores per node
  int numa_groups = 4;        ///< NUMA groups per node (Opteron 6220 boxes)
  Time l1_hit = 2;            ///< cacheline already local to the core
  Time cacheline_same_numa = 40;   ///< transfer from a core in the same group
  Time cacheline_cross_numa = 100; ///< transfer across groups/sockets
  Time atomic_rmw = 20;       ///< uncontended atomic on a held line
  Time futex_wake = 1500;     ///< OS wakeup of a sleeping thread (mutex)

  int numa_group_of(int core) const { return core / (cores / numa_groups); }

  /// Cost for core `dst` to obtain a cacheline last touched by core `src`.
  Time cacheline_transfer(int src, int dst) const {
    if (src == dst) return l1_hit;
    return numa_group_of(src) == numa_group_of(dst) ? cacheline_same_numa
                                                    : cacheline_cross_numa;
  }
};

}  // namespace argonet
