#include "net/faults.hpp"

#include <algorithm>
#include <cassert>

namespace argonet {

namespace {

// Mix a node index into the master seed so per-node streams are
// decorrelated (SplitMix64 finalizer, same constants as sim/random.hpp).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + (salt + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Uniform in [mean/2, 3*mean/2): keeps the mean while avoiding degenerate
// zero-length gaps/windows.
Time around(argosim::Rng& rng, Time mean) {
  assert(mean > 0);
  return mean / 2 + static_cast<Time>(rng.next_below(
                        static_cast<std::uint64_t>(mean) + 1));
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig cfg, int nodes)
    : cfg_(cfg), rng_(mix_seed(cfg.seed, 0)) {
  assert(nodes > 0);
  windows_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    NodeWindows w;
    w.rng = argosim::Rng(mix_seed(cfg.seed, static_cast<std::uint64_t>(n) + 1));
    windows_.push_back(std::move(w));
  }
  if (!cfg_.crashes.empty()) {
    crash_.resize(static_cast<std::size_t>(nodes));
    for (const CrashEvent& e : cfg_.crashes) {
      if (e.node < 0 || e.node >= nodes) continue;
      CrashState& c = crash_[static_cast<std::size_t>(e.node)];
      c.rejoin_at = e.rejoin_at;
      if (e.after_ops > 0) {
        c.after_ops = e.after_ops;  // resolved later by note_op()
      } else {
        c.at = e.at;
        c.resolved = true;
      }
    }
  }
}

void FaultInjector::advance(NodeWindows& w, Time now) {
  if (!w.scheduled) {
    w.start = around(w.rng, cfg_.brownout_mean_interval);
    w.end = w.start + around(w.rng, cfg_.brownout_mean_duration);
    w.scheduled = true;
  }
  while (now >= w.end) {
    ++w.entered;
    w.start = w.end + around(w.rng, cfg_.brownout_mean_interval);
    w.end = w.start + around(w.rng, cfg_.brownout_mean_duration);
  }
}

bool FaultInjector::in_brownout(int node, Time now) {
  if (cfg_.brownout_mean_interval == 0 || cfg_.brownout_mean_duration == 0)
    return false;
  if (sharded_) return in_brownout_sharded(node, now);
  NodeWindows& w = windows_[static_cast<std::size_t>(node)];
  advance(w, now);
  return now >= w.start;
}

bool FaultInjector::in_brownout_sharded(int node, Time now) {
  // Fibers on different shards query a node's windows with clocks that are
  // not mutually monotonic, and a node's windows are queried both by its
  // own fibers (src side) and by remote initiators (dst side). Materialize
  // the schedule under a host mutex and answer by binary search: the
  // result is a pure function of (node, now), independent of query order.
  std::lock_guard<std::mutex> g(mu_);
  NodeWindows& w = windows_[static_cast<std::size_t>(node)];
  if (now > w.max_t) w.max_t = now;
  while (w.mat.empty() || w.mat.back().second <= w.max_t) {
    if (!w.scheduled) {
      w.start = around(w.rng, cfg_.brownout_mean_interval);
      w.end = w.start + around(w.rng, cfg_.brownout_mean_duration);
      w.scheduled = true;
    } else {
      w.start = w.end + around(w.rng, cfg_.brownout_mean_interval);
      w.end = w.start + around(w.rng, cfg_.brownout_mean_duration);
    }
    w.mat.emplace_back(w.start, w.end);
  }
  const auto end_after = [](Time t, const std::pair<Time, Time>& p) {
    return t < p.second;
  };
  // Windows whose end is behind the furthest query have been fully entered.
  w.entered = static_cast<std::uint64_t>(
      std::upper_bound(w.mat.begin(), w.mat.end(), w.max_t, end_after) -
      w.mat.begin());
  const auto it =
      std::upper_bound(w.mat.begin(), w.mat.end(), now, end_after);
  return it != w.mat.end() && now >= it->first;
}

AttemptPlan FaultInjector::plan_attempt(int src, int dst, Time now) {
  AttemptPlan p;
  if (in_brownout(src, now) || in_brownout(dst, now)) {
    p.latency_mult = cfg_.brownout_latency_mult;
    p.bw_frac = cfg_.brownout_bw_frac;
  }
  argosim::Rng& rng = op_rng(src);
  if (cfg_.jitter_prob > 0 && cfg_.jitter_max > 0 &&
      rng.next_bool(cfg_.jitter_prob)) {
    p.extra_latency = static_cast<Time>(
        rng.next_below(static_cast<std::uint64_t>(cfg_.jitter_max) + 1));
  }
  if (cfg_.rdma_fail_prob > 0) p.fail = rng.next_bool(cfg_.rdma_fail_prob);
  return p;
}

bool FaultInjector::drop_message(int src) {
  return cfg_.msg_drop_prob > 0 && op_rng(src).next_bool(cfg_.msg_drop_prob);
}

bool FaultInjector::duplicate_message(int src) {
  return cfg_.msg_dup_prob > 0 && op_rng(src).next_bool(cfg_.msg_dup_prob);
}

Time FaultInjector::backoff_jitter(Time span, int src) {
  if (span <= 0) return 0;
  return static_cast<Time>(
      op_rng(src).next_below(static_cast<std::uint64_t>(span) + 1));
}

void FaultInjector::enable_sharded_streams() {
  if (sharded_) return;
  sharded_ = true;
  src_rng_.reserve(windows_.size());
  for (std::size_t n = 0; n < windows_.size(); ++n) {
    // Salted well away from the per-node window streams (salt n+1) and the
    // shared op stream (salt 0).
    src_rng_.push_back(
        argosim::Rng(mix_seed(cfg_.seed, 0x5ead0000ull + n)));
  }
}

}  // namespace argonet
