// Deterministic, seeded fault injection for the simulated interconnect.
//
// Real RDMA deployments see transient NIC timeouts, dropped/duplicated
// two-sided messages, latency jitter, and per-node "brownouts" (windows of
// degraded bandwidth/latency while a link retrains or a switch queue
// drains). The paper's protocol is all one-sided ops issued by the
// requester, so recovery is entirely the requester's problem: every verb
// must be retryable. This module decides *what* goes wrong and *when*;
// the Interconnect charges the costs and runs the retry/backoff loops.
//
// Determinism: all draws come from xoshiro streams (sim/random.hpp) seeded
// from FaultConfig::seed, and the virtual-time engine schedules fibers
// deterministically — so a given (program, config, seed) triple produces a
// bit-identical fault pattern, virtual times, and statistics on every run.
// Per-node brownout schedules use per-node streams, making each node's
// windows independent of the cluster-wide op order.
//
// When FaultConfig::enabled is false the Interconnect never consults this
// module: the fault-free path is byte-for-byte the pre-fault code and its
// virtual times are unchanged.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace argonet {

using argosim::Time;

/// What can go wrong, and how often. All probabilities are per-attempt.
struct FaultConfig {
  bool enabled = false;      ///< master switch; false = zero overhead
  std::uint64_t seed = 1;    ///< seeds every fault stream

  /// Probability that a remote RDMA op attempt (read/write/atomic) fails
  /// transiently: the initiator pays the full attempt cost, observes a
  /// completion timeout, and must retry.
  double rdma_fail_prob = 0.0;

  /// Probability a two-sided message is dropped after the sender is
  /// charged (it never becomes deliverable).
  double msg_drop_prob = 0.0;

  /// Probability a two-sided message is delivered twice (NIC-level
  /// retransmission whose original was not actually lost).
  double msg_dup_prob = 0.0;

  /// Latency jitter: with probability `jitter_prob`, a remote op or
  /// message gets uniform extra latency in [0, jitter_max].
  double jitter_prob = 0.0;
  Time jitter_max = 0;

  /// Per-node brownout windows: roughly every `brownout_mean_interval` ns
  /// (uniform in [interval/2, 3*interval/2)) a node enters a window of
  /// roughly `brownout_mean_duration` ns during which every op it
  /// initiates — or that targets it — runs at `brownout_latency_mult` ×
  /// latency and `brownout_bw_frac` × bandwidth. 0 disables brownouts.
  Time brownout_mean_interval = 0;
  Time brownout_mean_duration = 0;
  double brownout_latency_mult = 4.0;
  double brownout_bw_frac = 0.25;

  /// Crash-stop schedule (see CrashEvent). Crashes draw nothing from the
  /// fault RNG streams, so adding a crash schedule never perturbs the
  /// transient-fault pattern of a given seed.
  std::vector<struct CrashEvent> crashes;
};

/// One scheduled crash-stop failure. A node crashes either at a fixed
/// virtual time (`at`) or after it has initiated `after_ops` interconnect
/// operations ("crash under load"); whichever trigger is configured.
/// `rejoin_at` > 0 optionally brings the node back as a *fresh* node (empty
/// cache, new identity for membership purposes) at that virtual time.
struct CrashEvent {
  int node = -1;              ///< which node dies
  Time at = 0;                ///< crash at this virtual time (0 = use after_ops)
  std::uint64_t after_ops = 0;  ///< crash once the node initiated this many ops
  Time rejoin_at = 0;         ///< 0 = crash is permanent
};

/// Fault decision for one remote-op attempt.
struct AttemptPlan {
  bool fail = false;          ///< attempt is charged but does not complete
  Time extra_latency = 0;     ///< jitter added to the completion latency
  double latency_mult = 1.0;  ///< brownout latency multiplier
  double bw_frac = 1.0;       ///< brownout bandwidth fraction (0 < f <= 1)
};

class FaultInjector {
 public:
  FaultInjector(FaultConfig cfg, int nodes);

  const FaultConfig& config() const { return cfg_; }

  /// Decide the fate of one remote op attempt issued by `src` against
  /// memory homed on `dst` at virtual time `now`. Draws nothing for
  /// features whose probability/config is zero.
  AttemptPlan plan_attempt(int src, int dst, Time now);

  /// Independent per-message draws (send-side). `src` selects the per-node
  /// stream under sharded mode; ignored (shared stream) otherwise.
  bool drop_message(int src = 0);
  bool duplicate_message(int src = 0);

  /// Uniform draw in [0, span] for retry backoff jitter (0 if span == 0).
  Time backoff_jitter(Time span, int src = 0);

  /// Switch per-op draws to per-source-node streams and brownout windows
  /// to a mutex-guarded materialized schedule, for the sharded engine:
  /// each node's fibers then draw only from that node's stream (single
  /// writer per shard), and brownout queries need not be monotonic per
  /// node across shards. Changes the fault pattern versus the legacy
  /// shared-stream mode (but not the per-node window schedules, which
  /// always use per-node streams). Call before the simulation starts.
  void enable_sharded_streams();
  bool sharded_streams() const { return sharded_; }

  /// True if `node` is inside a brownout window at time `now`. Queries
  /// must be monotonic in `now` per node (virtual time only advances).
  bool in_brownout(int node, Time now);

  /// Number of brownout windows node has fully entered so far (tests).
  std::uint64_t brownouts_seen(int node) const {
    return windows_[static_cast<std::size_t>(node)].entered;
  }

  // --- Crash-stop schedule (RNG-free; never perturbs transient faults) ---

  /// True if the config carries any crash events. The interconnect only
  /// consults the crash machinery when this holds, so chaos runs without a
  /// crash schedule stay bit-identical to pre-crash-support builds.
  bool has_crashes() const { return !crash_.empty(); }

  /// True if `node` is crashed (dead) at virtual time `now`. A node with a
  /// rejoin time is dead only inside [crash, rejoin).
  bool crashed(int node, Time now) const {
    const CrashState& c = crash_state(node);
    if (!c.resolved || now < c.at) return false;
    return c.rejoin_at == 0 || now < c.rejoin_at;
  }

  /// Resolved crash time of `node` (0 = no crash scheduled / not yet
  /// triggered for op-count crashes).
  Time crash_time(int node) const {
    const CrashState& c = crash_state(node);
    return c.resolved ? c.at : 0;
  }

  /// Rejoin time of `node` (0 = permanent crash or no crash).
  Time rejoin_time(int node) const { return crash_state(node).rejoin_at; }

  /// Account one interconnect op initiated by `node` at `now`; resolves
  /// "crash after N ops" events by stamping the crash time when the count
  /// crosses the threshold.
  void note_op(int node, Time now) {
    if (crash_.empty()) return;
    CrashState& c = crash_[static_cast<std::size_t>(node)];
    if (c.after_ops == 0 || c.resolved) return;
    if (++c.ops >= c.after_ops) {
      c.at = now;
      c.resolved = true;
    }
  }

 private:
  struct NodeWindows {
    argosim::Rng rng;         // per-node stream: schedule is op-order free
    Time start = 0, end = 0;  // current/next window [start, end)
    std::uint64_t entered = 0;
    bool scheduled = false;
    // Sharded mode: materialized windows (sorted by end) and the furthest
    // query time seen, guarded by mu_. The same rng generates the same
    // schedule; only the bookkeeping differs.
    std::vector<std::pair<Time, Time>> mat;
    Time max_t = 0;
  };

  struct CrashState {
    Time at = 0;                  // resolved crash time
    std::uint64_t after_ops = 0;  // op-count trigger (0 = time trigger)
    Time rejoin_at = 0;
    std::uint64_t ops = 0;        // ops initiated so far (op-count trigger)
    bool resolved = false;        // crash time known (time triggers always)
  };

  const CrashState& crash_state(int node) const {
    static const CrashState kNone{};
    const auto i = static_cast<std::size_t>(node);
    return i < crash_.size() ? crash_[i] : kNone;
  }

  void advance(NodeWindows& w, Time now);
  bool in_brownout_sharded(int node, Time now);

  /// Per-op draw stream: the shared stream in legacy mode, `src`'s own
  /// stream in sharded mode.
  argosim::Rng& op_rng(int src) {
    return sharded_ ? src_rng_[static_cast<std::size_t>(src)] : rng_;
  }

  FaultConfig cfg_;
  argosim::Rng rng_;  // shared stream for per-op draws (legacy engine)
  std::vector<NodeWindows> windows_;
  std::vector<CrashState> crash_;  // per node; empty when no schedule
  bool sharded_ = false;
  std::vector<argosim::Rng> src_rng_;  // per-src-node op streams (sharded)
  std::mutex mu_;  // guards windows_ materialization in sharded mode
};

}  // namespace argonet
