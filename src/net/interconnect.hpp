// Simulated cluster interconnect.
//
// Provides the two communication styles the paper contrasts:
//
//  * one-sided RDMA verbs (read, write, fetch-or, fetch-add, CAS) — the only
//    operations Argo's passive Carina/Pyxis protocol uses; no code runs on
//    the target node, only latency/bandwidth is charged, and
//  * two-sided messages with mailboxes — what traditional DSMs and the
//    MPI/PGAS baselines use; receiving requires an *active* agent (a handler
//    fiber or a blocked receiver) on the target node.
//
// All operations must be called from a simulated thread. When
// NetConfig::serialize_nic is set, ops from the same node serialize on a
// per-node NIC lock, reproducing the paper's "only one thread can use the
// interconnect at any point in time" MPI prototype limitation (§3.6.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "net/netconfig.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace argonet {

using argosim::Time;

/// A two-sided message. `tag` is protocol-defined; `a/b/c` carry small
/// immediate operands so tiny control messages need no payload allocation.
struct Message {
  int src = -1;
  int dst = -1;
  int tag = 0;
  std::uint64_t a = 0, b = 0, c = 0;
  std::vector<std::byte> payload;

  std::size_t wire_size() const { return 40 + payload.size(); }
};

/// Per-node traffic statistics (virtual-time accounting).
struct NodeNetStats {
  std::uint64_t rdma_reads = 0;
  std::uint64_t rdma_writes = 0;
  std::uint64_t rdma_atomics = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_read = 0;     ///< payload bytes fetched by RDMA reads
  std::uint64_t bytes_written = 0;  ///< payload bytes pushed by RDMA writes
  std::uint64_t bytes_sent = 0;     ///< message payload bytes sent
  Time nic_busy = 0;                ///< time this node's NIC was held

  std::uint64_t total_ops() const {
    return rdma_reads + rdma_writes + rdma_atomics + msgs_sent;
  }
  std::uint64_t total_bytes() const {
    return bytes_read + bytes_written + bytes_sent;
  }
  NodeNetStats& operator+=(const NodeNetStats& o);
};

class Interconnect {
 public:
  Interconnect(int nodes, NetConfig cfg);

  int nodes() const { return nodes_; }
  const NetConfig& config() const { return cfg_; }

  // --- One-sided RDMA verbs (passive: no code runs on `dst`) -------------

  /// Read `n` bytes from `remote` (memory homed on node `dst`) into `local`.
  void read(int src, int dst, const void* remote, void* local, std::size_t n);

  /// Write `n` bytes from `local` into `remote` (memory homed on node `dst`).
  void write(int src, int dst, void* remote, const void* local, std::size_t n);

  /// Charge an RDMA write of `n` payload bytes without performing a copy.
  /// Used for scattered payloads (diff runs): the caller applies the bytes
  /// itself immediately after this returns (i.e. at completion time).
  void charge_write(int src, int dst, std::size_t n);

  /// Remote atomic OR; returns the previous value (MPI_Fetch_and_op(BOR)).
  std::uint64_t fetch_or(int src, int dst, std::uint64_t* remote,
                         std::uint64_t bits);

  /// Remote atomic add; returns the previous value.
  std::uint64_t fetch_add(int src, int dst, std::uint64_t* remote,
                          std::uint64_t v);

  /// Remote compare-and-swap; returns the previous value.
  std::uint64_t cas(int src, int dst, std::uint64_t* remote,
                    std::uint64_t expected, std::uint64_t desired);

  /// Remote atomic exchange; returns the previous value
  /// (MPI_Fetch_and_op(REPLACE)).
  std::uint64_t exchange(int src, int dst, std::uint64_t* remote,
                         std::uint64_t desired);

  // --- Two-sided messages (require an active receiver on `dst`) ----------

  /// Post a message. The sender is charged posting + streaming time; the
  /// message becomes visible to receivers on `dst` after the wire latency.
  void send(Message msg);

  /// Charge the cost of sending a `payload_bytes` message from `src` to
  /// `dst` without enqueuing anything; returns the virtual time at which
  /// the message is delivered. Higher-level messaging layers (the MPI
  /// library) keep their own mailboxes but pay the same budget.
  Time charge_message(int src, int dst, std::size_t payload_bytes);

  /// Block until a message for `node` is deliverable, then return it.
  Message recv(int node);

  /// Non-blocking receive; returns an empty optional if nothing deliverable.
  std::optional<Message> try_recv(int node);

  /// True if a message is deliverable right now without blocking.
  bool poll(int node);

  // --- Statistics ---------------------------------------------------------

  const NodeNetStats& stats(int node) const { return boxes_[node]->stats; }
  NodeNetStats total_stats() const;
  void reset_stats();

 private:
  struct Pending {
    Time deliver_at;
    std::uint64_t seq;
    Message msg;
    bool operator>(const Pending& o) const {
      return deliver_at != o.deliver_at ? deliver_at > o.deliver_at
                                        : seq > o.seq;
    }
  };

  struct NodeBox {
    argosim::SimMutex nic;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>> inbox;
    argosim::WaitQueue rx_waiters;
    NodeNetStats stats;
  };

  /// Hold node `src`'s NIC for `busy` ns, then charge `extra_latency` more
  /// (time the op is in flight but the NIC is free again).
  void charge(int src, Time busy, Time extra_latency);

  int nodes_;
  NetConfig cfg_;
  std::vector<std::unique_ptr<NodeBox>> boxes_;
  std::uint64_t send_seq_ = 0;
};

}  // namespace argonet
