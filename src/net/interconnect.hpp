// Simulated cluster interconnect.
//
// Provides the two communication styles the paper contrasts:
//
//  * one-sided RDMA verbs (read, write, fetch-or, fetch-add, CAS) — the only
//    operations Argo's passive Carina/Pyxis protocol uses; no code runs on
//    the target node, only latency/bandwidth is charged, and
//  * two-sided messages with mailboxes — what traditional DSMs and the
//    MPI/PGAS baselines use; receiving requires an *active* agent (a handler
//    fiber or a blocked receiver) on the target node.
//
// All operations must be called from a simulated thread. When
// NetConfig::serialize_nic is set, ops from the same node serialize on a
// per-node NIC lock, reproducing the paper's "only one thread can use the
// interconnect at any point in time" MPI prototype limitation (§3.6.2).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "net/faults.hpp"
#include "net/netconfig.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/smallfn.hpp"
#include "sim/sync.hpp"

namespace argonet {

using argosim::Time;

// Hot-path closures ride in inline-storage SmallFns (sim/smallfn.hpp): a
// posted verb builds up to three of them, and std::function would heap-
// allocate each. Capacities cover the largest capture each role carries
// (post_fetch_or_span's apply: a pointer, a 32-byte operand array, a count
// and an output pointer); oversized captures still work, they just spill
// to the heap and tick sim.effect_pool_misses.
using ApplyFn = argosim::SmallFn<void(argosim::SimRecord&), 64>;
using PostedEffectFn = argosim::SmallFn<std::uint64_t(), 64>;
using FinishFn = argosim::SmallFn<std::uint64_t(argosim::SimRecord&), 32>;

/// Thrown by the reliable verbs when an op still fails after the
/// RetryPolicy's attempt budget / deadline is exhausted (a hard, rather
/// than transient, network failure). Messages carry the verb name, the
/// source/target node ids and the virtual time of the failure.
class NetworkError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an op targets a node that has crash-stopped (dead under the
/// current membership view): unlike transient NetworkError failures there
/// is no point retrying — the caller must recover (re-route to a successor
/// home, abort a delegated critical section, drop a barrier partner).
class NodeFailedError : public NetworkError {
 public:
  NodeFailedError(const std::string& what, int src, int dst)
      : NetworkError(what), src_(src), dst_(dst) {}
  int src() const { return src_; }
  int dst() const { return dst_; }

 private:
  int src_;
  int dst_;
};

/// A two-sided message. `tag` is protocol-defined; `a/b/c` carry small
/// immediate operands so tiny control messages need no payload allocation.
struct Message {
  int src = -1;
  int dst = -1;
  int tag = 0;
  std::uint64_t a = 0, b = 0, c = 0;
  std::vector<std::byte> payload;

  std::size_t wire_size() const { return 40 + payload.size(); }
};

/// Completion handle for a posted (asynchronous) verb. Handles are cheap
/// value types; redeem them with Interconnect::wait / wait_all. A
/// default-constructed handle is inert (wait returns immediately).
struct PostedHandle {
  int node = -1;        ///< issuing node (owns the send queue)
  std::uint64_t id = 0; ///< per-node monotonically increasing op id
  explicit operator bool() const { return id != 0; }
};

/// One element of a scatter-gather posted write: `len` bytes copied from
/// `local` to `remote` when the (single) op completes.
struct GatherRun {
  void* remote = nullptr;
  const void* local = nullptr;
  std::size_t len = 0;
};

/// Per-node traffic statistics (virtual-time accounting).
struct NodeNetStats {
  std::uint64_t rdma_reads = 0;
  std::uint64_t rdma_writes = 0;
  std::uint64_t rdma_atomics = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_read = 0;     ///< payload bytes fetched by RDMA reads
  std::uint64_t bytes_written = 0;  ///< payload bytes pushed by RDMA writes
  std::uint64_t bytes_sent = 0;     ///< message payload bytes sent
  Time nic_busy = 0;                ///< time this node's NIC was held
  std::uint64_t faults_injected = 0;  ///< failed attempts + dropped msgs
  std::uint64_t retries = 0;          ///< re-attempts after injected faults
  Time backoff_time = 0;              ///< virtual time spent backing off
  std::uint64_t posted_ops = 0;       ///< async verbs queued (pipeline > 1)
  std::uint64_t posted_inflight_hwm = 0;  ///< send-queue depth high-water mark

  std::uint64_t total_ops() const {
    return rdma_reads + rdma_writes + rdma_atomics + msgs_sent;
  }
  std::uint64_t total_bytes() const {
    return bytes_read + bytes_written + bytes_sent;
  }
  NodeNetStats& operator+=(const NodeNetStats& o);
};

class Interconnect {
 public:
  Interconnect(int nodes, NetConfig cfg);

  int nodes() const { return nodes_; }
  const NetConfig& config() const { return cfg_; }

  // --- Fault injection ----------------------------------------------------

  /// Attach a fault injector. From here on every *remote* op consults it:
  /// the reliable verbs below turn into retry loops (RetryPolicy in
  /// NetConfig) and the try_* variants may report failure. Without an
  /// injector the fault machinery is never consulted — the fault-free
  /// path's virtual times are identical to a build without this feature.
  void enable_faults(const FaultConfig& cfg);

  bool faults_enabled() const { return faults_ != nullptr; }
  FaultInjector* faults() { return faults_.get(); }

  /// Attach a protocol tracer (not owned; may be null). Emits PostedRetire
  /// events as posted verbs leave the send queues.
  void set_tracer(argoobs::Tracer* tracer) { tracer_ = tracer; }

  // --- One-sided RDMA verbs (passive: no code runs on `dst`) -------------

  /// Read `n` bytes from `remote` (memory homed on node `dst`) into `local`.
  void read(int src, int dst, const void* remote, void* local, std::size_t n);

  /// Write `n` bytes from `local` into `remote` (memory homed on node `dst`).
  void write(int src, int dst, void* remote, const void* local, std::size_t n);

  /// Charge an RDMA write of `n` payload bytes without performing a copy.
  /// Used for scattered payloads (diff runs): the caller applies the bytes
  /// itself immediately after this returns (i.e. at completion time).
  /// Legacy-engine only as a remote-apply idiom: under the sharded engine a
  /// caller-side apply would touch another shard's memory — use
  /// write_gather(), which ships the runs to the target's shard.
  void charge_write(int src, int dst, std::size_t n);

  /// Blocking scatter-gather write: one wire transfer of
  /// sum(len + header_bytes) covering every run, applied at completion
  /// time. Charges exactly what charge_write(sum) does; on the sharded
  /// engine the runs are snapshotted and applied on `dst`'s shard at the
  /// completion instant.
  void write_gather(int src, int dst, const std::vector<GatherRun>& runs,
                    std::size_t header_bytes);

  /// Remote atomic OR; returns the previous value (MPI_Fetch_and_op(BOR)).
  std::uint64_t fetch_or(int src, int dst, std::uint64_t* remote,
                         std::uint64_t bits);

  /// fetch_or variant for callers that must update target-side state
  /// atomically with the OR (directory generation bumps): `on_remote(old)`
  /// runs immediately after the OR commits, in the target's context —
  /// inline on the legacy engine, inside the dst-shard effect when sharded.
  std::uint64_t fetch_or(int src, int dst, std::uint64_t* remote,
                         std::uint64_t bits,
                         std::function<void(std::uint64_t)> on_remote);

  /// Maximum span (in 64-bit words) of one extended remote atomic —
  /// models the 32-byte masked-atomic operand cap of ConnectX-class HCAs.
  static constexpr int kMaxAtomicSpan = 4;

  /// Extended remote atomic OR over `nwords` consecutive 64-bit words
  /// (1 <= nwords <= kMaxAtomicSpan): ORs bits[i] into remote[i] and
  /// snapshots every pre-OR word into prev_out[i] at one commit instant —
  /// the multi-word directory's full-map Fetch&Or. Charged as one remote
  /// atomic streaming the 8*(nwords-1) operand bytes beyond the first
  /// word, so nwords == 1 charges exactly what fetch_or does. `bits` is
  /// snapshotted; `prev_out` must stay valid until the call returns.
  void fetch_or_span(int src, int dst, std::uint64_t* remote,
                     const std::uint64_t* bits, int nwords,
                     std::uint64_t* prev_out);

  /// Remote atomic add; returns the previous value.
  std::uint64_t fetch_add(int src, int dst, std::uint64_t* remote,
                          std::uint64_t v);

  /// Remote compare-and-swap; returns the previous value.
  std::uint64_t cas(int src, int dst, std::uint64_t* remote,
                    std::uint64_t expected, std::uint64_t desired);

  /// Remote atomic exchange; returns the previous value
  /// (MPI_Fetch_and_op(REPLACE)).
  std::uint64_t exchange(int src, int dst, std::uint64_t* remote,
                         std::uint64_t desired);

  // --- Posted (asynchronous) verbs ----------------------------------------
  //
  // The RDMA work-queue model: post returns after charging the op's NIC
  // occupancy (overhead + payload streaming, serialized per node); the wire
  // latency runs concurrently with whatever the caller does next, bounded
  // by NetConfig::pipeline outstanding ops per node. Completions retire
  // strictly in post order (reliable-connection semantics), and the op's
  // effect — the memcpy or atomic — is applied at retirement, exactly when
  // the blocking verbs apply theirs. Posted writes snapshot their payload
  // at post time, so source buffers may be reused immediately.
  //
  // Fault injection composes transparently: a posted op draws all of its
  // attempt plans when posted (one per retry, against the posting-time
  // clock) and folds the retries and backoff into its completion time; a
  // hard failure (retry budget exhausted) surfaces as NetworkError from
  // wait()/wait_all() of the *issuing* node, never from an innocent fiber
  // that happens to retire the queue.
  //
  // At pipeline depth 1 a post degenerates to the matching blocking verb —
  // bit-identical charges, already retired on return.

  PostedHandle post_read(int src, int dst, const void* remote, void* local,
                         std::size_t n);
  PostedHandle post_write(int src, int dst, void* remote, const void* local,
                          std::size_t n);

  /// One posted op carrying several runs to scattered remote addresses
  /// (one wire transfer of sum(len + header_bytes); one logical RDMA
  /// write). The diff-writeback path uses this to ship a whole page's runs
  /// as a single scatter-gather element list.
  PostedHandle post_write_gather(int src, int dst,
                                 const std::vector<GatherRun>& runs,
                                 std::size_t header_bytes);

  PostedHandle post_fetch_or(int src, int dst, std::uint64_t* remote,
                             std::uint64_t bits);

  /// Posted fetch_or whose `on_remote(old)` runs in the target's context
  /// right after the OR commits (see the blocking overload).
  PostedHandle post_fetch_or(int src, int dst, std::uint64_t* remote,
                             std::uint64_t bits,
                             std::function<void(std::uint64_t)> on_remote);
  /// Posted fetch_or_span: `prev_out` is filled with the pre-OR words by
  /// retirement time and must stay valid (and in place) until wait(h)
  /// returns. The handle's wait() value is prev_out[0].
  PostedHandle post_fetch_or_span(int src, int dst, std::uint64_t* remote,
                                  const std::uint64_t* bits, int nwords,
                                  std::uint64_t* prev_out);

  PostedHandle post_fetch_add(int src, int dst, std::uint64_t* remote,
                              std::uint64_t v);
  PostedHandle post_cas(int src, int dst, std::uint64_t* remote,
                        std::uint64_t expected, std::uint64_t desired);

  /// Block until `h` has retired; returns the op's value (previous value
  /// for atomics, 0 for reads/writes). Throws NetworkError if the op hard-
  /// failed. Waiting on a retired or default handle returns immediately.
  std::uint64_t wait(PostedHandle h);

  /// Retire every outstanding posted op of `node` (a full send-queue
  /// drain). Throws NetworkError if any unclaimed op hard-failed.
  void wait_all(int node);

  /// Outstanding (not yet retired) posted ops of `node`.
  std::size_t posted_pending(int node) const {
    return boxes_[node]->sendq.size();
  }

  /// Posted ops of `node` that hard-failed and were cleared by wait()/
  /// wait_all() since the last call; resets the count. Recovery paths use
  /// this to attribute a batch of banked failures (wait_all throws only the
  /// first) to `recovery.aborted_ops`.
  std::uint64_t take_aborted_posted(int node) {
    auto& box = *boxes_[node];
    const std::uint64_t n = box.posted_aborted;
    box.posted_aborted = 0;
    return n;
  }

  // --- Crash-stop support --------------------------------------------------

  /// Heartbeat probe from `src` toward `dst`: charges one small-message
  /// round on the *sender only* (a dead target participates in nothing)
  /// and reports whether `dst` is currently live. Consults only the crash
  /// schedule — never the fault RNG streams — so probing leaves the
  /// transient-fault pattern of a seed untouched.
  bool probe(int src, int dst);

  /// True if `node` is crash-stopped at the current virtual time (false
  /// when no crash schedule is attached).
  bool node_dead(int node) const {
    return faults_ && faults_->has_crashes() &&
           faults_->crashed(node, argosim::now());
  }

  /// Messages dropped at delivery because their sender had crash-stopped
  /// (the "no message from a dead epoch is applied" rule).
  std::uint64_t stale_msgs_dropped() const {
    return stale_msgs_dropped_.load(std::memory_order_relaxed);
  }

  // --- Fallible single-attempt variants -----------------------------------
  //
  // One wire attempt each: the caller is charged the attempt's full cost
  // whether it completes or not; on failure (injected fault) the op has no
  // remote effect and the caller owns recovery. Without a fault injector
  // they always succeed and cost exactly what the reliable verbs cost.

  bool try_read(int src, int dst, const void* remote, void* local,
                std::size_t n);
  bool try_write(int src, int dst, void* remote, const void* local,
                 std::size_t n);
  std::optional<std::uint64_t> try_fetch_or(int src, int dst,
                                            std::uint64_t* remote,
                                            std::uint64_t bits);
  std::optional<std::uint64_t> try_fetch_add(int src, int dst,
                                             std::uint64_t* remote,
                                             std::uint64_t v);
  std::optional<std::uint64_t> try_cas(int src, int dst, std::uint64_t* remote,
                                       std::uint64_t expected,
                                       std::uint64_t desired);
  std::optional<std::uint64_t> try_exchange(int src, int dst,
                                            std::uint64_t* remote,
                                            std::uint64_t desired);

  /// One dissemination round of the hierarchical barrier, issued by
  /// `node` toward `partner`: charged like a small one-sided notification
  /// (nic_overhead busy + msg_latency in flight) and retried under the
  /// RetryPolicy when faults are enabled.
  void barrier_round(int node, int partner);

  // --- Two-sided messages (require an active receiver on `dst`) ----------

  /// Post a message. The sender is charged posting + streaming time; the
  /// message becomes visible to receivers on `dst` after the wire latency.
  void send(Message msg);

  /// Charge the cost of sending a `payload_bytes` message from `src` to
  /// `dst` without enqueuing anything; returns the virtual time at which
  /// the message is delivered. Higher-level messaging layers (the MPI
  /// library) keep their own mailboxes but pay the same budget.
  Time charge_message(int src, int dst, std::size_t payload_bytes);

  /// Block until a message for `node` is deliverable, then return it.
  Message recv(int node);

  /// Like send(), but reports whether the message became deliverable:
  /// false means an injected fault dropped it after the sender paid the
  /// posting cost (never happens without a fault injector).
  bool try_send(Message msg);

  /// Non-blocking receive; returns an empty optional if nothing deliverable.
  std::optional<Message> try_recv(int node);

  /// Blocking receive with a virtual-time deadline: returns the message,
  /// or an empty optional if none became deliverable within `timeout`.
  std::optional<Message> recv_for(int node, Time timeout);

  /// True if a message is deliverable right now without blocking.
  bool poll(int node);

  // --- Statistics ---------------------------------------------------------

  const NodeNetStats& stats(int node) const { return boxes_[node]->stats; }
  NodeNetStats total_stats() const;
  void reset_stats();

  /// Completion-record / payload-buffer pool reuses vs fresh allocations
  /// across all nodes (host-side diagnostics; zero under ARGO_SLOW_PATHS
  /// hits, every acquisition a miss).
  std::uint64_t record_pool_hits() const {
    return rec_pool_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t record_pool_misses() const {
    return rec_pool_misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    Time deliver_at;
    std::uint64_t seq;
    Message msg;
    bool operator>(const Pending& o) const {
      return deliver_at != o.deliver_at ? deliver_at > o.deliver_at
                                        : seq > o.seq;
    }
  };

  /// A posted op sitting in a node's send queue. `complete_at` already
  /// folds in NIC occupancy, wire latency, projected fault retries and the
  /// in-order constraint against earlier ops.
  struct Posted {
    std::uint64_t id;
    Time complete_at;
    bool hard_fail;
    const char* what;
    int dst;  ///< target node (error context)
    bool has_value;
    PostedEffectFn effect;  ///< applied at retirement (legacy)
    /// Sharded engine: the remote effect was shipped to dst's shard as a
    /// timestamped effect completing this record; retirement awaits it and
    /// runs `finish` (src-side copy-out / value extraction) instead of
    /// `effect`.
    std::shared_ptr<argosim::SimRecord> rec;
    FinishFn finish;
  };

  struct PostedFailure {
    const char* what;
    int dst;
  };

  struct NodeBox {
    argosim::SimMutex nic;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>> inbox;
    argosim::WaitQueue rx_waiters;
    NodeNetStats stats;
    std::deque<Posted> sendq;          // outstanding posted ops, post order
    std::uint64_t posted_next_id = 1;  // 0 is the inert handle
    std::map<std::uint64_t, std::uint64_t> posted_results;  // unclaimed values
    std::map<std::uint64_t, PostedFailure> posted_failed;   // unclaimed errors
    std::uint64_t posted_aborted = 0;  // failures cleared since last take
    // Sharded engine: per-source effect keys and per-destination inbox
    // sequence. effect_seq makes every (when, src, seq) cross-shard effect
    // key unique and post-ordered; rx_seq is assigned on the destination
    // shard in effect-key order, replacing the legacy global send_seq_.
    std::uint64_t effect_seq = 1;
    std::uint64_t rx_seq = 0;
    // Completion-record / payload-snapshot freelists (single-writer: every
    // op on this box runs on its node's shard). A slot whose use_count()
    // has fallen back to 1 is referenced by nobody but the pool and can be
    // reset and handed out again; disabled under ARGO_SLOW_PATHS so the
    // oracle keeps the seed's allocation pattern.
    std::vector<std::shared_ptr<argosim::SimRecord>> rec_pool;
    std::size_t rec_cursor = 0;
    std::vector<std::shared_ptr<std::vector<std::byte>>> buf_pool;
    std::size_t buf_cursor = 0;
  };

  /// Hold node `src`'s NIC for `busy` ns, then charge `extra_latency` more
  /// (time the op is in flight but the NIC is free again).
  void charge(int src, Time busy, Time extra_latency);

  /// Account one op initiated by `src` against the crash schedule (resolves
  /// "crash after N ops" triggers) and fail fast with NodeFailedError if
  /// `dst` is crash-stopped. A dead *source* never throws: its fibers are
  /// being reaped and must unwind only via SimStopped. No-op (and zero
  /// cost) without a crash schedule.
  void crash_check(int src, int dst, const char* what);

  /// Charge one remote-op attempt (streaming `stream_bytes`, completing
  /// after `base_latency`); returns false if an injected fault consumed it.
  /// Throws NodeFailedError (named `what`) when `dst` is crash-stopped.
  bool remote_attempt(int src, int dst, std::size_t stream_bytes,
                      Time base_latency, const char* what);

  /// Reliable remote op: retry remote_attempt under the RetryPolicy.
  /// Throws NetworkError when the budget is exhausted.
  void remote_op(int src, int dst, std::size_t stream_bytes,
                 Time base_latency, const char* what);

  /// Sharded-engine attempt: identical charges to remote_attempt, but a
  /// successful attempt ships `apply` to dst's shard as an effect executing
  /// exactly at the attempt's completion instant (NIC acquisition + busy +
  /// latency), filling and completing `rec`. Failed attempts post nothing.
  /// `apply` is consumed (moved into the effect) by a successful attempt —
  /// which is always the last one — and left intact by failed attempts.
  bool sharded_attempt(int src, int dst, std::size_t stream_bytes,
                       Time base_latency, const char* what,
                       const std::shared_ptr<argosim::SimRecord>& rec,
                       ApplyFn& apply);

  /// Reliable sharded remote op: retry sharded_attempt under the
  /// RetryPolicy (same loop as remote_op); returns the completion record.
  std::shared_ptr<argosim::SimRecord> sharded_op(int src, int dst,
                                                 std::size_t stream_bytes,
                                                 Time base_latency,
                                                 const char* what,
                                                 ApplyFn apply);

  /// Post one message-delivery effect on the destination's shard.
  void ship_message(Message msg, Time deliver_at);

  /// Core of the posted verbs: reclaim a queue slot if the pipeline is
  /// full, charge this op's NIC occupancy, project its completion time
  /// (including fault retries), and enqueue it. At depth 1, runs the
  /// blocking remote_op and returns an already-retired handle.
  /// `effect` is the legacy inline retirement effect; `dst_apply`/`finish`
  /// are the sharded split of the same work (remote half on dst's shard at
  /// the completion instant, src-side half at retirement).
  PostedHandle post_remote(int src, int dst, std::size_t stream_bytes,
                           Time base_latency, const char* what, bool has_value,
                           PostedEffectFn effect, ApplyFn dst_apply,
                           FinishFn finish);

  /// Pooled completion record / payload-snapshot buffer for `box`'s next
  /// op: reuses a free slot when one exists, else allocates (and grows the
  /// pool up to its cap). Fresh allocations under ARGO_SLOW_PATHS.
  std::shared_ptr<argosim::SimRecord> acquire_record(NodeBox& box);
  std::shared_ptr<std::vector<std::byte>> acquire_buf(NodeBox& box);

  /// Handle for an op that completed synchronously (local ops, depth 1).
  PostedHandle retired_handle(int src, bool has_value, std::uint64_t value);

  /// Retire the head of `src`'s send queue: sleep until its completion
  /// time, apply its effect, bank its value/failure for the owner's wait.
  void retire_front(int src);

  [[noreturn]] void throw_posted_failure(int node, PostedFailure f);

  void deliver(Message msg, Time deliver_at);

  /// Pop (and count) deliverable inbox messages whose sender has crash-
  /// stopped; returns once the top is live-sourced or not yet deliverable.
  void purge_stale(NodeBox& box);

  int nodes_;
  NetConfig cfg_;
  std::vector<std::unique_ptr<NodeBox>> boxes_;
  std::unique_ptr<FaultInjector> faults_;
  argoobs::Tracer* tracer_ = nullptr;
  std::uint64_t send_seq_ = 0;
  // Bumped by purge_stale, which runs on the receiving fiber's shard —
  // concurrent across shards under the parallel engine.
  std::atomic<std::uint64_t> stale_msgs_dropped_{0};
  // Pool diagnostics; bumped from every node's shard concurrently.
  std::atomic<std::uint64_t> rec_pool_hits_{0};
  std::atomic<std::uint64_t> rec_pool_misses_{0};
};

}  // namespace argonet
