#include "net/interconnect.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <string>

#include "sim/slowpath.hpp"

namespace argonet {

NodeNetStats& NodeNetStats::operator+=(const NodeNetStats& o) {
  rdma_reads += o.rdma_reads;
  rdma_writes += o.rdma_writes;
  rdma_atomics += o.rdma_atomics;
  msgs_sent += o.msgs_sent;
  msgs_received += o.msgs_received;
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  bytes_sent += o.bytes_sent;
  nic_busy += o.nic_busy;
  faults_injected += o.faults_injected;
  retries += o.retries;
  backoff_time += o.backoff_time;
  posted_ops += o.posted_ops;
  posted_inflight_hwm = std::max(posted_inflight_hwm, o.posted_inflight_hwm);
  return *this;
}

Interconnect::Interconnect(int nodes, NetConfig cfg)
    : nodes_(nodes), cfg_(cfg) {
  assert(nodes > 0);
  boxes_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) boxes_.push_back(std::make_unique<NodeBox>());
}

void Interconnect::enable_faults(const FaultConfig& cfg) {
  if (!cfg.enabled) return;
  faults_ = std::make_unique<FaultInjector>(cfg, nodes_);
}

namespace {

// Shared error-message context: verb, endpoints, virtual time.
std::string op_context(const char* what, int src, int dst) {
  return std::string(what) + " from node " + std::to_string(src) +
         " to node " + std::to_string(dst) + " at t=" +
         std::to_string(argosim::now()) + "ns";
}

// True when the calling fiber runs on the sharded engine: remote memory
// lives on another shard and every remote touch must ship as an effect.
inline bool sharded_engine() {
  argosim::Engine* e = argosim::Engine::current();
  return e != nullptr && e->sharded();
}

}  // namespace

void Interconnect::crash_check(int src, int dst, const char* what) {
  if (!faults_ || !faults_->has_crashes()) return;
  const Time now = argosim::now();
  faults_->note_op(src, now);
  // A crashed source initiates nothing: its fiber unwinds cleanly here (the
  // same SimStopped path Engine::kill uses) the moment it touches the
  // network — never a NetworkError, which nothing on a dead node could
  // handle and which would otherwise abort the whole simulation when the
  // reaper's rethrow surfaces it. This also gives "crash after N ops" exact
  // semantics: the op that trips the counter has no effect.
  if (faults_->crashed(src, now)) throw argosim::SimStopped{};
  if (dst != src && faults_->crashed(dst, now))
    throw NodeFailedError(
        op_context(what, src, dst) + " failed: target node is down", src, dst);
}

void Interconnect::charge(int src, Time busy, Time extra_latency) {
  auto& box = *boxes_[src];
  box.stats.nic_busy += busy;
  if (cfg_.serialize_nic) {
    argosim::SimLockGuard g(box.nic);
    argosim::delay(busy);
  } else {
    argosim::delay(busy);
  }
  if (extra_latency > 0) argosim::delay(extra_latency);
}

bool Interconnect::remote_attempt(int src, int dst, std::size_t stream_bytes,
                                  Time base_latency, const char* what) {
  if (!faults_) {
    charge(src, cfg_.nic_overhead + cfg_.net_transfer(stream_bytes),
           base_latency);
    return true;
  }
  crash_check(src, dst, what);
  const AttemptPlan p = faults_->plan_attempt(src, dst, argosim::now());
  Time stream = cfg_.net_transfer(stream_bytes);
  if (p.bw_frac < 1.0 && stream > 0)
    stream = static_cast<Time>(static_cast<double>(stream) / p.bw_frac);
  const Time latency =
      static_cast<Time>(static_cast<double>(base_latency) * p.latency_mult) +
      p.extra_latency;
  // A failed attempt costs as much as a successful one: the initiator
  // streams the payload and then waits out the completion timeout.
  charge(src, cfg_.nic_overhead + stream, latency);
  if (p.fail) {
    ++boxes_[src]->stats.faults_injected;
    return false;
  }
  return true;
}

void Interconnect::remote_op(int src, int dst, std::size_t stream_bytes,
                             Time base_latency, const char* what) {
  if (!faults_) {
    // Fault-free fast path: exactly the historical single-attempt cost.
    charge(src, cfg_.nic_overhead + cfg_.net_transfer(stream_bytes),
           base_latency);
    return;
  }
  const RetryPolicy& rp = cfg_.retry;
  const Time started = argosim::now();
  Time backoff = rp.backoff_base;
  for (int attempt = 1;; ++attempt) {
    if (remote_attempt(src, dst, stream_bytes, base_latency, what)) return;
    const bool out_of_attempts = attempt >= rp.max_attempts;
    const bool past_deadline =
        rp.deadline > 0 && argosim::now() - started >= rp.deadline;
    if (out_of_attempts || past_deadline) {
      throw NetworkError(op_context(what, src, dst) + " failed after " +
                         std::to_string(attempt) + " attempts");
    }
    Time wait = backoff;
    if (rp.backoff_jitter > 0)
      wait += faults_->backoff_jitter(
          static_cast<Time>(static_cast<double>(backoff) * rp.backoff_jitter),
          src);
    auto& st = boxes_[src]->stats;
    ++st.retries;
    st.backoff_time += wait;
    argosim::delay(wait);
    backoff = std::min<Time>(
        static_cast<Time>(static_cast<double>(backoff) * rp.backoff_mult),
        rp.backoff_max);
  }
}

namespace {
// Pool growth bound per node: past this, acquisitions with no free slot
// fall back to plain allocations (the shared_ptr still retires normally,
// it just isn't retained for reuse). Sized past any realistic pipeline
// depth so steady state never allocates.
constexpr std::size_t kPoolCap = 64;

// Round-robin scan for a slot nobody but the pool references.
template <class P>
typename P::value_type acquire_slot(P& pool, std::size_t& cursor) {
  for (std::size_t probe = 0; probe < pool.size(); ++probe) {
    auto& slot = pool[cursor];
    cursor = (cursor + 1) % pool.size();
    if (slot.use_count() == 1) return slot;
  }
  return nullptr;
}
}  // namespace

std::shared_ptr<argosim::SimRecord> Interconnect::acquire_record(NodeBox& box) {
  if (!argosim::slow_paths()) {
    if (auto rec = acquire_slot(box.rec_pool, box.rec_cursor)) {
      rec->reset();
      rec_pool_hits_.fetch_add(1, std::memory_order_relaxed);
      return rec;
    }
  }
  rec_pool_misses_.fetch_add(1, std::memory_order_relaxed);
  auto rec = std::make_shared<argosim::SimRecord>();
  if (!argosim::slow_paths() && box.rec_pool.size() < kPoolCap)
    box.rec_pool.push_back(rec);
  return rec;
}

std::shared_ptr<std::vector<std::byte>> Interconnect::acquire_buf(
    NodeBox& box) {
  if (!argosim::slow_paths()) {
    if (auto buf = acquire_slot(box.buf_pool, box.buf_cursor)) {
      buf->clear();
      rec_pool_hits_.fetch_add(1, std::memory_order_relaxed);
      return buf;
    }
  }
  rec_pool_misses_.fetch_add(1, std::memory_order_relaxed);
  auto buf = std::make_shared<std::vector<std::byte>>();
  if (!argosim::slow_paths() && box.buf_pool.size() < kPoolCap)
    box.buf_pool.push_back(buf);
  return buf;
}

bool Interconnect::sharded_attempt(
    int src, int dst, std::size_t stream_bytes, Time base_latency,
    const char* what, const std::shared_ptr<argosim::SimRecord>& rec,
    ApplyFn& apply) {
  auto& box = *boxes_[src];
  bool fail = false;
  Time stream = cfg_.net_transfer(stream_bytes);
  Time latency = base_latency;
  if (faults_) {
    crash_check(src, dst, what);
    const AttemptPlan p = faults_->plan_attempt(src, dst, argosim::now());
    if (p.bw_frac < 1.0 && stream > 0)
      stream = static_cast<Time>(static_cast<double>(stream) / p.bw_frac);
    latency = static_cast<Time>(static_cast<double>(base_latency) *
                                p.latency_mult) +
              p.extra_latency;
    fail = p.fail;
  }
  const Time busy = cfg_.nic_overhead + stream;
  box.stats.nic_busy += busy;
  {
    // Same NIC serialization as charge(); the effect must be timestamped
    // from the instant the NIC is acquired, so the post happens under the
    // lock, before the busy time is paid.
    std::optional<argosim::SimLockGuard> g;
    if (cfg_.serialize_nic) g.emplace(box.nic);
    if (!fail && apply) {
      // A successful attempt is the op's last: consuming `apply` here is
      // safe because the retry loop returns as soon as we report success.
      argosim::Engine::current()->post_effect(
          static_cast<std::uint32_t>(dst), argosim::now() + busy + latency, 1,
          static_cast<std::uint64_t>(src), box.effect_seq++,
          [rec, apply = std::move(apply)]() mutable {
            apply(*rec);
            rec->complete();
          });
    }
    argosim::delay(busy);
  }
  if (latency > 0) argosim::delay(latency);
  if (fail) {
    ++box.stats.faults_injected;
    return false;
  }
  return true;
}

std::shared_ptr<argosim::SimRecord> Interconnect::sharded_op(
    int src, int dst, std::size_t stream_bytes, Time base_latency,
    const char* what, ApplyFn apply) {
  auto rec = acquire_record(*boxes_[src]);
  if (!faults_) {
    sharded_attempt(src, dst, stream_bytes, base_latency, what, rec, apply);
    return rec;
  }
  const RetryPolicy& rp = cfg_.retry;
  const Time started = argosim::now();
  Time backoff = rp.backoff_base;
  for (int attempt = 1;; ++attempt) {
    if (sharded_attempt(src, dst, stream_bytes, base_latency, what, rec,
                        apply))
      return rec;
    const bool out_of_attempts = attempt >= rp.max_attempts;
    const bool past_deadline =
        rp.deadline > 0 && argosim::now() - started >= rp.deadline;
    if (out_of_attempts || past_deadline) {
      throw NetworkError(op_context(what, src, dst) + " failed after " +
                         std::to_string(attempt) + " attempts");
    }
    Time wait = backoff;
    if (rp.backoff_jitter > 0)
      wait += faults_->backoff_jitter(
          static_cast<Time>(static_cast<double>(backoff) * rp.backoff_jitter),
          src);
    auto& st = boxes_[src]->stats;
    ++st.retries;
    st.backoff_time += wait;
    argosim::delay(wait);
    backoff = std::min<Time>(
        static_cast<Time>(static_cast<double>(backoff) * rp.backoff_mult),
        rp.backoff_max);
  }
}

// ---------------------------------------------------------------------------
// Posted (asynchronous) verbs
// ---------------------------------------------------------------------------

void Interconnect::throw_posted_failure(int node, PostedFailure f) {
  const std::string msg = op_context(f.what, node, f.dst) +
                          " (posted) failed after exhausting its retry budget";
  // Attribute the failure to a crash when the target has since died: the
  // recovery paths key their handling on the exception type.
  if (node_dead(f.dst)) throw NodeFailedError(msg, node, f.dst);
  throw NetworkError(msg);
}

void Interconnect::retire_front(int src) {
  auto& box = *boxes_[src];
  assert(!box.sendq.empty());
  const std::uint64_t id = box.sendq.front().id;
  // Sleep until the head completes, then re-check: another fiber may have
  // retired it (and possibly more) while we slept. Ids are never reused,
  // so observing a different front id means our target is gone.
  while (!box.sendq.empty() && box.sendq.front().id == id) {
    const Time comp = box.sendq.front().complete_at;
    if (argosim::now() < comp) {
      argosim::delay(comp - argosim::now());
      continue;
    }
    Posted p = std::move(box.sendq.front());
    box.sendq.pop_front();
    if (tracer_)
      tracer_->emit(src, argoobs::Ev::PostedRetire, p.id,
                    argoobs::kUnknownState, p.hard_fail ? 1 : 0);
    if (p.hard_fail) {
      box.posted_failed.emplace(p.id, PostedFailure{p.what, p.dst});
    } else if (p.rec) {
      // Sharded engine: the remote half ran (or is about to run) on dst's
      // shard at complete_at; wait for the record, then run the src-side
      // finish. Remote application order per destination is preserved by
      // the effect keys, so interleaved retirements of later ops are fine.
      argosim::Engine::current()->await(p.rec);
      const std::uint64_t v = p.finish ? p.finish(*p.rec) : 0;
      if (p.has_value) box.posted_results.emplace(p.id, v);
    } else {
      const std::uint64_t v = p.effect ? p.effect() : 0;
      if (p.has_value) box.posted_results.emplace(p.id, v);
    }
  }
}

PostedHandle Interconnect::retired_handle(int src, bool has_value,
                                          std::uint64_t value) {
  auto& box = *boxes_[src];
  const std::uint64_t id = box.posted_next_id++;
  if (has_value) box.posted_results.emplace(id, value);
  return PostedHandle{src, id};
}

PostedHandle Interconnect::post_remote(int src, int dst,
                                       std::size_t stream_bytes,
                                       Time base_latency, const char* what,
                                       bool has_value, PostedEffectFn effect,
                                       ApplyFn dst_apply, FinishFn finish) {
  auto& box = *boxes_[src];
  crash_check(src, dst, what);
  const bool sharded = sharded_engine();
  const int depth = cfg_.pipeline > 1 ? cfg_.pipeline : 1;
  if (depth == 1) {
    // Depth 1 degenerates to the blocking verb: identical charges and
    // retry loop, effect applied at completion time.
    if (sharded) {
      auto rec = sharded_op(src, dst, stream_bytes, base_latency, what,
                            std::move(dst_apply));
      std::uint64_t v = 0;
      if (finish) {
        argosim::Engine::current()->await(rec);
        v = finish(*rec);
      }
      return retired_handle(src, has_value, v);
    }
    remote_op(src, dst, stream_bytes, base_latency, what);
    const std::uint64_t v = effect ? effect() : 0;
    return retired_handle(src, has_value, v);
  }
  while (box.sendq.size() >= static_cast<std::size_t>(depth))
    retire_front(src);
  ++box.stats.posted_ops;

  Time done = 0;
  bool hard_fail = false;
  if (!faults_) {
    charge(src, cfg_.nic_overhead + cfg_.net_transfer(stream_bytes), 0);
    done = argosim::now() + base_latency;
  } else {
    // Project the whole retry history at post time. Plans must be drawn
    // against the posting-time clock: FaultInjector brownout queries are
    // required to be monotonic in `now` per node, so probing the future
    // per retry would be unsound once several ops are in flight. The
    // first attempt holds the NIC for real; retransmissions of an
    // in-flight op are NIC work too, but only their time is folded into
    // the completion (accounted in nic_busy, not serialized — the queue
    // depth already bounds how much can pile up).
    const RetryPolicy& rp = cfg_.retry;
    const Time post_now = argosim::now();
    Time backoff = rp.backoff_base;
    for (int attempt = 1;; ++attempt) {
      const AttemptPlan p = faults_->plan_attempt(src, dst, post_now);
      Time stream = cfg_.net_transfer(stream_bytes);
      if (p.bw_frac < 1.0 && stream > 0)
        stream = static_cast<Time>(static_cast<double>(stream) / p.bw_frac);
      const Time latency =
          static_cast<Time>(static_cast<double>(base_latency) *
                            p.latency_mult) +
          p.extra_latency;
      const Time busy = cfg_.nic_overhead + stream;
      if (attempt == 1) {
        charge(src, busy, 0);
        done = argosim::now() + latency;
      } else {
        box.stats.nic_busy += busy;
        done += busy + latency;
      }
      if (!p.fail) break;
      ++box.stats.faults_injected;
      const bool out_of_attempts = attempt >= rp.max_attempts;
      const bool past_deadline =
          rp.deadline > 0 && done - post_now >= rp.deadline;
      if (out_of_attempts || past_deadline) {
        hard_fail = true;
        break;
      }
      Time wait = backoff;
      if (rp.backoff_jitter > 0)
        wait += faults_->backoff_jitter(
            static_cast<Time>(static_cast<double>(backoff) *
                              rp.backoff_jitter),
            src);
      ++box.stats.retries;
      box.stats.backoff_time += wait;
      done += wait;
      backoff = std::min<Time>(
          static_cast<Time>(static_cast<double>(backoff) * rp.backoff_mult),
          rp.backoff_max);
    }
  }
  // In-order completion (reliable-connection queue-pair semantics): an op
  // can never retire before its predecessors.
  if (!box.sendq.empty() && box.sendq.back().complete_at > done)
    done = box.sendq.back().complete_at;
  const std::uint64_t id = box.posted_next_id++;
  Posted p{id,  done,      hard_fail,         what,    dst,
           has_value, std::move(effect), nullptr, nullptr};
  if (sharded && !hard_fail) {
    // Ship the remote half to dst's shard at the (fully projected, in-order
    // bumped) completion time; the dst-shard effect replaces the inline one.
    p.rec = acquire_record(box);
    p.finish = std::move(finish);
    p.effect = nullptr;
    argosim::Engine::current()->post_effect(
        static_cast<std::uint32_t>(dst), done, 1,
        static_cast<std::uint64_t>(src), box.effect_seq++,
        [rec = p.rec, apply = std::move(dst_apply)]() mutable {
          if (apply) apply(*rec);
          rec->complete();
        });
  }
  box.sendq.push_back(std::move(p));
  box.stats.posted_inflight_hwm =
      std::max<std::uint64_t>(box.stats.posted_inflight_hwm, box.sendq.size());
  return PostedHandle{src, id};
}

std::uint64_t Interconnect::wait(PostedHandle h) {
  if (h.node < 0 || h.id == 0) return 0;
  auto& box = *boxes_[h.node];
  for (;;) {
    if (auto it = box.posted_failed.find(h.id); it != box.posted_failed.end()) {
      const PostedFailure f = it->second;
      box.posted_failed.erase(it);
      ++box.posted_aborted;
      throw_posted_failure(h.node, f);
    }
    if (auto it = box.posted_results.find(h.id);
        it != box.posted_results.end()) {
      const std::uint64_t v = it->second;
      box.posted_results.erase(it);
      return v;
    }
    // Retired without a banked value (a plain read/write), or never of
    // this queue at all: nothing left to wait for.
    if (box.sendq.empty() || box.sendq.front().id > h.id) return 0;
    retire_front(h.node);
  }
}

void Interconnect::wait_all(int node) {
  auto& box = *boxes_[node];
  while (!box.sendq.empty()) retire_front(node);
  if (!box.posted_failed.empty()) {
    const PostedFailure f = box.posted_failed.begin()->second;
    box.posted_aborted += box.posted_failed.size();
    box.posted_failed.clear();
    throw_posted_failure(node, f);
  }
}

PostedHandle Interconnect::post_read(int src, int dst, const void* remote,
                                     void* local, std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_reads;
  s.bytes_read += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
    std::memcpy(local, remote, n);
    return retired_handle(src, false, 0);
  }
  return post_remote(
      src, dst, n, cfg_.rdma_latency, "RDMA read", false,
      [remote, local, n]() -> std::uint64_t {
        std::memcpy(local, remote, n);
        return 0;
      },
      // Sharded: capture the remote bytes on dst's shard at the completion
      // instant; copy them out on the issuing shard at retirement.
      [remote, n](argosim::SimRecord& r) {
        const auto* p = static_cast<const std::byte*>(remote);
        r.bytes.assign(p, p + n);
      },
      [local, n](argosim::SimRecord& r) -> std::uint64_t {
        std::memcpy(local, r.bytes.data(), n);
        return 0;
      });
}

PostedHandle Interconnect::post_write(int src, int dst, void* remote,
                                      const void* local, std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_writes;
  s.bytes_written += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
    std::memcpy(remote, local, n);
    return retired_handle(src, false, 0);
  }
  // Posted semantics capture the payload at post time: the source buffer
  // may be reused (page evicted, refetched, re-dirtied) before retirement.
  auto buf = acquire_buf(*boxes_[src]);
  buf->assign(static_cast<const std::byte*>(local),
              static_cast<const std::byte*>(local) + n);
  return post_remote(
      src, dst, n, cfg_.rdma_latency, "RDMA write", false,
      [remote, buf, n]() -> std::uint64_t {
        std::memcpy(remote, buf->data(), n);
        return 0;
      },
      [remote, buf, n](argosim::SimRecord&) {
        std::memcpy(remote, buf->data(), n);
      },
      nullptr);
}

PostedHandle Interconnect::post_write_gather(int src, int dst,
                                             const std::vector<GatherRun>& runs,
                                             std::size_t header_bytes) {
  std::size_t wire = 0;
  for (const GatherRun& r : runs) wire += r.len + header_bytes;
  auto& s = boxes_[src]->stats;
  ++s.rdma_writes;
  s.bytes_written += wire;
  auto buf = acquire_buf(*boxes_[src]);
  buf->reserve(wire);
  std::vector<std::pair<void*, std::size_t>> targets;
  targets.reserve(runs.size());
  for (const GatherRun& r : runs) {
    const std::byte* p = static_cast<const std::byte*>(r.local);
    buf->insert(buf->end(), p, p + r.len);
    targets.emplace_back(r.remote, r.len);
  }
  auto effect = [buf, targets = std::move(targets)]() -> std::uint64_t {
    std::size_t off = 0;
    for (const auto& [to, len] : targets) {
      std::memcpy(to, buf->data() + off, len);
      off += len;
    }
    return 0;
  };
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(wire));
    effect();
    return retired_handle(src, false, 0);
  }
  auto dst_apply = [effect](argosim::SimRecord&) { effect(); };
  return post_remote(src, dst, wire, cfg_.rdma_latency, "RDMA gather write",
                     false, std::move(effect), std::move(dst_apply), nullptr);
}

PostedHandle Interconnect::post_fetch_or(int src, int dst,
                                         std::uint64_t* remote,
                                         std::uint64_t bits,
                                         std::function<void(std::uint64_t)>
                                             on_remote) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
    const std::uint64_t old = *remote;
    *remote = old | bits;
    if (on_remote) on_remote(old);
    return retired_handle(src, true, old);
  }
  return post_remote(
      src, dst, 0, cfg_.rdma_latency, "RDMA fetch-or", true,
      [remote, bits, on_remote]() -> std::uint64_t {
        const std::uint64_t old = *remote;
        *remote = old | bits;
        if (on_remote) on_remote(old);
        return old;
      },
      [remote, bits, on_remote](argosim::SimRecord& r) {
        r.value = *remote;
        *remote = r.value | bits;
        if (on_remote) on_remote(r.value);
      },
      [](argosim::SimRecord& r) -> std::uint64_t { return r.value; });
}

PostedHandle Interconnect::post_fetch_or(int src, int dst,
                                         std::uint64_t* remote,
                                         std::uint64_t bits) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
    const std::uint64_t old = *remote;
    *remote = old | bits;
    return retired_handle(src, true, old);
  }
  return post_remote(
      src, dst, 0, cfg_.rdma_latency, "RDMA fetch-or", true,
      [remote, bits]() -> std::uint64_t {
        const std::uint64_t old = *remote;
        *remote = old | bits;
        return old;
      },
      [remote, bits](argosim::SimRecord& r) {
        r.value = *remote;
        *remote = r.value | bits;
      },
      [](argosim::SimRecord& r) -> std::uint64_t { return r.value; });
}

PostedHandle Interconnect::post_fetch_or_span(int src, int dst,
                                              std::uint64_t* remote,
                                              const std::uint64_t* bits,
                                              int nwords,
                                              std::uint64_t* prev_out) {
  assert(nwords >= 1 && nwords <= kMaxAtomicSpan);
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  std::array<std::uint64_t, kMaxAtomicSpan> b{};
  std::copy_n(bits, nwords, b.begin());
  auto apply = [remote, b, nwords, prev_out]() {
    for (int i = 0; i < nwords; ++i) {
      prev_out[i] = remote[i];
      remote[i] |= b[static_cast<std::size_t>(i)];
    }
  };
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
    apply();
    return retired_handle(src, true, prev_out[0]);
  }
  const std::size_t extra = sizeof(std::uint64_t) *
                            static_cast<std::size_t>(nwords - 1);
  return post_remote(
      src, dst, extra, cfg_.rdma_latency, "RDMA masked fetch-or", true,
      [apply, prev_out]() -> std::uint64_t {
        apply();
        return prev_out[0];
      },
      [apply, prev_out](argosim::SimRecord& r) {
        apply();
        r.value = prev_out[0];
      },
      [](argosim::SimRecord& r) -> std::uint64_t { return r.value; });
}

PostedHandle Interconnect::post_fetch_add(int src, int dst,
                                          std::uint64_t* remote,
                                          std::uint64_t v) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
    const std::uint64_t old = *remote;
    *remote = old + v;
    return retired_handle(src, true, old);
  }
  return post_remote(
      src, dst, 0, cfg_.rdma_latency, "RDMA fetch-add", true,
      [remote, v]() -> std::uint64_t {
        const std::uint64_t old = *remote;
        *remote = old + v;
        return old;
      },
      [remote, v](argosim::SimRecord& r) {
        r.value = *remote;
        *remote = r.value + v;
      },
      [](argosim::SimRecord& r) -> std::uint64_t { return r.value; });
}

PostedHandle Interconnect::post_cas(int src, int dst, std::uint64_t* remote,
                                    std::uint64_t expected,
                                    std::uint64_t desired) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
    const std::uint64_t old = *remote;
    if (old == expected) *remote = desired;
    return retired_handle(src, true, old);
  }
  return post_remote(
      src, dst, 0, cfg_.rdma_latency, "RDMA CAS", true,
      [remote, expected, desired]() -> std::uint64_t {
        const std::uint64_t old = *remote;
        if (old == expected) *remote = desired;
        return old;
      },
      [remote, expected, desired](argosim::SimRecord& r) {
        r.value = *remote;
        if (r.value == expected) *remote = desired;
      },
      [](argosim::SimRecord& r) -> std::uint64_t { return r.value; });
}

namespace {

// Sharded dst_apply for reads: capture the remote content on dst's shard at
// the wire-completion instant; the issuing fiber copies it out after await.
std::function<void(argosim::SimRecord&)> capture_bytes(const void* remote,
                                                       std::size_t n) {
  return [remote, n](argosim::SimRecord& r) {
    const auto* p = static_cast<const std::byte*>(remote);
    r.bytes.assign(p, p + n);
  };
}

// Sharded dst_apply for writes: the payload snapshot taken at issue time
// lands on dst's shard at the completion instant.
std::function<void(argosim::SimRecord&)> apply_bytes(
    void* remote, std::shared_ptr<std::vector<std::byte>> buf) {
  return [remote, buf = std::move(buf)](argosim::SimRecord&) {
    std::memcpy(remote, buf->data(), buf->size());
  };
}

std::shared_ptr<std::vector<std::byte>> snapshot(const void* local,
                                                 std::size_t n) {
  const auto* p = static_cast<const std::byte*>(local);
  return std::make_shared<std::vector<std::byte>>(p, p + n);
}

}  // namespace

void Interconnect::read(int src, int dst, const void* remote, void* local,
                        std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_reads;
  s.bytes_read += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
  } else if (sharded_engine()) {
    auto rec = sharded_op(src, dst, n, cfg_.rdma_latency, "RDMA read",
                          capture_bytes(remote, n));
    argosim::Engine::current()->await(rec);
    std::memcpy(local, rec->bytes.data(), n);
    return;
  } else {
    remote_op(src, dst, n, cfg_.rdma_latency, "RDMA read");
  }
  // The value observed is the remote content at completion time.
  std::memcpy(local, remote, n);
}

bool Interconnect::try_read(int src, int dst, const void* remote, void* local,
                            std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_reads;
  s.bytes_read += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
  } else if (sharded_engine()) {
    auto rec = acquire_record(*boxes_[src]);
    ApplyFn apply = capture_bytes(remote, n);
    if (!sharded_attempt(src, dst, n, cfg_.rdma_latency, "RDMA read", rec,
                         apply))
      return false;
    argosim::Engine::current()->await(rec);
    std::memcpy(local, rec->bytes.data(), n);
    return true;
  } else if (!remote_attempt(src, dst, n, cfg_.rdma_latency, "RDMA read")) {
    return false;
  }
  std::memcpy(local, remote, n);
  return true;
}

void Interconnect::write(int src, int dst, void* remote, const void* local,
                         std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_writes;
  s.bytes_written += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
  } else if (sharded_engine()) {
    // Snapshot at issue time (as the posted verbs do) and apply on dst's
    // shard at the completion instant. No await: the fiber's clock already
    // equals the completion time, and any later verb touching the same
    // remote bytes lands at a strictly later effect key.
    sharded_op(src, dst, n, cfg_.rdma_latency, "RDMA write",
               apply_bytes(remote, snapshot(local, n)));
    return;
  } else {
    remote_op(src, dst, n, cfg_.rdma_latency, "RDMA write");
  }
  // The data becomes globally visible at completion time.
  std::memcpy(remote, local, n);
}

bool Interconnect::try_write(int src, int dst, void* remote, const void* local,
                             std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_writes;
  s.bytes_written += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
  } else if (sharded_engine()) {
    auto rec = acquire_record(*boxes_[src]);
    ApplyFn apply = apply_bytes(remote, snapshot(local, n));
    return sharded_attempt(src, dst, n, cfg_.rdma_latency, "RDMA write", rec,
                           apply);
  } else if (!remote_attempt(src, dst, n, cfg_.rdma_latency, "RDMA write")) {
    return false;
  }
  std::memcpy(remote, local, n);
  return true;
}

void Interconnect::charge_write(int src, int dst, std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_writes;
  s.bytes_written += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
  } else {
    remote_op(src, dst, n, cfg_.rdma_latency, "RDMA write");
  }
}

void Interconnect::write_gather(int src, int dst,
                                const std::vector<GatherRun>& runs,
                                std::size_t header_bytes) {
  std::size_t wire = 0;
  for (const GatherRun& r : runs) wire += r.len + header_bytes;
  auto& s = boxes_[src]->stats;
  ++s.rdma_writes;
  s.bytes_written += wire;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(wire));
    for (const GatherRun& r : runs) std::memcpy(r.remote, r.local, r.len);
    return;
  }
  if (sharded_engine()) {
    auto buf = std::make_shared<std::vector<std::byte>>();
    buf->reserve(wire);
    std::vector<std::pair<void*, std::size_t>> targets;
    targets.reserve(runs.size());
    for (const GatherRun& r : runs) {
      const std::byte* p = static_cast<const std::byte*>(r.local);
      buf->insert(buf->end(), p, p + r.len);
      targets.emplace_back(r.remote, r.len);
    }
    sharded_op(src, dst, wire, cfg_.rdma_latency, "RDMA write",
               [buf, targets = std::move(targets)](argosim::SimRecord&) {
                 std::size_t off = 0;
                 for (const auto& [to, len] : targets) {
                   std::memcpy(to, buf->data() + off, len);
                   off += len;
                 }
               });
    return;
  }
  // Legacy engine: charge one wire transfer, then apply the runs in place
  // at completion time — charge_write() plus the caller's own memcpys,
  // byte-identical in virtual time.
  remote_op(src, dst, wire, cfg_.rdma_latency, "RDMA write");
  for (const GatherRun& r : runs) std::memcpy(r.remote, r.local, r.len);
}

// Remote atomics share one attempt shape: no payload streaming, one
// completion latency; the operation commits only on a successful attempt
// (a failed attempt is detected before the NIC executes it remotely).

std::uint64_t Interconnect::fetch_or(int src, int dst, std::uint64_t* remote,
                                     std::uint64_t bits) {
  return fetch_or(src, dst, remote, bits, nullptr);
}

std::uint64_t Interconnect::fetch_or(
    int src, int dst, std::uint64_t* remote, std::uint64_t bits,
    std::function<void(std::uint64_t)> on_remote) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else if (sharded_engine()) {
    auto rec = sharded_op(src, dst, 0, cfg_.rdma_latency, "RDMA fetch-or",
                          [remote, bits, on_remote](argosim::SimRecord& r) {
                            r.value = *remote;
                            *remote = r.value | bits;
                            if (on_remote) on_remote(r.value);
                          });
    argosim::Engine::current()->await(rec);
    return rec->value;
  } else {
    remote_op(src, dst, 0, cfg_.rdma_latency, "RDMA fetch-or");
  }
  std::uint64_t old = *remote;
  *remote = old | bits;
  if (on_remote) on_remote(old);
  return old;
}

void Interconnect::fetch_or_span(int src, int dst, std::uint64_t* remote,
                                 const std::uint64_t* bits, int nwords,
                                 std::uint64_t* prev_out) {
  assert(nwords >= 1 && nwords <= kMaxAtomicSpan);
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  std::array<std::uint64_t, kMaxAtomicSpan> b{};
  std::copy_n(bits, nwords, b.begin());
  // One extended atomic: every word's pre-OR value is snapshotted at the
  // same commit instant the ORs land — concurrent registrants therefore
  // totally order, and exactly one of them observes any given displaced
  // owner as the sole accessor.
  auto apply = [remote, b, nwords, prev_out]() {
    for (int i = 0; i < nwords; ++i) {
      prev_out[i] = remote[i];
      remote[i] |= b[static_cast<std::size_t>(i)];
    }
  };
  const std::size_t extra = sizeof(std::uint64_t) *
                            static_cast<std::size_t>(nwords - 1);
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
    apply();
    return;
  }
  if (sharded_engine()) {
    auto rec = sharded_op(src, dst, extra, cfg_.rdma_latency,
                          "RDMA masked fetch-or",
                          [apply](argosim::SimRecord& r) {
                            apply();
                            r.value = 0;
                          });
    argosim::Engine::current()->await(rec);
    return;
  }
  remote_op(src, dst, extra, cfg_.rdma_latency, "RDMA masked fetch-or");
  apply();
}

std::optional<std::uint64_t> Interconnect::try_fetch_or(int src, int dst,
                                                        std::uint64_t* remote,
                                                        std::uint64_t bits) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else if (sharded_engine()) {
    auto rec = acquire_record(*boxes_[src]);
    ApplyFn apply = [remote, bits](argosim::SimRecord& r) {
      r.value = *remote;
      *remote = r.value | bits;
    };
    if (!sharded_attempt(src, dst, 0, cfg_.rdma_latency, "RDMA fetch-or", rec,
                         apply))
      return std::nullopt;
    argosim::Engine::current()->await(rec);
    return rec->value;
  } else if (!remote_attempt(src, dst, 0, cfg_.rdma_latency,
                             "RDMA fetch-or")) {
    return std::nullopt;
  }
  std::uint64_t old = *remote;
  *remote = old | bits;
  return old;
}

std::uint64_t Interconnect::fetch_add(int src, int dst, std::uint64_t* remote,
                                      std::uint64_t v) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else if (sharded_engine()) {
    auto rec = sharded_op(src, dst, 0, cfg_.rdma_latency, "RDMA fetch-add",
                          [remote, v](argosim::SimRecord& r) {
                            r.value = *remote;
                            *remote = r.value + v;
                          });
    argosim::Engine::current()->await(rec);
    return rec->value;
  } else {
    remote_op(src, dst, 0, cfg_.rdma_latency, "RDMA fetch-add");
  }
  std::uint64_t old = *remote;
  *remote = old + v;
  return old;
}

std::optional<std::uint64_t> Interconnect::try_fetch_add(int src, int dst,
                                                         std::uint64_t* remote,
                                                         std::uint64_t v) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else if (sharded_engine()) {
    auto rec = acquire_record(*boxes_[src]);
    ApplyFn apply = [remote, v](argosim::SimRecord& r) {
      r.value = *remote;
      *remote = r.value + v;
    };
    if (!sharded_attempt(src, dst, 0, cfg_.rdma_latency, "RDMA fetch-add",
                         rec, apply))
      return std::nullopt;
    argosim::Engine::current()->await(rec);
    return rec->value;
  } else if (!remote_attempt(src, dst, 0, cfg_.rdma_latency,
                             "RDMA fetch-add")) {
    return std::nullopt;
  }
  std::uint64_t old = *remote;
  *remote = old + v;
  return old;
}

std::uint64_t Interconnect::cas(int src, int dst, std::uint64_t* remote,
                                std::uint64_t expected, std::uint64_t desired) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else if (sharded_engine()) {
    auto rec = sharded_op(src, dst, 0, cfg_.rdma_latency, "RDMA CAS",
                          [remote, expected, desired](argosim::SimRecord& r) {
                            r.value = *remote;
                            if (r.value == expected) *remote = desired;
                          });
    argosim::Engine::current()->await(rec);
    return rec->value;
  } else {
    remote_op(src, dst, 0, cfg_.rdma_latency, "RDMA CAS");
  }
  std::uint64_t old = *remote;
  if (old == expected) *remote = desired;
  return old;
}

std::optional<std::uint64_t> Interconnect::try_cas(int src, int dst,
                                                   std::uint64_t* remote,
                                                   std::uint64_t expected,
                                                   std::uint64_t desired) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else if (sharded_engine()) {
    auto rec = acquire_record(*boxes_[src]);
    ApplyFn apply = [remote, expected, desired](argosim::SimRecord& r) {
      r.value = *remote;
      if (r.value == expected) *remote = desired;
    };
    if (!sharded_attempt(src, dst, 0, cfg_.rdma_latency, "RDMA CAS", rec,
                         apply))
      return std::nullopt;
    argosim::Engine::current()->await(rec);
    return rec->value;
  } else if (!remote_attempt(src, dst, 0, cfg_.rdma_latency, "RDMA CAS")) {
    return std::nullopt;
  }
  std::uint64_t old = *remote;
  if (old == expected) *remote = desired;
  return old;
}

std::uint64_t Interconnect::exchange(int src, int dst, std::uint64_t* remote,
                                     std::uint64_t desired) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else if (sharded_engine()) {
    auto rec = sharded_op(src, dst, 0, cfg_.rdma_latency, "RDMA exchange",
                          [remote, desired](argosim::SimRecord& r) {
                            r.value = *remote;
                            *remote = desired;
                          });
    argosim::Engine::current()->await(rec);
    return rec->value;
  } else {
    remote_op(src, dst, 0, cfg_.rdma_latency, "RDMA exchange");
  }
  std::uint64_t old = *remote;
  *remote = desired;
  return old;
}

std::optional<std::uint64_t> Interconnect::try_exchange(int src, int dst,
                                                        std::uint64_t* remote,
                                                        std::uint64_t desired) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else if (sharded_engine()) {
    auto rec = acquire_record(*boxes_[src]);
    ApplyFn apply = [remote, desired](argosim::SimRecord& r) {
      r.value = *remote;
      *remote = desired;
    };
    if (!sharded_attempt(src, dst, 0, cfg_.rdma_latency, "RDMA exchange",
                         rec, apply))
      return std::nullopt;
    argosim::Engine::current()->await(rec);
    return rec->value;
  } else if (!remote_attempt(src, dst, 0, cfg_.rdma_latency,
                             "RDMA exchange")) {
    return std::nullopt;
  }
  std::uint64_t old = *remote;
  *remote = desired;
  return old;
}

void Interconnect::barrier_round(int node, int partner) {
  remote_op(node, partner, 0, cfg_.msg_latency, "barrier round");
}

bool Interconnect::probe(int src, int dst) {
  // One tiny notification charged on the sender only: a dead target
  // participates in nothing, and the probe's fate depends solely on the
  // crash schedule (no RNG draws, no retry loop).
  charge(src, cfg_.nic_overhead, cfg_.msg_latency);
  return !node_dead(dst);
}

void Interconnect::deliver(Message msg, Time deliver_at) {
  auto& box = *boxes_[msg.dst];
  box.inbox.push(Pending{deliver_at, send_seq_++, std::move(msg)});
  box.rx_waiters.notify_all();
}

void Interconnect::ship_message(Message msg, Time deliver_at) {
  // Sharded engine: the inbox belongs to dst's shard, so delivery travels
  // as a timestamped effect. The inbox sequence number is assigned on the
  // destination in effect-key order — deterministic regardless of which
  // workers ran the senders.
  auto& src_box = *boxes_[msg.src];
  const int dst = msg.dst;
  argosim::Engine::current()->post_effect(
      static_cast<std::uint32_t>(dst), deliver_at, 1,
      static_cast<std::uint64_t>(msg.src), src_box.effect_seq++,
      [this, dst, deliver_at, m = std::make_shared<Message>(std::move(msg))] {
        auto& box = *boxes_[dst];
        box.inbox.push(Pending{deliver_at, box.rx_seq++, std::move(*m)});
        box.rx_waiters.notify_all();
      });
}

void Interconnect::purge_stale(NodeBox& box) {
  if (!faults_ || !faults_->has_crashes()) return;
  while (!box.inbox.empty() && box.inbox.top().deliver_at <= argosim::now() &&
         faults_->crashed(box.inbox.top().msg.src, argosim::now())) {
    // "No message from a dead node is applied": the sender crash-stopped
    // before this delivery instant, so the message dies in the inbox.
    box.inbox.pop();
    stale_msgs_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Interconnect::send(Message msg) { try_send(std::move(msg)); }

bool Interconnect::try_send(Message msg) {
  assert(msg.src >= 0 && msg.src < nodes_ && msg.dst >= 0 && msg.dst < nodes_);
  if (faults_ && faults_->has_crashes()) {
    faults_->note_op(msg.src, argosim::now());
    // Crashed senders unwind instead of emitting (see crash_check).
    if (faults_->crashed(msg.src, argosim::now())) throw argosim::SimStopped{};
  }
  auto& s = boxes_[msg.src]->stats;
  ++s.msgs_sent;
  s.bytes_sent += msg.payload.size();
  const std::size_t wire = msg.wire_size();
  if (msg.src == msg.dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(wire));
    deliver(std::move(msg), argosim::now());
    return true;
  }
  const bool sharded = sharded_engine();
  if (!faults_) {
    charge(msg.src, cfg_.nic_overhead + cfg_.net_transfer(wire), 0);
    const Time deliver_at = argosim::now() + cfg_.msg_latency;
    if (sharded)
      ship_message(std::move(msg), deliver_at);
    else
      deliver(std::move(msg), deliver_at);
    return true;
  }
  const AttemptPlan p = faults_->plan_attempt(msg.src, msg.dst, argosim::now());
  Time stream = cfg_.net_transfer(wire);
  if (p.bw_frac < 1.0 && stream > 0)
    stream = static_cast<Time>(static_cast<double>(stream) / p.bw_frac);
  charge(msg.src, cfg_.nic_overhead + stream, 0);
  if (faults_->drop_message(msg.src)) {
    ++s.faults_injected;
    return false;
  }
  const Time latency =
      static_cast<Time>(static_cast<double>(cfg_.msg_latency) *
                        p.latency_mult) +
      p.extra_latency;
  const bool dup = faults_->duplicate_message(msg.src);
  const Time deliver_at = argosim::now() + latency;
  if (dup) {
    Message copy = msg;
    if (sharded) {
      ship_message(std::move(copy), deliver_at);
      // The spurious retransmission arrives one latency later still.
      ship_message(std::move(msg), deliver_at + cfg_.msg_latency);
    } else {
      deliver(std::move(copy), deliver_at);
      deliver(std::move(msg), deliver_at + cfg_.msg_latency);
    }
  } else if (sharded) {
    ship_message(std::move(msg), deliver_at);
  } else {
    deliver(std::move(msg), deliver_at);
  }
  return true;
}

Time Interconnect::charge_message(int src, int dst,
                                  std::size_t payload_bytes) {
  auto& s = boxes_[src]->stats;
  ++s.msgs_sent;
  s.bytes_sent += payload_bytes;
  const std::size_t wire = 40 + payload_bytes;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(wire));
    return argosim::now();
  }
  charge(src, cfg_.nic_overhead + cfg_.net_transfer(wire), 0);
  return argosim::now() + cfg_.msg_latency;
}

Message Interconnect::recv(int node) {
  auto& box = *boxes_[node];
  for (;;) {
    purge_stale(box);
    if (!box.inbox.empty()) {
      const Pending& top = box.inbox.top();
      if (top.deliver_at <= argosim::now()) {
        Message m = std::move(const_cast<Pending&>(top).msg);
        box.inbox.pop();
        ++box.stats.msgs_received;
        return m;
      }
      box.rx_waiters.wait_until(top.deliver_at);
    } else {
      box.rx_waiters.wait();
    }
  }
}

std::optional<Message> Interconnect::try_recv(int node) {
  auto& box = *boxes_[node];
  purge_stale(box);
  if (box.inbox.empty() || box.inbox.top().deliver_at > argosim::now())
    return std::nullopt;
  Message m = std::move(const_cast<Pending&>(box.inbox.top()).msg);
  box.inbox.pop();
  ++box.stats.msgs_received;
  return m;
}

std::optional<Message> Interconnect::recv_for(int node, Time timeout) {
  auto& box = *boxes_[node];
  const Time deadline = argosim::now() + timeout;
  for (;;) {
    purge_stale(box);
    if (!box.inbox.empty()) {
      const Pending& top = box.inbox.top();
      if (top.deliver_at <= argosim::now()) {
        Message m = std::move(const_cast<Pending&>(top).msg);
        box.inbox.pop();
        ++box.stats.msgs_received;
        return m;
      }
      if (top.deliver_at <= deadline) {
        box.rx_waiters.wait_until(top.deliver_at);
        continue;
      }
    }
    if (argosim::now() >= deadline) return std::nullopt;
    box.rx_waiters.wait_until(deadline);
  }
}

bool Interconnect::poll(int node) {
  auto& box = *boxes_[node];
  purge_stale(box);
  return !box.inbox.empty() && box.inbox.top().deliver_at <= argosim::now();
}

NodeNetStats Interconnect::total_stats() const {
  NodeNetStats total;
  for (auto& b : boxes_) total += b->stats;
  return total;
}

void Interconnect::reset_stats() {
  for (auto& b : boxes_) b->stats = NodeNetStats{};
}

}  // namespace argonet
