#include "net/interconnect.hpp"

#include <cassert>
#include <cstring>

namespace argonet {

NodeNetStats& NodeNetStats::operator+=(const NodeNetStats& o) {
  rdma_reads += o.rdma_reads;
  rdma_writes += o.rdma_writes;
  rdma_atomics += o.rdma_atomics;
  msgs_sent += o.msgs_sent;
  msgs_received += o.msgs_received;
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  bytes_sent += o.bytes_sent;
  nic_busy += o.nic_busy;
  return *this;
}

Interconnect::Interconnect(int nodes, NetConfig cfg)
    : nodes_(nodes), cfg_(cfg) {
  assert(nodes > 0);
  boxes_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) boxes_.push_back(std::make_unique<NodeBox>());
}

void Interconnect::charge(int src, Time busy, Time extra_latency) {
  auto& box = *boxes_[src];
  box.stats.nic_busy += busy;
  if (cfg_.serialize_nic) {
    argosim::SimLockGuard g(box.nic);
    argosim::delay(busy);
  } else {
    argosim::delay(busy);
  }
  if (extra_latency > 0) argosim::delay(extra_latency);
}

void Interconnect::read(int src, int dst, const void* remote, void* local,
                        std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_reads;
  s.bytes_read += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
  } else {
    charge(src, cfg_.nic_overhead + cfg_.net_transfer(n), cfg_.rdma_latency);
  }
  // The value observed is the remote content at completion time.
  std::memcpy(local, remote, n);
}

void Interconnect::write(int src, int dst, void* remote, const void* local,
                         std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_writes;
  s.bytes_written += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
  } else {
    charge(src, cfg_.nic_overhead + cfg_.net_transfer(n), cfg_.rdma_latency);
  }
  // The data becomes globally visible at completion time.
  std::memcpy(remote, local, n);
}

void Interconnect::charge_write(int src, int dst, std::size_t n) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_writes;
  s.bytes_written += n;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(n));
  } else {
    charge(src, cfg_.nic_overhead + cfg_.net_transfer(n), cfg_.rdma_latency);
  }
}

std::uint64_t Interconnect::fetch_or(int src, int dst, std::uint64_t* remote,
                                     std::uint64_t bits) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else {
    charge(src, cfg_.nic_overhead, cfg_.rdma_latency);
  }
  std::uint64_t old = *remote;
  *remote = old | bits;
  return old;
}

std::uint64_t Interconnect::fetch_add(int src, int dst, std::uint64_t* remote,
                                      std::uint64_t v) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else {
    charge(src, cfg_.nic_overhead, cfg_.rdma_latency);
  }
  std::uint64_t old = *remote;
  *remote = old + v;
  return old;
}

std::uint64_t Interconnect::cas(int src, int dst, std::uint64_t* remote,
                                std::uint64_t expected, std::uint64_t desired) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else {
    charge(src, cfg_.nic_overhead, cfg_.rdma_latency);
  }
  std::uint64_t old = *remote;
  if (old == expected) *remote = desired;
  return old;
}

std::uint64_t Interconnect::exchange(int src, int dst, std::uint64_t* remote,
                                     std::uint64_t desired) {
  auto& s = boxes_[src]->stats;
  ++s.rdma_atomics;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency);
  } else {
    charge(src, cfg_.nic_overhead, cfg_.rdma_latency);
  }
  std::uint64_t old = *remote;
  *remote = desired;
  return old;
}

void Interconnect::send(Message msg) {
  assert(msg.src >= 0 && msg.src < nodes_ && msg.dst >= 0 && msg.dst < nodes_);
  auto& s = boxes_[msg.src]->stats;
  ++s.msgs_sent;
  s.bytes_sent += msg.payload.size();
  const std::size_t wire = msg.wire_size();
  if (msg.src == msg.dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(wire));
  } else {
    charge(msg.src, cfg_.nic_overhead + cfg_.net_transfer(wire), 0);
  }
  Time deliver_at = argosim::now() + (msg.src == msg.dst ? 0 : cfg_.msg_latency);
  auto& box = *boxes_[msg.dst];
  box.inbox.push(Pending{deliver_at, send_seq_++, std::move(msg)});
  box.rx_waiters.notify_all();
}

Time Interconnect::charge_message(int src, int dst,
                                  std::size_t payload_bytes) {
  auto& s = boxes_[src]->stats;
  ++s.msgs_sent;
  s.bytes_sent += payload_bytes;
  const std::size_t wire = 40 + payload_bytes;
  if (src == dst) {
    argosim::delay(cfg_.mem_latency + cfg_.mem_copy(wire));
    return argosim::now();
  }
  charge(src, cfg_.nic_overhead + cfg_.net_transfer(wire), 0);
  return argosim::now() + cfg_.msg_latency;
}

Message Interconnect::recv(int node) {
  auto& box = *boxes_[node];
  for (;;) {
    if (!box.inbox.empty()) {
      const Pending& top = box.inbox.top();
      if (top.deliver_at <= argosim::now()) {
        Message m = std::move(const_cast<Pending&>(top).msg);
        box.inbox.pop();
        ++box.stats.msgs_received;
        return m;
      }
      box.rx_waiters.wait_until(top.deliver_at);
    } else {
      box.rx_waiters.wait();
    }
  }
}

std::optional<Message> Interconnect::try_recv(int node) {
  auto& box = *boxes_[node];
  if (box.inbox.empty() || box.inbox.top().deliver_at > argosim::now())
    return std::nullopt;
  Message m = std::move(const_cast<Pending&>(box.inbox.top()).msg);
  box.inbox.pop();
  ++box.stats.msgs_received;
  return m;
}

bool Interconnect::poll(int node) {
  auto& box = *boxes_[node];
  return !box.inbox.empty() && box.inbox.top().deliver_at <= argosim::now();
}

NodeNetStats Interconnect::total_stats() const {
  NodeNetStats total;
  for (auto& b : boxes_) total += b->stats;
  return total;
}

void Interconnect::reset_stats() {
  for (auto& b : boxes_) b->stats = NodeNetStats{};
}

}  // namespace argonet
