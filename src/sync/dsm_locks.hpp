// Vela: Argo's distributed synchronization (paper §4).
//
//  * GlobalMcsLock — the inter-node building block: an MCS queue lock over
//    RDMA whose per-node queue entries are homed on their own node, so
//    waiters spin on local memory and handoff is a single remote write.
//  * HqdLock — hierarchical queue delegation (§4.2): critical sections are
//    delegated only *within* a node; whichever thread becomes the node's
//    helper takes the global lock once, self-invalidates once, executes a
//    whole batch locally, self-downgrades once, and passes the global lock
//    on. One SI/SD pair per batch instead of per critical section.
//  * DsmCohortLock — the comparison point of Figure 12: a cohort lock over
//    the DSM with conventional lock semantics, i.e. every critical section
//    pays an SI fence at acquire and an SD fence at release.
//  * DsmMutex — plain distributed mutex with per-CS fences (the "Argo
//    Pthreads" lock for ported applications).
//  * DsmFlag — signal/wait via an RDMA word plus fences (spin-flag
//    synchronization exposed to Carina, §3.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "sync/numa.hpp"

namespace argosync {

using argo::Cluster;
using argo::Thread;
using argomem::gptr;

/// MCS queue lock across nodes, all protocol state accessed by RDMA.
/// One queue slot per node: a node's threads serialize locally before
/// contending globally (callers such as HqdLock guarantee this; DsmMutex
/// adds its own node-local serialization).
///
/// Crash recovery (only when Cluster membership is enabled): the lock
/// keeps a host-side mirror of the holding node and registers itself with
/// the MembershipService. When a holder has been dead past its lease the
/// sweep force-resets the whole queue: tail and links are zeroed and every
/// live node's grant flag is set to kRestart, which spinning waiters read
/// as "abandon your slot and re-contend". release() performs the same
/// reset itself when it would hand the lock to a declared-dead successor,
/// or when a contender that swapped into the tail died before linking.
class GlobalMcsLock : public argocore::RecoverableLock {
 public:
  explicit GlobalMcsLock(Cluster& cluster);
  ~GlobalMcsLock() override;

  void acquire(Thread& t);
  void release(Thread& t);

  /// Bounded acquire: give up after `timeout` virtual ns. To stay
  /// timeout-safe it never enters the MCS queue (a queued waiter cannot
  /// abandon its slot without racing the handoff); it polls the tail with
  /// CAS under exponentially growing intervals instead. Uncontended cost
  /// equals acquire(); on success release() works unchanged. When the
  /// observed tail belongs to a declared-dead node the call fails at once
  /// instead of burning the full timeout: the queue cannot drain until the
  /// lease sweep resets it.
  bool try_acquire_for(Thread& t, argosim::Time timeout);

  /// Poll interval while spinning on the (node-local) grant flag.
  static constexpr argosim::Time kPoll = 100;

  /// Grant-flag values. kRestart is written by a forced queue reset.
  static constexpr std::uint64_t kGranted = 1;
  static constexpr std::uint64_t kRestart = 2;

  /// Polls release() waits on a missing tail link (with a declared death
  /// outstanding) before concluding the linker died mid-handshake. Sized
  /// well past the worst-case in-flight remote store, retries included.
  static constexpr int kStuckPolls = 64;

  // RecoverableLock: lease sweep interface (host-side, no simulated ops).
  int holder_node() const override {
    return holder_.load(std::memory_order_relaxed);
  }
  bool recover_after_crash(int dead_node) override;

 private:
  /// Host-side whole-queue reset: zero tail and links, write kRestart into
  /// every live node's grant flag. Safe from the holder (release path) and
  /// from the lease sweep (the holder is dead) — both serialize the queue.
  void host_reset_queue();

  gptr<std::uint64_t> tail_;                    // 0 = free, else node id + 1
  std::vector<gptr<std::uint64_t>> flag_;       // grant flag, homed per node
  std::vector<gptr<std::uint64_t>> next_;       // successor link, per node
  argomem::GlobalMemory* gmem_ = nullptr;
  argocore::MembershipService* membership_ = nullptr;  // null = feature off
  // Host mirror: node holding (or being granted) the lock. Atomic because
  // under the parallel engine acquire/release run on different host
  // workers whose fibers may share a lookahead window; the field is pure
  // host bookkeeping (lease sweep + diagnostics), never read by simulated
  // code, so relaxed ordering cannot perturb virtual time.
  std::atomic<int> holder_{-1};
};

/// Statistics for the delegation locks.
struct DelegationStats {
  std::uint64_t batches = 0;      ///< global lock acquisitions
  std::uint64_t executed = 0;     ///< critical sections executed
  std::uint64_t delegated = 0;    ///< sections executed on behalf of others
};

/// Hierarchical queue delegation lock (§4.2).
class HqdLock {
 public:
  /// `batch_limit`: max critical sections one node executes per global
  /// lock acquisition before handing over (the paper's "limit is reached").
  HqdLock(Cluster& cluster, std::size_t queue_capacity = 128,
          std::size_t batch_limit = 256);

  /// Run `cs` under global mutual exclusion. If `wait` is false, the call
  /// may return before `cs` executes (detached delegation). `cs` receives
  /// the *executing* thread — always one on the caller's node, sharing its
  /// page cache, which is what makes intra-node delegation fence-free.
  void execute(Thread& t, const std::function<void(Thread&)>& cs, bool wait);

  /// Like execute(wait = true), but bounded: false means `cs` did NOT run
  /// (and never will). A thread that becomes the helper keeps the queue
  /// closed until the global lock is actually held, so a timed-out
  /// acquisition can never strand other threads' delegated entries; a
  /// delegating thread whose wait times out withdraws its entry, unless
  /// the helper already claimed it — then the call rides out the (short)
  /// remaining execution and reports success.
  bool try_execute(Thread& t, const std::function<void(Thread&)>& cs,
                   argosim::Time timeout);

  const DelegationStats& stats(int node) const { return stats_[node]; }
  DelegationStats total_stats() const;

 private:
  struct Entry {
    std::function<void(Thread&)> cs;
    argosim::SimEvent* done;
    int from_core;
    /// Where the helper deposits an exception thrown by `cs`, so a waiting
    /// delegator can rethrow it on its own stack (null for detached
    /// entries, whose errors have no one to report to).
    std::exception_ptr* err;
  };
  struct NodeQ {
    bool helper_active = false;
    bool open = false;
    std::deque<Entry> queue;
    CachelineSet word;
    CachelineSet qline;
    explicit NodeQ(const argonet::NodeTopology* t) : word(t), qline(t) {}
  };

  /// Helper-side batch drain: execute delegated entries until the queue
  /// empties or the batch limit closes it. `already` counts sections the
  /// helper ran before draining (its own).
  void run_batch(Thread& t, NodeQ& nq, DelegationStats& st,
                 std::size_t already);

  Cluster& cluster_;
  GlobalMcsLock global_;
  std::size_t queue_capacity_;
  std::size_t batch_limit_;
  std::deque<NodeQ> nodes_;
  std::vector<DelegationStats> stats_;
};

/// Cohort lock over the DSM with conventional acquire/release semantics:
/// node-local handoff keeps the *lock* nearby, but every critical section
/// still self-invalidates on acquire and self-downgrades on release —
/// which is exactly why Figure 12 shows it collapsing against HQDL.
class DsmCohortLock {
 public:
  DsmCohortLock(Cluster& cluster, int cohort_limit = 64);

  void lock(Thread& t);
  void unlock(Thread& t);
  void execute(Thread& t, const std::function<void(Thread&)>& cs);

  std::uint64_t global_acquisitions() const { return global_acqs_; }

 private:
  struct NodeState {
    bool held = false;
    bool owns_global = false;
    int batch = 0;
    argosim::WaitQueue q;
    CachelineSet word;
    explicit NodeState(const argonet::NodeTopology* t) : word(t) {}
  };

  Cluster& cluster_;
  GlobalMcsLock global_;
  int cohort_limit_;
  std::deque<NodeState> nodes_;
  std::uint64_t global_acqs_ = 0;
};

/// Plain distributed mutex: global MCS lock, SI on acquire, SD on release.
class DsmMutex {
 public:
  explicit DsmMutex(Cluster& cluster);

  void lock(Thread& t);
  void unlock(Thread& t);

  /// Bounded lock: SI fence runs only on success. False = not acquired.
  bool try_lock_for(Thread& t, argosim::Time timeout);

 private:
  Cluster& cluster_;
  GlobalMcsLock global_;
  std::vector<std::unique_ptr<argosim::SimMutex>> node_serial_;
};

/// One-word signal/wait flag ("synchronization via spin loops and flags",
/// §3.1): set() publishes all prior writes (SD) then raises the flag;
/// wait() spins on the flag then SI-fences before reading shared data.
class DsmFlag {
 public:
  explicit DsmFlag(Cluster& cluster);

  void set(Thread& t, std::uint64_t value = 1);
  std::uint64_t wait(Thread& t, std::uint64_t at_least = 1);
  std::uint64_t peek(Thread& t);  // no fence; raw RDMA read

 private:
  gptr<std::uint64_t> word_;
};

}  // namespace argosync
