#include "sync/local_locks.hpp"

#include <cassert>

namespace argosync {

// ---------------------------------------------------------------------------
// MutexLock
// ---------------------------------------------------------------------------

void MutexLock::lock(int core) {
  word_.rmw(core);
  while (held_) {
    q_.wait();
    // Woken by unlock(): pay the futex wakeup and retry the CAS.
    argosim::delay(topo_->futex_wake);
    word_.rmw(core);
  }
  held_ = true;
}

void MutexLock::unlock(int core) {
  word_.rmw(core);
  held_ = false;
  q_.notify_one();
}

void MutexLock::execute(int core, const std::function<void(int)>& cs, bool) {
  lock(core);
  cs(core);
  unlock(core);
}

// ---------------------------------------------------------------------------
// TicketLock
// ---------------------------------------------------------------------------

void TicketLock::lock(int core) {
  word_.rmw(core);  // fetch-add on the ticket line
  const std::uint64_t my = next_ticket_++;
  while (now_serving_ != my) {
    q_.wait();
    // Spinners re-read the now-serving line after every release.
    word_.touch(core);
  }
}

void TicketLock::unlock(int core) {
  word_.touch(core);
  ++now_serving_;
  q_.notify_all();  // everyone re-checks; exactly one proceeds
}

void TicketLock::execute(int core, const std::function<void(int)>& cs, bool) {
  lock(core);
  cs(core);
  unlock(core);
}

// ---------------------------------------------------------------------------
// McsLock
// ---------------------------------------------------------------------------

void McsLock::lock(int core) {
  auto* me = new QNode{core};
  tail_.rmw(core);  // atomic swap of the tail pointer
  QNode* pred = tail_node_;
  tail_node_ = me;
  if (pred != nullptr) {
    // Link into the predecessor's node (one remote line write), then spin
    // on our own line until the predecessor hands over. The predecessor
    // frees its node right after the hand-over, so its core id must be
    // read before waiting.
    const int pred_core = pred->core;
    argosim::delay(topo_->cacheline_transfer(core, pred_core));
    pred->next = me;
    me->ev.wait();
    argosim::delay(topo_->cacheline_transfer(pred_core, core));
  }
  owner_ = me;
}

void McsLock::unlock(int core) {
  QNode* me = owner_;
  assert(me != nullptr);
  owner_ = nullptr;
  if (me->next == nullptr) {
    tail_.rmw(core);  // CAS tail back to null
    if (tail_node_ == me) {
      tail_node_ = nullptr;
      delete me;
      return;
    }
    // A successor swapped in but has not linked yet: poll in *time* (its
    // link write completes in the future; a zero-cost yield would spin at
    // the current virtual instant forever).
    while (me->next == nullptr) argosim::delay(topo_->cacheline_same_numa);
  }
  argosim::delay(topo_->cacheline_transfer(core, me->next->core));
  me->next->ev.set();
  delete me;
}

void McsLock::execute(int core, const std::function<void(int)>& cs, bool) {
  lock(core);
  cs(core);
  unlock(core);
}

// ---------------------------------------------------------------------------
// CohortLock
// ---------------------------------------------------------------------------

CohortLock::CohortLock(const NodeTopology* topo, int cohort_limit)
    : topo_(topo), cohort_limit_(cohort_limit), global_(topo) {
  for (int g = 0; g < topo->numa_groups; ++g) groups_.emplace_back(topo);
}

void CohortLock::lock(int core) {
  Group& g = groups_[static_cast<std::size_t>(topo_->numa_group_of(core))];
  g.word.rmw(core);
  if (g.held) {
    g.q.wait();  // ownership handed to us by unlock()
    g.word.touch(core);
  } else {
    g.held = true;
  }
  if (!g.owns_global) {
    global_.lock(core);
    g.owns_global = true;
    g.batch = 0;
  }
}

void CohortLock::unlock(int core) {
  Group& g = groups_[static_cast<std::size_t>(topo_->numa_group_of(core))];
  g.word.touch(core);
  ++g.batch;
  const bool pass_local = g.q.waiters() > 0 && g.batch < cohort_limit_;
  if (!pass_local && g.owns_global) {
    global_.unlock(core);
    g.owns_global = false;
  }
  if (g.q.waiters() > 0)
    g.q.notify_one();  // local handoff (global re-acquired by them if needed)
  else
    g.held = false;
}

void CohortLock::execute(int core, const std::function<void(int)>& cs, bool) {
  lock(core);
  cs(core);
  unlock(core);
}

}  // namespace argosync
