// NUMA cost accounting for node-local lock algorithms (paper §2.2, §5.3).
//
// On the paper's machines (2× Opteron 6220 = 4 NUMA groups of 4 cores) lock
// performance is dominated by where the lock word and the protected data
// last lived. This helper tracks the "owning" core of a cacheline (or of a
// whole working set) and charges the transfer cost when another core
// touches it.
#pragma once

#include "net/netconfig.hpp"
#include "sim/engine.hpp"

namespace argosync {

using argonet::NodeTopology;
using argosim::Time;

/// One logical cacheline (a lock word, a queue slot) or a small working set
/// of `lines` cachelines that moves between cores as a unit (e.g. the hot
/// part of a data structure protected by a lock).
class CachelineSet {
 public:
  explicit CachelineSet(const NodeTopology* topo, int lines = 1)
      : topo_(topo), lines_(lines) {}

  /// Charge the cost of core `core` touching the set; ownership moves.
  void touch(int core) {
    Time per_line = last_core_ < 0
                        ? topo_->l1_hit
                        : topo_->cacheline_transfer(last_core_, core);
    argosim::delay(per_line * static_cast<Time>(lines_));
    last_core_ = core;
  }

  /// Charge core `core` touching `count` cachelines of the set (e.g. the
  /// nodes a heap operation visited); ownership moves.
  void touch_n(int core, int count) {
    Time per_line = last_core_ < 0
                        ? topo_->l1_hit
                        : topo_->cacheline_transfer(last_core_, core);
    argosim::delay(per_line * static_cast<Time>(count));
    last_core_ = core;
  }

  /// Charge an uncontended atomic read-modify-write on the set's first
  /// line, including fetching it.
  void rmw(int core) {
    touch(core);
    argosim::delay(topo_->atomic_rmw);
  }

  int last_core() const { return last_core_; }
  void reset() { last_core_ = -1; }

 private:
  const NodeTopology* topo_;
  int lines_;
  int last_core_ = -1;
};

}  // namespace argosync
