// Queue delegation locking (Klaftenegger/Sagonas/Winblad), node-local.
//
// Instead of moving the lock (and the protected data) to each contender,
// contenders ship their critical sections to whichever thread currently
// holds the lock; that helper executes them in a batch on one core, so the
// protected data stays hot in that core's caches. Detached delegation
// (wait=false) lets delegators continue immediately — the paper's insert
// operations exploit this.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>

#include "sync/local_locks.hpp"

namespace argosync {

class QdLock : public CriticalSectionExecutor {
 public:
  /// `queue_capacity`: max delegated sections buffered at once;
  /// `batch_limit`: max sections a helper executes before closing the
  /// queue and releasing the lock (bounds helper latency).
  explicit QdLock(const NodeTopology* topo, std::size_t queue_capacity = 128,
                  std::size_t batch_limit = 1024)
      : topo_(topo),
        word_(topo),
        queue_line_(topo),
        queue_capacity_(queue_capacity),
        batch_limit_(batch_limit) {}

  void execute(int core, const std::function<void(int)>& cs, bool wait) override;
  const char* name() const override { return "qd"; }

  /// Sections executed by helpers on behalf of other threads (stats).
  std::uint64_t delegated() const { return delegated_; }
  std::uint64_t batches() const { return batches_; }

 private:
  struct Entry {
    std::function<void(int)> cs;  // owned: detached delegators return at once
    argosim::SimEvent* done;   // null for fully detached entries
    int from_core;
    std::exception_ptr* err;   // helper deposits cs's exception here (waiters)
  };

  const NodeTopology* topo_;
  CachelineSet word_;        // lock word
  CachelineSet queue_line_;  // delegation queue cachelines
  std::size_t queue_capacity_;
  std::size_t batch_limit_;
  bool helper_active_ = false;
  bool queue_open_ = false;
  std::deque<Entry> queue_;
  std::uint64_t delegated_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace argosync
