#include "sync/dsm_locks.hpp"

#include <algorithm>
#include <cassert>

namespace argosync {

// ---------------------------------------------------------------------------
// GlobalMcsLock
// ---------------------------------------------------------------------------

GlobalMcsLock::GlobalMcsLock(Cluster& cluster) {
  auto& g = cluster.gmem();
  gmem_ = &g;
  tail_ = g.alloc_on_node<std::uint64_t>(0, 1);
  *g.home_ptr(tail_) = 0;
  flag_.reserve(static_cast<std::size_t>(cluster.nodes()));
  next_.reserve(static_cast<std::size_t>(cluster.nodes()));
  for (int n = 0; n < cluster.nodes(); ++n) {
    flag_.push_back(g.alloc_on_node<std::uint64_t>(n, 1));
    next_.push_back(g.alloc_on_node<std::uint64_t>(n, 1));
    *g.home_ptr(flag_.back()) = 0;
    *g.home_ptr(next_.back()) = 0;
  }
  if (cluster.config().membership.enabled) {
    membership_ = &cluster.membership();
    membership_->register_lock(this);
  }
}

GlobalMcsLock::~GlobalMcsLock() {
  if (membership_ != nullptr) membership_->deregister_lock(this);
}

void GlobalMcsLock::host_reset_queue() {
  *gmem_->home_ptr(tail_) = 0;
  for (std::size_t n = 0; n < next_.size(); ++n) {
    *gmem_->home_ptr(next_[n]) = 0;
    // Live nodes' flags become restart markers (any spinning waiter reads
    // kRestart and re-contends from scratch); dead nodes' flags just clear.
    *gmem_->home_ptr(flag_[n]) =
        membership_ != nullptr && membership_->is_live(static_cast<int>(n))
            ? kRestart
            : 0;
  }
  if (membership_ != nullptr) membership_->bump_lock_epoch();
}

bool GlobalMcsLock::recover_after_crash(int dead_node) {
  if (holder_.load(std::memory_order_relaxed) != dead_node) return false;
  host_reset_queue();
  holder_.store(-1, std::memory_order_relaxed);
  return true;
}

void GlobalMcsLock::acquire(Thread& t) {
  const auto me = static_cast<std::uint64_t>(t.node());
  for (;;) {
    // Reset our queue slot (local memory), then swap ourselves in as tail.
    t.atomic_store(flag_[me], 0);
    t.atomic_store(next_[me], 0);
    std::uint64_t prev;
    try {
      prev = t.atomic_exchange(tail_, me + 1);
    } catch (const argonet::NodeFailedError& e) {
      // The tail's home crashed: wait for the home redirect, then retry.
      if (membership_ == nullptr) throw;
      membership_->await_recovery(e.dst());
      continue;
    }
    if (prev == 0) {
      holder_.store(static_cast<int>(me), std::memory_order_relaxed);
      return;
    }
    // Link into the predecessor's slot (one remote write), then spin on
    // our *own* node's flag — the predecessor will write it remotely.
    try {
      t.atomic_store(next_[prev - 1], me + 1);
    } catch (const argonet::NodeFailedError& e) {
      // The predecessor's node is down. Its death will force a queue reset
      // (lease sweep if it held the lock, release-side detection if it was
      // queued); wait the recovery out and re-contend.
      if (membership_ == nullptr) throw;
      membership_->await_recovery(e.dst());
      continue;
    }
    for (;;) {
      const std::uint64_t v = t.atomic_load(flag_[me]);
      if (v == kGranted) {
        holder_.store(static_cast<int>(me), std::memory_order_relaxed);
        return;
      }
      if (v == kRestart) break;  // queue force-reset after a crash: retry
      t.compute(kPoll);
    }
  }
}

bool GlobalMcsLock::try_acquire_for(Thread& t, argosim::Time timeout) {
  const auto me = static_cast<std::uint64_t>(t.node());
  const argosim::Time deadline = t.now() + timeout;
  // Reset our slot before we can become visible as tail: once the CAS
  // succeeds a contender may immediately link into next_[me].
  t.atomic_store(flag_[me], 0);
  t.atomic_store(next_[me], 0);
  argosim::Time poll = kPoll;
  for (;;) {
    std::uint64_t cur;
    try {
      cur = t.atomic_cas(tail_, 0, me + 1);
    } catch (const argonet::NodeFailedError&) {
      // Tail's home is down. Giving up is always legal on the timed path.
      if (membership_ == nullptr) throw;
      return false;
    }
    if (cur == 0) {
      holder_.store(static_cast<int>(me), std::memory_order_relaxed);
      return true;
    }
    // A declared-dead tail cannot drain until the lease sweep resets the
    // queue; fail fast instead of burning the remaining timeout.
    if (membership_ != nullptr &&
        !membership_->is_live(static_cast<int>(cur - 1)))
      return false;
    if (t.now() >= deadline) return false;
    t.compute(poll);
    poll = std::min<argosim::Time>(poll * 2, kPoll * 64);
  }
}

void GlobalMcsLock::release(Thread& t) {
  const auto me = static_cast<std::uint64_t>(t.node());
  if (t.atomic_load(next_[me]) == 0) {
    // Appear to have no successor: try to swing the tail back to free.
    if (t.atomic_cas(tail_, me + 1, 0) == me + 1) {
      holder_.store(-1, std::memory_order_relaxed);
      return;
    }
    // Someone swapped in concurrently; wait for the link to appear.
    int stalled = 0;
    while (t.atomic_load(next_[me]) == 0) {
      // A contender that swapped into the tail and then crashed before
      // linking would strand this wait forever. Once a death has been
      // declared, give the link well past the worst in-flight store time,
      // then reset the queue — we still hold the lock, so this is the one
      // place (besides the lease sweep, whose holder is dead) that may.
      if (membership_ != nullptr && membership_->any_dead() &&
          ++stalled >= kStuckPolls) {
        host_reset_queue();
        holder_.store(-1, std::memory_order_relaxed);
        return;
      }
      t.compute(kPoll);
    }
  }
  const std::uint64_t succ = t.atomic_load(next_[me]) - 1;
  if (membership_ != nullptr &&
      !membership_->is_live(static_cast<int>(succ))) {
    // Handing the lock to a declared-dead node would only park it until
    // the lease expires; reset the queue now instead. Live waiters queued
    // behind the dead successor see kRestart and re-contend.
    host_reset_queue();
    holder_.store(-1, std::memory_order_relaxed);
    return;
  }
  t.atomic_store(flag_[succ], kGranted);  // grant: remote write to their node
  holder_.store(static_cast<int>(succ), std::memory_order_relaxed);
  // All DSM locks (HQDL, cohort, mutex) funnel global handovers through
  // here; the lock's identity is its tail word's global address.
  t.cluster().tracer().emit(t.node(), argoobs::Ev::LockHandover, tail_.raw(),
                            argoobs::kUnknownState, succ);
}

// ---------------------------------------------------------------------------
// HqdLock
// ---------------------------------------------------------------------------

HqdLock::HqdLock(Cluster& cluster, std::size_t queue_capacity,
                 std::size_t batch_limit)
    : cluster_(cluster),
      global_(cluster),
      queue_capacity_(queue_capacity),
      batch_limit_(batch_limit),
      stats_(static_cast<std::size_t>(cluster.nodes())) {
  for (int n = 0; n < cluster.nodes(); ++n)
    nodes_.emplace_back(&cluster.config().topo);
}

void HqdLock::execute(Thread& t, const std::function<void(Thread&)>& cs,
                      bool wait) {
  NodeQ& nq = nodes_[static_cast<std::size_t>(t.node())];
  DelegationStats& st = stats_[static_cast<std::size_t>(t.node())];
  for (;;) {
    nq.word.rmw(t.core());  // TATAS on the node-local lock word
    if (!nq.helper_active) {
      // Become this node's helper: take the global lock, self-invalidate
      // once to see earlier critical sections from other nodes, run a
      // whole batch locally, self-downgrade once, hand the lock on.
      nq.helper_active = true;
      nq.open = true;
      global_.acquire(t);
      t.acquire();  // SI fence — once per batch (§4.2)
      ++st.batches;
      // The helper's own section may throw (e.g. a crash aborts one of its
      // remote ops). The batch must still drain and the locks must still be
      // released — other threads' entries are queued behind us — so the
      // error is parked and rethrown once the lock state is clean.
      std::exception_ptr own_err;
      try {
        cs(t);
      } catch (const argosim::SimStopped&) {
        throw;  // this fiber is being killed: unwind, do not mask it
      } catch (...) {
        own_err = std::current_exception();
      }
      ++st.executed;
      run_batch(t, nq, st, 1);
      t.release();  // SD fence — once per batch
      global_.release(t);
      nq.helper_active = false;
      nq.word.touch(t.core());
      if (own_err) std::rethrow_exception(own_err);
      return;
    }
    if (nq.open && nq.queue.size() < queue_capacity_) {
      nq.qline.touch(t.core());
      // The helper may have closed the queue during the transfer delay;
      // re-validate before enqueueing or the entry would never run.
      if (!nq.open || nq.queue.size() >= queue_capacity_) continue;
      if (wait) {
        argosim::SimEvent done;
        std::exception_ptr err;
        nq.queue.push_back(Entry{cs, &done, t.core(), &err});
        done.wait();
        if (err) std::rethrow_exception(err);
      } else {
        nq.queue.push_back(Entry{cs, nullptr, t.core(), nullptr});
      }
      return;
    }
    t.compute(200);  // queue closed or full: back off, retry
  }
}

void HqdLock::run_batch(Thread& t, NodeQ& nq, DelegationStats& st,
                        std::size_t already) {
  std::size_t executed = already;
  for (;;) {
    if (executed >= batch_limit_) nq.open = false;
    if (nq.queue.empty()) {
      nq.open = false;
      break;
    }
    Entry e = std::move(nq.queue.front());
    nq.queue.pop_front();
    nq.qline.touch(t.core());
    try {
      e.cs(t);  // executed by the helper thread, same node = same cache
    } catch (const argosim::SimStopped&) {
      // The helper's node crash-stopped mid-batch. Do NOT signal the entry
      // as done (its section did not run to completion); the delegators
      // parked on this node die with it and unwind out of their waits.
      throw;
    } catch (...) {
      if (e.err != nullptr) *e.err = std::current_exception();
      // Detached entries (err == nullptr) have no one to report to.
    }
    if (e.done != nullptr) e.done->set();
    ++st.executed;
    ++st.delegated;
    ++executed;
  }
}

bool HqdLock::try_execute(Thread& t, const std::function<void(Thread&)>& cs,
                          argosim::Time timeout) {
  NodeQ& nq = nodes_[static_cast<std::size_t>(t.node())];
  DelegationStats& st = stats_[static_cast<std::size_t>(t.node())];
  const argosim::Time deadline = t.now() + timeout;
  for (;;) {
    nq.word.rmw(t.core());
    if (!nq.helper_active) {
      nq.helper_active = true;
      // The queue stays closed until the global lock is actually held:
      // if the timed acquisition fails, no delegated entry is stranded.
      const argosim::Time left =
          deadline > t.now() ? deadline - t.now() : 0;
      if (!global_.try_acquire_for(t, left)) {
        nq.helper_active = false;
        nq.word.touch(t.core());
        return false;
      }
      nq.open = true;
      t.acquire();  // SI fence — once per batch (§4.2)
      ++st.batches;
      std::exception_ptr own_err;
      try {
        cs(t);
      } catch (const argosim::SimStopped&) {
        throw;
      } catch (...) {
        own_err = std::current_exception();
      }
      ++st.executed;
      run_batch(t, nq, st, 1);
      t.release();  // SD fence — once per batch
      global_.release(t);
      nq.helper_active = false;
      nq.word.touch(t.core());
      if (own_err) std::rethrow_exception(own_err);
      return true;
    }
    if (nq.open && nq.queue.size() < queue_capacity_) {
      nq.qline.touch(t.core());
      if (!nq.open || nq.queue.size() >= queue_capacity_) continue;
      argosim::SimEvent done;
      std::exception_ptr err;
      nq.queue.push_back(Entry{cs, &done, t.core(), &err});
      const argosim::Time left = deadline > t.now() ? deadline - t.now() : 0;
      if (done.wait_for(left)) {
        if (err) std::rethrow_exception(err);
        return true;
      }
      // Timed out. Withdraw the entry if the helper has not claimed it.
      for (auto it = nq.queue.begin(); it != nq.queue.end(); ++it) {
        if (it->done == &done) {
          nq.queue.erase(it);
          return false;
        }
      }
      // Already dequeued: it is executing (or about to). The event lives
      // on this stack, so ride out the completion — and report success.
      done.wait();
      if (err) std::rethrow_exception(err);
      return true;
    }
    if (t.now() >= deadline) return false;
    t.compute(200);  // queue closed or full: back off, retry
  }
}

DelegationStats HqdLock::total_stats() const {
  DelegationStats total;
  for (const auto& s : stats_) {
    total.batches += s.batches;
    total.executed += s.executed;
    total.delegated += s.delegated;
  }
  return total;
}

// ---------------------------------------------------------------------------
// DsmCohortLock
// ---------------------------------------------------------------------------

DsmCohortLock::DsmCohortLock(Cluster& cluster, int cohort_limit)
    : cluster_(cluster), global_(cluster), cohort_limit_(cohort_limit) {
  for (int n = 0; n < cluster.nodes(); ++n)
    nodes_.emplace_back(&cluster.config().topo);
}

void DsmCohortLock::lock(Thread& t) {
  NodeState& ns = nodes_[static_cast<std::size_t>(t.node())];
  ns.word.rmw(t.core());
  if (ns.held) {
    ns.q.wait();  // local handoff: ownership passed to us
    ns.word.touch(t.core());
  } else {
    ns.held = true;
  }
  if (!ns.owns_global) {
    global_.acquire(t);
    ns.owns_global = true;
    ns.batch = 0;
    ++global_acqs_;
  }
  // Conventional lock semantics on Argo: SI fence at every acquire.
  t.acquire();
}

void DsmCohortLock::unlock(Thread& t) {
  // Conventional lock semantics on Argo: SD fence at every release.
  t.release();
  NodeState& ns = nodes_[static_cast<std::size_t>(t.node())];
  ns.word.touch(t.core());
  ++ns.batch;
  const bool pass_local = ns.q.waiters() > 0 && ns.batch < cohort_limit_;
  if (!pass_local && ns.owns_global) {
    global_.release(t);
    ns.owns_global = false;
  }
  if (ns.q.waiters() > 0)
    ns.q.notify_one();
  else
    ns.held = false;
}

void DsmCohortLock::execute(Thread& t,
                            const std::function<void(Thread&)>& cs) {
  lock(t);
  cs(t);
  unlock(t);
}

// ---------------------------------------------------------------------------
// DsmMutex
// ---------------------------------------------------------------------------

DsmMutex::DsmMutex(Cluster& cluster) : cluster_(cluster), global_(cluster) {
  for (int n = 0; n < cluster.nodes(); ++n)
    node_serial_.push_back(std::make_unique<argosim::SimMutex>());
}

void DsmMutex::lock(Thread& t) {
  node_serial_[static_cast<std::size_t>(t.node())]->lock();
  global_.acquire(t);
  t.acquire();
}

bool DsmMutex::try_lock_for(Thread& t, argosim::Time timeout) {
  const argosim::Time deadline = t.now() + timeout;
  auto& serial = *node_serial_[static_cast<std::size_t>(t.node())];
  if (!serial.try_lock_for(timeout)) return false;
  const argosim::Time left = deadline > t.now() ? deadline - t.now() : 0;
  if (!global_.try_acquire_for(t, left)) {
    serial.unlock();
    return false;
  }
  t.acquire();
  return true;
}

void DsmMutex::unlock(Thread& t) {
  t.release();
  global_.release(t);
  node_serial_[static_cast<std::size_t>(t.node())]->unlock();
}

// ---------------------------------------------------------------------------
// DsmFlag
// ---------------------------------------------------------------------------

DsmFlag::DsmFlag(Cluster& cluster) {
  word_ = cluster.gmem().alloc_on_node<std::uint64_t>(0, 1);
  *cluster.gmem().home_ptr(word_) = 0;
}

void DsmFlag::set(Thread& t, std::uint64_t value) {
  t.release();  // make everything written before the signal visible
  t.atomic_store(word_, value);
}

std::uint64_t DsmFlag::wait(Thread& t, std::uint64_t at_least) {
  std::uint64_t v;
  while ((v = t.atomic_load(word_)) < at_least) t.compute(500);
  t.acquire();  // see everything the signaller published
  return v;
}

std::uint64_t DsmFlag::peek(Thread& t) { return t.atomic_load(word_); }

}  // namespace argosync
