#include "sync/qd_lock.hpp"

#include "sim/engine.hpp"

namespace argosync {

void QdLock::execute(int core, const std::function<void(int)>& cs, bool wait) {
  // The TATAS word, queue and helper flag are one host-shared object; a
  // sharded run would race fibers from different shards over them.
  if (argosim::Engine* e = argosim::Engine::current())
    e->require_serial("QD-lock delegation (host-shared queue)");
  for (;;) {
    word_.rmw(core);  // TATAS acquire attempt
    if (!helper_active_) {
      // We hold the lock: open the delegation queue, run our own section,
      // then help everyone who delegates while we are at it.
      helper_active_ = true;
      queue_open_ = true;
      ++batches_;
      // Park an exception from our own section until the batch has drained
      // and the lock is released; delegated entries behind us must run.
      std::exception_ptr own_err;
      try {
        cs(core);
      } catch (const argosim::SimStopped&) {
        throw;  // fiber being killed: unwind, never mask
      } catch (...) {
        own_err = std::current_exception();
      }
      std::size_t executed = 1;
      for (;;) {
        if (executed >= batch_limit_) queue_open_ = false;
        if (queue_.empty()) {
          queue_open_ = false;
          break;
        }
        Entry e = std::move(queue_.front());
        queue_.pop_front();
        queue_line_.touch(core);  // pull the delegated entry's cacheline
        try {
          e.cs(core);
        } catch (const argosim::SimStopped&) {
          throw;  // do not signal done: the section did not complete
        } catch (...) {
          if (e.err != nullptr) *e.err = std::current_exception();
        }
        if (e.done != nullptr) e.done->set();
        ++delegated_;
        ++executed;
      }
      helper_active_ = false;
      word_.touch(core);
      if (own_err) std::rethrow_exception(own_err);
      return;
    }
    if (queue_open_ && queue_.size() < queue_capacity_) {
      // Delegate: publish the section into the queue (one cacheline write
      // toward the helper) and either wait for completion or detach.
      queue_line_.touch(core);
      // The helper may have closed the queue and left during the transfer
      // delay; an entry enqueued now would never execute. Re-validate.
      if (!queue_open_ || queue_.size() >= queue_capacity_) continue;
      if (wait) {
        argosim::SimEvent done;
        std::exception_ptr err;
        queue_.push_back(Entry{cs, &done, core, &err});
        done.wait();
        if (err) std::rethrow_exception(err);
      } else {
        queue_.push_back(Entry{cs, nullptr, core, nullptr});
      }
      return;
    }
    argosim::delay(200);  // queue closed or full: back off and retry
  }
}

}  // namespace argosync
