// Node-local lock algorithms (single simulated machine, Figure 11).
//
// All locks implement CriticalSectionExecutor: `execute(core, cs, wait)`
// runs `cs` under mutual exclusion. For classical locks this is
// lock-run-unlock; queue delegation (qd_lock.hpp) may instead ship the
// closure to a helper thread, in which case `wait=false` lets the caller
// detach (the paper's insert operations).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/netconfig.hpp"
#include "sim/sync.hpp"
#include "sync/numa.hpp"

namespace argosync {

/// Uniform interface for the priority-queue microbenchmark (§5.3).
class CriticalSectionExecutor {
 public:
  virtual ~CriticalSectionExecutor() = default;

  /// Run `cs` under the lock's mutual exclusion. `core` is the calling
  /// thread's core (for NUMA cost accounting). If `wait` is false the
  /// implementation may return before `cs` has executed (detached
  /// delegation); mutual exclusion and eventual execution are still
  /// guaranteed.
  virtual void execute(int core, const std::function<void(int)>& cs,
                       bool wait) = 0;

  /// Name for benchmark output.
  virtual const char* name() const = 0;
};

/// Pthreads-mutex stand-in: one lock cacheline, sleeping waiters woken via
/// futex (cost: NodeTopology::futex_wake). Degrades under contention from
/// wakeup latency and from the protected data migrating between cores.
class MutexLock : public CriticalSectionExecutor {
 public:
  explicit MutexLock(const NodeTopology* topo)
      : topo_(topo), word_(topo) {}

  void execute(int core, const std::function<void(int)>& cs, bool wait) override;
  const char* name() const override { return "pthreads-mutex"; }

  void lock(int core);
  void unlock(int core);

 private:
  const NodeTopology* topo_;
  CachelineSet word_;
  bool held_ = false;
  argosim::WaitQueue q_;
};

/// Classic ticket lock: FIFO, spinning on a shared "now serving" line.
class TicketLock : public CriticalSectionExecutor {
 public:
  explicit TicketLock(const NodeTopology* topo)
      : topo_(topo), word_(topo) {}

  void execute(int core, const std::function<void(int)>& cs, bool wait) override;
  const char* name() const override { return "ticket"; }

  void lock(int core);
  void unlock(int core);

 private:
  const NodeTopology* topo_;
  CachelineSet word_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t now_serving_ = 0;
  argosim::WaitQueue q_;
};

/// MCS queue lock: each waiter spins on its own cacheline; handoff is one
/// remote line write. FIFO without a global spin hotspot.
class McsLock : public CriticalSectionExecutor {
 public:
  explicit McsLock(const NodeTopology* topo) : topo_(topo), tail_(topo) {}

  void execute(int core, const std::function<void(int)>& cs, bool wait) override;
  const char* name() const override { return "mcs"; }

  void lock(int core);
  void unlock(int core);

 private:
  struct QNode {
    int core;
    bool ready = false;
    argosim::SimEvent ev;
    QNode* next = nullptr;
  };
  const NodeTopology* topo_;
  CachelineSet tail_;
  QNode* tail_node_ = nullptr;
  QNode* owner_ = nullptr;
};

/// Cohort lock (Dice/Marathe/Shavit): a global ticket lock plus one local
/// lock per NUMA group; the group keeps the global lock across up to
/// `cohort_limit` local handoffs, so most handoffs stay NUMA-local.
class CohortLock : public CriticalSectionExecutor {
 public:
  explicit CohortLock(const NodeTopology* topo, int cohort_limit = 64);

  void execute(int core, const std::function<void(int)>& cs, bool wait) override;
  const char* name() const override { return "cohort"; }

  void lock(int core);
  void unlock(int core);

 private:
  struct Group {
    CachelineSet word;
    bool held = false;
    bool owns_global = false;
    int batch = 0;
    argosim::WaitQueue q;
    explicit Group(const NodeTopology* t) : word(t) {}
  };

  const NodeTopology* topo_;
  int cohort_limit_;
  TicketLock global_;
  std::deque<Group> groups_;
};

}  // namespace argosync
