// Host-side memoization support for pure workload kernels.
//
// The scaling benches run the same deterministic workload once per
// configuration (sequential baseline, each thread count, each node count,
// the MPI port...). The simulated data movement differs per configuration
// — that is what is being measured — but the *numerical* work is
// identical: the same trajectory, the same option prices, recomputed from
// scratch each run. Caching those pure-kernel results across runs is a
// host-side optimization only: a hit returns the exact double previously
// computed from bit-identical inputs, so checksums, page contents, diffs
// and hence every virtual time are unchanged. ARGO_SLOW_PATHS
// (sim/slowpath.hpp) disables all memoization for A/B comparison.
//
// Keys are always verified by exact byte comparison of the full inputs —
// the hash only narrows the search, it is never trusted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace argoapps {

/// FNV-1a folding eight bytes per step (an order of magnitude faster than
/// the byte loop on the multi-KiB keys the memos use); the tail is hashed
/// byte-wise. Collisions only cost an extra memcmp — every lookup verifies
/// the full key.
inline std::uint64_t hash_words(const void* p, std::size_t n,
                                std::uint64_t seed = 1469598103934665603ull) {
  const auto* b = static_cast<const unsigned char*>(p);
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = seed;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, b + i, 8);
    h = (h ^ w) * kPrime;
    h ^= h >> 29;  // extra diffusion: eight new bytes per multiply
  }
  for (; i < n; ++i) h = (h ^ b[i]) * kPrime;
  return h;
}

}  // namespace argoapps
