// All-pairs N-body with barrier-separated steps (paper §5.4, Fig. 13b).
//
// Double-buffered positions: step s reads pos[s%2] for every body and
// writes pos[(s+1)%2] and velocities for the thread's own slice. On Argo
// each slice's pages have a single writer and many readers (S,SW), so the
// producers keep their pages while consumers re-fetch once per step. The
// MPI port allgathers positions every step.
#pragma once

#include <cstddef>
#include <vector>

#include "baseline/mpi.hpp"
#include "core/cluster.hpp"
#include "sim/time.hpp"

namespace argoapps {

using argosim::Time;

struct NbodyParams {
  std::size_t bodies = 2048;
  int steps = 4;
  double dt = 1e-3;
  std::uint64_t seed = 7;
  Time ns_per_interaction = 10;  ///< ~20 flops + rsqrt per pair
};

struct NbodyResult {
  Time elapsed = 0;
  double checksum = 0;  ///< sum of |coordinates| after the last step
};

struct NbodyState {
  std::vector<double> x, y, z, vx, vy, vz, mass;
};

NbodyState nbody_make_input(const NbodyParams& p);

/// Sequential reference: runs the same step order; bit-identical results.
double nbody_reference(const NbodyParams& p);

NbodyResult nbody_run_argo(argo::Cluster& cl, const NbodyParams& p);
NbodyResult nbody_run_mpi(argompi::MpiEnv& env, const NbodyParams& p);

}  // namespace argoapps
