// NAS CG-style conjugate-gradient solver (paper §5.5, Fig. 13f).
//
// A symmetric positive-definite sparse matrix (diagonally dominant banded
// stencil with wrap-around offsets) is partitioned by rows; each CG
// iteration needs the whole direction vector p (neighbour slices through
// the band) and two scalar reductions — three barriers per iteration,
// making CG the synchronization-heavy benchmark of the suite.
//
// Backends: Argo, "OpenMP" (1-node cluster), UPC (fine-grained remote
// reads of off-slice p elements, PGAS partial arrays for reductions).
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster.hpp"
#include "sim/time.hpp"

namespace argoapps {

using argosim::Time;

struct CgParams {
  std::size_t n = 4096;     ///< unknowns
  int iterations = 12;      ///< CG iterations
  std::uint64_t seed = 11;
  Time ns_per_nnz = 3;      ///< SpMV multiply-accumulate
  Time ns_per_flop = 1;     ///< vector updates / dot products
};

/// The banded SPD test matrix: A[i][i] = kDiag, A[i][(i±o) mod n] = v(o)
/// for each offset o in kOffsets (symmetric by construction).
struct CgMatrix {
  static constexpr int kOffsets[4] = {1, 7, 61, 331};
  static constexpr double kDiag = 9.0;
  static double off_value(int k) { return -1.0 / (k + 2); }

  /// y[i] for rows [lo, hi), reading the full vector p.
  static void spmv_rows(const double* p, double* y, std::size_t n,
                        std::size_t lo, std::size_t hi);
  /// nnz per row (diagonal + both sides of each offset).
  static constexpr std::size_t nnz_per_row() { return 9; }
};

struct CgResult {
  Time elapsed = 0;
  double final_rho = 0;   ///< squared residual norm after the last iteration
  double x_checksum = 0;  ///< sum of the solution vector
};

/// Sequential reference (same algorithm, single partial per "thread").
CgResult cg_reference(const CgParams& p);

CgResult cg_run_argo(argo::Cluster& cl, const CgParams& p);
CgResult cg_run_upc(argo::Cluster& cl, const CgParams& p);

}  // namespace argoapps
