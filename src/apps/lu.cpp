#include "apps/lu.hpp"

#include <cassert>
#include <cmath>

#include "apps/span_util.hpp"
#include "sim/random.hpp"

namespace argoapps {

using argo::gptr;
using argo::Thread;

namespace {

/// Factor the diagonal block in place (unit-lower L, U on/above diagonal).
void factor_diag(double* d, std::size_t b) {
  for (std::size_t j = 0; j < b; ++j)
    for (std::size_t i = j + 1; i < b; ++i) {
      d[i * b + j] /= d[j * b + j];
      const double lij = d[i * b + j];
      for (std::size_t k = j + 1; k < b; ++k) d[i * b + k] -= lij * d[j * b + k];
    }
}

/// Column-perimeter block: A := A · U(diag)^{-1}.
void bdiv(double* a, const double* diag, std::size_t b) {
  for (std::size_t i = 0; i < b; ++i)
    for (std::size_t j = 0; j < b; ++j) {
      a[i * b + j] /= diag[j * b + j];
      const double aij = a[i * b + j];
      for (std::size_t k = j + 1; k < b; ++k)
        a[i * b + k] -= aij * diag[j * b + k];
    }
}

/// Row-perimeter block: A := L(diag)^{-1} · A.
void bmodd(double* a, const double* diag, std::size_t b) {
  for (std::size_t j = 0; j < b; ++j)
    for (std::size_t i = j + 1; i < b; ++i) {
      const double lij = diag[i * b + j];
      for (std::size_t c = 0; c < b; ++c) a[i * b + c] -= lij * a[j * b + c];
    }
}

/// Interior block: A -= L · U.
void bmod(double* a, const double* l, const double* u, std::size_t b) {
  for (std::size_t i = 0; i < b; ++i)
    for (std::size_t k = 0; k < b; ++k) {
      const double lik = l[i * b + k];
      for (std::size_t j = 0; j < b; ++j) a[i * b + j] -= lik * u[k * b + j];
    }
}

/// 2D scatter ownership: thread grid pr×pc with pr·pc == T.
struct Scatter {
  int pr, pc;
  explicit Scatter(int threads) {
    pr = 1;
    for (int d = static_cast<int>(std::sqrt(threads)); d >= 1; --d)
      if (threads % d == 0) {
        pr = d;
        break;
      }
    pc = threads / pr;
  }
  int owner(std::size_t bi, std::size_t bj) const {
    return static_cast<int>(bi % static_cast<std::size_t>(pr)) * pc +
           static_cast<int>(bj % static_cast<std::size_t>(pc));
  }
};

std::size_t block_off(std::size_t bi, std::size_t bj, std::size_t nb,
                      std::size_t b) {
  return (bi * nb + bj) * b * b;
}

/// Run the blocked factorization; `mine` decides which blocks this caller
/// owns, `sync` is called at the three phase boundaries per step, and
/// load/store access the matrix (shared by reference for the sequential
/// path, through the DSM for Argo).
template <typename Mine, typename Sync, typename LoadB, typename StoreB,
          typename Charge>
void lu_steps(std::size_t nb, std::size_t b, Mine mine, Sync sync,
              LoadB load_block, StoreB store_block, Charge charge) {
  std::vector<double> diag(b * b), work(b * b), lblk(b * b), ublk(b * b);
  const auto b3 = static_cast<Time>(b * b * b);
  for (std::size_t k = 0; k < nb; ++k) {
    if (mine(k, k)) {
      load_block(k, k, diag.data());
      factor_diag(diag.data(), b);
      charge(b3 / 3);
      store_block(k, k, diag.data());
    }
    sync();
    bool have_diag = false;
    for (std::size_t i = k + 1; i < nb; ++i) {
      if (mine(i, k)) {
        if (!have_diag) {
          load_block(k, k, diag.data());
          have_diag = true;
        }
        load_block(i, k, work.data());
        bdiv(work.data(), diag.data(), b);
        charge(b3 / 2);
        store_block(i, k, work.data());
      }
      if (mine(k, i)) {
        if (!have_diag) {
          load_block(k, k, diag.data());
          have_diag = true;
        }
        load_block(k, i, work.data());
        bmodd(work.data(), diag.data(), b);
        charge(b3 / 2);
        store_block(k, i, work.data());
      }
    }
    sync();
    for (std::size_t i = k + 1; i < nb; ++i) {
      bool have_l = false;
      for (std::size_t j = k + 1; j < nb; ++j) {
        if (!mine(i, j)) continue;
        if (!have_l) {
          load_block(i, k, lblk.data());
          have_l = true;
        }
        load_block(k, j, ublk.data());
        load_block(i, j, work.data());
        bmod(work.data(), lblk.data(), ublk.data(), b);
        charge(b3);
        store_block(i, j, work.data());
      }
    }
    sync();
  }
}

}  // namespace

std::size_t lu_index(const LuParams& p, std::size_t i, std::size_t j) {
  const std::size_t b = p.block, nb = p.n / p.block;
  return block_off(i / b, j / b, nb, b) + (i % b) * b + (j % b);
}

std::vector<double> lu_make_input(const LuParams& p) {
  assert(p.n % p.block == 0);
  argosim::Rng rng(p.seed);
  std::vector<double> a(p.n * p.n);
  // Fill in (i, j) order so the content is layout-independent.
  for (std::size_t i = 0; i < p.n; ++i)
    for (std::size_t j = 0; j < p.n; ++j) {
      double v = rng.next_double(-1, 1);
      if (i == j) v += static_cast<double>(p.n);  // diagonal dominance
      a[lu_index(p, i, j)] = v;
    }
  return a;
}

double lu_reference(const LuParams& p) {
  std::vector<double> a = lu_make_input(p);
  const std::size_t b = p.block, nb = p.n / b;
  lu_steps(
      nb, b, [](std::size_t, std::size_t) { return true; }, [] {},
      [&](std::size_t bi, std::size_t bj, double* out) {
        std::copy_n(a.data() + block_off(bi, bj, nb, b), b * b, out);
      },
      [&](std::size_t bi, std::size_t bj, const double* in) {
        std::copy_n(in, b * b, a.data() + block_off(bi, bj, nb, b));
      },
      [](Time) {});
  double sum = 0;
  for (double v : a) sum += v;
  return sum;
}

LuResult lu_run_argo(argo::Cluster& cl, const LuParams& p) {
  const std::vector<double> init = lu_make_input(p);
  const std::size_t b = p.block, nb = p.n / b;
  auto result = cl.alloc<double>(1);
  auto partial = cl.alloc<double>(static_cast<std::size_t>(cl.nthreads()));
  auto mat = cl.alloc<double>(p.n * p.n);
  std::copy(init.begin(), init.end(), cl.host_ptr(mat));
  cl.reset_classification();

  LuResult res;
  res.elapsed = cl.run([&](Thread& t) {
    const Scatter sc(t.nthreads());
    lu_steps(
        nb, b,
        [&](std::size_t bi, std::size_t bj) {
          return sc.owner(bi, bj) == t.gid();
        },
        [&] { t.barrier(); },
        [&](std::size_t bi, std::size_t bj, double* out) {
          t.load_bulk(mat + static_cast<std::ptrdiff_t>(block_off(bi, bj, nb, b)),
                      out, b * b);
        },
        [&](std::size_t bi, std::size_t bj, const double* in) {
          t.store_bulk(mat + static_cast<std::ptrdiff_t>(block_off(bi, bj, nb, b)),
                       in, b * b);
        },
        [&](Time c) { t.compute(c * p.ns_per_mac); });
    // Checksum of the blocks this thread owns, summed in place through
    // per-page spans (no block-sized scratch copy).
    double sum = 0;
    for (std::size_t bi = 0; bi < nb; ++bi)
      for (std::size_t bj = 0; bj < nb; ++bj) {
        if (sc.owner(bi, bj) != t.gid()) continue;
        sum += span_sum(
            t, mat + static_cast<std::ptrdiff_t>(block_off(bi, bj, nb, b)),
            b * b);
      }
    t.store(partial + t.gid(), sum);
    t.barrier();
    if (t.gid() == 0)
      t.store(result,
              span_sum(t, partial, static_cast<std::size_t>(t.nthreads())));
  });
  res.checksum = *cl.host_ptr(result);
  return res;
}

}  // namespace argoapps
