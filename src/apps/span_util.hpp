// Span-based access helpers shared by the workloads.
//
// The soft-TLB (core/tlb.hpp) makes a cached *hit* nearly free, but an
// elementwise reduction still pays one lookup per element and copies every
// value through Thread::load's return slot. Thread::load_span resolves one
// translation per page and exposes the page directly; these helpers wrap
// the resulting chunking loop. Protocol behavior is identical to a
// load_bulk of the same range (one read_ptr per page), so virtual times,
// traces and checksums are unchanged relative to a bulk-copy-then-reduce.
#pragma once

#include <cstddef>

#include "core/cluster.hpp"

namespace argoapps {

/// Sum `count` elements starting at `p` through per-page spans.
template <typename T>
T span_sum(argo::Thread& t, argo::gptr<T> p, std::size_t count) {
  T total{};
  while (count > 0) {
    const auto sp = t.load_span(p, count);
    for (const T& v : sp) total += v;
    p += static_cast<std::ptrdiff_t>(sp.size());
    count -= sp.size();
  }
  return total;
}

/// Copy `count` elements starting at `p` into `out` through per-page
/// spans — the span analogue of Thread::load_bulk, for ranges that must
/// land in a caller-owned buffer (e.g. to be reinterpreted as a struct).
template <typename T>
void span_copy(argo::Thread& t, argo::gptr<T> p, std::size_t count, T* out) {
  while (count > 0) {
    const auto sp = t.load_span(p, count);
    for (const T& v : sp) *out++ = v;
    p += static_cast<std::ptrdiff_t>(sp.size());
    count -= sp.size();
  }
}

/// Apply `fn(element)` to `count` elements starting at `p`.
template <typename T, typename Fn>
void span_for_each(argo::Thread& t, argo::gptr<T> p, std::size_t count,
                   Fn&& fn) {
  while (count > 0) {
    const auto sp = t.load_span(p, count);
    for (const T& v : sp) fn(v);
    p += static_cast<std::ptrdiff_t>(sp.size());
    count -= sp.size();
  }
}

}  // namespace argoapps
