#include "apps/cg.hpp"

#include <cassert>

#include "apps/span_util.hpp"
#include "baseline/pgas.hpp"

namespace argoapps {

using argo::gptr;
using argo::Thread;

constexpr int CgMatrix::kOffsets[4];

void CgMatrix::spmv_rows(const double* p, double* y, std::size_t n,
                         std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    double acc = kDiag * p[i];
    for (int k = 0; k < 4; ++k) {
      const auto o = static_cast<std::size_t>(kOffsets[k]);
      acc += off_value(k) * p[(i + o) % n];
      acc += off_value(k) * p[(i + n - o) % n];
    }
    y[i - lo] = acc;
  }
}

namespace {

/// Right-hand side: varied so b is not an eigenvector of the stencil
/// (an all-ones b makes CG converge exactly in one step and break down).
double cg_b(std::size_t i) { return 1.0 + 0.1 * static_cast<double>(i % 17); }

double cg_rho0(std::size_t n) {
  double s = 0;
  for (std::size_t i = 0; i < n; ++i) s += cg_b(i) * cg_b(i);
  return s;
}

Time spmv_cost(const CgParams& p, std::size_t rows) {
  return static_cast<Time>(rows * CgMatrix::nnz_per_row()) * p.ns_per_nnz;
}

Time vec_cost(const CgParams& p, std::size_t elems) {
  return static_cast<Time>(elems) * p.ns_per_flop;
}

}  // namespace

CgResult cg_reference(const CgParams& prm) {
  const std::size_t n = prm.n;
  std::vector<double> x(n, 0.0), r(n), p(n), q(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = r[i] = cg_b(i);
  double rho = cg_rho0(n);
  for (int it = 0; it < prm.iterations; ++it) {
    CgMatrix::spmv_rows(p.data(), q.data(), n, 0, n);
    double pq = 0;
    for (std::size_t i = 0; i < n; ++i) pq += p[i] * q[i];
    const double alpha = rho / pq;
    double rr = 0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * q[i];
      rr += r[i] * r[i];
    }
    const double beta = rr / rho;
    rho = rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  CgResult res;
  res.final_rho = rho;
  for (double v : x) res.x_checksum += v;
  return res;
}

CgResult cg_run_argo(argo::Cluster& cl, const CgParams& prm) {
  const std::size_t n = prm.n;
  auto result = cl.alloc<double>(2);
  const auto nt = static_cast<std::size_t>(cl.nthreads());
  auto part_pq = cl.alloc<double>(nt);
  auto part_rr = cl.alloc<double>(nt);
  auto part_x = cl.alloc<double>(nt);
  auto gp = cl.alloc<double>(n);  // direction vector, read by everyone
  auto gx = cl.alloc<double>(n);  // solution slices (private per owner)
  auto gr = cl.alloc<double>(n);  // residual slices (private per owner)
  for (std::size_t i = 0; i < n; ++i) {
    cl.host_ptr(gp)[i] = cg_b(i);
    cl.host_ptr(gx)[i] = 0.0;
    cl.host_ptr(gr)[i] = cg_b(i);
  }
  cl.reset_classification();

  CgResult res;
  res.elapsed = cl.run([&](Thread& t) {
    const auto T = static_cast<std::size_t>(t.nthreads());
    const auto g = static_cast<std::size_t>(t.gid());
    const std::size_t lo = n * g / T, hi = n * (g + 1) / T;
    const std::size_t cnt = hi - lo;
    std::vector<double> p(n), x(cnt), r(cnt), q(cnt);
    t.load_bulk(gx + static_cast<std::ptrdiff_t>(lo), x.data(), cnt);
    t.load_bulk(gr + static_cast<std::ptrdiff_t>(lo), r.data(), cnt);
    double rho = cg_rho0(n);
    for (int it = 0; it < prm.iterations; ++it) {
      t.load_bulk(gp, p.data(), n);  // whole direction vector
      CgMatrix::spmv_rows(p.data(), q.data(), n, lo, hi);
      t.compute(spmv_cost(prm, cnt));
      double pq = 0;
      for (std::size_t i = 0; i < cnt; ++i) pq += p[lo + i] * q[i];
      t.compute(vec_cost(prm, cnt));
      t.store(part_pq + t.gid(), pq);
      t.barrier();
      const double pq_tot = span_sum(t, part_pq, T);
      const double alpha = rho / pq_tot;
      double rr = 0;
      // x and r are shared arrays in the original code: publish them (and
      // later p) in interleaved chunks as they are updated.
      for (std::size_t i = 0; i < cnt; i += 64) {
        const std::size_t end = std::min(cnt, i + 64);
        for (std::size_t j = i; j < end; ++j) {
          x[j] += alpha * p[lo + j];
          r[j] -= alpha * q[j];
          rr += r[j] * r[j];
        }
        t.compute(vec_cost(prm, 3 * (end - i)));
        t.store_bulk(gx + static_cast<std::ptrdiff_t>(lo + i), x.data() + i,
                     end - i);
        t.store_bulk(gr + static_cast<std::ptrdiff_t>(lo + i), r.data() + i,
                     end - i);
      }
      t.store(part_rr + t.gid(), rr);
      t.barrier();
      const double rr_tot = span_sum(t, part_rr, T);
      const double beta = rr_tot / rho;
      rho = rr_tot;
      for (std::size_t i = 0; i < cnt; i += 64) {
        const std::size_t end = std::min(cnt, i + 64);
        for (std::size_t j = i; j < end; ++j)
          p[lo + j] = r[j] + beta * p[lo + j];
        t.compute(vec_cost(prm, end - i));
        t.store_bulk(gp + static_cast<std::ptrdiff_t>(lo + i), p.data() + lo + i,
                     end - i);
      }
      t.barrier();  // p complete before the next SpMV
    }
    // Publish the checksums (x is already in the shared array).
    double xs = 0;
    for (double v : x) xs += v;
    t.store(part_x + t.gid(), xs);
    t.barrier();
    if (t.gid() == 0) {
      t.store(result, rho);
      t.store(result + 1, span_sum(t, part_x, T));
    }
    t.barrier();
  });
  res.final_rho = cl.host_ptr(result)[0];
  res.x_checksum = cl.host_ptr(result)[1];
  return res;
}

CgResult cg_run_upc(argo::Cluster& cl, const CgParams& prm) {
  const std::size_t n = prm.n;
  const auto nt = static_cast<std::size_t>(cl.nthreads());
  argopgas::PgasArray<double> gp(cl, n);
  argopgas::PgasArray<double> part_pq(cl, nt), part_rr(cl, nt),
      part_x(cl, nt);
  argopgas::PgasArray<double> scal(cl, 4);  // alpha, beta, rho, x_checksum
  for (std::size_t i = 0; i < n; ++i)
    *cl.gmem().home_ptr(gp.gbase().at(i)) = cg_b(i);

  CgResult res;
  const auto max_off = static_cast<std::size_t>(CgMatrix::kOffsets[3]);
  res.elapsed = cl.run([&](Thread& t) {
    const auto T = static_cast<std::size_t>(t.nthreads());
    const auto g = static_cast<std::size_t>(t.gid());
    const std::size_t lo = n * g / T, hi = n * (g + 1) / T;
    const std::size_t cnt = hi - lo;
    // Private x/r (UPC style: thread-local working data), shared p.
    std::vector<double> x(cnt, 0.0), r(cnt), q(cnt);
    for (std::size_t i = 0; i < cnt; ++i) r[i] = cg_b(lo + i);
    std::vector<double> p(n, 0.0);
    double rho = cg_rho0(n);
    for (int it = 0; it < prm.iterations; ++it) {
      // Fetch our slice plus the halo (the rest of p we touch through the
      // band) with bulk gets — the "optimized UPC" idiom.
      const std::size_t halo_lo = (lo + n - max_off) % n;
      const std::size_t halo_hi_len = std::min(max_off, n - hi);
      if (halo_lo < lo) {
        gp.get_bulk(t, halo_lo, lo - halo_lo + cnt, p.data() + halo_lo);
      } else {  // wraps around zero
        gp.get_bulk(t, halo_lo, n - halo_lo, p.data() + halo_lo);
        gp.get_bulk(t, 0, lo + cnt, p.data());
      }
      if (halo_hi_len > 0) gp.get_bulk(t, hi, halo_hi_len, p.data() + hi);
      if (hi + max_off > n) gp.get_bulk(t, 0, hi + max_off - n, p.data());
      CgMatrix::spmv_rows(p.data(), q.data(), n, lo, hi);
      t.compute(spmv_cost(prm, cnt));
      double pq = 0;
      for (std::size_t i = 0; i < cnt; ++i) pq += p[lo + i] * q[i];
      t.compute(vec_cost(prm, cnt));
      part_pq.put(t, g, pq);
      argopgas::pgas_barrier(t);
      if (g == 0) {
        // Thread 0 reduces with fine-grained remote reads (each one a full
        // network round trip) and publishes alpha.
        double tot = 0;
        for (std::size_t k = 0; k < T; ++k) tot += part_pq.get(t, k);
        scal.put(t, 0, rho / tot);
      }
      argopgas::pgas_barrier(t);
      const double alpha = scal.get(t, 0);
      double rr = 0;
      for (std::size_t i = 0; i < cnt; ++i) {
        x[i] += alpha * p[lo + i];
        r[i] -= alpha * q[i];
        rr += r[i] * r[i];
      }
      t.compute(vec_cost(prm, 3 * cnt));
      part_rr.put(t, g, rr);
      argopgas::pgas_barrier(t);
      if (g == 0) {
        double tot = 0;
        for (std::size_t k = 0; k < T; ++k) tot += part_rr.get(t, k);
        scal.put(t, 1, tot / rho);
        scal.put(t, 2, tot);
      }
      argopgas::pgas_barrier(t);
      const double beta = scal.get(t, 1);
      rho = scal.get(t, 2);
      for (std::size_t i = 0; i < cnt; ++i)
        p[lo + i] = r[i] + beta * p[lo + i];
      t.compute(vec_cost(prm, cnt));
      gp.put_bulk(t, lo, cnt, p.data() + lo);
      argopgas::pgas_barrier(t);
    }
    double xs = 0;
    for (double v : x) xs += v;
    part_x.put(t, g, xs);
    argopgas::pgas_barrier(t);
    if (g == 0) {
      double tot = 0;
      for (std::size_t k = 0; k < T; ++k) tot += part_x.get(t, k);
      scal.put(t, 3, tot);
    }
    argopgas::pgas_barrier(t);
    if (g == 0) res.final_rho = rho;
  });
  res.x_checksum = *cl.gmem().home_ptr(scal.gbase().at(3));
  return res;
}

}  // namespace argoapps
