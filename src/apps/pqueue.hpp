// Concurrent priority queue microbenchmark (paper §5.3, Figs. 11 & 12).
//
// A fast sequential pairing heap (Fredman/Sedgewick/Sleator/Tarjan) behind
// a lock. Each thread loops: thread-local work (the paper's "work units",
// two updates to a private 64-int array each), then one global operation,
// insert or extract_min with equal probability. insert is delegated
// detached (no result needed); extract_min waits for its result.
//
//  * Fig. 11: the heap lives in one simulated machine's memory; operations
//    charge NUMA cacheline movement for the nodes they visit.
//  * Fig. 12: the heap lives in Argo's global memory (DsmPairingHeap) and
//    every node visit is a real DSM access; locks are HQDL or DSM-cohort.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cluster.hpp"
#include "sim/time.hpp"
#include "sync/dsm_locks.hpp"
#include "sync/local_locks.hpp"

namespace argoapps {

using argosim::Time;

/// Sequential pairing heap over plain memory, reporting how many heap
/// nodes each operation touched (for the NUMA cost model).
class PairingHeap {
 public:
  void insert(std::uint64_t key);
  std::optional<std::uint64_t> extract_min();
  std::size_t size() const { return size_; }
  /// Heap nodes visited by the most recent operation.
  int last_visits() const { return last_visits_; }

 private:
  struct Node {
    std::uint64_t key;
    Node* child = nullptr;
    Node* sibling = nullptr;
  };
  Node* merge(Node* a, Node* b);

  Node* root_ = nullptr;
  std::vector<Node*> free_;
  std::vector<std::unique_ptr<Node>> pool_;
  std::size_t size_ = 0;
  int last_visits_ = 0;
};

/// Pairing heap whose nodes live in Argo's global memory; all pointer
/// chasing goes through the DSM (Thread::load/store). Callers must hold a
/// lock providing mutual exclusion (HQDL / DSM-cohort in the benchmarks).
class DsmPairingHeap {
 public:
  DsmPairingHeap(argo::Cluster& cl, std::size_t capacity);

  void insert(argo::Thread& t, std::uint64_t key);
  std::optional<std::uint64_t> extract_min(argo::Thread& t);
  std::uint64_t size(argo::Thread& t);

 private:
  // Node = 4 u64 words: key, child+1, sibling+1, (pad). Header words:
  // root+1, free_head+1, next_unused, size.
  static constexpr std::size_t kW = 4;
  argo::gptr<std::uint64_t> word(std::uint64_t node, std::size_t field) {
    return pool_ + static_cast<std::ptrdiff_t>(node * kW + field);
  }
  std::uint64_t alloc_node(argo::Thread& t, std::uint64_t key);
  void free_node(argo::Thread& t, std::uint64_t n);
  std::uint64_t merge(argo::Thread& t, std::uint64_t a, std::uint64_t b);

  argo::gptr<std::uint64_t> hdr_;
  argo::gptr<std::uint64_t> pool_;
  std::size_t capacity_;
};

// ---------------------------------------------------------------------------
// Benchmark harnesses
// ---------------------------------------------------------------------------

struct PqParams {
  int work_units = 48;        ///< paper: 48 units of thread-local work
  Time ns_per_unit = 15;      ///< two private-array updates per unit
  Time op_compute = 60;       ///< key comparison / bookkeeping per op
  Time duration = 2'000'000;  ///< measured window (virtual ns)
  std::size_t prefill = 2048;
  std::uint64_t seed = 99;
};

struct PqResult {
  std::uint64_t ops = 0;
  Time elapsed = 0;
  double ops_per_us() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(ops) / argosim::to_us(elapsed);
  }
};

/// Fig. 11: single machine, `threads` threads on the topology's cores,
/// heap in local memory, `lock` is any node-local CriticalSectionExecutor.
PqResult pq_bench_local(argosync::CriticalSectionExecutor& lock,
                        const argonet::NodeTopology& topo, int threads,
                        const PqParams& p);

enum class DsmLockKind { Hqdl, Cohort };

/// Fig. 12: the cluster runs the same loop against a DsmPairingHeap.
PqResult pq_bench_dsm(argo::Cluster& cl, DsmLockKind kind, const PqParams& p);

}  // namespace argoapps
