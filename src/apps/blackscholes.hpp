// PARSEC-style blackscholes (paper §5.4, Fig. 13c).
//
// Embarrassingly parallel option pricing: each thread prices a contiguous
// chunk of options; one barrier per benchmark iteration. On Argo the
// option arrays are global, each thread's chunk is effectively private
// (P classification) or read-only, so P/S3 keeps almost everything cached
// across barriers — which is why the paper scales it to 128 nodes.
//
// Backends: Argo (Thread), "Pthreads" (a 1-node cluster = plain shared
// memory), and MPI (broadcast inputs, compute, gather prices).
#pragma once

#include <cstddef>
#include <vector>

#include "baseline/mpi.hpp"
#include "core/cluster.hpp"
#include "sim/time.hpp"

namespace argoapps {

using argosim::Time;

struct BsParams {
  std::size_t options = 1 << 16;
  int iterations = 4;       ///< PARSEC reruns the pricing loop
  std::uint64_t seed = 42;
  /// Virtual compute cost per option priced (CNDF evaluations dominate).
  Time ns_per_option = 300;
};

struct BsInput {
  std::vector<double> spot, strike, rate, vol, expiry;
  std::vector<std::uint8_t> is_put;
};

struct BsResult {
  Time elapsed = 0;
  double checksum = 0;  ///< sum of all prices from the final iteration
};

/// Deterministic input generation.
BsInput bs_make_input(const BsParams& p);

/// Price one option (the real PARSEC formula).
double bs_price(double spot, double strike, double rate, double vol,
                double expiry, bool is_put);

/// Sequential reference checksum.
double bs_reference(const BsParams& p);

/// Argo backend: arrays live in the cluster's global memory.
BsResult bs_run_argo(argo::Cluster& cl, const BsParams& p);

/// MPI backend: root broadcasts inputs, ranks price their chunk, prices
/// are gathered back to root every iteration (as the PARSEC MPI port does).
BsResult bs_run_mpi(argompi::MpiEnv& env, const BsParams& p);

}  // namespace argoapps
