// Naive matrix multiplication C = A·B (paper §5.4, Fig. 13d).
//
// Rows of C (and A) are partitioned across threads; B is read by everyone
// and written by no one — the poster child for P/S3's No-Writer
// classification (B's pages never self-invalidate). The MPI port
// broadcasts B, scatters A's rows, and gathers C.
#pragma once

#include <cstddef>
#include <vector>

#include "baseline/mpi.hpp"
#include "core/cluster.hpp"
#include "sim/time.hpp"

namespace argoapps {

using argosim::Time;

struct MmParams {
  std::size_t n = 256;      ///< square matrices n×n
  int iterations = 1;       ///< repeated multiplications, barrier per round
  std::uint64_t seed = 5;
  Time ns_per_mac = 1;      ///< virtual cost per multiply-accumulate
};

struct MmResult {
  Time elapsed = 0;
  double checksum = 0;  ///< sum of all C entries
};

/// Deterministic inputs.
void mm_make_input(const MmParams& p, std::vector<double>& a,
                   std::vector<double>& b);

/// Sequential reference checksum (same loop order as the parallel kernel).
double mm_reference(const MmParams& p);

MmResult mm_run_argo(argo::Cluster& cl, const MmParams& p);
MmResult mm_run_mpi(argompi::MpiEnv& env, const MmParams& p);

}  // namespace argoapps
