// NAS EP-style "embarrassingly parallel" kernel (paper §5.5, Fig. 13e).
//
// Generate pairs of uniform deviates, accept those inside the unit circle,
// transform them to Gaussian pairs (Box–Muller, as NAS EP does), and tally
// sums and annulus counts. The index space is split into fixed chunks with
// per-chunk RNG streams, so results are independent of the thread count.
// Communication is a single final reduction.
//
// Backends: Argo, "OpenMP" (1-node cluster), UPC (PGAS tally arrays).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "core/cluster.hpp"
#include "sim/time.hpp"

namespace argoapps {

using argosim::Time;

struct EpParams {
  int log2_pairs = 18;      ///< total pairs = 2^log2_pairs (NAS "class")
  int chunks = 256;         ///< fixed work decomposition (thread-agnostic)
  std::uint64_t seed = 271828183;
  Time ns_per_pair = 60;    ///< sqrt/log per accepted pair
};

struct EpTally {
  double sx = 0, sy = 0;
  std::array<std::uint64_t, 10> q{};
  std::uint64_t accepted = 0;

  EpTally& operator+=(const EpTally& o) {
    sx += o.sx;
    sy += o.sy;
    accepted += o.accepted;
    for (int i = 0; i < 10; ++i) q[i] += o.q[i];
    return *this;
  }
};

struct EpResult {
  Time elapsed = 0;
  EpTally tally;
};

/// Process one chunk of the index space (the real computation).
EpTally ep_chunk(const EpParams& p, int chunk);

/// Sequential reference.
EpTally ep_reference(const EpParams& p);

EpResult ep_run_argo(argo::Cluster& cl, const EpParams& p);
/// UPC port: per-thread tallies live in PGAS arrays; thread 0 reduces them
/// with fine-grained remote reads after a upc_barrier.
EpResult ep_run_upc(argo::Cluster& cl, const EpParams& p);

}  // namespace argoapps
