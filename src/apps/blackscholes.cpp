#include "apps/blackscholes.hpp"

#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "apps/memo.hpp"
#include "apps/span_util.hpp"
#include "sim/random.hpp"
#include "sim/slowpath.hpp"

namespace argoapps {

using argo::gptr;
using argo::Thread;

namespace {

/// Cumulative normal distribution (Abramowitz & Stegun 26.2.17, the same
/// approximation PARSEC's blackscholes uses).
double cndf(double x) {
  const bool neg = x < 0.0;
  if (neg) x = -x;
  const double k = 1.0 / (1.0 + 0.2316419 * x);
  const double poly =
      k * (0.319381530 +
           k * (-0.356563782 +
                k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
  const double pdf = std::exp(-0.5 * x * x) * 0.3989422804014327;
  const double cnd = 1.0 - pdf * poly;
  return neg ? 1.0 - cnd : cnd;
}

/// Charge the virtual compute for pricing `count` options, in chunks so
/// other fibers can interleave.
void charge(Thread* t, std::size_t count, Time per_option) {
  argosim::delay(static_cast<Time>(count) * per_option);
  (void)t;
}

}  // namespace

double bs_price(double spot, double strike, double rate, double vol,
                double expiry, bool is_put) {
  const double sqrt_t = std::sqrt(expiry);
  const double d1 =
      (std::log(spot / strike) + (rate + 0.5 * vol * vol) * expiry) /
      (vol * sqrt_t);
  const double d2 = d1 - vol * sqrt_t;
  const double discounted = strike * std::exp(-rate * expiry);
  if (!is_put) return spot * cndf(d1) - discounted * cndf(d2);
  return discounted * cndf(-d2) - spot * cndf(-d1);
}

namespace {

// Block-level price memo: the benches price the same deterministic option
// table once per iteration per write-buffer point per configuration, in
// fixed chunks — so a whole chunk's inputs recur bit-identically and its
// prices can be replayed with one memcmp + memcpy instead of a
// transcendental evaluation per option (see apps/memo.hpp). Keys are the
// concatenated input slices, verified exactly; the hash only routes to
// candidates. Bounded by total bytes — past the cap new blocks are priced
// without caching. Disabled by ARGO_SLOW_PATHS.
struct PriceBlock {
  std::vector<unsigned char> key;  // s | k | r | v | e doubles + put bytes
  std::vector<double> prices;
};

void bs_price_block(const double* s, const double* k, const double* r,
                    const double* v, const double* e,
                    const std::uint8_t* put, std::size_t cnt, double* out) {
  if (cnt == 0) return;
  if (argosim::slow_paths()) {
    for (std::size_t j = 0; j < cnt; ++j)
      out[j] = bs_price(s[j], k[j], r[j], v[j], e[j], put[j] != 0);
    return;
  }
  // Shared across the parallel engine's host workers: blocks are never
  // evicted (the byte cap stops inserts), so hits are served under the
  // lock and the transcendental pricing runs outside it. The key scratch
  // is per host thread.
  static std::deque<PriceBlock> blocks;  // deque: growth keeps blocks stable
  static std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
  static std::size_t memo_bytes = 0;
  static std::mutex mu;
  constexpr std::size_t kMaxBytes = 64u << 20;
  thread_local std::vector<unsigned char> scratch;

  const std::size_t kd = cnt * sizeof(double);
  const std::size_t key_bytes = 5 * kd + cnt;
  scratch.resize(key_bytes);
  unsigned char* w = scratch.data();
  std::memcpy(w, s, kd);
  std::memcpy(w + kd, k, kd);
  std::memcpy(w + 2 * kd, r, kd);
  std::memcpy(w + 3 * kd, v, kd);
  std::memcpy(w + 4 * kd, e, kd);
  std::memcpy(w + 5 * kd, put, cnt);
  const std::uint64_t h = hash_words(scratch.data(), key_bytes, cnt);

  {
    std::lock_guard<std::mutex> g(mu);
    if (const auto it = index.find(h); it != index.end()) {
      for (const std::uint32_t idx : it->second) {
        const PriceBlock& b = blocks[idx];
        if (b.key.size() == key_bytes &&
            std::memcmp(b.key.data(), scratch.data(), key_bytes) == 0) {
          std::memcpy(out, b.prices.data(), kd);
          return;
        }
      }
    }
  }
  for (std::size_t j = 0; j < cnt; ++j)
    out[j] = bs_price(s[j], k[j], r[j], v[j], e[j], put[j] != 0);
  std::lock_guard<std::mutex> g(mu);
  if (memo_bytes + key_bytes + kd <= kMaxBytes) {
    blocks.push_back(PriceBlock{scratch, std::vector<double>(out, out + cnt)});
    index[h].push_back(static_cast<std::uint32_t>(blocks.size() - 1));
    memo_bytes += key_bytes + kd;
  }
}

}  // namespace

BsInput bs_make_input(const BsParams& p) {
  argosim::Rng rng(p.seed);
  BsInput in;
  in.spot.resize(p.options);
  in.strike.resize(p.options);
  in.rate.resize(p.options);
  in.vol.resize(p.options);
  in.expiry.resize(p.options);
  in.is_put.resize(p.options);
  for (std::size_t i = 0; i < p.options; ++i) {
    in.spot[i] = rng.next_double(10.0, 200.0);
    in.strike[i] = rng.next_double(10.0, 200.0);
    in.rate[i] = rng.next_double(0.01, 0.1);
    in.vol[i] = rng.next_double(0.05, 0.65);
    in.expiry[i] = rng.next_double(0.1, 2.0);
    in.is_put[i] = rng.next_bool() ? 1 : 0;
  }
  return in;
}

double bs_reference(const BsParams& p) {
  const BsInput in = bs_make_input(p);
  double sum = 0;
  for (std::size_t i = 0; i < p.options; ++i)
    sum += bs_price(in.spot[i], in.strike[i], in.rate[i], in.vol[i],
                    in.expiry[i], in.is_put[i] != 0);
  return sum;
}

BsResult bs_run_argo(argo::Cluster& cl, const BsParams& p) {
  const BsInput in = bs_make_input(p);
  const std::size_t n = p.options;
  // Result slot first: the lowest page is homed on node 0, whose thread 0
  // writes the final checksum with a plain home write.
  auto result = cl.alloc<double>(1);
  auto partial = cl.alloc<double>(static_cast<std::size_t>(cl.nthreads()));
  auto spot = cl.alloc<double>(n), strike = cl.alloc<double>(n),
       rate = cl.alloc<double>(n), vol = cl.alloc<double>(n),
       expiry = cl.alloc<double>(n), prices = cl.alloc<double>(n);
  auto put = cl.alloc<std::uint8_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    cl.host_ptr(spot)[i] = in.spot[i];
    cl.host_ptr(strike)[i] = in.strike[i];
    cl.host_ptr(rate)[i] = in.rate[i];
    cl.host_ptr(vol)[i] = in.vol[i];
    cl.host_ptr(expiry)[i] = in.expiry[i];
    cl.host_ptr(put)[i] = in.is_put[i];
  }
  cl.reset_classification();

  BsResult res;
  res.elapsed = cl.run([&](Thread& t) {
    const std::size_t nt = static_cast<std::size_t>(t.nthreads());
    const std::size_t gid = static_cast<std::size_t>(t.gid());
    const std::size_t lo = n * gid / nt, hi = n * (gid + 1) / nt;
    const std::size_t cnt = hi - lo;
    std::vector<double> ls(cnt), lk(cnt), lr(cnt), lv(cnt), le(cnt), lp(cnt);
    std::vector<std::uint8_t> lput(cnt);
    for (int iter = 0; iter < p.iterations; ++iter) {
      t.load_bulk(spot + static_cast<std::ptrdiff_t>(lo), ls.data(), cnt);
      t.load_bulk(strike + static_cast<std::ptrdiff_t>(lo), lk.data(), cnt);
      t.load_bulk(rate + static_cast<std::ptrdiff_t>(lo), lr.data(), cnt);
      t.load_bulk(vol + static_cast<std::ptrdiff_t>(lo), lv.data(), cnt);
      t.load_bulk(expiry + static_cast<std::ptrdiff_t>(lo), le.data(), cnt);
      t.load_bulk(put + static_cast<std::ptrdiff_t>(lo), lput.data(), cnt);
      for (std::size_t i = 0; i < cnt; i += 128) {
        const std::size_t end = std::min(cnt, i + 128);
        bs_price_block(ls.data() + i, lk.data() + i, lr.data() + i,
                       lv.data() + i, le.data() + i, lput.data() + i,
                       end - i, lp.data() + i);
        charge(&t, end - i, p.ns_per_option);
        // Prices are published as they are computed (element-wise in the
        // original code).
        t.store_bulk(prices + static_cast<std::ptrdiff_t>(lo + i),
                     lp.data() + i, end - i);
      }
      t.barrier();
    }
    double sum = 0;
    for (double v : lp) sum += v;
    t.store(partial + t.gid(), sum);
    t.barrier();
    if (t.gid() == 0)
      t.store(result,
              span_sum(t, partial, static_cast<std::size_t>(t.nthreads())));
  });
  res.checksum = *cl.host_ptr(result);
  return res;
}

BsResult bs_run_mpi(argompi::MpiEnv& env, const BsParams& p) {
  const BsInput in = bs_make_input(p);
  const std::size_t n = p.options;
  const int ranks = env.world.size();
  BsResult res;
  double checksum = 0;
  res.elapsed = env.run([&](argompi::MpiWorld& w, int me) {
    const std::size_t lo = n * static_cast<std::size_t>(me) /
                           static_cast<std::size_t>(ranks);
    const std::size_t hi = n * (static_cast<std::size_t>(me) + 1) /
                           static_cast<std::size_t>(ranks);
    const std::size_t cnt = hi - lo;
    // Root owns the input; everyone receives a full copy (the PARSEC MPI
    // port broadcasts the option table once).
    std::vector<double> s(in.spot), k(in.strike), r(in.rate), v(in.vol),
        e(in.expiry);
    std::vector<std::uint8_t> q(in.is_put);
    if (me != 0) {  // non-roots receive everything over the wire
      std::fill(s.begin(), s.end(), 0.0);
      std::fill(k.begin(), k.end(), 0.0);
      std::fill(r.begin(), r.end(), 0.0);
      std::fill(v.begin(), v.end(), 0.0);
      std::fill(e.begin(), e.end(), 0.0);
      std::fill(q.begin(), q.end(), 0);
    }
    w.bcast(me, 0, s.data(), n * sizeof(double));
    w.bcast(me, 0, k.data(), n * sizeof(double));
    w.bcast(me, 0, r.data(), n * sizeof(double));
    w.bcast(me, 0, v.data(), n * sizeof(double));
    w.bcast(me, 0, e.data(), n * sizeof(double));
    w.bcast(me, 0, q.data(), n * sizeof(std::uint8_t));

    std::vector<double> prices(cnt);
    double my_sum = 0;
    for (int iter = 0; iter < p.iterations; ++iter) {
      my_sum = 0;
      for (std::size_t i = 0; i < cnt; i += 1024) {
        const std::size_t end = std::min(cnt, i + 1024);
        bs_price_block(s.data() + lo + i, k.data() + lo + i, r.data() + lo + i,
                       v.data() + lo + i, e.data() + lo + i, q.data() + lo + i,
                       end - i, prices.data() + i);
        for (std::size_t j = i; j < end; ++j) my_sum += prices[j];
        argosim::delay(static_cast<Time>(end - i) * p.ns_per_option);
      }
      w.barrier(me);
    }
    double total = my_sum;
    w.reduce_sum(me, 0, &total, 1);
    if (me == 0) checksum = total;
  });
  res.checksum = checksum;
  return res;
}

}  // namespace argoapps
