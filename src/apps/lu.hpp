// SPLASH-2-style blocked dense LU factorization without pivoting
// (paper §5.4, Fig. 13a).
//
// The matrix is stored in blocked layout (each B×B block contiguous, so a
// block maps to whole pages) and blocks are assigned to threads in a 2D
// scatter. Step k: the owner factors the diagonal block; perimeter owners
// update row/column blocks against it; interior owners update their blocks
// against the perimeter — three barriers per step, with heavy block
// migration between steps (the paper: "involves a lot of data migration").
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster.hpp"
#include "sim/time.hpp"

namespace argoapps {

using argosim::Time;

struct LuParams {
  std::size_t n = 256;      ///< matrix dimension (multiple of block)
  std::size_t block = 32;   ///< block size (32×32 doubles = 2 pages)
  std::uint64_t seed = 3;
  Time ns_per_mac = 1;
};

struct LuResult {
  Time elapsed = 0;
  double checksum = 0;  ///< sum of all factored entries (L\U in place)
};

/// Deterministic diagonally dominant input (no pivoting needed), in
/// blocked layout: element (i,j) lives at block-major position.
std::vector<double> lu_make_input(const LuParams& p);

/// Blocked-layout index of element (i, j).
std::size_t lu_index(const LuParams& p, std::size_t i, std::size_t j);

/// Sequential reference: same blocked algorithm, same operation order.
double lu_reference(const LuParams& p);

LuResult lu_run_argo(argo::Cluster& cl, const LuParams& p);

}  // namespace argoapps
