#include "apps/ep.hpp"

#include <cmath>

#include "apps/span_util.hpp"
#include "baseline/pgas.hpp"
#include "sim/random.hpp"

namespace argoapps {

using argo::gptr;
using argo::Thread;

EpTally ep_chunk(const EpParams& p, int chunk) {
  const std::uint64_t total = std::uint64_t{1} << p.log2_pairs;
  const std::uint64_t per_chunk = total / static_cast<std::uint64_t>(p.chunks);
  argosim::Rng rng(p.seed * 0x9e3779b9u + static_cast<std::uint64_t>(chunk));
  EpTally t;
  for (std::uint64_t i = 0; i < per_chunk; ++i) {
    const double x = 2.0 * rng.next_double() - 1.0;
    const double y = 2.0 * rng.next_double() - 1.0;
    const double r2 = x * x + y * y;
    if (r2 > 1.0 || r2 == 0.0) continue;
    const double f = std::sqrt(-2.0 * std::log(r2) / r2);
    const double gx = x * f, gy = y * f;
    t.sx += gx;
    t.sy += gy;
    ++t.accepted;
    const double mx = std::max(std::fabs(gx), std::fabs(gy));
    int bin = static_cast<int>(mx);
    if (bin > 9) bin = 9;
    ++t.q[static_cast<std::size_t>(bin)];
  }
  return t;
}

EpTally ep_reference(const EpParams& p) {
  EpTally total;
  for (int c = 0; c < p.chunks; ++c) total += ep_chunk(p, c);
  return total;
}

namespace {

/// Charge virtual compute for one chunk.
Time chunk_cost(const EpParams& p) {
  const std::uint64_t total = std::uint64_t{1} << p.log2_pairs;
  return static_cast<Time>(total / static_cast<std::uint64_t>(p.chunks)) *
         p.ns_per_pair;
}

/// Pack/unpack a tally to a flat array of 13 doubles for reductions.
constexpr std::size_t kTallyDoubles = 13;

void pack(const EpTally& t, double* out) {
  out[0] = t.sx;
  out[1] = t.sy;
  out[2] = static_cast<double>(t.accepted);
  for (int i = 0; i < 10; ++i) out[3 + i] = static_cast<double>(t.q[static_cast<std::size_t>(i)]);
}

EpTally unpack(const double* in) {
  EpTally t;
  t.sx = in[0];
  t.sy = in[1];
  t.accepted = static_cast<std::uint64_t>(in[2]);
  for (int i = 0; i < 10; ++i)
    t.q[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(in[3 + i]);
  return t;
}

}  // namespace

EpResult ep_run_argo(argo::Cluster& cl, const EpParams& p) {
  auto result = cl.alloc<double>(kTallyDoubles);
  auto partial = cl.alloc<double>(
      static_cast<std::size_t>(cl.nthreads()) * kTallyDoubles);
  cl.reset_classification();
  EpResult res;
  res.elapsed = cl.run([&](Thread& t) {
    EpTally mine;
    for (int c = t.gid(); c < p.chunks; c += t.nthreads()) {
      mine += ep_chunk(p, c);
      t.compute(chunk_cost(p));
    }
    double buf[kTallyDoubles];
    pack(mine, buf);
    t.store_bulk(partial + static_cast<std::ptrdiff_t>(
                               static_cast<std::size_t>(t.gid()) * kTallyDoubles),
                 buf, kTallyDoubles);
    t.barrier();
    if (t.gid() == 0) {
      EpTally total;
      for (int g = 0; g < t.nthreads(); ++g) {
        // 13 doubles per tally, so a tally may straddle a page boundary:
        // span_copy chunks exactly like load_bulk did.
        double in[kTallyDoubles];
        span_copy(t,
                  partial + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(g) * kTallyDoubles),
                  kTallyDoubles, in);
        total += unpack(in);
      }
      pack(total, buf);
      t.store_bulk(result, buf, kTallyDoubles);
    }
    t.barrier();
  });
  double out[kTallyDoubles];
  for (std::size_t i = 0; i < kTallyDoubles; ++i)
    out[i] = cl.host_ptr(result)[i];
  res.tally = unpack(out);
  return res;
}

EpResult ep_run_upc(argo::Cluster& cl, const EpParams& p) {
  argopgas::PgasArray<double> partial(
      cl, static_cast<std::size_t>(cl.nthreads()) * kTallyDoubles);
  argopgas::PgasArray<double> result(cl, kTallyDoubles);
  EpResult res;
  res.elapsed = cl.run([&](Thread& t) {
    EpTally mine;
    for (int c = t.gid(); c < p.chunks; c += t.nthreads()) {
      mine += ep_chunk(p, c);
      t.compute(chunk_cost(p));
    }
    double buf[kTallyDoubles];
    pack(mine, buf);
    partial.put_bulk(t, static_cast<std::size_t>(t.gid()) * kTallyDoubles,
                     kTallyDoubles, buf);
    argopgas::pgas_barrier(t);
    if (t.gid() == 0) {
      // Fine-grained remote reads: the UPC style the paper contrasts.
      EpTally total;
      for (int g = 0; g < t.nthreads(); ++g) {
        double in[kTallyDoubles];
        for (std::size_t i = 0; i < kTallyDoubles; ++i)
          in[i] = partial.get(
              t, static_cast<std::size_t>(g) * kTallyDoubles + i);
        total += unpack(in);
      }
      pack(total, buf);
      result.put_bulk(t, 0, kTallyDoubles, buf);
    }
    argopgas::pgas_barrier(t);
  });
  double out[kTallyDoubles];
  for (std::size_t i = 0; i < kTallyDoubles; ++i)
    out[i] = *cl.gmem().home_ptr(result.gbase().at(i));
  res.tally = unpack(out);
  return res;
}

}  // namespace argoapps
