#include "apps/mm.hpp"

#include <cstring>
#include <deque>
#include <mutex>

#include "apps/span_util.hpp"
#include "sim/random.hpp"
#include "sim/slowpath.hpp"

namespace argoapps {

using argo::gptr;
using argo::Thread;

namespace {

/// C[row] = A[row] · B for rows [lo, hi) — ikj order so the inner loop
/// streams B rows (the real computation all backends share).
void mm_rows(const double* a, const double* b, double* c, std::size_t n,
             std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    double* ci = c + (i - lo) * n;
    for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    const double* ai = a + (i - lo) * n;
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = ai[k];
      const double* bk = b + k * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

// Row-level product memo: every backend multiplies the same deterministic
// A rows by the same B, once per iteration per configuration, so each row
// product recurs bit-identically across the sweep (see apps/memo.hpp). B
// operands are interned by exact comparison (the benches use one per
// size); interning is a separate step the backends run ONCE per local B
// buffer fill — comparing the full B on every row call made the intern
// memcmp, not the product, the dominant host cost. Each cached row stores
// its A row and result row, verified with a full memcmp before replay.
// Random row data rejects mismatches on the first word, so the
// newest-first scan is effectively O(entries) cheap word compares.
// Bounded by total bytes; disabled by ARGO_SLOW_PATHS.
struct MmRow {
  std::size_t b_id;
  std::vector<double> a, c;
};

// Shared across the parallel engine's host workers: entries are never
// evicted (the byte cap just stops inserts), so a hit is served entirely
// under the lock and the expensive product runs outside it. Two workers
// may compute the same row block concurrently; the duplicate insert is
// harmless.
std::deque<std::vector<double>> mm_bmats;  // deque: stable growth
std::deque<MmRow> mm_cache;
std::size_t mm_memo_bytes = 0;
std::mutex mm_memo_mu;
constexpr std::size_t kMmMaxBytes = 96u << 20;
constexpr std::size_t kMmNoMemo = static_cast<std::size_t>(-1);

/// Resolve `b` (n x n) to its interned id — one full memcmp against the
/// few known B operands. Returns kMmNoMemo (compute without caching) under
/// ARGO_SLOW_PATHS or when the byte budget is exhausted.
std::size_t mm_intern_b(const double* b, std::size_t n) {
  if (argosim::slow_paths()) return kMmNoMemo;
  const std::size_t bn = n * n;
  std::lock_guard<std::mutex> g(mm_memo_mu);
  for (std::size_t i = mm_bmats.size(); i-- > 0;) {
    if (mm_bmats[i].size() == bn &&
        std::memcmp(mm_bmats[i].data(), b, bn * sizeof(double)) == 0)
      return i;
  }
  if (mm_memo_bytes + bn * sizeof(double) > kMmMaxBytes) return kMmNoMemo;
  mm_bmats.emplace_back(b, b + bn);
  mm_memo_bytes += bn * sizeof(double);
  return mm_bmats.size() - 1;
}

void mm_rows_memo(const double* a, std::size_t b_id, const double* b,
                  double* c, std::size_t n, std::size_t rows) {
  if (b_id == kMmNoMemo) {  // slow paths, or memo over budget
    mm_rows(a, b, c, n, 0, rows);
    return;
  }
  const std::size_t an = rows * n;
  {
    std::lock_guard<std::mutex> g(mm_memo_mu);
    for (auto it = mm_cache.rbegin(); it != mm_cache.rend(); ++it) {
      if (it->b_id == b_id && it->a.size() == an &&
          std::memcmp(it->a.data(), a, an * sizeof(double)) == 0) {
        std::memcpy(c, it->c.data(), an * sizeof(double));
        return;
      }
    }
  }
  mm_rows(a, b, c, n, 0, rows);
  std::lock_guard<std::mutex> g(mm_memo_mu);
  if (mm_memo_bytes + 2 * an * sizeof(double) <= kMmMaxBytes) {
    mm_cache.push_back(MmRow{b_id, std::vector<double>(a, a + an),
                             std::vector<double>(c, c + an)});
    mm_memo_bytes += 2 * an * sizeof(double);
  }
}

}  // namespace

void mm_make_input(const MmParams& p, std::vector<double>& a,
                   std::vector<double>& b) {
  argosim::Rng rng(p.seed);
  a.resize(p.n * p.n);
  b.resize(p.n * p.n);
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
}

double mm_reference(const MmParams& p) {
  std::vector<double> a, b, c(p.n * p.n);
  mm_make_input(p, a, b);
  mm_rows(a.data(), b.data(), c.data(), p.n, 0, p.n);
  double sum = 0;
  for (double v : c) sum += v;
  return sum;
}

MmResult mm_run_argo(argo::Cluster& cl, const MmParams& p) {
  std::vector<double> ah, bh;
  mm_make_input(p, ah, bh);
  const std::size_t n = p.n;
  auto result = cl.alloc<double>(1);
  auto partial = cl.alloc<double>(static_cast<std::size_t>(cl.nthreads()));
  auto a = cl.alloc<double>(n * n);
  auto b = cl.alloc<double>(n * n);
  auto c = cl.alloc<double>(n * n);
  std::copy(ah.begin(), ah.end(), cl.host_ptr(a));
  std::copy(bh.begin(), bh.end(), cl.host_ptr(b));
  cl.reset_classification();

  MmResult res;
  res.elapsed = cl.run([&](Thread& t) {
    const auto nt = static_cast<std::size_t>(t.nthreads());
    const auto gid = static_cast<std::size_t>(t.gid());
    const std::size_t lo = n * gid / nt, hi = n * (gid + 1) / nt;
    const std::size_t rows = hi - lo;
    std::vector<double> la(rows * n), lb(n * n), lc(rows * n);
    for (int iter = 0; iter < p.iterations; ++iter) {
      // A's rows are this thread's (private pages); B is read-only shared
      // (S,NW) — under P/S3 both stay cached across the barrier.
      t.load_bulk(a + static_cast<std::ptrdiff_t>(lo * n), la.data(), rows * n);
      t.load_bulk(b, lb.data(), n * n);
      const std::size_t b_id = mm_intern_b(lb.data(), n);
      // One row at a time, storing each result row as it is produced
      // (like the original element-wise code).
      for (std::size_t i = 0; i < rows; ++i) {
        mm_rows_memo(la.data() + i * n, b_id, lb.data(), lc.data() + i * n,
                     n, 1);
        t.compute(static_cast<Time>(n * n) * p.ns_per_mac);
        t.store_bulk(c + static_cast<std::ptrdiff_t>((lo + i) * n),
                     lc.data() + i * n, n);
      }
      t.barrier();
    }
    double sum = 0;
    for (double v : lc) sum += v;
    t.store(partial + t.gid(), sum);
    t.barrier();
    if (t.gid() == 0)
      t.store(result,
              span_sum(t, partial, static_cast<std::size_t>(t.nthreads())));
  });
  res.checksum = *cl.host_ptr(result);
  return res;
}

MmResult mm_run_mpi(argompi::MpiEnv& env, const MmParams& p) {
  std::vector<double> ah, bh;
  mm_make_input(p, ah, bh);
  const std::size_t n = p.n;
  const int ranks = env.world.size();
  MmResult res;
  double checksum = 0;
  res.elapsed = env.run([&](argompi::MpiWorld& w, int me) {
    const std::size_t lo = n * static_cast<std::size_t>(me) /
                           static_cast<std::size_t>(ranks);
    const std::size_t hi = n * (static_cast<std::size_t>(me) + 1) /
                           static_cast<std::size_t>(ranks);
    const std::size_t rows = hi - lo;
    std::vector<double> b(n * n), la(rows * n), lc(rows * n);
    if (me == 0) {
      b = bh;
      // Scatter A row blocks.
      for (int r = 1; r < ranks; ++r) {
        const std::size_t rlo = n * static_cast<std::size_t>(r) /
                                static_cast<std::size_t>(ranks);
        const std::size_t rhi = n * (static_cast<std::size_t>(r) + 1) /
                                static_cast<std::size_t>(ranks);
        w.send(0, r, 10, ah.data() + rlo * n, (rhi - rlo) * n * sizeof(double));
      }
      std::copy(ah.begin(), ah.begin() + static_cast<std::ptrdiff_t>(rows * n),
                la.begin());
    } else {
      w.recv(me, 0, 10, la.data(), rows * n * sizeof(double));
    }
    w.bcast(me, 0, b.data(), n * n * sizeof(double));
    const std::size_t b_id = mm_intern_b(b.data(), n);
    for (int iter = 0; iter < p.iterations; ++iter) {
      for (std::size_t i = 0; i < rows; ++i) {
        mm_rows_memo(la.data() + i * n, b_id, b.data(), lc.data() + i * n,
                     n, 1);
        argosim::delay(static_cast<Time>(n * n) * p.ns_per_mac);
      }
      w.barrier(me);
    }
    double sum = 0;
    for (double v : lc) sum += v;
    // Gather C back to the root (the result matrix must land somewhere).
    if (me != 0) {
      w.send(me, 0, 11, lc.data(), rows * n * sizeof(double));
    } else {
      std::vector<double> rbuf;
      for (int r = 1; r < ranks; ++r) {
        const std::size_t rlo = n * static_cast<std::size_t>(r) /
                                static_cast<std::size_t>(ranks);
        const std::size_t rhi = n * (static_cast<std::size_t>(r) + 1) /
                                static_cast<std::size_t>(ranks);
        rbuf.resize((rhi - rlo) * n);
        w.recv(0, r, 11, rbuf.data(), rbuf.size() * sizeof(double));
      }
    }
    w.reduce_sum(me, 0, &sum, 1);
    if (me == 0) checksum = sum;
  });
  res.checksum = checksum;
  return res;
}

}  // namespace argoapps
