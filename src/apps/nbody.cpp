#include "apps/nbody.hpp"

#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>

#include "apps/span_util.hpp"
#include "sim/random.hpp"
#include "sim/slowpath.hpp"

namespace argoapps {

using argo::gptr;
using argo::Thread;

namespace {

constexpr double kSoftening = 1e-3;

/// Accumulate the force on body i from all bodies (the real computation).
void accumulate_force(const double* x, const double* y, const double* z,
                      const double* m, std::size_t n, std::size_t i,
                      double& fx, double& fy, double& fz) {
  const double xi = x[i], yi = y[i], zi = z[i];
  // Two independent accumulator lanes: the explicit even/odd split spells
  // out the summation order (lane sums combined once at the end), so the
  // compiler can keep the pair in one vector register — packed subtract /
  // multiply / sqrt / divide — without being licensed to reassociate
  // anything. The result is deterministic: it depends only on n, not on
  // the optimization level or the ARGO_SLOW_PATHS mode.
  double ax0 = 0, ay0 = 0, az0 = 0;
  double ax1 = 0, ay1 = 0, az1 = 0;
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const double dx0 = x[j] - xi, dy0 = y[j] - yi, dz0 = z[j] - zi;
    const double dx1 = x[j + 1] - xi, dy1 = y[j + 1] - yi,
                 dz1 = z[j + 1] - zi;
    const double r20 = dx0 * dx0 + dy0 * dy0 + dz0 * dz0 + kSoftening;
    const double r21 = dx1 * dx1 + dy1 * dy1 + dz1 * dz1 + kSoftening;
    const double inv0 = 1.0 / std::sqrt(r20);
    const double inv1 = 1.0 / std::sqrt(r21);
    const double s0 = m[j] * inv0 * inv0 * inv0;
    const double s1 = m[j + 1] * inv1 * inv1 * inv1;
    ax0 += dx0 * s0;
    ay0 += dy0 * s0;
    az0 += dz0 * s0;
    ax1 += dx1 * s1;
    ay1 += dy1 * s1;
    az1 += dz1 * s1;
  }
  if (j < n) {
    const double dx = x[j] - xi, dy = y[j] - yi, dz = z[j] - zi;
    const double r2 = dx * dx + dy * dy + dz * dz + kSoftening;
    const double inv_r = 1.0 / std::sqrt(r2);
    const double s = m[j] * inv_r * inv_r * inv_r;
    ax0 += dx * s;
    ay0 += dy * s;
    az0 += dz * s;
  }
  fx = ax0 + ax1;
  fy = ay0 + ay1;
  fz = az0 + az1;
}

/// Lazily-filled per-body force table for one position state (the
/// concatenated x|y|z|m arrays). Every backend and every configuration of
/// a bench walks the same deterministic trajectory, so the O(n²) force
/// phase of a given step is computed once process-wide and replayed —
/// bit-identically, a hit returns the exact doubles a previous run
/// computed from byte-identical inputs — by every later run (see
/// apps/memo.hpp).
struct ForceTable {
  std::vector<double> in;          // x | y | z | m, the verified key
  std::vector<double> fx, fy, fz;  // forces, valid where have[i]
  std::vector<std::uint8_t> have;
};

ForceTable* force_table(const double* x, const double* y, const double* z,
                        const double* m, std::size_t n) {
  static std::deque<ForceTable> tables;  // FIFO-capped, process-global
  static std::mutex mu;  // parallel engine workers share the table
  constexpr std::size_t kMaxStates = 16;
  // Returned pointers are written outside the lock, but each caller owns a
  // disjoint body slice (disjoint fx/fy/fz/have elements), and eviction
  // cannot reach an in-use state: concurrent shards are at most one
  // lookahead window apart, far less than the steps needed to push
  // kMaxStates newer position states.
  std::lock_guard<std::mutex> g(mu);
  // No hashing: with at most kMaxStates live states, a newest-first scan
  // with early-exit memcmp is cheaper than hashing 4n doubles per call
  // (every body moves every step, so mismatching states diverge in the
  // leading bytes and each reject is O(1) in practice).
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    ForceTable& t = *it;
    if (t.in.size() != 4 * n) continue;
    const double* k = t.in.data();
    if (std::memcmp(k, x, n * sizeof(double)) == 0 &&
        std::memcmp(k + n, y, n * sizeof(double)) == 0 &&
        std::memcmp(k + 2 * n, z, n * sizeof(double)) == 0 &&
        std::memcmp(k + 3 * n, m, n * sizeof(double)) == 0)
      return &t;
  }
  if (tables.size() >= kMaxStates) tables.pop_front();
  ForceTable& t = tables.emplace_back();
  t.in.resize(4 * n);
  double* k = t.in.data();
  std::memcpy(k, x, n * sizeof(double));
  std::memcpy(k + n, y, n * sizeof(double));
  std::memcpy(k + 2 * n, z, n * sizeof(double));
  std::memcpy(k + 3 * n, m, n * sizeof(double));
  t.fx.resize(n);
  t.fy.resize(n);
  t.fz.resize(n);
  t.have.assign(n, 0);
  return &t;
}

void integrate_slice(const NbodyParams& p, const double* x, const double* y,
                     const double* z, const double* m, std::size_t n,
                     std::size_t lo, std::size_t hi, double* nx, double* ny,
                     double* nz, double* vx, double* vy, double* vz) {
  ForceTable* tab =
      argosim::slow_paths() ? nullptr : force_table(x, y, z, m, n);
  for (std::size_t i = lo; i < hi; ++i) {
    double fx, fy, fz;
    if (tab && tab->have[i]) {
      fx = tab->fx[i];
      fy = tab->fy[i];
      fz = tab->fz[i];
    } else {
      accumulate_force(x, y, z, m, n, i, fx, fy, fz);
      if (tab) {
        tab->fx[i] = fx;
        tab->fy[i] = fy;
        tab->fz[i] = fz;
        tab->have[i] = 1;
      }
    }
    vx[i - lo] += p.dt * fx;
    vy[i - lo] += p.dt * fy;
    vz[i - lo] += p.dt * fz;
    nx[i - lo] = x[i] + p.dt * vx[i - lo];
    ny[i - lo] = y[i] + p.dt * vy[i - lo];
    nz[i - lo] = z[i] + p.dt * vz[i - lo];
  }
}

}  // namespace

NbodyState nbody_make_input(const NbodyParams& p) {
  argosim::Rng rng(p.seed);
  NbodyState s;
  const std::size_t n = p.bodies;
  s.x.resize(n);
  s.y.resize(n);
  s.z.resize(n);
  s.vx.assign(n, 0.0);
  s.vy.assign(n, 0.0);
  s.vz.assign(n, 0.0);
  s.mass.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.x[i] = rng.next_double(-1, 1);
    s.y[i] = rng.next_double(-1, 1);
    s.z[i] = rng.next_double(-1, 1);
    s.mass[i] = rng.next_double(0.5, 1.5);
  }
  return s;
}

double nbody_reference(const NbodyParams& p) {
  NbodyState s = nbody_make_input(p);
  const std::size_t n = p.bodies;
  std::vector<double> nx(n), ny(n), nz(n);
  for (int step = 0; step < p.steps; ++step) {
    integrate_slice(p, s.x.data(), s.y.data(), s.z.data(), s.mass.data(), n,
                    0, n, nx.data(), ny.data(), nz.data(), s.vx.data(),
                    s.vy.data(), s.vz.data());
    s.x.swap(nx);
    s.y.swap(ny);
    s.z.swap(nz);
  }
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i)
    sum += std::fabs(s.x[i]) + std::fabs(s.y[i]) + std::fabs(s.z[i]);
  return sum;
}

NbodyResult nbody_run_argo(argo::Cluster& cl, const NbodyParams& p) {
  const NbodyState init = nbody_make_input(p);
  const std::size_t n = p.bodies;
  auto result = cl.alloc<double>(1);
  auto partial = cl.alloc<double>(static_cast<std::size_t>(cl.nthreads()));
  // Double-buffered positions + velocities + masses.
  gptr<double> pos[2][3] = {
      {cl.alloc<double>(n), cl.alloc<double>(n), cl.alloc<double>(n)},
      {cl.alloc<double>(n), cl.alloc<double>(n), cl.alloc<double>(n)}};
  gptr<double> vel[3] = {cl.alloc<double>(n), cl.alloc<double>(n),
                         cl.alloc<double>(n)};
  auto mass = cl.alloc<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    cl.host_ptr(pos[0][0])[i] = init.x[i];
    cl.host_ptr(pos[0][1])[i] = init.y[i];
    cl.host_ptr(pos[0][2])[i] = init.z[i];
    cl.host_ptr(mass)[i] = init.mass[i];
  }
  cl.reset_classification();

  NbodyResult res;
  res.elapsed = cl.run([&](Thread& t) {
    const auto nt = static_cast<std::size_t>(t.nthreads());
    const auto gid = static_cast<std::size_t>(t.gid());
    const std::size_t lo = n * gid / nt, hi = n * (gid + 1) / nt;
    const std::size_t cnt = hi - lo;
    std::vector<double> x(n), y(n), z(n), m(n);
    std::vector<double> nx(cnt), ny(cnt), nz(cnt);
    std::vector<double> vx(cnt), vy(cnt), vz(cnt);
    t.load_bulk(mass, m.data(), n);
    for (int step = 0; step < p.steps; ++step) {
      const int cur = step & 1, nxt = cur ^ 1;
      // Velocities are shared arrays touched only by their owner slice —
      // Private pages under P/S (they never need self-invalidation).
      t.load_bulk(vel[0] + static_cast<std::ptrdiff_t>(lo), vx.data(), cnt);
      t.load_bulk(vel[1] + static_cast<std::ptrdiff_t>(lo), vy.data(), cnt);
      t.load_bulk(vel[2] + static_cast<std::ptrdiff_t>(lo), vz.data(), cnt);
      t.load_bulk(pos[cur][0], x.data(), n);
      t.load_bulk(pos[cur][1], y.data(), n);
      t.load_bulk(pos[cur][2], z.data(), n);
      // Compute in chunks and publish each chunk's results immediately —
      // as the original element-wise code does, the six output arrays'
      // pages are dirtied interleaved, which is what makes the write
      // buffer's size matter (Figs. 9/10).
      for (std::size_t i = lo; i < hi; i += 16) {
        const std::size_t end = std::min(hi, i + 16);
        integrate_slice(p, x.data(), y.data(), z.data(), m.data(), n, i, end,
                        nx.data() + (i - lo), ny.data() + (i - lo),
                        nz.data() + (i - lo), vx.data() + (i - lo),
                        vy.data() + (i - lo), vz.data() + (i - lo));
        t.compute(static_cast<Time>((end - i) * n) * p.ns_per_interaction);
        const std::size_t c = end - i;
        const auto off = static_cast<std::ptrdiff_t>(i);
        t.store_bulk(pos[nxt][0] + off, nx.data() + (i - lo), c);
        t.store_bulk(pos[nxt][1] + off, ny.data() + (i - lo), c);
        t.store_bulk(pos[nxt][2] + off, nz.data() + (i - lo), c);
        t.store_bulk(vel[0] + off, vx.data() + (i - lo), c);
        t.store_bulk(vel[1] + off, vy.data() + (i - lo), c);
        t.store_bulk(vel[2] + off, vz.data() + (i - lo), c);
      }
      t.barrier();
    }
    const int fin = p.steps & 1;
    // The final checksum interleaves |x|+|y|+|z| per body, so the three
    // arrays cannot be walked one span at a time without changing the
    // floating-point summation order: keep the bulk copies.
    double sum = 0;
    std::vector<double> fx(cnt), fy(cnt), fz(cnt);
    t.load_bulk(pos[fin][0] + static_cast<std::ptrdiff_t>(lo), fx.data(), cnt);
    t.load_bulk(pos[fin][1] + static_cast<std::ptrdiff_t>(lo), fy.data(), cnt);
    t.load_bulk(pos[fin][2] + static_cast<std::ptrdiff_t>(lo), fz.data(), cnt);
    for (std::size_t i = 0; i < cnt; ++i)
      sum += std::fabs(fx[i]) + std::fabs(fy[i]) + std::fabs(fz[i]);
    t.store(partial + t.gid(), sum);
    t.barrier();
    if (t.gid() == 0)
      t.store(result,
              span_sum(t, partial, static_cast<std::size_t>(t.nthreads())));
  });
  res.checksum = *cl.host_ptr(result);
  return res;
}

NbodyResult nbody_run_mpi(argompi::MpiEnv& env, const NbodyParams& p) {
  const NbodyState init = nbody_make_input(p);
  const std::size_t n = p.bodies;
  const int ranks = env.world.size();
  NbodyResult res;
  double checksum = 0;
  res.elapsed = env.run([&](argompi::MpiWorld& w, int me) {
    const std::size_t lo = n * static_cast<std::size_t>(me) /
                           static_cast<std::size_t>(ranks);
    const std::size_t hi = n * (static_cast<std::size_t>(me) + 1) /
                           static_cast<std::size_t>(ranks);
    const std::size_t cnt = hi - lo;
    // Rank slices: allgather needs equal sizes — use the max slice and pad.
    const std::size_t slice =
        (n + static_cast<std::size_t>(ranks) - 1) / static_cast<std::size_t>(ranks);
    std::vector<double> x(init.x), y(init.y), z(init.z), m(init.mass);
    std::vector<double> vx(cnt, 0), vy(cnt, 0), vz(cnt, 0);
    std::vector<double> nx(cnt), ny(cnt), nz(cnt);
    std::vector<double> sendbuf(3 * slice, 0.0), recvbuf(3 * slice *
                                                         static_cast<std::size_t>(ranks));
    for (int step = 0; step < p.steps; ++step) {
      for (std::size_t i = lo; i < hi; i += 16) {
        const std::size_t end = std::min(hi, i + 16);
        integrate_slice(p, x.data(), y.data(), z.data(), m.data(), n, i, end,
                        nx.data() + (i - lo), ny.data() + (i - lo),
                        nz.data() + (i - lo), vx.data() + (i - lo),
                        vy.data() + (i - lo), vz.data() + (i - lo));
        argosim::delay(static_cast<Time>((end - i) * n) * p.ns_per_interaction);
      }
      // Exchange the new positions (allgather of padded slices).
      std::copy(nx.begin(), nx.end(), sendbuf.begin());
      std::copy(ny.begin(), ny.end(), sendbuf.begin() + static_cast<std::ptrdiff_t>(slice));
      std::copy(nz.begin(), nz.end(), sendbuf.begin() + static_cast<std::ptrdiff_t>(2 * slice));
      w.allgather(me, sendbuf.data(), recvbuf.data(),
                  sendbuf.size() * sizeof(double));
      for (int r = 0; r < ranks; ++r) {
        const std::size_t rlo = n * static_cast<std::size_t>(r) /
                                static_cast<std::size_t>(ranks);
        const std::size_t rhi = n * (static_cast<std::size_t>(r) + 1) /
                                static_cast<std::size_t>(ranks);
        const double* base = recvbuf.data() + static_cast<std::size_t>(r) * 3 * slice;
        for (std::size_t i = rlo; i < rhi; ++i) {
          x[i] = base[i - rlo];
          y[i] = base[slice + (i - rlo)];
          z[i] = base[2 * slice + (i - rlo)];
        }
      }
    }
    double sum = 0;
    for (std::size_t i = lo; i < hi; ++i)
      sum += std::fabs(x[i]) + std::fabs(y[i]) + std::fabs(z[i]);
    w.reduce_sum(me, 0, &sum, 1);
    if (me == 0) checksum = sum;
  });
  res.checksum = checksum;
  return res;
}

}  // namespace argoapps
