#include "apps/pqueue.hpp"

#include <cassert>

#include "sim/random.hpp"
#include "sync/qd_lock.hpp"

namespace argoapps {

using argo::Cluster;
using argo::Thread;
using argo::gptr;

// ---------------------------------------------------------------------------
// PairingHeap (local)
// ---------------------------------------------------------------------------

PairingHeap::Node* PairingHeap::merge(Node* a, Node* b) {
  ++last_visits_;
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (b->key < a->key) std::swap(a, b);
  b->sibling = a->child;
  a->child = b;
  return a;
}

void PairingHeap::insert(std::uint64_t key) {
  last_visits_ = 1;
  Node* n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  } else {
    pool_.push_back(std::make_unique<Node>());
    n = pool_.back().get();
  }
  n->key = key;
  n->child = nullptr;
  n->sibling = nullptr;
  root_ = merge(root_, n);
  ++size_;
}

std::optional<std::uint64_t> PairingHeap::extract_min() {
  last_visits_ = 1;
  if (root_ == nullptr) return std::nullopt;
  const std::uint64_t min = root_->key;
  Node* child = root_->child;
  free_.push_back(root_);
  // Two-pass pairing: left-to-right pairwise merge, then right-to-left fold.
  std::vector<Node*> pairs;
  while (child != nullptr) {
    Node* a = child;
    Node* b = a->sibling;
    child = (b != nullptr) ? b->sibling : nullptr;
    a->sibling = nullptr;
    if (b != nullptr) b->sibling = nullptr;
    pairs.push_back(merge(a, b));
  }
  Node* merged = nullptr;
  for (auto it = pairs.rbegin(); it != pairs.rend(); ++it)
    merged = merge(merged, *it);
  root_ = merged;
  --size_;
  return min;
}

// ---------------------------------------------------------------------------
// DsmPairingHeap
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kKey = 0, kChild = 1, kSibling = 2;
constexpr std::uint64_t kRoot = 0, kFree = 1, kNext = 2, kSize = 3;
}  // namespace

DsmPairingHeap::DsmPairingHeap(Cluster& cl, std::size_t capacity)
    : capacity_(capacity) {
  hdr_ = cl.alloc<std::uint64_t>(8);
  pool_ = cl.alloc<std::uint64_t>(capacity * kW);
  for (int i = 0; i < 8; ++i) cl.host_ptr(hdr_)[i] = 0;
}

std::uint64_t DsmPairingHeap::alloc_node(Thread& t, std::uint64_t key) {
  std::uint64_t n;
  const std::uint64_t free_head = t.load(hdr_ + kFree);
  if (free_head != 0) {
    n = free_head - 1;
    t.store(hdr_ + kFree, t.load(word(n, kSibling)));  // freelist link
  } else {
    n = t.load(hdr_ + kNext);
    assert(n < capacity_ && "DsmPairingHeap capacity exhausted");
    t.store(hdr_ + kNext, n + 1);
  }
  t.store(word(n, kKey), key);
  t.store(word(n, kChild), std::uint64_t{0});
  t.store(word(n, kSibling), std::uint64_t{0});
  return n;
}

void DsmPairingHeap::free_node(Thread& t, std::uint64_t n) {
  t.store(word(n, kSibling), t.load(hdr_ + kFree));
  t.store(hdr_ + kFree, n + 1);
}

std::uint64_t DsmPairingHeap::merge(Thread& t, std::uint64_t a,
                                    std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  std::uint64_t an = a - 1, bn = b - 1;
  if (t.load(word(bn, kKey)) < t.load(word(an, kKey))) {
    std::swap(a, b);
    std::swap(an, bn);
  }
  t.store(word(bn, kSibling), t.load(word(an, kChild)));
  t.store(word(an, kChild), b);
  return a;
}

void DsmPairingHeap::insert(Thread& t, std::uint64_t key) {
  const std::uint64_t n = alloc_node(t, key);
  t.store(hdr_ + kRoot, merge(t, t.load(hdr_ + kRoot), n + 1));
  t.store(hdr_ + kSize, t.load(hdr_ + kSize) + 1);
}

std::optional<std::uint64_t> DsmPairingHeap::extract_min(Thread& t) {
  const std::uint64_t root = t.load(hdr_ + kRoot);
  if (root == 0) return std::nullopt;
  const std::uint64_t rn = root - 1;
  const std::uint64_t min = t.load(word(rn, kKey));
  std::uint64_t child = t.load(word(rn, kChild));
  free_node(t, rn);
  std::vector<std::uint64_t> pairs;
  while (child != 0) {
    const std::uint64_t a = child;
    const std::uint64_t b = t.load(word(a - 1, kSibling));
    child = (b != 0) ? t.load(word(b - 1, kSibling)) : 0;
    t.store(word(a - 1, kSibling), std::uint64_t{0});
    if (b != 0) t.store(word(b - 1, kSibling), std::uint64_t{0});
    pairs.push_back(merge(t, a, b));
  }
  std::uint64_t merged = 0;
  for (auto it = pairs.rbegin(); it != pairs.rend(); ++it)
    merged = merge(t, merged, *it);
  t.store(hdr_ + kRoot, merged);
  t.store(hdr_ + kSize, t.load(hdr_ + kSize) - 1);
  return min;
}

std::uint64_t DsmPairingHeap::size(Thread& t) { return t.load(hdr_ + kSize); }

// ---------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------

PqResult pq_bench_local(argosync::CriticalSectionExecutor& lock,
                        const argonet::NodeTopology& topo, int threads,
                        const PqParams& p) {
  argosim::Engine eng;
  PairingHeap heap;
  argosync::CachelineSet heap_lines(&topo);
  std::uint64_t ops = 0;
  // Prefill outside the measured window.
  {
    argosim::Rng rng(p.seed);
    for (std::size_t i = 0; i < p.prefill; ++i) heap.insert(rng.next_u64());
  }
  for (int i = 0; i < threads; ++i) {
    const int core = i % topo.cores;
    eng.spawn("t" + std::to_string(i), [&, i, core] {
      argosim::Rng rng(p.seed + static_cast<std::uint64_t>(i) + 1);
      while (argosim::now() < p.duration) {
        // Thread-local work: private array updates, no coherence traffic.
        argosim::delay(static_cast<Time>(p.work_units) * p.ns_per_unit);
        const bool is_insert = rng.next_bool();
        const std::uint64_t key = rng.next_u64() >> 16;
        lock.execute(core,
                     [&, is_insert, key](int exec_core) {
                       if (is_insert)
                         heap.insert(key);
                       else
                         (void)heap.extract_min();
                       heap_lines.touch_n(exec_core, heap.last_visits());
                       argosim::delay(p.op_compute);
                     },
                     /*wait=*/!is_insert);
        ++ops;
      }
    });
  }
  eng.run();
  PqResult r;
  r.ops = ops;
  r.elapsed = p.duration;
  return r;
}

PqResult pq_bench_dsm(Cluster& cl, DsmLockKind kind, const PqParams& p) {
  DsmPairingHeap heap(cl, p.prefill + 4096 +
                              static_cast<std::size_t>(cl.nthreads()) * 64);
  argosync::HqdLock hqdl(cl);
  argosync::DsmCohortLock cohort(cl);
  std::uint64_t ops = 0;
  argosim::Time t_end = 0;
  cl.run([&](Thread& t) {
    if (t.gid() == 0) {
      argosim::Rng rng(p.seed);
      for (std::size_t i = 0; i < p.prefill; ++i)
        heap.insert(t, rng.next_u64() >> 16);
    }
    t.barrier();
    const Time deadline = argosim::now() + p.duration;
    if (t.gid() == 0) t_end = deadline;
    argosim::Rng rng(p.seed + static_cast<std::uint64_t>(t.gid()) + 1);
    while (argosim::now() < deadline) {
      argosim::delay(static_cast<Time>(p.work_units) * p.ns_per_unit);
      const bool is_insert = rng.next_bool();
      const std::uint64_t key = rng.next_u64() >> 16;
      auto cs = [&heap, &p, is_insert, key](Thread& exec) {
        if (is_insert)
          heap.insert(exec, key);
        else
          (void)heap.extract_min(exec);
        exec.compute(p.op_compute);
      };
      if (kind == DsmLockKind::Hqdl)
        hqdl.execute(t, cs, /*wait=*/!is_insert);
      else
        cohort.execute(t, cs);
      ++ops;
    }
  });
  PqResult r;
  r.ops = ops;
  r.elapsed = p.duration;
  return r;
}

}  // namespace argoapps
