// Figure 8: impact of the data classification scheme on execution time —
// S (no classification), naive P/S (private pages checkpointed, not
// downgraded), and the full P/S3 — normalized to S, on 4 nodes.
//
// Expected shape (paper): naive P/S is no better than S on average (its
// checkpointing overhead eats the avoided self-invalidations); P/S3 is
// clearly best (the paper's average is ~0.7x), with the private/shared
// split providing most of the benefit.
#include "bench/apps_common.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);

  // The paper's figure runs on 4 nodes; --nodes 64,128 repeats the
  // comparison at full scale (the multi-word directory range).
  const std::vector<int> node_counts =
      opts.nodes.empty() ? std::vector<int>{4} : opts.nodes;

  const argo::Mode modes[] = {argo::Mode::S, argo::Mode::PSNaive,
                              argo::Mode::PS3};
  const char* mode_names[] = {"S", "PSNaive", "PS3"};
  JsonReport json;
  auto apps = six_apps();
  if (opts.quick) apps.resize(2);
  for (const int nc : node_counts) {
    header("Figure 8",
           Table::fmt("classification impact on execution time "
                      "(%d nodes x 15 threads)",
                      nc)
               .c_str());
    Table t({"benchmark", "S (ms)", "PS naive", "PS3", "PS naive (norm)",
             "PS3 (norm)", "SI invalidations S -> PS3"});
    double sum_naive = 0, sum_ps3 = 0;
    int count = 0;
    for (const AppSpec& app : apps) {
      double ms[3] = {0, 0, 0};
      std::uint64_t si[3] = {0, 0, 0};
      for (int m = 0; m < 3; ++m) {
        auto cfg = paper_cfg(nc, kPaperTpn, app.mem_bytes, modes[m]);
        cfg.net.pipeline = opts.pipeline;
        argo::Cluster cl(cfg);
        ms[m] = argosim::to_ms(app.run(cl));
        si[m] = cl.stats().counter("carina.si_invalidations");
        benchutil::bench_row(json, "fig08", app.name, opts, nc)
            .str("mode", mode_names[m])
            .num("virtual_ms", ms[m])
            .num("si_invalidations", si[m]);
      }
      const double n_naive = ms[1] / ms[0], n_ps3 = ms[2] / ms[0];
      sum_naive += n_naive;
      sum_ps3 += n_ps3;
      ++count;
      t.row({app.name, Table::fmt("%.2f", ms[0]), Table::fmt("%.2f", ms[1]),
             Table::fmt("%.2f", ms[2]), Table::fmt("%.2f", n_naive),
             Table::fmt("%.2f", n_ps3),
             Table::fmt("%llu -> %llu", static_cast<unsigned long long>(si[0]),
                        static_cast<unsigned long long>(si[2]))});
    }
    t.row({"Average", "", "", "", Table::fmt("%.2f", sum_naive / count),
           Table::fmt("%.2f", sum_ps3 / count), ""});
    t.print();
  }
  note("");
  note("Normalized to the S classification (paper Fig. 8: naive P/S ~1.0,");
  note("P/S3 ~0.7 on average; P/S3's private/shared split eliminates most");
  note("self-invalidations).");
  return json.write(opts.json_path) ? 0 : 1;
}
