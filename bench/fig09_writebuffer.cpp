// Figure 9: execution time as a function of the write-buffer size.
//
// Expected shape (paper): below a benchmark-specific critical size the
// runtime explodes (every store forces an eager drain: writebacks
// skyrocket, Fig. 10); above it the curve is flat, with only slight
// degradation at very large buffers (SD fences must drain more at once).
//
// --pipeline <depth> posts the protocol's RDMA instead of blocking on it:
// SD-fence drains overlap their writebacks, so large buffers lose their
// drain penalty. --json records every point; --quick runs a reduced sweep.
#include "bench/apps_common.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 9", "runtime vs write-buffer size (pages), 4 nodes x 15 threads, P/S3");
  if (opts.pipeline > 1)
    note(Table::fmt("pipeline depth %d (posted verbs)", opts.pipeline).c_str());
  if (opts.adapt != 0)
    note(Table::fmt("adaptive policies on (mask %d): the sweep value is the "
                    "*starting* buffer size",
                    opts.adapt)
             .c_str());

  std::vector<std::size_t> sizes{4, 8, 16, 32, 128, 512, 2048, 8192};
  if (opts.quick) sizes = {32, 512, 2048};
  std::vector<std::string> headers{"benchmark"};
  for (std::size_t s : sizes) headers.push_back(Table::fmt("%zu", s));
  Table t(headers);
  JsonReport json;
  auto apps = six_apps(/*write_sweep=*/true);
  if (opts.quick) apps.resize(2);  // Blackscholes + CG cover the knee
  for (const AppSpec& app : apps) {
    std::vector<std::string> row{app.name};
    for (std::size_t wb : sizes) {
      auto cfg = paper_cfg(4, kPaperTpn, app.mem_bytes, argo::Mode::PS3, wb);
      cfg.net.pipeline = opts.pipeline;
      opts.apply_adapt(cfg);
      argo::Cluster cl(cfg);
      const double ms = argosim::to_ms(app.run(cl));
      row.push_back(Table::fmt("%.2f", ms));
      const argo::ClusterStats s = cl.stats();
      const argoobs::LatencyHist sd = s.hist("carina.sd_fence_ns");
      const argoobs::LatencyHist si = s.hist("carina.si_fence_ns");
      // Node 0's write-buffer capacity trajectory: where the adaptive
      // sizing policy walked from the configured starting size. A single
      // entry (the start) means it never moved.
      std::string traj;
      for (std::uint32_t cap : cl.node_cache(0).adapt().wb_capacity_history()) {
        if (!traj.empty()) traj += ',';
        traj += Table::fmt("%u", cap);
      }
      bench_row(json, "fig09", app.name, opts, 4)
          .num("wb", static_cast<std::uint64_t>(wb))
          .num("wb_final",
               static_cast<std::uint64_t>(cl.node_cache(0).wb_capacity()))
          .str("wb_traj", traj)
          .num("virtual_ms", ms)
          .num("sd_fences", sd.samples)
          .num("sd_fence_total_ms", static_cast<double>(sd.total_ns) / 1e6)
          .num("sd_fence_mean_ns", sd.mean_ns())
          .num("sd_fence_max_ns", sd.max_ns)
          .num("si_fence_total_ms", static_cast<double>(si.total_ns) / 1e6)
          .num("writebacks", s.counter("carina.writebacks"))
          .num("read_misses", s.counter("carina.read_misses"))
          .num("pages_fetched", s.counter("carina.pages_fetched"))
          .num("dir_ops", s.counter("carina.dir_ops"))
          .num("posted_ops", s.counter("net.posted_ops"))
          .num("posted_inflight_hwm", s.counter("net.posted_inflight_hwm"))
          .num("adapt_wb_grows", s.counter("carina.adapt.wb_grows"))
          .num("adapt_wb_shrinks", s.counter("carina.adapt.wb_shrinks"))
          .num("adapt_wb_reverts", s.counter("carina.adapt.wb_reverts"))
          .num("adapt_full_page", s.counter("carina.adapt.full_page_selected"))
          .num("adapt_probes", s.counter("carina.adapt.density_probes"))
          .num("adapt_prefetches", s.counter("carina.adapt.prefetch_issued"))
          .num("adapt_prefetched_pages",
               s.counter("carina.adapt.prefetched_pages"))
          .num("adapt_prefetch_useful",
               s.counter("carina.adapt.prefetch_useful"))
          .num("adapt_stride_resets", s.counter("carina.adapt.stride_resets"));
      // Per-node fence histograms for the largest buffer — the regime
      // where the SD drain dominates and pipelining matters most.
      if (wb == sizes.back()) {
        std::printf("\n  %s @ wb=%zu:\n", app.name.c_str(), wb);
        print_fence_histograms(s);
      }
    }
    t.row(std::move(row));
  }
  std::printf("\n");
  t.print();
  note("");
  note("Execution time in virtual ms. Paper Fig. 9: a minimum buffer size is");
  note("required to run well; growing it further neither helps nor hurts much.");
  return json.write(opts.json_path) ? 0 : 1;
}
