// Figure 9: execution time as a function of the write-buffer size.
//
// Expected shape (paper): below a benchmark-specific critical size the
// runtime explodes (every store forces an eager drain: writebacks
// skyrocket, Fig. 10); above it the curve is flat, with only slight
// degradation at very large buffers (SD fences must drain more at once).
#include "bench/apps_common.hpp"

int main() {
  using namespace benchutil;
  header("Figure 9", "runtime vs write-buffer size (pages), 4 nodes x 15 threads, P/S3");

  const std::size_t sizes[] = {4, 8, 16, 32, 128, 512, 2048, 8192};
  std::vector<std::string> headers{"benchmark"};
  for (std::size_t s : sizes) headers.push_back(Table::fmt("%zu", s));
  Table t(headers);
  for (const AppSpec& app : six_apps(/*write_sweep=*/true)) {
    std::vector<std::string> row{app.name};
    for (std::size_t wb : sizes) {
      argo::Cluster cl(
          paper_cfg(4, kPaperTpn, app.mem_bytes, argo::Mode::PS3, wb));
      row.push_back(Table::fmt("%.2f", argosim::to_ms(app.run(cl))));
    }
    t.row(std::move(row));
  }
  t.print();
  note("");
  note("Execution time in virtual ms. Paper Fig. 9: a minimum buffer size is");
  note("required to run well; growing it further neither helps nor hurts much.");
  return 0;
}
