// Figure 1: technology trends for DRAM latency, network latency and
// network bandwidth, normalized to CPU cycles (adapted by the paper from
// Ramesh's thesis). This bench reprints the trend data and derives the
// simulator's default cost model from the latest (2011) column, so the
// connection between the paper's motivation and our NetConfig defaults is
// auditable.
#include "bench/report.hpp"
#include "argo/net.hpp"

int main(int argc, char** argv) {
  using benchutil::Table;
  const benchutil::BenchOpts opts = benchutil::BenchOpts::parse(argc, argv);
  benchutil::header("Figure 1", "technology trends normalized to CPU cycles");

  struct Row {
    int year;
    int cpu_mhz;
    int dram_lat_cycles;
    int net_bw_cycles_per_kb;  // inverse bandwidth
    int net_lat_cycles;
  };
  // The paper's data points (Fig. 1).
  const Row rows[] = {
      {1992, 200, 16, 1092, 40000},  {1994, 500, 35, 2731, 50000},
      {1997, 1000, 70, 3901, 30000}, {2000, 2400, 168, 2313, 24000},
      {2005, 3200, 224, 1311, 4160}, {2007, 3200, 192, 655, 4160},
      {2009, 3300, 165, 211, 3300},  {2011, 3400, 170, 111, 1700},
  };

  Table t({"year", "CPU (MHz)", "DRAM lat (cycles)", "net BW (cycles/KB)",
           "net lat (cycles)", "net/DRAM lat ratio"});
  for (const Row& r : rows)
    t.row({Table::fmt("%d", r.year), Table::fmt("%d", r.cpu_mhz),
           Table::fmt("%d", r.dram_lat_cycles),
           Table::fmt("%d", r.net_bw_cycles_per_kb),
           Table::fmt("%d", r.net_lat_cycles),
           Table::fmt("%.0fx", static_cast<double>(r.net_lat_cycles) /
                                   r.dram_lat_cycles)});
  t.print();

  benchutil::note("");
  benchutil::note("Trend: network latency fell from ~2500x DRAM latency (1992)");
  benchutil::note("to ~10x (2011), while bandwidth kept improving — the paper's");
  benchutil::note("motivation to trade bandwidth for latency and to eliminate");
  benchutil::note("software message handlers.");

  const Row& latest = rows[sizeof(rows) / sizeof(rows[0]) - 1];
  argonet::NetConfig def;
  benchutil::header("derived", "simulator cost-model defaults (NetConfig)");
  Table d({"parameter", "derivation", "default"});
  d.row({"rdma_latency", Table::fmt("%d cycles @ %d MHz", latest.net_lat_cycles,
                                    latest.cpu_mhz),
         Table::fmt("%llu ns", static_cast<unsigned long long>(def.rdma_latency))});
  d.row({"net_bytes_per_ns",
         "paper Fig. 7: measured MPI-RMA plateau ~2.5 GB/s",
         Table::fmt("%.1f B/ns", def.net_bytes_per_ns)});
  d.row({"mem_latency", Table::fmt("%d cycles @ %d MHz", latest.dram_lat_cycles,
                                   latest.cpu_mhz),
         Table::fmt("%llu ns", static_cast<unsigned long long>(def.mem_latency))});
  d.row({"handler_dispatch", "software message handler (active protocols only)",
         Table::fmt("%llu ns", static_cast<unsigned long long>(def.handler_dispatch))});
  d.print();

  benchutil::JsonReport json;
  for (const Row& r : rows)
    json.row()
        .str("fig", "fig01")
        .num("nodes", 0)  // historical trend data: no cluster runs
        .num("year", r.year)
        .num("cpu_mhz", r.cpu_mhz)
        .num("dram_lat_cycles", r.dram_lat_cycles)
        .num("net_bw_cycles_per_kb", r.net_bw_cycles_per_kb)
        .num("net_lat_cycles", r.net_lat_cycles);
  return json.write(opts.json_path) ? 0 : 1;
}
