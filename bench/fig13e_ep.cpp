// Figure 13e: NAS EP — Argo vs OpenMP (single machine) vs UPC.
// (The paper runs class D to 128 nodes; scaled to 2^22 pairs, 32 nodes.)
//
// Expected shape (paper): embarrassingly parallel — everything scales;
// Argo matches the PGAS implementation without PGAS programming effort.
#include "argo/apps.hpp"
#include "bench/fig13_common.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 13e", "NAS EP speedup (2^22 pairs, scaled class)");

  argoapps::EpParams p;
  p.log2_pairs = opts.quick ? 18 : 22;
  p.chunks = opts.quick ? 512 : 4096;

  const auto s = run_argo_scaling(
      [&](argo::Cluster& cl) { return argoapps::ep_run_argo(cl, p).elapsed; },
      4u << 20, opts);

  std::vector<double> upc_ms;
  for (int nc : s.nodes) {
    auto cfg = paper_cfg(nc, kPaperTpn, 4u << 20);
    cfg.net.pipeline = opts.pipeline;
    argo::Cluster cl(cfg);
    upc_ms.push_back(argosim::to_ms(argoapps::ep_run_upc(cl, p).elapsed));
  }

  SpeedupReport rep(s.seq_ms);
  rep.series("OpenMP (1 node)", s.threads, s.pthread_ms, "thr");
  rep.series("Argo (15 thr/node)", s.nodes, s.argo_ms, "nodes");
  rep.series("UPC (15 thr/node)", s.nodes, upc_ms, "nodes");
  rep.print();
  note("Paper Fig. 13e: Argo and UPC scale together up to the largest runs.");
  JsonReport json;
  scaling_rows(json, "fig13e", "openmp", s.threads, s.pthread_ms, s.seq_ms,
               opts, /*fixed_nodes=*/1);
  scaling_rows(json, "fig13e", "argo", s.nodes, s.argo_ms, s.seq_ms, opts);
  scaling_rows(json, "fig13e", "upc", s.nodes, upc_ms, s.seq_ms, opts);
  return json.write(opts.json_path) ? 0 : 1;
}
