// Figure 13e: NAS EP — Argo vs OpenMP (single machine) vs UPC.
// (The paper runs class D to 128 nodes; scaled to 2^22 pairs, 32 nodes.)
//
// Expected shape (paper): embarrassingly parallel — everything scales;
// Argo matches the PGAS implementation without PGAS programming effort.
#include "apps/ep.hpp"
#include "bench/fig13_common.hpp"

int main() {
  using namespace benchutil;
  header("Figure 13e", "NAS EP speedup (2^22 pairs, scaled class)");

  argoapps::EpParams p;
  p.log2_pairs = 22;
  p.chunks = 4096;

  const auto s = run_argo_scaling(
      [&](argo::Cluster& cl) { return argoapps::ep_run_argo(cl, p).elapsed; },
      4u << 20);

  std::vector<double> upc_ms;
  for (int nc : kNodeCounts) {
    argo::Cluster cl(paper_cfg(nc, kPaperTpn, 4u << 20));
    upc_ms.push_back(argosim::to_ms(argoapps::ep_run_upc(cl, p).elapsed));
  }

  SpeedupReport rep(s.seq_ms);
  rep.series("OpenMP (1 node)", kPthreadCounts, s.pthread_ms, "thr");
  rep.series("Argo (15 thr/node)", kNodeCounts, s.argo_ms, "nodes");
  rep.series("UPC (15 thr/node)", kNodeCounts, upc_ms, "nodes");
  rep.print();
  note("Paper Fig. 13e: Argo and UPC scale together up to the largest runs.");
  return 0;
}
