// Ablation (ours, motivated by §1/§3): Argo's handler-free passive
// coherence versus a traditional home-based MSI DSM whose directory is an
// *active* software message handler per node.
//
// Two workloads on identical cost models:
//  1. read-mostly: everyone repeatedly reads a shared table between
//     barriers (traditional DSM serves every miss through a handler and
//     keeps copies coherent; Argo's readers fetch once and, under P/S3,
//     never invalidate);
//  2. migratory: a counter updated in turn by every thread — the critical-
//     section pattern of §1. MSI bounces exclusive ownership through the
//     home with 4+ message-handler dispatches per handoff; Argo pays
//     fences plus direct RDMA.
#include "argo/baseline.hpp"
#include "bench/report.hpp"

using argobaseline::ActiveDsm;
using argobaseline::ActiveThread;
using benchutil::Table;

namespace {

constexpr int kNodes = 4, kTpn = 8;
constexpr int kRounds = 6;
constexpr std::size_t kTableWords = 32768;  // 256 KiB shared table
constexpr int kTurns = 64;                  // migratory handoffs

struct Result {
  double ms;
  std::uint64_t handler_msgs;
};

volatile std::uint64_t benchmarkish_sink;

Result run_argo_read_mostly() {
  auto cfg = benchutil::paper_cfg(kNodes, kTpn, 8u << 20);
  argo::Cluster cl(cfg);
  auto table = cl.alloc<std::uint64_t>(kTableWords);
  for (std::size_t i = 0; i < kTableWords; ++i) cl.host_ptr(table)[i] = i;
  cl.reset_classification();
  const auto t = cl.run([&](argo::Thread& t) {
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buf(kTableWords);
    for (int r = 0; r < kRounds; ++r) {
      t.load_bulk(table, buf.data(), kTableWords);
      for (std::size_t i = 0; i < kTableWords; i += 64) sum += buf[i];
      t.compute(kTableWords * 2);
      t.barrier();
    }
    benchmarkish_sink = sum;
  });
  return {argosim::to_ms(t), 0};
}

Result run_active_read_mostly() {
  ActiveDsm::Config cfg;
  cfg.nodes = kNodes;
  cfg.threads_per_node = kTpn;
  cfg.global_mem_bytes = 8u << 20;
  ActiveDsm dsm(cfg);
  auto table = dsm.alloc<std::uint64_t>(kTableWords);
  for (std::size_t i = 0; i < kTableWords; ++i) *dsm.host_ptr(table + static_cast<std::ptrdiff_t>(i)) = i;
  const auto t = dsm.run([&](ActiveThread& t) {
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buf(kTableWords);
    for (int r = 0; r < kRounds; ++r) {
      t.load_bulk(table, buf.data(), kTableWords);
      for (std::size_t i = 0; i < kTableWords; i += 64) sum += buf[i];
      t.compute(kTableWords * 2);
      t.barrier();
    }
    benchmarkish_sink = sum;
  });
  return {argosim::to_ms(t), dsm.stats().handler_messages};
}

Result run_argo_migratory() {
  auto cfg = benchutil::paper_cfg(kNodes, kTpn, 4u << 20);
  argo::Cluster cl(cfg);
  auto ctr = cl.alloc<std::uint64_t>(1);
  const auto t = cl.run([&](argo::Thread& t) {
    for (int k = 0; k < kTurns; ++k) {
      for (int turn = 0; turn < t.nthreads(); ++turn) {
        if (turn == t.gid()) t.store(ctr, t.load(ctr) + 1);
        t.barrier();
      }
    }
  });
  return {argosim::to_ms(t), 0};
}

Result run_active_migratory() {
  ActiveDsm::Config cfg;
  cfg.nodes = kNodes;
  cfg.threads_per_node = kTpn;
  cfg.global_mem_bytes = 4u << 20;
  ActiveDsm dsm(cfg);
  auto ctr = dsm.alloc<std::uint64_t>(1);
  const auto t = dsm.run([&](ActiveThread& t) {
    for (int k = 0; k < kTurns; ++k) {
      for (int turn = 0; turn < t.nthreads(); ++turn) {
        if (turn == t.gid()) t.store(ctr, t.load(ctr) + 1);
        t.barrier();
      }
    }
  });
  return {argosim::to_ms(t), dsm.stats().handler_messages};
}

}  // namespace

int main() {
  benchutil::header("Ablation",
                    "passive (Argo) vs active-handler (MSI) coherence");
  Table t({"workload", "Argo (ms)", "active DSM (ms)", "active/Argo",
           "handler msgs (active)", "handler msgs (Argo)"});
  {
    const Result a = run_argo_read_mostly();
    const Result m = run_active_read_mostly();
    t.row({"read-mostly table", Table::fmt("%.2f", a.ms),
           Table::fmt("%.2f", m.ms), Table::fmt("%.2fx", m.ms / a.ms),
           Table::fmt("%llu", static_cast<unsigned long long>(m.handler_msgs)),
           "0"});
  }
  {
    const Result a = run_argo_migratory();
    const Result m = run_active_migratory();
    t.row({"migratory counter", Table::fmt("%.2f", a.ms),
           Table::fmt("%.2f", m.ms), Table::fmt("%.2fx", m.ms / a.ms),
           Table::fmt("%llu", static_cast<unsigned long long>(m.handler_msgs)),
           "0"});
  }
  t.print();
  benchutil::note("");
  benchutil::note("Argo's protocol runs zero message handlers: every coherence");
  benchutil::note("action is an RDMA issued by the requesting node (Section 3).");
  return 0;
}
