// Figure 13c: PARSEC blackscholes — a single barrier per iteration; the
// paper's best-scaling benchmark (to 128 nodes / 2048 cores; reproduced
// here to the 32-node directory-encoding cap).
//
// Expected shape (paper): near-linear Argo scaling far past the single
// machine; the MPI port stops scaling earlier (gather/bcast overheads).
#include "argo/apps.hpp"
#include "bench/fig13_common.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 13c", "PARSEC blackscholes speedup (128Ki options, 4 iterations)");

  argoapps::BsParams p;
  p.options = opts.quick ? 32768 : 131072;
  p.iterations = opts.quick ? 2 : 4;

  const auto s = run_argo_scaling(
      [&](argo::Cluster& cl) { return argoapps::bs_run_argo(cl, p).elapsed; },
      24u << 20, opts);

  std::vector<double> mpi_ms;
  for (int nc : s.nodes) {
    argompi::MpiEnv env(nc, kPaperTpn, argonet::NetConfig{});
    mpi_ms.push_back(argosim::to_ms(argoapps::bs_run_mpi(env, p).elapsed));
  }

  SpeedupReport rep(s.seq_ms);
  rep.series("Pthreads (1 node)", s.threads, s.pthread_ms, "thr");
  rep.series("Argo (15 thr/node)", s.nodes, s.argo_ms, "nodes");
  rep.series("MPI (15 ranks/node)", s.nodes, mpi_ms, "nodes");
  rep.print();
  note("Paper Fig. 13c: Argo scales furthest of the whole suite; the MPI");
  note("port stops scaling earlier. (Paper reaches 128 nodes; the default");
  note("sweep stops at 32 — pass --nodes 64,128 for the full range.)");
  JsonReport json;
  scaling_rows(json, "fig13c", "pthreads", s.threads, s.pthread_ms, s.seq_ms,
               opts, /*fixed_nodes=*/1);
  scaling_rows(json, "fig13c", "argo", s.nodes, s.argo_ms, s.seq_ms, opts);
  scaling_rows(json, "fig13c", "mpi", s.nodes, mpi_ms, s.seq_ms, opts);
  return json.write(opts.json_path) ? 0 : 1;
}
