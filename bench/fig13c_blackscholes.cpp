// Figure 13c: PARSEC blackscholes — a single barrier per iteration; the
// paper's best-scaling benchmark (to 128 nodes / 2048 cores; reproduced
// here to the 32-node directory-encoding cap).
//
// Expected shape (paper): near-linear Argo scaling far past the single
// machine; the MPI port stops scaling earlier (gather/bcast overheads).
#include "apps/blackscholes.hpp"
#include "bench/fig13_common.hpp"

int main() {
  using namespace benchutil;
  header("Figure 13c", "PARSEC blackscholes speedup (128Ki options, 4 iterations)");

  argoapps::BsParams p;
  p.options = 131072;
  p.iterations = 4;

  const auto s = run_argo_scaling(
      [&](argo::Cluster& cl) { return argoapps::bs_run_argo(cl, p).elapsed; },
      24u << 20);

  std::vector<double> mpi_ms;
  for (int nc : kNodeCounts) {
    argompi::MpiEnv env(nc, kPaperTpn, argonet::NetConfig{});
    mpi_ms.push_back(argosim::to_ms(argoapps::bs_run_mpi(env, p).elapsed));
  }

  SpeedupReport rep(s.seq_ms);
  rep.series("Pthreads (1 node)", kPthreadCounts, s.pthread_ms, "thr");
  rep.series("Argo (15 thr/node)", kNodeCounts, s.argo_ms, "nodes");
  rep.series("MPI (15 ranks/node)", kNodeCounts, mpi_ms, "nodes");
  rep.print();
  note("Paper Fig. 13c: Argo scales furthest of the whole suite; the MPI");
  note("port stops scaling earlier. (Paper reaches 128 nodes; we cap at 32.)");
  return 0;
}
