// Table 1: which classification states self-invalidate (SI) and
// self-downgrade (SD) under the S, P/S, and P/S3 schemes.
//
// The table is generated from the *live* policy code (core/policy.hpp) so
// it can never drift from the implementation; the naive P/S variant
// evaluated in §5.1 is shown as a fourth column.
#include "bench/report.hpp"
#include "argo/argo.hpp"

using argocore::DirEntry;
using argocore::Mode;
using argocore::SdAction;

namespace {

struct State {
  const char* name;
  const char* comment;
  DirEntry entry;  // as seen by node 0 ("me")
};

std::string si_sd(Mode m, const State& s) {
  const bool si = argocore::si_required(m, s.entry, 0);
  const bool sd =
      argocore::sd_action(m, s.entry, 0) == SdAction::WriteBack;
  std::string out;
  out += si ? "SI" : "--";
  out += " ";
  out += sd ? "SD" : (m == Mode::PSNaive ? "CK" : "--");
  return out;
}

}  // namespace

int main() {
  benchutil::header("Table 1",
                    "classification x (SI, SD) matrix, from live policy code");

  // Node 0 is "me", node 1 the other sharer; the entry builders place the
  // bits in whatever word covers each node.
  const State states[] = {
      {"P", "private to me", DirEntry::accessor(0)},
      {"S,NW", "shared, no writers",
       DirEntry::reader(0).add_reader(1)},
      {"S,SW(me)", "shared, I am the single writer",
       DirEntry::reader(0).add_reader(1).add_writer(0)},
      {"S,SW(other)", "shared, another node is the single writer",
       DirEntry::reader(0).add_reader(1).add_writer(1)},
      {"S,MW", "shared, multiple writers",
       DirEntry::reader(0).add_reader(1).add_writer(0).add_writer(1)},
  };

  benchutil::Table t({"state", "S", "P/S(naive)", "P/S", "P/S3", "meaning"});
  for (const State& s : states)
    t.row({s.name, si_sd(Mode::S, s), si_sd(Mode::PSNaive, s),
           si_sd(Mode::PS, s), si_sd(Mode::PS3, s), s.comment});
  t.print();

  benchutil::note("");
  benchutil::note("SI = self-invalidate at acquire fences; SD = self-downgrade");
  benchutil::note("dirty data at release fences; CK = naive P/S checkpoints the");
  benchutil::note("page locally instead of downgrading (the Section 5.1 strawman);");
  benchutil::note("-- = no action needed. As in the paper's Table 1, private pages");
  benchutil::note("self-downgrade under P/S and P/S3 so that P->S transitions never");
  benchutil::note("need an active agent.");
  return 0;
}
