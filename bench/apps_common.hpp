// The six-benchmark suite used by Figures 8, 9 and 10, with workloads
// scaled to simulator size (the paper's inputs, run on 64 real cores for
// minutes, are scaled down so the whole sweep finishes in seconds of host
// time; shapes are preserved because every cost is relative).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "argo/apps.hpp"
#include "bench/report.hpp"

namespace benchutil {

struct AppSpec {
  std::string name;
  std::size_t mem_bytes;                          // global memory to size
  std::function<Time(argo::Cluster&)> run;        // returns virtual time
};

/// The six-benchmark suite. `write_sweep` selects the Figure 9/10 variant:
/// larger write working sets (hundreds of pages per node) so the write
/// buffer's capacity actually gates the runs — the paper's workloads were
/// GB-scale, so its knees sat at thousands of pages; ours scale down with
/// the working sets.
inline std::vector<AppSpec> six_apps(bool write_sweep = false) {
  using namespace argoapps;
  std::vector<AppSpec> apps;
  {
    BsParams p;
    p.options = write_sweep ? 262144 : 32768;
    p.iterations = write_sweep ? 2 : 6;
    apps.push_back({"Blackscholes", write_sweep ? (32u << 20) : (8u << 20),
                    [p](argo::Cluster& cl) {
                      return bs_run_argo(cl, p).elapsed;
                    }});
  }
  {
    CgParams p;
    p.n = write_sweep ? 32768 : 8192;
    p.iterations = write_sweep ? 8 : 10;
    apps.push_back({"CG", write_sweep ? (8u << 20) : (4u << 20),
                    [p](argo::Cluster& cl) {
                      return cg_run_argo(cl, p).elapsed;
                    }});
  }
  {
    EpParams p;
    p.log2_pairs = 18;
    p.chunks = 512;
    apps.push_back({"EP", 2u << 20, [p](argo::Cluster& cl) {
                      return ep_run_argo(cl, p).elapsed;
                    }});
  }
  {
    LuParams p;
    p.n = write_sweep ? 512 : 384;
    p.block = 32;
    apps.push_back({"LU", 8u << 20, [p](argo::Cluster& cl) {
                      return lu_run_argo(cl, p).elapsed;
                    }});
  }
  {
    MmParams p;
    p.n = write_sweep ? 576 : 192;
    p.iterations = write_sweep ? 1 : 3;
    apps.push_back({"MM", write_sweep ? (16u << 20) : (4u << 20),
                    [p](argo::Cluster& cl) {
                      return mm_run_argo(cl, p).elapsed;
                    }});
  }
  {
    NbodyParams p;
    p.bodies = write_sweep ? 4096 : 1024;
    p.steps = write_sweep ? 2 : 5;
    apps.push_back({"Nbody", 8u << 20, [p](argo::Cluster& cl) {
                      return nbody_run_argo(cl, p).elapsed;
                    }});
  }
  return apps;
}

}  // namespace benchutil
