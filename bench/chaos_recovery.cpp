// Recovery-latency sweep: one node crash-stops mid-run and the membership
// service detects it by heartbeat timeout, re-homes its pages on a
// successor, and lease-recovers any lock it stranded. This bench sweeps
// the heartbeat interval and reports, per setting:
//
//   * detection latency  (crash -> first declaration; the failure-detector
//     cost, bounded by heartbeat * (miss_threshold + 1)),
//   * recovery latency   (declaration -> pages + directory rebuilt),
//   * lock-recovery latency bound (detection + lease),
//   * aborted posted ops and pages recovered / lost.
//
// The workload keeps every survivor writing pages homed on the victim, so
// the crash lands on in-flight protocol traffic, not an idle cluster.
// EXPERIMENTS.md records the measured table. Emits BENCH_recovery.json
// rows (schema 2) via --json; scripts/bench_json.sh --chaos drives it.
#include <cstdint>

#include "argo/argo.hpp"
#include "argo/net.hpp"
#include "argo/stats.hpp"
#include "bench/report.hpp"

namespace {

using argo::Cluster;
using argo::ClusterConfig;
using argomem::kPageSize;
using argosim::Time;
using benchutil::BenchOpts;
using benchutil::JsonReport;
using benchutil::Table;

constexpr int kVictim = 3;
constexpr Time kCrashAt = 300'000;

struct RunResult {
  Time elapsed = 0;
  argocore::RecoveryStats stats;
};

RunResult run_once(Time heartbeat, int pipeline) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.threads_per_node = 2;
  cfg.global_mem_bytes = 2048 * kPageSize;
  cfg.cache.cache_lines = 8192;
  // A tiny write buffer keeps eviction writebacks streaming to the
  // victim's home, so the crash lands on in-flight posted traffic.
  cfg.cache.write_buffer_pages = 8;
  cfg.net.pipeline = pipeline;
  cfg.faults.enabled = true;  // crash schedules ride the fault channel
  cfg.faults.seed = 1;
  cfg.faults.crashes.push_back(
      argonet::CrashEvent{.node = kVictim, .at = kCrashAt});
  cfg.membership.enabled = true;
  cfg.membership.heartbeat_interval = heartbeat;

  Cluster cl(cfg);
  // Survivors hammer pages homed on the victim: the bottom of its blocked
  // region, eight pages per thread.
  const argomem::gptr<std::uint64_t> data{
      static_cast<std::uint64_t>(kVictim) * cl.gmem().pages_per_node() *
      kPageSize};
  constexpr std::uint64_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);
  constexpr std::uint64_t kPagesPerThread = 24;
  constexpr int kRounds = 12;

  RunResult r;
  r.elapsed = cl.run([&](argo::Thread& t) {
    const std::uint64_t base =
        static_cast<std::uint64_t>(t.gid()) * kPagesPerThread;
    for (int round = 0; round < kRounds; ++round) {
      if (t.node() != kVictim) {
        for (std::uint64_t p = 0; p < kPagesPerThread; ++p)
          t.store(data + (base + p) * kWordsPerPage,
                  static_cast<std::uint64_t>(round) * 1000 + t.gid());
      }
      t.compute(5'000);
      t.barrier();
    }
  });
  r.stats = cl.membership().stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  benchutil::header("recovery",
                    "crash detection and recovery latency vs heartbeat");

  std::vector<Time> heartbeats =
      opts.quick ? std::vector<Time>{25'000, 100'000}
                 : std::vector<Time>{10'000, 25'000, 50'000, 100'000, 200'000};

  JsonReport json;
  Table table({"heartbeat_us", "detect_us", "recover_us", "lock_bound_us",
               "aborted", "pages_rec", "pages_lost", "elapsed_ms"});
  for (const Time hb : heartbeats) {
    const RunResult r = run_once(hb, opts.pipeline);
    const argocore::RecoveryStats& s = r.stats;
    const double detect_us = s.detect_ns.mean_ns() / 1e3;
    const double recover_us = s.recovery_ns.mean_ns() / 1e3;
    // A lock held by the victim is recovered by the lease sweep, which runs
    // at most one heartbeat after detection + lease.
    const Time lease = argocore::MembershipConfig{}.lease;
    const double lock_bound_us =
        detect_us + static_cast<double>(lease + hb) / 1e3;
    table.row({Table::fmt("%.0f", static_cast<double>(hb) / 1e3),
               Table::fmt("%.1f", detect_us), Table::fmt("%.1f", recover_us),
               Table::fmt("%.1f", lock_bound_us),
               Table::fmt("%llu", (unsigned long long)s.aborted_ops),
               Table::fmt("%llu", (unsigned long long)s.pages_recovered),
               Table::fmt("%llu", (unsigned long long)s.pages_lost),
               Table::fmt("%.3f", static_cast<double>(r.elapsed) / 1e6)});
    benchutil::bench_row(json, "recovery", "series",
                         Table::fmt("hb%llu", (unsigned long long)hb), opts,
                         4)
        .num("heartbeat_ns", static_cast<std::uint64_t>(hb))
        .num("detect_ns", s.detect_ns.mean_ns())
        .num("recover_ns", s.recovery_ns.mean_ns())
        .num("aborted_ops", s.aborted_ops)
        .num("pages_recovered", s.pages_recovered)
        .num("pages_lost", s.pages_lost)
        .num("locks_recovered", s.locks_recovered)
        .num("deaths", s.deaths)
        .num("elapsed_virtual_ms", static_cast<double>(r.elapsed) / 1e6);
  }
  table.print();
  benchutil::note(
      "detection ~ heartbeat * (miss_threshold + alignment); recovery is "
      "dominated by re-copying survivor pages to the successor home.");
  if (!json.write(opts.json_path)) return 1;
  return 0;
}
