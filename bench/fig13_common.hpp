// Shared machinery for the Figure 13 scaling benches: speedup series over
// node counts, normalized (as in the paper) to a single-threaded run.
//
// Scale note: the paper runs up to 128 nodes / 2048 cores; the directory
// word encoding caps this reproduction at 32 nodes / 480 threads, and
// workloads are scaled to simulator size (see EXPERIMENTS.md).
#pragma once

#include <functional>

#include "bench/report.hpp"

namespace benchutil {

inline const std::vector<int> kNodeCounts{1, 2, 4, 8, 16, 32};
inline const std::vector<int> kPthreadCounts{1, 2, 4, 8, 15};

/// Print a speedup table: one row per series, one column per node count
/// (plus single-node thread counts for the Pthreads/OpenMP series).
struct SpeedupReport {
  explicit SpeedupReport(double t_seq_ms) : t_seq_ms_(t_seq_ms) {}

  void series(const std::string& name, const std::vector<int>& xs,
              const std::vector<double>& times_ms, const char* x_unit) {
    rows_.push_back({name, xs, times_ms, x_unit});
  }

  void print() const {
    Table t({"series", "x", "time (ms)", "speedup"});
    for (const auto& r : rows_)
      for (std::size_t i = 0; i < r.xs.size(); ++i)
        t.row({i == 0 ? r.name : "",
               Table::fmt("%d %s", r.xs[i], r.unit),
               Table::fmt("%.3f", r.times[i]),
               Table::fmt("%.1fx", t_seq_ms_ / r.times[i])});
    t.print();
    note("");
    note(Table::fmt("sequential baseline: %.3f ms (1 node, 1 thread)",
                    t_seq_ms_)
             .c_str());
  }

 private:
  struct Row {
    std::string name;
    std::vector<int> xs;
    std::vector<double> times;
    const char* unit;
  };
  double t_seq_ms_;
  std::vector<Row> rows_;
};

/// Run an argo-backend app over the standard node counts (15 threads per
/// node) and single-node thread counts ("Pthreads"/"OpenMP" series).
struct ArgoScaling {
  std::vector<double> argo_ms;      // per kNodeCounts
  std::vector<double> pthread_ms;   // per kPthreadCounts
  double seq_ms = 0;
};

inline ArgoScaling run_argo_scaling(
    const std::function<argosim::Time(argo::Cluster&)>& run,
    std::size_t mem_bytes) {
  // Like the paper's runs, the global memory is sized to the (fixed)
  // workload whatever the node count: every node serves an equal share, so
  // the blocked home distribution spreads the data over all nodes.
  ArgoScaling out;
  {
    argo::Cluster cl(paper_cfg(1, 1, mem_bytes));
    out.seq_ms = argosim::to_ms(run(cl));
  }
  for (int tc : kPthreadCounts) {
    argo::Cluster cl(paper_cfg(1, tc, mem_bytes));
    out.pthread_ms.push_back(argosim::to_ms(run(cl)));
  }
  for (int nc : kNodeCounts) {
    argo::Cluster cl(paper_cfg(nc, kPaperTpn, mem_bytes));
    out.argo_ms.push_back(argosim::to_ms(run(cl)));
  }
  return out;
}

}  // namespace benchutil
