// Shared machinery for the Figure 13 scaling benches: speedup series over
// node counts, normalized (as in the paper) to a single-threaded run.
//
// Scale note: the multi-word directory encoding covers the paper's full
// range (up to 128 nodes / 1920 worker threads; pass --nodes 64,128 for
// the large points); the default sweep stops at 32 nodes to keep run time
// down, and workloads are scaled to simulator size (see EXPERIMENTS.md).
#pragma once

#include <functional>

#include "bench/report.hpp"

namespace benchutil {

inline const std::vector<int> kNodeCounts{1, 2, 4, 8, 16, 32};
inline const std::vector<int> kPthreadCounts{1, 2, 4, 8, 15};

/// Print a speedup table: one row per series, one column per node count
/// (plus single-node thread counts for the Pthreads/OpenMP series).
struct SpeedupReport {
  explicit SpeedupReport(double t_seq_ms) : t_seq_ms_(t_seq_ms) {}

  void series(const std::string& name, const std::vector<int>& xs,
              const std::vector<double>& times_ms, const char* x_unit) {
    rows_.push_back({name, xs, times_ms, x_unit});
  }

  void print() const {
    Table t({"series", "x", "time (ms)", "speedup"});
    for (const auto& r : rows_)
      for (std::size_t i = 0; i < r.xs.size(); ++i)
        t.row({i == 0 ? r.name : "",
               Table::fmt("%d %s", r.xs[i], r.unit),
               Table::fmt("%.3f", r.times[i]),
               Table::fmt("%.1fx", t_seq_ms_ / r.times[i])});
    t.print();
    note("");
    note(Table::fmt("sequential baseline: %.3f ms (1 node, 1 thread)",
                    t_seq_ms_)
             .c_str());
  }

 private:
  struct Row {
    std::string name;
    std::vector<int> xs;
    std::vector<double> times;
    const char* unit;
  };
  double t_seq_ms_;
  std::vector<Row> rows_;
};

/// Run an argo-backend app over the standard node counts (15 threads per
/// node) and single-node thread counts ("Pthreads"/"OpenMP" series).
struct ArgoScaling {
  std::vector<int> nodes;           // node counts actually run
  std::vector<int> threads;         // single-node thread counts actually run
  std::vector<double> argo_ms;      // per nodes
  std::vector<double> pthread_ms;   // per threads
  double seq_ms = 0;
};

inline ArgoScaling run_argo_scaling(
    const std::function<argosim::Time(argo::Cluster&)>& run,
    std::size_t mem_bytes, const BenchOpts& opts = BenchOpts{}) {
  // Like the paper's runs, the global memory is sized to the (fixed)
  // workload whatever the node count: every node serves an equal share, so
  // the blocked home distribution spreads the data over all nodes.
  // --nodes pins the Argo series to the listed node counts ("--nodes 32"
  // or "--nodes 64,128") and drops the single-node Pthreads series and
  // sequential baseline — the shape both the parallel-engine wall-clock
  // sweep (scripts/bench_host.sh --threads) and the full-scale 64/128-node
  // reproduction want, where only the cluster runs are of interest.
  ArgoScaling out;
  out.nodes = !opts.nodes.empty()
                  ? opts.nodes
                  : (opts.quick ? std::vector<int>{1, 2, 4} : kNodeCounts);
  out.threads = !opts.nodes.empty()
                    ? std::vector<int>{}
                    : (opts.quick ? std::vector<int>{1, 4} : kPthreadCounts);
  if (opts.nodes.empty()) {
    auto cfg = paper_cfg(1, 1, mem_bytes);
    cfg.net.pipeline = opts.pipeline;
    opts.apply_adapt(cfg);
    argo::Cluster cl(cfg);
    out.seq_ms = argosim::to_ms(run(cl));
  }
  for (int tc : out.threads) {
    auto cfg = paper_cfg(1, tc, mem_bytes);
    cfg.net.pipeline = opts.pipeline;
    opts.apply_adapt(cfg);
    argo::Cluster cl(cfg);
    out.pthread_ms.push_back(argosim::to_ms(run(cl)));
  }
  for (int nc : out.nodes) {
    auto cfg = paper_cfg(nc, kPaperTpn, mem_bytes);
    cfg.net.pipeline = opts.pipeline;
    opts.apply_adapt(cfg);
    argo::Cluster cl(cfg);
    out.argo_ms.push_back(argosim::to_ms(run(cl)));
  }
  // Without a 1-thread baseline the speedup column normalizes to the first
  // measured point (prints 1.0x) rather than dividing by zero.
  if (!opts.nodes.empty() && !out.argo_ms.empty()) out.seq_ms = out.argo_ms[0];
  return out;
}

/// Append one JSON row per point of a scaling series. `fixed_nodes` is the
/// cluster node count stamped on every row; the default -1 means the xs
/// ARE node counts (the Argo/MPI/UPC series), so each point stamps its own
/// x. Single-machine series (Pthreads/OpenMP, xs = thread counts) pass 1.
inline void scaling_rows(JsonReport& json, const char* fig, const char* series,
                         const std::vector<int>& xs,
                         const std::vector<double>& times_ms, double seq_ms,
                         const BenchOpts& opts, int fixed_nodes = -1) {
  for (std::size_t i = 0; i < xs.size() && i < times_ms.size(); ++i)
    bench_row(json, fig, "series", series, opts,
              fixed_nodes >= 0 ? fixed_nodes : xs[i])
        .num("x", xs[i])
        .num("virtual_ms", times_ms[i])
        .num("speedup", seq_ms / times_ms[i]);
}

}  // namespace benchutil
