// Figure 10: number of page writebacks as a function of the write-buffer
// size — the mechanism behind Figure 9's runtime curve: small buffers
// force eager drains, re-dirtying and re-flushing the same pages over and
// over; once the buffer holds the write working set, writebacks bottom out
// at the self-downgrade minimum.
#include "bench/apps_common.hpp"

int main() {
  using namespace benchutil;
  header("Figure 10", "writebacks vs write-buffer size (pages), 4 nodes x 15 threads, P/S3");

  const std::size_t sizes[] = {4, 8, 16, 32, 128, 512, 2048, 8192};
  std::vector<std::string> headers{"benchmark"};
  for (std::size_t s : sizes) headers.push_back(Table::fmt("%zu", s));
  Table t(headers);
  for (const AppSpec& app : six_apps(/*write_sweep=*/true)) {
    std::vector<std::string> row{app.name};
    for (std::size_t wb : sizes) {
      argo::Cluster cl(
          paper_cfg(4, kPaperTpn, app.mem_bytes, argo::Mode::PS3, wb));
      (void)app.run(cl);
      row.push_back(Table::fmt(
          "%llu",
          static_cast<unsigned long long>(cl.coherence_stats().writebacks)));
    }
    t.row(std::move(row));
  }
  t.print();
  note("");
  note("Paper Fig. 10: writeback counts correlate with Fig. 9's runtimes and");
  note("flatten once the buffer covers the benchmark's write working set.");
  return 0;
}
