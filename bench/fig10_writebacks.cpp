// Figure 10: number of page writebacks as a function of the write-buffer
// size — the mechanism behind Figure 9's runtime curve: small buffers
// force eager drains, re-dirtying and re-flushing the same pages over and
// over; once the buffer holds the write working set, writebacks bottom out
// at the self-downgrade minimum.
//
// Writeback *counts* are pipeline-invariant (posting changes when a
// transfer completes, not whether it happens); --pipeline is still honored
// so the fence-duration histograms can be compared against Figure 9's.
#include "bench/apps_common.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 10", "writebacks vs write-buffer size (pages), 4 nodes x 15 threads, P/S3");
  if (opts.pipeline > 1)
    note(Table::fmt("pipeline depth %d (posted verbs)", opts.pipeline).c_str());

  std::vector<std::size_t> sizes{4, 8, 16, 32, 128, 512, 2048, 8192};
  if (opts.quick) sizes = {32, 512, 2048};
  std::vector<std::string> headers{"benchmark"};
  for (std::size_t s : sizes) headers.push_back(Table::fmt("%zu", s));
  Table t(headers);
  JsonReport json;
  auto apps = six_apps(/*write_sweep=*/true);
  if (opts.quick) apps.resize(2);
  for (const AppSpec& app : apps) {
    std::vector<std::string> row{app.name};
    for (std::size_t wb : sizes) {
      auto cfg = paper_cfg(4, kPaperTpn, app.mem_bytes, argo::Mode::PS3, wb);
      cfg.net.pipeline = opts.pipeline;
      argo::Cluster cl(cfg);
      const double ms = argosim::to_ms(app.run(cl));
      const argo::ClusterStats s = cl.stats();
      row.push_back(Table::fmt(
          "%llu",
          static_cast<unsigned long long>(s.counter("carina.writebacks"))));
      bench_row(json, "fig10", app.name, opts, 4)
          .num("wb", static_cast<std::uint64_t>(wb))
          .num("virtual_ms", ms)
          .num("writebacks", s.counter("carina.writebacks"))
          .num("writeback_bytes", s.counter("carina.writeback_bytes"))
          .num("diffs_built", s.counter("carina.diffs_built"))
          .num("sd_fence_mean_ns", s.hist("carina.sd_fence_ns").mean_ns());
      if (wb == sizes.back()) {
        std::printf("\n  %s @ wb=%zu:\n", app.name.c_str(), wb);
        print_fence_histograms(s);
      }
    }
    t.row(std::move(row));
  }
  std::printf("\n");
  t.print();
  note("");
  note("Paper Fig. 10: writeback counts correlate with Fig. 9's runtimes and");
  note("flatten once the buffer covers the benchmark's write working set.");
  return json.write(opts.json_path) ? 0 : 1;
}
