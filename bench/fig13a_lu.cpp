// Figure 13a: SPLASH-2 LU scaling — Argo (up to 32 nodes, 15 threads
// each) versus the Pthreads version on a single machine.
//
// Expected shape (paper): heavy block migration gives Argo significant
// overhead, but multiple nodes still beat the single machine, gaining up
// to ~8 nodes before flattening.
#include "argo/apps.hpp"
#include "bench/fig13_common.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 13a", "SPLASH-2 LU speedup (n=768, 32x32 blocks)");

  argoapps::LuParams p;
  p.n = opts.quick ? 384 : 768;
  p.block = 32;

  const auto s = run_argo_scaling(
      [&](argo::Cluster& cl) { return argoapps::lu_run_argo(cl, p).elapsed; },
      16u << 20, opts);
  SpeedupReport rep(s.seq_ms);
  rep.series("Pthreads (1 node)", s.threads, s.pthread_ms, "thr");
  rep.series("Argo (15 thr/node)", s.nodes, s.argo_ms, "nodes");
  rep.print();
  note("Paper Fig. 13a: Argo overtakes single-machine Pthreads and keeps");
  note("gaining up to ~8 nodes despite the data migration.");
  JsonReport json;
  scaling_rows(json, "fig13a", "pthreads", s.threads, s.pthread_ms, s.seq_ms,
               opts, /*fixed_nodes=*/1);
  scaling_rows(json, "fig13a", "argo", s.nodes, s.argo_ms, s.seq_ms, opts);
  return json.write(opts.json_path) ? 0 : 1;
}
