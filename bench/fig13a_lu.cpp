// Figure 13a: SPLASH-2 LU scaling — Argo (up to 32 nodes, 15 threads
// each) versus the Pthreads version on a single machine.
//
// Expected shape (paper): heavy block migration gives Argo significant
// overhead, but multiple nodes still beat the single machine, gaining up
// to ~8 nodes before flattening.
#include "apps/lu.hpp"
#include "bench/fig13_common.hpp"

int main() {
  using namespace benchutil;
  header("Figure 13a", "SPLASH-2 LU speedup (n=768, 32x32 blocks)");

  argoapps::LuParams p;
  p.n = 768;
  p.block = 32;

  const auto s = run_argo_scaling(
      [&](argo::Cluster& cl) { return argoapps::lu_run_argo(cl, p).elapsed; },
      16u << 20);
  SpeedupReport rep(s.seq_ms);
  rep.series("Pthreads (1 node)", kPthreadCounts, s.pthread_ms, "thr");
  rep.series("Argo (15 thr/node)", kNodeCounts, s.argo_ms, "nodes");
  rep.print();
  note("Paper Fig. 13a: Argo overtakes single-machine Pthreads and keeps");
  note("gaining up to ~8 nodes despite the data migration.");
  return 0;
}
