// Engine microbenchmarks: the scheduler hot paths measured in isolation,
// in *wall-clock* time (everything else in bench/ reports virtual time).
// Three probes, one per tentpole axis of the host-performance work:
//
//   fiber_switch  ping-pong context switches between simulated threads —
//                 the fcontext vs ucontext cost, divided out per switch
//                 using the engine's own sim.context_switches counter
//   runq_hold     the classic calendar-queue "hold" model: a steady-state
//                 queue where every op pops the minimum and re-pushes it a
//                 random horizon ahead; swept across horizon spreads to
//                 cover dense (same-day) and sparse (day-scan) regimes
//   posted_rtt    post_read + wait round trips through the interconnect's
//                 posted send queue — the pooled-record / SmallFn path
//
// Every row stamps the active backends ("fcontext"/"ucontext" and
// "calendar"/"heap"), so a fast run and an ARGO_SLOW_PATHS=1 run of this
// binary differ only in those stamps and the wall-clock columns — which is
// exactly the comparison scripts/check.sh and CI make.
#include <chrono>
#include <cstdint>
#include <cstdlib>

#include "argo/net.hpp"
#include "argo/sim.hpp"
#include "bench/report.hpp"

namespace {

using argosim::Engine;
using argosim::EventQueue;
using argosim::Time;
using benchutil::BenchOpts;
using benchutil::JsonReport;
using benchutil::Table;

double wall_ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Row prefix shared by the three probes: the figure id, the probe name,
/// and the two backend stamps that distinguish fast from slow runs.
JsonReport::Row& mb_row(JsonReport& json, const char* probe,
                        const BenchOpts& opts, int nodes, bool calendar) {
  return benchutil::bench_row(json, "microbench", "bench", probe, opts, nodes)
      .str("context_backend", Engine::context_backend())
      .str("runq_backend", calendar ? "calendar" : "heap");
}

// --- fiber_switch -----------------------------------------------------------

/// F fibers, each yielding `iters` times via delay(1). Every delay parks
/// the caller and resumes another runnable fiber, so the engine's switch
/// counter divides the wall time into a cost per context switch.
void bench_fiber_switch(JsonReport& json, const BenchOpts& opts,
                        bool calendar) {
  const int fibers = 4;
  const int iters = opts.quick ? 5000 : 50000;
  Engine eng;
  for (int f = 0; f < fibers; ++f)
    eng.spawn(Table::fmt("ping%d", f), [iters] {
      for (int i = 0; i < iters; ++i) argosim::delay(1);
    });
  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  const double wall = wall_ns_since(t0);
  const std::uint64_t switches = eng.context_switches();
  const double per = switches != 0 ? wall / static_cast<double>(switches) : 0.0;
  Table t({"fibers", "yields/fiber", "switches", "wall_ms", "ns/switch"});
  t.row({Table::fmt("%d", fibers), Table::fmt("%d", iters),
         Table::fmt("%llu", static_cast<unsigned long long>(switches)),
         Table::fmt("%.2f", wall / 1e6), Table::fmt("%.1f", per)});
  t.print();
  mb_row(json, "fiber_switch", opts, 0, calendar)
      .num("fibers", fibers)
      .num("iters", iters)
      .num("switches", switches)
      .num("wall_ms", wall / 1e6)
      .num("ns_per_switch", per);
}

// --- runq_hold --------------------------------------------------------------

struct HoldEntry {
  Time when = 0;
  std::uint64_t seq = 0;
  bool operator>(const HoldEntry& o) const {
    if (when != o.when) return when > o.when;
    return seq > o.seq;
  }
};

/// Steady-state hold: `qsize` entries live, each op pops the minimum and
/// re-pushes it a random horizon ahead. Narrow spreads keep every push in
/// the current calendar day (sorted-rung insert); wide spreads scatter
/// pushes across buckets and exercise the day-scan. The heap reference
/// (ARGO_SLOW_PATHS=1) sees the same op sequence.
void bench_runq_hold(JsonReport& json, const BenchOpts& opts, bool calendar) {
  const std::size_t qsize = 4096;
  const int iters = opts.quick ? 20000 : 200000;
  const std::uint64_t spreads[] = {256, 64 * 1024, 16 * 1024 * 1024};
  Table t({"spread_ns", "qsize", "ops", "wall_ms", "ns/op", "resizes"});
  for (std::uint64_t spread : spreads) {
    EventQueue<HoldEntry> q;
    argosim::Rng rng(0x9e3779b97f4a7c15ull ^ spread);
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < qsize; ++i)
      q.push({rng.next_below(spread), seq++});
    Time last = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      HoldEntry e = q.top();
      q.pop();
      if (e.when < last) std::abort();  // ordering violated: not a benchmark
      last = e.when;
      e.when += rng.next_below(spread) + 1;
      e.seq = seq++;
      q.push(std::move(e));
    }
    const double wall = wall_ns_since(t0);
    const double per = wall / static_cast<double>(iters);
    t.row({Table::fmt("%llu", static_cast<unsigned long long>(spread)),
           Table::fmt("%zu", qsize), Table::fmt("%d", iters),
           Table::fmt("%.2f", wall / 1e6), Table::fmt("%.1f", per),
           Table::fmt("%llu", static_cast<unsigned long long>(q.resizes()))});
    mb_row(json, "runq_hold", opts, 0, calendar)
        .num("spread_ns", spread)
        .num("qsize", static_cast<std::uint64_t>(qsize))
        .num("ops", iters)
        .num("wall_ms", wall / 1e6)
        .num("ns_per_op", per)
        .num("resizes", q.resizes());
  }
  t.print();
}

// --- posted_rtt -------------------------------------------------------------

/// post_read + wait round trips on a two-node interconnect. At pipeline
/// depth 1 the post *is* the blocking verb; at depth > 1 each trip runs
/// the full posted path: record acquisition (pool), effect closures
/// (SmallFn), the send-queue retire effect, and the completion wake.
void bench_posted_rtt(JsonReport& json, const BenchOpts& opts, bool calendar) {
  const int iters = opts.quick ? 2000 : 20000;
  argonet::NetConfig cfg;
  cfg.pipeline = opts.pipeline;
  Engine eng;
  argonet::Interconnect net(2, cfg);
  std::uint64_t remote = 0x5ca1ab1e;
  std::uint64_t local = 0;
  double wall = 0.0;
  eng.spawn("rtt", [&] {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      argonet::PostedHandle h = net.post_read(0, 1, &remote, &local, 8);
      net.wait(h);
    }
    wall = wall_ns_since(t0);
  });
  eng.run();
  const double per = wall / static_cast<double>(iters);
  Table t({"pipeline", "round_trips", "wall_ms", "ns/rtt", "posted_ops"});
  t.row({Table::fmt("%d", opts.pipeline), Table::fmt("%d", iters),
         Table::fmt("%.2f", wall / 1e6), Table::fmt("%.1f", per),
         Table::fmt("%llu",
                    static_cast<unsigned long long>(net.stats(0).posted_ops))});
  t.print();
  mb_row(json, "posted_rtt", opts, 2, calendar)
      .num("round_trips", iters)
      .num("wall_ms", wall / 1e6)
      .num("ns_per_rtt", per)
      .num("posted_ops", net.stats(0).posted_ops);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  const bool calendar = !argosim::slow_paths();
  header("Engine microbench",
         "scheduler hot paths in wall-clock time (fiber switch, run-queue "
         "hold, posted round-trip)");
  note(Table::fmt("context backend: %s, run queue: %s",
                  Engine::context_backend(), calendar ? "calendar" : "heap")
           .c_str());
  if (opts.pipeline > 1)
    note(Table::fmt("pipeline depth %d (posted verbs)", opts.pipeline).c_str());

  JsonReport json;
  bench_fiber_switch(json, opts, calendar);
  bench_runq_hold(json, opts, calendar);
  bench_posted_rtt(json, opts, calendar);
  json.write(opts.json_path);
  return 0;
}
