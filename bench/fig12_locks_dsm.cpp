// Figure 12: scaling of lock-synchronized code over the DSM — the same
// priority-queue microbenchmark with the pairing heap in Argo's global
// memory, 15 threads per node, 1..32 nodes.
//
// Expected shape (paper): Argo's HQDL drops ~40% going from one node to
// two (remote lock handovers + the batch SI/SD fences appear), then stays
// roughly flat as nodes are added, and dominates the Cohort lock, which
// pays an SI and SD fence for every single critical section.
#include "argo/apps.hpp"
#include "bench/report.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  using argoapps::DsmLockKind;
  using argoapps::PqParams;
  using argoapps::pq_bench_dsm;

  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 12", "DSM priority-queue throughput (ops/us), 15 threads/node");

  PqParams p;
  p.duration = opts.quick ? 500'000 : 2'000'000;
  p.prefill = 2048;

  std::vector<int> node_counts{1, 2, 4, 8, 16, 32};
  if (opts.quick) node_counts = {1, 2, 4};
  std::vector<std::string> head{"lock", "threads"};
  for (int n : node_counts) head.push_back(Table::fmt("%d", n));
  Table table(head);
  std::vector<std::string> thr_row{"", "(threads)"};
  for (int n : node_counts) thr_row.push_back(Table::fmt("%d", n * kPaperTpn));

  JsonReport json;
  for (DsmLockKind kind : {DsmLockKind::Hqdl, DsmLockKind::Cohort}) {
    const char* name =
        kind == DsmLockKind::Hqdl ? "Argo (QD locking)" : "Cohort locking";
    std::vector<std::string> row{name, ""};
    for (int nodes : node_counts) {
      auto cfg = paper_cfg(nodes, kPaperTpn,
                           static_cast<std::size_t>(nodes) * (4u << 20));
      cfg.net.pipeline = opts.pipeline;
      argo::Cluster cl(cfg);
      const auto r = pq_bench_dsm(cl, kind, p);
      row.push_back(Table::fmt("%.2f", r.ops_per_us()));
      benchutil::bench_row(json, "fig12", "lock", name, opts, nodes)
          .num("ops_per_us", r.ops_per_us());
    }
    table.row(std::move(row));
  }
  table.row(std::move(thr_row));
  table.print();
  note("");
  note("Paper Fig. 12: HQDL loses ~40% from 1 to 2 nodes, then stays stable");
  note("across node counts and far above the per-CS-fencing Cohort lock.");
  return json.write(opts.json_path) ? 0 : 1;
}
