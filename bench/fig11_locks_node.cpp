// Figure 11: scaling of lock-synchronized code on a single machine —
// concurrent priority queue (pairing heap), 48 thread-local work units per
// operation, insert/extract_min with equal probability.
//
// Expected shape (paper): QD locking rises with the thread count and
// stays high (~4.5 ops/us at 8+ threads); the Cohort lock sits in between;
// the Pthreads mutex peaks at 1-2 threads and degrades under contention
// (futex wakeups + data migration every handoff).
#include <memory>

#include "argo/apps.hpp"
#include "bench/report.hpp"
#include "argo/sync.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  using argoapps::PqParams;
  using argoapps::pq_bench_local;

  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 11",
         "single-node priority-queue throughput (ops/us) vs threads");

  argonet::NodeTopology topo;  // 16 cores, 4 NUMA groups (Opteron 6220 box)
  PqParams p;
  p.duration = opts.quick ? 250'000 : 1'000'000;  // measured window (virt. ns)

  std::vector<int> threads{1, 2, 4, 6, 8, 10, 12, 14, 16};
  if (opts.quick) threads = {1, 4, 16};
  JsonReport json;
  std::vector<std::string> head{"lock"};
  for (int t : threads) head.push_back(Table::fmt("%d", t));
  Table table(head);

  struct LockKind {
    const char* name;
    std::function<std::unique_ptr<argosync::CriticalSectionExecutor>()> make;
  };
  const LockKind kinds[] = {
      {"QD locking",
       [&] { return std::make_unique<argosync::QdLock>(&topo); }},
      {"Cohort locking",
       [&] { return std::make_unique<argosync::CohortLock>(&topo); }},
      {"Pthreads mutex",
       [&] { return std::make_unique<argosync::MutexLock>(&topo); }},
      {"MCS (extra)",
       [&] { return std::make_unique<argosync::McsLock>(&topo); }},
  };
  for (const LockKind& k : kinds) {
    std::vector<std::string> row{k.name};
    std::fprintf(stderr, "  running %s", k.name);
    for (int t : threads) {
      auto lock = k.make();
      const auto r = pq_bench_local(*lock, topo, t, p);
      row.push_back(Table::fmt("%.2f", r.ops_per_us()));
      json.row()
          .str("fig", "fig11")
          .str("lock", k.name)
          .num("nodes", 1)
          .num("threads", t)
          .num("ops_per_us", r.ops_per_us());
      std::fprintf(stderr, " .");
      std::fflush(stderr);
    }
    std::fprintf(stderr, "\n");
    table.row(std::move(row));
  }
  table.print();
  note("");
  note("Paper Fig. 11: QD > Cohort > Pthreads mutex; QD keeps the heap hot");
  note("on the helper's core, the mutex migrates it on every handoff.");
  return json.write(opts.json_path) ? 0 : 1;
}
