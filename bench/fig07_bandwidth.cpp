// Figure 7: achievable bandwidth of an Argo cache-line read versus raw
// passive one-sided communication (MPI-RMA), as a function of the transfer
// unit (cache line / message size in bytes).
//
// Two nodes; node 0 streams an 8 MiB region homed on node 1, either
// through Argo's page cache (one line fill per pages_per_line pages, full
// protocol: fault overhead, passive directory registration, prefetch) or
// with raw one-sided reads of the same unit size. Reported in virtual
// MB/s. Expected shape (paper): both curves rise with the unit size; Argo
// tracks the raw RMA rate from below and converges at large units.
//
// --pipeline <depth> issues the RMA curve as posted reads (depth in-flight
// ops per node) and lets Argo's line fills overlap registration and data;
// --json <path> writes both curves without the google-benchmark harness.
#include <benchmark/benchmark.h>

#include "bench/report.hpp"
#include "argo/net.hpp"

namespace {

using argo::Cluster;
using argo::Thread;
using argomem::kPageSize;
using argosim::Time;
using benchutil::paper_cfg;

constexpr std::size_t kRegionPages = 2048;  // 8 MiB

int g_pipeline = 1;  // set once in main before any benchmark runs

/// Argo: bulk-read the region through the page cache with the given
/// pages-per-line; returns virtual ns.
Time argo_read_time(std::size_t pages_per_line) {
  auto cfg = paper_cfg(2, 1, 2 * (kRegionPages + 64) * kPageSize);
  cfg.cache.pages_per_line = pages_per_line;
  cfg.cache.cache_lines = 2 * kRegionPages / pages_per_line + 16;
  cfg.net.pipeline = g_pipeline;
  Cluster cl(cfg);
  // The region starts at node 1's first home page.
  const std::uint64_t first = cl.gmem().pages_per_node();
  auto base = argo::gptr<std::byte>(first * kPageSize);
  std::vector<std::byte> sink(kRegionPages * kPageSize);
  return cl.run([&](Thread& t) {
    if (t.node() != 0) return;
    t.load_bulk(base, sink.data(), sink.size());
  });
}

/// Raw one-sided reads of `unit` bytes each (the MPI-RMA curve). Posted
/// when the pipeline depth allows it, exactly blocking at depth 1.
Time rma_read_time(std::size_t unit) {
  argosim::Engine eng;
  argonet::NetConfig nc;
  nc.pipeline = g_pipeline;
  argonet::Interconnect net(2, nc);
  std::vector<std::byte> remote(kRegionPages * kPageSize);
  std::vector<std::byte> local(kRegionPages * kPageSize);
  eng.spawn("reader", [&] {
    for (std::size_t off = 0; off < remote.size(); off += unit) {
      const std::size_t n = std::min(unit, remote.size() - off);
      net.post_read(0, 1, remote.data() + off, local.data() + off, n);
    }
    net.wait_all(0);
  });
  eng.run();
  return eng.now();
}

double mb_per_s(Time t) {
  return static_cast<double>(kRegionPages * kPageSize) /
         (1 << 20) / argosim::to_s(t);
}

void BM_ArgoCacheLineRead(benchmark::State& state) {
  const auto ppl = static_cast<std::size_t>(state.range(0));
  Time t = 0;
  for (auto _ : state) t = argo_read_time(ppl);
  state.counters["unit_bytes"] =
      static_cast<double>(ppl * kPageSize);
  state.counters["virtual_MB_s"] = mb_per_s(t);
}

void BM_MpiRmaRead(benchmark::State& state) {
  const auto ppl = static_cast<std::size_t>(state.range(0));
  Time t = 0;
  for (auto _ : state) t = rma_read_time(ppl * kPageSize);
  state.counters["unit_bytes"] =
      static_cast<double>(ppl * kPageSize);
  state.counters["virtual_MB_s"] = mb_per_s(t);
}

}  // namespace

// x-axis of the paper's Figure 7: ~4 KiB to ~600 KiB.
BENCHMARK(BM_ArgoCacheLineRead)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MpiRmaRead)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  using namespace benchutil;
  BenchOpts opts = BenchOpts::parse(argc, argv);
  g_pipeline = opts.pipeline;
  if (!opts.json_path.empty()) {
    // Run the sweep directly (no google-benchmark console machinery).
    header("Figure 7", "virtual bandwidth vs transfer unit");
    JsonReport json;
    std::vector<std::size_t> units{1, 2, 4, 8, 16, 32, 64, 128};
    if (opts.quick) units = {1, 8, 64};
    Table t({"unit (bytes)", "Argo MB/s", "MPI-RMA MB/s"});
    for (std::size_t ppl : units) {
      const double argo_bw = mb_per_s(argo_read_time(ppl));
      const double rma_bw = mb_per_s(rma_read_time(ppl * kPageSize));
      t.row({Table::fmt("%zu", ppl * kPageSize), Table::fmt("%.1f", argo_bw),
             Table::fmt("%.1f", rma_bw)});
      json.row()
          .str("fig", "fig07")
          .num("unit_bytes", static_cast<std::uint64_t>(ppl * kPageSize))
          .num("pipeline", opts.pipeline)
          .num("nodes", 2)
          .num("argo_mb_s", argo_bw)
          .num("rma_mb_s", rma_bw);
    }
    t.print();
    return json.write(opts.json_path) ? 0 : 1;
  }
  int bench_argc = static_cast<int>(opts.rest.size());
  benchmark::Initialize(&bench_argc, opts.rest.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, opts.rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
