// Figure 13d: matrix multiply with two input sizes — Argo vs Pthreads vs
// MPI (the paper used 2000^2 and 5000^2; scaled here to 256^2 and 576^2).
//
// Expected shape (paper): the MPI version wins at one node (algorithmic
// advantage) but the small input stops scaling immediately, while Argo
// keeps gaining to ~8 nodes; for the large input both scale, with the
// single-node gap carried along.
#include "apps/mm.hpp"
#include "bench/fig13_common.hpp"

int main() {
  using namespace benchutil;
  header("Figure 13d", "Matrix multiply speedup, small (256) & large (576) inputs");

  for (std::size_t n : {std::size_t{256}, std::size_t{576}}) {
    argoapps::MmParams p;
    p.n = n;
    p.iterations = 2;
    std::printf("\n-- input %zux%zu --\n", n, n);
    const auto s = run_argo_scaling(
        [&](argo::Cluster& cl) { return argoapps::mm_run_argo(cl, p).elapsed; },
        (3 * n * n * sizeof(double) * 5) / 4 + (1u << 20));

    std::vector<double> mpi_ms;
    for (int nc : kNodeCounts) {
      argompi::MpiEnv env(nc, kPaperTpn, argonet::NetConfig{});
      mpi_ms.push_back(argosim::to_ms(argoapps::mm_run_mpi(env, p).elapsed));
    }

    SpeedupReport rep(s.seq_ms);
    rep.series("Pthreads (1 node)", kPthreadCounts, s.pthread_ms, "thr");
    rep.series("Argo (15 thr/node)", kNodeCounts, s.argo_ms, "nodes");
    rep.series("MPI (15 ranks/node)", kNodeCounts, mpi_ms, "nodes");
    rep.print();
  }
  note("");
  note("Paper Fig. 13d: with the small input MPI cannot keep its single-node");
  note("advantage past 1 node while Argo scales to ~8; with the large input");
  note("both scale similarly.");
  return 0;
}
