// Figure 13d: matrix multiply with two input sizes — Argo vs Pthreads vs
// MPI (the paper used 2000^2 and 5000^2; scaled here to 256^2 and 576^2).
//
// Expected shape (paper): the MPI version wins at one node (algorithmic
// advantage) but the small input stops scaling immediately, while Argo
// keeps gaining to ~8 nodes; for the large input both scale, with the
// single-node gap carried along.
#include "argo/apps.hpp"
#include "bench/fig13_common.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 13d", "Matrix multiply speedup, small (256) & large (576) inputs");

  JsonReport json;
  std::vector<std::size_t> inputs{256, 576};
  if (opts.quick) inputs = {256};
  for (std::size_t n : inputs) {
    argoapps::MmParams p;
    p.n = n;
    p.iterations = 2;
    std::printf("\n-- input %zux%zu --\n", n, n);
    const auto s = run_argo_scaling(
        [&](argo::Cluster& cl) { return argoapps::mm_run_argo(cl, p).elapsed; },
        (3 * n * n * sizeof(double) * 5) / 4 + (1u << 20), opts);

    std::vector<double> mpi_ms;
    for (int nc : s.nodes) {
      argompi::MpiEnv env(nc, kPaperTpn, argonet::NetConfig{});
      mpi_ms.push_back(argosim::to_ms(argoapps::mm_run_mpi(env, p).elapsed));
    }

    SpeedupReport rep(s.seq_ms);
    rep.series("Pthreads (1 node)", s.threads, s.pthread_ms, "thr");
    rep.series("Argo (15 thr/node)", s.nodes, s.argo_ms, "nodes");
    rep.series("MPI (15 ranks/node)", s.nodes, mpi_ms, "nodes");
    rep.print();
    const std::string tag = "argo_n" + std::to_string(n);
    scaling_rows(json, "fig13d", ("pthreads_n" + std::to_string(n)).c_str(),
                 s.threads, s.pthread_ms, s.seq_ms, opts, /*fixed_nodes=*/1);
    scaling_rows(json, "fig13d", tag.c_str(), s.nodes, s.argo_ms, s.seq_ms,
                 opts);
    scaling_rows(json, "fig13d", ("mpi_n" + std::to_string(n)).c_str(),
                 s.nodes, mpi_ms, s.seq_ms, opts);
  }
  note("");
  note("Paper Fig. 13d: with the small input MPI cannot keep its single-node");
  note("advantage past 1 node while Argo scales to ~8; with the large input");
  note("both scale similarly.");
  return json.write(opts.json_path) ? 0 : 1;
}
