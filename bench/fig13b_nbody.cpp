// Figure 13b: N-body with barrier synchronization — Argo vs Pthreads vs
// the MPI port (allgather per step).
//
// Expected shape (paper): barrier cost over the network is barely
// noticeable for large inputs; Argo scales past the single machine and
// tracks/exceeds MPI.
#include "apps/nbody.hpp"
#include "bench/fig13_common.hpp"

int main() {
  using namespace benchutil;
  header("Figure 13b", "N-body speedup (4096 bodies, 4 steps)");

  argoapps::NbodyParams p;
  p.bodies = 4096;
  p.steps = 4;

  const auto s = run_argo_scaling(
      [&](argo::Cluster& cl) {
        return argoapps::nbody_run_argo(cl, p).elapsed;
      },
      8u << 20);

  std::vector<double> mpi_ms;
  for (int nc : kNodeCounts) {
    argompi::MpiEnv env(nc, kPaperTpn, argonet::NetConfig{});
    mpi_ms.push_back(argosim::to_ms(argoapps::nbody_run_mpi(env, p).elapsed));
  }

  SpeedupReport rep(s.seq_ms);
  rep.series("Pthreads (1 node)", kPthreadCounts, s.pthread_ms, "thr");
  rep.series("Argo (15 thr/node)", kNodeCounts, s.argo_ms, "nodes");
  rep.series("MPI (15 ranks/node)", kNodeCounts, mpi_ms, "nodes");
  rep.print();
  note("Paper Fig. 13b: Argo scales to 32 nodes, exceeding the MPI port.");
  return 0;
}
