// Figure 13b: N-body with barrier synchronization — Argo vs Pthreads vs
// the MPI port (allgather per step).
//
// Expected shape (paper): barrier cost over the network is barely
// noticeable for large inputs; Argo scales past the single machine and
// tracks/exceeds MPI.
#include "argo/apps.hpp"
#include "bench/fig13_common.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 13b", "N-body speedup (4096 bodies, 4 steps)");

  argoapps::NbodyParams p;
  p.bodies = 4096;
  p.steps = opts.quick ? 2 : 4;

  const auto s = run_argo_scaling(
      [&](argo::Cluster& cl) {
        return argoapps::nbody_run_argo(cl, p).elapsed;
      },
      8u << 20, opts);

  std::vector<double> mpi_ms;
  for (int nc : s.nodes) {
    argompi::MpiEnv env(nc, kPaperTpn, argonet::NetConfig{});
    mpi_ms.push_back(argosim::to_ms(argoapps::nbody_run_mpi(env, p).elapsed));
  }

  SpeedupReport rep(s.seq_ms);
  rep.series("Pthreads (1 node)", s.threads, s.pthread_ms, "thr");
  rep.series("Argo (15 thr/node)", s.nodes, s.argo_ms, "nodes");
  rep.series("MPI (15 ranks/node)", s.nodes, mpi_ms, "nodes");
  rep.print();
  note("Paper Fig. 13b: Argo scales to 32 nodes, exceeding the MPI port.");
  JsonReport json;
  scaling_rows(json, "fig13b", "pthreads", s.threads, s.pthread_ms, s.seq_ms,
               opts, /*fixed_nodes=*/1);
  scaling_rows(json, "fig13b", "argo", s.nodes, s.argo_ms, s.seq_ms, opts);
  scaling_rows(json, "fig13b", "mpi", s.nodes, mpi_ms, s.seq_ms, opts);
  return json.write(opts.json_path) ? 0 : 1;
}
