// Shared helpers for the benchmark binaries: paper-style cluster
// configurations and aligned table output. Every bench regenerates one
// table or figure from the paper (see DESIGN.md §3); EXPERIMENTS.md records
// the measured numbers against the paper's.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "argo/argo.hpp"
#include "argo/sim.hpp"
#include "argo/stats.hpp"

namespace benchutil {

using argo::ClusterConfig;
using argo::Mode;
using argomem::kPageSize;
using argosim::Time;

/// The paper's node: 16 cores (4 NUMA groups), 15 worker threads per node
/// (one core left for the OS / MPI progress, §5).
inline constexpr int kPaperTpn = 15;

/// A cluster configured like the paper's runs: blocked distribution,
/// global memory sized to the workload, page cache large enough to hold it
/// (the paper sizes both to the workload), prefetching enabled.
inline ClusterConfig paper_cfg(int nodes, int tpn, std::size_t mem_bytes,
                               Mode mode = Mode::PS3,
                               std::size_t write_buffer = 8192) {
  ClusterConfig c;
  c.nodes = nodes;
  c.threads_per_node = tpn;
  c.global_mem_bytes = mem_bytes;
  c.cache.classification = mode;
  c.cache.cache_lines = 16384;
  c.cache.pages_per_line = 4;
  c.cache.write_buffer_pages = write_buffer;
  return c;
}

/// Aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  template <typename... Args>
  static std::string fmt(const char* f, Args... args) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), f, args...);
    return buf;
  }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        w[c] = std::max(w[c], r[c].size());
    auto line = [&](const std::vector<std::string>& cells) {
      std::printf("  ");
      for (std::size_t c = 0; c < cells.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(w[c]), cells[c].c_str());
      std::printf("\n");
    };
    line(headers_);
    std::string dashes;
    for (std::size_t c = 0; c < headers_.size(); ++c)
      dashes += std::string(w[c], '-') + "  ";
    std::printf("  %s\n", dashes.c_str());
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void header(const char* id, const char* title) {
  std::printf("\n=== %s: %s ===\n\n", id, title);
}

inline void note(const char* text) { std::printf("  %s\n", text); }

/// Flags shared by every fig* binary:
///   --json <path>      also write the figure's data points as JSON rows
///   --pipeline <depth> posted-verb send-queue depth (default 1: blocking)
///   --quick            reduced sweep for CI smoke runs
///   --threads <n>      engine host workers (same as ARGO_THREADS=n; 1 is
///                      the sequential sharded reference, 0 the legacy
///                      engine — virtual-time results are identical)
///   --nodes <list>     restrict scaling sweeps to these node counts, a
///                      comma-separated list ("--nodes 32" or
///                      "--nodes 32,64,128"); each count must fit the
///                      directory encoding (at most argodir::max_nodes())
///   --adaptive         enable all three adaptive runtime-tuning policies
///   --adapt-wb         enable only phase-adaptive write-buffer sizing
///   --adapt-diff       enable only density-driven diff granularity
///   --adapt-stride     enable only stride prefetch
/// Unrecognized arguments are kept (fig07 forwards them to its harness).
struct BenchOpts {
  std::string json_path;
  int pipeline = 1;
  bool quick = false;
  int adapt = 0;  // bitmask: 1 = wb sizing, 2 = diff granularity, 4 = stride
  std::vector<int> nodes;   // empty = the sweep's default node counts
  std::vector<char*> rest;  // argv[0] + unconsumed arguments

  static BenchOpts parse(int argc, char** argv) {
    BenchOpts o;
    if (argc > 0) o.rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        o.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc) {
        o.pipeline = std::atoi(argv[++i]);
        if (o.pipeline < 1) o.pipeline = 1;
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        argosim::set_engine_threads(std::atoi(argv[++i]));
      } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
        for (const char* p = argv[++i]; *p != '\0';) {
          const int n = std::atoi(p);
          if (n > 0) o.nodes.push_back(n);
          const char* comma = std::strchr(p, ',');
          if (comma == nullptr) break;
          p = comma + 1;
        }
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        o.quick = true;
      } else if (std::strcmp(argv[i], "--adaptive") == 0) {
        o.adapt = 7;
      } else if (std::strcmp(argv[i], "--adapt-wb") == 0) {
        o.adapt |= 1;
      } else if (std::strcmp(argv[i], "--adapt-diff") == 0) {
        o.adapt |= 2;
      } else if (std::strcmp(argv[i], "--adapt-stride") == 0) {
        o.adapt |= 4;
      } else {
        o.rest.push_back(argv[i]);
      }
    }
    return o;
  }

  /// Turn the --adaptive/--adapt-* bitmask into ClusterConfig policy flags.
  void apply_adapt(ClusterConfig& c) const {
    c.adapt.write_buffer = (adapt & 1) != 0;
    c.adapt.diff_granularity = (adapt & 2) != 0;
    c.adapt.stride_prefetch = (adapt & 4) != 0;
  }
};

/// Version of the JSON row shape shared by every BENCH_*.json file. Bump
/// when a field is renamed or its meaning changes so downstream consumers
/// (scripts/bench_compare.py, notebooks) can refuse mismatched inputs.
/// Schema 3 added the "threads"/"engine" stamp for the parallel engine.
/// Schema 4 stamps "nodes" (the cluster node count a row was measured on,
/// 0 for rows that run no cluster) so 32/64/128-node sweeps can share one
/// file and be filtered apart (bench_compare.py --nodes).
/// Schema 5 stamps "adapt" (the adaptive-policy bitmask the row ran with:
/// 1 = write-buffer sizing, 2 = diff granularity, 4 = stride prefetch, 0 =
/// fixed knobs) so adaptive and fixed rows can live in one file and be
/// paired apart (bench_compare.py --adapt-gate).
inline constexpr int kBenchSchemaVersion = 5;

/// Effective engine worker count for this process: 1 for the legacy
/// engine and the ARGO_SEQ_ENGINE reference (both sequential), N when
/// ARGO_THREADS/--threads selected N sharded workers.
inline int bench_threads() {
  if (argosim::seq_engine()) return 1;
  const int n = argosim::engine_threads();
  return n > 0 ? n : 1;
}

/// "par" when more than one host worker advances the simulation, "seq"
/// otherwise. Virtual-time results are identical either way (the
/// determinism suite pins that); the stamp records how wall time was
/// spent.
inline const char* bench_engine() { return bench_threads() > 1 ? "par" : "seq"; }

/// Commit hash rows are stamped with. The bench binaries cannot assume a
/// .git directory (CI runs them from an install tree), so the driver passes
/// it down: scripts/bench_host.sh and bench_json.sh export ARGO_GIT_COMMIT.
inline std::string bench_commit() {
  const char* c = std::getenv("ARGO_GIT_COMMIT");
  return (c != nullptr && c[0] != '\0') ? c : "unknown";
}

/// UTC run date in ISO 8601 (YYYY-MM-DD).
inline std::string bench_date() {
  const std::time_t now = std::time(nullptr);
  char buf[16];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", std::gmtime(&now));
  return buf;
}

/// Collects flat one-object-per-line JSON rows and writes them as an array:
///   [
///   {"fig":"fig09","app":"MM","wb":512,"pipeline":4,"virtual_ms":12.34},
///   ...
///   ]
/// Keys are emitted in insertion order, values verbatim — callers format
/// numbers themselves so rows stay grep/awk-friendly.
class JsonReport {
 public:
  class Row {
   public:
    Row& field(const char* key, const std::string& raw) {
      if (!body_.empty()) body_ += ',';
      body_ += '"';
      body_ += key;
      body_ += "\":";
      body_ += raw;
      return *this;
    }
    Row& str(const char* key, const std::string& v) {
      return field(key, "\"" + v + "\"");
    }
    Row& num(const char* key, double v) {
      return field(key, Table::fmt("%.4f", v));
    }
    Row& num(const char* key, std::uint64_t v) {
      return field(key, Table::fmt("%llu", static_cast<unsigned long long>(v)));
    }
    Row& num(const char* key, int v) { return field(key, std::to_string(v)); }

   private:
    friend class JsonReport;
    std::string body_;
  };

  /// Every row leads with the provenance stamp (schema version, commit,
  /// run date, engine workers) so a BENCH file is self-describing even
  /// when split apart.
  Row& row() {
    rows_.emplace_back();
    return rows_.back()
        .num("schema", kBenchSchemaVersion)
        .str("commit", bench_commit())
        .str("date", bench_date())
        .num("threads", bench_threads())
        .str("engine", bench_engine());
  }

  /// Write the accumulated rows to `path`. No-op when path is empty.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < rows_.size(); ++i)
      std::fprintf(f, "{%s}%s\n", rows_[i].body_.c_str(),
                   i + 1 < rows_.size() ? "," : "");
    std::fputs("]\n", f);
    std::fclose(f);
    std::printf("  wrote %zu rows to %s\n", rows_.size(), path.c_str());
    return true;
  }

 private:
  std::vector<Row> rows_;
};

/// One JSON row per (fig, label, measurement) with the shared prefix every
/// cluster bench emits — figure id, a label column (usually "app"; lock
/// benches use "lock", scaling curves use "series"), the pipeline depth,
/// and the cluster node count the measurement ran on — so per-bench
/// emission code adds only its own columns.
inline JsonReport::Row& bench_row(JsonReport& json, const char* fig,
                                  const char* label_key,
                                  const std::string& label,
                                  const BenchOpts& opts, int nodes) {
  return json.row()
      .str("fig", fig)
      .str(label_key, label)
      .num("pipeline", opts.pipeline)
      .num("nodes", nodes)
      .num("adapt", opts.adapt);
}

inline JsonReport::Row& bench_row(JsonReport& json, const char* fig,
                                  const std::string& app,
                                  const BenchOpts& opts, int nodes) {
  return bench_row(json, fig, "app", app, opts, nodes);
}

/// Per-node fence-duration histograms and posted-queue high-water marks
/// (Figure 9/10 diagnostics), read from a Cluster::stats() snapshot.
/// Log2-bucketed; only non-empty buckets print.
inline void print_fence_histograms(const argo::ClusterStats& s) {
  std::printf("\n  per-node fence durations (virtual us) and posted-queue depth:\n");
  Table t({"node", "sd_fences", "sd_mean", "sd_max", "si_fences", "si_mean",
           "si_max", "inflight_hwm"});
  for (std::size_t n = 0; n < s.per_node.size(); ++n) {
    const argo::CoherenceStats& cs = s.per_node[n];
    t.row({Table::fmt("%zu", n), Table::fmt("%llu", (unsigned long long)cs.sd_fence_ns.samples),
           Table::fmt("%.1f", cs.sd_fence_ns.mean_ns() / 1e3),
           Table::fmt("%.1f", static_cast<double>(cs.sd_fence_ns.max_ns) / 1e3),
           Table::fmt("%llu", (unsigned long long)cs.si_fence_ns.samples),
           Table::fmt("%.1f", cs.si_fence_ns.mean_ns() / 1e3),
           Table::fmt("%.1f", static_cast<double>(cs.si_fence_ns.max_ns) / 1e3),
           Table::fmt("%llu", (unsigned long long)s.net_per_node[n].posted_inflight_hwm)});
  }
  t.print();
  for (std::size_t n = 0; n < s.per_node.size(); ++n) {
    const argoobs::LatencyHist& h = s.per_node[n].sd_fence_ns;
    if (h.samples == 0) continue;
    std::string buckets;
    for (int b = 0; b < argoobs::LatencyHist::kBuckets; ++b)
      if (h.bucket[b] != 0)
        buckets += Table::fmt(" [<2^%d:%llu]", b, (unsigned long long)h.bucket[b]);
    std::printf("  node %zu sd-fence ns histogram:%s\n", n, buckets.c_str());
  }
}

}  // namespace benchutil
