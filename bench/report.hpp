// Shared helpers for the benchmark binaries: paper-style cluster
// configurations and aligned table output. Every bench regenerates one
// table or figure from the paper (see DESIGN.md §3); EXPERIMENTS.md records
// the measured numbers against the paper's.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/cluster.hpp"

namespace benchutil {

using argo::ClusterConfig;
using argo::Mode;
using argomem::kPageSize;
using argosim::Time;

/// The paper's node: 16 cores (4 NUMA groups), 15 worker threads per node
/// (one core left for the OS / MPI progress, §5).
inline constexpr int kPaperTpn = 15;

/// A cluster configured like the paper's runs: blocked distribution,
/// global memory sized to the workload, page cache large enough to hold it
/// (the paper sizes both to the workload), prefetching enabled.
inline ClusterConfig paper_cfg(int nodes, int tpn, std::size_t mem_bytes,
                               Mode mode = Mode::PS3,
                               std::size_t write_buffer = 8192) {
  ClusterConfig c;
  c.nodes = nodes;
  c.threads_per_node = tpn;
  c.global_mem_bytes = mem_bytes;
  c.cache.classification = mode;
  c.cache.cache_lines = 16384;
  c.cache.pages_per_line = 4;
  c.cache.write_buffer_pages = write_buffer;
  return c;
}

/// Aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  template <typename... Args>
  static std::string fmt(const char* f, Args... args) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), f, args...);
    return buf;
  }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        w[c] = std::max(w[c], r[c].size());
    auto line = [&](const std::vector<std::string>& cells) {
      std::printf("  ");
      for (std::size_t c = 0; c < cells.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(w[c]), cells[c].c_str());
      std::printf("\n");
    };
    line(headers_);
    std::string dashes;
    for (std::size_t c = 0; c < headers_.size(); ++c)
      dashes += std::string(w[c], '-') + "  ";
    std::printf("  %s\n", dashes.c_str());
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void header(const char* id, const char* title) {
  std::printf("\n=== %s: %s ===\n\n", id, title);
}

inline void note(const char* text) { std::printf("  %s\n", text); }

}  // namespace benchutil
