// Figure 13f: NAS CG — Argo vs OpenMP (single machine) vs UPC.
// (The paper runs class C to 32 nodes; scaled to n=16384, 12 iterations.)
//
// Expected shape (paper): the UPC implementation starts ahead (optimized,
// no caching overhead) but stops scaling around 8 nodes — its fine-grained
// remote reductions serialize — while Argo, whose nodes *cache* the shared
// direction vector and the reduction partials, continues to 32.
#include "argo/apps.hpp"
#include "bench/fig13_common.hpp"

int main(int argc, char** argv) {
  using namespace benchutil;
  const BenchOpts opts = BenchOpts::parse(argc, argv);
  header("Figure 13f", "NAS CG speedup (n=65536, 12 iterations)");

  argoapps::CgParams p;
  p.n = opts.quick ? 16384 : 65536;
  p.iterations = opts.quick ? 6 : 12;

  const auto s = run_argo_scaling(
      [&](argo::Cluster& cl) { return argoapps::cg_run_argo(cl, p).elapsed; },
      8u << 20, opts);

  std::vector<double> upc_ms;
  for (int nc : s.nodes) {
    auto cfg = paper_cfg(nc, kPaperTpn, 4u << 20);
    cfg.net.pipeline = opts.pipeline;
    argo::Cluster cl(cfg);
    upc_ms.push_back(argosim::to_ms(argoapps::cg_run_upc(cl, p).elapsed));
  }

  SpeedupReport rep(s.seq_ms);
  rep.series("OpenMP (1 node)", s.threads, s.pthread_ms, "thr");
  rep.series("Argo (15 thr/node)", s.nodes, s.argo_ms, "nodes");
  rep.series("UPC (15 thr/node)", s.nodes, upc_ms, "nodes");
  rep.print();
  note("Paper Fig. 13f: UPC leads at small scale but stops at ~8 nodes;");
  note("Argo continues to 32 without changing the algorithm.");
  JsonReport json;
  scaling_rows(json, "fig13f", "openmp", s.threads, s.pthread_ms, s.seq_ms,
               opts, /*fixed_nodes=*/1);
  scaling_rows(json, "fig13f", "argo", s.nodes, s.argo_ms, s.seq_ms, opts);
  scaling_rows(json, "fig13f", "upc", s.nodes, upc_ms, s.seq_ms, opts);
  return json.write(opts.json_path) ? 0 : 1;
}
