# Empty compiler generated dependencies file for argo_dir.
# This may be replaced when dependencies are built.
