file(REMOVE_RECURSE
  "CMakeFiles/argo_dir.dir/pyxis.cpp.o"
  "CMakeFiles/argo_dir.dir/pyxis.cpp.o.d"
  "libargo_dir.a"
  "libargo_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argo_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
