file(REMOVE_RECURSE
  "libargo_dir.a"
)
