# Empty compiler generated dependencies file for argo_sim.
# This may be replaced when dependencies are built.
