file(REMOVE_RECURSE
  "CMakeFiles/argo_sim.dir/engine.cpp.o"
  "CMakeFiles/argo_sim.dir/engine.cpp.o.d"
  "libargo_sim.a"
  "libargo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
