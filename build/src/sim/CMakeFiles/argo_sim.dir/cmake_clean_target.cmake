file(REMOVE_RECURSE
  "libargo_sim.a"
)
