file(REMOVE_RECURSE
  "CMakeFiles/argo_net.dir/interconnect.cpp.o"
  "CMakeFiles/argo_net.dir/interconnect.cpp.o.d"
  "libargo_net.a"
  "libargo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
