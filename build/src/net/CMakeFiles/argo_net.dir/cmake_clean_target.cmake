file(REMOVE_RECURSE
  "libargo_net.a"
)
