# Empty dependencies file for argo_net.
# This may be replaced when dependencies are built.
