# Empty compiler generated dependencies file for argo_baseline.
# This may be replaced when dependencies are built.
