file(REMOVE_RECURSE
  "CMakeFiles/argo_baseline.dir/active_dsm.cpp.o"
  "CMakeFiles/argo_baseline.dir/active_dsm.cpp.o.d"
  "CMakeFiles/argo_baseline.dir/mpi.cpp.o"
  "CMakeFiles/argo_baseline.dir/mpi.cpp.o.d"
  "libargo_baseline.a"
  "libargo_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argo_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
