file(REMOVE_RECURSE
  "libargo_baseline.a"
)
