file(REMOVE_RECURSE
  "CMakeFiles/argo_core.dir/carina.cpp.o"
  "CMakeFiles/argo_core.dir/carina.cpp.o.d"
  "CMakeFiles/argo_core.dir/cluster.cpp.o"
  "CMakeFiles/argo_core.dir/cluster.cpp.o.d"
  "libargo_core.a"
  "libargo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
