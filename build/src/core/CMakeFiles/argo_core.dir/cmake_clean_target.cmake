file(REMOVE_RECURSE
  "libargo_core.a"
)
