# Empty compiler generated dependencies file for argo_core.
# This may be replaced when dependencies are built.
