
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/blackscholes.cpp" "src/apps/CMakeFiles/argo_apps.dir/blackscholes.cpp.o" "gcc" "src/apps/CMakeFiles/argo_apps.dir/blackscholes.cpp.o.d"
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/argo_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/argo_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/ep.cpp" "src/apps/CMakeFiles/argo_apps.dir/ep.cpp.o" "gcc" "src/apps/CMakeFiles/argo_apps.dir/ep.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/argo_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/argo_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/mm.cpp" "src/apps/CMakeFiles/argo_apps.dir/mm.cpp.o" "gcc" "src/apps/CMakeFiles/argo_apps.dir/mm.cpp.o.d"
  "/root/repo/src/apps/nbody.cpp" "src/apps/CMakeFiles/argo_apps.dir/nbody.cpp.o" "gcc" "src/apps/CMakeFiles/argo_apps.dir/nbody.cpp.o.d"
  "/root/repo/src/apps/pqueue.cpp" "src/apps/CMakeFiles/argo_apps.dir/pqueue.cpp.o" "gcc" "src/apps/CMakeFiles/argo_apps.dir/pqueue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/argo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/argo_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/argo_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/dir/CMakeFiles/argo_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/argo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/argo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/argo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
