file(REMOVE_RECURSE
  "CMakeFiles/argo_apps.dir/blackscholes.cpp.o"
  "CMakeFiles/argo_apps.dir/blackscholes.cpp.o.d"
  "CMakeFiles/argo_apps.dir/cg.cpp.o"
  "CMakeFiles/argo_apps.dir/cg.cpp.o.d"
  "CMakeFiles/argo_apps.dir/ep.cpp.o"
  "CMakeFiles/argo_apps.dir/ep.cpp.o.d"
  "CMakeFiles/argo_apps.dir/lu.cpp.o"
  "CMakeFiles/argo_apps.dir/lu.cpp.o.d"
  "CMakeFiles/argo_apps.dir/mm.cpp.o"
  "CMakeFiles/argo_apps.dir/mm.cpp.o.d"
  "CMakeFiles/argo_apps.dir/nbody.cpp.o"
  "CMakeFiles/argo_apps.dir/nbody.cpp.o.d"
  "CMakeFiles/argo_apps.dir/pqueue.cpp.o"
  "CMakeFiles/argo_apps.dir/pqueue.cpp.o.d"
  "libargo_apps.a"
  "libargo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
