# Empty compiler generated dependencies file for argo_apps.
# This may be replaced when dependencies are built.
