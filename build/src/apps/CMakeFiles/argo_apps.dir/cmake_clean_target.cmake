file(REMOVE_RECURSE
  "libargo_apps.a"
)
