file(REMOVE_RECURSE
  "CMakeFiles/argo_sync.dir/dsm_locks.cpp.o"
  "CMakeFiles/argo_sync.dir/dsm_locks.cpp.o.d"
  "CMakeFiles/argo_sync.dir/local_locks.cpp.o"
  "CMakeFiles/argo_sync.dir/local_locks.cpp.o.d"
  "CMakeFiles/argo_sync.dir/qd_lock.cpp.o"
  "CMakeFiles/argo_sync.dir/qd_lock.cpp.o.d"
  "libargo_sync.a"
  "libargo_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argo_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
