file(REMOVE_RECURSE
  "libargo_sync.a"
)
