# Empty dependencies file for argo_sync.
# This may be replaced when dependencies are built.
