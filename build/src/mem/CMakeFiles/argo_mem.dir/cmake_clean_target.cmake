file(REMOVE_RECURSE
  "libargo_mem.a"
)
