file(REMOVE_RECURSE
  "CMakeFiles/argo_mem.dir/global_memory.cpp.o"
  "CMakeFiles/argo_mem.dir/global_memory.cpp.o.d"
  "libargo_mem.a"
  "libargo_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argo_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
