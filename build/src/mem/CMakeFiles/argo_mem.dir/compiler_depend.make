# Empty compiler generated dependencies file for argo_mem.
# This may be replaced when dependencies are built.
