file(REMOVE_RECURSE
  "CMakeFiles/fig11_locks_node.dir/fig11_locks_node.cpp.o"
  "CMakeFiles/fig11_locks_node.dir/fig11_locks_node.cpp.o.d"
  "fig11_locks_node"
  "fig11_locks_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_locks_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
