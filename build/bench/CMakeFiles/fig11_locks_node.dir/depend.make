# Empty dependencies file for fig11_locks_node.
# This may be replaced when dependencies are built.
