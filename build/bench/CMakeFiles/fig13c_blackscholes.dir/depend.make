# Empty dependencies file for fig13c_blackscholes.
# This may be replaced when dependencies are built.
