file(REMOVE_RECURSE
  "CMakeFiles/fig13c_blackscholes.dir/fig13c_blackscholes.cpp.o"
  "CMakeFiles/fig13c_blackscholes.dir/fig13c_blackscholes.cpp.o.d"
  "fig13c_blackscholes"
  "fig13c_blackscholes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13c_blackscholes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
