# Empty dependencies file for fig07_bandwidth.
# This may be replaced when dependencies are built.
