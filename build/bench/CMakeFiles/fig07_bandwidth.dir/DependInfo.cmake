
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_bandwidth.cpp" "bench/CMakeFiles/fig07_bandwidth.dir/fig07_bandwidth.cpp.o" "gcc" "bench/CMakeFiles/fig07_bandwidth.dir/fig07_bandwidth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/argo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dir/CMakeFiles/argo_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/argo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/argo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/argo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
