file(REMOVE_RECURSE
  "CMakeFiles/fig07_bandwidth.dir/fig07_bandwidth.cpp.o"
  "CMakeFiles/fig07_bandwidth.dir/fig07_bandwidth.cpp.o.d"
  "fig07_bandwidth"
  "fig07_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
