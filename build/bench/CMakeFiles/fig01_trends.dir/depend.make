# Empty dependencies file for fig01_trends.
# This may be replaced when dependencies are built.
