file(REMOVE_RECURSE
  "CMakeFiles/fig01_trends.dir/fig01_trends.cpp.o"
  "CMakeFiles/fig01_trends.dir/fig01_trends.cpp.o.d"
  "fig01_trends"
  "fig01_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
