# Empty compiler generated dependencies file for fig10_writebacks.
# This may be replaced when dependencies are built.
