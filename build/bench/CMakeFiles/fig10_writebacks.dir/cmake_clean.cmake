file(REMOVE_RECURSE
  "CMakeFiles/fig10_writebacks.dir/fig10_writebacks.cpp.o"
  "CMakeFiles/fig10_writebacks.dir/fig10_writebacks.cpp.o.d"
  "fig10_writebacks"
  "fig10_writebacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_writebacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
