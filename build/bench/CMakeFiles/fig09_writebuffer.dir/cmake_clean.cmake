file(REMOVE_RECURSE
  "CMakeFiles/fig09_writebuffer.dir/fig09_writebuffer.cpp.o"
  "CMakeFiles/fig09_writebuffer.dir/fig09_writebuffer.cpp.o.d"
  "fig09_writebuffer"
  "fig09_writebuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_writebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
