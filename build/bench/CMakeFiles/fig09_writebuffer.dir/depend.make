# Empty dependencies file for fig09_writebuffer.
# This may be replaced when dependencies are built.
