# Empty dependencies file for ablation_handlers.
# This may be replaced when dependencies are built.
