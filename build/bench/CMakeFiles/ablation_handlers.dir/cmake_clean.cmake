file(REMOVE_RECURSE
  "CMakeFiles/ablation_handlers.dir/ablation_handlers.cpp.o"
  "CMakeFiles/ablation_handlers.dir/ablation_handlers.cpp.o.d"
  "ablation_handlers"
  "ablation_handlers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_handlers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
