file(REMOVE_RECURSE
  "CMakeFiles/fig08_classification.dir/fig08_classification.cpp.o"
  "CMakeFiles/fig08_classification.dir/fig08_classification.cpp.o.d"
  "fig08_classification"
  "fig08_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
