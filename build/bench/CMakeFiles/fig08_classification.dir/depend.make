# Empty dependencies file for fig08_classification.
# This may be replaced when dependencies are built.
