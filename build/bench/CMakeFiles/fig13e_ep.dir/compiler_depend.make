# Empty compiler generated dependencies file for fig13e_ep.
# This may be replaced when dependencies are built.
