file(REMOVE_RECURSE
  "CMakeFiles/fig13e_ep.dir/fig13e_ep.cpp.o"
  "CMakeFiles/fig13e_ep.dir/fig13e_ep.cpp.o.d"
  "fig13e_ep"
  "fig13e_ep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13e_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
