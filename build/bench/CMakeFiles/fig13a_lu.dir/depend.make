# Empty dependencies file for fig13a_lu.
# This may be replaced when dependencies are built.
