file(REMOVE_RECURSE
  "CMakeFiles/fig13a_lu.dir/fig13a_lu.cpp.o"
  "CMakeFiles/fig13a_lu.dir/fig13a_lu.cpp.o.d"
  "fig13a_lu"
  "fig13a_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
