# Empty compiler generated dependencies file for fig13b_nbody.
# This may be replaced when dependencies are built.
