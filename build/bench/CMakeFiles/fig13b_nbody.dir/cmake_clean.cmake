file(REMOVE_RECURSE
  "CMakeFiles/fig13b_nbody.dir/fig13b_nbody.cpp.o"
  "CMakeFiles/fig13b_nbody.dir/fig13b_nbody.cpp.o.d"
  "fig13b_nbody"
  "fig13b_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
