file(REMOVE_RECURSE
  "CMakeFiles/fig13d_mm.dir/fig13d_mm.cpp.o"
  "CMakeFiles/fig13d_mm.dir/fig13d_mm.cpp.o.d"
  "fig13d_mm"
  "fig13d_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13d_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
