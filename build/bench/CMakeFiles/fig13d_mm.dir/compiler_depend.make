# Empty compiler generated dependencies file for fig13d_mm.
# This may be replaced when dependencies are built.
