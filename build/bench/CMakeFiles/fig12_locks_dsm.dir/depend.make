# Empty dependencies file for fig12_locks_dsm.
# This may be replaced when dependencies are built.
