file(REMOVE_RECURSE
  "CMakeFiles/fig12_locks_dsm.dir/fig12_locks_dsm.cpp.o"
  "CMakeFiles/fig12_locks_dsm.dir/fig12_locks_dsm.cpp.o.d"
  "fig12_locks_dsm"
  "fig12_locks_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_locks_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
