file(REMOVE_RECURSE
  "CMakeFiles/fig13f_cg.dir/fig13f_cg.cpp.o"
  "CMakeFiles/fig13f_cg.dir/fig13f_cg.cpp.o.d"
  "fig13f_cg"
  "fig13f_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13f_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
