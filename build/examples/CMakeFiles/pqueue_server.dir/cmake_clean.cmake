file(REMOVE_RECURSE
  "CMakeFiles/pqueue_server.dir/pqueue_server.cpp.o"
  "CMakeFiles/pqueue_server.dir/pqueue_server.cpp.o.d"
  "pqueue_server"
  "pqueue_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqueue_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
