# Empty dependencies file for pqueue_server.
# This may be replaced when dependencies are built.
