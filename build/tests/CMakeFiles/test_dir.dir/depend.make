# Empty dependencies file for test_dir.
# This may be replaced when dependencies are built.
