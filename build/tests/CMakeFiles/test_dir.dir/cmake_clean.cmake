file(REMOVE_RECURSE
  "CMakeFiles/test_dir.dir/test_dir.cpp.o"
  "CMakeFiles/test_dir.dir/test_dir.cpp.o.d"
  "test_dir"
  "test_dir.pdb"
  "test_dir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
