#!/usr/bin/env bash
# Build and test both configurations: the normal optimized build and the
# ARGO_SANITIZE build (ASan + UBSan, with the fiber-switch annotations in
# sim/engine.cpp keeping ASan's stack bookkeeping coherent across
# swapcontext). Intended as the pre-merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "=== public-API include gate ==="
# examples/ and bench/ must consume only the public argo/*.hpp umbrella
# headers — any direct #include of an internal src/ subtree is a layering
# break.
if grep -rnE '#include "(core|dir|mem|net|sim|sync|apps|baseline|obs)/' \
     examples bench; then
  echo "FAIL: examples/ and bench/ may only include argo/*.hpp" >&2
  exit 1
fi
echo "  OK: examples/ and bench/ include only argo/*.hpp"

echo "=== directory-capacity constant gate ==="
# kMaxNodes is the directory encoding's build-time ceiling and belongs to
# src/dir/ alone. Everything else must go through argodir::max_nodes() (or
# better, ClusterConfig::validate()), so a future re-encoding only touches
# the directory layer.
if grep -rn "kMaxNodes" src bench examples tests --include='*.hpp' \
     --include='*.cpp' | grep -v '^src/dir/'; then
  echo "FAIL: kMaxNodes referenced outside src/dir/ — use argodir::max_nodes()" >&2
  exit 1
fi
echo "  OK: kMaxNodes referenced only under src/dir/"

echo "=== default build ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== scheduler bit-identity: calendar vs heap, fcontext vs ucontext ==="
# The scheduler fast paths (calendar run queue, fcontext switches, pooled
# effect/record objects) must be invisible to the simulation. First pin
# which backends each mode actually selects, then rerun two bench legs
# with ARGO_SLOW_PATHS=1 — the seed's heap + ucontext + per-op allocation
# — and require byte-identical JSON rows modulo the provenance stamp.
build/bench/microbench_engine --quick \
  | grep -q "run queue: calendar" \
  || { echo "FAIL: fast mode did not select the calendar queue"; exit 1; }
ARGO_SLOW_PATHS=1 build/bench/microbench_engine --quick \
  | grep -q "context backend: ucontext, run queue: heap" \
  || { echo "FAIL: ARGO_SLOW_PATHS=1 did not select ucontext + heap"; exit 1; }
for leg in "fig09_writebuffer --quick" "fig13a_lu --quick --pipeline 16"; do
  echo "--- $leg (fast vs ARGO_SLOW_PATHS=1)"
  ARGO_SLOW_PATHS=0 build/bench/$leg --json build/identity_fast.json > /dev/null
  ARGO_SLOW_PATHS=1 build/bench/$leg --json build/identity_slow.json > /dev/null
  python3 - <<'EOF'
import json
def rows(path):
    out = []
    for r in json.load(open(path)):
        for k in ("commit", "date"):  # provenance may differ, nothing else
            r.pop(k, None)
        out.append(r)
    return out
fast, slow = rows("build/identity_fast.json"), rows("build/identity_slow.json")
assert fast == slow, "fast vs ARGO_SLOW_PATHS=1 JSON rows diverged"
print(f"  OK: {len(fast)} JSON rows bit-identical fast vs slow")
EOF
done

echo "=== sanitizer build (ASan + UBSan) ==="
cmake -B build-sanitize -S . -DARGO_SANITIZE=ON
cmake --build build-sanitize -j "$JOBS"
ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"

echo "=== sanitizer build (TSan, parallel engine) ==="
# ThreadSanitizer checks the parallel engine's worker pool (fiber switches
# are annotated with __tsan_switch_to_fiber). The parallel identity suite
# is the interesting load; the rest of the tests run single-threaded and
# double as an annotation smoke test.
cmake -B build-tsan -S . -DARGO_TSAN=ON
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS"

echo "=== crash-recovery suite (explicit, both configs) ==="
# The crash tests exercise teardown paths (fiber unwind, mid-RPC node
# death, forced lock recovery) that are the likeliest to regress silently;
# run them by name so a ctest filter change can never drop them.
for dir in build build-sanitize; do
  echo "--- $dir"
  "$dir/tests/test_faults" \
    --gtest_filter='CrashRecovery*:CrashTimeouts*:ChaosApps*' --gtest_brief=1
done

echo "=== examples smoke (each must exit 0) ==="
# Run in a scratch dir: quickstart drops trace files next to the cwd.
EX_DIR="$(mktemp -d)"
trap 'rm -rf "$EX_DIR"' EXIT
for ex in quickstart producer_consumer stencil pqueue_server; do
  echo "--- examples/$ex"
  (cd "$EX_DIR" && "$OLDPWD/build/examples/$ex" > "$ex.out") \
    || { echo "FAIL: examples/$ex"; cat "$EX_DIR/$ex.out"; exit 1; }
done
echo "--- trace_query over quickstart's binary trace"
scripts/trace_query summary "$EX_DIR/quickstart_trace.bin"
scripts/trace_query json "$EX_DIR/quickstart_trace.bin" > /dev/null

echo "=== perf smoke: pipelined SD-fence drains ==="
# Reduced fig09 sweep at posted-queue depths 1/4/16; the pipelined drain
# must not be slower than the blocking one where the buffer is large
# enough (>= 512 pages) for the fence to batch work.
scripts/bench_json.sh --quick --out build/BENCH_smoke.json
awk '
  /"fig":"fig09"/ {
    wb = 0; p = 0; sd = 0
    if (match($0, /"wb":[0-9]+/))        wb = substr($0, RSTART+5,  RLENGTH-5)  + 0
    if (match($0, /"pipeline":[0-9]+/))  p  = substr($0, RSTART+11, RLENGTH-11) + 0
    if (match($0, /"sd_fence_total_ms":[0-9.]+/))
                                         sd = substr($0, RSTART+20, RLENGTH-20) + 0
    if (wb >= 512) { tot[p] += sd; n[p]++ }
  }
  END {
    if (n[1] == 0 || n[16] == 0) { print "perf smoke: missing depth rows"; exit 1 }
    printf "  depth-1  SD-fence total: %.3f ms (%d points)\n", tot[1], n[1]
    printf "  depth-16 SD-fence total: %.3f ms (%d points)\n", tot[16], n[16]
    if (tot[16] >= tot[1]) {
      print "FAIL: depth-16 SD-fence time regressed above depth-1"
      exit 1
    }
    printf "  OK: depth 16 cuts SD-fence time by %.1f%%\n", 100 * (1 - tot[16] / tot[1])
  }
' build/BENCH_smoke.json

echo "=== perf smoke: host fast paths ==="
# fig13 quick suite + fig09 with the host fast paths on vs ARGO_SLOW_PATHS=1.
# The two modes are bit-identical in simulated behaviour (the determinism
# tests pin that); the gate fails unless the fast paths actually pay for
# themselves in wall clock (fast <= 0.95 * slow).
scripts/bench_host.sh --gate --out build/BENCH_host.json

echo "=== perf smoke: parallel engine speedup ==="
# 8 sharded workers vs the sequential reference on the fig13 quick suite
# at 32 nodes (rows written by bench_host.sh above). Required speedup is
# capped at host_cpus/2 and skipped on single-core hosts.
python3 scripts/bench_compare.py --par-gate build/BENCH_host.json \
  --par-threads 8 --min-par-speedup 2.0

echo "=== adaptive ablation smoke ==="
# Each adaptive runtime-tuning policy toggled individually (DESIGN.md §6)
# must complete the quick LU leg — the bench the policies move most — and
# ARGO_NO_ADAPT=1 must neutralize the full mask without error. The
# bit-identity of the forced-off run is pinned by tests/test_adapt.cpp;
# this smoke only guards the CLI plumbing end-to-end.
for flag in --adapt-wb --adapt-diff --adapt-stride --adaptive; do
  echo "--- fig13a_lu --quick $flag"
  build/bench/fig13a_lu --quick "$flag" > /dev/null
done
ARGO_NO_ADAPT=1 build/bench/fig13a_lu --quick --adaptive > /dev/null
echo "  OK: per-policy toggles and ARGO_NO_ADAPT all ran"

echo "=== perf smoke: adaptive tuning gate ==="
# Adaptive-on (bitmask 7) vs fixed knobs on the fig13 quick suite, judged
# on deterministic simulated virtual_ms (rows written by bench_host.sh
# above): geomean must not lose and no bench may regress more than 2%.
python3 scripts/bench_compare.py --adapt-gate build/BENCH_host.json

echo "all checks passed"
