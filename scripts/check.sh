#!/usr/bin/env bash
# Build and test both configurations: the normal optimized build and the
# ARGO_SANITIZE build (ASan + UBSan, with the fiber-switch annotations in
# sim/engine.cpp keeping ASan's stack bookkeeping coherent across
# swapcontext). Intended as the pre-merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "=== default build ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== sanitizer build (ASan + UBSan) ==="
cmake -B build-sanitize -S . -DARGO_SANITIZE=ON
cmake --build build-sanitize -j "$JOBS"
ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"

echo "all checks passed"
