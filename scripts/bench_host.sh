#!/usr/bin/env bash
# Host-side (wall-clock) performance of the simulator itself: runs the
# fig13 quick suite plus the fig09 write-buffer sweep twice — once with the
# host fast paths on (word-wise diffs, buffer pooling, scheduler
# fast-forward, stack recycling) and once with ARGO_SLOW_PATHS=1 forcing
# the seed's slow paths — and records wall time and peak RSS per run.
#
# The two modes are bit-identical in simulated behaviour (the determinism
# tests pin that), so the wall-clock ratio isolates pure host overhead.
#
# A second sweep runs the fig13 quick suite at 32 nodes on the parallel
# engine across worker counts (--threads, default "1 2 4 8"; 1 is the
# ARGO_SEQ_ENGINE sequential reference) — those rows carry "threads",
# "engine" and "host_cpus" so scripts/bench_compare.py --par-gate can
# judge the 8-worker wall-clock speedup, and skip honestly on hosts
# without enough cores to demonstrate one.
#
# A third sweep ("scale" mode) runs fig13a and fig08 at the paper's full
# node counts (--scale-nodes, default "64 128" — the multi-word directory
# range) and records host wall time per count, each row stamped with its
# "nodes" so scripts/bench_compare.py --nodes can filter.
#
# A fourth sweep ("adapt" mode) runs the fig13 quick suite twice — fixed
# knobs (adapt bitmask 0) and all adaptive runtime-tuning policies on
# (--adaptive, bitmask 7) — and records, besides wall time, the summed
# simulated virtual_ms of the argo-series rows from each bench's own JSON
# report. Virtual time is deterministic, so scripts/bench_compare.py
# --adapt-gate can require the adaptive build to win the geomean without
# any host-noise margin.
#
# Usage: scripts/bench_host.sh [--build <dir>] [--out <path>] [--gate]
#                              [--threads "1 2 4 8"]
#                              [--scale-nodes "64 128"]
#   --gate   fail unless fast_total <= 0.95 * slow_total (perf smoke)
#
# Output: a JSON array (one object per line, like the other BENCH files)
# of rows {"schema", "commit", "date", "bench", "mode", "engine",
# "threads", "host_cpus", "adapt", "wall_s", "max_rss_kb"} — plus "nodes"
# on the par/scale rows that pin one cluster size and "virtual_ms" on the
# adapt rows — the same provenance stamp benchutil::JsonReport puts on
# every row (bench/report.hpp kBenchSchemaVersion).
set -euo pipefail
cd "$(dirname "$0")/.."

SCHEMA=5
ARGO_GIT_COMMIT="${ARGO_GIT_COMMIT:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"
export ARGO_GIT_COMMIT
RUN_DATE="$(date -u +%Y-%m-%d)"
HOST_CPUS="$(nproc)"

OUT="BENCH_host.json"
BUILD="build"
GATE=0
THREADS_SWEEP="1 2 4 8"
SCALE_NODES="64 128"
while [ $# -gt 0 ]; do
  case "$1" in
    --out) OUT="$2"; shift ;;
    --build) BUILD="$2"; shift ;;
    --threads) THREADS_SWEEP="$2"; shift ;;
    --scale-nodes) SCALE_NODES="$2"; shift ;;
    --gate) GATE=1 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

if [ ! -x "$BUILD/bench/fig13a_lu" ]; then
  echo "benches not built; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

# measure <cmd...>: prints "<wall_s> <max_rss_kb>". python3 instead of
# /usr/bin/time (not present in minimal containers); RUSAGE_CHILDREN is
# exact because each measurement python runs exactly one child.
measure() {
  python3 - "$@" <<'EOF'
import resource, subprocess, sys, time
t0 = time.monotonic()
r = subprocess.run(sys.argv[1:], stdout=subprocess.DEVNULL)
wall = time.monotonic() - t0
if r.returncode != 0:
    sys.exit(r.returncode)
rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(f"{wall:.3f} {rss}")
EOF
}

BENCHES="fig13a_lu fig13b_nbody fig13c_blackscholes fig13d_mm fig13e_ep fig13f_cg fig09_writebuffer"

ROWS=""
declare -A TOTAL=( [fast]=0 [slow]=0 )
for mode in slow fast; do
  case "$mode" in
    slow) export ARGO_SLOW_PATHS=1 ;;
    fast) export ARGO_SLOW_PATHS=0 ;;
  esac
  for bench in $BENCHES; do
    read -r wall rss < <(measure "$BUILD/bench/$bench" --quick)
    echo "-- $bench [$mode] ${wall}s rss=${rss}kB"
    ROWS="$ROWS{\"schema\":$SCHEMA,\"commit\":\"$ARGO_GIT_COMMIT\",\"date\":\"$RUN_DATE\",\"bench\":\"$bench\",\"mode\":\"$mode\",\"engine\":\"seq\",\"threads\":1,\"host_cpus\":$HOST_CPUS,\"adapt\":0,\"wall_s\":$wall,\"max_rss_kb\":$rss},\n"
    TOTAL[$mode]=$(awk -v a="${TOTAL[$mode]}" -v b="$wall" 'BEGIN { printf "%.3f", a + b }')
  done
done
unset ARGO_SLOW_PATHS

# Parallel-engine sweep: the fig13 quick suite pinned to 32 nodes (32
# shards give every worker count headroom), one pass per worker count.
# threads=1 runs ARGO_SEQ_ENGINE=1 — the sequential sharded reference the
# parallel runs are bit-identical to — so the wall-clock ratio isolates
# pure host-level parallelism.
PAR_BENCHES="fig13a_lu fig13b_nbody fig13c_blackscholes fig13d_mm fig13e_ep fig13f_cg"
for T in $THREADS_SWEEP; do
  if [ "$T" = 1 ]; then
    export ARGO_SEQ_ENGINE=1; unset ARGO_THREADS || true
    ENGINE=seq
  else
    export ARGO_THREADS="$T"; unset ARGO_SEQ_ENGINE || true
    ENGINE=par
  fi
  for bench in $PAR_BENCHES; do
    read -r wall rss < <(measure "$BUILD/bench/$bench" --quick --nodes 32)
    echo "-- $bench [par threads=$T] ${wall}s rss=${rss}kB"
    ROWS="$ROWS{\"schema\":$SCHEMA,\"commit\":\"$ARGO_GIT_COMMIT\",\"date\":\"$RUN_DATE\",\"bench\":\"$bench\",\"mode\":\"par\",\"engine\":\"$ENGINE\",\"threads\":$T,\"host_cpus\":$HOST_CPUS,\"adapt\":0,\"nodes\":32,\"wall_s\":$wall,\"max_rss_kb\":$rss},\n"
  done
done
unset ARGO_THREADS ARGO_SEQ_ENGINE || true

# Full-scale sweep: the paper's 64/128-node points (the multi-word
# directory range), quick workloads — one row per (bench, node count) so
# the host cost of wide entries is tracked over time.
SCALE_BENCHES="fig13a_lu fig08_classification"
for N in $SCALE_NODES; do
  for bench in $SCALE_BENCHES; do
    read -r wall rss < <(measure "$BUILD/bench/$bench" --quick --nodes "$N")
    echo "-- $bench [scale nodes=$N] ${wall}s rss=${rss}kB"
    ROWS="$ROWS{\"schema\":$SCHEMA,\"commit\":\"$ARGO_GIT_COMMIT\",\"date\":\"$RUN_DATE\",\"bench\":\"$bench\",\"mode\":\"scale\",\"engine\":\"seq\",\"threads\":1,\"host_cpus\":$HOST_CPUS,\"adapt\":0,\"nodes\":$N,\"wall_s\":$wall,\"max_rss_kb\":$rss},\n"
  done
done

# Adaptive-tuning sweep: the fig13 quick suite with fixed knobs (adapt
# bitmask 0) and with every adaptive policy on (--adaptive, bitmask 7).
# Each bench writes its own JSON report; the summed virtual_ms of the
# argo-series rows (the only series adaptation touches) goes on the host
# row so scripts/bench_compare.py --adapt-gate can judge the deterministic
# simulated-time win without host noise.
ADAPT_BENCHES="fig13a_lu fig13b_nbody fig13c_blackscholes fig13d_mm fig13e_ep fig13f_cg"
for A in 0 7; do
  FLAG=""
  [ "$A" = 7 ] && FLAG="--adaptive"
  for bench in $ADAPT_BENCHES; do
    TMP_JSON="$(mktemp)"
    # shellcheck disable=SC2086  # FLAG is intentionally word-split
    read -r wall rss < <(measure "$BUILD/bench/$bench" --quick $FLAG --json "$TMP_JSON")
    vms="$(python3 - "$TMP_JSON" <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))
print(f"{sum(r['virtual_ms'] for r in rows if r['series'].startswith('argo')):.6f}")
EOF
)"
    rm -f "$TMP_JSON"
    echo "-- $bench [adapt=$A] ${wall}s virtual=${vms}ms"
    ROWS="$ROWS{\"schema\":$SCHEMA,\"commit\":\"$ARGO_GIT_COMMIT\",\"date\":\"$RUN_DATE\",\"bench\":\"$bench\",\"mode\":\"adapt\",\"engine\":\"seq\",\"threads\":1,\"host_cpus\":$HOST_CPUS,\"adapt\":$A,\"virtual_ms\":$vms,\"wall_s\":$wall,\"max_rss_kb\":$rss},\n"
  done
done

{
  echo "["
  printf '%b' "$ROWS" | sed '$ s/,$//'
  echo "]"
} > "$OUT"

echo "fast total: ${TOTAL[fast]}s   slow total: ${TOTAL[slow]}s"
awk -v f="${TOTAL[fast]}" -v s="${TOTAL[slow]}" \
  'BEGIN { printf "speedup (slow/fast): %.2fx\n", s / f }'
echo "wrote $OUT"

if [ "$GATE" = 1 ]; then
  awk -v f="${TOTAL[fast]}" -v s="${TOTAL[slow]}" 'BEGIN {
    if (f > 0.95 * s) {
      printf "FAIL: host fast paths too slow: fast %.3fs > 0.95 * slow %.3fs\n", f, s
      exit 1
    }
    printf "OK: fast %.3fs <= 0.95 * slow %.3fs\n", f, s
  }'
fi
