#!/usr/bin/env python3
"""Compare two BENCH_host.json files (baseline vs fresh) on fast-mode wall
time and gate on the geometric-mean ratio.

Usage:
  scripts/bench_compare.py BASELINE FRESH [--max-regress 0.10]
                                          [--min-speedup 1.25]
                                          [--mode fast]
                                          [--nodes 64]
  scripts/bench_compare.py --par-gate FILE [--min-par-speedup 2.0]
                                           [--par-threads 8]
  scripts/bench_compare.py --adapt-gate FILE [--min-adapt-geomean 1.0]
                                             [--max-adapt-regress 0.02]

Per bench the script reports ratio = baseline_wall / fresh_wall (> 1 means
the fresh build is faster). Gates:
  --max-regress R   fail when the geomean ratio < 1 - R (fresh build is
                    more than R slower than the baseline) — the CI
                    perf-smoke setting.
  --min-speedup S   fail when the geomean ratio < S — used by perf PRs
                    that must demonstrate a wall-clock win.
  --par-gate FILE   single-file mode: compare the parallel-engine sweep
                    rows (mode "par", written by scripts/bench_host.sh)
                    at --par-threads workers against their threads=1
                    sequential reference and fail when the geomean
                    speedup < --min-par-speedup. The required speedup is
                    capped at half the recorded host_cpus (a host cannot
                    exceed its core count), and the gate is skipped with
                    a notice on single-core hosts where any parallel
                    speedup is physically impossible.
  --adapt-gate FILE single-file mode: compare the adaptive-tuning sweep
                    rows (mode "adapt", written by scripts/bench_host.sh)
                    pairing each bench's fixed-knob run (adapt bitmask 0)
                    against its adaptive run (bitmask != 0) on simulated
                    virtual_ms — deterministic, so no host-noise margin is
                    needed. Fails when the geomean fixed/adaptive ratio <
                    --min-adapt-geomean (adaptation must not lose overall)
                    or any single bench regresses more than
                    --max-adapt-regress (default 2%).

Rows carry the provenance stamp written by bench/report.hpp and
scripts/bench_host.sh ({"schema", "commit", "date", ...}); schema 2
(pre-parallel-engine), 3, 4 (per-row "nodes" stamp), and 5 (per-row
"adapt" policy bitmask) are accepted, others are an error, missing stamps
(schema-1 files) a warning, and a single file mixing two schema versions
is an error — it means two different runs were concatenated and the rows
are not comparable. Comparison rows are keyed by (bench, mode, threads,
nodes) so multi-configuration files (parallel sweeps, node scaling,
adaptive pairs) never collapse distinct measurements onto one key.
Stdlib only — runs in the CI container.
"""

import argparse
import json
import math
import sys

SCHEMAS = (2, 3, 4, 5)


def check_schema(path, row, warned, seen):
    schema = row.get("schema")
    if schema is not None and schema not in SCHEMAS:
        sys.exit(f"{path}: schema {schema} not in supported {SCHEMAS}")
    if schema is not None:
        seen.add(schema)
        if len(seen) > 1:
            sys.exit(f"{path}: mixed schema versions {sorted(seen)} in one "
                     f"file — rows from different runs are not comparable; "
                     f"regenerate the file in one pass")
    if schema is None and not warned:
        print(f"warning: {path}: rows carry no provenance stamp "
              f"(pre-schema-{SCHEMAS[0]} file)", file=sys.stderr)
        return True
    return warned


def row_key(row):
    """(bench, threads, nodes) — mode is already fixed by the caller's
    filter. Absent stamps (older schemas) key as None so old baselines
    stay comparable with themselves."""
    t = row.get("threads")
    n = row.get("nodes")
    return (row["bench"],
            int(t) if t is not None else None,
            int(n) if n is not None else None)


def key_label(key):
    bench, t, n = key
    label = bench
    if t is not None and t != 1:
        label += f"@t{t}"
    if n is not None:
        label += f"@n{n}"
    return label


def load_rows(path, mode, nodes=None):
    with open(path) as f:
        rows = json.load(f)
    out = {}
    stamp = None
    warned = False
    seen = set()
    for row in rows:
        warned = check_schema(path, row, warned, seen)
        if stamp is None and row.get("schema") is not None:
            stamp = (row.get("commit", "unknown"), row.get("date", "unknown"))
        if row.get("mode") != mode:
            continue
        # --nodes filter: drop rows measured at a different node count.
        # Rows without the stamp (schema <= 3 files) are kept so old
        # baselines remain comparable.
        if nodes is not None and row.get("nodes") is not None \
                and int(row["nodes"]) != nodes:
            continue
        out[row_key(row)] = float(row["wall_s"])
    if not out:
        sys.exit(f"{path}: no rows with mode={mode!r}"
                 + (f" and nodes={nodes}" if nodes is not None else ""))
    return out, stamp or ("unknown", "unknown")


def geomean_ratios(pairs):
    return math.exp(sum(math.log(r) for r in pairs) / len(pairs))


def par_gate(path, want_threads, min_speedup):
    """Gate the parallel-engine sweep in one file: wall(threads=1) /
    wall(threads=want_threads) per bench, geomean >= the (host-capped)
    required speedup."""
    with open(path) as f:
        rows = json.load(f)
    seq, par = {}, {}
    host_cpus = None
    warned = False
    seen = set()
    for row in rows:
        warned = check_schema(path, row, warned, seen)
        if row.get("mode") != "par":
            continue
        if host_cpus is None and "host_cpus" in row:
            host_cpus = int(row["host_cpus"])
        t = int(row.get("threads", 0))
        if t == 1:
            seq[row["bench"]] = float(row["wall_s"])
        elif t == want_threads:
            par[row["bench"]] = float(row["wall_s"])
    if not seq or not par:
        sys.exit(f"{path}: no parallel sweep rows (mode 'par') at threads 1 "
                 f"and {want_threads}; run scripts/bench_host.sh")

    common = sorted(set(seq) & set(par))
    if not common:
        sys.exit("no benches with both sequential and parallel rows")
    print(f"parallel gate: {path} ({want_threads} workers vs sequential, "
          f"host_cpus={host_cpus})")
    print(f"{'bench':<24} {'seq_s':>8} {'par_s':>8} {'speedup':>8}")
    ratios = []
    for bench in common:
        ratio = seq[bench] / par[bench]
        ratios.append(ratio)
        print(f"{bench:<24} {seq[bench]:>8.3f} {par[bench]:>8.3f} "
              f"{ratio:>7.2f}x")
    geomean = geomean_ratios(ratios)
    print(f"{'geomean':<24} {'':>8} {'':>8} {geomean:>7.2f}x")

    if host_cpus is not None and host_cpus < 2:
        print(f"SKIP: host has {host_cpus} CPU(s); a wall-clock parallel "
              f"speedup is physically impossible — gate not enforced")
        return
    required = min_speedup
    if host_cpus is not None and host_cpus / 2.0 < required:
        required = host_cpus / 2.0
        print(f"note: required speedup capped at {required:.2f}x "
              f"(host has only {host_cpus} cores)")
    if geomean < required:
        sys.exit(f"FAIL: {want_threads}-worker geomean {geomean:.3f}x < "
                 f"required {required:.2f}x over the sequential engine")
    print(f"OK: {geomean:.2f}x >= {required:.2f}x")


def adapt_gate(path, min_geomean, max_regress):
    """Gate the adaptive-tuning sweep in one file: per (bench, threads,
    nodes), simulated virtual_ms of the fixed-knob run (adapt bitmask 0)
    over the adaptive run (bitmask != 0). Virtual time is deterministic,
    so the gate needs no host-noise margin: geomean must reach min_geomean
    and no single bench may regress more than max_regress."""
    with open(path) as f:
        rows = json.load(f)
    fixed, adaptive = {}, {}
    warned = False
    seen = set()
    for row in rows:
        warned = check_schema(path, row, warned, seen)
        if row.get("mode") != "adapt":
            continue
        if row.get("adapt") is None or row.get("virtual_ms") is None:
            sys.exit(f"{path}: adapt-mode row without 'adapt'/'virtual_ms' "
                     f"stamps (needs schema >= 5; regenerate with "
                     f"scripts/bench_host.sh)")
        bucket = fixed if int(row["adapt"]) == 0 else adaptive
        bucket[row_key(row)] = float(row["virtual_ms"])
    if not fixed or not adaptive:
        sys.exit(f"{path}: no adaptive sweep rows (mode 'adapt') with both "
                 f"adapt=0 and adapt!=0; run scripts/bench_host.sh")

    common = sorted(set(fixed) & set(adaptive), key=key_label)
    if not common:
        sys.exit("no benches with both fixed and adaptive rows")
    print(f"adaptive gate: {path} (fixed knobs vs adaptive policies, "
          f"simulated virtual time)")
    print(f"{'bench':<24} {'fixed_ms':>9} {'adapt_ms':>9} {'ratio':>7}")
    ratios = []
    worst = None
    for key in common:
        ratio = fixed[key] / adaptive[key]
        ratios.append(ratio)
        if worst is None or ratio < worst[0]:
            worst = (ratio, key)
        print(f"{key_label(key):<24} {fixed[key]:>9.3f} "
              f"{adaptive[key]:>9.3f} {ratio:>6.3f}x")
    geomean = geomean_ratios(ratios)
    print(f"{'geomean':<24} {'':>9} {'':>9} {geomean:>6.3f}x")

    if geomean < min_geomean:
        sys.exit(f"FAIL: adaptive geomean {geomean:.4f}x < required "
                 f"{min_geomean:.2f}x — adaptation loses overall")
    if worst[0] < 1.0 - max_regress:
        sys.exit(f"FAIL: {key_label(worst[1])} regresses to "
                 f"{worst[0]:.4f}x under adaptation (allowed floor "
                 f"{1.0 - max_regress:.2f}x)")
    print(f"OK: geomean {geomean:.3f}x >= {min_geomean:.2f}x, worst bench "
          f"{key_label(worst[1])} {worst[0]:.3f}x >= "
          f"{1.0 - max_regress:.2f}x")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("fresh", nargs="?")
    ap.add_argument("--max-regress", type=float, default=None,
                    help="fail when geomean ratio < 1 - R")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail when geomean ratio < S")
    ap.add_argument("--mode", default="fast",
                    help="which rows to compare (default: fast)")
    ap.add_argument("--nodes", type=int, default=None,
                    help="keep only rows measured on this cluster node "
                         "count (rows without a 'nodes' stamp are kept)")
    ap.add_argument("--par-gate", metavar="FILE", default=None,
                    help="gate the parallel-engine sweep in FILE")
    ap.add_argument("--par-threads", type=int, default=8,
                    help="worker count the parallel gate judges (default 8)")
    ap.add_argument("--min-par-speedup", type=float, default=2.0,
                    help="required parallel geomean speedup (default 2.0)")
    ap.add_argument("--adapt-gate", metavar="FILE", default=None,
                    help="gate the adaptive-tuning sweep in FILE")
    ap.add_argument("--min-adapt-geomean", type=float, default=1.0,
                    help="required fixed/adaptive virtual-time geomean "
                         "(default 1.0: adaptation must not lose)")
    ap.add_argument("--max-adapt-regress", type=float, default=0.02,
                    help="worst single-bench regression adaptation may "
                         "cause (default 0.02 = 2%%)")
    args = ap.parse_args()

    ran_gate = False
    if args.par_gate is not None:
        par_gate(args.par_gate, args.par_threads, args.min_par_speedup)
        ran_gate = True
    if args.adapt_gate is not None:
        adapt_gate(args.adapt_gate, args.min_adapt_geomean,
                   args.max_adapt_regress)
        ran_gate = True
    if ran_gate and args.baseline is None:
        return
    if args.baseline is None or args.fresh is None:
        ap.error("BASELINE and FRESH files are required unless --par-gate "
                 "or --adapt-gate is used alone")

    base, base_stamp = load_rows(args.baseline, args.mode, args.nodes)
    fresh, fresh_stamp = load_rows(args.fresh, args.mode, args.nodes)

    common = sorted(set(base) & set(fresh), key=key_label)
    if not common:
        sys.exit("no benches in common between the two files")
    for name, only in (("baseline", set(base) - set(fresh)),
                       ("fresh", set(fresh) - set(base))):
        if only:
            print(f"warning: benches only in {name}: "
                  f"{sorted(key_label(k) for k in only)}", file=sys.stderr)

    print(f"baseline: {args.baseline} (commit {base_stamp[0]}, "
          f"{base_stamp[1]})")
    print(f"fresh:    {args.fresh} (commit {fresh_stamp[0]}, "
          f"{fresh_stamp[1]})")
    print(f"mode:     {args.mode}")
    if args.nodes is not None:
        print(f"nodes:    {args.nodes}")
    print(f"{'bench':<24} {'base_s':>8} {'fresh_s':>8} {'ratio':>7}")
    log_sum = 0.0
    for bench in common:
        ratio = base[bench] / fresh[bench]
        log_sum += math.log(ratio)
        print(f"{key_label(bench):<24} {base[bench]:>8.3f} "
              f"{fresh[bench]:>8.3f} {ratio:>6.2f}x")
    geomean = math.exp(log_sum / len(common))
    print(f"{'geomean':<24} {'':>8} {'':>8} {geomean:>6.2f}x")

    if args.max_regress is not None and geomean < 1.0 - args.max_regress:
        sys.exit(f"FAIL: geomean {geomean:.3f}x is more than "
                 f"{args.max_regress:.0%} slower than the baseline")
    if args.min_speedup is not None and geomean < args.min_speedup:
        sys.exit(f"FAIL: geomean {geomean:.3f}x < required "
                 f"{args.min_speedup:.2f}x speedup")
    print("OK")


if __name__ == "__main__":
    main()
