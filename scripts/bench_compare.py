#!/usr/bin/env python3
"""Compare two BENCH_host.json files (baseline vs fresh) on fast-mode wall
time and gate on the geometric-mean ratio.

Usage:
  scripts/bench_compare.py BASELINE FRESH [--max-regress 0.10]
                                          [--min-speedup 1.25]
                                          [--mode fast]
                                          [--nodes 64]
  scripts/bench_compare.py --par-gate FILE [--min-par-speedup 2.0]
                                           [--par-threads 8]

Per bench the script reports ratio = baseline_wall / fresh_wall (> 1 means
the fresh build is faster). Gates:
  --max-regress R   fail when the geomean ratio < 1 - R (fresh build is
                    more than R slower than the baseline) — the CI
                    perf-smoke setting.
  --min-speedup S   fail when the geomean ratio < S — used by perf PRs
                    that must demonstrate a wall-clock win.
  --par-gate FILE   single-file mode: compare the parallel-engine sweep
                    rows (mode "par", written by scripts/bench_host.sh)
                    at --par-threads workers against their threads=1
                    sequential reference and fail when the geomean
                    speedup < --min-par-speedup. The required speedup is
                    capped at half the recorded host_cpus (a host cannot
                    exceed its core count), and the gate is skipped with
                    a notice on single-core hosts where any parallel
                    speedup is physically impossible.

Rows carry the provenance stamp written by bench/report.hpp and
scripts/bench_host.sh ({"schema", "commit", "date", ...}); schema 2
(pre-parallel-engine), 3, and 4 (per-row "nodes" stamp) are accepted,
others are an error, missing stamps (schema-1 files) a warning. --nodes N
keeps only rows measured on an N-node cluster; rows without a "nodes"
stamp (schema <= 3) are kept, so mixed files still compare. Stdlib only —
runs in the CI container.
"""

import argparse
import json
import math
import sys

SCHEMAS = (2, 3, 4)


def check_schema(path, row, warned):
    schema = row.get("schema")
    if schema is not None and schema not in SCHEMAS:
        sys.exit(f"{path}: schema {schema} not in supported {SCHEMAS}")
    if schema is None and not warned:
        print(f"warning: {path}: rows carry no provenance stamp "
              f"(pre-schema-{SCHEMAS[0]} file)", file=sys.stderr)
        return True
    return warned


def load_rows(path, mode, nodes=None):
    with open(path) as f:
        rows = json.load(f)
    out = {}
    stamp = None
    warned = False
    for row in rows:
        warned = check_schema(path, row, warned)
        if stamp is None and row.get("schema") is not None:
            stamp = (row.get("commit", "unknown"), row.get("date", "unknown"))
        if row.get("mode") != mode:
            continue
        # --nodes filter: drop rows measured at a different node count.
        # Rows without the stamp (schema <= 3 files) are kept so old
        # baselines remain comparable.
        if nodes is not None and row.get("nodes") is not None \
                and int(row["nodes"]) != nodes:
            continue
        key = row["bench"]
        # Unfiltered, a multi-node-count file (mode "scale") would collapse
        # each bench to its last row; qualify the key instead.
        if nodes is None and row.get("nodes") is not None:
            key = f"{key}@n{int(row['nodes'])}"
        out[key] = float(row["wall_s"])
    if not out:
        sys.exit(f"{path}: no rows with mode={mode!r}"
                 + (f" and nodes={nodes}" if nodes is not None else ""))
    return out, stamp or ("unknown", "unknown")


def geomean_ratios(pairs):
    return math.exp(sum(math.log(r) for r in pairs) / len(pairs))


def par_gate(path, want_threads, min_speedup):
    """Gate the parallel-engine sweep in one file: wall(threads=1) /
    wall(threads=want_threads) per bench, geomean >= the (host-capped)
    required speedup."""
    with open(path) as f:
        rows = json.load(f)
    seq, par = {}, {}
    host_cpus = None
    warned = False
    for row in rows:
        warned = check_schema(path, row, warned)
        if row.get("mode") != "par":
            continue
        if host_cpus is None and "host_cpus" in row:
            host_cpus = int(row["host_cpus"])
        t = int(row.get("threads", 0))
        if t == 1:
            seq[row["bench"]] = float(row["wall_s"])
        elif t == want_threads:
            par[row["bench"]] = float(row["wall_s"])
    if not seq or not par:
        sys.exit(f"{path}: no parallel sweep rows (mode 'par') at threads 1 "
                 f"and {want_threads}; run scripts/bench_host.sh")

    common = sorted(set(seq) & set(par))
    if not common:
        sys.exit("no benches with both sequential and parallel rows")
    print(f"parallel gate: {path} ({want_threads} workers vs sequential, "
          f"host_cpus={host_cpus})")
    print(f"{'bench':<24} {'seq_s':>8} {'par_s':>8} {'speedup':>8}")
    ratios = []
    for bench in common:
        ratio = seq[bench] / par[bench]
        ratios.append(ratio)
        print(f"{bench:<24} {seq[bench]:>8.3f} {par[bench]:>8.3f} "
              f"{ratio:>7.2f}x")
    geomean = geomean_ratios(ratios)
    print(f"{'geomean':<24} {'':>8} {'':>8} {geomean:>7.2f}x")

    if host_cpus is not None and host_cpus < 2:
        print(f"SKIP: host has {host_cpus} CPU(s); a wall-clock parallel "
              f"speedup is physically impossible — gate not enforced")
        return
    required = min_speedup
    if host_cpus is not None and host_cpus / 2.0 < required:
        required = host_cpus / 2.0
        print(f"note: required speedup capped at {required:.2f}x "
              f"(host has only {host_cpus} cores)")
    if geomean < required:
        sys.exit(f"FAIL: {want_threads}-worker geomean {geomean:.3f}x < "
                 f"required {required:.2f}x over the sequential engine")
    print(f"OK: {geomean:.2f}x >= {required:.2f}x")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("fresh", nargs="?")
    ap.add_argument("--max-regress", type=float, default=None,
                    help="fail when geomean ratio < 1 - R")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail when geomean ratio < S")
    ap.add_argument("--mode", default="fast",
                    help="which rows to compare (default: fast)")
    ap.add_argument("--nodes", type=int, default=None,
                    help="keep only rows measured on this cluster node "
                         "count (rows without a 'nodes' stamp are kept)")
    ap.add_argument("--par-gate", metavar="FILE", default=None,
                    help="gate the parallel-engine sweep in FILE")
    ap.add_argument("--par-threads", type=int, default=8,
                    help="worker count the parallel gate judges (default 8)")
    ap.add_argument("--min-par-speedup", type=float, default=2.0,
                    help="required parallel geomean speedup (default 2.0)")
    args = ap.parse_args()

    if args.par_gate is not None:
        par_gate(args.par_gate, args.par_threads, args.min_par_speedup)
        if args.baseline is None:
            return
    if args.baseline is None or args.fresh is None:
        ap.error("BASELINE and FRESH files are required unless --par-gate "
                 "is used alone")

    base, base_stamp = load_rows(args.baseline, args.mode, args.nodes)
    fresh, fresh_stamp = load_rows(args.fresh, args.mode, args.nodes)

    common = sorted(set(base) & set(fresh))
    if not common:
        sys.exit("no benches in common between the two files")
    for name, only in (("baseline", set(base) - set(fresh)),
                       ("fresh", set(fresh) - set(base))):
        if only:
            print(f"warning: benches only in {name}: {sorted(only)}",
                  file=sys.stderr)

    print(f"baseline: {args.baseline} (commit {base_stamp[0]}, "
          f"{base_stamp[1]})")
    print(f"fresh:    {args.fresh} (commit {fresh_stamp[0]}, "
          f"{fresh_stamp[1]})")
    print(f"mode:     {args.mode}")
    if args.nodes is not None:
        print(f"nodes:    {args.nodes}")
    print(f"{'bench':<24} {'base_s':>8} {'fresh_s':>8} {'ratio':>7}")
    log_sum = 0.0
    for bench in common:
        ratio = base[bench] / fresh[bench]
        log_sum += math.log(ratio)
        print(f"{bench:<24} {base[bench]:>8.3f} {fresh[bench]:>8.3f} "
              f"{ratio:>6.2f}x")
    geomean = math.exp(log_sum / len(common))
    print(f"{'geomean':<24} {'':>8} {'':>8} {geomean:>6.2f}x")

    if args.max_regress is not None and geomean < 1.0 - args.max_regress:
        sys.exit(f"FAIL: geomean {geomean:.3f}x is more than "
                 f"{args.max_regress:.0%} slower than the baseline")
    if args.min_speedup is not None and geomean < args.min_speedup:
        sys.exit(f"FAIL: geomean {geomean:.3f}x < required "
                 f"{args.min_speedup:.2f}x speedup")
    print("OK")


if __name__ == "__main__":
    main()
