#!/usr/bin/env python3
"""Compare two BENCH_host.json files (baseline vs fresh) on fast-mode wall
time and gate on the geometric-mean ratio.

Usage:
  scripts/bench_compare.py BASELINE FRESH [--max-regress 0.10]
                                          [--min-speedup 1.25]
                                          [--mode fast]

Per bench the script reports ratio = baseline_wall / fresh_wall (> 1 means
the fresh build is faster). Gates:
  --max-regress R   fail when the geomean ratio < 1 - R (fresh build is
                    more than R slower than the baseline) — the CI
                    perf-smoke setting.
  --min-speedup S   fail when the geomean ratio < S — used by perf PRs
                    that must demonstrate a wall-clock win.

Rows carry the provenance stamp written by bench/report.hpp and
scripts/bench_host.sh ({"schema", "commit", "date", ...}); mismatched
schema versions are an error, missing stamps (schema-1 files) a warning.
Stdlib only — runs in the CI container.
"""

import argparse
import json
import math
import sys

SCHEMA = 2


def load_rows(path, mode):
    with open(path) as f:
        rows = json.load(f)
    out = {}
    stamp = None
    for row in rows:
        schema = row.get("schema")
        if schema is not None and schema != SCHEMA:
            sys.exit(f"{path}: schema {schema} != expected {SCHEMA}")
        if schema is None and stamp is None:
            print(f"warning: {path}: rows carry no provenance stamp "
                  f"(pre-schema-{SCHEMA} file)", file=sys.stderr)
            stamp = ("unknown", "unknown")
        if stamp is None or stamp == ("unknown", "unknown"):
            stamp = (row.get("commit", "unknown"), row.get("date", "unknown"))
        if row.get("mode") != mode:
            continue
        out[row["bench"]] = float(row["wall_s"])
    if not out:
        sys.exit(f"{path}: no rows with mode={mode!r}")
    return out, stamp


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-regress", type=float, default=None,
                    help="fail when geomean ratio < 1 - R")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail when geomean ratio < S")
    ap.add_argument("--mode", default="fast",
                    help="which rows to compare (default: fast)")
    args = ap.parse_args()

    base, base_stamp = load_rows(args.baseline, args.mode)
    fresh, fresh_stamp = load_rows(args.fresh, args.mode)

    common = sorted(set(base) & set(fresh))
    if not common:
        sys.exit("no benches in common between the two files")
    for name, only in (("baseline", set(base) - set(fresh)),
                       ("fresh", set(fresh) - set(base))):
        if only:
            print(f"warning: benches only in {name}: {sorted(only)}",
                  file=sys.stderr)

    print(f"baseline: {args.baseline} (commit {base_stamp[0]}, "
          f"{base_stamp[1]})")
    print(f"fresh:    {args.fresh} (commit {fresh_stamp[0]}, "
          f"{fresh_stamp[1]})")
    print(f"mode:     {args.mode}")
    print(f"{'bench':<24} {'base_s':>8} {'fresh_s':>8} {'ratio':>7}")
    log_sum = 0.0
    for bench in common:
        ratio = base[bench] / fresh[bench]
        log_sum += math.log(ratio)
        print(f"{bench:<24} {base[bench]:>8.3f} {fresh[bench]:>8.3f} "
              f"{ratio:>6.2f}x")
    geomean = math.exp(log_sum / len(common))
    print(f"{'geomean':<24} {'':>8} {'':>8} {geomean:>6.2f}x")

    if args.max_regress is not None and geomean < 1.0 - args.max_regress:
        sys.exit(f"FAIL: geomean {geomean:.3f}x is more than "
                 f"{args.max_regress:.0%} slower than the baseline")
    if args.min_speedup is not None and geomean < args.min_speedup:
        sys.exit(f"FAIL: geomean {geomean:.3f}x < required "
                 f"{args.min_speedup:.2f}x speedup")
    print("OK")


if __name__ == "__main__":
    main()
