#!/usr/bin/env bash
# Pipeline-depth benchmark sweep: runs the RDMA-bound figures at posted
# send-queue depths 1 / 4 / 16, plus (full mode) the fig08 classification
# figure and the 64/128-node full-scale legs of fig13a/fig08, and merges
# the per-run JSON into one file (BENCH_pipeline.json by default).
#
# Usage: scripts/bench_json.sh [--quick] [--chaos] [--out <path>] [--build <dir>]
#                               [--threads <n>]
#   --quick   reduced sweep (fig09 only, small sizes) for CI smoke runs
#   --chaos   crash-recovery sweep instead: runs bench/chaos_recovery
#             (heartbeat-interval sweep with one mid-run node crash) and
#             writes BENCH_recovery.json
#   --threads <n>  run every bench on the parallel engine with n host
#             workers (ARGO_THREADS=n; virtual-time results are identical,
#             the rows' "threads"/"engine" stamp records the mode)
#
# Depth 1 is the paper's serialized-NIC behaviour (one blocking MPI/verbs
# op at a time); higher depths overlap wire latency across in-flight ops.
set -euo pipefail
cd "$(dirname "$0")/.."

# Provenance stamp for benchutil::JsonReport rows (bench/report.hpp).
ARGO_GIT_COMMIT="${ARGO_GIT_COMMIT:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"
export ARGO_GIT_COMMIT

OUT=""
BUILD="build"
QUICK=0
CHAOS=0
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --chaos) CHAOS=1 ;;
    --out) OUT="$2"; shift ;;
    --build) BUILD="$2"; shift ;;
    --threads) export ARGO_THREADS="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done
if [ -z "$OUT" ]; then
  if [ "$CHAOS" = 1 ]; then OUT="BENCH_recovery.json"; else OUT="BENCH_pipeline.json"; fi
fi

if [ ! -x "$BUILD/bench/fig09_writebuffer" ]; then
  echo "benches not built; run: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

if [ "$CHAOS" = 1 ]; then
  # Crash-recovery mode: a single run of the chaos bench (it sweeps the
  # heartbeat interval internally; one node crash-stops mid-run each time).
  EXTRA=()
  [ "$QUICK" = 1 ] && EXTRA+=(--quick)
  "$BUILD/bench/chaos_recovery" --json "$OUT" ${EXTRA[@]+"${EXTRA[@]}"}
  exit 0
fi

TMPDIR_JSON="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_JSON"' EXIT

run() { # run <binary> <tag> <depth> [extra args...]
  local bin="$1" tag="$2" depth="$3"
  shift 3
  echo "-- $tag pipeline=$depth"
  "$BUILD/bench/$bin" --json "$TMPDIR_JSON/$tag-p$depth.json" \
    --pipeline "$depth" "$@" > "$TMPDIR_JSON/$tag-p$depth.log"
}

DEPTHS="1 4 16"
for d in $DEPTHS; do
  if [ "$QUICK" = 1 ]; then
    run fig09_writebuffer fig09 "$d" --quick
    run microbench_engine microbench "$d" --quick
  else
    run fig07_bandwidth fig07 "$d"
    run fig09_writebuffer fig09 "$d"
    run fig13a_lu fig13a "$d"
    run microbench_engine microbench "$d"
  fi
done

# Full-scale legs (full mode only): the classification figure at its
# default 4 nodes, then fig13a's scaling curve and fig08's comparison at
# the paper's 64/128-node points — the multi-word directory range. Every
# row carries its "nodes" stamp, so one merged file holds all the curves.
if [ "$QUICK" != 1 ]; then
  run fig08_classification fig08 1
  run fig13a_lu fig13a-scale 1 --nodes 64,128
  run fig08_classification fig08-scale 1 --nodes 64,128
fi

# Merge the per-run arrays (one object per line) into a single array.
{
  echo "["
  for f in "$TMPDIR_JSON"/*.json; do
    # Strip the array brackets, keep the row lines, normalize commas.
    sed -e '/^\[$/d' -e '/^\]$/d' -e 's/,$//' "$f" | while IFS= read -r row; do
      [ -z "$row" ] && continue
      echo "$row,"
    done
  done | sed '$ s/,$//'
  echo "]"
} > "$OUT"

ROWS=$(grep -c '^{' "$OUT" || true)
echo "wrote $ROWS rows to $OUT"
