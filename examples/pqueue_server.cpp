// A distributed work queue under hierarchical queue delegation locking
// (§4.2): threads all over the cluster push and pop prioritized jobs on a
// pairing heap living in global memory. HQDL batches each node's critical
// sections onto one helper thread — one global lock handover and one
// SI/SD fence pair per *batch* instead of per operation.
//
// Compare against DsmCohortLock (flag below) to see why the paper turns
// distributed critical-section execution "on its head".
#include <cstdio>
#include <cstring>

#include "argo/apps.hpp"
#include "argo/sim.hpp"
#include "argo/sync.hpp"

int main(int argc, char** argv) {
  const bool use_cohort = argc > 1 && std::strcmp(argv[1], "--cohort") == 0;

  argo::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.threads_per_node = 4;
  cfg.global_mem_bytes = 16u << 20;
  argo::Cluster cluster(cfg);

  argoapps::DsmPairingHeap jobs(cluster, 1 << 16);
  argosync::HqdLock hqdl(cluster);
  argosync::DsmCohortLock cohort(cluster);

  constexpr int kJobsPerThread = 200;
  std::vector<std::uint64_t> executed;  // priorities in completion order

  const argosim::Time elapsed = cluster.run([&](argo::Thread& self) {
    argosim::Rng rng(static_cast<std::uint64_t>(self.gid()) * 77 + 1);
    // Phase 1: everyone submits prioritized jobs (detached delegation —
    // submitters do not wait).
    for (int i = 0; i < kJobsPerThread; ++i) {
      const std::uint64_t prio = rng.next_below(1'000'000);
      auto cs = [&jobs, prio](argo::Thread& exec) { jobs.insert(exec, prio); };
      if (use_cohort)
        cohort.execute(self, cs);
      else
        hqdl.execute(self, cs, /*wait=*/false);
      self.compute(2'000);  // produce the next job
    }
    self.barrier();
    // Phase 2: drain — each thread pops jobs until the queue is empty.
    for (;;) {
      bool got = false;
      std::uint64_t prio = 0;
      auto cs = [&](argo::Thread& exec) {
        auto m = jobs.extract_min(exec);
        got = m.has_value();
        if (got) prio = *m;
      };
      if (use_cohort)
        cohort.execute(self, cs);
      else
        hqdl.execute(self, cs, /*wait=*/true);
      if (!got) break;
      executed.push_back(prio);
      self.compute(5'000);  // "run" the job
    }
    self.barrier();
  });

  const int total = cluster.nthreads() * kJobsPerThread;
  std::printf("lock            : %s\n", use_cohort ? "DSM cohort" : "HQDL");
  std::printf("jobs executed   : %zu / %d\n", executed.size(), total);
  std::printf("virtual time    : %.3f ms\n", argosim::to_ms(elapsed));
  if (!use_cohort) {
    const auto st = hqdl.total_stats();
    std::printf("delegation      : %llu sections in %llu batches "
                "(%.1f per global lock handover)\n",
                static_cast<unsigned long long>(st.executed),
                static_cast<unsigned long long>(st.batches),
                static_cast<double>(st.executed) /
                    static_cast<double>(st.batches));
  }
  const argo::ClusterStats cs = cluster.stats();
  std::printf("SI fences       : %llu, SD fences: %llu\n",
              static_cast<unsigned long long>(cs.coherence.si_fences),
              static_cast<unsigned long long>(cs.coherence.sd_fences));
  std::printf("hint: run with --cohort to compare conventional lock semantics\n");
  return executed.size() == static_cast<std::size_t>(total) ? 0 : 1;
}
