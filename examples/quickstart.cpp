// Quickstart: allocate a global array across a 4-node simulated cluster,
// fill it in parallel, and reduce it — the smallest end-to-end Argo
// program.
//
//   $ ./examples/quickstart
//
// Everything below runs in virtual time on the deterministic cluster
// simulator; the printed timings are the virtual-clock cost of the
// distributed execution (network, coherence, fences), not host time.
#include <cstdio>

#include "argo/argo.hpp"
#include "argo/trace.hpp"

int main() {
  // 1. Configure a cluster: 4 nodes x 4 threads, default Carina coherence
  //    (P/S3 classification), blocked home distribution. Protocol tracing
  //    is off by default; enabling it never changes virtual times.
  argo::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.threads_per_node = 4;
  cfg.global_mem_bytes = 8u << 20;
  cfg.trace.enabled = true;
  argo::Cluster cluster(cfg);
  // Export every protocol event (fences, fills, writebacks, transitions)
  // as Chrome trace_event JSON — open in chrome://tracing or Perfetto —
  // and as the compact binary format for scripts/trace_query.
  cluster.trace_sink(argoobs::make_chrome_trace_sink("quickstart_trace.json"));
  cluster.trace_sink(argoobs::make_binary_trace_sink("quickstart_trace.bin"));

  // 2. Allocate a global array. Pages are homed across the nodes.
  constexpr std::size_t kN = 1 << 16;
  auto data = cluster.alloc<double>(kN);
  auto partial = cluster.alloc<double>(static_cast<std::size_t>(cluster.nthreads()));
  auto result = cluster.alloc<double>(1);

  // 3. Host-side initialization, then reset the classification maps —
  //    like Argo, initialization accesses do not count (§3.4).
  for (std::size_t i = 0; i < kN; ++i)
    cluster.host_ptr(data)[i] = 1.0 / static_cast<double>(i + 1);
  cluster.reset_classification();

  // 4. Run one SPMD body on every thread of every node.
  const argosim::Time elapsed = cluster.run([&](argo::Thread& self) {
    const std::size_t lo = kN * static_cast<std::size_t>(self.gid()) /
                           static_cast<std::size_t>(self.nthreads());
    const std::size_t hi = kN * (static_cast<std::size_t>(self.gid()) + 1) /
                           static_cast<std::size_t>(self.nthreads());
    // Scale our slice (reads + writes through the DSM, bulk-chunked).
    std::vector<double> buf(hi - lo);
    self.load_bulk(data + static_cast<std::ptrdiff_t>(lo), buf.data(),
                   hi - lo);
    for (double& v : buf) v *= 2.0;
    self.store_bulk(data + static_cast<std::ptrdiff_t>(lo), buf.data(),
                    hi - lo);

    // Reduce: everyone publishes a partial, barrier, thread 0 sums.
    double sum = 0;
    for (double v : buf) sum += v;
    self.store(partial + self.gid(), sum);
    self.barrier();  // Vela hierarchical barrier: SD -> rendezvous -> SI
    if (self.gid() == 0) {
      double total = 0;
      for (int g = 0; g < self.nthreads(); ++g)
        total += self.load(partial + g);
      self.store(result, total);
    }
  });

  // 5. Inspect results and protocol statistics on the host, through the
  //    aggregated immutable snapshot.
  const argo::ClusterStats s = cluster.stats();
  std::printf("sum(2/i)        : %.6f (expect 2*H(%zu) = %.6f)\n",
              *cluster.host_ptr(result), kN, 2 * 11.667578);  // H(65536)
  std::printf("virtual time    : %.3f ms\n", argosim::to_ms(elapsed));
  std::printf("read misses     : %llu (line fetches: %llu)\n",
              static_cast<unsigned long long>(s.coherence.read_misses),
              static_cast<unsigned long long>(s.coherence.line_fetches));
  std::printf("writebacks      : %llu (diffs: %llu)\n",
              static_cast<unsigned long long>(s.coherence.writebacks),
              static_cast<unsigned long long>(s.coherence.diffs_built));
  std::printf("RDMA ops        : %llu reads, %llu writes, %llu atomics\n",
              static_cast<unsigned long long>(s.net.rdma_reads),
              static_cast<unsigned long long>(s.net.rdma_writes),
              static_cast<unsigned long long>(s.net.rdma_atomics));
  std::printf("trace events    : %llu recorded\n",
              static_cast<unsigned long long>(s.counter("trace.emitted")));
  std::printf("handlers run    : 0 (the protocol is passive)\n");
  cluster.flush_trace();  // write quickstart_trace.{json,bin}
  std::printf("trace written   : quickstart_trace.json (Chrome), "
              "quickstart_trace.bin (scripts/trace_query)\n");
  return 0;
}
