// Producer/consumer pipeline over the DSM — demonstrates the S,SW
// ("single writer") classification sweet spot from §3.5: the producer
// keeps its pages cached across synchronizations (it is the single
// writer), while consumers self-invalidate and read fresh data straight
// from the home node, with no invalidation messages and no directory
// indirection anywhere.
#include <cstdio>

#include "argo/argo.hpp"
#include "argo/sync.hpp"

int main() {
  argo::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.threads_per_node = 2;
  cfg.global_mem_bytes = 4u << 20;
  argo::Cluster cluster(cfg);

  constexpr std::size_t kItems = 4096;  // doubles per round
  constexpr int kRounds = 8;
  auto ring = cluster.alloc<double>(kItems);
  auto sums = cluster.alloc<double>(static_cast<std::size_t>(kRounds) *
                                    static_cast<std::size_t>(cluster.nthreads()));
  argosync::DsmFlag round_flag(cluster);
  // Backpressure: consumers acknowledge each round; the producer must not
  // overwrite the buffer before every consumer has read it.
  auto acks = cluster.gmem().alloc_on_node<std::uint64_t>(0, 1);
  *cluster.gmem().home_ptr(acks) = 0;

  const argosim::Time elapsed = cluster.run([&](argo::Thread& self) {
    if (self.gid() == 0) {
      // Producer: fill the buffer, then signal the round number. set()
      // self-downgrades first, so consumers always see complete data.
      std::vector<double> batch(kItems);
      const auto consumers = static_cast<std::uint64_t>(self.nthreads() - 1);
      for (int r = 1; r <= kRounds; ++r) {
        for (std::size_t i = 0; i < kItems; ++i)
          batch[i] = r * 1000.0 + static_cast<double>(i);
        self.store_bulk(ring, batch.data(), kItems);
        round_flag.set(self, static_cast<std::uint64_t>(r));
        self.compute(50'000);  // produce the next batch meanwhile
        // Wait for every consumer's acknowledgement of this round.
        while (self.atomic_load(acks) <
               static_cast<std::uint64_t>(r) * consumers)
          self.compute(1'000);
      }
    } else {
      // Consumers: wait for each round, verify the batch.
      std::vector<double> batch(kItems);
      for (int r = 1; r <= kRounds; ++r) {
        round_flag.wait(self, static_cast<std::uint64_t>(r));
        self.load_bulk(ring, batch.data(), kItems);
        double sum = 0;
        for (double v : batch) sum += v;
        self.store(sums + ((r - 1) * self.nthreads() + self.gid()), sum);
        self.release();  // publish our sums row before acknowledging
        self.atomic_fetch_add(acks, 1);
      }
    }
    self.barrier();
  });

  // Verify on the host: every consumer saw every complete round.
  int ok = 0, total = 0;
  for (int r = 1; r <= kRounds; ++r) {
    const double expect =
        kItems * (r * 1000.0) + (kItems - 1) * kItems / 2.0;
    for (int g = 1; g < cluster.nthreads(); ++g) {
      ++total;
      const double got =
          cluster.host_ptr(sums)[(r - 1) * cluster.nthreads() + g];
      if (got == expect) ++ok;
    }
  }
  const argo::ClusterStats s = cluster.stats();
  std::printf("rounds verified : %d/%d consumer observations correct\n", ok,
              total);
  std::printf("virtual time    : %.3f ms\n", argosim::to_ms(elapsed));
  std::printf("producer node SI invalidations: %llu (single-writer pages survive)\n",
              static_cast<unsigned long long>(
                  s.per_node[0].si_invalidations));
  std::printf("total writebacks: %llu, diffs: %llu\n",
              static_cast<unsigned long long>(s.coherence.writebacks),
              static_cast<unsigned long long>(s.coherence.diffs_built));
  return ok == total ? 0 : 1;
}
