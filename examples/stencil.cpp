// 2-D Jacobi heat diffusion over the DSM — the canonical halo-exchange
// pattern expressed as plain shared-memory code. Each thread owns a band
// of rows; reading the neighbour rows ("halo") is just a load — Carina's
// coherence turns it into one page fetch per neighbour per iteration,
// while each band's interior pages are Private and never re-fetched.
#include <cmath>
#include <cstdio>

#include "argo/argo.hpp"
#include <cstring>
#include <array>

int main() {
  argo::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.threads_per_node = 4;
  cfg.global_mem_bytes = 16u << 20;
  argo::Cluster cluster(cfg);

  constexpr std::size_t kN = 512;  // grid kN x kN
  constexpr int kIters = 10;
  auto grid =
      std::array{cluster.alloc<double>(kN * kN), cluster.alloc<double>(kN * kN)};
  auto residual = cluster.alloc<double>(static_cast<std::size_t>(cluster.nthreads()));

  // Host init: hot left edge, cold elsewhere.
  for (std::size_t i = 0; i < kN; ++i)
    for (std::size_t j = 0; j < kN; ++j)
      cluster.host_ptr(grid[0])[i * kN + j] = (j == 0) ? 100.0 : 0.0;
  std::memcpy(cluster.host_ptr(grid[1]), cluster.host_ptr(grid[0]),
              kN * kN * sizeof(double));
  cluster.reset_classification();

  const argosim::Time elapsed = cluster.run([&](argo::Thread& self) {
    const std::size_t T = static_cast<std::size_t>(self.nthreads());
    const std::size_t g = static_cast<std::size_t>(self.gid());
    const std::size_t lo = std::max<std::size_t>(1, kN * g / T);
    const std::size_t hi = std::min(kN - 1, kN * (g + 1) / T);
    std::vector<double> up(kN), mid(kN), down(kN), out(kN);
    double diff = 0;
    for (int it = 0; it < kIters; ++it) {
      const auto src = grid[it & 1];
      const auto dst = grid[(it + 1) & 1];
      diff = 0;
      self.load_bulk(src + static_cast<std::ptrdiff_t>((lo - 1) * kN),
                     up.data(), kN);
      self.load_bulk(src + static_cast<std::ptrdiff_t>(lo * kN), mid.data(),
                     kN);
      for (std::size_t i = lo; i < hi; ++i) {
        self.load_bulk(src + static_cast<std::ptrdiff_t>((i + 1) * kN),
                       down.data(), kN);
        out[0] = mid[0];
        out[kN - 1] = mid[kN - 1];
        for (std::size_t j = 1; j + 1 < kN; ++j) {
          out[j] = 0.25 * (up[j] + down[j] + mid[j - 1] + mid[j + 1]);
          diff += std::fabs(out[j] - mid[j]);
        }
        self.compute(kN * 6);  // ~6 flops per cell
        self.store_bulk(dst + static_cast<std::ptrdiff_t>(i * kN), out.data(),
                        kN);
        up.swap(mid);
        mid.swap(down);
      }
      self.store(residual + self.gid(), diff);
      self.barrier();
    }
  });

  double total_residual = 0;
  for (int g = 0; g < cluster.nthreads(); ++g)
    total_residual += cluster.host_ptr(residual)[g];
  const argo::ClusterStats s = cluster.stats();
  std::printf("grid            : %zux%zu, %d iterations\n", kN, kN, kIters);
  std::printf("final residual  : %.4f (diffusion progressing)\n", total_residual);
  std::printf("virtual time    : %.3f ms\n", argosim::to_ms(elapsed));
  std::printf("bytes fetched   : %.2f MB over %llu line fetches\n",
              static_cast<double>(s.coherence.bytes_fetched) / (1 << 20),
              static_cast<unsigned long long>(s.coherence.line_fetches));
  std::printf("network         : %llu RDMA reads / %llu writes, zero handlers\n",
              static_cast<unsigned long long>(s.net.rdma_reads),
              static_cast<unsigned long long>(s.net.rdma_writes));
  return 0;
}
