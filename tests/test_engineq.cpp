// Calendar run-queue property suite and fast-vs-slow identity reruns.
//
// Two layers of the same contract. First, CalQueue must be *extensionally
// equal* to the seed's binary heap: for any op sequence, pops come out in
// exactly (when, seq) order — randomized mixed workloads, tie-break
// groups, purge/lazy-deletion and pathological horizon spreads all check
// against a std::priority_queue reference. Second, whole programs must not
// be able to tell the fast engine paths from the slow ones: LU / MM / EP
// rerun under ARGO_SLOW_PATHS=1 (heap run queue, ucontext switching, no
// record pooling) must produce bit-identical virtual times, statistics and
// traces to the fast configuration (calendar, fcontext where supported,
// pooled effects) at every engine worker count, with and without chaos
// fault injection, at posted-pipeline depths 1 and 16.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "apps/ep.hpp"
#include "apps/lu.hpp"
#include "apps/mm.hpp"
#include "core/cluster.hpp"
#include "net/faults.hpp"
#include "sim/calqueue.hpp"
#include "sim/random.hpp"
#include "sim/slowpath.hpp"
#include "sim/time.hpp"

namespace {

using argosim::CalQueue;
using argosim::EventQueue;
using argosim::Rng;
using argosim::Time;

// Restores the process-wide slow-path toggle on scope exit so a failing
// test cannot leak ARGO_SLOW_PATHS semantics into later tests.
struct SlowGuard {
  bool prev = argosim::slow_paths();
  ~SlowGuard() { argosim::set_slow_paths(prev); }
};

// ---------------------------------------------------------------------------
// CalQueue vs the heap reference
// ---------------------------------------------------------------------------

// The engine's key shape: a timestamp plus a deterministic tie-break.
struct Ev {
  Time when = 0;
  std::uint64_t seq = 0;
  bool operator>(const Ev& o) const {
    if (when != o.when) return when > o.when;
    return seq > o.seq;
  }
};

using HeapRef = std::priority_queue<Ev, std::vector<Ev>, std::greater<>>;

void expect_same_drain(CalQueue<Ev>& cal, HeapRef& ref) {
  ASSERT_EQ(cal.size(), ref.size());
  while (!ref.empty()) {
    const Ev want = ref.top();
    ref.pop();
    const Ev got = cal.top();
    cal.pop();
    ASSERT_EQ(got.when, want.when);
    ASSERT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(cal.empty());
}

TEST(CalQueueVsHeap, RandomizedMixedOpsMatchExactly) {
  // Mixed push/pop streams at several horizon spreads, keeping the
  // engine's invariant that pushes never land before the popped frontier.
  for (const std::uint64_t spread :
       {std::uint64_t{8}, std::uint64_t{1} << 12, std::uint64_t{1} << 24}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      CalQueue<Ev> cal;
      HeapRef ref;
      Rng rng(seed * 77 + spread);
      Time frontier = 0;
      std::uint64_t seq = 0;
      for (int op = 0; op < 20000; ++op) {
        if (ref.empty() || rng.next_below(10) < 6) {
          const Ev e{frontier + rng.next_below(spread), seq++};
          cal.push(e);
          ref.push(e);
        } else {
          const Ev want = ref.top();
          ref.pop();
          const Ev got = cal.top();
          cal.pop();
          ASSERT_EQ(got.when, want.when) << "spread " << spread;
          ASSERT_EQ(got.seq, want.seq) << "spread " << spread;
          frontier = want.when;
        }
      }
      expect_same_drain(cal, ref);
    }
  }
}

TEST(CalQueueVsHeap, TieBreaksPopInSeqOrder) {
  // Several groups at identical timestamps, inserted in scrambled seq
  // order: pops must come out time-major, seq-minor — the engine's
  // determinism hinges on exactly this order.
  CalQueue<Ev> cal;
  HeapRef ref;
  Rng rng(99);
  std::vector<Ev> all;
  for (Time t : {Time{100}, Time{100}, Time{7}, Time{4096}})
    for (std::uint64_t s = 0; s < 64; ++s)
      all.push_back({t, rng.next_u64()});  // random seqs, duplicated times
  // Scramble insertion order deterministically.
  for (std::size_t i = all.size(); i > 1; --i)
    std::swap(all[i - 1], all[rng.next_below(i)]);
  for (const Ev& e : all) {
    cal.push(e);
    ref.push(e);
  }
  expect_same_drain(cal, ref);
}

TEST(CalQueueVsHeap, PurgeMatchesReferenceErase) {
  // Lazy deletion: fill both, advance the drain cursor a little, purge a
  // predicate slice, and check the survivors drain identically and the
  // removed counts agree. Mirrors the engine's stale-wake compaction.
  CalQueue<Ev> cal;
  std::vector<Ev> live;
  Rng rng(5);
  std::uint64_t seq = 0;
  for (int i = 0; i < 5000; ++i) {
    const Ev e{rng.next_below(1 << 20), seq++};
    cal.push(e);
    live.push_back(e);
  }
  // Pop a prefix so the rung cursor is mid-day when purge runs.
  HeapRef order(live.begin(), live.end());
  for (int i = 0; i < 137; ++i) {
    const Ev want = order.top();
    order.pop();
    ASSERT_EQ(cal.top().seq, want.seq);
    cal.pop();
    live.erase(std::find_if(live.begin(), live.end(), [&](const Ev& e) {
      return e.seq == want.seq;
    }));
  }
  const auto stale = [](const Ev& e) { return e.seq % 3 == 0; };
  const std::size_t want_removed =
      static_cast<std::size_t>(std::count_if(live.begin(), live.end(), stale));
  EXPECT_EQ(cal.purge(stale), want_removed);
  live.erase(std::remove_if(live.begin(), live.end(), stale), live.end());
  HeapRef ref(live.begin(), live.end());
  expect_same_drain(cal, ref);
}

TEST(CalQueueVsHeap, ExtremeHorizonSpreadsAndResizes) {
  // Pathological time distributions: day-sized clusters interleaved with
  // jumps of 2^40 ns and timestamps out at 2^62, growing then draining so
  // the bucket array walks through both rebuild directions. The pop order
  // must stay exact throughout and the calendar must actually have
  // re-tuned (resizes observable via the sim.calendar_resizes counter).
  CalQueue<Ev> cal;
  HeapRef ref;
  Rng rng(1234);
  std::uint64_t seq = 0;
  Time base = 0;
  for (int wave = 0; wave < 8; ++wave) {
    for (int i = 0; i < 4000; ++i) {
      Time w = base + rng.next_below(512);
      if (rng.next_below(100) == 0) w = (Time{1} << 62) + rng.next_below(512);
      const Ev e{w, seq++};
      cal.push(e);
      ref.push(e);
    }
    // Drain most of the wave, then jump the clock far ahead.
    for (int i = 0; i < 3800; ++i) {
      const Ev want = ref.top();
      ref.pop();
      ASSERT_EQ(cal.top().when, want.when);
      ASSERT_EQ(cal.top().seq, want.seq);
      cal.pop();
    }
    base += Time{1} << 40;
  }
  EXPECT_GT(cal.resizes(), 0u);
  expect_same_drain(cal, ref);
}

TEST(EventQueueFacade, BackendFollowsSlowPathToggleAndCompactAgrees) {
  SlowGuard guard;
  // Same contents through both backends: identical compaction counts and
  // identical drain order.
  for (const bool slow : {false, true}) {
    argosim::set_slow_paths(slow);
    EventQueue<Ev> q;
    EXPECT_EQ(q.calendar(), !slow);
    HeapRef ref;
    Rng rng(slow ? 11u : 12u);
    for (std::uint64_t s = 0; s < 3000; ++s) {
      const Ev e{rng.next_below(1 << 16), s};
      q.push(e);
      if (e.seq % 7 != 0) ref.push(e);
    }
    EXPECT_EQ(q.compact([](const Ev& e) { return e.seq % 7 == 0; }),
              3000u / 7u + 1u);
    ASSERT_EQ(q.size(), ref.size());
    while (!ref.empty()) {
      ASSERT_EQ(q.top().seq, ref.top().seq);
      q.pop();
      ref.pop();
    }
  }
}

// ---------------------------------------------------------------------------
// Fast-vs-slow program identity: LU / MM / EP
// ---------------------------------------------------------------------------

using argo::Cluster;
using argo::ClusterConfig;
using argoapps::EpParams;
using argoapps::LuParams;
using argoapps::MmParams;

// Everything the identity contract covers, in comparable form.
struct AppFp {
  Time elapsed = 0;
  double checksum = 0;
  std::vector<std::string> counters;
  std::vector<std::string> trace;
};

void append_observables(AppFp& f, Cluster& cl) {
  // sim.* counters are host-side scheduler diagnostics, intentionally
  // different between fast and slow paths — outside the contract.
  for (const auto& c : cl.stats().counters)
    if (c.name.rfind("sim.", 0) != 0)
      f.counters.push_back(c.name + "=" + std::to_string(c.value));
  for (const auto& e : cl.tracer().snapshot())
    f.trace.push_back(std::to_string(e.seq) + ":" + std::to_string(e.t) + ":" +
                      std::to_string(e.page) + ":" + std::to_string(e.arg) +
                      ":" + std::to_string(e.thread) + ":" +
                      std::to_string(e.node) + ":" + std::to_string(e.kind) +
                      ":" + std::to_string(e.state));
}

void expect_identical(const AppFp& slow, const AppFp& fast,
                      const std::string& label) {
  EXPECT_EQ(slow.elapsed, fast.elapsed) << label << ": virtual time diverged";
  EXPECT_EQ(slow.checksum, fast.checksum) << label << ": result diverged";
  EXPECT_EQ(slow.counters, fast.counters) << label << ": counters diverged";
  EXPECT_EQ(slow.trace, fast.trace) << label << ": trace diverged";
}

ClusterConfig identity_cfg(int workers, int pipeline) {
  ClusterConfig c;
  c.nodes = 4;
  c.threads_per_node = 2;
  c.global_mem_bytes = 128 * argomem::kPageSize;
  c.cache.cache_lines = 8192;
  c.cache.write_buffer_pages = 1024;
  c.net.pipeline = pipeline;
  c.trace.enabled = true;
  c.engine_threads = workers;
  return c;
}

// Rerun `run` with the slow (seed) paths as the oracle, then fast, at
// every engine configuration: legacy (0), the sequential sharded
// reference (1), and parallel workers 2 and 8.
template <class RunFn>
void fast_slow_identity(const std::string& label, RunFn run) {
  for (const int workers : {0, 1, 2, 8}) {
    SlowGuard guard;
    argosim::set_slow_paths(true);
    const AppFp slow = run(workers);
    argosim::set_slow_paths(false);
    const AppFp fast = run(workers);
    expect_identical(slow, fast,
                     label + " workers=" + std::to_string(workers));
  }
}

TEST(FastSlowIdentity, LuAtPipelineDepths1And16) {
  LuParams p;
  p.n = 64;
  p.block = 16;
  for (const int pipeline : {1, 16}) {
    fast_slow_identity(
        "lu pipeline=" + std::to_string(pipeline), [&](int workers) {
          Cluster cl(identity_cfg(workers, pipeline));
          const auto r = argoapps::lu_run_argo(cl, p);
          AppFp f;
          f.elapsed = r.elapsed;
          f.checksum = r.checksum;
          append_observables(f, cl);
          return f;
        });
  }
}

TEST(FastSlowIdentity, MmAtPipelineDepths1And16) {
  MmParams p;
  p.n = 64;
  for (const int pipeline : {1, 16}) {
    fast_slow_identity(
        "mm pipeline=" + std::to_string(pipeline), [&](int workers) {
          Cluster cl(identity_cfg(workers, pipeline));
          const auto r = argoapps::mm_run_argo(cl, p);
          AppFp f;
          f.elapsed = r.elapsed;
          f.checksum = r.checksum;
          append_observables(f, cl);
          return f;
        });
  }
}

TEST(FastSlowIdentity, EpUnderChaosSeeds) {
  EpParams p;
  p.log2_pairs = 12;
  p.chunks = 32;
  for (const std::uint64_t chaos_seed : {3u, 17u}) {
    fast_slow_identity(
        "ep chaos_seed=" + std::to_string(chaos_seed), [&](int workers) {
          ClusterConfig cfg = identity_cfg(workers, 16);
          cfg.faults.enabled = true;
          cfg.faults.seed = chaos_seed;
          cfg.faults.rdma_fail_prob = 0.02;
          cfg.faults.jitter_prob = 0.2;
          cfg.faults.jitter_max = 800;
          cfg.faults.msg_drop_prob = 0.05;
          cfg.faults.msg_dup_prob = 0.02;
          Cluster cl(cfg);
          const auto r = argoapps::ep_run_argo(cl, p);
          AppFp f;
          f.elapsed = r.elapsed;
          f.checksum = r.tally.sx + r.tally.sy +
                       static_cast<double>(r.tally.accepted);
          append_observables(f, cl);
          return f;
        });
  }
}

}  // namespace
