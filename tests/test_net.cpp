// Unit tests for the simulated interconnect (src/net).
#include <gtest/gtest.h>

#include <cstring>

#include "net/interconnect.hpp"
#include "sim/engine.hpp"

namespace argonet {
namespace {

using argosim::Engine;
using argosim::Time;

NetConfig test_cfg() {
  NetConfig c;
  c.rdma_latency = 1000;
  c.msg_latency = 1000;
  c.nic_overhead = 100;
  c.net_bytes_per_ns = 2.0;
  c.mem_latency = 50;
  c.mem_bytes_per_ns = 10.0;
  return c;
}

TEST(NetConfig, TransferArithmetic) {
  NetConfig c = test_cfg();
  EXPECT_EQ(c.net_transfer(4096), 2048u);
  EXPECT_EQ(c.net_transfer(0), 0u);
  EXPECT_EQ(c.mem_copy(4096), 409u);  // truncating division
}

TEST(NodeTopology, NumaGroupsAndTransferCosts) {
  NodeTopology t;
  EXPECT_EQ(t.numa_group_of(0), 0);
  EXPECT_EQ(t.numa_group_of(3), 0);
  EXPECT_EQ(t.numa_group_of(4), 1);
  EXPECT_EQ(t.numa_group_of(15), 3);
  EXPECT_EQ(t.cacheline_transfer(2, 2), t.l1_hit);
  EXPECT_EQ(t.cacheline_transfer(0, 3), t.cacheline_same_numa);
  EXPECT_EQ(t.cacheline_transfer(0, 12), t.cacheline_cross_numa);
}

TEST(Interconnect, RemoteReadCostAndData) {
  Engine eng;
  Interconnect net(2, test_cfg());
  std::uint64_t remote = 0xdeadbeef;
  eng.spawn("t", [&] {
    std::uint64_t local = 0;
    net.read(0, 1, &remote, &local, sizeof(local));
    EXPECT_EQ(local, 0xdeadbeefu);
    // nic_overhead + 8B/2.0 + rdma_latency = 100 + 4 + 1000
    EXPECT_EQ(argosim::now(), 1104u);
  });
  eng.run();
  EXPECT_EQ(net.stats(0).rdma_reads, 1u);
  EXPECT_EQ(net.stats(0).bytes_read, 8u);
  EXPECT_EQ(net.stats(1).rdma_reads, 0u);
}

TEST(Interconnect, RemoteWriteAppliesAtCompletion) {
  Engine eng;
  Interconnect net(2, test_cfg());
  std::uint64_t remote = 0;
  eng.spawn("writer", [&] {
    std::uint64_t v = 42;
    net.write(0, 1, &remote, &v, sizeof(v));
  });
  eng.spawn("observer", [&] {
    argosim::delay(500);  // mid-flight
    EXPECT_EQ(remote, 0u);
    argosim::delay(1000);  // past completion (1104)
    EXPECT_EQ(remote, 42u);
  });
  eng.run();
}

TEST(Interconnect, LocalOpsAreCheapAndBypassTheNic) {
  Engine eng;
  Interconnect net(1, test_cfg());
  std::uint64_t cell = 7;
  eng.spawn("t", [&] {
    std::uint64_t v = 0;
    net.read(0, 0, &cell, &v, sizeof(v));
    EXPECT_EQ(v, 7u);
    EXPECT_EQ(argosim::now(), 50u);  // mem_latency only for 8 bytes (50 + 0)
  });
  eng.run();
}

TEST(Interconnect, AtomicsReturnPreviousValue) {
  Engine eng;
  Interconnect net(2, test_cfg());
  std::uint64_t word = 0b0011;
  eng.spawn("t", [&] {
    EXPECT_EQ(net.fetch_or(0, 1, &word, 0b0110), 0b0011u);
    EXPECT_EQ(word, 0b0111u);
    EXPECT_EQ(net.fetch_add(0, 1, &word, 1), 0b0111u);
    EXPECT_EQ(word, 8u);
    EXPECT_EQ(net.cas(0, 1, &word, 8, 100), 8u);
    EXPECT_EQ(word, 100u);
    EXPECT_EQ(net.cas(0, 1, &word, 8, 200), 100u);  // fails
    EXPECT_EQ(word, 100u);
  });
  eng.run();
  EXPECT_EQ(net.stats(0).rdma_atomics, 4u);
}

TEST(Interconnect, NicSerializesOpsFromOneNode) {
  Engine eng;
  NetConfig cfg = test_cfg();
  Interconnect net(2, cfg);
  std::vector<std::byte> remote(4096);
  std::vector<std::byte> a(4096), b(4096);
  Time done_a = 0, done_b = 0;
  // Two threads on node 0 issue 4 KiB reads simultaneously: the second
  // holds off while the first streams through the NIC.
  eng.spawn("a", [&] {
    net.read(0, 1, remote.data(), a.data(), 4096);
    done_a = argosim::now();
  });
  eng.spawn("b", [&] {
    net.read(0, 1, remote.data(), b.data(), 4096);
    done_b = argosim::now();
  });
  eng.run();
  const Time busy = 100 + 4096 / 2;  // nic_overhead + streaming
  EXPECT_EQ(done_a, busy + 1000);
  EXPECT_EQ(done_b, 2 * busy + 1000);  // NIC held by a first
}

TEST(Interconnect, NicSerializationCanBeDisabled) {
  Engine eng;
  NetConfig cfg = test_cfg();
  cfg.serialize_nic = false;
  Interconnect net(2, cfg);
  std::vector<std::byte> remote(4096), a(4096), b(4096);
  Time done_a = 0, done_b = 0;
  eng.spawn("a", [&] {
    net.read(0, 1, remote.data(), a.data(), 4096);
    done_a = argosim::now();
  });
  eng.spawn("b", [&] {
    net.read(0, 1, remote.data(), b.data(), 4096);
    done_b = argosim::now();
  });
  eng.run();
  EXPECT_EQ(done_a, done_b);  // fully parallel
}

TEST(Interconnect, DifferentNodesNicsAreIndependent) {
  Engine eng;
  Interconnect net(3, test_cfg());
  std::vector<std::byte> remote(4096), a(4096), b(4096);
  Time done_a = 0, done_b = 0;
  eng.spawn("a", [&] {
    net.read(0, 2, remote.data(), a.data(), 4096);
    done_a = argosim::now();
  });
  eng.spawn("b", [&] {
    net.read(1, 2, remote.data(), b.data(), 4096);
    done_b = argosim::now();
  });
  eng.run();
  EXPECT_EQ(done_a, done_b);  // different source NICs
}

TEST(Interconnect, MessageDeliveryAfterLatency) {
  Engine eng;
  Interconnect net(2, test_cfg());
  Time received_at = 0;
  eng.spawn("rx", [&] {
    Message m = net.recv(1);
    received_at = argosim::now();
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.tag, 5);
    EXPECT_EQ(m.a, 99u);
  });
  eng.spawn("tx", [&] {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.tag = 5;
    m.a = 99;
    net.send(std::move(m));
  });
  eng.run();
  // posting (100 + 40/2=20) then 1000 wire latency
  EXPECT_EQ(received_at, 1120u);
  EXPECT_EQ(net.stats(0).msgs_sent, 1u);
  EXPECT_EQ(net.stats(1).msgs_received, 1u);
}

TEST(Interconnect, MessagesFifoPerSender) {
  Engine eng;
  Interconnect net(2, test_cfg());
  std::vector<int> order;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 6; ++i) order.push_back(net.recv(1).tag);
  });
  eng.spawn("tx", [&] {
    for (int i = 0; i < 6; ++i) {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.tag = i;
      net.send(std::move(m));
    }
  });
  eng.run();
  std::vector<int> expect{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(order, expect);
}

TEST(Interconnect, TryRecvAndPollRespectDeliveryTime) {
  Engine eng;
  Interconnect net(2, test_cfg());
  eng.spawn("t", [&] {
    Message m;
    m.src = 0;
    m.dst = 1;
    net.send(std::move(m));
    // Sent but not yet delivered (wire latency pending).
    EXPECT_FALSE(net.poll(1));
    EXPECT_FALSE(net.try_recv(1).has_value());
    argosim::delay(2000);
    EXPECT_TRUE(net.poll(1));
    EXPECT_TRUE(net.try_recv(1).has_value());
    EXPECT_FALSE(net.poll(1));
  });
  eng.run();
}

TEST(Interconnect, PayloadBytesAndStatReset) {
  Engine eng;
  Interconnect net(2, test_cfg());
  eng.spawn("t", [&] {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.payload.resize(1000);
    net.send(std::move(m));
    net.charge_write(0, 1, 123);
  });
  eng.run();
  EXPECT_EQ(net.stats(0).bytes_sent, 1000u);
  EXPECT_EQ(net.stats(0).bytes_written, 123u);
  EXPECT_EQ(net.total_stats().msgs_sent, 1u);
  net.reset_stats();
  EXPECT_EQ(net.total_stats().total_ops(), 0u);
}

TEST(WaitQueueTimed, TimeoutAndNotifyPaths) {
  Engine eng;
  argosim::WaitQueue q;
  bool notified_result = true, timeout_result = true;
  eng.spawn("timeout", [&] { timeout_result = q.wait_for(100); });
  eng.spawn("notified", [&] { notified_result = q.wait_for(1000); });
  eng.spawn("notifier", [&] {
    argosim::delay(500);
    q.notify_one();  // the timeout waiter is gone; wakes "notified"
  });
  eng.run();
  EXPECT_FALSE(timeout_result);
  EXPECT_TRUE(notified_result);
  EXPECT_EQ(q.waiters(), 0u);
}

TEST(Interconnect, SameTimestampMessagesDeliverInSendOrder) {
  // Two messages posted back-to-back with identical wire parameters land
  // at the same virtual instant; the (deliver_at, seq) tie-break must
  // hand them out in send order.
  Engine eng;
  NetConfig c = test_cfg();
  c.nic_overhead = 0;
  c.net_bytes_per_ns = 1e9;  // streaming time rounds to zero
  Interconnect net(2, c);
  eng.spawn("tx", [&] {
    for (int i = 1; i <= 3; ++i) {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.tag = i;
      net.send(std::move(m));
    }
  });
  eng.spawn("rx", [&] {
    for (int i = 1; i <= 3; ++i) {
      Message m = net.recv(1);
      EXPECT_EQ(m.tag, i);
    }
  });
  eng.run();
  EXPECT_EQ(net.stats(1).msgs_received, 3u);
}

TEST(Interconnect, TryRecvDrainsQueueAndReportsEmpty) {
  Engine eng;
  Interconnect net(2, test_cfg());
  eng.spawn("t", [&] {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.tag = 7;
    net.send(std::move(m));
    // The message is still in flight (msg_latency ahead of now).
    EXPECT_FALSE(net.poll(1));
    EXPECT_FALSE(net.try_recv(1).has_value());
    argosim::delay(test_cfg().msg_latency);
    EXPECT_TRUE(net.poll(1));
    auto got = net.try_recv(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, 7);
    // Queue drained: poll and try_recv report empty again.
    EXPECT_FALSE(net.poll(1));
    EXPECT_FALSE(net.try_recv(1).has_value());
  });
  eng.run();
}

TEST(Interconnect, RecvForTimesOutAndReturnsEarlyArrivals) {
  Engine eng;
  Interconnect net(2, test_cfg());
  eng.spawn("rx", [&] {
    // Nothing in flight: times out at exactly the deadline.
    EXPECT_FALSE(net.recv_for(1, 300).has_value());
    EXPECT_EQ(argosim::now(), 300u);
    // A message arriving before the deadline is returned at delivery time.
    auto got = net.recv_for(1, 1u << 20);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, 9);
  });
  eng.spawn("tx", [&] {
    argosim::delay(500);
    Message m;
    m.src = 0;
    m.dst = 1;
    m.tag = 9;
    net.send(std::move(m));
  });
  eng.run();
}

// --- Posted (asynchronous) verbs -------------------------------------------

TEST(PostedVerbs, DepthOneIsExactlyTheBlockingVerb) {
  Engine eng;
  Interconnect net(2, test_cfg());  // pipeline defaults to 1
  std::uint64_t remote = 0xabcd;
  eng.spawn("t", [&] {
    std::uint64_t local = 0;
    PostedHandle h = net.post_read(0, 1, &remote, &local, sizeof(local));
    // Degenerates to the blocking read: data landed and the full cost was
    // charged before post_read returned.
    EXPECT_EQ(local, 0xabcdu);
    EXPECT_EQ(argosim::now(), 1104u);
    net.wait(h);  // inert
    EXPECT_EQ(argosim::now(), 1104u);
  });
  eng.run();
  EXPECT_EQ(net.stats(0).rdma_reads, 1u);
  EXPECT_EQ(net.stats(0).posted_ops, 0u);  // depth 1 posts nothing
}

TEST(PostedVerbs, WireLatencyOverlapsAcrossInFlightOps) {
  Engine eng;
  NetConfig cfg = test_cfg();
  cfg.pipeline = 4;
  Interconnect net(2, cfg);
  std::uint64_t remote[4] = {1, 2, 3, 4};
  std::uint64_t local[4] = {};
  eng.spawn("t", [&] {
    for (int i = 0; i < 4; ++i) {
      net.post_read(0, 1, &remote[i], &local[i], 8);
      // Each post returns after its NIC charge only (100 + 8/2 = 104).
      EXPECT_EQ(argosim::now(), 104u * static_cast<Time>(i + 1));
      EXPECT_EQ(local[i], 0u);  // still in flight
    }
    net.wait_all(0);
    // Completions: 104*i + 1000 for op i — the last retires at 1416,
    // versus 4*1104 = 4416 if issued blocking.
    EXPECT_EQ(argosim::now(), 1416u);
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(local[i], static_cast<std::uint64_t>(i + 1));
  });
  eng.run();
  EXPECT_EQ(net.stats(0).rdma_reads, 4u);
  EXPECT_EQ(net.stats(0).posted_ops, 4u);
  EXPECT_EQ(net.stats(0).posted_inflight_hwm, 4u);
}

TEST(PostedVerbs, FullQueueBlocksUntilHeadRetires) {
  Engine eng;
  NetConfig cfg = test_cfg();
  cfg.pipeline = 2;
  Interconnect net(2, cfg);
  std::uint64_t remote[3] = {7, 8, 9};
  std::uint64_t local[3] = {};
  eng.spawn("t", [&] {
    net.post_read(0, 1, &remote[0], &local[0], 8);  // completes 1104
    net.post_read(0, 1, &remote[1], &local[1], 8);  // completes 1208
    EXPECT_EQ(argosim::now(), 208u);
    // Queue is full: the third post parks until op 0 retires at 1104,
    // then charges its own 104 and completes at 1104 + 104 + 1000 = 2208.
    net.post_read(0, 1, &remote[2], &local[2], 8);
    EXPECT_EQ(argosim::now(), 1208u);
    EXPECT_EQ(local[0], 7u);  // head applied when reclaimed
    net.wait_all(0);
    EXPECT_EQ(argosim::now(), 2208u);
    EXPECT_EQ(local[2], 9u);
  });
  eng.run();
  EXPECT_EQ(net.stats(0).posted_inflight_hwm, 2u);
}

TEST(PostedVerbs, WaitRetiresPredecessorsInOrder) {
  Engine eng;
  NetConfig cfg = test_cfg();
  cfg.pipeline = 4;
  Interconnect net(2, cfg);
  std::uint64_t remote[3] = {1, 2, 3};
  std::uint64_t local[3] = {};
  eng.spawn("t", [&] {
    net.post_read(0, 1, &remote[0], &local[0], 8);
    net.post_read(0, 1, &remote[1], &local[1], 8);
    PostedHandle h = net.post_read(0, 1, &remote[2], &local[2], 8);
    net.wait(h);
    // Waiting on the tail retires everything before it too (RC ordering).
    EXPECT_EQ(argosim::now(), 1312u);  // 3*104 + 1000
    EXPECT_EQ(local[0], 1u);
    EXPECT_EQ(local[1], 2u);
    EXPECT_EQ(local[2], 3u);
    net.wait_all(0);  // empty: free
    EXPECT_EQ(argosim::now(), 1312u);
  });
  eng.run();
}

TEST(PostedVerbs, AtomicsBankThePreviousValue) {
  Engine eng;
  NetConfig cfg = test_cfg();
  cfg.pipeline = 4;
  Interconnect net(2, cfg);
  std::uint64_t word = 0b0011;
  eng.spawn("t", [&] {
    PostedHandle a = net.post_fetch_or(0, 1, &word, 0b0110);
    PostedHandle b = net.post_fetch_add(0, 1, &word, 1);
    PostedHandle c = net.post_cas(0, 1, &word, 8, 100);
    // Values redeemable in any order; each is the pre-op word in queue
    // (program) order because effects apply at in-order retirement.
    EXPECT_EQ(net.wait(c), 8u);
    EXPECT_EQ(net.wait(a), 0b0011u);
    EXPECT_EQ(net.wait(b), 0b0111u);
    EXPECT_EQ(word, 100u);
  });
  eng.run();
  EXPECT_EQ(net.stats(0).rdma_atomics, 3u);
}

TEST(PostedVerbs, WriteSnapshotsPayloadAtPostTime) {
  Engine eng;
  NetConfig cfg = test_cfg();
  cfg.pipeline = 4;
  Interconnect net(2, cfg);
  std::uint64_t remote = 0;
  std::uint64_t local = 42;
  eng.spawn("t", [&] {
    net.post_write(0, 1, &remote, &local, 8);
    local = 99;  // reused before the write retires
    net.wait_all(0);
    EXPECT_EQ(remote, 42u);  // the posted value, not the clobbered buffer
  });
  eng.run();
}

TEST(PostedVerbs, GatherWriteChargesOneOpWithHeaders) {
  Engine eng;
  NetConfig cfg = test_cfg();
  cfg.pipeline = 4;
  Interconnect net(2, cfg);
  std::vector<std::byte> remote(64), a(16), b(24);
  std::memset(a.data(), 0x11, a.size());
  std::memset(b.data(), 0x22, b.size());
  eng.spawn("t", [&] {
    std::vector<GatherRun> runs{{remote.data(), a.data(), 16},
                                {remote.data() + 32, b.data(), 24}};
    net.post_write_gather(0, 1, runs, 8);
    // One op: wire = (16+8) + (24+8) = 56, busy = 100 + 56/2 = 128.
    EXPECT_EQ(argosim::now(), 128u);
    net.wait_all(0);
    EXPECT_EQ(argosim::now(), 1128u);
    EXPECT_EQ(remote[0], std::byte{0x11});
    EXPECT_EQ(remote[33], std::byte{0x22});
  });
  eng.run();
  EXPECT_EQ(net.stats(0).rdma_writes, 1u);
  EXPECT_EQ(net.stats(0).bytes_written, 56u);
}

TEST(PostedVerbs, LocalPostsApplyImmediately) {
  Engine eng;
  NetConfig cfg = test_cfg();
  cfg.pipeline = 8;
  Interconnect net(2, cfg);
  std::uint64_t cell = 5;
  eng.spawn("t", [&] {
    PostedHandle h = net.post_fetch_or(0, 0, &cell, 2);
    EXPECT_EQ(cell, 7u);  // applied synchronously, charged mem_latency
    EXPECT_EQ(argosim::now(), 50u);
    EXPECT_EQ(net.wait(h), 5u);
    EXPECT_EQ(argosim::now(), 50u);  // value was banked; wait is free
  });
  eng.run();
  EXPECT_EQ(net.stats(0).posted_ops, 0u);  // never entered the send queue
}

TEST(NodeNetStats, AccumulationCoversEveryField) {
  NodeNetStats a, b;
  a.rdma_reads = 1;
  a.rdma_writes = 2;
  a.rdma_atomics = 3;
  a.msgs_sent = 4;
  a.msgs_received = 5;
  a.bytes_read = 6;
  a.bytes_written = 7;
  a.bytes_sent = 8;
  a.nic_busy = 9;
  a.faults_injected = 10;
  a.retries = 11;
  a.backoff_time = 12;
  a.posted_ops = 13;
  a.posted_inflight_hwm = 14;
  b = a;
  b += a;
  EXPECT_EQ(b.rdma_reads, 2u);
  EXPECT_EQ(b.rdma_writes, 4u);
  EXPECT_EQ(b.rdma_atomics, 6u);
  EXPECT_EQ(b.msgs_sent, 8u);
  EXPECT_EQ(b.msgs_received, 10u);
  EXPECT_EQ(b.bytes_read, 12u);
  EXPECT_EQ(b.bytes_written, 14u);
  EXPECT_EQ(b.bytes_sent, 16u);
  EXPECT_EQ(b.nic_busy, 18);
  EXPECT_EQ(b.faults_injected, 20u);
  EXPECT_EQ(b.retries, 22u);
  EXPECT_EQ(b.backoff_time, 24);
  EXPECT_EQ(b.posted_ops, 26u);
  EXPECT_EQ(b.posted_inflight_hwm, 14u);  // high-water marks merge via max
  EXPECT_EQ(b.total_ops(), 2u + 4u + 6u + 8u);
  EXPECT_EQ(b.total_bytes(), 12u + 14u + 16u);
}

}  // namespace
}  // namespace argonet
