// Tests for the Carina coherence protocol and the argo::Cluster facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/cluster.hpp"
#include "dir/pyxis.hpp"
#include "sim/random.hpp"

namespace argo {
namespace {

using argomem::kPageSize;

ClusterConfig small_cfg(int nodes, int tpn, Mode mode,
                        std::size_t pages_per_line = 1,
                        std::size_t lines = 64, std::size_t wb = 64) {
  ClusterConfig c;
  c.nodes = nodes;
  c.threads_per_node = tpn;
  c.global_mem_bytes = static_cast<std::size_t>(nodes) * 16 * kPageSize;
  c.cache.classification = mode;
  c.cache.pages_per_line = pages_per_line;
  c.cache.cache_lines = lines;
  c.cache.write_buffer_pages = wb;
  return c;
}

gptr<std::uint8_t> page_addr(std::uint64_t page, std::size_t off = 0) {
  return gptr<std::uint8_t>(page * kPageSize + off);
}

TEST(Cluster, SingleNodeLoadStoreRoundTrip) {
  Cluster cl(small_cfg(1, 2, Mode::PS3));
  auto arr = cl.alloc<std::uint64_t>(128);
  cl.run([&](Thread& t) {
    for (int i = t.tid(); i < 128; i += t.threads_per_node())
      t.store(arr + i, static_cast<std::uint64_t>(i * 3));
    t.barrier();
    for (int i = 0; i < 128; ++i)
      EXPECT_EQ(t.load(arr + i), static_cast<std::uint64_t>(i * 3));
  });
  // Single node: every page is home — no caching, no misses, no traffic.
  EXPECT_EQ(cl.coherence_stats().read_misses, 0u);
  EXPECT_EQ(cl.coherence_stats().write_misses, 0u);
  EXPECT_GT(cl.coherence_stats().home_accesses, 0u);
  EXPECT_EQ(cl.net_stats().rdma_reads, 0u);
}

TEST(Cluster, HostInitVisibleEverywhere) {
  Cluster cl(small_cfg(4, 1, Mode::PS3));
  auto arr = cl.alloc<std::uint32_t>(4096);  // spans several pages/homes
  for (int i = 0; i < 4096; ++i) cl.host_ptr(arr)[i] = static_cast<std::uint32_t>(i ^ 0x5a5a);
  cl.reset_classification();
  cl.run([&](Thread& t) {
    for (int i = t.gid(); i < 4096; i += t.nthreads())
      EXPECT_EQ(t.load(arr + i), static_cast<std::uint32_t>(i ^ 0x5a5a));
  });
}

class AllModes : public ::testing::TestWithParam<Mode> {};
INSTANTIATE_TEST_SUITE_P(Carina, AllModes,
                         ::testing::Values(Mode::S, Mode::PSNaive, Mode::PS,
                                           Mode::PS3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Mode::S: return "S";
                             case Mode::PSNaive: return "PSNaive";
                             case Mode::PS: return "PS";
                             case Mode::PS3: return "PS3";
                           }
                           return "unknown";
                         });

TEST_P(AllModes, RemoteWriteVisibleAfterBarrier) {
  Cluster cl(small_cfg(2, 1, GetParam()));
  // Page 20 is homed on node 1 (blocked mapping, 16 pages per node):
  // node 0 writes it remotely, node 1 reads it at home.
  auto p = page_addr(20).cast<std::uint64_t>();
  cl.run([&](Thread& t) {
    if (t.node() == 0) t.store(p, std::uint64_t{0xabcdef});
    t.barrier();
    EXPECT_EQ(t.load(p), 0xabcdefu);
    t.barrier();
    if (t.node() == 1) t.store(p, std::uint64_t{0x1234});
    t.barrier();
    EXPECT_EQ(t.load(p), 0x1234u);
  });
}

TEST_P(AllModes, ProducerConsumerOverManyRounds) {
  Cluster cl(small_cfg(2, 2, GetParam()));
  auto p = page_addr(18).cast<std::uint64_t>();  // homed on node 1
  const int rounds = 8;
  cl.run([&](Thread& t) {
    for (int r = 1; r <= rounds; ++r) {
      if (t.node() == 0 && t.tid() == 0) t.store(p, static_cast<std::uint64_t>(r));
      t.barrier();
      EXPECT_EQ(t.load(p), static_cast<std::uint64_t>(r));
      t.barrier();
    }
  });
}

TEST_P(AllModes, FalseSharingMergesThroughDiffs) {
  // Four nodes write disjoint quarters of the same (remote) page in the
  // same epoch; after the barrier everyone sees all four quarters.
  Cluster cl(small_cfg(4, 1, GetParam()));
  const std::uint64_t page = 17;  // homed on node 1
  cl.run([&](Thread& t) {
    const std::size_t quarter = kPageSize / 4;
    for (std::size_t i = 0; i < quarter; ++i)
      t.store(page_addr(page, static_cast<std::size_t>(t.node()) * quarter + i),
              static_cast<std::uint8_t>(t.node() + 1));
    t.barrier();
    for (int q = 0; q < 4; ++q)
      for (std::size_t i = 0; i < quarter; i += 97)
        EXPECT_EQ(t.load(page_addr(page, static_cast<std::size_t>(q) * quarter + i)),
                  static_cast<std::uint8_t>(q + 1));
  });
}

TEST(Carina, PrivatePagesSurviveBarriersUnderPS3) {
  // Node 0 reads+writes pages homed on node 1 that nobody else touches.
  // Under P/S3 they classify as Private: barriers must not evict them.
  Cluster cl(small_cfg(2, 1, Mode::PS3));
  cl.run([&](Thread& t) {
    if (t.node() == 0)
      for (std::uint64_t pg = 16; pg < 24; ++pg)
        t.store(page_addr(pg).cast<std::uint64_t>(), pg);
    t.barrier();
    if (t.node() == 0)
      for (std::uint64_t pg = 16; pg < 24; ++pg)
        EXPECT_EQ(t.load(page_addr(pg).cast<std::uint64_t>()), pg);
    t.barrier();
  });
  EXPECT_EQ(cl.node_cache(0).stats().si_invalidations, 0u);
  // The same workload under S invalidates everything at every barrier.
  Cluster cs(small_cfg(2, 1, Mode::S));
  cs.run([&](Thread& t) {
    if (t.node() == 0)
      for (std::uint64_t pg = 16; pg < 24; ++pg)
        t.store(page_addr(pg).cast<std::uint64_t>(), pg);
    t.barrier();
    t.barrier();
  });
  EXPECT_GE(cs.node_cache(0).stats().si_invalidations, 8u);
}

TEST(Carina, ReadOnlySharedPagesSurviveUnderPS3) {
  Cluster cl(small_cfg(4, 1, Mode::PS3));
  // Everyone reads pages homed on node 0; nobody writes. S,NW: exempt.
  for (std::uint64_t pg = 0; pg < 8; ++pg)
    *cl.host_ptr(page_addr(pg).cast<std::uint64_t>()) = pg * 7;
  cl.reset_classification();
  cl.run([&](Thread& t) {
    for (int round = 0; round < 4; ++round) {
      for (std::uint64_t pg = 0; pg < 8; ++pg)
        EXPECT_EQ(t.load(page_addr(pg).cast<std::uint64_t>()), pg * 7);
      t.barrier();
    }
  });
  // Nodes 1..3 cache the pages; their caches never invalidate them.
  for (int n = 1; n < 4; ++n) {
    EXPECT_EQ(cl.node_cache(n).stats().si_invalidations, 0u);
    EXPECT_LE(cl.node_cache(n).stats().read_misses, 8u);
  }
}

TEST(Carina, SingleWriterKeepsItsPageConsumersRefetch) {
  // §3.5's producer/consumer optimization: the single writer does not
  // self-invalidate; consumers do, and read fresh data from the home.
  Cluster cl(small_cfg(2, 1, Mode::PS3));
  // Page 17 is homed on node 1, so writer node 0 goes through the protocol.
  auto p = page_addr(17).cast<std::uint64_t>();
  const int rounds = 5;
  cl.run([&](Thread& t) {
    for (int r = 1; r <= rounds; ++r) {
      if (t.node() == 0) t.store(p, static_cast<std::uint64_t>(r * 11));
      t.barrier();
      EXPECT_EQ(t.load(p), static_cast<std::uint64_t>(r * 11));
      t.barrier();
    }
  });
  // Writer node 0: page stays valid across every fence.
  EXPECT_EQ(cl.node_cache(0).stats().si_invalidations, 0u);
  EXPECT_EQ(cl.node_cache(0).stats().read_misses, 0u);
  EXPECT_GE(cl.node_cache(0).stats().writebacks, static_cast<std::uint64_t>(rounds));
}

TEST(Carina, WriteBufferOverflowDrainsOldestFirst) {
  auto cfg = small_cfg(2, 1, Mode::PS3, 1, 64, /*wb=*/4);
  Cluster cl(cfg);
  cl.run([&](Thread& t) {
    if (t.node() == 0) {
      // Dirty 12 distinct remote pages: 8 must drain before any fence.
      for (std::uint64_t pg = 16; pg < 28; ++pg)
        t.store(page_addr(pg).cast<std::uint64_t>(), pg);
      EXPECT_GE(t.cache().stats().writebacks, 8u);
      EXPECT_LE(t.cache().dirty_pages(), 4u);
    }
    t.barrier();
    // After the barrier everything is flushed.
    EXPECT_EQ(t.cache().dirty_pages(), 0u);
  });
  for (std::uint64_t pg = 16; pg < 28; ++pg)
    EXPECT_EQ(*cl.host_ptr(page_addr(pg).cast<std::uint64_t>()), pg);
}

TEST(Carina, DirectMappedEvictionPreservesData) {
  // 4-line cache: pages 16..31 of node 1 all collide heavily.
  Cluster cl(small_cfg(2, 1, Mode::PS3, 1, /*lines=*/4, 64));
  cl.run([&](Thread& t) {
    if (t.node() == 0) {
      for (std::uint64_t pg = 16; pg < 32; ++pg)
        t.store(page_addr(pg).cast<std::uint64_t>(), pg * 13);
      for (std::uint64_t pg = 16; pg < 32; ++pg)
        EXPECT_EQ(t.load(page_addr(pg).cast<std::uint64_t>()), pg * 13);
    }
  });
  EXPECT_GT(cl.node_cache(0).stats().evictions, 0u);
}

TEST(Carina, PrefetchFetchesWholeLine) {
  Cluster cl(small_cfg(2, 1, Mode::PS3, /*pages_per_line=*/4, 16, 64));
  cl.run([&](Thread& t) {
    if (t.node() == 0) {
      // First touch fetches the whole 4-page line in one read...
      (void)t.load(page_addr(16).cast<std::uint64_t>());
      EXPECT_EQ(t.cache().stats().line_fetches, 1u);
      EXPECT_EQ(t.cache().stats().pages_fetched, 4u);
      // ...so touching the neighbours costs no further data transfer.
      for (std::uint64_t pg = 17; pg < 20; ++pg)
        (void)t.load(page_addr(pg).cast<std::uint64_t>());
      EXPECT_EQ(t.cache().stats().line_fetches, 1u);
      EXPECT_EQ(t.cache().stats().pages_fetched, 4u);
    }
  });
}

TEST(Carina, NaivePsServicesPToSFromCheckpoint) {
  // Naive P/S (§3.4.2 "Naive Solution"): the private owner does NOT
  // downgrade; the newcomer heals the home copy from the owner's
  // checkpoint taken at the owner's last sync.
  Cluster cl(small_cfg(3, 1, Mode::PSNaive));
  auto p = page_addr(40).cast<std::uint64_t>();  // homed on node 2
  cl.run([&](Thread& t) {
    if (t.node() == 0) t.store(p, std::uint64_t{777});
    t.barrier();  // node 0 checkpoints; home stays stale
  });
  EXPECT_NE(*cl.host_ptr(p), 777u) << "naive P/S must not downgrade private pages";
  cl.run([&](Thread& t) {
    if (t.node() == 1) {
      EXPECT_EQ(t.load(p), 777u);  // healed from node 0's checkpoint
    }
  });
  EXPECT_EQ(*cl.host_ptr(p), 777u);
  EXPECT_EQ(cl.node_cache(1).stats().heals, 1u);
  EXPECT_GT(cl.node_cache(0).stats().checkpoints, 0u);
}

TEST(Carina, SwDiffSuppressionWritesWholePages) {
  auto cfg = small_cfg(2, 1, Mode::PS3);
  cfg.cache.sw_diff_suppression = true;
  Cluster cl(cfg);
  auto p = page_addr(17).cast<std::uint64_t>();
  cl.run([&](Thread& t) {
    if (t.node() == 0) t.store(p, std::uint64_t{5});
    t.barrier();
    EXPECT_EQ(t.load(p), 5u);
  });
  EXPECT_GE(cl.node_cache(0).stats().full_page_writebacks, 1u);
  EXPECT_EQ(cl.node_cache(0).stats().diffs_built, 0u);
}

TEST(Carina, DiffsOnlyTransmitChangedBytes) {
  Cluster cl(small_cfg(2, 1, Mode::PS3));
  cl.run([&](Thread& t) {
    if (t.node() == 0) {
      // Touch 16 bytes of a remote page.
      for (int i = 0; i < 16; ++i)
        t.store(page_addr(20, static_cast<std::size_t>(i) * 100),
                static_cast<std::uint8_t>(i + 1));
    }
    t.barrier();
  });
  const auto& st = cl.node_cache(0).stats();
  EXPECT_EQ(st.diffs_built, 1u);
  EXPECT_LT(st.writeback_bytes, 1024u);  // 16 runs * (1 + 8) bytes, not 4096
}

TEST(Carina, AtomicsAccumulateAcrossNodes) {
  Cluster cl(small_cfg(4, 2, Mode::PS3));
  auto ctr = cl.alloc<std::uint64_t>(1);
  cl.run([&](Thread& t) {
    for (int i = 0; i < 100; ++i) t.atomic_fetch_add(ctr, 1);
  });
  EXPECT_EQ(*cl.host_ptr(ctr), 800u);
}

TEST(Carina, BulkTransfersSpanPages) {
  Cluster cl(small_cfg(2, 1, Mode::PS3));
  const std::size_t n = 3 * kPageSize / sizeof(std::uint32_t);  // 3 pages
  auto arr = gptr<std::uint32_t>(18 * kPageSize);  // homed on node 1
  std::vector<std::uint32_t> src(n), dst(n);
  for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<std::uint32_t>(i * 7);
  cl.run([&](Thread& t) {
    if (t.node() == 0) t.store_bulk(arr, src.data(), n);
    t.barrier();
    if (t.node() == 1) {
      t.load_bulk(arr, dst.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(dst[i], static_cast<std::uint32_t>(i * 7));
    }
  });
}

TEST(Carina, ResetClassificationDropsCaches) {
  Cluster cl(small_cfg(2, 1, Mode::PS3));
  cl.run([&](Thread& t) {
    if (t.node() == 0)
      for (std::uint64_t pg = 16; pg < 20; ++pg)
        (void)t.load(page_addr(pg).cast<std::uint64_t>());
    t.barrier();
  });
  EXPECT_GT(cl.node_cache(0).resident_pages(), 0u);
  cl.reset_classification();
  EXPECT_EQ(cl.node_cache(0).resident_pages(), 0u);
  EXPECT_FALSE(cl.dir().host_entry(16).any());
}

TEST(Carina, RunSubsetUsesFewerNodes) {
  Cluster cl(small_cfg(4, 4, Mode::PS3));
  int max_gid = -1;
  cl.run_subset(2, 3, [&](Thread& t) {
    EXPECT_LT(t.node(), 2);
    EXPECT_LT(t.tid(), 3);
    EXPECT_EQ(t.nthreads(), 6);
    max_gid = std::max(max_gid, t.gid());
    t.barrier();
  });
  EXPECT_EQ(max_gid, 5);
}

TEST(Carina, DeterministicReplayOfWholeCluster) {
  auto trace = [](std::uint64_t seed) {
    Cluster cl(small_cfg(3, 2, Mode::PS3, 2, 16, 8));
    auto arr = cl.alloc<std::uint64_t>(512);
    Time dur = cl.run([&](Thread& t) {
      argosim::Rng rng(seed + static_cast<std::uint64_t>(t.gid()));
      for (int i = 0; i < 200; ++i) {
        auto idx = rng.next_below(512);
        if (rng.next_bool(0.3))
          t.store(arr + static_cast<std::ptrdiff_t>(idx), rng.next_u64());
        else
          (void)t.load(arr + static_cast<std::ptrdiff_t>(idx));
        if (i % 50 == 49) t.barrier();
      }
      t.barrier();
    });
    auto st = cl.coherence_stats();
    return std::tuple(dur, st.read_misses, st.writebacks, st.bytes_fetched,
                      cl.net_stats().total_bytes());
  };
  EXPECT_EQ(trace(1), trace(1));
  EXPECT_NE(std::get<0>(trace(1)), std::get<0>(trace(2)));
}

TEST(Carina, AllModesComputeTheSameResult) {
  // The classification mode is a pure performance knob: identical DRF
  // programs must produce identical memory contents under every mode.
  auto run_mode = [](Mode m) {
    Cluster cl(small_cfg(4, 2, m, 2, 16, 8));
    auto arr = cl.alloc<std::uint64_t>(2048);
    cl.run([&](Thread& t) {
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = static_cast<std::size_t>(t.gid()); i < 2048;
             i += static_cast<std::size_t>(t.nthreads()))
          t.store(arr + static_cast<std::ptrdiff_t>(i),
                  static_cast<std::uint64_t>(round * 1000 + i));
        t.barrier();
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < 2048; i += 37)
          sum += t.load(arr + static_cast<std::ptrdiff_t>(i));
        t.store(arr + static_cast<std::ptrdiff_t>(2000 + t.gid()), sum);
        t.barrier();
      }
    });
    std::vector<std::uint64_t> out(2048);
    for (std::size_t i = 0; i < 2048; ++i) out[i] = cl.host_ptr(arr)[i];
    return out;
  };
  auto s = run_mode(Mode::S);
  EXPECT_EQ(s, run_mode(Mode::PS));
  EXPECT_EQ(s, run_mode(Mode::PS3));
}

TEST(ClusterConfig, ValidateRejectsOutOfRangeNodeCounts) {
  ClusterConfig cfg;
  cfg.nodes = argodir::max_nodes();  // the full multi-word range is legal
  EXPECT_NO_THROW(cfg.validate());
  cfg.nodes = argodir::max_nodes() + 1;
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument for nodes past the ceiling";
  } catch (const std::invalid_argument& e) {
    // The message must name the offending value and the supported range.
    const std::string msg = e.what();
    EXPECT_NE(msg.find(std::to_string(argodir::max_nodes() + 1)),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find(std::to_string(argodir::max_nodes())),
              std::string::npos)
        << msg;
  }
  cfg.nodes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.nodes = 4;
  cfg.threads_per_node = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // The Cluster constructor applies the same validation.
  ClusterConfig bad = small_cfg(1, 1, Mode::PS3);
  bad.nodes = argodir::max_nodes() + 1;
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace argo
