// Parallel virtual-time engine identity suite.
//
// The determinism contract under test: for a fixed (program, config, seed)
// triple, the sharded engine produces BIT-IDENTICAL results at every worker
// count — traces, statistics counters, virtual times and memory images all
// match the single-worker sharded reference (the mode ARGO_SEQ_ENGINE=1
// selects) exactly. Parallelism may only change wall-clock time.
//
// Scenarios sweep the protocol surface: PS3 and PSNaive classification,
// posted-verb pipelines of depth 1 and 16, chaos fault injection (jitter,
// RDMA failures, message drop/duplication, brownouts), a DSM lock, and a
// barrier-free crash-stop schedule — each across three seeds and worker
// counts {1, 2, 8}. Directed tests cover the conservative-lookahead edge
// cases: same-shard self-sends, simultaneous cross-shard timestamps,
// shard-local starvation, and the cross-shard same-time wakeup guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/cluster.hpp"
#include "net/faults.hpp"
#include "net/interconnect.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/par.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"
#include "sync/dsm_locks.hpp"

namespace {

using argo::Cluster;
using argo::ClusterConfig;
using argo::Mode;
using argo::Thread;
using argonet::FaultConfig;
using argonet::Interconnect;
using argonet::Message;
using argonet::NetConfig;
using argonet::NodeFailedError;
using argosim::Engine;
using argosim::Time;

// ---------------------------------------------------------------------------
// Fingerprint: everything the identity contract covers, in comparable form
// ---------------------------------------------------------------------------

struct Fingerprint {
  Time elapsed = 0;
  std::vector<std::uint64_t> memory;     // raw words of every allocation
  std::vector<std::string> counters;     // "name=value" per registry metric
  std::vector<std::string> trace;        // serialized merged trace events
};

void expect_identical(const Fingerprint& ref, const Fingerprint& got,
                      const std::string& label) {
  EXPECT_EQ(ref.elapsed, got.elapsed) << label << ": virtual time diverged";
  EXPECT_EQ(ref.memory, got.memory) << label << ": memory image diverged";
  EXPECT_EQ(ref.counters, got.counters) << label << ": counters diverged";
  EXPECT_EQ(ref.trace, got.trace) << label << ": trace diverged";
}

void append_words(Fingerprint& f, const void* p, std::size_t bytes) {
  const std::size_t words = bytes / sizeof(std::uint64_t);
  const auto* w = static_cast<const std::uint64_t*>(p);
  f.memory.insert(f.memory.end(), w, w + words);
}

void append_counters(Fingerprint& f, const Cluster& cl) {
  // sim.* counters are host-side scheduler diagnostics (context switches,
  // queue ops, pool hits): deterministic per engine configuration but
  // intentionally different between the legacy and sharded schedulers and
  // between fast and slow paths — outside the identity contract.
  for (const auto& c : const_cast<Cluster&>(cl).stats().counters)
    if (c.name.rfind("sim.", 0) != 0)
      f.counters.push_back(c.name + "=" + std::to_string(c.value));
}

void append_trace(Fingerprint& f, Cluster& cl) {
  for (const auto& e : cl.tracer().snapshot())
    f.trace.push_back(std::to_string(e.seq) + ":" + std::to_string(e.t) +
                      ":" + std::to_string(e.page) + ":" +
                      std::to_string(e.arg) + ":" + std::to_string(e.thread) +
                      ":" + std::to_string(e.node) + ":" +
                      std::to_string(e.kind) + ":" + std::to_string(e.state));
}

// ---------------------------------------------------------------------------
// Scenario 1: coherent stencil + reduction (barriers, fences, line fetches,
// writebacks, directory traffic, one RDMA atomic per round)
// ---------------------------------------------------------------------------

struct StencilOpts {
  Mode mode = Mode::PS3;
  int pipeline = 1;
  FaultConfig faults;  // disabled by default
  std::uint64_t seed = 1;
  int iters = 3;
};

Fingerprint run_stencil(const StencilOpts& o, int workers) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.threads_per_node = 2;
  cfg.global_mem_bytes = 1u << 20;
  cfg.cache.classification = o.mode;
  cfg.net.pipeline = o.pipeline;
  cfg.faults = o.faults;
  cfg.trace.enabled = true;
  cfg.engine_threads = workers;
  Cluster cl(cfg);

  constexpr std::size_t N = 2048;
  auto data = cl.alloc<double>(N);
  auto next = cl.alloc<double>(N);
  auto partial = cl.alloc<double>(static_cast<std::size_t>(cl.nthreads()));
  auto rounds = cl.alloc<std::uint64_t>(1);
  {
    argosim::Rng rng(o.seed);
    double* d = cl.host_ptr(data);
    for (std::size_t i = 0; i < N; ++i) d[i] = rng.next_double(-1, 1);
    std::memset(cl.host_ptr(next), 0, N * sizeof(double));
    std::memset(cl.host_ptr(partial), 0,
                static_cast<std::size_t>(cl.nthreads()) * sizeof(double));
    *cl.host_ptr(rounds) = 0;
  }
  cl.reset_classification();

  Fingerprint f;
  f.elapsed = cl.run([&](Thread& t) {
    const auto nt = static_cast<std::size_t>(t.nthreads());
    const auto gid = static_cast<std::size_t>(t.gid());
    const std::size_t lo = N * gid / nt, hi = N * (gid + 1) / nt;
    for (int it = 0; it < o.iters; ++it) {
      for (std::size_t i = lo; i < hi; ++i) {
        const double l = t.load(data + static_cast<std::ptrdiff_t>(
                                           (i + N - 1) % N));
        const double m = t.load(data + static_cast<std::ptrdiff_t>(i));
        const double r =
            t.load(data + static_cast<std::ptrdiff_t>((i + 1) % N));
        t.store(next + static_cast<std::ptrdiff_t>(i),
                0.25 * l + 0.5 * m + 0.25 * r);
      }
      t.atomic_fetch_add(rounds, 1);
      t.barrier();
      for (std::size_t i = lo; i < hi; ++i)
        t.store(data + static_cast<std::ptrdiff_t>(i),
                t.load(next + static_cast<std::ptrdiff_t>(i)));
      t.barrier();
    }
    double s = 0;
    for (std::size_t i = lo; i < hi; ++i)
      s += t.load(data + static_cast<std::ptrdiff_t>(i));
    t.store(partial + t.gid(), s);
    t.barrier();
  });

  append_words(f, cl.host_ptr(data), N * sizeof(double));
  append_words(f, cl.host_ptr(next), N * sizeof(double));
  append_words(f, cl.host_ptr(partial),
               static_cast<std::size_t>(cl.nthreads()) * sizeof(double));
  append_words(f, cl.host_ptr(rounds), sizeof(std::uint64_t));
  append_counters(f, cl);
  append_trace(f, cl);
  return f;
}

void stencil_identity(StencilOpts o) {
  for (const std::uint64_t seed : {3u, 17u, 4242u}) {
    o.seed = seed;
    const Fingerprint ref = run_stencil(o, 1);
    for (const int w : {2, 8})
      expect_identical(ref, run_stencil(o, w),
                       "seed " + std::to_string(seed) + ", workers " +
                           std::to_string(w));
  }
}

TEST(ParallelIdentity, StencilPS3Pipeline1) {
  StencilOpts o;
  o.mode = Mode::PS3;
  o.pipeline = 1;
  stencil_identity(o);
}

TEST(ParallelIdentity, StencilPSNaivePipeline16) {
  StencilOpts o;
  o.mode = Mode::PSNaive;
  o.pipeline = 16;
  stencil_identity(o);
}

TEST(ParallelIdentity, ChaosFaults) {
  StencilOpts o;
  o.mode = Mode::PS3;
  o.pipeline = 16;
  o.faults.enabled = true;
  o.faults.rdma_fail_prob = 0.02;
  o.faults.jitter_prob = 0.2;
  o.faults.jitter_max = 800;
  o.faults.msg_drop_prob = 0.05;
  o.faults.msg_dup_prob = 0.02;
  o.faults.brownout_mean_interval = 300000;
  o.faults.brownout_mean_duration = 40000;
  stencil_identity(o);
}

// The legacy single-queue engine and the sharded engine agree on the
// outcome of fault-free runs: same verb costs, same barrier timing, so
// identical virtual times, memory images and counters. Event-level traces
// are NOT required to match — at equal timestamps the two schedulers may
// run symmetric fibers in different orders (legacy uses FIFO insertion
// order across all nodes, sharded breaks ties by (time, node, seq)), and
// whichever fiber runs first wins same-instant races such as directory
// requests. Pin the outcome equivalence plus the event count.
TEST(ParallelIdentity, LegacyMatchesShardedFaultFree) {
  StencilOpts o;
  o.seed = 99;
  const Fingerprint legacy = run_stencil(o, 0);  // engine_threads 0 = legacy
  const Fingerprint sharded = run_stencil(o, 1);
  EXPECT_EQ(legacy.elapsed, sharded.elapsed) << "virtual time diverged";
  EXPECT_EQ(legacy.memory, sharded.memory) << "memory image diverged";
  EXPECT_EQ(legacy.counters, sharded.counters) << "counters diverged";
  EXPECT_EQ(legacy.trace.size(), sharded.trace.size())
      << "trace cardinality diverged";
}

// ARGO_SEQ_ENGINE / ARGO_THREADS (via their programmatic setters) select
// the same sharded modes cfg.engine_threads does.
TEST(ParallelIdentity, EnvTogglesSelectShardedEngine) {
  StencilOpts o;
  o.seed = 11;
  const Fingerprint ref = run_stencil(o, 1);

  argosim::set_seq_engine(true);
  const Fingerprint seq = run_stencil(o, 0);
  argosim::set_seq_engine(false);
  expect_identical(ref, seq, "ARGO_SEQ_ENGINE=1");

  argosim::set_engine_threads(4);
  const Fingerprint par = run_stencil(o, 0);
  argosim::set_engine_threads(0);
  expect_identical(ref, par, "ARGO_THREADS=4");
}

// ---------------------------------------------------------------------------
// Scenario 2: DSM mutex (MCS handovers, acquire/release fences)
// ---------------------------------------------------------------------------

Fingerprint run_dsm_mutex(std::uint64_t seed, int workers) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.threads_per_node = 2;
  cfg.global_mem_bytes = 1u << 20;
  cfg.trace.enabled = true;
  cfg.engine_threads = workers;
  Cluster cl(cfg);

  auto counter = cl.alloc<double>(1);
  *cl.host_ptr(counter) = 0;
  cl.reset_classification();
  argosync::DsmMutex mu(cl);

  constexpr int kIncrements = 5;
  Fingerprint f;
  f.elapsed = cl.run([&](Thread& t) {
    // Deterministic per-thread stagger so acquisition order is interesting
    // but fixed by the seed.
    argosim::Rng rng(seed + static_cast<std::uint64_t>(t.gid()));
    for (int i = 0; i < kIncrements; ++i) {
      t.compute(static_cast<Time>(rng.next_below(20000)));
      mu.lock(t);
      t.store(counter, t.load(counter) + 1.0);
      mu.unlock(t);
    }
  });
  EXPECT_EQ(*cl.host_ptr(counter),
            static_cast<double>(cl.nthreads() * kIncrements));

  append_words(f, cl.host_ptr(counter), sizeof(double));
  append_counters(f, cl);
  append_trace(f, cl);
  return f;
}

TEST(ParallelIdentity, DsmMutexHandovers) {
  for (const std::uint64_t seed : {5u, 23u, 777u}) {
    const Fingerprint ref = run_dsm_mutex(seed, 1);
    for (const int w : {2, 8})
      expect_identical(ref, run_dsm_mutex(seed, w),
                       "seed " + std::to_string(seed) + ", workers " +
                           std::to_string(w));
  }
}

// ---------------------------------------------------------------------------
// Scenario 3: barrier-free crash-stop (the one crash shape the sharded
// engine supports: a fixed-time schedule with no global rendezvous)
// ---------------------------------------------------------------------------

Fingerprint run_crash_stop(std::uint64_t seed, int workers) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.threads_per_node = 2;
  cfg.global_mem_bytes = 1u << 20;
  cfg.engine_threads = workers;
  cfg.faults.enabled = true;
  cfg.faults.seed = seed;
  cfg.faults.jitter_prob = 0.1;
  cfg.faults.jitter_max = 700;
  cfg.faults.crashes.push_back(argonet::CrashEvent{/*node=*/3,
                                                   /*at=*/2500000,
                                                   /*after_ops=*/0,
                                                   /*rejoin_at=*/0});
  Cluster cl(cfg);

  std::vector<argomem::gptr<std::uint64_t>> slots;
  for (int n = 0; n < cfg.nodes; ++n) {
    slots.push_back(cl.gmem().alloc_on_node<std::uint64_t>(n, 1));
    *cl.host_ptr(slots.back()) = 0;
  }
  auto tallies = cl.alloc<std::uint64_t>(static_cast<std::size_t>(
      cl.nthreads()));
  std::memset(cl.host_ptr(tallies), 0,
              static_cast<std::size_t>(cl.nthreads()) * sizeof(std::uint64_t));
  cl.reset_classification();

  Fingerprint f;
  f.elapsed = cl.run([&](Thread& t) {
    std::uint64_t ok = 0, dead = 0;
    for (int round = 0; round < 60; ++round) {
      t.compute(50000);
      const int target = (round + t.gid()) % t.nodes();
      try {
        t.atomic_fetch_add(slots[static_cast<std::size_t>(target)], 1);
        ++ok;
      } catch (const NodeFailedError&) {
        ++dead;  // target crash-stopped; skip it and keep going
      }
    }
    t.atomic_store(tallies + t.gid(), (ok << 16) | dead);
  });

  for (int n = 0; n < cfg.nodes; ++n)
    append_words(f, cl.host_ptr(slots[static_cast<std::size_t>(n)]),
                 sizeof(std::uint64_t));
  append_words(f, cl.host_ptr(tallies),
               static_cast<std::size_t>(cl.nthreads()) * sizeof(std::uint64_t));
  append_counters(f, cl);
  return f;
}

TEST(ParallelIdentity, CrashStopBarrierFree) {
  for (const std::uint64_t seed : {2u, 31u, 555u}) {
    const Fingerprint ref = run_crash_stop(seed, 1);
    for (const int w : {2, 8})
      expect_identical(ref, run_crash_stop(seed, w),
                       "seed " + std::to_string(seed) + ", workers " +
                           std::to_string(w));
  }
}

// ---------------------------------------------------------------------------
// Directed lookahead edge cases (raw engine + interconnect)
// ---------------------------------------------------------------------------

NetConfig raw_cfg() {
  NetConfig c;
  c.rdma_latency = 1000;
  c.msg_latency = 1000;
  c.nic_overhead = 100;
  c.net_bytes_per_ns = 2.0;
  c.mem_latency = 50;
  c.mem_bytes_per_ns = 10.0;
  return c;
}

// A node messaging itself never crosses a shard: delivery must work even
// though the effect lands on the posting shard, and times must not depend
// on the worker count.
TEST(ParallelLookahead, SelfSendStaysShardLocal) {
  auto run = [](std::uint32_t workers) {
    const NetConfig c = raw_cfg();
    Engine eng;
    eng.enable_sharding(2, std::min(c.rdma_latency, c.msg_latency), workers);
    Interconnect net(2, c);
    std::vector<std::uint64_t> got;
    eng.spawn_on(0, "self", [&] {
      for (int i = 0; i < 3; ++i) {
        Message m;
        m.src = 0;
        m.dst = 0;
        m.tag = i;
        net.send(m);
      }
      for (int i = 0; i < 3; ++i) {
        const Message m = net.recv(0);
        got.push_back(static_cast<std::uint64_t>(m.tag));
        got.push_back(argosim::now());
      }
    });
    eng.run();
    return got;
  };
  const auto ref = run(1);
  EXPECT_EQ(ref, run(2));
  EXPECT_EQ(ref, run(4));
  ASSERT_EQ(ref.size(), 6u);
  EXPECT_EQ(ref[0], 0u);  // FIFO per sender
  EXPECT_EQ(ref[2], 1u);
  EXPECT_EQ(ref[4], 2u);
}

// Two senders on different shards timed so their messages carry the SAME
// delivery timestamp at one receiver: the tie must break by source node
// id, identically at every worker count.
TEST(ParallelLookahead, SimultaneousCrossShardTimestamps) {
  auto run = [](std::uint32_t workers) {
    const NetConfig c = raw_cfg();
    Engine eng;
    eng.enable_sharding(3, std::min(c.rdma_latency, c.msg_latency), workers);
    Interconnect net(3, c);
    std::vector<std::uint64_t> got;
    for (int src = 0; src < 2; ++src) {
      eng.spawn_on(static_cast<std::uint32_t>(src), "s" + std::to_string(src),
                   [&net, src] {
                     Message m;
                     m.src = src;
                     m.dst = 2;
                     m.tag = 100 + src;
                     net.send(m);  // same issue time, same latency
                   });
    }
    eng.spawn_on(2, "rx", [&] {
      for (int i = 0; i < 2; ++i) {
        const Message m = net.recv(2);
        got.push_back(static_cast<std::uint64_t>(m.src));
        got.push_back(argosim::now());
      }
    });
    eng.run();
    return got;
  };
  const auto ref = run(1);
  EXPECT_EQ(ref, run(2));
  EXPECT_EQ(ref, run(4));
  ASSERT_EQ(ref.size(), 4u);
  EXPECT_EQ(ref[0], 0u);          // node id breaks the tie
  EXPECT_EQ(ref[2], 1u);
  EXPECT_EQ(ref[1], ref[3]);      // genuinely simultaneous
}

// One shard sleeps far ahead of the others (no events for many windows):
// the busy shards must keep advancing through the quiet one's horizon, and
// the sleeper must wake at exactly its requested time.
TEST(ParallelLookahead, ShardLocalStarvation) {
  auto run = [](std::uint32_t workers) {
    const NetConfig c = raw_cfg();
    Engine eng;
    eng.enable_sharding(2, std::min(c.rdma_latency, c.msg_latency), workers);
    Interconnect net(2, c);
    std::uint64_t remote = 0;
    std::uint64_t sleep_t = 0, busy_t = 0;
    eng.spawn_on(0, "sleeper", [&] {
      argosim::delay(10000000);  // ~10k lookahead windows of silence
      sleep_t = argosim::now();
    });
    eng.spawn_on(1, "busy", [&] {
      for (int i = 0; i < 200; ++i)
        net.fetch_add(1, 0, &remote, 1);  // cross-shard atomics throughout
      busy_t = argosim::now();
    });
    eng.run();
    return std::vector<std::uint64_t>{sleep_t, busy_t, remote};
  };
  const auto ref = run(1);
  EXPECT_EQ(ref, run(2));
  ASSERT_EQ(ref.size(), 3u);
  EXPECT_EQ(ref[0], 10000000u);
  EXPECT_EQ(ref[2], 200u);
}

// Same-time cross-shard wakeups (SimEvent delegation and friends) are
// impossible under conservative lookahead; the engine must reject them
// loudly instead of deadlocking or racing.
TEST(ParallelLookahead, CrossShardWakeThrows) {
  Engine eng;
  eng.enable_sharding(2, 1000, 1);
  argosim::SimEvent ev;
  eng.spawn_on(0, "waiter", [&] { ev.wait(); });
  eng.spawn_on(1, "setter", [&] {
    argosim::delay(5000);
    ev.set();  // cross-shard make_runnable at the current instant
  });
  EXPECT_THROW(eng.run(), std::logic_error);
}

// require_serial names the offending feature when the sharded engine is on.
TEST(ParallelLookahead, RequireSerialThrowsWhenSharded) {
  Engine eng;
  eng.enable_sharding(2, 1000, 1);
  EXPECT_THROW(eng.require_serial("test feature"), std::logic_error);
  Engine legacy;
  legacy.require_serial("test feature");  // no-op on the legacy engine
}

// ---------------------------------------------------------------------------
// Run-queue lazy compaction (legacy engine satellite): dead entries from
// early notify_one() wakeups must be purged once they dominate the queue.
// ---------------------------------------------------------------------------

TEST(RunQueue, LazyCompactionPurgesDeadEntries) {
  Engine eng;
  argosim::WaitQueue q;
  bool stop = false;
  eng.spawn("sleeper", [&] {
    // Every timed wait that is notified early leaves one dead (stale-token)
    // entry in the run queue at the old deadline.
    while (!stop) q.wait_until(argosim::now() + 1000000);
  });
  eng.spawn("waker", [&] {
    for (int i = 0; i < 4096; ++i) {
      argosim::delay(10);
      q.notify_one();
    }
    stop = true;
    argosim::delay(10);
    q.notify_one();
  });
  eng.run();
  EXPECT_GT(eng.runq_purged(), 0u);
}

}  // namespace
