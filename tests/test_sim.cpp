// Unit tests for the deterministic virtual-time engine (src/sim).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"

namespace argosim {
namespace {

TEST(Engine, SingleThreadAdvancesClock) {
  Engine eng;
  Time seen = 1;
  eng.spawn("t0", [&] {
    EXPECT_EQ(now(), 0u);
    delay(100);
    EXPECT_EQ(now(), 100u);
    delay(50);
    seen = now();
  });
  eng.run();
  EXPECT_EQ(seen, 150u);
  EXPECT_EQ(eng.now(), 150u);
}

TEST(Engine, ClockIsSharedAcrossThreads) {
  Engine eng;
  std::vector<Time> order;
  eng.spawn("a", [&] {
    delay(10);
    order.push_back(now());
    delay(30);  // wakes at 40
    order.push_back(now());
  });
  eng.spawn("b", [&] {
    delay(25);
    order.push_back(now());
  });
  eng.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 10u);
  EXPECT_EQ(order[1], 25u);
  EXPECT_EQ(order[2], 40u);
}

TEST(Engine, FifoOrderAmongEqualTimes) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    eng.spawn("t" + std::to_string(i), [&order, i] {
      delay(100);
      order.push_back(i);
    });
  eng.run();
  std::vector<int> expect{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expect);
}

TEST(Engine, YieldIsRoundRobinFair) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i)
    eng.spawn("t" + std::to_string(i), [&order, i] {
      for (int k = 0; k < 3; ++k) {
        order.push_back(i);
        yield();
      }
    });
  eng.run();
  std::vector<int> expect{0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_EQ(order, expect);
  EXPECT_EQ(eng.now(), 0u);  // yields cost no virtual time
}

TEST(Engine, SpawnFromInsideFiber) {
  Engine eng;
  int children_done = 0;
  eng.spawn("parent", [&] {
    delay(5);
    for (int i = 0; i < 4; ++i)
      Engine::current()->spawn("child", [&] {
        delay(10);
        ++children_done;
      });
  });
  eng.run();
  EXPECT_EQ(children_done, 4);
  EXPECT_EQ(eng.now(), 15u);
}

TEST(Engine, RunIsRepeatableAndTimeMonotonic) {
  Engine eng;
  eng.spawn("a", [] { delay(100); });
  eng.run();
  EXPECT_EQ(eng.now(), 100u);
  eng.spawn("b", [] { delay(10); });
  eng.run();
  EXPECT_EQ(eng.now(), 110u);
}

TEST(Engine, ExceptionInFiberPropagatesFromRun) {
  Engine eng;
  eng.spawn("boom", [] {
    delay(1);
    throw std::logic_error("boom");
  });
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(Engine, DeadlockIsDetected) {
  Engine eng;
  WaitQueue q;
  eng.spawn("stuck", [&] { q.wait(); });
  EXPECT_THROW(eng.run(), SimDeadlock);
}

TEST(Engine, DaemonsDoNotBlockCompletionAndAreUnwound) {
  bool daemon_unwound = false;
  // Declared before the engine: the parked daemon still references the
  // channel while the engine destructor unwinds it.
  auto ch = std::make_unique<Channel<int>>();
  {
    Engine eng;
    eng.spawn(
        "handler",
        [&, ch = ch.get()] {
          struct Sentinel {
            bool* flag;
            ~Sentinel() { *flag = true; }
          } s{&daemon_unwound};
          for (;;) ch->recv();  // parked forever
        },
        /*daemon=*/true);
    eng.spawn("worker", [] { delay(42); });
    eng.run();  // completes despite the parked daemon
    EXPECT_EQ(eng.now(), 42u);
    EXPECT_FALSE(daemon_unwound);
    // Engine destructor unwinds the daemon (running Sentinel's destructor).
  }
  EXPECT_TRUE(daemon_unwound);
}

TEST(Engine, ManyFibers) {
  Engine eng;
  int sum = 0;
  const int n = 2048;
  for (int i = 0; i < n; ++i)
    eng.spawn("w", [&sum] {
      delay(7);
      ++sum;
    });
  eng.run();
  EXPECT_EQ(sum, n);
  EXPECT_EQ(eng.now(), 7u);
}

TEST(SimMutex, MutualExclusionAndFifoHandoff) {
  Engine eng;
  SimMutex m;
  int inside = 0;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    eng.spawn("t" + std::to_string(i), [&, i] {
      m.lock();
      EXPECT_EQ(inside, 0);
      ++inside;
      order.push_back(i);
      delay(10);
      --inside;
      m.unlock();
    });
  eng.run();
  std::vector<int> expect{0, 1, 2, 3, 4};
  EXPECT_EQ(order, expect);
  EXPECT_EQ(eng.now(), 50u);
  EXPECT_FALSE(m.locked());
}

TEST(SimMutex, TryLock) {
  Engine eng;
  SimMutex m;
  eng.spawn("a", [&] {
    EXPECT_TRUE(m.try_lock());
    delay(10);
    m.unlock();
  });
  eng.spawn("b", [&] {
    delay(5);
    EXPECT_FALSE(m.try_lock());
    delay(10);  // now t=15, a released at t=10
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
  eng.run();
}

TEST(SimCondVar, PredicateWait) {
  Engine eng;
  SimMutex m;
  SimCondVar cv;
  bool ready = false;
  Time consumer_woke = 0;
  eng.spawn("consumer", [&] {
    SimLockGuard g(m);
    cv.wait(m, [&] { return ready; });
    consumer_woke = now();
  });
  eng.spawn("producer", [&] {
    delay(77);
    SimLockGuard g(m);
    ready = true;
    cv.notify_all();
  });
  eng.run();
  EXPECT_EQ(consumer_woke, 77u);
}

TEST(SimBarrier, RendezvousAcrossGenerations) {
  Engine eng;
  const int n = 6, rounds = 4;
  SimBarrier bar(n);
  std::vector<int> phase(n, 0);
  for (int i = 0; i < n; ++i)
    eng.spawn("t" + std::to_string(i), [&, i] {
      for (int r = 0; r < rounds; ++r) {
        delay(static_cast<Time>(i + 1));  // arrive staggered
        // Nobody may be a full phase ahead before the barrier.
        for (int j = 0; j < n; ++j) EXPECT_LE(phase[j], r + 1);
        bar.arrive_and_wait();
        ++phase[i];
        for (int j = 0; j < n; ++j) EXPECT_GE(phase[j] + 1, phase[i]);
      }
    });
  eng.run();
  for (int j = 0; j < n; ++j) EXPECT_EQ(phase[j], rounds);
}

TEST(SimEvent, ReleasesCurrentAndFutureWaiters) {
  Engine eng;
  SimEvent ev;
  int released = 0;
  eng.spawn("early", [&] {
    ev.wait();
    ++released;
  });
  eng.spawn("setter", [&] {
    delay(10);
    ev.set();
  });
  eng.spawn("late", [&] {
    delay(20);
    ev.wait();  // already set: returns immediately
    ++released;
    EXPECT_EQ(now(), 20u);
  });
  eng.run();
  EXPECT_EQ(released, 2);
}

TEST(Channel, FifoDelivery) {
  Engine eng;
  Channel<int> ch;
  std::vector<int> got;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 5; ++i) got.push_back(ch.recv());
  });
  eng.spawn("tx", [&] {
    for (int i = 0; i < 5; ++i) {
      delay(3);
      ch.send(i);
    }
  });
  eng.run();
  std::vector<int> expect{0, 1, 2, 3, 4};
  EXPECT_EQ(got, expect);
}

TEST(Channel, TryRecv) {
  Engine eng;
  Channel<std::string> ch;
  eng.spawn("t", [&] {
    EXPECT_FALSE(ch.try_recv().has_value());
    ch.send("x");
    auto v = ch.try_recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "x");
  });
  eng.run();
}

// Determinism: identical programs produce identical traces.
std::vector<std::uint64_t> run_trace(std::uint64_t seed) {
  Engine eng;
  std::vector<std::uint64_t> trace;
  SimMutex m;
  for (int i = 0; i < 16; ++i)
    eng.spawn("t", [&, i] {
      Rng rng(seed + static_cast<std::uint64_t>(i));
      for (int k = 0; k < 50; ++k) {
        delay(rng.next_below(100));
        SimLockGuard g(m);
        trace.push_back(now() * 31 + static_cast<std::uint64_t>(i));
        delay(rng.next_below(10));
      }
    });
  eng.run();
  trace.push_back(eng.now());
  return trace;
}

TEST(Engine, DeterministicReplay) {
  auto a = run_trace(12345);
  auto b = run_trace(12345);
  EXPECT_EQ(a, b);
  auto c = run_trace(54321);
  EXPECT_NE(a, c);
}

TEST(Rng, KnownSequencesAndRanges) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  for (int i = 0; i < 100; ++i) differs |= (a.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    auto v = r.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Time, LiteralsAndConversions) {
  EXPECT_EQ(3_us, 3000u);
  EXPECT_EQ(2_ms, 2000000u);
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_s(2500000000ull), 2.5);
}

}  // namespace
}  // namespace argosim
