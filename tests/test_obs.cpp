// Observability suite: LatencyHist bucket edges, the metrics registry,
// protocol event tracing, and the trace exporters.
//
// The two contracts under test:
//   1. Zero virtual-time cost — enabling tracing changes no virtual time
//      and no protocol statistic.
//   2. Determinism — the same (program, config, seed) yields a
//      byte-identical binary trace on every run, including pipelined
//      posted verbs and chaos fault injection.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/lu.hpp"
#include "core/cluster.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/slowpath.hpp"

namespace {

using argo::Cluster;
using argo::ClusterConfig;
using argo::ClusterStats;
using argomem::kPageSize;
using argoobs::decode_binary;
using argoobs::encode_binary;
using argoobs::encode_chrome_json;
using argoobs::Ev;
using argoobs::kUnknownState;
using argoobs::LatencyHist;
using argoobs::MetricsRegistry;
using argoobs::TraceConfig;
using argoobs::TraceEvent;
using argoobs::Tracer;
using argosim::Time;

// ---------------------------------------------------------------------------
// LatencyHist: the bucket edges are part of every histogram consumer's
// contract (bench/report.hpp prints "[<2^b:n]" labels), so pin them.
// ---------------------------------------------------------------------------

TEST(LatencyHist, BucketEdgesArePinned) {
  // Bucket 0 holds exactly-zero durations; bucket b >= 1 holds
  // [2^(b-1), 2^b); the last bucket saturates.
  EXPECT_EQ(LatencyHist::bucket_of(0), 0);
  EXPECT_EQ(LatencyHist::bucket_of(1), 1);
  EXPECT_EQ(LatencyHist::bucket_of(2), 2);
  EXPECT_EQ(LatencyHist::bucket_of(3), 2);
  EXPECT_EQ(LatencyHist::bucket_of(4), 3);
  EXPECT_EQ(LatencyHist::bucket_of(7), 3);
  EXPECT_EQ(LatencyHist::bucket_of(8), 4);
  EXPECT_EQ(LatencyHist::bucket_of(1u << 20), 21);
  EXPECT_EQ(LatencyHist::bucket_of(~0ull), LatencyHist::kBuckets - 1);
}

TEST(LatencyHist, BucketFloorsRoundTrip) {
  EXPECT_EQ(LatencyHist::bucket_floor_ns(0), 0u);
  for (int b = 1; b < LatencyHist::kBuckets - 1; ++b) {
    const std::uint64_t floor = LatencyHist::bucket_floor_ns(b);
    EXPECT_EQ(LatencyHist::bucket_of(floor), b) << "bucket " << b;
    EXPECT_EQ(LatencyHist::bucket_of(floor - 1), b - 1) << "bucket " << b;
    EXPECT_EQ(LatencyHist::bucket_of(2 * floor - 1), b) << "bucket " << b;
  }
}

TEST(LatencyHist, AddAndMerge) {
  LatencyHist a, b;
  a.add(0);
  a.add(1);
  a.add(1000);
  b.add(5);
  b += a;
  EXPECT_EQ(b.samples, 4u);
  EXPECT_EQ(b.total_ns, 1006u);
  EXPECT_EQ(b.max_ns, 1000u);
  EXPECT_EQ(b.bucket[0], 1u);  // the exact zero
  EXPECT_EQ(b.bucket[1], 1u);  // the 1
  EXPECT_EQ(b.bucket[3], 1u);  // the 5
  EXPECT_DOUBLE_EQ(b.mean_ns(), 1006.0 / 4.0);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SamplesLiveStorage) {
  std::uint64_t hits = 0;
  LatencyHist lat;
  MetricsRegistry reg;
  reg.add_counter("test.hits", [&] { return hits; });
  reg.add_hist("test.lat", [&] { return lat; });

  auto counters = reg.sample_counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].name, "test.hits");
  EXPECT_EQ(counters[0].value, 0u);

  hits = 42;
  lat.add(7);
  counters = reg.sample_counters();
  EXPECT_EQ(counters[0].value, 42u);  // closures read live storage
  auto hists = reg.sample_hists();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].name, "test.lat");
  EXPECT_EQ(hists[0].hist.samples, 1u);
}

// ---------------------------------------------------------------------------
// Tracer mechanics (no simulation: emit outside the engine stamps t = 0)
// ---------------------------------------------------------------------------

TraceConfig enabled_trace(std::size_t ring = 1u << 12) {
  TraceConfig t;
  t.enabled = true;
  t.ring_capacity = ring;
  return t;
}

TEST(Tracer, DisabledEmitsNothing) {
  Tracer tr;
  tr.configure(2, TraceConfig{});  // enabled defaults to false
  tr.emit(0, Ev::LineFill, 1, 0, 4096);
  EXPECT_FALSE(tr.enabled());
  EXPECT_EQ(tr.emitted(), 0u);
  EXPECT_TRUE(tr.snapshot().empty());
}

TEST(Tracer, SnapshotMergesBySeq) {
  Tracer tr;
  tr.configure(3, enabled_trace());
  tr.emit(2, Ev::LineFill, 10, 0, 1);
  tr.emit(0, Ev::Writeback, 11, 1, 2);
  tr.emit(2, Ev::Eviction, 12, 2, 0);
  tr.emit(1, Ev::LockHandover, 13, kUnknownState, 5);
  const auto evs = tr.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t i = 0; i < evs.size(); ++i) EXPECT_EQ(evs[i].seq, i);
  EXPECT_EQ(evs[0].node, 2);
  EXPECT_EQ(evs[1].node, 0);
  EXPECT_EQ(evs[3].node, 1);
  EXPECT_EQ(static_cast<Ev>(evs[3].kind), Ev::LockHandover);
  EXPECT_EQ(evs[3].state, kUnknownState);
  EXPECT_EQ(evs[3].arg, 5u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, RingWrapsAndCountsDropped) {
  Tracer tr;
  tr.configure(1, enabled_trace(/*ring=*/8));
  for (std::uint64_t i = 0; i < 20; ++i)
    tr.emit(0, Ev::LineFill, i, 0, 0);
  EXPECT_EQ(tr.emitted(), 20u);
  EXPECT_EQ(tr.dropped(), 12u);
  const auto evs = tr.node_events(0);
  ASSERT_EQ(evs.size(), 8u);
  // Oldest-first, and only the newest 8 survive.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, 12 + i);
    EXPECT_EQ(evs[i].page, 12 + i);
  }
}

TEST(Tracer, EventNamesCoverAllKinds) {
  for (int k = 0; k <= static_cast<int>(Ev::PostedRetire); ++k) {
    const char* name = argoobs::to_string(static_cast<Ev>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
  }
  EXPECT_STREQ(argoobs::state_name(0), "P");
  EXPECT_STREQ(argoobs::state_name(kUnknownState), "-");
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

TEST(BinaryFormat, RoundTripsExactly) {
  std::vector<TraceEvent> in;
  for (std::uint64_t i = 0; i < 5; ++i) {
    TraceEvent e;
    e.seq = i;
    e.t = i * 1000 + 7;
    e.page = ~i;
    e.arg = i * i;
    e.thread = static_cast<std::uint32_t>(i + 100);
    e.node = static_cast<std::uint16_t>(i);
    e.kind = static_cast<std::uint8_t>(i % 11);
    e.state = (i % 2) ? kUnknownState : static_cast<std::uint8_t>(i % 4);
    in.push_back(e);
  }
  const auto bytes = encode_binary(in, /*dropped=*/3);
  EXPECT_EQ(bytes.size(), 32u + in.size() * argoobs::kBinaryRecordSize);
  std::uint64_t dropped = 0;
  const auto out = decode_binary(bytes, &dropped);
  EXPECT_EQ(dropped, 3u);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].seq, in[i].seq);
    EXPECT_EQ(out[i].t, in[i].t);
    EXPECT_EQ(out[i].page, in[i].page);
    EXPECT_EQ(out[i].arg, in[i].arg);
    EXPECT_EQ(out[i].thread, in[i].thread);
    EXPECT_EQ(out[i].node, in[i].node);
    EXPECT_EQ(out[i].kind, in[i].kind);
    EXPECT_EQ(out[i].state, in[i].state);
  }
}

TEST(BinaryFormat, RejectsMalformedInput) {
  const auto good = encode_binary({}, 0);
  EXPECT_NO_THROW(decode_binary(good));

  auto bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_binary(bad_magic), std::runtime_error);

  auto truncated = good;
  truncated.pop_back();
  EXPECT_THROW(decode_binary(truncated), std::runtime_error);

  TraceEvent e;
  auto short_body = encode_binary({e}, 0);
  short_body.resize(short_body.size() - 1);
  EXPECT_THROW(decode_binary(short_body), std::runtime_error);
}

// ---------------------------------------------------------------------------
// End-to-end: tracing a simulated cluster
// ---------------------------------------------------------------------------

ClusterConfig tiny_cfg(bool trace) {
  ClusterConfig c;
  c.nodes = 2;
  c.threads_per_node = 1;
  c.global_mem_bytes = 64 * kPageSize;
  c.trace.enabled = trace;
  return c;
}

/// The 2-node quickstart used by the golden and determinism tests: each
/// thread scales a slice of a shared array, then a barrier publishes it.
Time run_quickstart(Cluster& cl) {
  constexpr std::size_t kN = 1024;
  auto data = cl.alloc<double>(kN);
  for (std::size_t i = 0; i < kN; ++i)
    cl.host_ptr(data)[i] = static_cast<double>(i);
  cl.reset_classification();
  return cl.run([&](argo::Thread& self) {
    const std::size_t chunk = kN / static_cast<std::size_t>(self.nthreads());
    const std::size_t lo = chunk * static_cast<std::size_t>(self.gid());
    std::vector<double> buf(chunk);
    self.load_bulk(data + static_cast<std::ptrdiff_t>(lo), buf.data(), chunk);
    for (double& v : buf) v *= 2.0;
    self.store_bulk(data + static_cast<std::ptrdiff_t>(lo), buf.data(), chunk);
    self.barrier();
    double sum = 0;
    for (std::size_t i = 0; i < kN; ++i)
      sum += self.load(data + static_cast<std::ptrdiff_t>(i));
    (void)sum;
    self.barrier();
  });
}

TEST(ClusterTrace, EnablingTraceChangesNoVirtualTime) {
  Cluster off(tiny_cfg(false));
  const Time t_off = run_quickstart(off);
  Cluster on(tiny_cfg(true));
  const Time t_on = run_quickstart(on);
  EXPECT_EQ(t_off, t_on);

  // Every protocol statistic is identical too; only trace.* differ.
  const ClusterStats so = off.stats(), sn = on.stats();
  EXPECT_EQ(so.coherence.line_fetches, sn.coherence.line_fetches);
  EXPECT_EQ(so.coherence.writebacks, sn.coherence.writebacks);
  EXPECT_EQ(so.coherence.si_invalidations, sn.coherence.si_invalidations);
  EXPECT_EQ(so.net.rdma_reads, sn.net.rdma_reads);
  EXPECT_EQ(so.net.rdma_writes, sn.net.rdma_writes);
  EXPECT_EQ(so.counter("trace.emitted"), 0u);
  EXPECT_GT(sn.counter("trace.emitted"), 0u);
  EXPECT_EQ(sn.counter("trace.emitted"), on.tracer().emitted());
}

TEST(ClusterTrace, StatsSnapshotMatchesRegistryAndStructs) {
  Cluster cl(tiny_cfg(true));
  run_quickstart(cl);
  const ClusterStats s = cl.stats();
  EXPECT_EQ(s.counter("carina.writebacks"), s.coherence.writebacks);
  EXPECT_EQ(s.counter("carina.line_fetches"), s.coherence.line_fetches);
  EXPECT_EQ(s.counter("net.rdma_reads"), s.net.rdma_reads);
  EXPECT_EQ(s.hist("carina.sd_fence_ns").samples,
            s.coherence.sd_fence_ns.samples);
  EXPECT_EQ(s.counter("no.such.counter"), 0u);
  EXPECT_EQ(s.hist("no.such.hist").samples, 0u);
  ASSERT_EQ(s.per_node.size(), 2u);
  std::uint64_t wb = 0;
  for (const auto& n : s.per_node) wb += n.writebacks;
  EXPECT_EQ(wb, s.coherence.writebacks);
  EXPECT_GT(cl.metrics().counter_count(), 20u);
  EXPECT_GE(cl.metrics().hist_count(), 2u);
}

TEST(ClusterTrace, GoldenQuickstartTrace) {
  Cluster cl(tiny_cfg(true));
  run_quickstart(cl);
  const auto evs = cl.tracer().snapshot();
  ASSERT_FALSE(evs.empty());

  // Structural golden properties of the tiny quickstart's trace.
  std::uint64_t counts[11] = {};
  std::uint64_t last_seq = 0;
  bool first = true;
  for (const TraceEvent& e : evs) {
    ASSERT_LT(e.kind, 11u);
    ++counts[e.kind];
    if (!first) {
      EXPECT_GT(e.seq, last_seq);  // snapshot is seq-ordered
    }
    last_seq = e.seq;
    first = false;
    EXPECT_LT(e.node, 2u);
  }
  const ClusterStats s = cl.stats();
  // Fences emit balanced begin/end pairs, one pair per fence.
  EXPECT_EQ(counts[static_cast<int>(Ev::SiFenceBegin)],
            counts[static_cast<int>(Ev::SiFenceEnd)]);
  EXPECT_EQ(counts[static_cast<int>(Ev::SdFenceBegin)],
            counts[static_cast<int>(Ev::SdFenceEnd)]);
  EXPECT_EQ(counts[static_cast<int>(Ev::SiFenceBegin)],
            s.coherence.si_fences);
  EXPECT_EQ(counts[static_cast<int>(Ev::SdFenceBegin)],
            s.coherence.sd_fences);
  // Every writeback and every line fetch is traced.
  EXPECT_EQ(counts[static_cast<int>(Ev::Writeback)], s.coherence.writebacks);
  EXPECT_GT(counts[static_cast<int>(Ev::LineFill)], 0u);
  // The remote reads establish sharing: classification transitions fired.
  EXPECT_GT(counts[static_cast<int>(Ev::ClassTransition)], 0u);

  // The first event is thread 0's first SD fence (barrier entry) or line
  // fill; in either case virtual time stamps are monotone per node.
  for (int n = 0; n < 2; ++n) {
    const auto node_evs = cl.tracer().node_events(n);
    for (std::size_t i = 1; i < node_evs.size(); ++i)
      EXPECT_GE(node_evs[i].t, node_evs[i - 1].t);
  }
}

TEST(ClusterTrace, ReRunsProduceByteIdenticalBinaryTraces) {
  auto trace_once = [] {
    Cluster cl(tiny_cfg(true));
    run_quickstart(cl);
    return encode_binary(cl.tracer().snapshot(), cl.tracer().dropped());
  };
  const auto a = trace_once();
  const auto b = trace_once();
  ASSERT_GT(a.size(), 32u);
  EXPECT_EQ(a, b);
}

// The fig13a-style workload: LU factorization, traced, across posted-verb
// pipeline depths and under chaos fault injection. The bar is byte
// identity of the whole binary trace across reruns.
std::vector<std::uint8_t> traced_lu(int pipeline, bool chaos) {
  ClusterConfig c;
  c.nodes = 4;
  c.threads_per_node = 2;
  c.global_mem_bytes = 2048 * kPageSize;
  c.cache.cache_lines = 8192;
  c.cache.write_buffer_pages = 1024;
  c.net.pipeline = pipeline;
  c.trace.enabled = true;
  if (chaos) {
    c.faults.enabled = true;
    c.faults.seed = 1234;
    c.faults.rdma_fail_prob = 0.02;
    c.faults.jitter_prob = 0.1;
    c.faults.jitter_max = 500;
  }
  Cluster cl(c);
  argoapps::LuParams p;
  p.n = 64;
  p.block = 16;
  argoapps::lu_run_argo(cl, p);
  return encode_binary(cl.tracer().snapshot(), cl.tracer().dropped());
}

TEST(ClusterTrace, LuTraceDeterministicAcrossPipelineDepths) {
  for (const int pipeline : {1, 16}) {
    const auto a = traced_lu(pipeline, /*chaos=*/false);
    const auto b = traced_lu(pipeline, /*chaos=*/false);
    ASSERT_GT(a.size(), 32u) << "pipeline " << pipeline;
    EXPECT_EQ(a, b) << "pipeline " << pipeline;
  }
  // Depth changes scheduling, so the traces must actually differ.
  EXPECT_NE(traced_lu(1, false), traced_lu(16, false));
}

TEST(ClusterTrace, LuTraceDeterministicUnderChaos) {
  const auto a = traced_lu(/*pipeline=*/4, /*chaos=*/true);
  const auto b = traced_lu(/*pipeline=*/4, /*chaos=*/true);
  ASSERT_GT(a.size(), 32u);
  EXPECT_EQ(a, b);
}

// The host fast paths (word-wise diff scan, buffer pooling, scheduler
// fast-forward, stack recycling) must be invisible in simulated behaviour.
// ARGO_SLOW_PATHS forces the seed's byte-scan/allocate/swapcontext paths;
// the whole binary trace — every event, state and virtual timestamp —
// must come out byte-identical either way, at pipeline depths 1 and 16
// and under chaos fault injection.
TEST(ClusterTrace, LuTraceIdenticalWithSlowPathsForced) {
  struct SlowGuard {
    bool prev = argosim::slow_paths();
    ~SlowGuard() { argosim::set_slow_paths(prev); }
  } guard;
  for (const int pipeline : {1, 16}) {
    argosim::set_slow_paths(false);
    const auto fast = traced_lu(pipeline, /*chaos=*/false);
    argosim::set_slow_paths(true);
    const auto slow = traced_lu(pipeline, /*chaos=*/false);
    ASSERT_GT(fast.size(), 32u) << "pipeline " << pipeline;
    EXPECT_EQ(fast, slow) << "pipeline " << pipeline;
  }
  argosim::set_slow_paths(false);
  const auto fast = traced_lu(/*pipeline=*/4, /*chaos=*/true);
  argosim::set_slow_paths(true);
  const auto slow = traced_lu(/*pipeline=*/4, /*chaos=*/true);
  EXPECT_EQ(fast, slow);
}

// ---------------------------------------------------------------------------
// Sinks and the Chrome exporter
// ---------------------------------------------------------------------------

TEST(TraceSinks, CallbackAndBinaryFileSinks) {
  std::vector<TraceEvent> seen;
  std::uint64_t seen_dropped = ~0ull;
  const std::string path = ::testing::TempDir() + "argo_trace_test.bin";
  {
    Cluster cl(tiny_cfg(true));
    cl.trace_sink(argoobs::make_binary_trace_sink(path));
    cl.trace_sink(argoobs::make_callback_trace_sink(
        [&](const std::vector<TraceEvent>& evs, std::uint64_t dropped) {
          seen = evs;
          seen_dropped = dropped;
        }));
    run_quickstart(cl);
    cl.flush_trace();
    EXPECT_EQ(seen.size(), cl.tracer().snapshot().size());
    EXPECT_EQ(seen_dropped, cl.tracer().dropped());
  }  // ~Cluster flushes again; the file must still round-trip

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<std::uint8_t> bytes;
  int ch;
  while ((ch = std::fgetc(f)) != EOF)
    bytes.push_back(static_cast<std::uint8_t>(ch));
  std::fclose(f);
  std::remove(path.c_str());

  const auto decoded = decode_binary(bytes);
  ASSERT_EQ(decoded.size(), seen.size());
  for (std::size_t i = 0; i < decoded.size(); ++i)
    EXPECT_EQ(decoded[i].seq, seen[i].seq);
}

TEST(TraceSinks, ChromeJsonIsWellFormed) {
  Cluster cl(tiny_cfg(true));
  run_quickstart(cl);
  const std::string json = encode_chrome_json(cl.tracer().snapshot());
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // Balanced braces/brackets (no string in the output contains either).
  int depth = 0;
  for (char c : json) {
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // Fences appear as B/E pairs, instants carry the kind name.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("sd_fence"), std::string::npos);
}

}  // namespace
