// Unit tests for the global address space (src/mem).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mem/gaddr.hpp"
#include "mem/global_memory.hpp"

namespace argomem {
namespace {

TEST(GAddr, PageArithmetic) {
  EXPECT_EQ(page_of(0), 0u);
  EXPECT_EQ(page_of(4095), 0u);
  EXPECT_EQ(page_of(4096), 1u);
  EXPECT_EQ(page_offset(4097), 1u);
}

TEST(Gptr, PointerArithmeticAndCast) {
  gptr<double> p(800);
  EXPECT_EQ((p + 3).raw(), 824u);
  EXPECT_EQ((p - 1).raw(), 792u);
  EXPECT_EQ(p.at(2).raw(), 816u);
  EXPECT_EQ(p.cast<std::uint32_t>().raw(), 800u);
  gptr<int> n;
  EXPECT_TRUE(n.null());
  EXPECT_FALSE(n);
  EXPECT_TRUE(p);
  gptr<double> q(800);
  EXPECT_EQ(p, q);
}

TEST(GlobalMemory, BlockedMappingSplitsAddressRange) {
  GlobalMemory g(4, 64 * kPageSize, HomeMapping::Blocked);
  EXPECT_EQ(g.pages(), 64u);
  EXPECT_EQ(g.pages_per_node(), 16u);
  EXPECT_EQ(g.home_of_page(0), 0);
  EXPECT_EQ(g.home_of_page(15), 0);
  EXPECT_EQ(g.home_of_page(16), 1);
  EXPECT_EQ(g.home_of_page(63), 3);
}

TEST(GlobalMemory, InterleavedMappingRoundRobins) {
  GlobalMemory g(4, 64 * kPageSize, HomeMapping::Interleaved);
  EXPECT_EQ(g.home_of_page(0), 0);
  EXPECT_EQ(g.home_of_page(1), 1);
  EXPECT_EQ(g.home_of_page(5), 1);
  EXPECT_EQ(g.home_of_page(7), 3);
}

TEST(GlobalMemory, SizeRoundsUpToEqualNodeShares) {
  GlobalMemory g(3, 10 * kPageSize);
  EXPECT_EQ(g.pages(), 12u);  // ceil(10/3)=4 pages per node
  EXPECT_EQ(g.pages_per_node(), 4u);
}

TEST(GlobalMemory, AllocatorAlignmentRules) {
  GlobalMemory g(2, 64 * kPageSize);
  GAddr a = g.alloc_bytes(10, 64);
  GAddr b = g.alloc_bytes(10, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);

  // Small typed allocations pack; page-or-larger arrays are page-aligned.
  auto small = g.alloc<double>(4);
  EXPECT_EQ(small.raw() % 8, 0u);
  auto big = g.alloc<double>(1024);  // 8 KiB
  EXPECT_EQ(big.raw() % kPageSize, 0u);
}

TEST(GlobalMemory, AllocatorExhaustionThrows) {
  GlobalMemory g(2, 4 * kPageSize);
  EXPECT_NO_THROW(g.alloc_bytes(3 * kPageSize, 8));
  try {
    g.alloc_bytes(2 * kPageSize, 8);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // The message names the requested and remaining byte counts.
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(2 * kPageSize)), std::string::npos);
    EXPECT_NE(what.find(std::to_string(1 * kPageSize)), std::string::npos);
  }
}

TEST(GlobalMemory, HomePtrReadsAndWrites) {
  GlobalMemory g(2, 16 * kPageSize);
  auto p = g.alloc<std::uint64_t>(8);
  *g.home_ptr(p + 3) = 12345;
  EXPECT_EQ(*g.home_ptr(p + 3), 12345u);
  EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(g.home_ptr(p.raw() + 24)),
            12345u);
}

}  // namespace
}  // namespace argomem
