// Application correctness tests: every backend of every benchmark must
// reproduce the sequential reference (bitwise for deterministic kernels,
// tight tolerance where parallel reduction order differs).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/blackscholes.hpp"
#include "apps/cg.hpp"
#include "apps/ep.hpp"
#include "apps/lu.hpp"
#include "apps/mm.hpp"
#include "apps/nbody.hpp"
#include "apps/pqueue.hpp"
#include "sim/random.hpp"
#include "sync/qd_lock.hpp"

namespace argoapps {
namespace {

using argo::Cluster;
using argo::ClusterConfig;
using argo::Mode;
using argomem::kPageSize;

ClusterConfig app_cfg(int nodes, int tpn, std::size_t mem_pages,
                      Mode mode = Mode::PS3) {
  ClusterConfig c;
  c.nodes = nodes;
  c.threads_per_node = tpn;
  c.global_mem_bytes = mem_pages * kPageSize;
  c.cache.classification = mode;
  c.cache.cache_lines = 8192;
  c.cache.write_buffer_pages = 1024;
  return c;
}

double rel_err(double a, double b) {
  return std::fabs(a - b) / std::max(1.0, std::fabs(b));
}

// ---------------------------------------------------------------------------
// Blackscholes
// ---------------------------------------------------------------------------

TEST(Blackscholes, PriceSanity) {
  // At-the-money call with typical parameters: price must be positive and
  // below spot; put-call parity must hold.
  const double c = bs_price(100, 100, 0.05, 0.2, 1.0, false);
  const double p = bs_price(100, 100, 0.05, 0.2, 1.0, true);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 100.0);
  const double parity = c - p - (100 - 100 * std::exp(-0.05));
  EXPECT_NEAR(parity, 0.0, 1e-9);
}

TEST(Blackscholes, ArgoMatchesReference) {
  BsParams p;
  p.options = 4096;
  p.iterations = 2;
  const double ref = bs_reference(p);
  for (Mode m : {Mode::S, Mode::PSNaive, Mode::PS, Mode::PS3}) {
    Cluster cl(app_cfg(4, 2, 256, m));
    const auto r = bs_run_argo(cl, p);
    EXPECT_LT(rel_err(r.checksum, ref), 1e-12) << to_string(m);
    EXPECT_GT(r.elapsed, 0u);
  }
}

TEST(Blackscholes, MpiMatchesReference) {
  BsParams p;
  p.options = 4096;
  p.iterations = 2;
  const double ref = bs_reference(p);
  argompi::MpiEnv env(4, 2, argonet::NetConfig{});
  const auto r = bs_run_mpi(env, p);
  EXPECT_LT(rel_err(r.checksum, ref), 1e-12);
}

TEST(Blackscholes, SingleNodeEqualsSharedMemory) {
  BsParams p;
  p.options = 2048;
  p.iterations = 1;
  Cluster cl(app_cfg(1, 4, 256));
  const auto r = bs_run_argo(cl, p);
  EXPECT_LT(rel_err(r.checksum, bs_reference(p)), 1e-12);
  // One node: no network traffic at all.
  EXPECT_EQ(cl.net_stats().rdma_reads, 0u);
}

// ---------------------------------------------------------------------------
// N-body
// ---------------------------------------------------------------------------

TEST(Nbody, ArgoMatchesReferenceBitwise) {
  NbodyParams p;
  p.bodies = 256;
  p.steps = 3;
  const double ref = nbody_reference(p);
  for (Mode m : {Mode::S, Mode::PS3}) {
    Cluster cl(app_cfg(4, 2, 128, m));
    const auto r = nbody_run_argo(cl, p);
    EXPECT_LT(rel_err(r.checksum, ref), 1e-12) << to_string(m);
  }
}

TEST(Nbody, MpiMatchesReference) {
  NbodyParams p;
  p.bodies = 256;
  p.steps = 3;
  argompi::MpiEnv env(4, 2, argonet::NetConfig{});
  const auto r = nbody_run_mpi(env, p);
  EXPECT_LT(rel_err(r.checksum, nbody_reference(p)), 1e-12);
}

TEST(Nbody, OddStepCountUsesTheRightBuffer) {
  NbodyParams p;
  p.bodies = 64;
  p.steps = 5;  // odd: final positions in pos[1]
  Cluster cl(app_cfg(2, 1, 64));
  const auto r = nbody_run_argo(cl, p);
  EXPECT_LT(rel_err(r.checksum, nbody_reference(p)), 1e-12);
}

// ---------------------------------------------------------------------------
// MM
// ---------------------------------------------------------------------------

TEST(Mm, ArgoMatchesReference) {
  MmParams p;
  p.n = 96;
  const double ref = mm_reference(p);
  for (Mode m : {Mode::S, Mode::PSNaive, Mode::PS3}) {
    Cluster cl(app_cfg(4, 2, 128, m));
    const auto r = mm_run_argo(cl, p);
    // Partial sums are grouped per thread: tolerance for reassociation.
    EXPECT_LT(rel_err(r.checksum, ref), 1e-12) << to_string(m);
  }
}

TEST(Mm, MpiMatchesReference) {
  MmParams p;
  p.n = 96;
  argompi::MpiEnv env(4, 2, argonet::NetConfig{});
  const auto r = mm_run_mpi(env, p);
  EXPECT_LT(rel_err(r.checksum, mm_reference(p)), 1e-12);
}

TEST(Mm, ReadOnlyBNeverInvalidatesUnderPS3) {
  MmParams p;
  p.n = 128;
  Cluster cl(app_cfg(4, 1, 128, Mode::PS3));
  (void)mm_run_argo(cl, p);
  // B is shared read-only (S,NW): no page of it may be written back, and
  // invalidations should be limited to written data (C and the partials).
  const auto st = cl.coherence_stats();
  EXPECT_GT(st.read_misses, 0u);
}

// ---------------------------------------------------------------------------
// EP
// ---------------------------------------------------------------------------

TEST(Ep, ChunksAreThreadCountAgnostic) {
  EpParams p;
  p.log2_pairs = 14;
  p.chunks = 64;
  const EpTally ref = ep_reference(p);
  EXPECT_GT(ref.accepted, 0u);
  // Two different cluster shapes must produce identical tallies.
  Cluster a(app_cfg(2, 2, 64));
  Cluster b(app_cfg(4, 4, 64));
  const auto ra = ep_run_argo(a, p);
  const auto rb = ep_run_argo(b, p);
  // Gaussian sums are reassociated across chunks; counts must be exact.
  EXPECT_LT(rel_err(ra.tally.sx, ref.sx), 1e-12);
  EXPECT_LT(rel_err(rb.tally.sx, ref.sx), 1e-12);
  EXPECT_EQ(ra.tally.accepted, ref.accepted);
  EXPECT_EQ(rb.tally.accepted, ref.accepted);
  EXPECT_EQ(ra.tally.q, ref.q);
  EXPECT_EQ(rb.tally.q, ref.q);
}

TEST(Ep, UpcMatchesReference) {
  EpParams p;
  p.log2_pairs = 14;
  p.chunks = 64;
  const EpTally ref = ep_reference(p);
  Cluster cl(app_cfg(4, 2, 64));
  const auto r = ep_run_upc(cl, p);
  EXPECT_LT(rel_err(r.tally.sx, ref.sx), 1e-12);
  EXPECT_LT(rel_err(r.tally.sy, ref.sy), 1e-12);
  EXPECT_EQ(r.tally.q, ref.q);
}

// ---------------------------------------------------------------------------
// CG
// ---------------------------------------------------------------------------

TEST(Cg, ReferenceConverges) {
  CgParams p;
  p.n = 1024;
  p.iterations = 16;
  const auto ref = cg_reference(p);
  EXPECT_LT(ref.final_rho, 1.0);  // residual shrinks from n = 1024
  EXPECT_GT(ref.x_checksum, 0.0);
}

TEST(Cg, ArgoMatchesReference) {
  CgParams p;
  p.n = 1024;
  p.iterations = 8;
  const auto ref = cg_reference(p);
  for (Mode m : {Mode::S, Mode::PS3}) {
    Cluster cl(app_cfg(4, 2, 128, m));
    const auto r = cg_run_argo(cl, p);
    EXPECT_LT(rel_err(r.final_rho, ref.final_rho), 1e-9) << to_string(m);
    EXPECT_LT(rel_err(r.x_checksum, ref.x_checksum), 1e-9) << to_string(m);
  }
}

TEST(Cg, UpcMatchesReference) {
  CgParams p;
  p.n = 1024;
  p.iterations = 8;
  const auto ref = cg_reference(p);
  Cluster cl(app_cfg(4, 2, 128));
  const auto r = cg_run_upc(cl, p);
  EXPECT_LT(rel_err(r.final_rho, ref.final_rho), 1e-9);
  EXPECT_LT(rel_err(r.x_checksum, ref.x_checksum), 1e-9);
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

TEST(Lu, BlockedLayoutIndexing) {
  LuParams p;
  p.n = 64;
  p.block = 16;
  // Distinct (i,j) map to distinct indices inside the right block.
  EXPECT_EQ(lu_index(p, 0, 0), 0u);
  EXPECT_EQ(lu_index(p, 0, 16), 16u * 16u);       // block (0,1)
  EXPECT_EQ(lu_index(p, 16, 0), 4u * 16u * 16u);  // block (1,0)
  EXPECT_EQ(lu_index(p, 1, 1), 17u);
}

TEST(Lu, ArgoMatchesReference) {
  LuParams p;
  p.n = 128;
  p.block = 16;
  const double ref = lu_reference(p);
  for (Mode m : {Mode::S, Mode::PS3}) {
    Cluster cl(app_cfg(4, 2, 128, m));
    const auto r = lu_run_argo(cl, p);
    // The factors are identical; the checksum is reassociated per owner.
    EXPECT_LT(rel_err(r.checksum, ref), 1e-12) << to_string(m);
  }
}

TEST(Lu, BlockedFactorizationMatchesUnblockedDoolittle) {
  // Independent check of the blocked algorithm itself: factor the same
  // matrix with plain (unblocked) Doolittle elimination; the blocked code
  // must produce the same factors up to floating-point reassociation.
  LuParams p;
  p.n = 64;
  p.block = 16;
  const std::vector<double> a = lu_make_input(p);
  const std::size_t n = p.n;
  std::vector<double> d(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d[i * n + j] = a[lu_index(p, i, j)];
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = k + 1; i < n; ++i) {
      d[i * n + k] /= d[k * n + k];
      for (std::size_t j = k + 1; j < n; ++j)
        d[i * n + j] -= d[i * n + k] * d[k * n + j];
    }
  double unblocked_sum = 0;
  for (double v : d) unblocked_sum += v;
  EXPECT_LT(rel_err(unblocked_sum, lu_reference(p)), 1e-9);
}

// ---------------------------------------------------------------------------
// Priority queue
// ---------------------------------------------------------------------------

TEST(PairingHeapLocal, SortsAndTracksSize) {
  PairingHeap h;
  argosim::Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(rng.next_u64());
    h.insert(keys.back());
  }
  EXPECT_EQ(h.size(), 500u);
  std::sort(keys.begin(), keys.end());
  for (int i = 0; i < 500; ++i) {
    auto m = h.extract_min();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, keys[static_cast<std::size_t>(i)]);
  }
  EXPECT_FALSE(h.extract_min().has_value());
  EXPECT_EQ(h.size(), 0u);
}

TEST(PairingHeapLocal, VisitCountsAreSane) {
  PairingHeap h;
  for (int i = 0; i < 100; ++i) {
    h.insert(static_cast<std::uint64_t>(100 - i));
    EXPECT_LE(h.last_visits(), 2);
  }
  (void)h.extract_min();
  EXPECT_GT(h.last_visits(), 1);  // two-pass merging visits many children
}

TEST(DsmPairingHeapTest, MatchesLocalHeapUnderHqdl) {
  argo::ClusterConfig cfg = app_cfg(3, 2, 256);
  Cluster cl(cfg);
  DsmPairingHeap heap(cl, 4096);
  argosync::HqdLock lock(cl);
  // Deterministic op sequence executed via delegation; compare against a
  // local heap replaying the global execution order.
  std::vector<std::pair<bool, std::uint64_t>> log;  // (was_insert, value)
  cl.run([&](argo::Thread& t) {
    argosim::Rng rng(static_cast<std::uint64_t>(t.gid()) + 1);
    for (int i = 0; i < 60; ++i) {
      const bool ins = rng.next_bool(0.6);
      const std::uint64_t key = rng.next_u64() >> 40;
      lock.execute(t,
                   [&, ins, key](argo::Thread& exec) {
                     if (ins) {
                       heap.insert(exec, key);
                       log.emplace_back(true, key);
                     } else {
                       auto m = heap.extract_min(exec);
                       log.emplace_back(false, m.value_or(~std::uint64_t{0}));
                     }
                   },
                   true);
      t.compute(300);
    }
  });
  // Replay on a plain heap: results must match op for op.
  PairingHeap ref;
  for (const auto& [ins, val] : log) {
    if (ins) {
      ref.insert(val);
    } else {
      auto m = ref.extract_min();
      EXPECT_EQ(val, m.value_or(~std::uint64_t{0}));
    }
  }
}

TEST(PqBench, LocalHarnessRunsAndCounts) {
  argonet::NodeTopology topo;
  argosync::QdLock qd(&topo);
  PqParams p;
  p.duration = 200'000;
  p.prefill = 256;
  const auto r = pq_bench_local(qd, topo, 4, p);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.ops_per_us(), 0.0);
}

TEST(PqBench, DsmHarnessRunsBothLocks) {
  for (auto kind : {DsmLockKind::Hqdl, DsmLockKind::Cohort}) {
    Cluster cl(app_cfg(2, 3, 512));
    PqParams p;
    p.duration = 150'000;
    p.prefill = 128;
    const auto r = pq_bench_dsm(cl, kind, p);
    EXPECT_GT(r.ops, 0u);
  }
}

}  // namespace
}  // namespace argoapps
