// Unit tests for the Pyxis passive classification directory (src/dir).
#include <gtest/gtest.h>

#include "dir/pyxis.hpp"
#include "core/policy.hpp"
#include "sim/engine.hpp"

namespace argodir {
namespace {

using argocore::classify;
using argocore::Mode;
using argocore::PageState;
using argocore::SdAction;
using argocore::sd_action;
using argocore::si_required;
using argomem::GlobalMemory;
using argomem::kPageSize;
using argonet::Interconnect;
using argonet::NetConfig;
using argosim::Engine;

TEST(DirWord, BitEncodingAndDecoding) {
  DirWord w{DirWord::reader_bit(0) | DirWord::reader_bit(5) |
            DirWord::writer_bit(5)};
  EXPECT_TRUE(w.is_reader(0));
  EXPECT_TRUE(w.is_reader(5));
  EXPECT_FALSE(w.is_reader(1));
  EXPECT_TRUE(w.is_writer(5));
  EXPECT_FALSE(w.is_writer(0));
  EXPECT_EQ(w.reader_count(), 2);
  EXPECT_EQ(w.writer_count(), 1);
  EXPECT_EQ(w.single_writer(), 5);
  EXPECT_EQ(w.accessors(), 0b100001u);
}

TEST(DirWord, PrivateClassification) {
  DirWord empty{0};
  EXPECT_TRUE(empty.private_to(3));  // untouched: trivially private
  DirWord mine{DirWord::reader_bit(3) | DirWord::writer_bit(3)};
  EXPECT_TRUE(mine.private_to(3));
  EXPECT_FALSE(mine.private_to(2));
  DirWord shared{DirWord::reader_bit(3) | DirWord::reader_bit(4)};
  EXPECT_FALSE(shared.private_to(3));
}

TEST(Policy, ClassifyMatchesPaperStates) {
  const int me = 0;
  DirWord p{DirWord::reader_bit(0) | DirWord::writer_bit(0)};
  EXPECT_EQ(classify(p, me), PageState::Private);
  DirWord nw{DirWord::reader_bit(0) | DirWord::reader_bit(1)};
  EXPECT_EQ(classify(nw, me), PageState::SharedNW);
  DirWord sw{nw.raw | DirWord::writer_bit(1)};
  EXPECT_EQ(classify(sw, me), PageState::SharedSW);
  DirWord mw{sw.raw | DirWord::writer_bit(0)};
  EXPECT_EQ(classify(mw, me), PageState::SharedMW);
}

// Table 1 of the paper, row by row.
TEST(Policy, Table1SelfInvalidationMatrix) {
  const int me = 0;
  DirWord P{DirWord::reader_bit(0) | DirWord::writer_bit(0)};
  DirWord S_NW{DirWord::reader_bit(0) | DirWord::reader_bit(1)};
  DirWord S_SW_me{S_NW.raw | DirWord::writer_bit(0)};
  DirWord S_SW_other{S_NW.raw | DirWord::writer_bit(1)};
  DirWord S_MW{S_NW.raw | DirWord::writer_bit(0) | DirWord::writer_bit(1)};

  // S classification: everything self-invalidates.
  for (auto w : {P, S_NW, S_SW_me, S_SW_other, S_MW})
    EXPECT_TRUE(si_required(Mode::S, w, me));

  // P/S: only private pages are exempt.
  EXPECT_FALSE(si_required(Mode::PS, P, me));
  for (auto w : {S_NW, S_SW_me, S_SW_other, S_MW})
    EXPECT_TRUE(si_required(Mode::PS, w, me));

  // P/S3: P, S.NW, and S.SW-where-I-am-the-writer are exempt.
  EXPECT_FALSE(si_required(Mode::PS3, P, me));
  EXPECT_FALSE(si_required(Mode::PS3, S_NW, me));
  EXPECT_FALSE(si_required(Mode::PS3, S_SW_me, me));
  EXPECT_TRUE(si_required(Mode::PS3, S_SW_other, me));
  EXPECT_TRUE(si_required(Mode::PS3, S_MW, me));
}

TEST(Policy, SdActionOnlyCheckpointsNaivePrivate) {
  const int me = 0;
  DirWord P{DirWord::reader_bit(0) | DirWord::writer_bit(0)};
  DirWord S_MW{P.raw | DirWord::reader_bit(1) | DirWord::writer_bit(1)};
  EXPECT_EQ(sd_action(Mode::PSNaive, P, me), SdAction::Checkpoint);
  EXPECT_EQ(sd_action(Mode::PSNaive, S_MW, me), SdAction::WriteBack);
  EXPECT_EQ(sd_action(Mode::PS, P, me), SdAction::WriteBack);
  EXPECT_EQ(sd_action(Mode::PS3, P, me), SdAction::WriteBack);
  EXPECT_EQ(sd_action(Mode::S, P, me), SdAction::WriteBack);
}

struct DirFixture {
  Engine eng;
  GlobalMemory gmem{4, 64 * kPageSize};
  Interconnect net{4, NetConfig{}};
  PyxisDirectory dir{gmem, net};
};

TEST(PyxisDirectory, FetchOrRegistersAndReturnsPrevious) {
  DirFixture f;
  f.eng.spawn("t", [&] {
    DirWord prev = f.dir.fetch_or(1, 7, DirWord::reader_bit(1));
    EXPECT_EQ(prev.raw, 0u);
    DirWord prev2 =
        f.dir.fetch_or(2, 7, DirWord::reader_bit(2) | DirWord::writer_bit(2));
    EXPECT_TRUE(prev2.is_reader(1));
    EXPECT_FALSE(prev2.is_reader(2));
    DirWord now = f.dir.read(0, 7);
    EXPECT_TRUE(now.is_reader(1));
    EXPECT_TRUE(now.is_reader(2));
    EXPECT_TRUE(now.is_writer(2));
  });
  f.eng.run();
  // Registration is charged to the requesting node as remote atomics
  // (page 7 is homed on node 0 in the blocked mapping).
  EXPECT_EQ(f.net.stats(1).rdma_atomics, 1u);
  EXPECT_EQ(f.net.stats(2).rdma_atomics, 1u);
}

TEST(PyxisDirectory, DirectoryCachesMergeMonotonically) {
  DirFixture f;
  f.eng.spawn("t", [&] {
    EXPECT_EQ(f.dir.cache_get(1, 3), 0u);
    f.dir.cache_merge_local(1, 3, DirWord::reader_bit(1));
    f.dir.cache_merge_local(1, 3, DirWord::reader_bit(0));
    EXPECT_EQ(f.dir.cache_get(1, 3),
              DirWord::reader_bit(0) | DirWord::reader_bit(1));
    // Remote notification from node 2 into node 1's cache.
    f.dir.cache_merge_remote(2, 1, 3, DirWord::writer_bit(2));
    DirWord w{f.dir.cache_get(1, 3)};
    EXPECT_TRUE(w.is_reader(0));
    EXPECT_TRUE(w.is_reader(1));
    EXPECT_TRUE(w.is_writer(2));
  });
  f.eng.run();
  EXPECT_EQ(f.dir.notifications(1), 1u);
  EXPECT_EQ(f.net.stats(2).rdma_atomics, 1u);  // notification charged to 2
}

TEST(PyxisDirectory, ResetClearsEverything) {
  DirFixture f;
  f.eng.spawn("t", [&] {
    f.dir.fetch_or(1, 5, DirWord::reader_bit(1));
    f.dir.cache_merge_local(1, 5, DirWord::reader_bit(1));
    f.dir.reset_all();
    EXPECT_EQ(f.dir.read(1, 5).raw, 0u);
    EXPECT_EQ(f.dir.cache_get(1, 5), 0u);
  });
  f.eng.run();
}

}  // namespace
}  // namespace argodir
