// Unit tests for the Pyxis passive classification directory (src/dir),
// including the multi-word (> 32 nodes) entry encoding and the randomized
// property suite comparing it against a scalar reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "dir/pyxis.hpp"
#include "core/policy.hpp"
#include "sim/engine.hpp"

namespace argodir {
namespace {

using argocore::classify;
using argocore::Mode;
using argocore::PageState;
using argocore::SdAction;
using argocore::sd_action;
using argocore::si_required;
using argomem::GlobalMemory;
using argomem::kPageSize;
using argonet::Interconnect;
using argonet::NetConfig;
using argosim::Engine;

TEST(DirEntry, BitEncodingAndDecoding) {
  DirEntry w = DirEntry::reader(0).add_reader(5).add_writer(5);
  EXPECT_TRUE(w.is_reader(0));
  EXPECT_TRUE(w.is_reader(5));
  EXPECT_FALSE(w.is_reader(1));
  EXPECT_TRUE(w.is_writer(5));
  EXPECT_FALSE(w.is_writer(0));
  EXPECT_EQ(w.reader_count(), 2);
  EXPECT_EQ(w.writer_count(), 1);
  EXPECT_EQ(w.single_writer(), 5);
  EXPECT_EQ(w.accessors(0), 0b100001u);
}

TEST(DirEntry, PrivateClassification) {
  DirEntry empty;
  EXPECT_TRUE(empty.private_to(3));  // untouched: trivially private
  EXPECT_FALSE(empty.self_only(3));  // ...but not yet its accessor
  DirEntry mine = DirEntry::accessor(3);
  EXPECT_TRUE(mine.private_to(3));
  EXPECT_TRUE(mine.self_only(3));
  EXPECT_FALSE(mine.private_to(2));
  DirEntry shared = DirEntry::reader(3).add_reader(4);
  EXPECT_FALSE(shared.private_to(3));
  EXPECT_FALSE(shared.self_only(3));
}

TEST(DirEntry, MultiWordEncodingPastNode31) {
  // Nodes past 31 land in higher words; cross-word queries must see them.
  DirEntry w = DirEntry::reader(1).add_reader(33).add_writer(90);
  EXPECT_EQ(DirEntry::word_of(33), 1);
  EXPECT_EQ(DirEntry::word_of(90), 2);
  EXPECT_TRUE(w.is_reader(33));
  EXPECT_FALSE(w.is_reader(32));
  EXPECT_TRUE(w.is_writer(90));
  EXPECT_EQ(w.reader_count(), 2);
  EXPECT_EQ(w.writer_count(), 1);
  EXPECT_EQ(w.single_writer(), 90);
  EXPECT_FALSE(w.private_to(1));

  // Collect readers across words, in ascending order.
  std::vector<int> readers;
  w.for_each_reader([&](int n) { readers.push_back(n); });
  EXPECT_EQ(readers, (std::vector<int>{1, 33}));
}

TEST(DirEntry, SoleWriterChecksEveryWord) {
  // The single-word idiom `writers() == 1u << node` is blind to writers in
  // other words — the bug the satellite audit targets. sole_writer must
  // reject a second writer wherever it lives.
  DirEntry only_me = DirEntry::reader(5).add_writer(5);
  EXPECT_TRUE(only_me.sole_writer(5));
  DirEntry far_writer = DirEntry::reader(5).add_writer(5).add_writer(100);
  EXPECT_FALSE(far_writer.sole_writer(5));
  EXPECT_EQ(far_writer.writer_count(), 2);
  // And the high-word node's own view.
  DirEntry high = DirEntry::accessor(100);
  EXPECT_TRUE(high.sole_writer(100));
  EXPECT_TRUE(high.self_only(100));
  EXPECT_FALSE(high.self_only(5));
  EXPECT_EQ(high.single_accessor(), 100);
}

TEST(Policy, ClassifyMatchesPaperStates) {
  const int me = 0;
  DirEntry p = DirEntry::accessor(0);
  EXPECT_EQ(classify(p, me), PageState::Private);
  DirEntry nw = DirEntry::reader(0).add_reader(1);
  EXPECT_EQ(classify(nw, me), PageState::SharedNW);
  DirEntry sw = nw | DirEntry::writer(1);
  EXPECT_EQ(classify(sw, me), PageState::SharedSW);
  DirEntry mw = sw | DirEntry::writer(0);
  EXPECT_EQ(classify(mw, me), PageState::SharedMW);
}

TEST(Policy, ClassifySpansWords) {
  // The same states with the peer past node 31: classification must be
  // identical to the low-node layout.
  const int me = 0, peer = 77;
  DirEntry nw = DirEntry::reader(me).add_reader(peer);
  EXPECT_EQ(classify(nw, me), PageState::SharedNW);
  EXPECT_EQ(classify(nw | DirEntry::writer(peer), me), PageState::SharedSW);
  EXPECT_EQ(classify(nw | DirEntry::writer(peer) | DirEntry::writer(me), me),
            PageState::SharedMW);
  EXPECT_EQ(classify(DirEntry::accessor(peer), peer), PageState::Private);
}

// Table 1 of the paper, row by row.
TEST(Policy, Table1SelfInvalidationMatrix) {
  const int me = 0;
  DirEntry P = DirEntry::accessor(0);
  DirEntry S_NW = DirEntry::reader(0).add_reader(1);
  DirEntry S_SW_me = S_NW | DirEntry::writer(0);
  DirEntry S_SW_other = S_NW | DirEntry::writer(1);
  DirEntry S_MW = S_NW | DirEntry::writer(0) | DirEntry::writer(1);

  // S classification: everything self-invalidates.
  for (const auto& w : {P, S_NW, S_SW_me, S_SW_other, S_MW})
    EXPECT_TRUE(si_required(Mode::S, w, me));

  // P/S: only private pages are exempt.
  EXPECT_FALSE(si_required(Mode::PS, P, me));
  for (const auto& w : {S_NW, S_SW_me, S_SW_other, S_MW})
    EXPECT_TRUE(si_required(Mode::PS, w, me));

  // P/S3: P, S.NW, and S.SW-where-I-am-the-writer are exempt.
  EXPECT_FALSE(si_required(Mode::PS3, P, me));
  EXPECT_FALSE(si_required(Mode::PS3, S_NW, me));
  EXPECT_FALSE(si_required(Mode::PS3, S_SW_me, me));
  EXPECT_TRUE(si_required(Mode::PS3, S_SW_other, me));
  EXPECT_TRUE(si_required(Mode::PS3, S_MW, me));
}

TEST(Policy, SdActionOnlyCheckpointsNaivePrivate) {
  const int me = 0;
  DirEntry P = DirEntry::accessor(0);
  DirEntry S_MW = P | DirEntry::accessor(1);
  EXPECT_EQ(sd_action(Mode::PSNaive, P, me), SdAction::Checkpoint);
  EXPECT_EQ(sd_action(Mode::PSNaive, S_MW, me), SdAction::WriteBack);
  EXPECT_EQ(sd_action(Mode::PS, P, me), SdAction::WriteBack);
  EXPECT_EQ(sd_action(Mode::PS3, P, me), SdAction::WriteBack);
  EXPECT_EQ(sd_action(Mode::S, P, me), SdAction::WriteBack);
}

struct DirFixture {
  Engine eng;
  GlobalMemory gmem{4, 64 * kPageSize};
  Interconnect net{4, NetConfig{}};
  PyxisDirectory dir{gmem, net};
};

TEST(PyxisDirectory, FetchOrRegistersAndReturnsPrevious) {
  DirFixture f;
  f.eng.spawn("t", [&] {
    DirEntry prev = f.dir.fetch_or(1, 7, DirEntry::reader(1));
    EXPECT_FALSE(prev.any());
    DirEntry prev2 = f.dir.fetch_or(2, 7, DirEntry::accessor(2));
    EXPECT_TRUE(prev2.is_reader(1));
    EXPECT_FALSE(prev2.is_reader(2));
    DirEntry now = f.dir.read(0, 7);
    EXPECT_TRUE(now.is_reader(1));
    EXPECT_TRUE(now.is_reader(2));
    EXPECT_TRUE(now.is_writer(2));
  });
  f.eng.run();
  // Registration is charged to the requesting node as remote atomics
  // (page 7 is homed on node 0 in the blocked mapping).
  EXPECT_EQ(f.net.stats(1).rdma_atomics, 1u);
  EXPECT_EQ(f.net.stats(2).rdma_atomics, 1u);
}

TEST(PyxisDirectory, DirectoryCachesMergeMonotonically) {
  DirFixture f;
  f.eng.spawn("t", [&] {
    EXPECT_FALSE(f.dir.cache_get(1, 3).any());
    f.dir.cache_merge_local(1, 3, DirEntry::reader(1));
    f.dir.cache_merge_local(1, 3, DirEntry::reader(0));
    EXPECT_EQ(f.dir.cache_get(1, 3), DirEntry::reader(0).add_reader(1));
    // Remote notification from node 2 into node 1's cache.
    f.dir.cache_merge_remote(2, 1, 3, DirEntry::writer(2));
    DirEntry w = f.dir.cache_get(1, 3);
    EXPECT_TRUE(w.is_reader(0));
    EXPECT_TRUE(w.is_reader(1));
    EXPECT_TRUE(w.is_writer(2));
  });
  f.eng.run();
  EXPECT_EQ(f.dir.notifications(1), 1u);
  EXPECT_EQ(f.net.stats(2).rdma_atomics, 1u);  // notification charged to 2
}

TEST(PyxisDirectory, ResetClearsEverything) {
  DirFixture f;
  f.eng.spawn("t", [&] {
    f.dir.fetch_or(1, 5, DirEntry::reader(1));
    f.dir.cache_merge_local(1, 5, DirEntry::reader(1));
    f.dir.reset_all();
    EXPECT_FALSE(f.dir.read(1, 5).any());
    EXPECT_FALSE(f.dir.cache_get(1, 5).any());
  });
  f.eng.run();
}

TEST(PyxisDirectory, MultiWordFetchOrSpansTheEntry) {
  // 64 nodes: two-word entries registered with one extended atomic each.
  Engine eng;
  GlobalMemory gmem{64, 256 * kPageSize};
  Interconnect net{64, NetConfig{}};
  PyxisDirectory dir{gmem, net};
  ASSERT_EQ(dir.entry_words(), 2);
  eng.spawn("t", [&] {
    DirEntry prev = dir.fetch_or(40, 7, DirEntry::accessor(40));
    EXPECT_FALSE(prev.any());
    // The second registrant's snapshot covers both words at once.
    DirEntry prev2 = dir.fetch_or(3, 7, DirEntry::reader(3));
    EXPECT_TRUE(prev2.is_reader(40));
    EXPECT_TRUE(prev2.is_writer(40));
    EXPECT_TRUE(prev2.self_only(40));
    DirEntry now = dir.read(0, 7);
    EXPECT_TRUE(now.is_reader(3));
    EXPECT_TRUE(now.is_writer(40));
    EXPECT_EQ(now.accessor_count(), 2);
  });
  eng.run();
  // Still exactly one remote atomic per registration.
  EXPECT_EQ(net.stats(40).rdma_atomics, 1u);
  EXPECT_EQ(net.stats(3).rdma_atomics, 1u);
}

TEST(PyxisDirectory, PostedMultiWordRegistrationMatchesBlocking) {
  Engine eng;
  GlobalMemory gmem{33, 66 * kPageSize};
  Interconnect net{33, NetConfig{}};
  PyxisDirectory dir{gmem, net};
  ASSERT_EQ(dir.entry_words(), 2);
  eng.spawn("t", [&] {
    dir.fetch_or(32, 9, DirEntry::accessor(32));
    RegTicket t;
    EXPECT_FALSE(static_cast<bool>(t));
    dir.post_fetch_or(1, 9, DirEntry::reader(1), t);
    EXPECT_TRUE(static_cast<bool>(t));
    DirEntry prev = dir.wait_entry(t);
    EXPECT_FALSE(static_cast<bool>(t));
    EXPECT_TRUE(prev.self_only(32));
    EXPECT_TRUE(prev.is_writer(32));
    EXPECT_FALSE(prev.is_reader(1));
  });
  eng.run();
}

// ---------------------------------------------------------------------------
// Randomized property suite: the multi-word directory against a scalar
// per-node reference model, at N in {2, 32, 33, 64, 128} x 3 seeds.
// Classification, merge coalescing, and gen-slot invalidation must be
// identical to what the reference predicts.
// ---------------------------------------------------------------------------

struct RefModel {
  // Reference truth: per page, the set of readers and writers.
  std::vector<std::set<int>> readers, writers;
  explicit RefModel(std::uint64_t pages) : readers(pages), writers(pages) {}

  DirEntry entry(std::uint64_t page) const {
    DirEntry e;
    for (int r : readers[page]) e.add_reader(r);
    for (int w : writers[page]) e.add_writer(w);
    return e;
  }
};

PageState ref_classify(const RefModel& m, std::uint64_t page, int me) {
  std::set<int> acc = m.readers[page];
  acc.insert(m.writers[page].begin(), m.writers[page].end());
  acc.erase(me);
  if (acc.empty()) return PageState::Private;
  switch (m.writers[page].size()) {
    case 0:
      return PageState::SharedNW;
    case 1:
      return PageState::SharedSW;
    default:
      return PageState::SharedMW;
  }
}

void run_property_suite(int nodes, unsigned seed) {
  SCOPED_TRACE("nodes=" + std::to_string(nodes) +
               " seed=" + std::to_string(seed));
  const std::uint64_t pages = 16;
  Engine eng;
  GlobalMemory gmem{nodes, pages * kPageSize};
  Interconnect net{nodes, NetConfig{}};
  PyxisDirectory dir{gmem, net};
  ASSERT_EQ(dir.entry_words(), dir_words_for(nodes));

  RefModel ref(pages);
  std::vector<std::uint64_t> gens(static_cast<std::size_t>(nodes), 0);
  for (int n = 0; n < nodes; ++n) dir.set_gen_slot(n, &gens[n]);

  std::mt19937 rng(seed);
  eng.spawn("t", [&] {
    for (int step = 0; step < 400; ++step) {
      const int node = static_cast<int>(rng() % static_cast<unsigned>(nodes));
      const std::uint64_t page = rng() % pages;
      const bool write = (rng() & 3) == 0;

      // Registration: fetch_or must return exactly the reference's
      // pre-registration maps, whatever words they span.
      DirEntry bits = DirEntry::reader(node);
      if (write) bits.add_writer(node);
      const DirEntry prev = dir.fetch_or(node, page, bits);
      ASSERT_EQ(prev, ref.entry(page));

      ref.readers[page].insert(node);
      if (write) ref.writers[page].insert(node);
      const DirEntry updated = prev | bits;
      ASSERT_EQ(updated, ref.entry(page));
      dir.cache_merge_local(node, page, updated);

      // Classification parity, from the updated entry and the home copy.
      ASSERT_EQ(classify(updated, node), ref_classify(ref, page, node));
      ASSERT_EQ(dir.host_entry(page), ref.entry(page));
      ASSERT_EQ(updated.private_to(node),
                ref_classify(ref, page, node) == PageState::Private);
      ASSERT_EQ(updated.sole_writer(node),
                ref.writers[page].size() == 1 &&
                    ref.writers[page].count(node) == 1);

      // Merge coalescing: notify one random other node through the batch
      // path; its cache must afterwards contain the merged entry, and its
      // gen slot must have been bumped once per touched (nonzero) word.
      if (nodes > 1 && (rng() & 7) == 0) {
        int dst = static_cast<int>(rng() % static_cast<unsigned>(nodes));
        if (dst == node) dst = (dst + 1) % nodes;
        const DirEntry before = dir.cache_get(dst, page);
        const std::uint64_t gen_before = gens[static_cast<std::size_t>(dst)];
        const std::uint64_t notif_before = dir.notifications(dst);
        // Two entries for the same (dst, page): must coalesce into the
        // word-wise OR, transmitted once per touched word.
        std::vector<DirNotify> batch;
        batch.push_back(DirNotify{dst, page, updated});
        batch.push_back(DirNotify{dst, page, bits});
        dir.cache_merge_remote_batch(node, std::move(batch));
        ASSERT_EQ(dir.cache_get(dst, page), before | updated);
        int touched = 0;
        for (int i = 0; i < kMaxDirWords; ++i)
          if (updated.w[static_cast<std::size_t>(i)] != 0) ++touched;
        ASSERT_EQ(gens[static_cast<std::size_t>(dst)] - gen_before,
                  static_cast<std::uint64_t>(touched));
        ASSERT_EQ(dir.notifications(dst) - notif_before,
                  static_cast<std::uint64_t>(touched));
      }
    }
  });
  eng.run();
}

TEST(DirProperty, MultiWordMatchesScalarReference) {
  for (int nodes : {2, 32, 33, 64, 128})
    for (unsigned seed : {1u, 2u, 3u}) run_property_suite(nodes, seed);
}

}  // namespace
}  // namespace argodir
