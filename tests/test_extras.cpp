// Coverage for less-traveled configuration corners: interleaved home
// mapping, node-homed allocations, single-writer diff suppression
// interactions, and cluster-level determinism of statistics.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "sim/random.hpp"

namespace argo {
namespace {

using argomem::GlobalMemory;
using argomem::HomeMapping;
using argomem::kPageSize;

TEST(AllocOnNode, BlockedMappingHomesCorrectly) {
  GlobalMemory g(4, 64 * kPageSize, HomeMapping::Blocked);
  for (int n = 0; n < 4; ++n)
    for (int k = 0; k < 8; ++k) {
      auto a = g.alloc_on_node(n, 64);
      EXPECT_EQ(g.home_of(a), n) << "node " << n << " alloc " << k;
    }
}

TEST(AllocOnNode, InterleavedMappingHomesCorrectly) {
  GlobalMemory g(4, 64 * kPageSize, HomeMapping::Interleaved);
  for (int n = 0; n < 4; ++n)
    for (int k = 0; k < 8; ++k) {
      auto a = g.alloc_on_node(n, 1024, 64);
      EXPECT_EQ(g.home_of(a), n);
    }
}

TEST(AllocOnNode, GrowsDownwardAwayFromBumpAllocator) {
  GlobalMemory g(2, 64 * kPageSize);
  const auto low = g.alloc_bytes(kPageSize, 8);
  const auto high = g.alloc_on_node(0, 64);
  EXPECT_LT(low, high);
  EXPECT_GE(high, (g.pages_per_node() - 1) * kPageSize);
}

ClusterConfig interleaved_cfg(int nodes, int tpn) {
  ClusterConfig c;
  c.nodes = nodes;
  c.threads_per_node = tpn;
  c.global_mem_bytes = static_cast<std::size_t>(nodes) * 16 * kPageSize;
  c.mapping = HomeMapping::Interleaved;
  c.cache.pages_per_line = 4;  // lines now span home nodes
  c.cache.cache_lines = 32;
  return c;
}

TEST(InterleavedMapping, LineFetchSpansHomes) {
  // With page-interleaved homes, one 4-page line needs one RDMA read per
  // home segment; correctness must be unaffected.
  Cluster cl(interleaved_cfg(4, 1));
  auto arr = cl.alloc<std::uint64_t>(4096);  // 8 pages across 4 homes
  for (int i = 0; i < 4096; ++i)
    cl.host_ptr(arr)[i] = static_cast<std::uint64_t>(i * 31);
  cl.reset_classification();
  cl.run([&](Thread& t) {
    for (int i = t.gid(); i < 4096; i += t.nthreads())
      ASSERT_EQ(t.load(arr + i), static_cast<std::uint64_t>(i * 31));
    t.barrier();
  });
}

TEST(InterleavedMapping, ProducerConsumerRounds) {
  Cluster cl(interleaved_cfg(3, 2));
  auto p = cl.alloc<std::uint64_t>(512);  // one page
  cl.run([&](Thread& t) {
    for (int r = 1; r <= 5; ++r) {
      if (t.gid() == r % t.nthreads())
        t.store(p + (r % 512), static_cast<std::uint64_t>(r * 7));
      t.barrier();
      EXPECT_EQ(t.load(p + (r % 512)), static_cast<std::uint64_t>(r * 7));
      t.barrier();
    }
  });
}

TEST(InterleavedMapping, RandomDrfMiniProperty) {
  Cluster cl(interleaved_cfg(4, 2));
  argosim::Rng host_rng(77);
  const std::uint64_t base_page = 4;
  std::vector<std::uint8_t> shadow(8 * kPageSize, 0);
  struct Op {
    int epoch, node;
    std::uint64_t page;
    std::uint32_t off;
    std::uint8_t val;
  };
  std::vector<Op> writes;
  for (int e = 0; e < 6; ++e)
    for (std::uint64_t pg = 0; pg < 8; ++pg) {
      if (!host_rng.next_bool(0.4)) continue;
      const int node = static_cast<int>(host_rng.next_below(4));
      for (int k = 0; k < 8; ++k) {
        const auto off = static_cast<std::uint32_t>(host_rng.next_below(kPageSize));
        const auto val = static_cast<std::uint8_t>(1 + host_rng.next_below(255));
        writes.push_back(Op{e, node, pg, off, val});
        shadow[pg * kPageSize + off] = val;
      }
    }
  cl.run([&](Thread& t) {
    for (int e = 0; e < 6; ++e) {
      if (t.tid() == 0)
        for (const Op& w : writes)
          if (w.epoch == e && w.node == t.node())
            t.store(gptr<std::uint8_t>((base_page + w.page) * kPageSize + w.off),
                    w.val);
      t.barrier();
    }
  });
  for (std::size_t i = 0; i < shadow.size(); ++i)
    ASSERT_EQ(
        static_cast<std::uint8_t>(*cl.host_ptr(
            gptr<std::uint8_t>(base_page * kPageSize + i))),
        shadow[i])
        << "byte " << i;
}

TEST(SwDiffSuppression, CorrectUnderWriterHandoffs) {
  // The suppression option must stay correct when a page's single writer
  // changes over time and when multiple writers eventually appear.
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.threads_per_node = 1;
  cfg.global_mem_bytes = 3 * 16 * kPageSize;
  cfg.cache.sw_diff_suppression = true;
  Cluster cl(cfg);
  auto p = gptr<std::uint64_t>(40 * kPageSize);  // homed node 2
  cl.run([&](Thread& t) {
    for (int r = 0; r < 6; ++r) {
      const int writer = r % 2;  // nodes 0 and 1 alternate epochs
      if (t.node() == writer)
        t.store(p + r, static_cast<std::uint64_t>(100 * writer + r));
      t.barrier();
      EXPECT_EQ(t.load(p + r), static_cast<std::uint64_t>(100 * (r % 2) + r));
      t.barrier();
    }
    // Finale: both write disjoint words in the same epoch (MW).
    if (t.node() < 2) t.store(p + 100 + t.node(), std::uint64_t{55});
    t.barrier();
    EXPECT_EQ(t.load(p + 100), 55u);
    EXPECT_EQ(t.load(p + 101), 55u);
  });
}

TEST(Stats, DeterministicAcrossRuns) {
  auto collect = [] {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.threads_per_node = 3;
    cfg.global_mem_bytes = 4 * 16 * kPageSize;
    Cluster cl(cfg);
    auto arr = cl.alloc<std::uint64_t>(4096);
    cl.run([&](Thread& t) {
      argosim::Rng rng(static_cast<std::uint64_t>(t.gid()));
      for (int i = 0; i < 300; ++i) {
        const auto idx = static_cast<std::ptrdiff_t>(rng.next_below(4096));
        if (rng.next_bool(0.4))
          t.store(arr + idx, rng.next_u64());
        else
          (void)t.load(arr + idx);
        if (i % 60 == 59) t.barrier();
      }
      t.barrier();
    });
    const auto c = cl.coherence_stats();
    const auto n = cl.net_stats();
    return std::tuple(c.read_misses, c.write_misses, c.writebacks,
                      c.si_invalidations, c.dir_ops, n.total_bytes(),
                      n.rdma_atomics, cl.now());
  };
  EXPECT_EQ(collect(), collect());
}

TEST(Fences, ManualAcquireReleaseFlagSync) {
  // Spin-flag synchronization with explicit fences (§3.1): release() then
  // flag-set via atomics; acquire() after flag-wait.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.threads_per_node = 1;
  cfg.global_mem_bytes = 2 * 16 * kPageSize;
  Cluster cl(cfg);
  auto data = cl.alloc<std::uint64_t>(600);  // spans pages
  auto flag = cl.gmem().alloc_on_node<std::uint64_t>(0, 1);
  *cl.gmem().home_ptr(flag) = 0;
  cl.run([&](Thread& t) {
    if (t.node() == 0) {
      for (int i = 0; i < 600; ++i)
        t.store(data + i, static_cast<std::uint64_t>(i + 5));
      t.release();                // SD fence: publish the writes
      t.atomic_store(flag, 1);    // raise the flag (RDMA)
    } else {
      while (t.atomic_load(flag) == 0) t.compute(500);
      t.acquire();                // SI fence: drop stale copies
      for (int i = 0; i < 600; ++i)
        ASSERT_EQ(t.load(data + i), static_cast<std::uint64_t>(i + 5));
    }
  });
}

}  // namespace
}  // namespace argo
