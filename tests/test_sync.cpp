// Tests for Vela synchronization: node-local locks (mutex/ticket/MCS/
// cohort/QD) and distributed locks (RDMA MCS, HQDL, DSM cohort, flags).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "sync/dsm_locks.hpp"
#include "sync/local_locks.hpp"
#include "sync/qd_lock.hpp"

namespace argosync {
namespace {

using argo::Cluster;
using argo::ClusterConfig;
using argo::Thread;
using argomem::kPageSize;
using argosim::Engine;
using argosim::Time;

// ---------------------------------------------------------------------------
// Node-local locks (one simulated machine): exercised on a bare Engine.
// ---------------------------------------------------------------------------

struct LocalHarness {
  Engine eng;
  argonet::NodeTopology topo;
};

// Every lock must provide mutual exclusion and execute every section once.
void check_mutual_exclusion(CriticalSectionExecutor& lock) {
  LocalHarness h;
  int counter = 0;
  int inside = 0;
  bool overlapped = false;
  const int threads = 8, iters = 50;
  for (int i = 0; i < threads; ++i) {
    const int core = i % h.topo.cores;
    h.eng.spawn("t" + std::to_string(i), [&, core] {
      for (int k = 0; k < iters; ++k) {
        lock.execute(core,
                     [&](int) {
                       if (inside != 0) overlapped = true;
                       ++inside;
                       ++counter;
                       argosim::delay(50);  // critical-section work
                       --inside;
                     },
                     /*wait=*/true);
        argosim::delay(20);  // local work
      }
    });
  }
  h.eng.run();
  EXPECT_FALSE(overlapped) << lock.name();
  EXPECT_EQ(counter, threads * iters) << lock.name();
}

TEST(LocalLocks, MutexMutualExclusion) {
  argonet::NodeTopology topo;
  MutexLock l(&topo);
  check_mutual_exclusion(l);
}

TEST(LocalLocks, TicketMutualExclusion) {
  argonet::NodeTopology topo;
  TicketLock l(&topo);
  check_mutual_exclusion(l);
}

TEST(LocalLocks, McsMutualExclusion) {
  argonet::NodeTopology topo;
  McsLock l(&topo);
  check_mutual_exclusion(l);
}

TEST(LocalLocks, CohortMutualExclusion) {
  argonet::NodeTopology topo;
  CohortLock l(&topo);
  check_mutual_exclusion(l);
}

TEST(LocalLocks, QdMutualExclusion) {
  argonet::NodeTopology topo;
  QdLock l(&topo);
  check_mutual_exclusion(l);
}

TEST(LocalLocks, TicketIsFifo) {
  LocalHarness h;
  argonet::NodeTopology topo;
  TicketLock l(&topo);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i)
    h.eng.spawn("t" + std::to_string(i), [&, i] {
      argosim::delay(static_cast<Time>(i * 10));  // arrive in index order
      l.lock(i);
      order.push_back(i);
      argosim::delay(500);
      l.unlock(i);
    });
  h.eng.run();
  std::vector<int> expect{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(order, expect);
}

TEST(LocalLocks, McsIsFifo) {
  LocalHarness h;
  argonet::NodeTopology topo;
  McsLock l(&topo);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i)
    h.eng.spawn("t" + std::to_string(i), [&, i] {
      argosim::delay(static_cast<Time>(i * 10));
      l.lock(i);
      order.push_back(i);
      argosim::delay(500);
      l.unlock(i);
    });
  h.eng.run();
  std::vector<int> expect{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(order, expect);
}

TEST(LocalLocks, QdDetachedDelegationExecutesEventually) {
  LocalHarness h;
  argonet::NodeTopology topo;
  QdLock l(&topo);
  int executed = 0;
  // One slow helper plus detached delegators that return immediately.
  h.eng.spawn("helper", [&] {
    l.execute(0, [&](int) {
      ++executed;
      argosim::delay(5000);  // long section: others delegate meanwhile
    }, true);
  });
  for (int i = 1; i <= 6; ++i)
    h.eng.spawn("d" + std::to_string(i), [&, i] {
      argosim::delay(100);
      Time before = argosim::now();
      l.execute(i % 16, [&](int) { ++executed; }, /*wait=*/false);
      // Detached delegation must not wait for the helper's 5 us section.
      EXPECT_LT(argosim::now() - before, 3000u);
    });
  h.eng.run();
  EXPECT_EQ(executed, 7);
  EXPECT_GE(l.delegated(), 1u);
}

TEST(LocalLocks, QdWaitBlocksUntilExecution) {
  LocalHarness h;
  argonet::NodeTopology topo;
  QdLock l(&topo);
  bool side_effect = false;
  h.eng.spawn("helper", [&] {
    l.execute(0, [&](int) { argosim::delay(2000); }, true);
  });
  h.eng.spawn("waiter", [&] {
    argosim::delay(100);
    l.execute(1, [&](int) { side_effect = true; }, /*wait=*/true);
    EXPECT_TRUE(side_effect);  // visible immediately after execute returns
  });
  h.eng.run();
  EXPECT_TRUE(side_effect);
}

TEST(LocalLocks, QdBatchesOnOneCore) {
  // Under contention the helper should execute many sections per lock
  // acquisition (that is the whole point of delegation).
  LocalHarness h;
  argonet::NodeTopology topo;
  QdLock l(&topo);
  const int threads = 8, iters = 40;
  for (int i = 0; i < threads; ++i)
    h.eng.spawn("t" + std::to_string(i), [&, i] {
      for (int k = 0; k < iters; ++k) {
        l.execute(i % 16, [&](int) { argosim::delay(100); }, true);
        argosim::delay(30);
      }
    });
  h.eng.run();
  EXPECT_GT(l.delegated(), static_cast<std::uint64_t>(threads * iters / 2));
  EXPECT_LT(l.batches(), static_cast<std::uint64_t>(threads * iters / 2));
}

TEST(LocalLocks, QdOutperformsMutexUnderContention) {
  // Throughput sanity for Figure 11's ordering: same workload, same
  // virtual clock; QD must finish sooner than the sleeping mutex.
  auto run_with = [](CriticalSectionExecutor& lock) {
    LocalHarness h;
    const int threads = 8, iters = 100;
    for (int i = 0; i < threads; ++i) {
      const int core = i % h.topo.cores;
      h.eng.spawn("t", [&, core] {
        for (int k = 0; k < iters; ++k) {
          lock.execute(core, [](int) { argosim::delay(150); }, true);
          argosim::delay(50);
        }
      });
    }
    h.eng.run();
    return h.eng.now();
  };
  argonet::NodeTopology topo;
  MutexLock mutex(&topo);
  QdLock qd(&topo);
  const Time t_mutex = run_with(mutex);
  const Time t_qd = run_with(qd);
  EXPECT_LT(t_qd, t_mutex);
}

// ---------------------------------------------------------------------------
// Distributed locks
// ---------------------------------------------------------------------------

ClusterConfig dsm_cfg(int nodes, int tpn) {
  ClusterConfig c;
  c.nodes = nodes;
  c.threads_per_node = tpn;
  c.global_mem_bytes = static_cast<std::size_t>(nodes) * 32 * kPageSize;
  return c;
}

TEST(GlobalMcs, MutualExclusionAcrossNodes) {
  Cluster cl(dsm_cfg(4, 1));
  GlobalMcsLock lock(cl);
  int inside = 0, count = 0;
  bool overlapped = false;
  cl.run([&](Thread& t) {
    for (int k = 0; k < 20; ++k) {
      lock.acquire(t);
      if (inside != 0) overlapped = true;
      ++inside;
      ++count;
      t.compute(500);
      --inside;
      lock.release(t);
      t.compute(100);
    }
  });
  EXPECT_FALSE(overlapped);
  EXPECT_EQ(count, 80);
}

TEST(Hqdl, CountsProtectedIncrementsCorrectly) {
  Cluster cl(dsm_cfg(4, 4));
  HqdLock lock(cl);
  // The protected counter lives in global memory and is accessed through
  // the normal DSM path (load/store) — exactly what critical sections do.
  auto ctr = cl.alloc<std::uint64_t>(1);
  const int iters = 25;
  cl.run([&](Thread& t) {
    for (int k = 0; k < iters; ++k) {
      lock.execute(t, [&](Thread& exec) {
        exec.store(ctr, exec.load(ctr) + 1);
      }, /*wait=*/true);
      t.compute(200);
    }
  });
  // Final value must be exact: read it at home after the run.
  EXPECT_EQ(*cl.host_ptr(ctr), static_cast<std::uint64_t>(16 * iters));
  const auto st = lock.total_stats();
  EXPECT_EQ(st.executed, static_cast<std::uint64_t>(16 * iters));
  EXPECT_GT(st.delegated, 0u);
  EXPECT_LT(st.batches, st.executed);  // batching happened
}

TEST(Hqdl, DetachedDelegation) {
  Cluster cl(dsm_cfg(2, 4));
  HqdLock lock(cl);
  auto ctr = cl.alloc<std::uint64_t>(1);
  cl.run([&](Thread& t) {
    for (int k = 0; k < 10; ++k)
      lock.execute(t, [&](Thread& exec) {
        exec.store(ctr, exec.load(ctr) + 1);
      }, /*wait=*/false);
    t.barrier();  // all sections must have drained by the barrier epoch end
  });
  EXPECT_EQ(*cl.host_ptr(ctr), 80u);
}

TEST(Hqdl, FencesOncePerBatchNotPerSection) {
  Cluster cl(dsm_cfg(2, 8));
  HqdLock lock(cl);
  auto ctr = cl.alloc<std::uint64_t>(1);
  cl.run([&](Thread& t) {
    for (int k = 0; k < 10; ++k)
      lock.execute(t, [&](Thread& exec) {
        exec.store(ctr, exec.load(ctr) + 1);
      }, true);
  });
  const auto cs = cl.coherence_stats();
  const auto ls = lock.total_stats();
  EXPECT_EQ(ls.executed, 160u);
  // One SI and one SD per batch (plus none elsewhere in this program).
  EXPECT_EQ(cs.si_fences, ls.batches);
  EXPECT_EQ(cs.sd_fences, ls.batches);
  EXPECT_LT(ls.batches, 160u);
}

TEST(DsmCohort, CorrectAndFencesPerSection) {
  Cluster cl(dsm_cfg(2, 4));
  DsmCohortLock lock(cl);
  auto ctr = cl.alloc<std::uint64_t>(1);
  const int iters = 10;
  cl.run([&](Thread& t) {
    for (int k = 0; k < iters; ++k) {
      lock.execute(t, [&](Thread& exec) {
        exec.store(ctr, exec.load(ctr) + 1);
      });
      t.compute(100);
    }
  });
  EXPECT_EQ(*cl.host_ptr(ctr), 80u);
  const auto cs = cl.coherence_stats();
  EXPECT_EQ(cs.si_fences, 80u);  // per section, unlike HQDL
  EXPECT_EQ(cs.sd_fences, 80u);
  EXPECT_LT(lock.global_acquisitions(), 80u);  // cohort batching of the lock
}

TEST(DsmMutex, Correctness) {
  Cluster cl(dsm_cfg(3, 2));
  DsmMutex lock(cl);
  auto ctr = cl.alloc<std::uint64_t>(1);
  cl.run([&](Thread& t) {
    for (int k = 0; k < 15; ++k) {
      lock.lock(t);
      t.store(ctr, t.load(ctr) + 1);
      lock.unlock(t);
    }
  });
  EXPECT_EQ(*cl.host_ptr(ctr), 90u);
}

TEST(DsmFlag, SignalPublishesData) {
  Cluster cl(dsm_cfg(2, 1));
  DsmFlag flag(cl);
  auto data = cl.alloc<std::uint64_t>(64);
  cl.run([&](Thread& t) {
    if (t.node() == 0) {
      for (int i = 0; i < 64; ++i)
        t.store(data + i, static_cast<std::uint64_t>(i * i));
      flag.set(t);
    } else {
      flag.wait(t);
      for (int i = 0; i < 64; ++i)
        EXPECT_EQ(t.load(data + i), static_cast<std::uint64_t>(i * i));
    }
  });
}

TEST(Hqdl, BeatsDsmCohortUnderContention) {
  // Figure 12's ordering: same microworkload, HQDL finishes sooner.
  auto run_with = [](bool use_hqdl) {
    Cluster cl(dsm_cfg(4, 4));
    HqdLock hqdl(cl);
    DsmCohortLock cohort(cl);
    auto ctr = cl.alloc<std::uint64_t>(1);
    return cl.run([&](Thread& t) {
      for (int k = 0; k < 20; ++k) {
        auto cs = [&](Thread& exec) { exec.store(ctr, exec.load(ctr) + 1); };
        if (use_hqdl)
          hqdl.execute(t, cs, true);
        else
          cohort.execute(t, cs);
        t.compute(500);
      }
    });
  };
  const Time t_hqdl = run_with(true);
  const Time t_cohort = run_with(false);
  EXPECT_LT(t_hqdl, t_cohort);
}


TEST(GlobalMcs, TimedAcquireSucceedsAndTimesOut) {
  Cluster cl(dsm_cfg(2, 1));
  GlobalMcsLock lock(cl);
  bool n0_got = false, n1_got = true;
  cl.run([&](Thread& t) {
    if (t.node() == 0) {
      n0_got = lock.try_acquire_for(t, 1000);  // free: immediate success
      t.compute(500000);                       // hold it well past the other
      if (n0_got) lock.release(t);
    } else {
      t.compute(5000);  // let node 0 win the lock first
      n1_got = lock.try_acquire_for(t, 20000);
    }
  });
  EXPECT_TRUE(n0_got);
  EXPECT_FALSE(n1_got);  // gave up while node 0 still held it
}

TEST(GlobalMcs, TimedAcquireInteroperatesWithRelease) {
  // A lock obtained through the timed path must release normally and be
  // re-acquirable through the blocking path, repeatedly.
  Cluster cl(dsm_cfg(2, 1));
  GlobalMcsLock lock(cl);
  int acquisitions = 0;
  cl.run([&](Thread& t) {
    for (int k = 0; k < 10; ++k) {
      if (lock.try_acquire_for(t, 1u << 22)) {
        ++acquisitions;
        t.compute(300);
        lock.release(t);
      }
      t.compute(200);
    }
  });
  EXPECT_EQ(acquisitions, 20);
}

TEST(Hqdl, TryExecuteRunsOrFailsCleanly) {
  Cluster cl(dsm_cfg(4, 4));
  HqdLock lock(cl);
  auto ctr = cl.alloc<std::uint64_t>(1);
  const int iters = 10;
  std::uint64_t executed = 0;
  cl.run([&](Thread& t) {
    for (int k = 0; k < iters; ++k) {
      const bool ran = lock.try_execute(t, [&](Thread& exec) {
        exec.store(ctr, exec.load(ctr) + 1);
      }, /*timeout=*/1u << 26);
      if (ran) ++executed;
      t.compute(200);
    }
  });
  // A generous timeout must execute everything — and the counter must
  // agree exactly with the number of reported successes.
  EXPECT_EQ(executed, 16u * iters);
  EXPECT_EQ(*cl.host_ptr(ctr), executed);
}

TEST(Hqdl, TryExecuteTimesOutWithoutStrandingEntries) {
  Cluster cl(dsm_cfg(2, 2));
  HqdLock lock(cl);
  auto ctr = cl.alloc<std::uint64_t>(1);
  std::uint64_t succeeded = 0, failed = 0;
  cl.run([&](Thread& t) {
    if (t.node() == 0 && t.tid() == 0) {
      // Hog the lock with one long critical section.
      lock.execute(t, [&](Thread& exec) { exec.compute(300000); },
                   /*wait=*/true);
    } else {
      t.compute(2000);  // let the hog start first
      const bool ran = lock.try_execute(t, [&](Thread& exec) {
        exec.store(ctr, exec.load(ctr) + 1);
      }, /*timeout=*/5000);
      if (ran) ++succeeded; else ++failed;
    }
  });
  // Tight timeout while the lock is hogged: some threads must fail, and
  // every reported success must be reflected in the counter — a timed-out
  // entry never executes later.
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(*cl.host_ptr(ctr), succeeded);
}

TEST(DsmMutex, TimedLockHonorsTimeoutAndFences) {
  Cluster cl(dsm_cfg(2, 1));
  DsmMutex lock(cl);
  auto data = cl.alloc<std::uint64_t>(1);
  bool n1_first_try = true;
  std::uint64_t n1_read = 0;
  cl.run([&](Thread& t) {
    if (t.node() == 0) {
      lock.lock(t);
      t.store(data, std::uint64_t{41});
      t.compute(100000);
      t.store(data, std::uint64_t{42});
      lock.unlock(t);
    } else {
      t.compute(2000);
      n1_first_try = lock.try_lock_for(t, 5000);  // held: must time out
      if (!n1_first_try && lock.try_lock_for(t, 1u << 22)) {
        n1_read = t.load(data);  // SI fence ran: sees node 0's release
        lock.unlock(t);
      }
    }
  });
  EXPECT_FALSE(n1_first_try);
  EXPECT_EQ(n1_read, 42u);
}

}  // namespace
}  // namespace argosync
