// Host-path performance machinery: word-wise diff scanning, page-buffer
// pooling, and the scheduler fast paths. Everything here checks the same
// contract from a different angle: the fast implementations must be
// *observationally identical* to the slow (seed) ones — same diff runs,
// same buffer contents, same virtual times — differing only in host work.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "core/carina.hpp"
#include "core/cluster.hpp"
#include "core/diff.hpp"
#include "core/tlb.hpp"
#include "mem/pool.hpp"
#include "obs/export.hpp"
#include "sim/engine.hpp"
#include "sim/slowpath.hpp"

namespace {

using argocore::DiffRun;
using argocore::diff_runs;
using argocore::diff_runs_reference;
using argocore::kDiffMergeGap;

// Restores the process-wide slow-path toggle on scope exit so a failing
// test cannot leak ARGO_SLOW_PATHS semantics into later tests.
struct SlowGuard {
  bool prev = argosim::slow_paths();
  ~SlowGuard() { argosim::set_slow_paths(prev); }
};

// ---------------------------------------------------------------------------
// Word-wise diff scanner vs the reference byte scanner

std::vector<DiffRun> scan_reference(const std::vector<std::byte>& cur,
                                    const std::vector<std::byte>& twin) {
  std::vector<DiffRun> out;
  diff_runs_reference(cur.data(), twin.data(), cur.size(), out);
  return out;
}

std::vector<DiffRun> scan_fast(const std::vector<std::byte>& cur,
                               const std::vector<std::byte>& twin) {
  std::vector<DiffRun> out;
  diff_runs(cur.data(), twin.data(), cur.size(), out);
  return out;
}

std::size_t wire_bytes(const std::vector<DiffRun>& runs) {
  std::size_t n = 0;
  for (const DiffRun& r : runs) n += r.len + 8;
  return n;
}

// The equivalence check every case below funnels through: identical run
// sequences (offsets and lengths) and hence identical wire-byte charges.
void expect_identical(const std::vector<std::byte>& cur,
                      const std::vector<std::byte>& twin) {
  ASSERT_EQ(cur.size(), twin.size());
  const auto ref = scan_reference(cur, twin);
  const auto fast = scan_fast(cur, twin);
  ASSERT_EQ(ref.size(), fast.size()) << "page size " << cur.size();
  for (std::size_t k = 0; k < ref.size(); ++k) {
    EXPECT_EQ(ref[k].off, fast[k].off) << "run " << k;
    EXPECT_EQ(ref[k].len, fast[k].len) << "run " << k;
  }
  EXPECT_EQ(wire_bytes(ref), wire_bytes(fast));
}

std::vector<std::byte> bytes(std::size_t n, std::uint8_t fill = 0xAA) {
  return std::vector<std::byte>(n, std::byte{fill});
}

TEST(DiffRuns, AllEqualAndAllDifferent) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{63},
                              std::size_t{4096}}) {
    auto cur = bytes(n);
    auto twin = bytes(n);
    expect_identical(cur, twin);
    EXPECT_TRUE(scan_fast(cur, twin).empty());
    for (auto& b : cur) b = std::byte{0x55};
    expect_identical(cur, twin);
    if (n > 0) {
      const auto runs = scan_fast(cur, twin);
      ASSERT_EQ(runs.size(), 1u);
      EXPECT_EQ(runs[0].off, 0u);
      EXPECT_EQ(runs[0].len, n);
    }
  }
}

TEST(DiffRuns, SingleByteAtEveryOffsetOfASmallPage) {
  // Exhaustive over a three-word page: every position, including the first
  // and last byte of every word and of the buffer.
  constexpr std::size_t n = 24;
  for (std::size_t pos = 0; pos < n; ++pos) {
    auto cur = bytes(n);
    auto twin = bytes(n);
    cur[pos] = std::byte{0x00};
    expect_identical(cur, twin);
    const auto runs = scan_fast(cur, twin);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].off, pos);
    EXPECT_EQ(runs[0].len, 1u);
  }
}

TEST(DiffRuns, TrailingByteOfAFullPage) {
  auto cur = bytes(4096);
  auto twin = bytes(4096);
  cur[4095] = std::byte{0};
  expect_identical(cur, twin);
}

TEST(DiffRuns, TailShorterThanAWord) {
  // Sizes with a sub-8-byte tail, with changes confined to the tail.
  for (const std::size_t n : {std::size_t{9}, std::size_t{15}, std::size_t{37},
                              std::size_t{4093}}) {
    for (std::size_t back = 1; back <= 3 && back <= n; ++back) {
      auto cur = bytes(n);
      auto twin = bytes(n);
      cur[n - back] = std::byte{1};
      expect_identical(cur, twin);
    }
  }
}

TEST(DiffRuns, GapsAroundTheMergeThreshold) {
  // Two dirty bytes separated by every gap width around kDiffMergeGap, the
  // pair swept across word phases so the gap straddles 0, 1 or 2 word
  // boundaries. gap < 8 must merge into one run; gap >= 8 must split.
  for (std::size_t gap = kDiffMergeGap - 3; gap <= kDiffMergeGap + 3; ++gap) {
    for (std::size_t phase = 0; phase < 8; ++phase) {
      auto cur = bytes(64);
      auto twin = bytes(64);
      const std::size_t a = 8 + phase;
      const std::size_t b = a + 1 + gap;
      ASSERT_LT(b, cur.size());
      cur[a] = std::byte{1};
      cur[b] = std::byte{2};
      expect_identical(cur, twin);
      const auto runs = scan_fast(cur, twin);
      if (gap < kDiffMergeGap) {
        ASSERT_EQ(runs.size(), 1u) << "gap " << gap << " phase " << phase;
        EXPECT_EQ(runs[0].off, a);
        EXPECT_EQ(runs[0].len, b - a + 1);
      } else {
        ASSERT_EQ(runs.size(), 2u) << "gap " << gap << " phase " << phase;
        EXPECT_EQ(runs[0], (DiffRun{a, 1}));
        EXPECT_EQ(runs[1], (DiffRun{b, 1}));
      }
    }
  }
}

TEST(DiffRuns, RunsAlignedToWordBoundaries) {
  // Whole dirty words with whole equal words between them: the pure
  // word-stepping path on both sides of the threshold (8 equal bytes ends
  // the run exactly at the boundary; the next word starts the next run).
  auto cur = bytes(64);
  auto twin = bytes(64);
  for (std::size_t k = 0; k < 8; k += 2)
    for (std::size_t b = 0; b < 8; ++b) cur[k * 8 + b] = std::byte{7};
  expect_identical(cur, twin);
  const auto runs = scan_fast(cur, twin);
  ASSERT_EQ(runs.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_EQ(runs[k], (DiffRun{k * 16, 8})) << "run " << k;
}

TEST(DiffRuns, RandomizedAdversarialPages) {
  // Randomized property sweep: several mutation regimes over page-sized and
  // odd-sized buffers, fixed seed. Each case is checked run-for-run against
  // the reference scanner.
  std::mt19937 rng(20260805u);
  const std::size_t sizes[] = {24, 37, 64, 127, 512, 4095, 4096};
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t n = sizes[rng() % std::size(sizes)];
    std::vector<std::byte> twin(n);
    for (auto& b : twin) b = std::byte(rng() & 0xff);
    auto cur = twin;
    switch (iter % 4) {
      case 0: {  // sparse independent byte flips
        const int flips = 1 + static_cast<int>(rng() % 16);
        for (int f = 0; f < flips; ++f)
          cur[rng() % n] = std::byte(rng() & 0xff);
        break;
      }
      case 1: {  // dirty runs separated by gaps hovering around the threshold
        std::size_t pos = rng() % 8;
        while (pos < n) {
          const std::size_t len = 1 + rng() % 12;
          for (std::size_t b = pos; b < std::min(n, pos + len); ++b)
            cur[b] = std::byte(~static_cast<std::uint8_t>(twin[b]));
          pos += len + (kDiffMergeGap - 2 + rng() % 5);  // gaps 6..10
        }
        break;
      }
      case 2: {  // dense: every byte differs with p = 1/2
        for (std::size_t b = 0; b < n; ++b)
          if (rng() & 1) cur[b] = std::byte(~static_cast<std::uint8_t>(twin[b]));
        break;
      }
      default: {  // word-aligned dirty words, random selection
        for (std::size_t w = 0; w + 8 <= n; w += 8)
          if ((rng() & 3) == 0)
            for (std::size_t b = w; b < w + 8; ++b)
              cur[b] = std::byte(rng() & 0xff);
        break;
      }
    }
    expect_identical(cur, twin);
  }
}

TEST(DiffRuns, SlowPathsSelectsReferenceInsideCarina) {
  // The toggle itself: under ARGO_SLOW_PATHS the pool hands out fresh
  // zeroed buffers (allocator behaviour of the seed).
  SlowGuard guard;
  argosim::set_slow_paths(true);
  argomem::BufferPool pool;
  auto a = pool.acquire(64);
  auto b = pool.acquire(64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.get()[i], std::byte{0});
    EXPECT_EQ(b.get()[i], std::byte{0});
  }
  a.reset();
  EXPECT_EQ(pool.pooled_buffers(), 0u);  // slow paths never pool
  auto c = pool.acquire(64);
  EXPECT_EQ(pool.reuses(), 0u);
  EXPECT_EQ(pool.allocations(), 3u);
}

// ---------------------------------------------------------------------------
// BufferPool / PageBuf

TEST(BufferPool, RecyclesBlocksPerSizeClass) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argomem::BufferPool pool;
  auto small = pool.acquire(4096);
  auto big = pool.acquire(8192);
  std::byte* const small_block = small.get();
  std::byte* const big_block = big.get();
  EXPECT_EQ(small.size(), 4096u);
  EXPECT_TRUE(static_cast<bool>(small));
  small.reset();
  big.reset();
  EXPECT_FALSE(static_cast<bool>(small));
  EXPECT_EQ(pool.pooled_buffers(), 2u);
  // Same sizes come back as the same blocks, most-recently-released first.
  auto small2 = pool.acquire(4096);
  auto big2 = pool.acquire(8192);
  EXPECT_EQ(small2.get(), small_block);
  EXPECT_EQ(big2.get(), big_block);
  EXPECT_EQ(pool.allocations(), 2u);
  EXPECT_EQ(pool.reuses(), 2u);
  EXPECT_EQ(pool.pooled_buffers(), 0u);
}

TEST(BufferPool, FreshAllocationsAreZeroed) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argomem::BufferPool pool;
  auto buf = pool.acquire(4096);
  for (std::size_t i = 0; i < 4096; ++i)
    ASSERT_EQ(buf.get()[i], std::byte{0}) << "byte " << i;
}

TEST(BufferPool, MoveTransfersOwnershipWithoutMovingBytes) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argomem::BufferPool pool;
  auto a = pool.acquire(64);
  a.get()[0] = std::byte{42};
  std::byte* const block = a.get();
  argomem::PageBuf b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(b.get(), block);
  EXPECT_EQ(b.get()[0], std::byte{42});
  b.reset();
  EXPECT_EQ(pool.pooled_buffers(), 1u);
}

TEST(BufferPool, CarinaReusesBuffersInSteadyState) {
  // End-to-end: a repeated shared-write workload must recycle twins and
  // line buffers instead of allocating fresh ones every round (each
  // barrier's SD drains the twins and its SI drops the lines, so every
  // round re-acquires both).
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argo::ClusterConfig c;
  c.nodes = 2;
  c.threads_per_node = 1;
  c.global_mem_bytes = 64 * argomem::kPageSize;
  argo::Cluster cl(c);
  auto arr = cl.alloc<std::uint64_t>(8 * (argomem::kPageSize / 8));
  const std::size_t per_page = argomem::kPageSize / 8;
  cl.reset_classification();
  cl.run([&](argo::Thread& th) {
    for (int round = 0; round < 10; ++round) {
      for (std::size_t p = 0; p < 8; ++p)
        th.store(arr.at(p * per_page + static_cast<std::size_t>(th.node())),
                 static_cast<std::uint64_t>(round));
      th.barrier();
    }
  });
  std::uint64_t reuses = 0;
  for (int n = 0; n < c.nodes; ++n)
    reuses += cl.node_cache(n).buffer_pool().reuses();
  EXPECT_GT(reuses, 0u);
}

// ---------------------------------------------------------------------------
// Scheduler fast paths

TEST(EngineFastForward, LoneFiberNeverRoundTripsThroughTheScheduler) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argosim::Engine eng;
  eng.spawn("solo", [] {
    for (int i = 0; i < 100; ++i) argosim::delay(10);
  });
  eng.run();
  EXPECT_EQ(eng.now(), 1000u);
  // The first delay may or may not fast-forward (spawn queues an entry);
  // once running alone, every subsequent delay must.
  EXPECT_GE(eng.delay_fast_forwards(), 99u);
}

TEST(EngineFastForward, VirtualTimesMatchSlowPathsExactly) {
  // The same two-fiber interleaving, fast vs slow: every observed
  // (virtual time, fiber, step) triple must be identical.
  using Obs = std::vector<std::pair<argosim::Time, int>>;
  auto run_once = [](bool slow) {
    SlowGuard guard;
    argosim::set_slow_paths(slow);
    argosim::Engine eng;
    Obs obs;
    eng.spawn("a", [&] {
      for (int i = 0; i < 50; ++i) {
        argosim::delay(7);
        obs.emplace_back(argosim::now(), 0);
      }
    });
    eng.spawn("b", [&] {
      for (int i = 0; i < 50; ++i) {
        argosim::delay(11);
        obs.emplace_back(argosim::now(), 1);
      }
    });
    eng.run();
    obs.emplace_back(eng.now(), -1);
    return obs;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(EngineFastForward, YieldFairnessSurvivesTies) {
  // Fibers that yield at the same instant must round-robin identically
  // with the fast path on (ties must go through the scheduler).
  auto run_once = [](bool slow) {
    SlowGuard guard;
    argosim::set_slow_paths(slow);
    argosim::Engine eng;
    std::vector<int> order;
    for (int f = 0; f < 3; ++f) {
      eng.spawn("t" + std::to_string(f), [&order, f] {
        for (int i = 0; i < 5; ++i) {
          order.push_back(f);
          argosim::yield();
        }
      });
    }
    eng.run();
    return order;
  };
  const auto fast = run_once(false);
  EXPECT_EQ(fast, run_once(true));
}

TEST(EngineFastForward, DisabledUnderSlowPaths) {
  SlowGuard guard;
  argosim::set_slow_paths(true);
  argosim::Engine eng;
  eng.spawn("solo", [] {
    for (int i = 0; i < 10; ++i) argosim::delay(1);
  });
  eng.run();
  EXPECT_EQ(eng.now(), 10u);
  EXPECT_EQ(eng.delay_fast_forwards(), 0u);
  EXPECT_EQ(eng.stacks_reused(), 0u);
}

TEST(EngineFastForward, StackPoolRecyclesSequentialSpawns) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argosim::Engine eng;
  // Spawn fibers from inside the simulation so earlier ones finish (and
  // donate their stacks) before later ones start.
  eng.spawn("spawner", [&eng] {
    for (int i = 0; i < 8; ++i) {
      eng.spawn("child" + std::to_string(i), [] { argosim::delay(1); });
      argosim::delay(10);
    }
  });
  eng.run();
#if !defined(__SANITIZE_ADDRESS__)
  // ASan builds intentionally allocate every stack fresh.
  EXPECT_GT(eng.stacks_reused(), 0u);
#endif
}

// ---------------------------------------------------------------------------
// Soft-TLB (core/tlb.hpp): the MMU-analogue hit path. Unit tests for the
// translation array itself, directed tests for every generation-bump site,
// and a randomized fast-vs-slow property suite.

TEST(SoftTlb, HitNeedsPageAndGenerationMatch) {
  argocore::SoftTlb tlb;
  std::uint64_t counter = 0;
  std::byte page[8];
  tlb.insert_read(5, 1, page, &counter);
  EXPECT_EQ(tlb.lookup_read(5, 1), page);
  EXPECT_EQ(counter, 1u);  // a hit bumps exactly the slow path's counter
  EXPECT_EQ(tlb.host_hits, 1u);
  EXPECT_EQ(tlb.lookup_read(5, 2), nullptr);   // stale generation
  EXPECT_EQ(tlb.lookup_read(6, 1), nullptr);   // different page
  EXPECT_EQ(tlb.lookup_write(5, 1), nullptr);  // ways are independent
  EXPECT_EQ(counter, 1u);                      // misses bump nothing
  EXPECT_EQ(tlb.host_hits, 1u);
}

TEST(SoftTlb, ZeroInitializedEntriesNeverMatchLiveGenerations) {
  // NodeCache generations start at 1 precisely so a zero-filled entry
  // (page sentinel ~0, gen 0) can never satisfy a live lookup.
  argocore::SoftTlb tlb;
  for (const std::uint64_t pg :
       {std::uint64_t{0}, std::uint64_t{63}, std::uint64_t{1} << 40})
    EXPECT_EQ(tlb.lookup_read(pg, 1), nullptr) << "page " << pg;
  EXPECT_EQ(tlb.host_hits, 0u);
}

TEST(SoftTlb, DirectMappedInsertEvictsConflictingPage) {
  argocore::SoftTlb tlb;
  std::uint64_t c1 = 0, c2 = 0;
  std::byte a[8], b[8];
  const std::uint64_t p = 3, q = p + argocore::SoftTlb::kEntries;
  tlb.insert_read(p, 1, a, &c1);
  tlb.insert_read(q, 1, b, &c2);  // same slot: displaces p
  EXPECT_EQ(tlb.lookup_read(p, 1), nullptr);
  EXPECT_EQ(tlb.lookup_read(q, 1), b);
  EXPECT_EQ(c1, 0u);
  EXPECT_EQ(c2, 1u);
}

TEST(SoftTlb, FlushDropsBothWays) {
  argocore::SoftTlb tlb;
  std::uint64_t c = 0;
  std::byte page[8];
  tlb.insert_read(7, 1, page, &c);
  tlb.insert_write(9, 1, page, &c);
  tlb.flush();
  EXPECT_EQ(tlb.lookup_read(7, 1), nullptr);
  EXPECT_EQ(tlb.lookup_write(9, 1), nullptr);
}

// --- Directed generation-bump sites ----------------------------------------
//
// Each test provokes exactly one protocol event class on a small cluster
// and checks that (a) the event's stats counter fired and (b) the node's
// TLB generation advanced, so any translation a thread held across the
// event is revoked. The other node's thread idles through the body.

constexpr std::size_t kWordsPerPage = argomem::kPageSize / sizeof(std::uint64_t);

argo::ClusterConfig tlb_cfg(argo::Mode mode = argo::Mode::PS3) {
  argo::ClusterConfig c;
  c.nodes = 2;
  c.threads_per_node = 1;
  c.global_mem_bytes = 64 * argomem::kPageSize;
  c.cache.classification = mode;
  return c;
}

// With the blocked home mapping the upper half of global memory is homed
// on node 1, i.e. remote for node 0's thread.
constexpr std::size_t kRemotePg = 40, kRemotePg2 = 42;

TEST(SoftTlbGen, LineFillBumpsGeneration) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argo::Cluster cl(tlb_cfg());
  auto arr = cl.alloc<std::uint64_t>(64 * kWordsPerPage);
  cl.reset_classification();
  cl.run([&](argo::Thread& t) {
    if (t.node() != 0) return;
    const auto target = arr + static_cast<std::ptrdiff_t>(kRemotePg * kWordsPerPage);
    ASSERT_FALSE(t.is_home(target.raw()));
    const std::uint64_t before = t.cache().tlb_generation();
    (void)t.load(target);
    EXPECT_GT(t.cache().tlb_generation(), before);
  });
  EXPECT_GT(cl.node_cache(0).stats().line_fetches, 0u);
}

TEST(SoftTlbGen, ConflictEvictionBumpsGeneration) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  auto c = tlb_cfg();
  c.cache.cache_lines = 1;  // every group maps to the same slot
  argo::Cluster cl(c);
  auto arr = cl.alloc<std::uint64_t>(64 * kWordsPerPage);
  cl.reset_classification();
  cl.run([&](argo::Thread& t) {
    if (t.node() != 0) return;
    (void)t.load(arr + static_cast<std::ptrdiff_t>(kRemotePg * kWordsPerPage));
    const std::uint64_t before = t.cache().tlb_generation();
    (void)t.load(arr + static_cast<std::ptrdiff_t>(kRemotePg2 * kWordsPerPage));
    EXPECT_GT(t.cache().tlb_generation(), before);
  });
  EXPECT_GT(cl.node_cache(0).stats().evictions, 0u);
}

TEST(SoftTlbGen, WriteBufferOverflowWritebackBumpsGeneration) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  auto c = tlb_cfg();
  c.cache.write_buffer_pages = 1;  // second dirty page forces a drain
  argo::Cluster cl(c);
  auto arr = cl.alloc<std::uint64_t>(64 * kWordsPerPage);
  cl.reset_classification();
  cl.run([&](argo::Thread& t) {
    if (t.node() != 0) return;
    t.store(arr + static_cast<std::ptrdiff_t>(kRemotePg * kWordsPerPage),
            std::uint64_t{1});
    const std::uint64_t before = t.cache().tlb_generation();
    t.store(arr + static_cast<std::ptrdiff_t>(kRemotePg2 * kWordsPerPage),
            std::uint64_t{2});
    EXPECT_GT(t.cache().tlb_generation(), before);
  });
  EXPECT_GT(cl.node_cache(0).stats().writebacks, 0u);
}

TEST(SoftTlbGen, SdFenceDrainBumpsGeneration) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argo::Cluster cl(tlb_cfg());
  auto arr = cl.alloc<std::uint64_t>(64 * kWordsPerPage);
  cl.reset_classification();
  cl.run([&](argo::Thread& t) {
    if (t.node() != 0) return;
    t.store(arr + static_cast<std::ptrdiff_t>(kRemotePg * kWordsPerPage),
            std::uint64_t{7});
    const std::uint64_t before = t.cache().tlb_generation();
    t.release();  // SD fence: drains the write buffer, retiring the dirty page
    EXPECT_GT(t.cache().tlb_generation(), before);
  });
  EXPECT_GT(cl.node_cache(0).stats().writebacks, 0u);
  EXPECT_GT(cl.node_cache(0).stats().sd_fences, 0u);
}

TEST(SoftTlbGen, SiFenceInvalidationBumpsGeneration) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argo::Cluster cl(tlb_cfg());
  auto arr = cl.alloc<std::uint64_t>(64 * kWordsPerPage);
  cl.reset_classification();
  const auto shared =
      arr + static_cast<std::ptrdiff_t>(kRemotePg * kWordsPerPage);
  cl.run([&](argo::Thread& t) {
    if (t.node() == 0) (void)t.load(shared);  // node 0 caches the page
    t.barrier();
    if (t.node() == 1) t.store(shared, std::uint64_t{99});  // home write
    std::uint64_t before = 0;
    if (t.node() == 0) before = t.cache().tlb_generation();
    t.barrier();  // node 0's SI must now drop its stale copy
    if (t.node() == 0) {
      EXPECT_GT(t.cache().tlb_generation(), before);
      EXPECT_EQ(t.load(shared), 99u);
    }
    t.barrier();
  });
  EXPECT_GT(cl.node_cache(0).stats().si_invalidations, 0u);
}

TEST(SoftTlbGen, NaiveCheckpointBumpsGeneration) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argo::Cluster cl(tlb_cfg(argo::Mode::PSNaive));
  auto arr = cl.alloc<std::uint64_t>(64 * kWordsPerPage);
  cl.reset_classification();
  cl.run([&](argo::Thread& t) {
    if (t.node() != 0) return;
    t.store(arr + static_cast<std::ptrdiff_t>(kRemotePg * kWordsPerPage),
            std::uint64_t{5});
    const std::uint64_t before = t.cache().tlb_generation();
    t.release();  // naive P/S checkpoints the private page instead of draining
    EXPECT_GT(t.cache().tlb_generation(), before);
  });
  EXPECT_GT(cl.node_cache(0).stats().checkpoints, 0u);
}

TEST(SoftTlbGen, NaiveHealBumpsGeneration) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argo::Cluster cl(tlb_cfg(argo::Mode::PSNaive));
  auto arr = cl.alloc<std::uint64_t>(64 * kWordsPerPage);
  cl.reset_classification();
  const auto priv = arr + static_cast<std::ptrdiff_t>(kRemotePg * kWordsPerPage);
  cl.run([&](argo::Thread& t) {
    if (t.node() == 0) t.store(priv, std::uint64_t{42});  // page goes private
    t.barrier();  // checkpoint at node 0's SD; home memory stays stale
    if (t.node() == 1) {
      const std::uint64_t before = t.cache().tlb_generation();
      // First foreign access: P→S transition serviced from the owner's
      // checkpoint (the §5.1 strawman's heal).
      EXPECT_EQ(t.load(priv), 42u);
      EXPECT_GT(t.cache().tlb_generation(), before);
    }
    t.barrier();
  });
  std::uint64_t heals = 0;
  for (int n = 0; n < 2; ++n) heals += cl.node_cache(n).stats().heals;
  EXPECT_GT(heals, 0u);
}

// --- Randomized fast-vs-slow property suite --------------------------------

// The curated comparable footprint of one node's CoherenceStats (every
// counter plus histogram sample counts).
std::vector<std::uint64_t> stat_fields(const argocore::CoherenceStats& s) {
  return {s.read_hits,      s.read_misses,
          s.write_hits,     s.write_misses,
          s.home_accesses,  s.line_fetches,
          s.pages_fetched,  s.bytes_fetched,
          s.writebacks,     s.writeback_bytes,
          s.diffs_built,    s.full_page_writebacks,
          s.si_fences,      s.sd_fences,
          s.si_invalidations, s.evictions,
          s.dir_ops,        s.transitions_caused,
          s.checkpoints,    s.checkpoint_bytes,
          s.heals,          s.sd_fence_ns.samples,
          s.si_fence_ns.samples};
}

struct RunObs {
  std::vector<std::uint8_t> trace;
  argosim::Time elapsed = 0;
  std::vector<std::vector<std::uint64_t>> stats;
  std::uint64_t mem_hash = 0;
  std::uint64_t tlb_hits = 0;

  bool operator==(const RunObs& o) const {
    return trace == o.trace && elapsed == o.elapsed && stats == o.stats &&
           mem_hash == o.mem_hash;  // tlb_hits intentionally excluded
  }
};

// A DRF torture workload: alternating owner-write / read-anywhere phases
// separated by barriers, on a cache small enough to force conflict
// evictions and a write buffer small enough to force overflow drains.
RunObs run_random_workload(unsigned seed, bool chaos, argo::Mode mode,
                           bool slow) {
  SlowGuard guard;
  argosim::set_slow_paths(slow);
  argo::ClusterConfig c;
  c.nodes = 2;
  c.threads_per_node = 2;
  c.global_mem_bytes = 128 * argomem::kPageSize;
  c.cache.cache_lines = 8;
  c.cache.pages_per_line = 2;
  c.cache.write_buffer_pages = 4;
  c.cache.classification = mode;
  c.trace.enabled = true;
  if (chaos) {
    c.faults.enabled = true;
    c.faults.seed = 4321;
    c.faults.rdma_fail_prob = 0.02;
    c.faults.jitter_prob = 0.1;
    c.faults.jitter_max = 500;
  }
  argo::Cluster cl(c);
  constexpr std::size_t kPages = 96;
  auto arr = cl.alloc<std::uint64_t>(kPages * kWordsPerPage);
  cl.reset_classification();
  RunObs obs;
  obs.elapsed = cl.run([&](argo::Thread& t) {
    std::mt19937 rng(seed * 7919u + static_cast<unsigned>(t.gid()));
    const std::size_t slice = kPages / static_cast<std::size_t>(t.nthreads());
    const std::size_t own_lo = slice * static_cast<std::size_t>(t.gid());
    for (int round = 0; round < 6; ++round) {
      for (int k = 0; k < 40; ++k) {  // writes confined to the own slice
        const std::size_t pg = own_lo + rng() % slice;
        const std::size_t idx = pg * kWordsPerPage + rng() % kWordsPerPage;
        t.store(arr + static_cast<std::ptrdiff_t>(idx),
                static_cast<std::uint64_t>(rng()));
      }
      t.barrier();
      std::uint64_t sink = 0;  // reads roam everywhere (no writes in flight)
      for (int k = 0; k < 80; ++k) {
        const std::size_t pg = rng() % kPages;
        const std::size_t idx = pg * kWordsPerPage + rng() % kWordsPerPage;
        sink ^= t.load(arr + static_cast<std::ptrdiff_t>(idx));
      }
      (void)sink;
      t.barrier();
    }
  });
  obs.trace = argoobs::encode_binary(cl.tracer().snapshot(),
                                     cl.tracer().dropped());
  for (int n = 0; n < c.nodes; ++n) {
    obs.stats.push_back(stat_fields(cl.node_cache(n).stats()));
    obs.tlb_hits += cl.node_cache(n).tlb_host_hits();
  }
  // FNV-1a over the whole home memory image.
  const std::byte* bytes = cl.gmem().home_ptr(0);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < cl.gmem().size(); ++i) {
    h ^= static_cast<std::uint8_t>(bytes[i]);
    h *= 1099511628211ull;
  }
  obs.mem_hash = h;
  return obs;
}

TEST(SoftTlbProperty, FastAndSlowRunsAreObservationallyIdentical) {
  struct Case {
    unsigned seed;
    bool chaos;
    argo::Mode mode;
  };
  const Case cases[] = {{11, false, argo::Mode::PS3},
                        {22, false, argo::Mode::PSNaive},
                        {33, true, argo::Mode::PS3}};
  for (const Case& cs : cases) {
    const RunObs fast = run_random_workload(cs.seed, cs.chaos, cs.mode,
                                            /*slow=*/false);
    const RunObs slow = run_random_workload(cs.seed, cs.chaos, cs.mode,
                                            /*slow=*/true);
    ASSERT_GT(fast.trace.size(), 32u) << "seed " << cs.seed;
    EXPECT_EQ(fast.trace, slow.trace) << "seed " << cs.seed;
    EXPECT_EQ(fast.elapsed, slow.elapsed) << "seed " << cs.seed;
    EXPECT_EQ(fast.stats, slow.stats) << "seed " << cs.seed;
    EXPECT_EQ(fast.mem_hash, slow.mem_hash) << "seed " << cs.seed;
    // The fast run must actually engage the TLB; the slow run must not.
    EXPECT_GT(fast.tlb_hits, 0u) << "seed " << cs.seed;
    EXPECT_EQ(slow.tlb_hits, 0u) << "seed " << cs.seed;
  }
}

// --- Span API ---------------------------------------------------------------

// load_span/store_span promise protocol behavior identical to
// load_bulk/store_bulk over the same ranges: same trace, same virtual
// time, same stats, same memory image.
constexpr std::size_t kCount = 24 * kWordsPerPage;

RunObs run_span_or_bulk(bool use_spans) {
  argo::ClusterConfig c;
  c.nodes = 2;
  c.threads_per_node = 2;
  c.global_mem_bytes = 64 * argomem::kPageSize;
  c.trace.enabled = true;
  argo::Cluster cl(c);
  auto arr = cl.alloc<std::uint64_t>(kCount);
  cl.reset_classification();
  RunObs obs;
  obs.elapsed = cl.run([&](argo::Thread& t) {
    const std::size_t nt = static_cast<std::size_t>(t.nthreads());
    const std::size_t gid = static_cast<std::size_t>(t.gid());
    const std::size_t lo = kCount * gid / nt, hi = kCount * (gid + 1) / nt;
    if (use_spans) {
      auto p = arr + static_cast<std::ptrdiff_t>(lo);
      std::size_t left = hi - lo, base = lo;
      while (left > 0) {
        auto sp = t.store_span(p, left);
        for (std::size_t i = 0; i < sp.size(); ++i)
          sp[i] = (base + i) * 3 + 1;
        p += static_cast<std::ptrdiff_t>(sp.size());
        base += sp.size();
        left -= sp.size();
      }
    } else {
      std::vector<std::uint64_t> buf(hi - lo);
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = (lo + i) * 3 + 1;
      t.store_bulk(arr + static_cast<std::ptrdiff_t>(lo), buf.data(),
                   buf.size());
    }
    t.barrier();
    std::uint64_t sum = 0;
    if (use_spans) {
      auto p = arr;
      std::size_t left = kCount;
      while (left > 0) {
        const auto sp = t.load_span(p, left);
        for (const std::uint64_t v : sp) sum += v;
        p += static_cast<std::ptrdiff_t>(sp.size());
        left -= sp.size();
      }
    } else {
      std::vector<std::uint64_t> buf(kCount);
      t.load_bulk(arr, buf.data(), kCount);
      for (const std::uint64_t v : buf) sum += v;
    }
    EXPECT_EQ(sum, [] {
      std::uint64_t s = 0;
      for (std::size_t i = 0; i < kCount; ++i) s += i * 3 + 1;
      return s;
    }());
    t.barrier();
  });
  obs.trace = argoobs::encode_binary(cl.tracer().snapshot(),
                                     cl.tracer().dropped());
  for (int n = 0; n < c.nodes; ++n) {
    obs.stats.push_back(stat_fields(cl.node_cache(n).stats()));
    obs.tlb_hits += cl.node_cache(n).tlb_host_hits();
  }
  return obs;
}

TEST(SoftTlbSpans, SpanAndBulkAccessesAreProtocolIdentical) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  const RunObs spans = run_span_or_bulk(true);
  const RunObs bulk = run_span_or_bulk(false);
  ASSERT_GT(spans.trace.size(), 32u);
  EXPECT_EQ(spans.trace, bulk.trace);
  EXPECT_EQ(spans.elapsed, bulk.elapsed);
  EXPECT_EQ(spans.stats, bulk.stats);
}

}  // namespace
